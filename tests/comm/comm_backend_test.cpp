// CommBackend contract tests: name/parse round-trips, the factory, the
// bit-determinism guarantee shared by every synchronous data plane (tree and
// ranked-PS aggregation must equal SharedCollectives' fixed rank-order float
// summation exactly), fault-injected links, and per-backend cost pricing.
#include "comm/comm_backend.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/fault_injector.hpp"
#include "comm/parameter_server.hpp"
#include "comm/tree_allreduce.hpp"

namespace selsync {
namespace {

/// Runs `body(rank)` on `n` threads and joins.
template <typename F>
void spawn(size_t n, F body) {
  std::vector<std::thread> threads;
  for (size_t r = 0; r < n; ++r) threads.emplace_back([&, r] { body(r); });
  for (auto& t : threads) t.join();
}

/// Awkward float values (summation order visibly changes low bits) so the
/// bitwise comparisons below actually exercise the determinism contract.
std::vector<std::vector<float>> awkward_inputs(size_t workers, size_t dim) {
  std::vector<std::vector<float>> data(workers, std::vector<float>(dim));
  for (size_t r = 0; r < workers; ++r)
    for (size_t i = 0; i < dim; ++i)
      data[r][i] = 0.1f * static_cast<float>(r + 1) +
                   1e-4f * static_cast<float>(i * i) -
                   0.37f * static_cast<float>((r * 7 + i) % 5);
  return data;
}

/// The reference reduction: per element, fold contributions in ascending
/// rank order — the float summation order SharedCollectives fixes.
std::vector<float> rank_order_sum(const std::vector<std::vector<float>>& in) {
  std::vector<float> out(in[0].size());
  for (size_t i = 0; i < out.size(); ++i) {
    float acc = 0.0f;
    for (size_t r = 0; r < in.size(); ++r) acc += in[r][i];
    out[i] = acc;
  }
  return out;
}

TEST(BackendKind, NamesRoundTripThroughParse) {
  for (BackendKind kind :
       {BackendKind::kSharedMemory, BackendKind::kRing, BackendKind::kTree,
        BackendKind::kParameterServer})
    EXPECT_EQ(backend_kind_from_name(backend_kind_name(kind)), kind);
  EXPECT_EQ(backend_kind_from_name("shared"), BackendKind::kSharedMemory);
  EXPECT_EQ(backend_kind_from_name("ring"), BackendKind::kRing);
  EXPECT_EQ(backend_kind_from_name("tree"), BackendKind::kTree);
  EXPECT_EQ(backend_kind_from_name("ps"), BackendKind::kParameterServer);
  EXPECT_EQ(backend_kind_from_name("carrier-pigeon"), std::nullopt);
  EXPECT_EQ(backend_kind_from_name(""), std::nullopt);
  // The advertised set stays in sync with what actually parses.
  EXPECT_EQ(backend_kind_names(), "shared, ring, tree, ps");
}

TEST(TreeAllreduceTest, BitIdenticalToSharedCollectivesForAllSizes) {
  // kDim deliberately not divisible by any cluster size; N covers the
  // degenerate single rank, powers of two and ragged trees.
  constexpr size_t kDim = 23;
  for (size_t n = 1; n <= 9; ++n) {
    const auto inputs = awkward_inputs(n, kDim);

    auto shared = inputs;
    SharedCollectives coll(n);
    spawn(n, [&](size_t r) { coll.allreduce_sum(r, shared[r]); });

    auto tree_data = inputs;
    TreeAllreduce tree(n);
    spawn(n, [&](size_t r) { tree.run(r, tree_data[r]); });

    for (size_t r = 0; r < n; ++r)
      for (size_t i = 0; i < kDim; ++i) {
        EXPECT_EQ(tree_data[r][i], shared[r][i])
            << "N=" << n << " rank " << r << " elem " << i;
        EXPECT_EQ(tree_data[r][i], tree_data[0][i]) << "ranks disagree";
      }
  }
}

TEST(TreeAllreduceTest, CriticalPathHopsIsTwiceCeilLog2) {
  EXPECT_EQ(TreeAllreduce::critical_path_hops(1), 0u);
  EXPECT_EQ(TreeAllreduce::critical_path_hops(2), 2u);
  EXPECT_EQ(TreeAllreduce::critical_path_hops(4), 4u);
  EXPECT_EQ(TreeAllreduce::critical_path_hops(5), 6u);
  EXPECT_EQ(TreeAllreduce::critical_path_hops(8), 6u);
  EXPECT_EQ(TreeAllreduce::critical_path_hops(9), 8u);
}

TEST(TreeAllreduceTest, LossyLinksStillDeliverTheExactPayload) {
  // Aggressive drop/delay/duplicate probabilities: the protocol must still
  // land the bit-exact rank-order sum; faults may only cost simulated time
  // and show up in the event log.
  constexpr size_t kN = 6, kDim = 23, kRounds = 4;
  FaultPlan plan;
  plan.seed = 31;
  plan.messages.drop_prob = 0.25;
  plan.messages.delay_prob = 0.25;
  plan.messages.duplicate_prob = 0.2;
  FaultInjector inj(plan, kN);
  TreeAllreduce tree(kN, &inj);

  for (size_t round = 0; round < kRounds; ++round) {
    const auto inputs = awkward_inputs(kN, kDim);
    const auto expected = rank_order_sum(inputs);
    auto data = inputs;
    std::vector<double> delay(kN);
    spawn(kN, [&](size_t r) {
      tree.run(r, data[r]);
      delay[r] = inj.take_pending_delay(r);
    });
    for (size_t r = 0; r < kN; ++r) {
      EXPECT_GE(delay[r], 0.0);
      for (size_t i = 0; i < kDim; ++i)
        EXPECT_EQ(data[r][i], expected[i])
            << "round " << round << " rank " << r << " elem " << i;
    }
  }
  const FaultSummary summary = inj.summary();
  EXPECT_GT(summary.messages_dropped + summary.messages_delayed +
                summary.messages_duplicated,
            0u)
      << "fault plan injected nothing; probabilities too low for the test";
}

TEST(ParameterServerRanked, SumMatchesRankOrderRegardlessOfArrival) {
  constexpr size_t kN = 5, kDim = 23;
  const auto inputs = awkward_inputs(kN, kDim);
  const auto expected = rank_order_sum(inputs);
  ParameterServer ps(std::vector<float>(kDim, 0.0f), kN);
  PsRoundConfig cfg;
  cfg.participants = kN;  // kRanked sum is the default fold

  // Two rounds with opposite (staggered) arrival orders: the result must be
  // the ascending-rank reduction both times, bit for bit.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::vector<float>> out(kN);
    spawn(kN, [&](size_t r) {
      const size_t slot = round == 0 ? r : kN - 1 - r;
      std::this_thread::sleep_for(std::chrono::milliseconds(2 * slot));
      const uint64_t ticket = ps.round().begin(cfg);
      ps.round().contribute(ticket, r, inputs[r]);
      out[r] = ps.round().await(ticket);
    });
    for (size_t r = 0; r < kN; ++r) {
      ASSERT_EQ(out[r].size(), kDim);
      for (size_t i = 0; i < kDim; ++i)
        EXPECT_EQ(out[r][i], expected[i])
            << "round " << round << " rank " << r << " elem " << i;
    }
  }
}

TEST(MakeCommBackend, BuildsEveryKindAndExposesTheCentralStore) {
  CommBackendConfig config;
  config.workers = 4;
  for (BackendKind kind :
       {BackendKind::kSharedMemory, BackendKind::kRing, BackendKind::kTree}) {
    config.kind = kind;
    auto backend = make_comm_backend(config);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->kind(), kind);
    EXPECT_EQ(backend->central_store(), nullptr)
        << backend->name() << " must not claim a central store";
  }

  config.kind = BackendKind::kParameterServer;
  EXPECT_THROW(make_comm_backend(config), std::invalid_argument)
      << "ps backend without initial parameters must be rejected";
  config.initial_params.assign(17, 0.5f);
  auto ps = make_comm_backend(config);
  EXPECT_EQ(ps->kind(), BackendKind::kParameterServer);
  ASSERT_NE(ps->central_store(), nullptr);
  EXPECT_EQ(ps->central_store()->dim(), 17u);
  EXPECT_EQ(ps->central_store()->workers(), 4u);
  EXPECT_EQ(ps->central_store()->shards(), 1u) << "K=1 is the default tier";

  config.ps_shards = 4;
  auto sharded = make_comm_backend(config);
  ASSERT_NE(sharded->central_store(), nullptr);
  EXPECT_EQ(sharded->central_store()->shards(), 4u);
  EXPECT_EQ(sharded->central_store()->dim(), 17u);
}

TEST(ShardedPsBackend, AllreduceBitIdenticalAcrossShardCounts) {
  // The tentpole parity contract: per-element ascending-rank folds are
  // independent across elements, so splitting the store into K contiguous
  // ranges cannot change a single bit of the reduction.
  constexpr size_t kN = 4, kDim = 23;
  const auto inputs = awkward_inputs(kN, kDim);
  const auto expected = rank_order_sum(inputs);

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    CommBackendConfig config;
    config.kind = BackendKind::kParameterServer;
    config.workers = kN;
    config.ps_shards = shards;
    config.initial_params.assign(kDim, 0.0f);
    auto backend = make_comm_backend(config);
    ASSERT_NE(backend->central_store(), nullptr);
    EXPECT_EQ(backend->central_store()->shards(), shards);

    SharedCollectives coll(kN);
    const CommGroup full = CommGroup::full(kN);
    auto data = inputs;
    spawn(kN, [&](size_t r) {
      WorkerContext ctx;
      ctx.rank = r;
      ctx.size = kN;
      ctx.collectives = &coll;
      double clock = 0.0;
      backend->allreduce(ctx, data[r], full, clock);
    });
    for (size_t r = 0; r < kN; ++r)
      for (size_t i = 0; i < kDim; ++i)
        EXPECT_EQ(data[r][i], expected[i])
            << "K=" << shards << " rank " << r << " elem " << i;
  }
}

TEST(ShardedPsBackend, MaxIngestDropsStrictlyBelowSingleShardAtSixteen) {
  // The acceptance criterion at the paper's incast knee (Fig. 1a, N=16):
  // splitting the store must price a strictly lower busiest-shard ingest
  // time, while K=1 stays exactly the pre-sharding PS schedule.
  const CostModel cost(paper_network_5gbps());
  constexpr size_t kBytes = 1 << 22, kWorkers = 16;

  auto priced = [&](size_t shards) {
    CommBackendConfig config;
    config.kind = BackendKind::kParameterServer;
    config.workers = kWorkers;
    config.ps_shards = shards;
    config.initial_params.assign(shards, 0.0f);
    return make_comm_backend(config)->sync_cost(cost, kBytes, kWorkers);
  };

  const SyncCost one = priced(1);
  const SyncCost four = priced(4);

  EXPECT_DOUBLE_EQ(one.transfer_s, cost.ps_sync_time(kBytes, kWorkers));
  EXPECT_EQ(one.ps_shards, 1u);
  EXPECT_EQ(one.max_shard_wire_bytes, one.wire_bytes);
  EXPECT_DOUBLE_EQ(one.max_ingest_s, one.transfer_s);

  EXPECT_EQ(four.ps_shards, 4u);
  EXPECT_EQ(four.max_shard_wire_bytes, (one.wire_bytes + 3) / 4);
  EXPECT_DOUBLE_EQ(four.max_ingest_s, four.transfer_s);
  EXPECT_LT(four.max_ingest_s, one.max_ingest_s)
      << "K=4 must strictly beat K=1 at the incast knee";
  EXPECT_DOUBLE_EQ(four.transfer_s,
                   cost.ps_shard_sync_time(kBytes, kWorkers, 4));

  // Non-PS backends never claim an ingest tier.
  CommBackendConfig ring;
  ring.kind = BackendKind::kRing;
  ring.workers = kWorkers;
  const SyncCost ring_cost =
      make_comm_backend(ring)->sync_cost(cost, kBytes, kWorkers);
  EXPECT_EQ(ring_cost.ps_shards, 0u);
  EXPECT_EQ(ring_cost.max_shard_wire_bytes, 0u);
  EXPECT_DOUBLE_EQ(ring_cost.max_ingest_s, 0.0);

  // The totals carry the tier through: max shard count, summed ingest time.
  SyncCostTotals totals;
  totals.add(four);
  totals.add(four);
  totals.add(ring_cost);
  EXPECT_EQ(totals.ps_shards, 4u);
  EXPECT_DOUBLE_EQ(totals.max_ingest_s, 2.0 * four.max_ingest_s);
  EXPECT_DOUBLE_EQ(totals.max_shard_wire_bytes,
                   2.0 * static_cast<double>(four.max_shard_wire_bytes));
}

TEST(CommBackendDataPlane, EveryBackendAllreducesBitIdentically) {
  // The full CommBackend interface (not the raw primitives): shared, tree
  // and ps must produce the exact same floats; ring differs in summation
  // order by design and is covered statistically by the strategy tests.
  constexpr size_t kN = 4, kDim = 23;
  const auto inputs = awkward_inputs(kN, kDim);
  const auto expected = rank_order_sum(inputs);

  for (BackendKind kind : {BackendKind::kSharedMemory, BackendKind::kTree,
                           BackendKind::kParameterServer}) {
    CommBackendConfig config;
    config.kind = kind;
    config.workers = kN;
    if (kind == BackendKind::kParameterServer)
      config.initial_params.assign(kDim, 0.0f);
    auto backend = make_comm_backend(config);

    SharedCollectives coll(kN);
    const CommGroup full = CommGroup::full(kN);
    auto data = inputs;
    std::vector<double> clock(kN, 0.0);
    spawn(kN, [&](size_t r) {
      WorkerContext ctx;
      ctx.rank = r;
      ctx.size = kN;
      ctx.collectives = &coll;
      backend->allreduce(ctx, data[r], full, clock[r]);
    });
    for (size_t r = 0; r < kN; ++r) {
      EXPECT_DOUBLE_EQ(clock[r], 0.0) << "no faults, no injected delay";
      for (size_t i = 0; i < kDim; ++i)
        EXPECT_EQ(data[r][i], expected[i])
            << backend->name() << " rank " << r << " elem " << i;
    }
  }
}

TEST(CommBackendCosts, SyncCostTransferMatchesTheCostModelSchedules) {
  const CostModel cost(paper_network_5gbps());
  constexpr size_t kBytes = 1 << 20, kWorkers = 8;

  CommBackendConfig config;
  config.workers = kWorkers;
  auto transfer = [&](const CommBackendConfig& c) {
    return make_comm_backend(c)->sync_cost(cost, kBytes, kWorkers).transfer_s;
  };

  // The shared-memory backend stands in for whatever the job's topology
  // declares (seed semantics): PS pricing or ring pricing.
  config.kind = BackendKind::kSharedMemory;
  config.topology = Topology::kParameterServer;
  EXPECT_DOUBLE_EQ(transfer(config), cost.ps_sync_time(kBytes, kWorkers));
  config.topology = Topology::kRingAllreduce;
  EXPECT_DOUBLE_EQ(transfer(config),
                   cost.ring_allreduce_time(kBytes, kWorkers));

  // The ring transport also keeps the seed's topology-priced accounting
  // (golden parity depends on it).
  config.kind = BackendKind::kRing;
  config.topology = Topology::kParameterServer;
  EXPECT_DOUBLE_EQ(transfer(config), cost.ps_sync_time(kBytes, kWorkers));
  config.topology = Topology::kRingAllreduce;
  EXPECT_DOUBLE_EQ(transfer(config),
                   cost.ring_allreduce_time(kBytes, kWorkers));

  // Tree and ps price their own schedules, whatever the topology knob says.
  config.kind = BackendKind::kTree;
  EXPECT_DOUBLE_EQ(transfer(config),
                   cost.tree_allreduce_time(kBytes, kWorkers));
  config.kind = BackendKind::kParameterServer;
  config.initial_params.assign(4, 0.0f);
  config.topology = Topology::kRingAllreduce;
  EXPECT_DOUBLE_EQ(transfer(config), cost.ps_sync_time(kBytes, kWorkers));
}

TEST(CommBackendCosts, SyncCostBreakdownAccountsWireAndCodec) {
  const CostModel cost(paper_network_5gbps());
  constexpr size_t kBytes = 1 << 20, kWorkers = 8;
  CommBackendConfig config;
  config.workers = kWorkers;
  config.kind = BackendKind::kSharedMemory;
  config.topology = Topology::kRingAllreduce;
  auto backend = make_comm_backend(config);

  // Dense round: wire == dense, no codec compute, round_time == transfer.
  const SyncCost dense = backend->sync_cost(cost, kBytes, kWorkers);
  EXPECT_EQ(dense.wire_bytes, kBytes);
  EXPECT_EQ(dense.dense_bytes, kBytes);
  EXPECT_DOUBLE_EQ(dense.encode_s, 0.0);
  EXPECT_DOUBLE_EQ(dense.decode_s, 0.0);
  EXPECT_DOUBLE_EQ(dense.wire_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(dense.round_time(), dense.transfer_s);
  EXPECT_DOUBLE_EQ(dense.total_time(), dense.transfer_s);

  // Compressed round: the transfer is priced on the *wire* bytes, the codec
  // compute on the *dense* bytes, and encode+decode reproduces the seed's
  // single scalar codec charge (dense/4e9) exactly.
  const double ratio = 0.02;
  const SyncCost packed = backend->sync_cost(cost, kBytes, kWorkers, ratio);
  EXPECT_EQ(packed.wire_bytes,
            static_cast<size_t>(static_cast<double>(kBytes) * ratio));
  EXPECT_EQ(packed.dense_bytes, kBytes);
  EXPECT_DOUBLE_EQ(
      packed.transfer_s,
      cost.ring_allreduce_time(packed.wire_bytes, kWorkers));
  EXPECT_DOUBLE_EQ(packed.encode_s + packed.decode_s,
                   static_cast<double>(kBytes) / 4e9);
  EXPECT_LT(packed.transfer_s, dense.transfer_s);

  // Fault penalties accrue through the totals along with everything else.
  SyncCostTotals totals;
  totals.add(dense);
  totals.add(packed);
  EXPECT_EQ(totals.rounds, 2u);
  EXPECT_DOUBLE_EQ(totals.transfer_s, dense.transfer_s + packed.transfer_s);
  EXPECT_DOUBLE_EQ(totals.wire_bytes,
                   static_cast<double>(dense.wire_bytes + packed.wire_bytes));
  EXPECT_DOUBLE_EQ(totals.dense_bytes, 2.0 * static_cast<double>(kBytes));
}

/// Drives allreduce_encoded on every backend with the same Top-k codec and
/// inputs. The full-vector backends (shared, ps) must agree bitwise — the PS
/// push payload is compressed exactly like the shared-memory payload — and
/// every backend must report a genuinely reduced wire ratio.
TEST(CommBackendEncoded, SharedAndPsAgreeBitwiseAndAllReduceWire) {
  constexpr size_t kN = 4, kDim = 64;
  const auto inputs = awkward_inputs(kN, kDim);

  CompressionConfig codec;
  codec.kind = CompressionKind::kTopK;
  codec.topk_fraction = 0.25;
  codec.error_feedback = true;

  struct Run {
    std::vector<std::vector<float>> data;
    std::vector<double> ratio;
  };
  auto run_backend = [&](BackendKind kind) {
    CommBackendConfig config;
    config.kind = kind;
    config.workers = kN;
    config.compression = codec;
    config.topology = Topology::kRingAllreduce;
    if (kind == BackendKind::kParameterServer)
      config.initial_params.assign(kDim, 0.0f);
    auto backend = make_comm_backend(config);

    SharedCollectives coll(kN);
    const CommGroup full = CommGroup::full(kN);
    Run run{inputs, std::vector<double>(kN, 0.0)};
    spawn(kN, [&](size_t r) {
      WorkerContext ctx;
      ctx.rank = r;
      ctx.size = kN;
      ctx.collectives = &coll;
      double clock = 0.0;
      run.ratio[r] = backend->allreduce_encoded(
          ctx, run.data[r], full, clock, /*delta=*/0.0, 1.0f / kN);
    });
    return run;
  };

  const Run shared = run_backend(BackendKind::kSharedMemory);
  const Run ps = run_backend(BackendKind::kParameterServer);
  const Run ring = run_backend(BackendKind::kRing);
  const Run tree = run_backend(BackendKind::kTree);

  for (size_t r = 0; r < kN; ++r) {
    for (size_t i = 0; i < kDim; ++i) {
      EXPECT_EQ(ps.data[r][i], shared.data[r][i])
          << "ps vs shared, rank " << r << " elem " << i;
      // Every chunked backend hands all replicas the same reconstruction.
      EXPECT_EQ(ring.data[r][i], ring.data[0][i]) << "ring replicas diverge";
      EXPECT_EQ(tree.data[r][i], tree.data[0][i]) << "tree replicas diverge";
    }
    EXPECT_GT(shared.ratio[r], 0.0);
    EXPECT_LT(shared.ratio[r], 1.0) << "codec did not shrink the payload";
    EXPECT_DOUBLE_EQ(ps.ratio[r], shared.ratio[r]);
    EXPECT_LT(ring.ratio[r], 1.0);
    EXPECT_LT(tree.ratio[r], 1.0);
  }
}

TEST(CommBackendEncoded, WithoutCodecMatchesDenseAllreduceBitwise) {
  constexpr size_t kN = 4, kDim = 23;
  const auto inputs = awkward_inputs(kN, kDim);

  for (BackendKind kind :
       {BackendKind::kSharedMemory, BackendKind::kRing, BackendKind::kTree,
        BackendKind::kParameterServer}) {
    CommBackendConfig config;
    config.kind = kind;
    config.workers = kN;
    if (kind == BackendKind::kParameterServer)
      config.initial_params.assign(kDim, 0.0f);

    SharedCollectives coll(kN);
    const CommGroup full = CommGroup::full(kN);
    const float weight = 1.0f / kN;

    // Reference: weight locally, then the dense data plane.
    auto dense = inputs;
    {
      auto backend = make_comm_backend(config);
      spawn(kN, [&](size_t r) {
        WorkerContext ctx;
        ctx.rank = r;
        ctx.size = kN;
        ctx.collectives = &coll;
        double clock = 0.0;
        for (auto& g : dense[r]) g *= weight;
        backend->allreduce(ctx, dense[r], full, clock);
      });
    }

    auto encoded = inputs;
    std::vector<double> ratio(kN, -1.0);
    {
      auto backend = make_comm_backend(config);
      spawn(kN, [&](size_t r) {
        WorkerContext ctx;
        ctx.rank = r;
        ctx.size = kN;
        ctx.collectives = &coll;
        double clock = 0.0;
        ratio[r] = backend->allreduce_encoded(ctx, encoded[r], full, clock,
                                              0.0, weight);
      });
    }
    for (size_t r = 0; r < kN; ++r) {
      EXPECT_DOUBLE_EQ(ratio[r], 1.0) << backend_kind_name(kind);
      for (size_t i = 0; i < kDim; ++i)
        EXPECT_EQ(encoded[r][i], dense[r][i])
            << backend_kind_name(kind) << " rank " << r << " elem " << i;
    }
  }
}

}  // namespace
}  // namespace selsync
