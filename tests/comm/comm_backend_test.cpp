// CommBackend contract tests: name/parse round-trips, the factory, the
// bit-determinism guarantee shared by every synchronous data plane (tree and
// ranked-PS aggregation must equal SharedCollectives' fixed rank-order float
// summation exactly), fault-injected links, and per-backend cost pricing.
#include "comm/comm_backend.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/fault_injector.hpp"
#include "comm/parameter_server.hpp"
#include "comm/tree_allreduce.hpp"

namespace selsync {
namespace {

/// Runs `body(rank)` on `n` threads and joins.
template <typename F>
void spawn(size_t n, F body) {
  std::vector<std::thread> threads;
  for (size_t r = 0; r < n; ++r) threads.emplace_back([&, r] { body(r); });
  for (auto& t : threads) t.join();
}

/// Awkward float values (summation order visibly changes low bits) so the
/// bitwise comparisons below actually exercise the determinism contract.
std::vector<std::vector<float>> awkward_inputs(size_t workers, size_t dim) {
  std::vector<std::vector<float>> data(workers, std::vector<float>(dim));
  for (size_t r = 0; r < workers; ++r)
    for (size_t i = 0; i < dim; ++i)
      data[r][i] = 0.1f * static_cast<float>(r + 1) +
                   1e-4f * static_cast<float>(i * i) -
                   0.37f * static_cast<float>((r * 7 + i) % 5);
  return data;
}

/// The reference reduction: per element, fold contributions in ascending
/// rank order — the float summation order SharedCollectives fixes.
std::vector<float> rank_order_sum(const std::vector<std::vector<float>>& in) {
  std::vector<float> out(in[0].size());
  for (size_t i = 0; i < out.size(); ++i) {
    float acc = 0.0f;
    for (size_t r = 0; r < in.size(); ++r) acc += in[r][i];
    out[i] = acc;
  }
  return out;
}

TEST(BackendKind, NamesRoundTripThroughParse) {
  for (BackendKind kind :
       {BackendKind::kSharedMemory, BackendKind::kRing, BackendKind::kTree,
        BackendKind::kParameterServer})
    EXPECT_EQ(parse_backend_kind(backend_kind_name(kind)), kind);
  EXPECT_EQ(parse_backend_kind("shared"), BackendKind::kSharedMemory);
  EXPECT_EQ(parse_backend_kind("ring"), BackendKind::kRing);
  EXPECT_EQ(parse_backend_kind("tree"), BackendKind::kTree);
  EXPECT_EQ(parse_backend_kind("ps"), BackendKind::kParameterServer);
  EXPECT_THROW(parse_backend_kind("carrier-pigeon"), std::invalid_argument);
  EXPECT_THROW(parse_backend_kind(""), std::invalid_argument);
}

TEST(TreeAllreduceTest, BitIdenticalToSharedCollectivesForAllSizes) {
  // kDim deliberately not divisible by any cluster size; N covers the
  // degenerate single rank, powers of two and ragged trees.
  constexpr size_t kDim = 23;
  for (size_t n = 1; n <= 9; ++n) {
    const auto inputs = awkward_inputs(n, kDim);

    auto shared = inputs;
    SharedCollectives coll(n);
    spawn(n, [&](size_t r) { coll.allreduce_sum(r, shared[r]); });

    auto tree_data = inputs;
    TreeAllreduce tree(n);
    spawn(n, [&](size_t r) { tree.run(r, tree_data[r]); });

    for (size_t r = 0; r < n; ++r)
      for (size_t i = 0; i < kDim; ++i) {
        EXPECT_EQ(tree_data[r][i], shared[r][i])
            << "N=" << n << " rank " << r << " elem " << i;
        EXPECT_EQ(tree_data[r][i], tree_data[0][i]) << "ranks disagree";
      }
  }
}

TEST(TreeAllreduceTest, CriticalPathHopsIsTwiceCeilLog2) {
  EXPECT_EQ(TreeAllreduce::critical_path_hops(1), 0u);
  EXPECT_EQ(TreeAllreduce::critical_path_hops(2), 2u);
  EXPECT_EQ(TreeAllreduce::critical_path_hops(4), 4u);
  EXPECT_EQ(TreeAllreduce::critical_path_hops(5), 6u);
  EXPECT_EQ(TreeAllreduce::critical_path_hops(8), 6u);
  EXPECT_EQ(TreeAllreduce::critical_path_hops(9), 8u);
}

TEST(TreeAllreduceTest, LossyLinksStillDeliverTheExactPayload) {
  // Aggressive drop/delay/duplicate probabilities: the protocol must still
  // land the bit-exact rank-order sum; faults may only cost simulated time
  // and show up in the event log.
  constexpr size_t kN = 6, kDim = 23, kRounds = 4;
  FaultPlan plan;
  plan.seed = 31;
  plan.messages.drop_prob = 0.25;
  plan.messages.delay_prob = 0.25;
  plan.messages.duplicate_prob = 0.2;
  FaultInjector inj(plan, kN);
  TreeAllreduce tree(kN, &inj);

  for (size_t round = 0; round < kRounds; ++round) {
    const auto inputs = awkward_inputs(kN, kDim);
    const auto expected = rank_order_sum(inputs);
    auto data = inputs;
    std::vector<double> delay(kN);
    spawn(kN, [&](size_t r) {
      tree.run(r, data[r]);
      delay[r] = inj.take_pending_delay(r);
    });
    for (size_t r = 0; r < kN; ++r) {
      EXPECT_GE(delay[r], 0.0);
      for (size_t i = 0; i < kDim; ++i)
        EXPECT_EQ(data[r][i], expected[i])
            << "round " << round << " rank " << r << " elem " << i;
    }
  }
  const FaultSummary summary = inj.summary();
  EXPECT_GT(summary.messages_dropped + summary.messages_delayed +
                summary.messages_duplicated,
            0u)
      << "fault plan injected nothing; probabilities too low for the test";
}

TEST(ParameterServerRanked, SumMatchesRankOrderRegardlessOfArrival) {
  constexpr size_t kN = 5, kDim = 23;
  const auto inputs = awkward_inputs(kN, kDim);
  const auto expected = rank_order_sum(inputs);
  ParameterServer ps(std::vector<float>(kDim, 0.0f), kN);

  // Two rounds with opposite (staggered) arrival orders: the result must be
  // the ascending-rank reduction both times, bit for bit.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::vector<float>> out(kN);
    spawn(kN, [&](size_t r) {
      const size_t slot = round == 0 ? r : kN - 1 - r;
      std::this_thread::sleep_for(std::chrono::milliseconds(2 * slot));
      out[r] = ps.push_and_sum_ranked(r, inputs[r], kN);
    });
    for (size_t r = 0; r < kN; ++r) {
      ASSERT_EQ(out[r].size(), kDim);
      for (size_t i = 0; i < kDim; ++i)
        EXPECT_EQ(out[r][i], expected[i])
            << "round " << round << " rank " << r << " elem " << i;
    }
  }
}

TEST(MakeCommBackend, BuildsEveryKindAndExposesTheCentralStore) {
  CommBackendConfig config;
  config.workers = 4;
  for (BackendKind kind :
       {BackendKind::kSharedMemory, BackendKind::kRing, BackendKind::kTree}) {
    config.kind = kind;
    auto backend = make_comm_backend(config);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->kind(), kind);
    EXPECT_EQ(backend->central_store(), nullptr)
        << backend->name() << " must not claim a central store";
  }

  config.kind = BackendKind::kParameterServer;
  EXPECT_THROW(make_comm_backend(config), std::invalid_argument)
      << "ps backend without initial parameters must be rejected";
  config.initial_params.assign(17, 0.5f);
  auto ps = make_comm_backend(config);
  EXPECT_EQ(ps->kind(), BackendKind::kParameterServer);
  ASSERT_NE(ps->central_store(), nullptr);
  EXPECT_EQ(ps->central_store()->dim(), 17u);
  EXPECT_EQ(ps->central_store()->workers(), 4u);
}

TEST(CommBackendDataPlane, EveryBackendAllreducesBitIdentically) {
  // The full CommBackend interface (not the raw primitives): shared, tree
  // and ps must produce the exact same floats; ring differs in summation
  // order by design and is covered statistically by the strategy tests.
  constexpr size_t kN = 4, kDim = 23;
  const auto inputs = awkward_inputs(kN, kDim);
  const auto expected = rank_order_sum(inputs);

  for (BackendKind kind : {BackendKind::kSharedMemory, BackendKind::kTree,
                           BackendKind::kParameterServer}) {
    CommBackendConfig config;
    config.kind = kind;
    config.workers = kN;
    if (kind == BackendKind::kParameterServer)
      config.initial_params.assign(kDim, 0.0f);
    auto backend = make_comm_backend(config);

    SharedCollectives coll(kN);
    const CommGroup full = CommGroup::full(kN);
    auto data = inputs;
    std::vector<double> clock(kN, 0.0);
    spawn(kN, [&](size_t r) {
      WorkerContext ctx;
      ctx.rank = r;
      ctx.size = kN;
      ctx.collectives = &coll;
      backend->allreduce(ctx, data[r], full, clock[r]);
    });
    for (size_t r = 0; r < kN; ++r) {
      EXPECT_DOUBLE_EQ(clock[r], 0.0) << "no faults, no injected delay";
      for (size_t i = 0; i < kDim; ++i)
        EXPECT_EQ(data[r][i], expected[i])
            << backend->name() << " rank " << r << " elem " << i;
    }
  }
}

TEST(CommBackendCosts, SyncTransferTimeMatchesTheCostModelSchedules) {
  const CostModel cost(paper_network_5gbps());
  constexpr size_t kBytes = 1 << 20, kWorkers = 8;

  CommBackendConfig config;
  config.workers = kWorkers;

  // The shared-memory backend stands in for whatever the job's topology
  // declares (seed semantics): PS pricing or ring pricing.
  config.kind = BackendKind::kSharedMemory;
  config.topology = Topology::kParameterServer;
  EXPECT_DOUBLE_EQ(
      make_comm_backend(config)->sync_transfer_time(cost, kBytes, kWorkers),
      cost.ps_sync_time(kBytes, kWorkers));
  config.topology = Topology::kRingAllreduce;
  EXPECT_DOUBLE_EQ(
      make_comm_backend(config)->sync_transfer_time(cost, kBytes, kWorkers),
      cost.ring_allreduce_time(kBytes, kWorkers));

  // The ring transport also keeps the seed's topology-priced accounting
  // (golden parity depends on it).
  config.kind = BackendKind::kRing;
  config.topology = Topology::kParameterServer;
  EXPECT_DOUBLE_EQ(
      make_comm_backend(config)->sync_transfer_time(cost, kBytes, kWorkers),
      cost.ps_sync_time(kBytes, kWorkers));
  config.topology = Topology::kRingAllreduce;
  EXPECT_DOUBLE_EQ(
      make_comm_backend(config)->sync_transfer_time(cost, kBytes, kWorkers),
      cost.ring_allreduce_time(kBytes, kWorkers));

  // Tree and ps price their own schedules, whatever the topology knob says.
  config.kind = BackendKind::kTree;
  EXPECT_DOUBLE_EQ(
      make_comm_backend(config)->sync_transfer_time(cost, kBytes, kWorkers),
      cost.tree_allreduce_time(kBytes, kWorkers));
  config.kind = BackendKind::kParameterServer;
  config.initial_params.assign(4, 0.0f);
  config.topology = Topology::kRingAllreduce;
  EXPECT_DOUBLE_EQ(
      make_comm_backend(config)->sync_transfer_time(cost, kBytes, kWorkers),
      cost.ps_sync_time(kBytes, kWorkers));
}

}  // namespace
}  // namespace selsync
