#include "comm/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace selsync {
namespace {

TEST(Barrier, SinglePartyNeverBlocks) {
  AbortableBarrier b(1);
  for (int i = 0; i < 10; ++i) b.wait();
}

TEST(Barrier, AllPartiesMeet) {
  constexpr size_t kParties = 4;
  AbortableBarrier b(kParties);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kParties; ++i)
    threads.emplace_back([&] {
      ++before;
      b.wait();
      // After the barrier, every thread must observe all arrivals.
      EXPECT_EQ(before.load(), static_cast<int>(kParties));
      ++after;
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(after.load(), static_cast<int>(kParties));
}

TEST(Barrier, CyclicReuseAcrossGenerations) {
  constexpr size_t kParties = 3;
  constexpr int kRounds = 50;
  AbortableBarrier b(kParties);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kParties; ++i)
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        ++counter;
        b.wait();
        // Between two barriers the counter is a multiple of kParties.
        EXPECT_EQ(counter.load() % kParties, 0);
        b.wait();
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), static_cast<int>(kParties) * kRounds);
}

TEST(Barrier, AbortWakesWaiters) {
  AbortableBarrier b(2);
  std::thread waiter([&] { EXPECT_THROW(b.wait(), BarrierAborted); });
  // Give the waiter time to block, then abort.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b.abort();
  waiter.join();
}

TEST(Barrier, AbortedBarrierRejectsFutureWaits) {
  AbortableBarrier b(2);
  b.abort();
  EXPECT_THROW(b.wait(), BarrierAborted);
  EXPECT_TRUE(b.aborted());
}

TEST(Barrier, RejectsZeroParties) {
  EXPECT_THROW(AbortableBarrier(0), std::invalid_argument);
}

}  // namespace
}  // namespace selsync
