#include "comm/parameter_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace selsync {
namespace {

TEST(ParameterServer, PullReturnsInitialState) {
  ParameterServer ps({1.f, 2.f, 3.f}, 4);
  EXPECT_EQ(ps.pull(), (std::vector<float>{1.f, 2.f, 3.f}));
}

TEST(ParameterServer, Validation) {
  EXPECT_THROW(ParameterServer({}, 4), std::invalid_argument);
  EXPECT_THROW(ParameterServer({1.f}, 0), std::invalid_argument);
}

/// PA-mode bookkeeping through the PsRound protocol: average the round,
/// then store() the mean (Alg. 1 line 15 — the redesign split the fold
/// from the global-state write).
TEST(ParameterServer, AveragedRoundThenStoreUpdatesGlobal) {
  constexpr size_t kN = 4;
  ParameterServer ps(std::vector<float>(2, 0.f), kN);
  PsRoundConfig cfg;
  cfg.participants = kN;
  cfg.order = PsRoundOrder::kArrival;
  cfg.average = true;
  std::vector<std::thread> threads;
  std::vector<std::vector<float>> results(kN);
  for (size_t r = 0; r < kN; ++r)
    threads.emplace_back([&, r] {
      const std::vector<float> mine{static_cast<float>(r), 1.f};
      const uint64_t ticket = ps.round().begin(cfg);
      ps.round().contribute(ticket, r, mine);
      results[r] = ps.round().await(ticket);
      ps.store(results[r]);
    });
  for (auto& t : threads) t.join();
  for (size_t r = 0; r < kN; ++r) {
    EXPECT_FLOAT_EQ(results[r][0], 1.5f);  // mean of 0..3
    EXPECT_FLOAT_EQ(results[r][1], 1.f);
  }
  EXPECT_FLOAT_EQ(ps.pull()[0], 1.5f);
}

/// GA mode: the averaged round leaves the global state untouched — workers
/// apply the mean gradient locally (the paper's §III-C inconsistency).
TEST(ParameterServer, AveragedRoundLeavesGlobalUntouched) {
  constexpr size_t kN = 2;
  ParameterServer ps({7.f}, kN);
  PsRoundConfig cfg;
  cfg.participants = kN;
  cfg.order = PsRoundOrder::kArrival;
  cfg.average = true;
  std::vector<std::thread> threads;
  for (size_t r = 0; r < kN; ++r)
    threads.emplace_back([&, r] {
      const std::vector<float> grad{static_cast<float>(r + 1)};
      const uint64_t ticket = ps.round().begin(cfg);
      ps.round().contribute(ticket, r, grad);
      const auto mean = ps.round().await(ticket);
      EXPECT_FLOAT_EQ(mean[0], 1.5f);
    });
  for (auto& t : threads) t.join();
  EXPECT_FLOAT_EQ(ps.pull()[0], 7.f);
}

TEST(ParameterServer, SequentialRoundsProduceFreshAverages) {
  constexpr size_t kN = 2;
  ParameterServer ps({0.f}, kN);
  PsRoundConfig cfg;
  cfg.participants = kN;
  cfg.order = PsRoundOrder::kArrival;
  cfg.average = true;
  for (int round = 1; round <= 3; ++round) {
    std::vector<std::thread> threads;
    for (size_t r = 0; r < kN; ++r)
      threads.emplace_back([&, r] {
        const std::vector<float> v{static_cast<float>(round * 10 + r)};
        const uint64_t ticket = ps.round().begin(cfg);
        ps.round().contribute(ticket, r, v);
        const auto mean = ps.round().await(ticket);
        EXPECT_FLOAT_EQ(mean[0], round * 10 + 0.5f);
      });
    for (auto& t : threads) t.join();
  }
}

TEST(ParameterServer, StoreOverwrites) {
  ParameterServer ps({0.f, 0.f}, 2);
  ps.store(std::vector<float>{4.f, 5.f});
  EXPECT_EQ(ps.pull(), (std::vector<float>{4.f, 5.f}));
  EXPECT_THROW(ps.store(std::vector<float>{1.f}), std::invalid_argument);
}

TEST(ParameterServer, AsyncGradientAppliesSgd) {
  ParameterServer ps({1.f, 2.f}, 2);
  ps.apply_gradient_async(std::vector<float>{10.f, -10.f}, 0.1);
  const auto params = ps.pull();
  EXPECT_FLOAT_EQ(params[0], 0.f);
  EXPECT_FLOAT_EQ(params[1], 3.f);
  EXPECT_EQ(ps.async_updates(), 1u);
}

TEST(ParameterServer, AsyncUpdatesFromManyThreadsAllLand) {
  ParameterServer ps({0.f}, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i)
        ps.apply_gradient_async(std::vector<float>{-1.f}, 1.0);
    });
  for (auto& t : threads) t.join();
  EXPECT_FLOAT_EQ(ps.pull()[0], 400.f);
  EXPECT_EQ(ps.async_updates(), 400u);
}

TEST(ParameterServer, DeltaPushAccumulates) {
  ParameterServer ps({1.f, 2.f}, 2);
  ps.apply_delta_async(std::vector<float>{0.5f, -0.5f});
  ps.apply_delta_async(std::vector<float>{0.5f, -0.5f});
  const auto params = ps.pull();
  EXPECT_FLOAT_EQ(params[0], 2.f);
  EXPECT_FLOAT_EQ(params[1], 1.f);
  EXPECT_EQ(ps.async_updates(), 2u);
  EXPECT_THROW(ps.apply_delta_async(std::vector<float>{1.f}),
               std::invalid_argument);
}

TEST(ParameterServer, StalenessBlocksFastWorker) {
  // Worker 0 races ahead; with staleness 3 it must block until worker 1
  // catches up.
  ParameterServer ps({0.f}, 2);
  std::atomic<uint64_t> fast_progress{0};
  std::thread fast([&] {
    for (uint64_t it = 1; it <= 10; ++it) {
      ps.enforce_staleness(0, it, 3);
      fast_progress = it;
    }
    ps.finish(0);
  });
  // Give the fast worker a head start; it must stall at iteration 4
  // (1 <= min(0) + 3 fails at it=4 while worker 1 sits at 0).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(fast_progress.load(), 3u);
  std::thread slow([&] {
    for (uint64_t it = 1; it <= 10; ++it) ps.enforce_staleness(1, it, 3);
    ps.finish(1);
  });
  fast.join();
  slow.join();
  EXPECT_EQ(fast_progress.load(), 10u);
}

TEST(ParameterServer, FinishedWorkerStopsGating) {
  ParameterServer ps({0.f}, 2);
  ps.finish(1);  // worker 1 exits immediately
  // Worker 0 can now run arbitrarily far ahead without blocking.
  for (uint64_t it = 1; it <= 100; ++it) ps.enforce_staleness(0, it, 2);
  ps.finish(0);
  SUCCEED();
}

TEST(AggregationMode, Names) {
  EXPECT_STREQ(aggregation_mode_name(AggregationMode::kParameters), "PA");
  EXPECT_STREQ(aggregation_mode_name(AggregationMode::kGradients), "GA");
}

// ---------------------------------------------------------------------------
// ShardedParameterServer
// ---------------------------------------------------------------------------

TEST(ShardedParameterServer, SplitsContiguousRangesEvenly) {
  // dim 7 over 3 shards: 3 + 2 + 2, contiguous and exhaustive.
  ShardedParameterServer sps({0.f, 1.f, 2.f, 3.f, 4.f, 5.f, 6.f}, 4, 3);
  EXPECT_EQ(sps.dim(), 7u);
  EXPECT_EQ(sps.workers(), 4u);
  EXPECT_EQ(sps.shards(), 3u);
  size_t offset = 0;
  for (size_t k = 0; k < sps.shards(); ++k) {
    const auto range = sps.shard_range(k);
    EXPECT_EQ(range.offset, offset);
    EXPECT_EQ(sps.shard(k).dim(), range.length);
    EXPECT_EQ(sps.shard(k).workers(), 4u);
    offset += range.length;
  }
  EXPECT_EQ(offset, sps.dim());
  EXPECT_EQ(sps.shard_range(0).length, 3u);
  EXPECT_EQ(sps.shard_range(1).length, 2u);
  EXPECT_EQ(sps.shard_range(2).length, 2u);
  // The shards hold their slice of the seed model.
  EXPECT_EQ(sps.pull(),
            (std::vector<float>{0.f, 1.f, 2.f, 3.f, 4.f, 5.f, 6.f}));
}

TEST(ShardedParameterServer, Validation) {
  EXPECT_THROW(ShardedParameterServer({1.f, 2.f}, 4, 0),
               std::invalid_argument);
  EXPECT_THROW(ShardedParameterServer({1.f, 2.f}, 4, 3),
               std::invalid_argument)
      << "more shards than parameters";
  EXPECT_THROW(ShardedParameterServer({}, 4, 1), std::invalid_argument);
}

TEST(ShardedParameterServer, FacadeSplitsAsyncUpdatesAcrossShards) {
  ShardedParameterServer sps({1.f, 2.f, 3.f, 4.f}, 2, 2);
  sps.apply_delta_async(std::vector<float>{0.5f, 0.5f, -1.f, -1.f});
  EXPECT_EQ(sps.pull(), (std::vector<float>{1.5f, 2.5f, 2.f, 3.f}));
  sps.apply_gradient_async(std::vector<float>{1.f, 1.f, 1.f, 1.f}, 0.5);
  EXPECT_EQ(sps.pull(), (std::vector<float>{1.f, 2.f, 1.5f, 2.5f}));
  // One count per facade push, not per shard.
  EXPECT_EQ(sps.async_updates(), 2u);
  sps.store(std::vector<float>{9.f, 8.f, 7.f, 6.f});
  EXPECT_EQ(sps.pull(), (std::vector<float>{9.f, 8.f, 7.f, 6.f}));
  EXPECT_THROW(sps.store(std::vector<float>{1.f}), std::invalid_argument);
  EXPECT_THROW(sps.apply_delta_async(std::vector<float>{1.f}),
               std::invalid_argument);
}

TEST(ShardedParameterServer, StalenessGateIsGlobalAcrossShards) {
  // Same scenario as ParameterServer.StalenessBlocksFastWorker, through the
  // sharded facade: the bound is one global gate, not per shard.
  ShardedParameterServer sps({0.f, 0.f, 0.f}, 2, 2);
  std::atomic<uint64_t> fast_progress{0};
  std::thread fast([&] {
    for (uint64_t it = 1; it <= 10; ++it) {
      sps.enforce_staleness(0, it, 3);
      fast_progress = it;
    }
    sps.finish(0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(fast_progress.load(), 3u);
  std::thread slow([&] {
    for (uint64_t it = 1; it <= 10; ++it) sps.enforce_staleness(1, it, 3);
    sps.finish(1);
  });
  fast.join();
  slow.join();
  EXPECT_EQ(fast_progress.load(), 10u);
}

TEST(ShardedParameterServer, AbortFansOutToEveryShard) {
  ShardedParameterServer sps({0.f, 0.f, 0.f, 0.f}, 4, 4);
  EXPECT_FALSE(sps.aborted());
  sps.abort();
  EXPECT_TRUE(sps.aborted());
  for (size_t k = 0; k < sps.shards(); ++k) {
    EXPECT_TRUE(sps.shard(k).aborted()) << "shard " << k;
    EXPECT_TRUE(sps.shard(k).round().aborted()) << "shard " << k;
  }
}

}  // namespace
}  // namespace selsync
