#include "comm/parameter_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace selsync {
namespace {

TEST(ParameterServer, PullReturnsInitialState) {
  ParameterServer ps({1.f, 2.f, 3.f}, 4);
  EXPECT_EQ(ps.pull(), (std::vector<float>{1.f, 2.f, 3.f}));
}

TEST(ParameterServer, Validation) {
  EXPECT_THROW(ParameterServer({}, 4), std::invalid_argument);
  EXPECT_THROW(ParameterServer({1.f}, 0), std::invalid_argument);
}

TEST(ParameterServer, ParameterAveragingUpdatesGlobal) {
  constexpr size_t kN = 4;
  ParameterServer ps(std::vector<float>(2, 0.f), kN);
  std::vector<std::thread> threads;
  std::vector<std::vector<float>> results(kN);
  for (size_t r = 0; r < kN; ++r)
    threads.emplace_back([&, r] {
      const std::vector<float> mine{static_cast<float>(r), 1.f};
      results[r] =
          ps.push_and_average(mine, AggregationMode::kParameters, kN);
    });
  for (auto& t : threads) t.join();
  for (size_t r = 0; r < kN; ++r) {
    EXPECT_FLOAT_EQ(results[r][0], 1.5f);  // mean of 0..3
    EXPECT_FLOAT_EQ(results[r][1], 1.f);
  }
  // PA mode replaces the global state (Alg. 1 line 15).
  EXPECT_FLOAT_EQ(ps.pull()[0], 1.5f);
}

TEST(ParameterServer, GradientAveragingLeavesGlobalUntouched) {
  constexpr size_t kN = 2;
  ParameterServer ps({7.f}, kN);
  std::vector<std::thread> threads;
  for (size_t r = 0; r < kN; ++r)
    threads.emplace_back([&, r] {
      const std::vector<float> grad{static_cast<float>(r + 1)};
      const auto mean =
          ps.push_and_average(grad, AggregationMode::kGradients, kN);
      EXPECT_FLOAT_EQ(mean[0], 1.5f);
    });
  for (auto& t : threads) t.join();
  EXPECT_FLOAT_EQ(ps.pull()[0], 7.f);  // GA does not move global params
}

TEST(ParameterServer, SequentialRoundsProduceFreshAverages) {
  constexpr size_t kN = 2;
  ParameterServer ps({0.f}, kN);
  for (int round = 1; round <= 3; ++round) {
    std::vector<std::thread> threads;
    for (size_t r = 0; r < kN; ++r)
      threads.emplace_back([&, r] {
        const std::vector<float> v{static_cast<float>(round * 10 + r)};
        const auto mean =
            ps.push_and_average(v, AggregationMode::kParameters, kN);
        EXPECT_FLOAT_EQ(mean[0], round * 10 + 0.5f);
      });
    for (auto& t : threads) t.join();
  }
}

TEST(ParameterServer, StoreOverwrites) {
  ParameterServer ps({0.f, 0.f}, 2);
  ps.store(std::vector<float>{4.f, 5.f});
  EXPECT_EQ(ps.pull(), (std::vector<float>{4.f, 5.f}));
  EXPECT_THROW(ps.store(std::vector<float>{1.f}), std::invalid_argument);
}

TEST(ParameterServer, AsyncGradientAppliesSgd) {
  ParameterServer ps({1.f, 2.f}, 2);
  ps.apply_gradient_async(std::vector<float>{10.f, -10.f}, 0.1);
  const auto params = ps.pull();
  EXPECT_FLOAT_EQ(params[0], 0.f);
  EXPECT_FLOAT_EQ(params[1], 3.f);
  EXPECT_EQ(ps.async_updates(), 1u);
}

TEST(ParameterServer, AsyncUpdatesFromManyThreadsAllLand) {
  ParameterServer ps({0.f}, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i)
        ps.apply_gradient_async(std::vector<float>{-1.f}, 1.0);
    });
  for (auto& t : threads) t.join();
  EXPECT_FLOAT_EQ(ps.pull()[0], 400.f);
  EXPECT_EQ(ps.async_updates(), 400u);
}

TEST(ParameterServer, DeltaPushAccumulates) {
  ParameterServer ps({1.f, 2.f}, 2);
  ps.apply_delta_async(std::vector<float>{0.5f, -0.5f});
  ps.apply_delta_async(std::vector<float>{0.5f, -0.5f});
  const auto params = ps.pull();
  EXPECT_FLOAT_EQ(params[0], 2.f);
  EXPECT_FLOAT_EQ(params[1], 1.f);
  EXPECT_EQ(ps.async_updates(), 2u);
  EXPECT_THROW(ps.apply_delta_async(std::vector<float>{1.f}),
               std::invalid_argument);
}

TEST(ParameterServer, StalenessBlocksFastWorker) {
  // Worker 0 races ahead; with staleness 3 it must block until worker 1
  // catches up.
  ParameterServer ps({0.f}, 2);
  std::atomic<uint64_t> fast_progress{0};
  std::thread fast([&] {
    for (uint64_t it = 1; it <= 10; ++it) {
      ps.enforce_staleness(0, it, 3);
      fast_progress = it;
    }
    ps.finish(0);
  });
  // Give the fast worker a head start; it must stall at iteration 4
  // (1 <= min(0) + 3 fails at it=4 while worker 1 sits at 0).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(fast_progress.load(), 3u);
  std::thread slow([&] {
    for (uint64_t it = 1; it <= 10; ++it) ps.enforce_staleness(1, it, 3);
    ps.finish(1);
  });
  fast.join();
  slow.join();
  EXPECT_EQ(fast_progress.load(), 10u);
}

TEST(ParameterServer, FinishedWorkerStopsGating) {
  ParameterServer ps({0.f}, 2);
  ps.finish(1);  // worker 1 exits immediately
  // Worker 0 can now run arbitrarily far ahead without blocking.
  for (uint64_t it = 1; it <= 100; ++it) ps.enforce_staleness(0, it, 2);
  ps.finish(0);
  SUCCEED();
}

TEST(ParameterServer, PushAverageValidatesDims) {
  ParameterServer ps({0.f, 0.f}, 2);
  EXPECT_THROW(
      ps.push_and_average(std::vector<float>{1.f},
                          AggregationMode::kParameters, 2),
      std::invalid_argument);
  EXPECT_THROW(ps.push_and_average(std::vector<float>{1.f, 2.f},
                                   AggregationMode::kParameters, 0),
               std::invalid_argument);
}

TEST(AggregationMode, Names) {
  EXPECT_STREQ(aggregation_mode_name(AggregationMode::kParameters), "PA");
  EXPECT_STREQ(aggregation_mode_name(AggregationMode::kGradients), "GA");
}

}  // namespace
}  // namespace selsync
