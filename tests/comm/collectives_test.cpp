#include "comm/collectives.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace selsync {
namespace {

/// Runs `body(rank)` on `n` threads and joins.
template <typename F>
void spawn(size_t n, F body) {
  std::vector<std::thread> threads;
  for (size_t r = 0; r < n; ++r) threads.emplace_back([&, r] { body(r); });
  for (auto& t : threads) t.join();
}

TEST(SharedCollectives, AllreduceSumIsExact) {
  constexpr size_t kN = 4, kDim = 16;
  SharedCollectives coll(kN);
  std::vector<std::vector<float>> data(kN, std::vector<float>(kDim));
  for (size_t r = 0; r < kN; ++r)
    for (size_t i = 0; i < kDim; ++i)
      data[r][i] = static_cast<float>(r + 1) * static_cast<float>(i);
  spawn(kN, [&](size_t r) { coll.allreduce_sum(r, data[r]); });
  // sum over ranks of (r+1)*i = 10*i for N=4.
  for (size_t r = 0; r < kN; ++r)
    for (size_t i = 0; i < kDim; ++i)
      EXPECT_FLOAT_EQ(data[r][i], 10.f * i) << "rank " << r << " i " << i;
}

TEST(SharedCollectives, AllreduceMeanDividesByN) {
  constexpr size_t kN = 5;
  SharedCollectives coll(kN);
  std::vector<std::vector<float>> data(kN, std::vector<float>(3));
  for (size_t r = 0; r < kN; ++r) data[r].assign(3, static_cast<float>(r));
  spawn(kN, [&](size_t r) { coll.allreduce_mean(r, data[r]); });
  for (size_t r = 0; r < kN; ++r)
    EXPECT_FLOAT_EQ(data[r][0], 2.f);  // mean of 0..4
}

TEST(SharedCollectives, SequentialCollectivesDoNotInterfere) {
  constexpr size_t kN = 3;
  SharedCollectives coll(kN);
  std::vector<std::vector<float>> a(kN, {1.f}), b(kN, {10.f});
  spawn(kN, [&](size_t r) {
    coll.allreduce_sum(r, a[r]);
    coll.allreduce_sum(r, b[r]);
  });
  for (size_t r = 0; r < kN; ++r) {
    EXPECT_FLOAT_EQ(a[r][0], 3.f);
    EXPECT_FLOAT_EQ(b[r][0], 30.f);
  }
}

TEST(SharedCollectives, AllreduceMax) {
  constexpr size_t kN = 6;
  SharedCollectives coll(kN);
  std::vector<double> out(kN);
  spawn(kN, [&](size_t r) {
    out[r] = coll.allreduce_max(r, static_cast<double>(r) * 1.5);
  });
  for (size_t r = 0; r < kN; ++r) EXPECT_DOUBLE_EQ(out[r], 7.5);
}

TEST(SharedCollectives, AllgatherByteMatchesAlg1Flags) {
  // Alg. 1 line 12: index n of the gathered array holds worker n's bit.
  constexpr size_t kN = 8;
  SharedCollectives coll(kN);
  std::vector<std::vector<uint8_t>> out(kN);
  spawn(kN, [&](size_t r) {
    out[r] = coll.allgather_byte(r, r % 3 == 0 ? 1 : 0);
  });
  for (size_t r = 0; r < kN; ++r) {
    ASSERT_EQ(out[r].size(), kN);
    for (size_t w = 0; w < kN; ++w)
      EXPECT_EQ(out[r][w], w % 3 == 0 ? 1 : 0);
  }
}

TEST(SharedCollectives, BroadcastFromEveryRoot) {
  constexpr size_t kN = 4;
  SharedCollectives coll(kN);
  for (size_t root = 0; root < kN; ++root) {
    std::vector<std::vector<float>> data(kN, std::vector<float>(2, -1.f));
    data[root] = {static_cast<float>(root), 42.f};
    spawn(kN, [&](size_t r) { coll.broadcast(r, root, data[r]); });
    for (size_t r = 0; r < kN; ++r) {
      EXPECT_FLOAT_EQ(data[r][0], static_cast<float>(root));
      EXPECT_FLOAT_EQ(data[r][1], 42.f);
    }
  }
}

TEST(SharedCollectives, SingleWorkerDegenerate) {
  SharedCollectives coll(1);
  std::vector<float> v{3.f};
  coll.allreduce_mean(0, v);
  EXPECT_FLOAT_EQ(v[0], 3.f);
  EXPECT_DOUBLE_EQ(coll.allreduce_max(0, 2.5), 2.5);
}

TEST(RingAllreduce, MatchesSharedMemoryResult) {
  constexpr size_t kN = 4, kDim = 23;  // non-divisible length exercises
                                       // uneven chunking
  RingAllreduce ring(kN);
  std::vector<std::vector<float>> data(kN, std::vector<float>(kDim));
  std::vector<float> expected(kDim, 0.f);
  Rng rng(3);
  for (size_t r = 0; r < kN; ++r)
    for (size_t i = 0; i < kDim; ++i) {
      data[r][i] = static_cast<float>(rng.normal());
      expected[i] += data[r][i];
    }
  spawn(kN, [&](size_t r) { ring.run(r, data[r]); });
  for (size_t r = 0; r < kN; ++r)
    for (size_t i = 0; i < kDim; ++i)
      EXPECT_NEAR(data[r][i], expected[i], 1e-4) << "rank " << r << " i " << i;
}

TEST(RingAllreduce, TwoWorkers) {
  RingAllreduce ring(2);
  std::vector<std::vector<float>> data{{1.f, 2.f, 3.f}, {10.f, 20.f, 30.f}};
  spawn(2, [&](size_t r) { ring.run(r, data[r]); });
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_FLOAT_EQ(data[r][0], 11.f);
    EXPECT_FLOAT_EQ(data[r][2], 33.f);
  }
}

TEST(RingAllreduce, SingleWorkerIsNoop) {
  RingAllreduce ring(1);
  std::vector<float> v{5.f};
  ring.run(0, v);
  EXPECT_FLOAT_EQ(v[0], 5.f);
}

TEST(RingAllreduce, RepeatedRunsStayCorrect) {
  constexpr size_t kN = 3;
  RingAllreduce ring(kN);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::vector<float>> data(
        kN, std::vector<float>(8, static_cast<float>(round + 1)));
    spawn(kN, [&](size_t r) { ring.run(r, data[r]); });
    for (size_t r = 0; r < kN; ++r)
      EXPECT_FLOAT_EQ(data[r][0], 3.f * (round + 1));
  }
}

TEST(RingAllreduce, MessageCountFormula) {
  EXPECT_EQ(RingAllreduce::messages_per_rank(1), 0u);
  EXPECT_EQ(RingAllreduce::messages_per_rank(4), 6u);
  EXPECT_EQ(RingAllreduce::messages_per_rank(16), 30u);
}

}  // namespace
}  // namespace selsync
