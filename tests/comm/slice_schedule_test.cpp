#include "comm/slice_schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace selsync {
namespace {

size_t covered(const SliceSchedule& sched) {
  size_t sum = 0;
  for (const SyncSlice& s : sched.slices()) sum += s.length;
  return sum;
}

/// Slices must tile [0, total) exactly once when replayed in ascending
/// offset order, whatever order the schedule emits them in.
void expect_exact_cover(const SliceSchedule& sched, size_t total) {
  std::vector<SyncSlice> sorted(sched.slices().begin(), sched.slices().end());
  std::sort(sorted.begin(), sorted.end(),
            [](const SyncSlice& a, const SyncSlice& b) {
              return a.offset < b.offset;
            });
  size_t next = 0;
  for (const SyncSlice& s : sorted) {
    EXPECT_EQ(s.offset, next);
    EXPECT_GT(s.length, 0u);
    next = s.offset + s.length;
  }
  EXPECT_EQ(next, total);
  EXPECT_EQ(sched.total_params(), total);
}

TEST(SliceSchedule, SingleCoversWholePayload) {
  const auto sched = SliceSchedule::single(640);
  EXPECT_TRUE(sched.single_slice());
  EXPECT_EQ(sched.size(), 1u);
  EXPECT_EQ(sched.slices()[0].offset, 0u);
  EXPECT_EQ(sched.slices()[0].length, 640u);
  EXPECT_EQ(sched.slices()[0].ready_fraction, 1.0);
  expect_exact_cover(sched, 640);
}

TEST(SliceSchedule, BuildRespectsLayerBoundaries) {
  // Layers are atomic: every slice boundary must land on a prefix sum of
  // the layer sizes.
  const std::vector<size_t> layers = {100, 300, 50, 250, 300};
  const auto sched =
      SliceSchedule::build(layers, 3, SliceScheduleKind::kOutputFirst);
  EXPECT_EQ(sched.size(), 3u);
  expect_exact_cover(sched, 1000);
  std::vector<size_t> prefixes;
  size_t acc = 0;
  for (size_t l : layers) prefixes.push_back(acc += l);
  for (const SyncSlice& s : sched.slices()) {
    const size_t end = s.offset + s.length;
    EXPECT_TRUE(std::find(prefixes.begin(), prefixes.end(), end) !=
                prefixes.end())
        << "slice end " << end << " splits a layer";
  }
}

TEST(SliceSchedule, BuildBalancesVolume) {
  // 64 equal layers into 4 slices: the greedy volume targets give an even
  // 16-layer split.
  const auto sched = SliceSchedule::build(std::vector<size_t>(64, 10), 4,
                                          SliceScheduleKind::kOutputFirst);
  ASSERT_EQ(sched.size(), 4u);
  for (const SyncSlice& s : sched.slices()) EXPECT_EQ(s.length, 160u);
  expect_exact_cover(sched, 640);
}

TEST(SliceSchedule, SaturatesAtLayerCount) {
  // More slices than layers degrades to one slice per layer, never an
  // empty slice.
  const std::vector<size_t> layers = {5, 7, 9};
  const auto sched =
      SliceSchedule::build(layers, 16, SliceScheduleKind::kOutputFirst);
  EXPECT_EQ(sched.size(), 3u);
  expect_exact_cover(sched, 21);
}

TEST(SliceSchedule, SkipsEmptyLayers) {
  const std::vector<size_t> layers = {0, 8, 0, 0, 8, 0};
  const auto sched =
      SliceSchedule::build(layers, 4, SliceScheduleKind::kOutputFirst);
  EXPECT_EQ(sched.size(), 2u);
  expect_exact_cover(sched, 16);
}

TEST(SliceSchedule, EveryGroupGetsALayerEvenWhenVolumeIsSkewed) {
  // One huge input layer swallows the volume budget; the tail layers must
  // still be spread across the remaining groups rather than collapsed
  // into one.
  const std::vector<size_t> layers = {1000, 1, 1, 1};
  const auto sched =
      SliceSchedule::build(layers, 3, SliceScheduleKind::kOutputFirst);
  EXPECT_EQ(sched.size(), 3u);
  expect_exact_cover(sched, 1003);
}

TEST(SliceSchedule, OutputFirstEmitsTailFirstWithRisingReadiness) {
  // P3 order: the first emitted slice is the output end of the flat vector
  // (highest offset, earliest-ready fraction); readiness is monotone in
  // emission order and hits 1.0 on the input-end slice.
  const auto sched = SliceSchedule::build(std::vector<size_t>(8, 100), 4,
                                          SliceScheduleKind::kOutputFirst);
  ASSERT_EQ(sched.size(), 4u);
  const auto& s = sched.slices();
  for (size_t i = 0; i + 1 < s.size(); ++i) {
    EXPECT_GT(s[i].offset, s[i + 1].offset);
    EXPECT_LT(s[i].ready_fraction, s[i + 1].ready_fraction);
  }
  EXPECT_EQ(s.front().ready_fraction, 0.25);
  EXPECT_EQ(s.back().offset, 0u);
  EXPECT_EQ(s.back().ready_fraction, 1.0);
}

TEST(SliceSchedule, InputFirstEmitsInAscendingOffsetOrder) {
  const auto sched = SliceSchedule::build(std::vector<size_t>(8, 100), 4,
                                          SliceScheduleKind::kInputFirst);
  ASSERT_EQ(sched.size(), 4u);
  const auto& s = sched.slices();
  for (size_t i = 0; i + 1 < s.size(); ++i)
    EXPECT_LT(s[i].offset, s[i + 1].offset);
  // The input-end slice is only ready once backward has swept everything.
  EXPECT_EQ(s.front().offset, 0u);
  EXPECT_EQ(s.front().ready_fraction, 1.0);
}

TEST(SliceSchedule, ReadyFractionMatchesBackwardSweep) {
  // ready_fraction of a slice at offset o is (total - o) / total: backward
  // sweeps output->input, i.e. the flat tail is produced first.
  const auto sched = SliceSchedule::build(std::vector<size_t>(4, 250), 4,
                                          SliceScheduleKind::kOutputFirst);
  for (const SyncSlice& s : sched.slices()) {
    EXPECT_DOUBLE_EQ(
        s.ready_fraction,
        static_cast<double>(1000 - s.offset) / 1000.0);
  }
}

TEST(SliceSchedule, RejectsDegenerateInputs) {
  EXPECT_THROW(SliceSchedule::single(0), std::invalid_argument);
  EXPECT_THROW(SliceSchedule::build({1, 2, 3}, 0,
                                    SliceScheduleKind::kOutputFirst),
               std::invalid_argument);
  EXPECT_THROW(SliceSchedule::build({}, 2, SliceScheduleKind::kOutputFirst),
               std::invalid_argument);
  EXPECT_THROW(SliceSchedule::build({0, 0}, 2,
                                    SliceScheduleKind::kOutputFirst),
               std::invalid_argument);
}

TEST(SliceSchedule, DefaultConstructedIsEmptySingle) {
  const SliceSchedule sched;
  EXPECT_TRUE(sched.single_slice());
  EXPECT_EQ(sched.size(), 0u);
  EXPECT_EQ(covered(sched), 0u);
}

TEST(SliceScheduleKind, NamesRoundTrip) {
  EXPECT_STREQ(slice_schedule_kind_name(SliceScheduleKind::kOutputFirst),
               "output-first");
  EXPECT_STREQ(slice_schedule_kind_name(SliceScheduleKind::kInputFirst),
               "input-first");
  EXPECT_EQ(slice_schedule_kind_from_name("output-first"),
            SliceScheduleKind::kOutputFirst);
  EXPECT_EQ(slice_schedule_kind_from_name("input-first"),
            SliceScheduleKind::kInputFirst);
  EXPECT_FALSE(slice_schedule_kind_from_name("sideways").has_value());
}

}  // namespace
}  // namespace selsync
