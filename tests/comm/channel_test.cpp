#include "comm/channel.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace selsync {
namespace {

TEST(Channel, FifoOrder) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.send(3);
  EXPECT_EQ(ch.recv().value(), 1);
  EXPECT_EQ(ch.recv().value(), 2);
  EXPECT_EQ(ch.recv().value(), 3);
}

TEST(Channel, TryRecvNonBlocking) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(7);
  EXPECT_EQ(ch.try_recv().value(), 7);
  EXPECT_FALSE(ch.try_recv().has_value());
}

TEST(Channel, RecvBlocksUntilSend) {
  Channel<int> ch;
  std::thread producer([&] { ch.send(42); });
  EXPECT_EQ(ch.recv().value(), 42);
  producer.join();
}

TEST(Channel, CloseUnblocksReceivers) {
  Channel<int> ch;
  std::thread consumer([&] { EXPECT_FALSE(ch.recv().has_value()); });
  ch.close();
  consumer.join();
}

TEST(Channel, CloseDrainsPendingFirst) {
  Channel<int> ch;
  ch.send(1);
  ch.close();
  EXPECT_EQ(ch.recv().value(), 1);
  EXPECT_FALSE(ch.recv().has_value());
}

TEST(Channel, SendAfterCloseThrows) {
  Channel<int> ch;
  ch.close();
  EXPECT_THROW(ch.send(1), std::runtime_error);
}

TEST(Channel, PendingCount) {
  Channel<int> ch;
  EXPECT_EQ(ch.pending(), 0u);
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.pending(), 2u);
}

TEST(Channel, ManyProducersOneConsumer) {
  Channel<int> ch;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) ch.send(p * kPerProducer + i);
    });
  long long sum = 0;
  for (int i = 0; i < 4 * kPerProducer; ++i) sum += ch.recv().value();
  for (auto& t : producers) t.join();
  EXPECT_EQ(sum, (800LL * 799) / 2);
}

TEST(Channel, MovesLargePayloads) {
  Channel<std::vector<float>> ch;
  ch.send(std::vector<float>(1000, 1.f));
  const auto msg = ch.recv();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->size(), 1000u);
}

}  // namespace
}  // namespace selsync
