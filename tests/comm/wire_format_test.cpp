// WireFormat is the single serialize/deserialize surface both carriers
// consume (DESIGN.md §13): these tests pin the framing header, the
// endian-pinned primitives, and the chunk payload layouts for every codec —
// round-trips must be exact, and torn/garbage input must throw
// WireFormatError instead of silently truncating.
#include "comm/wire_format.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comm/compression.hpp"

namespace selsync {
namespace {

using wire::Reader;
using wire::WireFormatError;

std::vector<float> ramp(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(i % 2 == 0 ? i : -static_cast<double>(i)) /
           static_cast<float>(n);
  return v;
}

/// codec_transform in place (no error feedback), returning the transformed
/// payload an encoder would see.
std::vector<float> transformed(const CompressionConfig& config,
                               std::vector<float> values) {
  codec_transform(config, values, nullptr);
  return values;
}

std::vector<float> round_trip(const CompressionConfig& config,
                              const std::vector<float>& values) {
  const std::vector<uint8_t> payload = wire::encode_chunk(config, values);
  return wire::decode_chunk(config, payload.data(), payload.size(),
                            values.size());
}

TEST(WireHeader, RoundTripsVerbAndLength) {
  const std::vector<uint8_t> header = wire::encode_header(7, 1234567);
  ASSERT_EQ(header.size(), wire::kHeaderBytes);
  const wire::FrameHeader parsed =
      wire::decode_header(header.data(), header.size());
  EXPECT_EQ(parsed.verb, 7);
  EXPECT_EQ(parsed.payload_len, 1234567u);
}

TEST(WireHeader, ShortBufferIsATornFrame) {
  const std::vector<uint8_t> header = wire::encode_header(1, 0);
  for (size_t cut = 0; cut < wire::kHeaderBytes; ++cut)
    EXPECT_THROW(wire::decode_header(header.data(), cut), WireFormatError)
        << cut << " bytes of a header must not parse";
}

TEST(WireHeader, GarbageMagicIsRejected) {
  std::vector<uint8_t> header = wire::encode_header(1, 0);
  header[0] ^= 0xFF;
  EXPECT_THROW(wire::decode_header(header.data(), header.size()),
               WireFormatError);
}

TEST(WireHeader, UnknownVersionIsRejected) {
  // A future build bumping kWireVersion must be refused loudly, not
  // misparsed: version sits at byte offset 4.
  std::vector<uint8_t> header = wire::encode_header(1, 0);
  header[4] = static_cast<uint8_t>(wire::kWireVersion + 1);
  EXPECT_THROW(wire::decode_header(header.data(), header.size()),
               WireFormatError);
}

TEST(WireReader, PrimitivesRoundTripLittleEndian) {
  std::vector<uint8_t> buf;
  wire::put_u16(buf, 0xBEEF);
  wire::put_u32(buf, 0xDEADBEEFu);
  wire::put_u64(buf, 0x0123456789ABCDEFull);
  wire::put_f32(buf, -1.5f);
  wire::put_f64(buf, 2.25);
  // The layout is pinned, not host-dependent: first field is 0xBEEF
  // little-endian.
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[1], 0xBE);

  Reader in(buf);
  EXPECT_EQ(in.u16(), 0xBEEF);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.f32(), -1.5f);
  EXPECT_EQ(in.f64(), 2.25);
  EXPECT_NO_THROW(in.expect_end());
}

TEST(WireReader, OverrunAndTrailingGarbageThrow) {
  std::vector<uint8_t> buf;
  wire::put_u32(buf, 42);
  Reader in(buf);
  EXPECT_EQ(in.u16(), 42);       // 2 of 4 bytes consumed
  EXPECT_THROW(in.expect_end(), WireFormatError) << "2 bytes left over";
  EXPECT_NO_THROW(in.u16());
  EXPECT_THROW(in.u16(), WireFormatError) << "read past the end";
}

TEST(WireChunk, DenseRoundTripIsBitExact) {
  const CompressionConfig config{CompressionKind::kNone};
  const std::vector<float> values = ramp(97);
  const std::vector<uint8_t> payload = wire::encode_chunk(config, values);
  EXPECT_EQ(payload.size(), wire::chunk_wire_bytes(config, values.size()));
  EXPECT_EQ(round_trip(config, values), values);
}

TEST(WireChunk, TopKRoundTripsTheSurvivors) {
  CompressionConfig config{CompressionKind::kTopK};
  config.topk_fraction = 0.25;
  config.error_feedback = false;
  const std::vector<float> sparse = transformed(config, ramp(64));
  EXPECT_EQ(round_trip(config, sparse), sparse)
      << "decode must rebuild the transformed chunk exactly, zeros included";
  // The *accounted* size budgets clamp(k,1,n) pairs whatever the threshold
  // actually kept.
  EXPECT_EQ(wire::chunk_wire_bytes(config, 64), 16u * 8u);
  EXPECT_EQ(wire::chunk_wire_bytes(config, 1), 8u)
      << "a tiny chunk still ships at least one entry";
}

TEST(WireChunk, SignSgdIsExactWithoutZeros) {
  CompressionConfig config{CompressionKind::kSignSgd};
  config.error_feedback = false;
  std::vector<float> values = ramp(33);
  values[0] = 0.5f;  // ramp(n)[0] is 0.0; keep this payload zero-free
  const std::vector<float> signs = transformed(config, values);
  for (float v : signs) ASSERT_NE(v, 0.f);
  EXPECT_EQ(round_trip(config, signs), signs);
}

TEST(WireChunk, SignSgdCanonicalizesExactZeroToPlus) {
  // codec_transform maps an exactly-zero entry to 0.0f, which a 1-bit sign
  // cannot carry: the wire canonicalizes it to the positive sign.
  CompressionConfig config{CompressionKind::kSignSgd};
  config.error_feedback = false;
  std::vector<float> values = {0.f, -2.f, 1.f, 0.f};
  const std::vector<float> signs = transformed(config, values);
  ASSERT_EQ(signs[0], 0.f);
  const std::vector<float> decoded = round_trip(config, signs);
  const float scale = std::fabs(signs[1]);
  EXPECT_EQ(decoded[0], scale) << "zero decodes as +scale";
  EXPECT_EQ(decoded[1], -scale);
  EXPECT_EQ(decoded[2], scale);
  EXPECT_EQ(decoded[3], scale);
}

TEST(WireChunk, Quant8RoundTripIsBitExact) {
  CompressionConfig config{CompressionKind::kQuant8};
  config.error_feedback = false;
  const std::vector<float> levels = transformed(config, ramp(50));
  EXPECT_EQ(round_trip(config, levels), levels)
      << "level * scale must reconstruct codec_transform's round(x/s) * s";
}

TEST(WireChunk, EmptyChunkIsZeroBytesUnderEveryCodec) {
  for (CompressionKind kind :
       {CompressionKind::kNone, CompressionKind::kTopK,
        CompressionKind::kSignSgd, CompressionKind::kQuant8}) {
    CompressionConfig config{kind};
    EXPECT_EQ(wire::chunk_wire_bytes(config, 0), 0u);
    EXPECT_TRUE(wire::encode_chunk(config, {}).empty());
    EXPECT_TRUE(wire::decode_chunk(config, nullptr, 0, 0).empty());
  }
}

TEST(WireChunk, TornPayloadsFailLoudly) {
  const std::vector<float> values = ramp(16);
  for (CompressionKind kind :
       {CompressionKind::kNone, CompressionKind::kTopK,
        CompressionKind::kSignSgd, CompressionKind::kQuant8}) {
    CompressionConfig config{kind};
    config.topk_fraction = 0.5;
    config.error_feedback = false;
    const std::vector<float> payload_values =
        kind == CompressionKind::kNone ? values : transformed(config, values);
    const std::vector<uint8_t> payload =
        wire::encode_chunk(config, payload_values);
    ASSERT_FALSE(payload.empty());
    EXPECT_THROW(wire::decode_chunk(config, payload.data(),
                                    payload.size() - 1, values.size()),
                 WireFormatError)
        << compression_kind_name(kind) << ": truncated payload must throw";
    // 0xFF padding: a zero-padded topk payload would parse as a legitimate
    // (index 0, value 0.0) entry; 0xFF makes the extra entry out of range.
    std::vector<uint8_t> padded = payload;
    padded.insert(padded.end(), 8, 0xFF);
    EXPECT_THROW(wire::decode_chunk(config, padded.data(), padded.size(),
                                    values.size()),
                 WireFormatError)
        << compression_kind_name(kind) << ": oversized payload must throw";
  }
}

TEST(WireChunk, TopKOutOfRangeIndexIsRejected) {
  const CompressionConfig config{CompressionKind::kTopK};
  std::vector<uint8_t> payload;
  wire::put_u32(payload, 99);  // index past a 4-entry chunk
  wire::put_f32(payload, 1.f);
  EXPECT_THROW(wire::decode_chunk(config, payload.data(), payload.size(), 4),
               WireFormatError);
}

TEST(WireChunk, FloatVectorCarrierRoundTrips) {
  const std::vector<float> values = ramp(31);
  std::vector<uint8_t> buf;
  wire::put_f32s(buf, values);
  ASSERT_EQ(buf.size(), values.size() * 4);
  Reader in(buf);
  EXPECT_EQ(wire::get_f32s(in, values.size()), values);
  EXPECT_NO_THROW(in.expect_end());
}

}  // namespace
}  // namespace selsync
