// PsRound protocol tests: the single begin/contribute/await entry point of
// the PS tier (both fold orders), its validation surface and its abort
// contract. The concurrency-heavy cases live in parameter_server_test.cpp
// and cluster_test.cpp; this file pins the protocol rules themselves.
#include "comm/ps_round.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "comm/collectives.hpp"

namespace selsync {
namespace {

std::vector<std::vector<float>> awkward_inputs(size_t workers, size_t dim) {
  std::vector<std::vector<float>> data(workers, std::vector<float>(dim));
  for (size_t r = 0; r < workers; ++r)
    for (size_t i = 0; i < dim; ++i)
      data[r][i] = 0.1f * static_cast<float>(r + 1) +
                   1e-4f * static_cast<float>(i * i) -
                   0.37f * static_cast<float>((r * 7 + i) % 5);
  return data;
}

TEST(PsRound, SingleParticipantRoundFoldsImmediately) {
  PsRound round(3, 4);
  PsRoundConfig cfg;
  cfg.participants = 1;
  const uint64_t ticket = round.begin(cfg);
  round.contribute(ticket, 2, std::vector<float>{1.f, 2.f, 3.f});
  EXPECT_EQ(round.await(ticket), (std::vector<float>{1.f, 2.f, 3.f}));
  // The next round reuses the state machine with a fresh ticket.
  const uint64_t next = round.begin(cfg);
  EXPECT_NE(next, ticket);
  round.contribute(next, 0, std::vector<float>{4.f, 5.f, 6.f});
  EXPECT_EQ(round.await(next), (std::vector<float>{4.f, 5.f, 6.f}));
}

TEST(PsRound, RankedFoldIsBitIdenticalToAscendingRankOrder) {
  constexpr size_t kN = 5, kDim = 23;
  const auto inputs = awkward_inputs(kN, kDim);
  std::vector<float> expected(kDim);
  for (size_t i = 0; i < kDim; ++i) {
    float acc = 0.0f;
    for (size_t r = 0; r < kN; ++r) acc += inputs[r][i];
    expected[i] = acc;
  }

  PsRound round(kDim, kN);
  PsRoundConfig cfg;
  cfg.participants = kN;

  // Descending arrival order: the rank-slotted fold must not care.
  uint64_t ticket = 0;
  for (size_t r = 0; r < kN; ++r) ticket = round.begin(cfg);
  for (size_t r = kN; r-- > 0;) round.contribute(ticket, r, inputs[r]);
  const auto fold = round.await(ticket);
  ASSERT_EQ(fold.size(), kDim);
  for (size_t i = 0; i < kDim; ++i) EXPECT_EQ(fold[i], expected[i]);

  // And it is the same order SharedCollectives fixes.
  SharedCollectives coll(kN);
  auto shared = inputs;
  std::vector<std::thread> threads;
  for (size_t r = 0; r < kN; ++r)
    threads.emplace_back([&, r] { coll.allreduce_sum(r, shared[r]); });
  for (auto& t : threads) t.join();
  for (size_t i = 0; i < kDim; ++i) EXPECT_EQ(fold[i], shared[0][i]);
}

TEST(PsRound, ArrivalAverageDividesByParticipants) {
  PsRound round(2, 4);
  PsRoundConfig cfg;
  cfg.participants = 3;
  cfg.order = PsRoundOrder::kArrival;
  cfg.average = true;
  uint64_t ticket = 0;
  for (size_t r = 0; r < 3; ++r) ticket = round.begin(cfg);
  round.contribute(ticket, 0, std::vector<float>{1.f, 0.f});
  round.contribute(ticket, 1, std::vector<float>{2.f, 0.f});
  round.contribute(ticket, 2, std::vector<float>{3.f, 3.f});
  const auto mean = round.await(ticket);
  EXPECT_FLOAT_EQ(mean[0], 2.f);
  EXPECT_FLOAT_EQ(mean[1], 1.f);
}

TEST(PsRound, SubsetRoundUsesOnlyTheParticipantsSlots) {
  // A degraded group: 2 of 4 workers sync (SelSync quorum rounds do this).
  PsRound round(1, 4);
  PsRoundConfig cfg;
  cfg.participants = 2;
  const uint64_t ticket = round.begin(cfg);
  EXPECT_EQ(round.begin(cfg), ticket) << "joiners share the opener's ticket";
  round.contribute(ticket, 0, std::vector<float>{10.f});
  round.contribute(ticket, 3, std::vector<float>{4.f});
  EXPECT_FLOAT_EQ(round.await(ticket)[0], 14.f);
}

TEST(PsRound, ConfigValidation) {
  PsRound round(2, 4);
  PsRoundConfig cfg;
  cfg.participants = 0;
  EXPECT_THROW(round.begin(cfg), std::invalid_argument) << "0 participants";
  cfg.participants = 5;
  EXPECT_THROW(round.begin(cfg), std::invalid_argument)
      << "more participants than workers";
}

TEST(PsRound, JoinersMustAgreeOnTheRoundConfig) {
  PsRound round(2, 4);
  PsRoundConfig cfg;
  cfg.participants = 2;
  round.begin(cfg);
  PsRoundConfig other = cfg;
  other.average = true;
  EXPECT_THROW(round.begin(other), std::logic_error) << "average mismatch";
  other = cfg;
  other.order = PsRoundOrder::kArrival;
  EXPECT_THROW(round.begin(other), std::logic_error) << "order mismatch";
  other = cfg;
  other.participants = 3;
  EXPECT_THROW(round.begin(other), std::logic_error)
      << "participants mismatch";
  // The opened round is still usable after the rejected joins.
  const uint64_t ticket = round.begin(cfg);
  round.contribute(ticket, 0, std::vector<float>{1.f, 1.f});
  EXPECT_THROW(round.begin(cfg), std::logic_error)
      << "a third begin overfills a 2-participant round";
}

TEST(PsRound, ContributionValidation) {
  PsRound round(2, 4);
  PsRoundConfig cfg;
  cfg.participants = 2;
  const uint64_t ticket = round.begin(cfg);
  EXPECT_THROW(round.contribute(ticket + 1, 0, std::vector<float>{1.f, 1.f}),
               std::logic_error)
      << "stale ticket";
  EXPECT_THROW(round.contribute(ticket, 4, std::vector<float>{1.f, 1.f}),
               std::invalid_argument)
      << "rank out of range";
  EXPECT_THROW(round.contribute(ticket, 0, std::vector<float>{1.f}),
               std::invalid_argument)
      << "dim mismatch";
  round.contribute(ticket, 0, std::vector<float>{1.f, 1.f});
  EXPECT_THROW(round.contribute(ticket, 1, std::vector<float>{1.f, 1.f}),
               std::logic_error)
      << "second contribution without a second begin";
}

TEST(PsRound, AbortReleasesBlockedAwaiters) {
  PsRound round(1, 2);
  PsRoundConfig cfg;
  cfg.participants = 2;
  const uint64_t ticket = round.begin(cfg);
  round.contribute(ticket, 0, std::vector<float>{1.f});
  std::thread waiter([&] {
    EXPECT_THROW(round.await(ticket), BarrierAborted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  round.abort();
  waiter.join();
  EXPECT_TRUE(round.aborted());
  // Everything after the abort throws too — a restarted worker cannot
  // rejoin a torn-down tier.
  EXPECT_THROW(round.begin(cfg), BarrierAborted);
  EXPECT_THROW(round.contribute(ticket, 1, std::vector<float>{1.f}),
               BarrierAborted);
  EXPECT_THROW(round.await(ticket), BarrierAborted);
}

TEST(PsRound, AwaitAfterFoldReturnsWithoutBlocking) {
  // await() may run arbitrarily late — the fold is kept until the next
  // round folds, and at most one folded-but-unawaited round can exist.
  PsRound round(1, 2);
  PsRoundConfig cfg;
  cfg.participants = 2;
  const uint64_t ticket = round.begin(cfg);
  round.begin(cfg);
  round.contribute(ticket, 0, std::vector<float>{1.f});
  round.contribute(ticket, 1, std::vector<float>{2.f});
  EXPECT_FLOAT_EQ(round.await(ticket)[0], 3.f);
  EXPECT_FLOAT_EQ(round.await(ticket)[0], 3.f) << "late awaiter";
}

}  // namespace
}  // namespace selsync
