// Unit tests for the DES core: ready-queue ordering, the (vtime, rank, seq)
// tie-break, park/wake via WaitSlot, virtual-clock monotonicity, stall
// detection, and run_cluster's DES engine semantics (abort fan-out,
// exception rethrow) matching the thread engine's.
#include "comm/event_loop.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "comm/cluster.hpp"
#include "comm/wait_slot.hpp"

#if defined(__SANITIZE_THREAD__)
#define SELSYNC_REQUIRE_DES_ENGINE() \
  GTEST_SKIP() << "DES engine does not run under ThreadSanitizer"
#else
#define SELSYNC_REQUIRE_DES_ENGINE() (void)0
#endif

namespace selsync {
namespace {

TEST(DesReadyQueue, PopsInTimeRankSeqOrder) {
  DesReadyQueue q;
  q.push({2.0, 0, 0, 10});
  q.push({1.0, 3, 1, 11});
  q.push({1.0, 1, 2, 12});
  q.push({1.0, 1, 0, 13});  // same (vtime, rank) as above, earlier seq
  EXPECT_EQ(q.pop().task, 13u);  // vtime 1.0, rank 1, seq 0
  EXPECT_EQ(q.pop().task, 12u);  // vtime 1.0, rank 1, seq 2
  EXPECT_EQ(q.pop().task, 11u);  // vtime 1.0, rank 3
  EXPECT_EQ(q.pop().task, 10u);  // vtime 2.0
  EXPECT_TRUE(q.empty());
}

TEST(EventLoop, RunsSpawnedFibersInRankOrderAtTimeZero) {
  SELSYNC_REQUIRE_DES_ENGINE();
  EventLoop loop;
  std::vector<size_t> order;
  for (size_t rank : {size_t{2}, size_t{0}, size_t{1}})
    loop.spawn(rank, [&order, rank] { order.push_back(rank); });
  loop.run();
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2}));
}

TEST(EventLoop, YieldInterleavesByVirtualTime) {
  SELSYNC_REQUIRE_DES_ENGINE();
  // Rank 0 is "slow" (10s per step), rank 1 "fast" (1s per step): after
  // each yield the globally earliest fiber must run, so rank 1 fits ten
  // steps into rank 0's first.
  EventLoop loop;
  std::vector<std::string> trace;
  loop.spawn(0, [&] {
    for (int i = 1; i <= 2; ++i) {
      des_yield(10.0 * i);
      trace.push_back("slow@" + std::to_string(10 * i));
    }
  });
  loop.spawn(1, [&] {
    for (int i = 1; i <= 12; ++i) {
      des_yield(1.0 * i);
      trace.push_back("fast@" + std::to_string(i));
    }
  });
  loop.run();
  // The first ten fast steps precede the first slow step (times 1..10
  // beat 10 only via the rank tie at t=10: rank 0 wins the tie).
  ASSERT_EQ(trace.size(), 14u);
  for (int i = 1; i <= 9; ++i)
    EXPECT_EQ(trace[static_cast<size_t>(i - 1)],
              "fast@" + std::to_string(i));
  EXPECT_EQ(trace[9], "slow@10");  // (10, rank 0) beats (10, rank 1)
  EXPECT_EQ(trace[10], "fast@10");
}

TEST(EventLoop, ClockIsMonotone) {
  SELSYNC_REQUIRE_DES_ENGINE();
  EventLoop loop;
  double observed = -1.0;
  loop.spawn(0, [&] {
    des_tick(5.0);
    des_tick(3.0);  // stale update must not rewind the clock
    observed = EventLoop::current()->current_vtime();
  });
  loop.run();
  EXPECT_EQ(observed, 5.0);
}

TEST(EventLoop, WaitSlotParksAndWakesAcrossFibers) {
  SELSYNC_REQUIRE_DES_ENGINE();
  // A two-fiber ping-pong through a Channel (whose blocking recv is a
  // WaitSlot wait under the DES engine).
  EventLoop loop;
  Channel<int> ping, pong;
  std::vector<int> seen;
  loop.spawn(0, [&] {
    for (int i = 0; i < 3; ++i) {
      ping.send(i);
      auto echoed = pong.recv();
      ASSERT_TRUE(echoed.has_value());
      seen.push_back(*echoed);
    }
  });
  loop.spawn(1, [&] {
    for (int i = 0; i < 3; ++i) {
      auto got = ping.recv();
      ASSERT_TRUE(got.has_value());
      pong.send(*got * 10);
    }
  });
  loop.run();
  EXPECT_EQ(seen, (std::vector<int>{0, 10, 20}));
}

TEST(EventLoop, WokenFiberInheritsWakerVirtualTime) {
  SELSYNC_REQUIRE_DES_ENGINE();
  EventLoop loop;
  Channel<int> ch;
  double woken_at = -1.0;
  loop.spawn(0, [&] {
    ch.recv();  // parks immediately (rank 0 runs first)
    woken_at = EventLoop::current()->current_vtime();
  });
  loop.spawn(1, [&] {
    des_tick(7.5);
    ch.send(1);
  });
  loop.run();
  EXPECT_EQ(woken_at, 7.5);
}

TEST(EventLoop, StallNamesTheParkedRanks) {
  SELSYNC_REQUIRE_DES_ENGINE();
  EventLoop loop;
  Channel<int> never;
  loop.spawn(3, [&] { never.recv(); });
  loop.spawn(5, [&] { never.recv(); });
  try {
    loop.run();
    FAIL() << "expected a stall";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stalled"), std::string::npos) << what;
    EXPECT_NE(what.find('3'), std::string::npos) << what;
    EXPECT_NE(what.find('5'), std::string::npos) << what;
  }
  never.close();  // nothing parked anymore; keep the channel sane
}

TEST(EventLoop, DesHelpersAreNoOpsOffLoop) {
  EXPECT_FALSE(des_active());
  des_yield(1.0);  // must not crash or block on a real thread
  des_tick(2.0);
  EXPECT_EQ(EventLoop::current(), nullptr);
}

TEST(DesCluster, RunsCollectivesBitIdenticalToThreads) {
  SELSYNC_REQUIRE_DES_ENGINE();
  std::vector<float> threads_out, des_out;
  auto run_with = [](EngineKind engine, std::vector<float>& out) {
    run_cluster(engine, 4, [&](WorkerContext& ctx) {
      std::vector<float> v(8, static_cast<float>(ctx.rank + 1) * 0.25f);
      ctx.collectives->allreduce_mean(ctx.rank, v);
      if (ctx.is_root()) out = v;
    });
  };
  run_with(EngineKind::kThreads, threads_out);
  run_with(EngineKind::kDes, des_out);
  ASSERT_EQ(threads_out.size(), 8u);
  EXPECT_EQ(threads_out, des_out);
}

TEST(DesCluster, WorkerExceptionAbortsPeersAndRethrows) {
  SELSYNC_REQUIRE_DES_ENGINE();
  bool abort_hook_fired = false;
  EXPECT_THROW(
      run_cluster(
          EngineKind::kDes, 3,
          [&](WorkerContext& ctx) {
            if (ctx.rank == 1) throw std::logic_error("injected failure");
            // Peers park in the barrier; the failing worker must unblock
            // them via collectives.abort() or the loop would stall.
            ctx.collectives->barrier();
          },
          [&] { abort_hook_fired = true; }),
      std::logic_error);
  EXPECT_TRUE(abort_hook_fired);
}

TEST(DesCluster, EngineNamesRoundTrip) {
  EXPECT_STREQ(engine_kind_name(EngineKind::kThreads), "threads");
  EXPECT_STREQ(engine_kind_name(EngineKind::kDes), "des");
  EXPECT_EQ(engine_kind_from_name("des"), EngineKind::kDes);
  EXPECT_EQ(engine_kind_from_name("threads"), EngineKind::kThreads);
  EXPECT_FALSE(engine_kind_from_name("fibers").has_value());
  EXPECT_EQ(engine_kind_names(), "threads, des");
}

}  // namespace
}  // namespace selsync
