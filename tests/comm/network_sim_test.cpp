// Discrete-event network simulator, and its agreement with the closed-form
// CostModel — the evidence behind every simulated-time number in the repo.
#include "comm/network_sim.hpp"

#include <gtest/gtest.h>

#include "comm/cost_model.hpp"

namespace selsync {
namespace {

constexpr double kGbps = 1e9;
constexpr double kMB = 1024.0 * 1024.0;

TEST(NetworkSim, SingleFlowIsBytesOverBandwidthPlusLatency) {
  NetworkSimulator net({10 * kGbps, 10 * kGbps}, 1e-3);
  const size_t id = net.submit(0, 1, 100 * kMB, 0.0);
  net.run();
  const double expected = 1e-3 + 100 * kMB * 8 / (10 * kGbps);
  EXPECT_NEAR(net.completion_time(id), expected, 1e-6);
}

TEST(NetworkSim, TwoFlowsShareIngressFairly) {
  // Two senders into one receiver: each gets half the receiver NIC, so both
  // take twice the solo time.
  NetworkSimulator net({10 * kGbps, 10 * kGbps, 10 * kGbps}, 0.0);
  const size_t a = net.submit(0, 2, 10 * kMB, 0.0);
  const size_t b = net.submit(1, 2, 10 * kMB, 0.0);
  net.run();
  const double solo = 10 * kMB * 8 / (10 * kGbps);
  EXPECT_NEAR(net.completion_time(a), 2 * solo, 1e-6);
  EXPECT_NEAR(net.completion_time(b), 2 * solo, 1e-6);
}

TEST(NetworkSim, ShortFlowFinishesThenLongFlowSpeedsUp) {
  NetworkSimulator net({10 * kGbps, 10 * kGbps, 10 * kGbps}, 0.0);
  const size_t small = net.submit(0, 2, 5 * kMB, 0.0);
  const size_t big = net.submit(1, 2, 20 * kMB, 0.0);
  net.run();
  const double unit = kMB * 8 / (10 * kGbps);  // seconds per MB at full rate
  // Shared phase: both at half rate until small's 5 MB done -> t=10*unit.
  EXPECT_NEAR(net.completion_time(small), 10 * unit, 1e-6);
  // Big sent 5 MB during sharing, then 15 MB at full rate.
  EXPECT_NEAR(net.completion_time(big), 10 * unit + 15 * unit, 1e-6);
}

TEST(NetworkSim, LateFlowWaitsForItsStartTime) {
  NetworkSimulator net({kGbps, kGbps}, 0.0);
  const size_t id = net.submit(0, 1, kMB, 5.0);
  net.run();
  EXPECT_GT(net.completion_time(id), 5.0);
}

TEST(NetworkSim, SlowNicIsTheBottleneck) {
  // 1 Gbps sender into a 10 Gbps receiver: sender-bound.
  NetworkSimulator net({1 * kGbps, 10 * kGbps}, 0.0);
  const size_t id = net.submit(0, 1, 10 * kMB, 0.0);
  net.run();
  EXPECT_NEAR(net.completion_time(id), 10 * kMB * 8 / kGbps, 1e-6);
}

TEST(NetworkSim, Validation) {
  EXPECT_THROW(NetworkSimulator({}, 0.0), std::invalid_argument);
  EXPECT_THROW(NetworkSimulator({0.0}, 0.0), std::invalid_argument);
  NetworkSimulator net({kGbps, kGbps}, 0.0);
  EXPECT_THROW(net.submit(0, 5, kMB, 0.0), std::out_of_range);
  EXPECT_THROW(net.submit(0, 1, -1.0, 0.0), std::invalid_argument);
  const size_t id = net.submit(0, 1, kMB, 0.0);
  EXPECT_THROW(net.completion_time(id), std::logic_error);  // before run()
}

TEST(NetworkSim, PsIncastMakespanIsServerBound) {
  // 16 workers of 5 Gbps pushing into a 40 Gbps server: the server ingress
  // carries 16*B, so makespan ~= 16*B*8/40G per direction.
  const double t =
      des_ps_sync_time(16, 170 * kMB, 5 * kGbps, 40 * kGbps, 0.0);
  const double expected = 2 * 16 * 170 * kMB * 8 / (40 * kGbps);
  EXPECT_NEAR(t, expected, expected * 0.05);
}

TEST(NetworkSim, PsSyncAgreesWithCostModelInServerBoundRegime) {
  // The closed form assumes the server ingest is the bottleneck, which
  // holds once N >= server_bw / worker_bw (= 8 on the paper profile).
  NetworkProfile net = paper_network_5gbps();
  net.wire_compression = 1.0;  // compare raw payloads
  net.op_overhead_s = 0.0;
  net.latency_s = 0.0;
  const CostModel cm(net);
  for (size_t workers : {8, 16, 32}) {
    const double closed = cm.ps_sync_time(170 * kMB, workers);
    const double des =
        des_ps_sync_time(workers, 170 * kMB, net.bandwidth_bps,
                         net.server_bandwidth_bps, 0.0);
    EXPECT_NEAR(des, closed, closed * 0.25) << workers << " workers";
  }
}

TEST(NetworkSim, SmallClustersAreWorkerNicBound) {
  // Below the crossover the worker NIC binds: the DES gives
  // 2 * B / worker_bw regardless of N, which the server-only closed form
  // underestimates — a documented simplification of the cost model (its
  // Table I / Fig. 1a experiments all run at N = 16, in the server-bound
  // regime).
  const double des =
      des_ps_sync_time(2, 170 * kMB, 5 * kGbps, 40 * kGbps, 0.0);
  EXPECT_NEAR(des, 2 * 170 * kMB * 8 / (5 * kGbps), 1e-3);
}

TEST(NetworkSim, RingAllreduceAgreesWithCostModelClosedForm) {
  NetworkProfile net = paper_network_5gbps();
  net.wire_compression = 1.0;
  net.op_overhead_s = 0.0;
  const CostModel cm(net);
  for (size_t workers : {4, 8, 16}) {
    const double closed = cm.ring_allreduce_time(170 * kMB, workers);
    const double des = des_ring_allreduce_time(workers, 170 * kMB,
                                               net.bandwidth_bps,
                                               net.latency_s);
    EXPECT_NEAR(des, closed, closed * 0.25) << workers << " workers";
  }
}

TEST(NetworkSim, RingBeatsPsIncastAtScale) {
  // The §III closing claim, derived from first principles this time.
  const double ring =
      des_ring_allreduce_time(16, 170 * kMB, 5 * kGbps, 200e-6);
  const double ps = des_ps_sync_time(16, 170 * kMB, 5 * kGbps, 40 * kGbps,
                                     200e-6);
  EXPECT_LT(ring, ps);
}

TEST(NetworkSim, ClearAllowsReuse) {
  NetworkSimulator net({kGbps, kGbps}, 0.0);
  net.submit(0, 1, kMB, 0.0);
  net.run();
  net.clear();
  const size_t id = net.submit(1, 0, kMB, 0.0);
  net.run();
  EXPECT_GT(net.completion_time(id), 0.0);
}

}  // namespace
}  // namespace selsync
