// ChunkCodec: the per-(rank, slot) codec state the chunked transports fuse
// into their data planes (comm/compressed_chunk.hpp).
#include "comm/compressed_chunk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace selsync {
namespace {

std::vector<float> ramp(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(i % 2 == 0 ? i : -static_cast<double>(i)) /
           static_cast<float>(n);
  return v;
}

TEST(ChunkCodec, RejectsConfigsThatCannotEncode) {
  EXPECT_THROW(ChunkCodec({CompressionKind::kNone}, 4), std::invalid_argument)
      << "a dense 'codec' must be expressed as no codec at all";
  EXPECT_THROW(ChunkCodec({CompressionKind::kTopK, 0.0}, 4),
               std::invalid_argument);
  EXPECT_THROW(ChunkCodec({CompressionKind::kTopK, 1.5}, 4),
               std::invalid_argument);
}

TEST(ChunkCodec, TransformMatchesTheFullVectorCompressorKernel) {
  // Same config, same bytes in -> same bytes out as GradientCompressor: the
  // chunked transports apply identical codec semantics, only the chunking
  // differs.
  const CompressionConfig cc{CompressionKind::kTopK, 0.25, true};
  ChunkCodec chunk(cc, 2);
  GradientCompressor full(cc);

  for (int round = 0; round < 3; ++round) {
    std::vector<float> a = ramp(64);
    std::vector<float> b = a;
    chunk.begin_round(0, 0.0);
    const size_t chunk_wire = chunk.transform(0, /*slot=*/0, a);
    const size_t full_wire = full.compress(b);
    EXPECT_EQ(chunk_wire, full_wire);
    EXPECT_EQ(a, b) << "round " << round
                    << ": error-feedback trajectories diverged";
  }
}

TEST(ChunkCodec, SlotsKeepIndependentErrorFeedback) {
  // Two recurring payloads through the same rank: each slot's residual must
  // feed back into the same payload, not bleed into the other.
  const CompressionConfig cc{CompressionKind::kTopK, 0.5, true};
  ChunkCodec codec(cc, 1);
  codec.begin_round(0, 0.0);

  // Slot 0 repeatedly drops its small entry; slot 1's payload is disjoint.
  bool slot0_flushed = false;
  for (int it = 0; it < 10; ++it) {
    std::vector<float> s0{1.f, 0.3f};
    std::vector<float> s1{-2.f, 0.0f};
    codec.transform(0, 0, s0);
    codec.transform(0, 1, s1);
    if (s0[1] != 0.f) slot0_flushed = true;
    EXPECT_EQ(s1[0], -2.f) << "slot 1 has no small entry to lose";
  }
  EXPECT_TRUE(slot0_flushed) << "slot-0 residual never flushed";

  // An independent codec whose slot-0 stream interleaves nothing else must
  // follow the identical trajectory (slot isolation).
  ChunkCodec solo(cc, 1);
  solo.begin_round(0, 0.0);
  ChunkCodec mixed(cc, 1);
  mixed.begin_round(0, 0.0);
  for (int it = 0; it < 6; ++it) {
    std::vector<float> a{1.f, 0.3f};
    std::vector<float> b{1.f, 0.3f};
    std::vector<float> other{5.f, -4.f};
    solo.transform(0, 0, a);
    mixed.transform(0, 0, b);
    mixed.transform(0, 7, other);  // unrelated slot in between
    EXPECT_EQ(a, b) << "iteration " << it;
  }
}

TEST(ChunkCodec, ChargesAccumulateIntoTheRoundRatio) {
  const CompressionConfig cc{CompressionKind::kTopK, 0.25, false};
  ChunkCodec codec(cc, 2);

  codec.begin_round(0, 0.0);
  EXPECT_DOUBLE_EQ(codec.round_ratio(0), 1.0) << "nothing sent yet";

  codec.charge(0, 10, 100);
  codec.charge(0, 30, 100);
  EXPECT_DOUBLE_EQ(codec.round_ratio(0), 40.0 / 200.0);
  // Ranks account independently.
  codec.begin_round(1, 0.0);
  EXPECT_DOUBLE_EQ(codec.round_ratio(1), 1.0);

  // A new round resets the account.
  codec.begin_round(0, 0.0);
  EXPECT_DOUBLE_EQ(codec.round_ratio(0), 1.0);
}

TEST(ChunkCodec, BeginRoundResolvesAdaptiveTopK) {
  CompressionConfig cc{CompressionKind::kTopK, 0.01, false};
  cc.adaptive = true;
  cc.critical_delta = 0.1;
  cc.topk_fraction_critical = 0.5;
  ChunkCodec codec(cc, 1);

  std::vector<float> stable = ramp(1000);
  codec.begin_round(0, /*delta=*/0.01);  // stable regime: aggressive 1%
  const size_t stable_wire = codec.transform(0, 0, stable);

  std::vector<float> critical = ramp(1000);
  codec.begin_round(0, /*delta=*/0.5);  // critical regime: conservative 50%
  const size_t critical_wire = codec.transform(0, 0, critical);

  EXPECT_EQ(stable_wire, 10u * 8u);
  EXPECT_EQ(critical_wire, 500u * 8u);
}

}  // namespace
}  // namespace selsync
