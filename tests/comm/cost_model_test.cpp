#include "comm/cost_model.hpp"

#include <gtest/gtest.h>

#include "nn/paper_profiles.hpp"

namespace selsync {
namespace {

constexpr size_t kMB = 1024 * 1024;

TEST(CostModel, SingleWorkerNeedsNoSync) {
  CostModel cm(paper_network_5gbps());
  EXPECT_DOUBLE_EQ(cm.ps_sync_time(100 * kMB, 1), 0.0);
  EXPECT_DOUBLE_EQ(cm.ring_allreduce_time(100 * kMB, 1), 0.0);
  EXPECT_DOUBLE_EQ(cm.flag_allgather_time(1), 0.0);
}

TEST(CostModel, PsSyncGrowsLinearlyWithWorkers) {
  CostModel cm(paper_network_5gbps());
  const double t4 = cm.ps_sync_time(100 * kMB, 4);
  const double t16 = cm.ps_sync_time(100 * kMB, 16);
  EXPECT_GT(t16, 3.5 * t4);
  EXPECT_LT(t16, 4.5 * t4);
}

TEST(CostModel, PsSyncGrowsLinearlyWithBytes) {
  CostModel cm(paper_network_5gbps());
  EXPECT_GT(cm.ps_sync_time(507 * kMB, 8), 4.0 * cm.ps_sync_time(100 * kMB, 8));
}

TEST(CostModel, RingAllreduceIsBandwidthOptimal) {
  // Ring volume per worker ~ 2B regardless of N; PS incast grows with N, so
  // for large clusters ring must win (the paper's §III closing remark).
  CostModel cm(paper_network_5gbps());
  EXPECT_LT(cm.ring_allreduce_time(170 * kMB, 16) /
                cm.ring_allreduce_time(170 * kMB, 4),
            2.0);
}

TEST(CostModel, TreeAllreduceLogarithmicRounds) {
  CostModel cm(paper_network_5gbps());
  const double t4 = cm.tree_allreduce_time(100 * kMB, 4);    // 2 rounds
  const double t16 = cm.tree_allreduce_time(100 * kMB, 16);  // 4 rounds
  EXPECT_NEAR(t16 / t4, 2.0, 0.1);
}

TEST(CostModel, FlagAllgatherInPaperRange) {
  // Paper: "this op had a negligible overhead ... ~2-4 ms".
  CostModel cm(paper_network_5gbps());
  const double t = cm.flag_allgather_time(16);
  EXPECT_GE(t, 0.002);
  EXPECT_LE(t, 0.004);
}

TEST(CostModel, FlagAllgatherIsTinyVsModelSync) {
  CostModel cm(paper_network_5gbps());
  EXPECT_LT(cm.flag_allgather_time(16) * 20,
            cm.ps_sync_time(170 * kMB, 16));
}

TEST(CostModel, OnewayCheaperThanRoundTrip) {
  CostModel cm(paper_network_5gbps());
  EXPECT_LT(cm.ps_oneway_time(100 * kMB, 1), cm.ps_sync_time(100 * kMB, 16));
}

TEST(CostModel, ContentionScalesOneway) {
  CostModel cm(paper_network_5gbps());
  EXPECT_GT(cm.ps_oneway_time(100 * kMB, 8), 4 * cm.ps_oneway_time(100 * kMB, 1));
}

TEST(CostModel, P2pChargesRawSampleBytes) {
  CostModel cm(paper_network_5gbps());
  // 132 KB of CIFAR samples (the paper's 16-worker injection example) must
  // cost well under a millisecond of transfer on 5 Gbps.
  EXPECT_LT(cm.p2p_time(132 * 1024), 1e-3);
}

TEST(CostModel, FasterNetworkIsFaster) {
  CostModel slow(paper_network_5gbps());
  CostModel fast(network_25gbps());
  EXPECT_LT(fast.ps_sync_time(100 * kMB, 16), slow.ps_sync_time(100 * kMB, 16));
}

TEST(CostModel, Fig1aShapeRelativeThroughput) {
  // Fig. 1a reproduction invariants: relative throughput is sublinear for
  // all models; VGG11 (507 MB) is below 1.0 at 2 workers; ResNet101 ends
  // well above 1 at 16 workers.
  CostModel cm(paper_network_5gbps());
  const auto v100 = device_v100();
  auto rel_throughput = [&](const PaperModelProfile& m, size_t n) {
    const double tc = compute_time_s(m, v100, 32);
    const double ts = cm.ps_sync_time(static_cast<size_t>(m.param_bytes()), n);
    return static_cast<double>(n) * tc / (tc + ts);
  };
  EXPECT_LT(rel_throughput(paper_vgg11(), 2), 1.0);
  EXPECT_GT(rel_throughput(paper_resnet101(), 16), 1.5);
  EXPECT_LT(rel_throughput(paper_resnet101(), 16), 16.0);
  // Monotone but saturating for ResNet101.
  EXPECT_GT(rel_throughput(paper_resnet101(), 16),
            rel_throughput(paper_resnet101(), 4));
}

}  // namespace
}  // namespace selsync
