// Property tests for the deterministic fault-injection subsystem: the same
// plan and seed must yield the same schedule, the same probabilistic draws
// and the same merged event log no matter how threads interleave, and the
// lossy ring transport must stay correct under drop/delay/duplicate faults.
#include "comm/fault_injector.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>

#include "comm/cluster.hpp"

namespace selsync {
namespace {

FaultPlan busy_plan() {
  FaultPlan plan;
  plan.seed = 42;
  plan.checkpoint_interval = 10;
  plan.restart_cost_s = 0.5;
  plan.crashes.push_back({1, 20, 10, true});
  plan.crashes.push_back({3, 50, 0, false});
  plan.stragglers.push_back({2, 5, 30, 4.0});
  plan.messages.drop_prob = 0.1;
  plan.messages.delay_prob = 0.2;
  plan.messages.duplicate_prob = 0.05;
  plan.ps.timeout_prob = 0.3;
  return plan;
}

TEST(FaultPlan, EmptyPlanIsDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.validate(4, 100);  // a no-op plan is always valid
}

TEST(FaultPlan, ValidateAcceptsBusyPlan) {
  busy_plan().validate(4, 100);
}

TEST(FaultPlan, ValidateRejectsBadPlans) {
  const auto bad = [](auto&& mutate) {
    FaultPlan plan = busy_plan();
    mutate(plan);
    EXPECT_THROW(plan.validate(4, 100), std::invalid_argument);
  };
  bad([](FaultPlan& p) { p.checkpoint_interval = 0; });
  bad([](FaultPlan& p) { p.restart_cost_s = -1.0; });
  bad([](FaultPlan& p) { p.messages.drop_prob = 1.5; });
  bad([](FaultPlan& p) {  // probabilities sum past 1
    p.messages.drop_prob = 0.5;
    p.messages.delay_prob = 0.6;
  });
  bad([](FaultPlan& p) { p.ps.timeout_prob = -0.1; });
  bad([](FaultPlan& p) { p.crashes.push_back({9, 10, 5, true}); });  // rank
  bad([](FaultPlan& p) { p.crashes.push_back({0, 200, 5, true}); });  // late
  bad([](FaultPlan& p) { p.crashes.push_back({0, 90, 20, true}); });  // rejoin
  bad([](FaultPlan& p) { p.crashes.push_back({0, 10, 0, true}); });  // no down
  bad([](FaultPlan& p) {  // overlapping crashes on one rank
    p.crashes.push_back({1, 25, 10, true});
  });
  bad([](FaultPlan& p) {  // no active iteration between crashes
    p.crashes.push_back({1, 30, 10, true});
  });
  bad([](FaultPlan& p) {  // crash scheduled after a permanent one
    p.crashes.push_back({3, 60, 5, true});
  });
  bad([](FaultPlan& p) { p.stragglers.push_back({2, 0, 10, 0.5}); });  // <1x
  bad([](FaultPlan& p) { p.stragglers.push_back({2, 0, 0, 2.0}); });  // empty
}

TEST(FaultPlan, ValidateRequiresSurvivorAtRejoin) {
  // Both workers of a 2-node cluster rejoining at iteration 30: nobody is
  // left to wake them or source the recovery sync.
  FaultPlan plan;
  plan.crashes.push_back({0, 10, 20, true});
  plan.crashes.push_back({1, 25, 5, true});
  EXPECT_THROW(plan.validate(2, 100), std::invalid_argument);
  // A third surviving worker makes the same schedule legal.
  plan.validate(3, 100);
}

TEST(FaultPlan, JsonRoundTrip) {
  const FaultPlan plan = busy_plan();
  const FaultPlan back = fault_plan_from_json(fault_plan_to_json(plan));
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_EQ(back.checkpoint_interval, plan.checkpoint_interval);
  EXPECT_DOUBLE_EQ(back.restart_cost_s, plan.restart_cost_s);
  ASSERT_EQ(back.crashes.size(), plan.crashes.size());
  EXPECT_EQ(back.crashes[0].rank, plan.crashes[0].rank);
  EXPECT_EQ(back.crashes[0].at_iteration, plan.crashes[0].at_iteration);
  EXPECT_EQ(back.crashes[1].restart, false);
  ASSERT_EQ(back.stragglers.size(), 1u);
  EXPECT_DOUBLE_EQ(back.stragglers[0].slowdown, 4.0);
  EXPECT_DOUBLE_EQ(back.messages.drop_prob, plan.messages.drop_prob);
  EXPECT_DOUBLE_EQ(back.ps.timeout_prob, plan.ps.timeout_prob);
  // Serialization is canonical: two dumps of the same plan are identical.
  EXPECT_EQ(fault_plan_to_json(plan).dump(), fault_plan_to_json(back).dump());
}

TEST(FaultPlan, ParseRejectsMalformedPlans) {
  EXPECT_THROW(parse_fault_plan("not json"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("[1, 2]"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"sede": 1})"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"seed": -1})"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"seed": 1.5})"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"crashes": {}})"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"crashes": [{"rnak": 0}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"messages": {"drop": 0.1}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(R"({"ps": {"timeout_prob": true}})"),
               std::invalid_argument);
}

TEST(FaultPlan, ParseAppliesDefaults) {
  const FaultPlan plan =
      parse_fault_plan(R"({"crashes": [{"rank": 1, "at_iteration": 7}]})");
  EXPECT_TRUE(plan.enabled());
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].downtime_iterations, 10u);
  EXPECT_TRUE(plan.crashes[0].restart);
  EXPECT_EQ(plan.checkpoint_interval, 25u);
}

TEST(FaultInjector, CrashScheduleIsPure) {
  FaultInjector inj(busy_plan(), 4);
  // Worker 1: down for [20, 30), back at 30.
  EXPECT_TRUE(inj.active(1, 19));
  EXPECT_FALSE(inj.active(1, 20));
  EXPECT_FALSE(inj.active(1, 29));
  EXPECT_TRUE(inj.active(1, 30));
  // Worker 3 never comes back after 50.
  EXPECT_TRUE(inj.active(3, 49));
  EXPECT_FALSE(inj.active(3, 50));
  EXPECT_FALSE(inj.active(3, 100000));
  ASSERT_NE(inj.crash_starting_at(1, 20), nullptr);
  EXPECT_EQ(inj.crash_starting_at(1, 21), nullptr);
  EXPECT_EQ(inj.rejoining_at(30), std::vector<size_t>{1});
  EXPECT_TRUE(inj.rejoining_at(29).empty());
  EXPECT_TRUE(inj.rejoining_at(50).empty());  // permanent: no rejoin
  EXPECT_EQ(inj.active_mask(25), (std::vector<uint8_t>{1, 0, 1, 1}));
  EXPECT_EQ(inj.active_mask(55), (std::vector<uint8_t>{1, 1, 1, 0}));
  EXPECT_TRUE(inj.needs_checkpoints(1));
  EXPECT_FALSE(inj.needs_checkpoints(3));  // permanent crash: no restart
  EXPECT_FALSE(inj.needs_checkpoints(0));
}

TEST(FaultInjector, StragglerScheduleIsPure) {
  FaultInjector inj(busy_plan(), 4);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(2, 4), 1.0);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(2, 5), 4.0);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(2, 34), 4.0);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(2, 35), 1.0);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(0, 5), 1.0);
  EXPECT_NE(inj.straggler_starting_at(2, 5), nullptr);
  EXPECT_EQ(inj.straggler_starting_at(2, 6), nullptr);
}

TEST(FaultInjector, DrawsAreDeterministicPerRankStream) {
  FaultInjector a(busy_plan(), 4);
  FaultInjector b(busy_plan(), 4);
  for (size_t rank = 0; rank < 4; ++rank)
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(static_cast<int>(a.draw_message_fate(rank)),
                static_cast<int>(b.draw_message_fate(rank)));
      EXPECT_EQ(a.draw_ps_timeouts(rank), b.draw_ps_timeouts(rank));
    }
}

TEST(FaultInjector, RankStreamsAreIndependent) {
  // Consuming rank 0's stream must not disturb rank 1's.
  FaultInjector a(busy_plan(), 4);
  FaultInjector b(busy_plan(), 4);
  for (int i = 0; i < 100; ++i) a.draw_message_fate(0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(static_cast<int>(a.draw_message_fate(1)),
              static_cast<int>(b.draw_message_fate(1)));
  }
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  FaultPlan p1 = busy_plan();
  FaultPlan p2 = busy_plan();
  p2.seed = 43;
  FaultInjector a(p1, 4);
  FaultInjector b(p2, 4);
  int differing = 0;
  for (int i = 0; i < 200; ++i)
    if (a.draw_message_fate(0) != b.draw_message_fate(0)) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, PsTimeoutsRespectRetryCap) {
  FaultPlan plan;
  plan.ps.timeout_prob = 1.0;  // every attempt times out
  plan.ps.max_retries = 3;
  FaultInjector inj(plan, 1);
  // The draw caps at max_retries + 1 consecutive failures (= give up).
  EXPECT_EQ(inj.draw_ps_timeouts(0), 4u);
  EXPECT_DOUBLE_EQ(inj.ps_backoff_s(0), plan.ps.base_backoff_s);
  EXPECT_DOUBLE_EQ(inj.ps_backoff_s(3), plan.ps.base_backoff_s * 8);
}

TEST(FaultInjector, SummaryMergesEventsDeterministically) {
  // Record from N threads in racy order; the merged log must sort by
  // (iteration, rank, per-rank sequence) and be identical across runs.
  const auto run_once = [] {
    FaultInjector inj(busy_plan(), 4);
    std::vector<std::thread> threads;
    for (size_t rank = 0; rank < 4; ++rank)
      threads.emplace_back([&inj, rank] {
        for (uint64_t it = 0; it < 50; ++it) {
          inj.record(rank, FaultKind::kMessageDrop, it, 0.25);
          if (it % 10 == 0) inj.record(rank, FaultKind::kPsTimeout, it, 1.0);
        }
      });
    for (auto& t : threads) t.join();
    return inj.summary();
  };
  const FaultSummary a = run_once();
  const FaultSummary b = run_once();
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.events.size(), 4u * (50u + 5u));
  EXPECT_EQ(a.messages_dropped, 200u);
  EXPECT_EQ(a.ps_timeouts, 20u);
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].rank, b.events[i].rank);
    EXPECT_EQ(a.events[i].iteration, b.events[i].iteration);
    EXPECT_DOUBLE_EQ(a.events[i].detail, b.events[i].detail);
  }
  for (size_t i = 1; i < a.events.size(); ++i) {
    const FaultEvent& prev = a.events[i - 1];
    const FaultEvent& cur = a.events[i];
    EXPECT_TRUE(prev.iteration < cur.iteration ||
                (prev.iteration == cur.iteration && prev.rank <= cur.rank));
  }
}

TEST(FaultInjector, RejectsOutOfRangeRanks) {
  // busy_plan schedules faults for ranks up to 3; a 2-worker injector must
  // refuse it rather than index out of bounds.
  EXPECT_THROW(FaultInjector(busy_plan(), 2), std::invalid_argument);
  EXPECT_THROW(FaultInjector(FaultPlan{}, 0), std::invalid_argument);
}

TEST(FaultInjector, PendingDelayAccrues) {
  FaultInjector inj(busy_plan(), 4);
  EXPECT_DOUBLE_EQ(inj.take_pending_delay(0), 0.0);
  inj.add_pending_delay(0, 0.5);
  inj.add_pending_delay(0, 0.25);
  EXPECT_DOUBLE_EQ(inj.take_pending_delay(0), 0.75);
  EXPECT_DOUBLE_EQ(inj.take_pending_delay(0), 0.0);  // drained
  EXPECT_DOUBLE_EQ(inj.take_pending_delay(1), 0.0);  // per-rank accounts
}

TEST(RingAllreduce, LossyLinksStillSumCorrectly) {
  // Drop/delay/duplicate compose with the retransmit/dedup machinery: the
  // payload that lands is always the exact sum, faults only cost time.
  FaultPlan plan;
  plan.seed = 9;
  plan.messages.drop_prob = 0.2;
  plan.messages.delay_prob = 0.2;
  plan.messages.duplicate_prob = 0.2;
  const size_t workers = 4;
  const auto run_once = [&] {
    FaultInjector inj(plan, workers);
    RingAllreduce ring(workers, &inj);
    std::vector<double> delays(workers, 0.0);
    run_cluster(workers, [&](WorkerContext& ctx) {
      for (int round = 0; round < 8; ++round) {
        std::vector<float> data(16);
        for (size_t i = 0; i < data.size(); ++i)
          data[i] = static_cast<float>(ctx.rank + 1) * (i + 1);
        ring.run(ctx.rank, data);
        for (size_t i = 0; i < data.size(); ++i)
          EXPECT_FLOAT_EQ(data[i], 10.f * (i + 1));  // 1+2+3+4 = 10
      }
      delays[ctx.rank] = inj.take_pending_delay(ctx.rank);
    });
    return std::make_pair(inj.summary(), delays);
  };
  const auto [summary, delays] = run_once();
  // With these probabilities over 8 rounds * 6 messages/rank, some of each
  // fault kind must fire.
  EXPECT_GT(summary.messages_dropped, 0u);
  EXPECT_GT(summary.messages_delayed, 0u);
  EXPECT_GT(summary.messages_duplicated, 0u);
  // Drops cost the senders retransmit timeouts, delays cost the receivers.
  EXPECT_GT(std::accumulate(delays.begin(), delays.end(), 0.0), 0.0);

  // And the whole fault history is reproducible despite thread racing.
  const auto [summary2, delays2] = run_once();
  ASSERT_EQ(summary.events.size(), summary2.events.size());
  for (size_t i = 0; i < summary.events.size(); ++i) {
    EXPECT_EQ(summary.events[i].kind, summary2.events[i].kind);
    EXPECT_EQ(summary.events[i].rank, summary2.events[i].rank);
    EXPECT_DOUBLE_EQ(summary.events[i].detail, summary2.events[i].detail);
  }
  for (size_t r = 0; r < workers; ++r)
    EXPECT_DOUBLE_EQ(delays[r], delays2[r]);
}

TEST(RejoinCoordinator, ReleaseWakesParkedWorker) {
  RejoinCoordinator coord(2);
  std::atomic<int> state{0};
  std::thread parked([&] {
    const bool released = coord.wait_for_rejoin(1) == RejoinWait::kReleased;
    state.store(released ? 1 : -1);
  });
  coord.release(1);
  parked.join();
  EXPECT_EQ(state.load(), 1);
  // The slot re-arms: a second crash of the same rank parks again and a
  // shutdown lets it exit as a casualty.
  std::thread parked_again([&] {
    const bool released = coord.wait_for_rejoin(1) == RejoinWait::kReleased;
    state.store(released ? 2 : -2);
  });
  coord.shutdown();
  parked_again.join();
  EXPECT_EQ(state.load(), -2);
}

TEST(RejoinCoordinator, PauseDrainsAndResumeRearms) {
  RejoinCoordinator coord(2);
  std::atomic<int> state{0};
  // A phase boundary drains a parked rank with kPaused...
  std::thread parked([&] {
    state.store(coord.wait_for_rejoin(1) == RejoinWait::kPaused ? 1 : -1);
  });
  coord.pause();
  parked.join();
  EXPECT_EQ(state.load(), 1);
  // ...and after resume() the same rank parks again in the next phase and
  // a normal release still wins.
  coord.resume();
  std::thread reparked([&] {
    state.store(coord.wait_for_rejoin(1) == RejoinWait::kReleased ? 2 : -2);
  });
  coord.release(1);
  reparked.join();
  EXPECT_EQ(state.load(), 2);
}

TEST(RejoinCoordinator, ReleaseWinsOverConcurrentPause) {
  // A release landing before the pause is observed must resolve kReleased:
  // the rejoin belongs to the boundary iteration itself, not the next
  // phase.
  RejoinCoordinator coord(2);
  coord.release(1);
  coord.pause();
  EXPECT_EQ(coord.wait_for_rejoin(1), RejoinWait::kReleased);
  // With the release consumed, the still-pending pause drains the rank.
  EXPECT_EQ(coord.wait_for_rejoin(1), RejoinWait::kPaused);
}

}  // namespace
}  // namespace selsync
