#include "comm/cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "comm/parameter_server.hpp"

namespace selsync {
namespace {

TEST(Cluster, RunsAllRanks) {
  std::atomic<int> count{0};
  std::mutex mutex;
  std::set<size_t> ranks;
  run_cluster(6, [&](WorkerContext& ctx) {
    EXPECT_EQ(ctx.size, 6u);
    ++count;
    std::lock_guard<std::mutex> lock(mutex);
    ranks.insert(ctx.rank);
  });
  EXPECT_EQ(count.load(), 6);
  EXPECT_EQ(ranks.size(), 6u);
}

TEST(Cluster, RootIsRankZero) {
  run_cluster(3, [](WorkerContext& ctx) {
    EXPECT_EQ(ctx.is_root(), ctx.rank == 0);
  });
}

TEST(Cluster, CollectivesWiredUp) {
  run_cluster(4, [](WorkerContext& ctx) {
    std::vector<float> v{1.f};
    ctx.collectives->allreduce_sum(ctx.rank, v);
    EXPECT_FLOAT_EQ(v[0], 4.f);
  });
}

TEST(Cluster, WorkerExceptionPropagates) {
  EXPECT_THROW(
      run_cluster(4,
                  [](WorkerContext& ctx) {
                    if (ctx.rank == 2) throw std::runtime_error("boom");
                    // Everyone else parks at a barrier that the abort must
                    // release — this is the deadlock case a plain
                    // std::barrier would hit.
                    ctx.collectives->barrier();
                    ctx.collectives->barrier();
                  }),
      std::runtime_error);
}

TEST(Cluster, FirstExceptionWins) {
  try {
    run_cluster(2, [](WorkerContext& ctx) {
      if (ctx.rank == 0) throw std::runtime_error("first");
      ctx.collectives->barrier();  // aborted; unwinds quietly
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(Cluster, SingleWorkerCluster) {
  int runs = 0;
  run_cluster(1, [&](WorkerContext& ctx) {
    EXPECT_EQ(ctx.rank, 0u);
    ctx.collectives->barrier();
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

// Regression tests for the fault-injection teardown path: a worker dying
// mid-iteration must never strand its peers in a blocking primitive — not
// the flag allgather, not a parameter-server wait, not a ring recv.

TEST(Cluster, CrashDuringFlagAllgatherReleasesPeers) {
  try {
    run_cluster(4, [](WorkerContext& ctx) {
      if (ctx.rank == 2) throw std::runtime_error("boom");
      // Peers park in the sync-flag allgather waiting for rank 2's vote.
      ctx.collectives->allgather_byte(ctx.rank, 1);
      ctx.collectives->allgather_byte(ctx.rank, 0);
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(Cluster, CrashDuringGroupCollectiveReleasesPeers) {
  // Same, but on a degraded group that still contains the crashed rank.
  const CommGroup group = CommGroup::from_mask({1, 0, 1, 1});
  EXPECT_THROW(run_cluster(4,
                           [&](WorkerContext& ctx) {
                             if (ctx.rank == 1) return;  // not a member
                             if (ctx.rank == 3)
                               throw std::runtime_error("boom");
                             std::vector<float> v{1.f};
                             ctx.collectives->allreduce_sum(ctx.rank, v,
                                                           group);
                           }),
               std::runtime_error);
}

TEST(Cluster, CrashDuringParameterServerWaitReleasesPeers) {
  ParameterServer ps(std::vector<float>(8, 0.f), 4);
  PsRoundConfig cfg;
  cfg.participants = 4;
  cfg.average = true;
  try {
    run_cluster(
        4,
        [&](WorkerContext& ctx) {
          if (ctx.rank == 1) throw std::runtime_error("boom");
          // Peers block inside the PS round waiting for all 4
          // contributions; only the abort hook can release them.
          std::vector<float> data(8, 1.f);
          const uint64_t ticket = ps.round().begin(cfg);
          ps.round().contribute(ticket, ctx.rank, data);
          ps.round().await(ticket);
        },
        [&] { ps.abort(); });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_TRUE(ps.aborted());
  EXPECT_TRUE(ps.round().aborted());
}

TEST(Cluster, CrashDuringRingRecvReleasesPeers) {
  RingAllreduce ring(4);
  try {
    run_cluster(
        4,
        [&](WorkerContext& ctx) {
          if (ctx.rank == 0) throw std::runtime_error("boom");
          // Peers block in recv() on the ring link whose upstream died.
          std::vector<float> data(16, 1.f);
          ring.run(ctx.rank, data);
        },
        [&] { ring.close_all(); });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(Cluster, ManySequentialClustersAreIndependent) {
  for (int i = 0; i < 5; ++i) {
    std::atomic<int> count{0};
    run_cluster(3, [&](WorkerContext&) { ++count; });
    EXPECT_EQ(count.load(), 3);
  }
}

}  // namespace
}  // namespace selsync
