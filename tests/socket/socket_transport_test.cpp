// The TCP transport tier (ctest -L socket): bootstrap handshake in both
// directions, partial-failure chaos (a worker process dying mid-round, a
// worker that never dials in, a torn byte stream), and the measured
// wall-clock accounting that calibrates the CostModel. Everything here runs
// real fork()ed worker processes over loopback sockets — which is why this
// tier is NOT in the sanitizer legs (TSan and fork do not mix).
#include <gtest/gtest.h>

#include <vector>

#include "comm/socket_transport.hpp"
#include "comm/wire_format.hpp"
#include "core/replica.hpp"
#include "core/run_record.hpp"
#include "core/trainer.hpp"
#include "data/partition.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

TrainJob tcp_job(StrategyKind strategy, uint64_t iterations) {
  TrainJob job = testing::small_class_job(strategy, iterations);
  job.transport = TransportKind::kTcp;
  return job;
}

/// The worker half of the Hello handshake, for child_main hooks that need a
/// live connection without serve_tcp_worker's full serve loop.
TcpConn dial_and_handshake(const TrainJob& job, size_t rank, uint16_t port) {
  TcpConn conn = tcp_connect("127.0.0.1", port, job.tcp.connect_timeout_s);
  std::vector<uint8_t> hello;
  wire::put_u32(hello, static_cast<uint32_t>(rank));
  wire::put_u64(hello, job_fingerprint(job));
  send_frame(conn, static_cast<uint16_t>(ReplicaVerb::kHello), hello);
  uint16_t verb = 0;
  recv_frame(conn, &verb);  // HelloAck (bootstrap validates before acking)
  return conn;
}

TEST(TcpBootstrap, HandshakeHandsOutWorkingReplicas) {
  const TrainJob job = tcp_job(StrategyKind::kBsp, 40);
  std::unique_ptr<TransportSession> session = open_transport(job);
  std::unique_ptr<Replica> replica = session->make_replica(0);
  const size_t params = replica->param_count();
  EXPECT_GT(params, 0u);
  replica->load_next_batch();
  EXPECT_EQ(replica->train_step_grads().size(), params)
      << "a full verb round trip must move the real gradient";
  session->finish();
}

TEST(TcpBootstrap, FingerprintMismatchIsRejected) {
  TrainJob job = tcp_job(StrategyKind::kBsp, 40);
  job.workers = 2;
  job.tcp.accept_timeout_s = 10.0;
  job.tcp.child_main = [](const TrainJob& j, size_t rank, uint16_t port) {
    // A worker launched with different flags: same wire, different job.
    TrainJob mine = j;
    mine.seed += 1;
    serve_tcp_worker(mine, rank, "127.0.0.1", port);
  };
  EXPECT_THROW(open_transport(job), std::invalid_argument);
}

TEST(TcpBootstrap, OutOfRangeRankIsRejected) {
  TrainJob job = tcp_job(StrategyKind::kBsp, 40);
  job.workers = 2;
  job.tcp.child_main = [](const TrainJob& j, size_t /*rank*/, uint16_t port) {
    dial_and_handshake(j, /*rank=*/99, port);  // master must refuse the ack
  };
  EXPECT_THROW(open_transport(job), std::invalid_argument);
}

TEST(TcpBootstrap, AcceptTimesOutWhenAWorkerNeverDials) {
  TrainJob job = tcp_job(StrategyKind::kBsp, 40);
  job.workers = 2;
  job.tcp.accept_timeout_s = 0.2;
  job.tcp.child_main = [](const TrainJob& j, size_t rank, uint16_t port) {
    if (rank == 0) serve_tcp_worker(j, rank, "127.0.0.1", port);
    // rank 1 exits without ever connecting
  };
  try {
    open_transport(job);
    FAIL() << "expected SocketError";
  } catch (const SocketError& error) {
    EXPECT_NE(std::string(error.what()).find("timed out"), std::string::npos);
  }
}

TEST(TcpTraining, BspOverLoopbackCompletes) {
  const TrainResult result = run_training(tcp_job(StrategyKind::kBsp, 40));
  EXPECT_EQ(result.iterations, 40u);
  EXPECT_FALSE(result.diverged);
}

TEST(TcpTraining, SspOverLoopbackCompletes) {
  TrainJob job = tcp_job(StrategyKind::kSsp, 60);
  job.ssp.staleness = 3;
  const TrainResult result = run_training(job);
  EXPECT_EQ(result.iterations, 60u);
  EXPECT_FALSE(result.diverged);
}

TEST(TcpTraining, MeasuredSyncCostCarriesRealWallClock) {
  TrainJob job = tcp_job(StrategyKind::kBsp, 20);
  job.record_sync_cost = true;
  const TrainResult tcp = run_training(job);
  ASSERT_GT(tcp.sync_cost.rounds, 0u);
  EXPECT_GT(tcp.sync_cost.measured_wire_bytes, 0.0)
      << "every priced round moved real frames";
  EXPECT_GT(tcp.sync_cost.measured_sync_s, 0.0);

  job.transport = TransportKind::kInproc;
  const TrainResult inproc = run_training(job);
  EXPECT_EQ(inproc.sync_cost.measured_wire_bytes, 0.0)
      << "the in-proc carrier has no wire; measured fields stay zero";
  EXPECT_EQ(inproc.sync_cost.measured_sync_s, 0.0);
}

TEST(TcpTraining, JobRecordNamesTheCarrierOnlyWhenTcp) {
  TrainJob job = tcp_job(StrategyKind::kBsp, 20);
  EXPECT_NE(job_to_json(job).dump(0).find("\"transport\""),
            std::string::npos);
  job.transport = TransportKind::kInproc;
  EXPECT_EQ(job_to_json(job).dump(0).find("\"transport\""),
            std::string::npos)
      << "inproc predates the knob; golden job records must not change";
}

TEST(TcpChaos, WorkerProcessDeathMidRoundAbortsWithoutDeadlock) {
  TrainJob job = tcp_job(StrategyKind::kBsp, 40);
  job.tcp.child_main = [](const TrainJob& j, size_t rank, uint16_t port) {
    if (rank != 1) {
      serve_tcp_worker(j, rank, "127.0.0.1", port);
      return;
    }
    // Rank 1 answers 20 verbs, then the process vanishes mid-run — an
    // unplanned death no FaultPlan scheduled.
    const Partition partition =
        make_partition(j.partition, *j.train_data, j.workers,
                       j.labels_per_worker, j.seed ^ 0xDA7AULL);
    std::unique_ptr<Replica> replica = make_local_replica(
        j, partition.worker_order[rank], replica_local_batch(j));
    TcpConn conn = dial_and_handshake(j, rank, port);
    serve_replica(conn, *replica, /*max_verbs=*/20);
  };
  // The dying peer surfaces as SocketError on its worker thread; the abort
  // path must wake the sibling threads (blocked in collectives or their own
  // replica verbs) and rethrow instead of deadlocking.
  EXPECT_THROW(run_training(job), std::runtime_error);
}

TEST(TcpChaos, TornByteStreamFailsLoudly) {
  TrainJob job = tcp_job(StrategyKind::kBsp, 40);
  job.tcp.child_main = [](const TrainJob& j, size_t rank, uint16_t port) {
    if (rank != 0) {
      serve_tcp_worker(j, rank, "127.0.0.1", port);
      return;
    }
    // Rank 0 handshakes cleanly, then answers the first verb with garbage
    // that is neither a valid header nor a whole frame.
    TcpConn conn = dial_and_handshake(j, rank, port);
    uint16_t verb = 0;
    recv_frame(conn, &verb);  // the master's first replica verb
    const std::vector<uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
    conn.send_all(garbage.data(), garbage.size());
  };
  EXPECT_THROW(run_training(job), std::exception);
}

TEST(TcpChaos, PlannedCrashScheduleRecoversOverTcp) {
  // The FaultPlan machinery (checkpoint, crash, restart, recovery sync) maps
  // onto replica verbs: a planned crash schedule must complete over the real
  // wire exactly like in-proc. (The socket golden tier additionally proves
  // the byte-identical dynamics.)
  TrainJob job = tcp_job(StrategyKind::kBsp, 40);
  job.faults.seed = 7;
  job.faults.checkpoint_interval = 10;
  job.faults.restart_cost_s = 0.5;
  job.faults.crashes.push_back({/*rank=*/2, /*at_iteration=*/14,
                                /*downtime_iterations=*/6, /*restart=*/true});
  const TrainResult result = run_training(job);
  EXPECT_EQ(result.iterations, 40u);
  EXPECT_EQ(result.faults.crashes, 1u);
  EXPECT_EQ(result.faults.restarts, 1u);
}

}  // namespace
}  // namespace selsync
