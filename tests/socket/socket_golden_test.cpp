// Golden parity over the real wire: the full golden grid re-runs with
// job.transport = kTcp — every replica living in a forked worker process,
// every verb a WireFormat frame pair on loopback TCP — and each canonical
// result record must stay byte-identical to the seed oracle. This is the
// transport's core acceptance bar: carrying the floats over a socket must
// not change a single bit of the training dynamics, simulated-time
// arithmetic, or fault logs.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/trainer.hpp"
#include "tests/golden/golden_configs.hpp"

namespace selsync {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "cannot open golden record " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class SocketGolden : public ::testing::TestWithParam<golden::GoldenConfig> {};

TEST_P(SocketGolden, RecordIsByteIdenticalOverTcp) {
  const golden::GoldenConfig& cfg = GetParam();
  const std::string expected = read_file(
      std::string(SELSYNC_SOURCE_DIR) + "/tests/golden/records/" + cfg.name +
      ".json");
  ASSERT_FALSE(expected.empty()) << cfg.name;
  TrainJob job = cfg.job;
  job.transport = TransportKind::kTcp;
  const TrainResult result = run_training(job);
  EXPECT_EQ(golden::canonical_result_json(result), expected)
      << cfg.name << ": the TCP carrier changed the training dynamics";
}

INSTANTIATE_TEST_SUITE_P(Grid, SocketGolden,
                         ::testing::ValuesIn(golden::golden_grid()),
                         [](const auto& param_info) {
                           return param_info.param.name;
                         });

}  // namespace
}  // namespace selsync
