// Shared builders and assertions for the engine-parity tier (ctest -L
// parity): thread-vs-DES bit-identity and DES-vs-DES determinism.
//
// Every job here takes a worker-0 weight snapshot at the exact final
// iteration, so the bitwise comparison covers the model parameters
// themselves, not just the serialized dynamics (losses and counters could
// in principle collide; 2k float32 weights cannot).
#pragma once

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/config.hpp"
#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"
#include "tests/golden/golden_configs.hpp"

// The DES engine refuses to run under ThreadSanitizer (TSan cannot follow
// ucontext fiber switches); ci.sh pins the TSan legs to chaos+golden, but
// keep a stray `ctest` in a TSan build tree green too.
#if defined(__SANITIZE_THREAD__)
#define SELSYNC_REQUIRE_DES_ENGINE() \
  GTEST_SKIP() << "DES engine does not run under ThreadSanitizer"
#else
#define SELSYNC_REQUIRE_DES_ENGINE() (void)0
#endif

namespace selsync::parity {

struct ParityCase {
  std::string name;
  TrainJob job;
};

/// small_class_job resized to `workers`, with a dense eval history and the
/// final-weights snapshot armed.
inline TrainJob sized_job(StrategyKind strategy, size_t workers,
                          uint64_t iterations) {
  TrainJob job = testing::small_class_job(strategy, iterations);
  job.workers = workers;
  job.eval_interval = 10;
  job.snapshot_epochs = {static_cast<double>(iterations) /
                         static_cast<double>(job.steps_per_epoch())};
  return job;
}

/// golden_fault_plan() adapted to clusters too small for its fixed ranks:
/// crash/rejoin on the highest eligible rank, straggler on another.
inline FaultPlan crash_rejoin_plan(size_t workers) {
  FaultPlan plan = golden::golden_fault_plan();
  plan.crashes[0].rank = workers > 2 ? 2 : workers - 1;
  plan.stragglers[0].rank = workers > 2 ? 1 : 0;
  return plan;
}

/// Asserts two runs of (nominally) the same system are bit-identical:
/// byte-equal canonical run records and byte-equal final weights.
inline void expect_bitwise_equal(const TrainResult& a, const TrainResult& b,
                                 const std::string& label) {
  EXPECT_EQ(golden::canonical_result_json(a),
            golden::canonical_result_json(b))
      << label << ": run records diverge";
  ASSERT_EQ(a.weight_snapshots.size(), b.weight_snapshots.size()) << label;
  for (const auto& [epoch, weights] : a.weight_snapshots) {
    const auto it = b.weight_snapshots.find(epoch);
    ASSERT_TRUE(it != b.weight_snapshots.end())
        << label << ": missing snapshot at epoch " << epoch;
    ASSERT_EQ(weights.size(), it->second.size()) << label;
    EXPECT_EQ(0, std::memcmp(weights.data(), it->second.data(),
                             weights.size() * sizeof(float)))
        << label << ": final weights diverge at epoch " << epoch;
  }
}

/// Runs `job` under both engines and asserts bit-identity.
inline void expect_engine_parity(TrainJob job, const std::string& label) {
  job.engine = EngineKind::kThreads;
  const TrainResult threads = run_training(job);
  job.engine = EngineKind::kDes;
  const TrainResult des = run_training(job);
  expect_bitwise_equal(threads, des, label);
}

}  // namespace selsync::parity
