// Thread-vs-DES bit-identity across the backend × strategy × codec matrix
// at N ∈ {2, 4, 8}, including a crash/rejoin FaultPlan case (ISSUE 6).
//
// The thread engine's synchronous strategies are schedule-independent by
// construction (barrier-sequenced rank-slot writes, rank-order folds), so a
// correct DES engine must reproduce them bit for bit — same run-record
// bytes (minus wall-clock), same final float32 weights. SSP is deliberately
// absent: its thread-engine interleaving is not reproducible (see
// tests/golden/golden_configs.hpp); its DES determinism is proven in
// determinism_fuzz_test.cpp instead.
#include <gtest/gtest.h>

#include <vector>

#include "tests/parity/parity_jobs.hpp"

namespace selsync {
namespace {

using parity::ParityCase;
using parity::crash_rejoin_plan;
using parity::sized_job;

std::vector<ParityCase> parity_matrix() {
  std::vector<ParityCase> cases;
  auto add = [&](std::string name, TrainJob job) {
    cases.push_back({std::move(name), std::move(job)});
  };

  for (size_t workers : {size_t{2}, size_t{4}, size_t{8}}) {
    const std::string n = "_n" + std::to_string(workers);

    // Strategy × backend (dense payloads).
    for (BackendKind backend :
         {BackendKind::kSharedMemory, BackendKind::kRing, BackendKind::kTree,
          BackendKind::kParameterServer}) {
      TrainJob job = sized_job(StrategyKind::kBsp, workers, 24);
      job.backend = backend;
      add(std::string("bsp_") + backend_kind_name(backend) + n, job);
    }
    for (BackendKind backend :
         {BackendKind::kSharedMemory, BackendKind::kRing}) {
      TrainJob job = sized_job(StrategyKind::kSelSync, workers, 24);
      job.selsync.delta = 0.05;
      job.backend = backend;
      add(std::string("selsync_") + backend_kind_name(backend) + n, job);
    }

    // Codec combos: Top-k fused into the gradient data plane.
    for (BackendKind backend :
         {BackendKind::kSharedMemory, BackendKind::kTree}) {
      TrainJob job = sized_job(StrategyKind::kSelSync, workers, 24);
      job.selsync.delta = 0.05;
      job.selsync.aggregation = AggregationMode::kGradients;
      job.compression.kind = CompressionKind::kTopK;
      job.compression.topk_fraction = 0.25;
      job.backend = backend;
      add(std::string("selsync_ga_topk_") + backend_kind_name(backend) + n,
          job);
    }

    // Crash/park/rejoin + stragglers + message faults (shared transport —
    // the only one that admits crash plans for synchronous strategies).
    {
      TrainJob job = sized_job(StrategyKind::kBsp, workers, 30);
      job.faults = crash_rejoin_plan(workers);
      add("bsp_shared_crash_rejoin" + n, job);
    }
  }

  // The remaining synchronous strategies at one representative size.
  {
    TrainJob job = sized_job(StrategyKind::kFedAvg, 4, 24);
    job.fedavg = {0.5, 0.25};
    add("fedavg_half_shared_n4", job);
  }
  add("easgd_shared_n4", sized_job(StrategyKind::kEasgd, 4, 24));
  add("local_shared_n4", sized_job(StrategyKind::kLocalSgd, 4, 24));

  return cases;
}

class EngineParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(EngineParity, DesMatchesThreadsBitForBit) {
  SELSYNC_REQUIRE_DES_ENGINE();
  const ParityCase& c = GetParam();
  parity::expect_engine_parity(c.job, c.name);
}

INSTANTIATE_TEST_SUITE_P(Matrix, EngineParity,
                         ::testing::ValuesIn(parity_matrix()),
                         [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace selsync
