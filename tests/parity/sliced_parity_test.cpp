// Thread-vs-DES bit-identity for the sliced data plane (ISSUE 7): both
// engines must drive the identical per-slice protocol — same slice
// emission order, same per-slice collective rounds, same codec slot
// rebasing — so every sliced/overlapped configuration reproduces bit for
// bit across engines, exactly like the unsliced matrix in
// engine_parity_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "tests/parity/parity_jobs.hpp"

namespace selsync {
namespace {

using parity::ParityCase;
using parity::crash_rejoin_plan;
using parity::sized_job;

std::vector<ParityCase> sliced_matrix() {
  std::vector<ParityCase> cases;
  auto add = [&](std::string name, TrainJob job) {
    cases.push_back({std::move(name), std::move(job)});
  };

  // Gradient payloads (BSP) sliced + overlapped on every transport: the
  // slice rounds ride the per-backend collectives, so each backend's
  // blocking structure is exercised under both engines.
  for (BackendKind backend :
       {BackendKind::kSharedMemory, BackendKind::kRing, BackendKind::kTree,
        BackendKind::kParameterServer}) {
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 24);
    job.backend = backend;
    job.slices = 4;
    job.overlap = true;
    add(std::string("bsp_sliced_overlap_") + backend_kind_name(backend) +
            "_n4",
        job);
  }

  // Slicing without overlap, and the anti-priority emission order.
  {
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 24);
    job.slices = 3;
    add("bsp_sliced_nooverlap_shared_n4", job);
  }
  {
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 24);
    job.slices = 4;
    job.overlap = true;
    job.slice_order = SliceScheduleKind::kInputFirst;
    add("bsp_sliced_inputfirst_shared_n4", job);
  }

  // Codec slice rounds: Top-k error feedback keyed per (rank, slice slot),
  // on the base-class codec path (shared), the ring's chunk-slot rebasing,
  // and the tree's two-slot rebasing.
  for (BackendKind backend :
       {BackendKind::kSharedMemory, BackendKind::kRing, BackendKind::kTree}) {
    TrainJob job = sized_job(StrategyKind::kSelSync, 4, 24);
    job.selsync.delta = 0.05;
    job.selsync.aggregation = AggregationMode::kGradients;
    job.compression.kind = CompressionKind::kTopK;
    job.compression.topk_fraction = 0.25;
    job.backend = backend;
    job.slices = 2;
    job.overlap = true;
    add(std::string("selsync_ga_topk_sliced_") + backend_kind_name(backend) +
            "_n4",
        job);
  }

  // Parameter payloads sliced (overlap stays off: parameters only exist
  // after the optimizer step, there is no backward to hide behind).
  {
    TrainJob job = sized_job(StrategyKind::kSelSync, 4, 24);
    job.selsync.delta = 0.05;
    job.slices = 4;
    add("selsync_pa_sliced_shared_n4", job);
  }
  {
    TrainJob job = sized_job(StrategyKind::kFedAvg, 4, 24);
    job.fedavg = {0.5, 0.25};
    job.backend = BackendKind::kRing;
    job.slices = 4;
    add("fedavg_pa_sliced_ring_n4", job);
  }

  // Crash/park/rejoin mid-run with slices in flight: recovery syncs and
  // group reshapes must replay identically under fibers.
  {
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 30);
    job.faults = crash_rejoin_plan(4);
    job.slices = 4;
    job.overlap = true;
    add("bsp_sliced_crash_rejoin_shared_n4", job);
  }

  return cases;
}

class SlicedEngineParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(SlicedEngineParity, DesMatchesThreadsBitForBit) {
  SELSYNC_REQUIRE_DES_ENGINE();
  const ParityCase& c = GetParam();
  parity::expect_engine_parity(c.job, c.name);
}

INSTANTIATE_TEST_SUITE_P(Matrix, SlicedEngineParity,
                         ::testing::ValuesIn(sliced_matrix()),
                         [](const auto& param_info) {
                           return param_info.param.name;
                         });

}  // namespace
}  // namespace selsync
