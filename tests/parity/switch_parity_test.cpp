// SyncPlan switch parity (DESIGN.md §14).
//
// Two bit-identity claims anchor the phased lifecycle:
//
//  1. Degenerate switch: a plan that switches to an *identical* config at
//     iteration k — drain the backend, extract/adopt the whole handoff,
//     rebuild the backend, resume every loop — must be byte-identical to
//     the same job run with no plan at all, on BOTH engines. Any state the
//     handoff fails to carry (codec residuals, the PS store, the Δ(g)
//     EWMA, a parked worker's rejoin schedule) shows up here as a bit
//     divergence.
//
//  2. Real switches replay identically across engines: a thread run and a
//     DES run of the same switching job produce the same record and the
//     same final float32 weights, because the boundary is a plain
//     iteration count (or a control-plane Δ(g) agreement) either engine
//     reaches deterministically.
#include <gtest/gtest.h>

#include <vector>

#include "core/sync_plan.hpp"
#include "tests/parity/parity_jobs.hpp"

namespace selsync {
namespace {

using parity::ParityCase;
using parity::crash_rejoin_plan;
using parity::sized_job;

SyncPhase switch_at(uint64_t iteration) {
  SyncPhase phase;
  phase.trigger.kind = SwitchTriggerKind::kAtIteration;
  phase.trigger.at_iteration = iteration;
  return phase;
}

/// The degenerate-switch matrix: each case stresses one handoff payload.
std::vector<ParityCase> degenerate_matrix() {
  std::vector<ParityCase> cases;
  auto add = [&](std::string name, TrainJob job, uint64_t boundary) {
    job.sync_plan.phases.push_back(switch_at(boundary));
    cases.push_back({std::move(name), std::move(job)});
  };

  // Plain BSP: loop counters, eval history, the root's observability.
  add("bsp_shared", sized_job(StrategyKind::kBsp, 4, 24), 12);

  // SelSync: the Δ(g) EWMA window and the sync/local step split must
  // resume mid-trajectory.
  {
    TrainJob job = sized_job(StrategyKind::kSelSync, 4, 24);
    job.selsync.delta = 0.05;
    add("selsync_shared", job, 12);
  }

  // Top-k in gradient space: per-rank error-feedback residuals cross the
  // boundary through BackendHandoff.
  {
    TrainJob job = sized_job(StrategyKind::kSelSync, 4, 24);
    job.selsync.delta = 0.05;
    job.selsync.aggregation = AggregationMode::kGradients;
    job.compression.kind = CompressionKind::kTopK;
    job.compression.topk_fraction = 0.25;
    add("selsync_ga_topk_shared", job, 12);
  }

  // Chunked transport: the ring's per-(rank, slot) ChunkCodec residuals.
  {
    TrainJob job = sized_job(StrategyKind::kSelSync, 4, 24);
    job.selsync.delta = 0.05;
    job.selsync.aggregation = AggregationMode::kGradients;
    job.compression.kind = CompressionKind::kTopK;
    job.compression.topk_fraction = 0.25;
    job.backend = BackendKind::kRing;
    add("selsync_ga_topk_ring", job, 12);
  }

  // Central store: the PS backend's global parameters carry over instead
  // of being re-seeded from the iteration-0 model.
  {
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 24);
    job.backend = BackendKind::kParameterServer;
    add("bsp_ps", job, 12);
  }

  // EASGD: the elastic center lives in shared state and must NOT be
  // re-seeded on an EASGD -> EASGD boundary.
  add("easgd_shared", sized_job(StrategyKind::kEasgd, 4, 24), 12);

  // Sliced data plane with a codec: the backend-owned slice ChunkCodec.
  {
    TrainJob job = sized_job(StrategyKind::kSelSync, 4, 24);
    job.selsync.delta = 0.05;
    job.selsync.aggregation = AggregationMode::kGradients;
    job.compression.kind = CompressionKind::kTopK;
    job.compression.topk_fraction = 0.25;
    job.slices = 4;
    add("selsync_ga_topk_sliced", job, 12);
  }

  // The boundary lands while rank 2 is parked awaiting rejoin (crash at
  // 14, downtime 6, boundary 17): the park must span the switch without
  // re-recording the crash, and the rejoin must fire in the next phase.
  {
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 30);
    job.faults = crash_rejoin_plan(4);
    add("bsp_crash_park_spans_boundary", job, 17);
  }

  return cases;
}

class DegenerateSwitch : public ::testing::TestWithParam<ParityCase> {};

/// Runs the planned job and its plan-less twin under one engine and
/// asserts bit-identity of the result record and the final weights.
void expect_degenerate_parity(TrainJob planned, EngineKind engine,
                              const std::string& label) {
  planned.engine = engine;
  TrainJob legacy = planned;
  legacy.sync_plan.phases.clear();
  const TrainResult with_plan = run_training(planned);
  const TrainResult without = run_training(legacy);
  parity::expect_bitwise_equal(with_plan, without, label);
}

TEST_P(DegenerateSwitch, ThreadsBitIdenticalToNoPlan) {
  const ParityCase& c = GetParam();
  expect_degenerate_parity(c.job, EngineKind::kThreads, c.name + "_threads");
}

TEST_P(DegenerateSwitch, DesBitIdenticalToNoPlan) {
  SELSYNC_REQUIRE_DES_ENGINE();
  const ParityCase& c = GetParam();
  expect_degenerate_parity(c.job, EngineKind::kDes, c.name + "_des");
}

INSTANTIATE_TEST_SUITE_P(Matrix, DegenerateSwitch,
                         ::testing::ValuesIn(degenerate_matrix()),
                         [](const auto& param_info) { return param_info.param.name; });

/// Real switches: thread-vs-DES bit-identity for plans that change the
/// strategy, the backend, the codec, the slicing, or the shard count —
/// and one Δ(g)-triggered switch, whose boundary both engines must agree
/// on through the control-plane allreduce.
std::vector<ParityCase> switch_matrix() {
  std::vector<ParityCase> cases;
  auto add = [&](std::string name, TrainJob job) {
    cases.push_back({std::move(name), std::move(job)});
  };

  {
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 24);
    job.selsync.delta = 0.05;
    SyncPhase to_selsync = switch_at(12);
    to_selsync.strategy = StrategyKind::kSelSync;
    job.sync_plan.phases.push_back(to_selsync);
    add("bsp_to_selsync", job);
  }
  {
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 24);
    SyncPhase to_ring = switch_at(12);
    to_ring.backend = BackendKind::kRing;
    job.sync_plan.phases.push_back(to_ring);
    add("bsp_shared_to_ring", job);
  }
  {
    TrainJob job = sized_job(StrategyKind::kSelSync, 4, 24);
    job.selsync.delta = 0.05;
    job.selsync.aggregation = AggregationMode::kGradients;
    SyncPhase to_topk = switch_at(12);
    CompressionConfig codec;
    codec.kind = CompressionKind::kTopK;
    codec.topk_fraction = 0.25;
    to_topk.compression = codec;
    job.sync_plan.phases.push_back(to_topk);
    add("selsync_dense_to_topk", job);
  }
  {
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 24);
    SyncPhase to_sliced = switch_at(12);
    to_sliced.slices = 4;
    job.sync_plan.phases.push_back(to_sliced);
    add("bsp_to_sliced", job);
  }
  {
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 24);
    job.backend = BackendKind::kParameterServer;
    SyncPhase to_sharded = switch_at(12);
    to_sharded.ps_shards = 2;
    job.sync_plan.phases.push_back(to_sharded);
    add("bsp_ps_to_sharded", job);
  }
  {
    // Two switch points: BSP warmup, SelSync middle, BSP finish.
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 30);
    job.selsync.delta = 0.05;
    SyncPhase mid = switch_at(10);
    mid.strategy = StrategyKind::kSelSync;
    SyncPhase tail = switch_at(20);
    tail.strategy = StrategyKind::kBsp;
    job.sync_plan.phases.push_back(mid);
    job.sync_plan.phases.push_back(tail);
    add("bsp_selsync_bsp_two_points", job);
  }
  {
    // Δ(g) trigger: the switch fires when the cluster-max Δ(g) settles
    // below the threshold, decided identically by both engines.
    TrainJob job = sized_job(StrategyKind::kSelSync, 4, 24);
    job.selsync.delta = 0.05;
    SyncPhase calm = switch_at(0);
    calm.trigger.kind = SwitchTriggerKind::kOnGradChange;
    calm.trigger.gradchange_below = 0.5;
    calm.trigger.min_iteration = 6;
    calm.strategy = StrategyKind::kBsp;
    job.sync_plan.phases.push_back(calm);
    add("selsync_to_bsp_on_gradchange", job);
  }

  return cases;
}

class SwitchEngineParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(SwitchEngineParity, DesMatchesThreadsBitForBit) {
  SELSYNC_REQUIRE_DES_ENGINE();
  const ParityCase& c = GetParam();
  parity::expect_engine_parity(c.job, c.name);
}

INSTANTIATE_TEST_SUITE_P(Matrix, SwitchEngineParity,
                         ::testing::ValuesIn(switch_matrix()),
                         [](const auto& param_info) { return param_info.param.name; });

// A switch INTO SSP leaves the reproducible-thread-schedule world, so the
// claim weakens to DES determinism: two DES runs of the same BSP -> SSP
// plan are bit-identical (the thread twin still runs, it just cannot be
// compared bitwise — SSP's thread interleaving is not a function of the
// job).
TEST(SwitchDeterminism, BspToSspIsDesDeterministic) {
  SELSYNC_REQUIRE_DES_ENGINE();
  TrainJob job = sized_job(StrategyKind::kBsp, 4, 24);
  job.backend = BackendKind::kParameterServer;
  job.ssp.staleness = 3;
  SyncPhase to_ssp = switch_at(12);
  to_ssp.strategy = StrategyKind::kSsp;
  job.sync_plan.phases.push_back(to_ssp);
  job.engine = EngineKind::kDes;
  const TrainResult first = run_training(job);
  const TrainResult second = run_training(job);
  parity::expect_bitwise_equal(first, second, "bsp_to_ssp_des");
}

}  // namespace
}  // namespace selsync
