// The golden drift gate, DES edition (ISSUE 6): the DES engine must
// reproduce every checked-in golden record byte for byte — the same 12
// oracles the thread engine is pinned to (tests/core/golden_parity_test.cpp),
// no new records, no regeneration. A passing run means the two engines and
// the seed trainer are one system.
//
// Labeled `parity`, not `golden`, on purpose: ci.sh's sanitizer legs re-run
// the golden label under TSan/ASan, and the DES engine is thread-engine-only
// territory for TSan (see parity_jobs.hpp).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/trainer.hpp"
#include "tests/golden/golden_configs.hpp"
#include "tests/parity/parity_jobs.hpp"

namespace selsync {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "cannot open golden record " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class GoldenDesParity
    : public ::testing::TestWithParam<golden::GoldenConfig> {};

TEST_P(GoldenDesParity, DesReproducesSeedRecordByteForByte) {
  SELSYNC_REQUIRE_DES_ENGINE();
  const golden::GoldenConfig& cfg = GetParam();
  const std::string expected = read_file(
      std::string(SELSYNC_SOURCE_DIR) + "/tests/golden/records/" + cfg.name +
      ".json");
  ASSERT_FALSE(expected.empty()) << cfg.name;
  TrainJob job = cfg.job;
  job.engine = EngineKind::kDes;
  const TrainResult result = run_training(job);
  EXPECT_EQ(golden::canonical_result_json(result), expected)
      << cfg.name << ": the DES engine no longer reproduces the seed "
      << "dynamics the thread engine is pinned to";
}

INSTANTIATE_TEST_SUITE_P(Grid, GoldenDesParity,
                         ::testing::ValuesIn(golden::golden_grid()),
                         [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace selsync
