// DES determinism fuzz (ISSUE 6): for a grid of seeds × configs, run the
// same DES job twice and byte-compare the run records and final weights.
//
// The engine-parity matrix proves DES == threads where threads are
// reproducible; this tier proves the DES engine is a pure function of the
// job everywhere else too — including SSP, whose asynchronous pushes the
// thread engine cannot replay, and fault plans, whose per-rank streams must
// land identically. Any hidden dependence on host time, hash/map iteration
// order, or ready-queue ties shows up here as a byte diff (the rng /
// Date-now confinement is linted statically; this is the end-to-end check).
#include <gtest/gtest.h>

#include <vector>

#include "tests/parity/parity_jobs.hpp"

namespace selsync {
namespace {

using parity::ParityCase;
using parity::sized_job;

std::vector<ParityCase> fuzz_matrix() {
  std::vector<ParityCase> cases;
  auto add = [&](const std::string& name, TrainJob job) {
    for (uint64_t seed : {uint64_t{1}, uint64_t{7}, uint64_t{23},
                          uint64_t{61}}) {
      TrainJob seeded = job;
      seeded.seed = seed;
      seeded.engine = EngineKind::kDes;
      cases.push_back({name + "_seed" + std::to_string(seed),
                       std::move(seeded)});
    }
  };

  {
    TrainJob job = sized_job(StrategyKind::kSsp, 4, 24);
    job.ssp.staleness = 3;
    add("ssp_shared", job);
  }
  {
    TrainJob job = sized_job(StrategyKind::kSsp, 4, 24);
    job.ssp.staleness = 2;
    job.ps_shards = 2;
    job.faults = golden::golden_message_plan();
    add("ssp_sharded_msgfaults", job);
  }
  {
    TrainJob job = sized_job(StrategyKind::kSelSync, 4, 24);
    job.selsync.delta = 0.05;
    job.faults = golden::golden_message_plan();
    add("selsync_shared_msgfaults", job);
  }
  {
    TrainJob job = sized_job(StrategyKind::kBsp, 4, 24);
    job.backend = BackendKind::kRing;
    job.faults = golden::golden_message_plan();
    add("bsp_ring_msgfaults", job);
  }
  {
    TrainJob job = sized_job(StrategyKind::kFedAvg, 4, 30);
    job.fedavg = {0.5, 0.25};
    job.faults = parity::crash_rejoin_plan(4);
    add("fedavg_crash_rejoin", job);
  }
  return cases;
}

class DesDeterminism : public ::testing::TestWithParam<ParityCase> {};

TEST_P(DesDeterminism, TwoRunsAreByteIdentical) {
  SELSYNC_REQUIRE_DES_ENGINE();
  const ParityCase& c = GetParam();
  const TrainResult first = run_training(c.job);
  const TrainResult second = run_training(c.job);
  parity::expect_bitwise_equal(first, second, c.name);
}

INSTANTIATE_TEST_SUITE_P(Grid, DesDeterminism,
                         ::testing::ValuesIn(fuzz_matrix()),
                         [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace selsync
