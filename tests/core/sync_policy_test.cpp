#include "core/sync_policy.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

TEST(BspPolicy, AlwaysSyncsNoExchange) {
  BspPolicy p(8);
  for (uint64_t it = 0; it < 10; ++it) EXPECT_TRUE(p.local_vote(it, 0.0));
  EXPECT_FALSE(p.needs_flag_exchange());
  EXPECT_EQ(p.participant_count(), 8u);
  EXPECT_TRUE(p.participates(0, 3));
}

TEST(LocalSgdPolicy, NeverSyncs) {
  LocalSgdPolicy p(8);
  for (uint64_t it = 0; it < 10; ++it)
    EXPECT_FALSE(p.local_vote(it, 1e9));  // even huge deltas
  EXPECT_FALSE(p.needs_flag_exchange());
}

TEST(FedAvgPolicy, SyncIntervalFromEAndStepsPerEpoch) {
  // E=0.25 with 100 steps/epoch -> sync every 25 steps (4x per epoch).
  FedAvgPolicy p({1.0, 0.25}, 8, 100, 1);
  EXPECT_EQ(p.sync_interval(), 25u);
  EXPECT_FALSE(p.local_vote(0, 0.0));
  EXPECT_TRUE(p.local_vote(24, 0.0));   // iteration 24 is the 25th step
  EXPECT_FALSE(p.local_vote(25, 0.0));
  EXPECT_TRUE(p.local_vote(49, 0.0));
}

TEST(FedAvgPolicy, IntervalNeverZero) {
  FedAvgPolicy p({1.0, 0.001}, 8, 10, 1);
  EXPECT_GE(p.sync_interval(), 1u);
}

TEST(FedAvgPolicy, FullParticipationIncludesEveryone) {
  FedAvgPolicy p({1.0, 0.25}, 8, 100, 1);
  for (size_t r = 0; r < 8; ++r) EXPECT_TRUE(p.participates(5, r));
}

TEST(FedAvgPolicy, HalfParticipationSelectsExactlyHalf) {
  FedAvgPolicy p({0.5, 0.25}, 8, 100, 7);
  EXPECT_EQ(p.participant_count(), 4u);
  for (uint64_t round = 0; round < 10; ++round) {
    size_t members = 0;
    for (size_t r = 0; r < 8; ++r)
      if (p.participates(round, r)) ++members;
    EXPECT_EQ(members, 4u) << "round " << round;
  }
}

TEST(FedAvgPolicy, SelectionConsistentAcrossInstances) {
  // Two policy instances with the same seed (two workers) must agree on the
  // participant set without any coordination.
  FedAvgPolicy a({0.5, 0.25}, 8, 100, 3);
  FedAvgPolicy b({0.5, 0.25}, 8, 100, 3);
  for (uint64_t round = 0; round < 5; ++round)
    for (size_t r = 0; r < 8; ++r)
      EXPECT_EQ(a.participates(round, r), b.participates(round, r));
}

TEST(FedAvgPolicy, SelectionVariesAcrossRounds) {
  FedAvgPolicy p({0.5, 0.25}, 8, 100, 3);
  bool varies = false;
  for (size_t r = 0; r < 8 && !varies; ++r)
    if (p.participates(0, r) != p.participates(1, r)) varies = true;
  EXPECT_TRUE(varies);
}

TEST(SelSyncPolicy, ThresholdSemantics) {
  SelSyncPolicy p(0.3, 8);
  EXPECT_FALSE(p.local_vote(0, 0.29));
  EXPECT_TRUE(p.local_vote(0, 0.3));   // >= threshold (Alg. 1 line 10)
  EXPECT_TRUE(p.local_vote(0, 1.0));
  EXPECT_TRUE(p.needs_flag_exchange());
}

TEST(SelSyncPolicy, ZeroDeltaIsBsp) {
  // Paper: "δ=0 implies fully synchronous training".
  SelSyncPolicy p(0.0, 8);
  EXPECT_TRUE(p.local_vote(0, 0.0));
}

// Brute-force reference: the O(iteration) loop the closed forms replaced.
uint64_t brute_rounds_before(const SyncPolicy& p, uint64_t iteration) {
  uint64_t rounds = 0;
  for (uint64_t j = 0; j < iteration; ++j)
    if (p.local_vote(j, 0.0)) ++rounds;
  return rounds;
}

TEST(RoundsBefore, ClosedFormsMatchBruteForce) {
  const BspPolicy bsp(8);
  const LocalSgdPolicy local(8);
  const FedAvgPolicy fedavg({1.0, 0.25}, 8, 100, 1);  // interval 25
  const FedAvgPolicy fedavg7({1.0, 0.07}, 8, 100, 1);  // interval 7
  const EasgdPolicy easgd(4, 8);
  for (uint64_t it : {0ull, 1ull, 3ull, 6ull, 7ull, 8ull, 24ull, 25ull, 26ull,
                      99ull, 100ull, 101ull, 12345ull}) {
    EXPECT_EQ(bsp.rounds_before(it), brute_rounds_before(bsp, it)) << it;
    EXPECT_EQ(local.rounds_before(it), brute_rounds_before(local, it)) << it;
    EXPECT_EQ(fedavg.rounds_before(it), brute_rounds_before(fedavg, it))
        << it;
    EXPECT_EQ(fedavg7.rounds_before(it), brute_rounds_before(fedavg7, it))
        << it;
    EXPECT_EQ(easgd.rounds_before(it), brute_rounds_before(easgd, it)) << it;
  }
}

TEST(RoundsBefore, ConstantTimeAtHugeIterations) {
  // The whole point of the closed forms: a rejoiner deep into a long run
  // must not pay an O(iteration) scan.
  const FedAvgPolicy p({1.0, 0.25}, 8, 100, 1);
  EXPECT_EQ(p.rounds_before(4'000'000'000ull), 160'000'000ull);
  const EasgdPolicy e(4, 8);
  EXPECT_EQ(e.rounds_before(4'000'000'000ull), 1'000'000'000ull);
}

TEST(MakePolicy, DispatchesByStrategy) {
  EXPECT_NE(dynamic_cast<BspPolicy*>(
                make_sync_policy(small_class_job(StrategyKind::kBsp)).get()),
            nullptr);
  EXPECT_NE(
      dynamic_cast<LocalSgdPolicy*>(
          make_sync_policy(small_class_job(StrategyKind::kLocalSgd)).get()),
      nullptr);
  EXPECT_NE(
      dynamic_cast<FedAvgPolicy*>(
          make_sync_policy(small_class_job(StrategyKind::kFedAvg)).get()),
      nullptr);
  EXPECT_NE(
      dynamic_cast<SelSyncPolicy*>(
          make_sync_policy(small_class_job(StrategyKind::kSelSync)).get()),
      nullptr);
  EXPECT_THROW(make_sync_policy(small_class_job(StrategyKind::kSsp)),
               std::invalid_argument);
}

}  // namespace
}  // namespace selsync
