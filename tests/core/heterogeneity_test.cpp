// Systems heterogeneity (paper §II-A): straggler effects on simulated time.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

TEST(Heterogeneity, ValidatesSpeedVector) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 10);
  job.worker_speed = {1.0, 1.0};  // wrong size for 4 workers
  EXPECT_THROW(run_training(job), std::invalid_argument);
  job.worker_speed = {1.0, 1.0, 0.0, 1.0};
  EXPECT_THROW(run_training(job), std::invalid_argument);
}

TEST(Heterogeneity, HomogeneousExplicitMatchesDefault) {
  TrainJob a = small_class_job(StrategyKind::kBsp, 30);
  TrainJob b = a;
  b.worker_speed.assign(4, 1.0);
  EXPECT_DOUBLE_EQ(run_training(a).sim_time_s, run_training(b).sim_time_s);
}

TEST(Heterogeneity, BspIsStragglerBound) {
  // With every step synchronized, one 3x-slow worker drags the whole
  // cluster: compute portion of the step time triples.
  TrainJob fast = small_class_job(StrategyKind::kBsp, 40);
  TrainJob slow = fast;
  slow.worker_speed.assign(4, 1.0);
  slow.worker_speed[2] = 3.0;
  const double t_fast = run_training(fast).sim_time_s;
  const double t_slow = run_training(slow).sim_time_s;
  EXPECT_GT(t_slow, t_fast);
}

TEST(Heterogeneity, StragglerDoesNotChangeTrainingMath) {
  TrainJob a = small_class_job(StrategyKind::kBsp, 40);
  TrainJob b = a;
  b.worker_speed.assign(4, 1.0);
  b.worker_speed[1] = 4.0;
  const TrainResult ra = run_training(a);
  const TrainResult rb = run_training(b);
  EXPECT_DOUBLE_EQ(ra.final_eval.top1, rb.final_eval.top1);
}

TEST(Heterogeneity, LocalSgdIgnoresStragglersForFastWorkers) {
  // Without synchronization there is no barrier: worker 0 (fast) never
  // waits, so cluster-completion time grows only by the straggler's own
  // compute — and SelSync at high delta approaches that.
  TrainJob bsp = small_class_job(StrategyKind::kBsp, 40);
  bsp.worker_speed.assign(4, 1.0);
  bsp.worker_speed[3] = 4.0;
  TrainJob local = small_class_job(StrategyKind::kLocalSgd, 40);
  local.worker_speed = bsp.worker_speed;

  const TrainResult rb = run_training(bsp);
  const TrainResult rl = run_training(local);
  // Both are bounded by the straggler's compute, but BSP additionally pays
  // a sync round every step.
  EXPECT_GT(rb.sim_time_s, rl.sim_time_s);
}

TEST(Heterogeneity, SelSyncPaysStragglerOnlyOnSyncSteps) {
  TrainJob sync_heavy = small_class_job(StrategyKind::kSelSync, 60);
  sync_heavy.selsync.delta = 0.0;  // sync every step
  sync_heavy.worker_speed.assign(4, 1.0);
  sync_heavy.worker_speed[0] = 4.0;
  TrainJob sync_light = sync_heavy;
  sync_light.selsync.delta = 1e9;  // never sync
  const TrainResult heavy = run_training(sync_heavy);
  const TrainResult light = run_training(sync_light);
  EXPECT_GT(heavy.sim_time_s, light.sim_time_s);
}

TEST(Heterogeneity, SspRunsWithStragglers) {
  TrainJob job = small_class_job(StrategyKind::kSsp, 40);
  job.ssp.staleness = 5;
  job.worker_speed.assign(4, 1.0);
  job.worker_speed[1] = 2.0;
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 40u);
  EXPECT_GT(r.sim_time_s, 0.0);
}

}  // namespace
}  // namespace selsync
