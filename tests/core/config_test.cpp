#include "core/config.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

TEST(TrainJob, ValidJobPasses) {
  EXPECT_NO_THROW(small_class_job(StrategyKind::kBsp).validate());
}

TEST(TrainJob, StepsPerEpochIsGlobalBatchQuotient) {
  TrainJob job = small_class_job(StrategyKind::kBsp);
  // 1024 samples / (4 workers * 16 batch) = 16 steps.
  EXPECT_EQ(job.steps_per_epoch(), 16u);
  job.batch_size = 1024;  // global batch exceeds dataset -> at least 1
  EXPECT_EQ(job.steps_per_epoch(), 1u);
}

TEST(TrainJob, RejectsMissingPieces) {
  TrainJob job = small_class_job(StrategyKind::kBsp);
  job.workers = 0;
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = small_class_job(StrategyKind::kBsp);
  job.train_data = nullptr;
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = small_class_job(StrategyKind::kBsp);
  job.model_factory = nullptr;
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = small_class_job(StrategyKind::kBsp);
  job.optimizer_factory = nullptr;
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(TrainJob, ValidatesFedAvgRanges) {
  TrainJob job = small_class_job(StrategyKind::kFedAvg);
  job.fedavg.participation = 0.0;
  EXPECT_THROW(job.validate(), std::invalid_argument);
  job.fedavg.participation = 0.5;
  job.fedavg.sync_factor = 2.0;
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(TrainJob, ValidatesSelSyncDelta) {
  TrainJob job = small_class_job(StrategyKind::kSelSync);
  job.selsync.delta = -0.1;
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(TrainJob, ValidatesInjectionRanges) {
  TrainJob job = small_class_job(StrategyKind::kSelSync);
  job.injection.enabled = true;
  job.injection.alpha = 1.5;
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(StrategyNames, AllDistinct) {
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kBsp), "BSP");
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kLocalSgd), "LocalSGD");
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kFedAvg), "FedAvg");
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kSsp), "SSP");
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kSelSync), "SelSync");
}

}  // namespace
}  // namespace selsync
