#include "core/config.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

TEST(TrainJob, ValidJobPasses) {
  EXPECT_NO_THROW(small_class_job(StrategyKind::kBsp).validate());
}

TEST(TrainJob, StepsPerEpochIsGlobalBatchQuotient) {
  TrainJob job = small_class_job(StrategyKind::kBsp);
  // 1024 samples / (4 workers * 16 batch) = 16 steps.
  EXPECT_EQ(job.steps_per_epoch(), 16u);
  job.batch_size = 1024;  // global batch exceeds dataset -> at least 1
  EXPECT_EQ(job.steps_per_epoch(), 1u);
}

TEST(TrainJob, RejectsMissingPieces) {
  TrainJob job = small_class_job(StrategyKind::kBsp);
  job.workers = 0;
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = small_class_job(StrategyKind::kBsp);
  job.train_data = nullptr;
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = small_class_job(StrategyKind::kBsp);
  job.model_factory = nullptr;
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = small_class_job(StrategyKind::kBsp);
  job.optimizer_factory = nullptr;
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(TrainJob, ValidatesFedAvgRanges) {
  TrainJob job = small_class_job(StrategyKind::kFedAvg);
  job.fedavg.participation = 0.0;
  EXPECT_THROW(job.validate(), std::invalid_argument);
  job.fedavg.participation = 0.5;
  job.fedavg.sync_factor = 2.0;
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(TrainJob, ValidatesSelSyncDelta) {
  TrainJob job = small_class_job(StrategyKind::kSelSync);
  job.selsync.delta = -0.1;
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(TrainJob, ValidatesInjectionRanges) {
  TrainJob job = small_class_job(StrategyKind::kSelSync);
  job.injection.enabled = true;
  job.injection.alpha = 1.5;
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

/// validate() must reject combinations the trainer would otherwise silently
/// ignore, with a message that tells the user what to change.
TEST(TrainJob, RejectsCompressionOnNonGradientPayloads) {
  // SelSync in parameter-aggregation mode: the codec would never run.
  TrainJob job = small_class_job(StrategyKind::kSelSync);
  job.selsync.aggregation = AggregationMode::kParameters;
  job.compression = {CompressionKind::kTopK, 0.01, true};
  try {
    job.validate();
    FAIL() << "compression on a PA payload must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("parameter aggregation"), std::string::npos) << msg;
    EXPECT_NE(msg.find("kGradients"), std::string::npos)
        << "message must say how to fix the job: " << msg;
  }

  // Every strategy whose payloads are not gradients is rejected the same
  // way (LocalSGD/FedAvg average parameters, EASGD moves elastic
  // differences, SSP pushes parameter deltas).
  for (StrategyKind strategy :
       {StrategyKind::kLocalSgd, StrategyKind::kFedAvg, StrategyKind::kEasgd,
        StrategyKind::kSsp}) {
    TrainJob j = small_class_job(strategy);
    j.compression = {CompressionKind::kQuant8, 0.01, false};
    EXPECT_THROW(j.validate(), std::invalid_argument)
        << strategy_kind_name(strategy);
  }

  // The combos the codec is for stay valid.
  TrainJob bsp = small_class_job(StrategyKind::kBsp);
  bsp.compression = {CompressionKind::kTopK, 0.01, true};
  EXPECT_NO_THROW(bsp.validate());
  TrainJob ga = small_class_job(StrategyKind::kSelSync);
  ga.selsync.aggregation = AggregationMode::kGradients;
  ga.compression = {CompressionKind::kSignSgd, 0.01, true};
  EXPECT_NO_THROW(ga.validate());
}

TEST(TrainJob, RejectsCrashPlansOnChannelAndPsBackends) {
  for (BackendKind backend :
       {BackendKind::kRing, BackendKind::kTree,
        BackendKind::kParameterServer}) {
    TrainJob job = small_class_job(StrategyKind::kBsp);
    job.backend = backend;
    CrashEvent crash;
    crash.rank = 1;
    crash.at_iteration = 2;
    crash.restart = true;
    job.faults.crashes.push_back(crash);
    try {
      job.validate();
      FAIL() << "crash plan on " << backend_kind_name(backend)
             << " must be rejected";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(backend_kind_name(backend)), std::string::npos)
          << msg;
      EXPECT_NE(msg.find("--backend shared"), std::string::npos)
          << "message must say how to fix the job: " << msg;
    }
  }
  // SSP ignores the synchronous backend knob and handles crashes itself.
  TrainJob ssp = small_class_job(StrategyKind::kSsp);
  ssp.backend = BackendKind::kRing;
  CrashEvent crash;
  crash.rank = 1;
  crash.at_iteration = 2;
  crash.restart = true;
  ssp.faults.crashes.push_back(crash);
  EXPECT_NO_THROW(ssp.validate());
}

TEST(StrategyNames, AllDistinct) {
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kBsp), "BSP");
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kLocalSgd), "LocalSGD");
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kFedAvg), "FedAvg");
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kSsp), "SSP");
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kSelSync), "SelSync");
}

}  // namespace
}  // namespace selsync
