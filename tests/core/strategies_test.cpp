// Strategy semantics: the distributed-training invariants each method must
// satisfy (consistency after sync, BSP==1-worker-large-batch equivalences,
// GA vs PA behaviour from §III-C).
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

TEST(Strategies, BspEquivalentToGradAggregationByHand) {
  // 2-worker BSP for 3 steps must equal manually averaging gradients of two
  // replicas fed the same shards.
  TrainJob job = small_class_job(StrategyKind::kBsp, 3);
  job.workers = 2;
  job.partition = PartitionScheme::kDefault;
  job.optimizer_factory = [] {
    return std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.1));
  };
  job.snapshot_epochs = {};  // keep result small
  const TrainResult dist = run_training(job);

  // Manual replay.
  auto model_a = job.model_factory(job.seed);
  auto model_b = job.model_factory(job.seed);
  const Partition part =
      partition_default(job.train_data->size(), 2, job.seed ^ 0xDA7AULL);
  ShardLoader la(job.train_data, part.worker_order[0], job.batch_size);
  ShardLoader lb(job.train_data, part.worker_order[1], job.batch_size);
  for (int it = 0; it < 3; ++it) {
    model_a->train_step(la.next_batch());
    model_b->train_step(lb.next_batch());
    auto ga = model_a->get_flat_grads();
    const auto gb = model_b->get_flat_grads();
    for (size_t i = 0; i < ga.size(); ++i) ga[i] = 0.5f * (ga[i] + gb[i]);
    model_a->set_flat_grads(ga);
    model_a->apply_sgd(0.1f);
  }

  // Compare against the distributed run's final evaluation by re-evaluating
  // the manual model: losses must match closely.
  const EvalStats manual =
      evaluate_dataset(*model_a, *job.test_data, 128);
  EXPECT_NEAR(manual.top1_accuracy(), dist.final_eval.top1, 1e-6);
}

TEST(Strategies, SelSyncDeltaZeroMatchesBspStepCounts) {
  // Paper: δ=0 ⇒ every step synchronizes (BSP).
  TrainJob job = small_class_job(StrategyKind::kSelSync, 30);
  job.selsync.delta = 0.0;
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.sync_steps, 30u);
  EXPECT_DOUBLE_EQ(r.lssr(), 0.0);
}

TEST(Strategies, SelSyncHugeDeltaIsPureLocalSgd) {
  // Paper: δ > M ⇒ local updates only.
  TrainJob job = small_class_job(StrategyKind::kSelSync, 30);
  job.selsync.delta = 1e9;
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.sync_steps, 0u);
  EXPECT_DOUBLE_EQ(r.lssr(), 1.0);
}

TEST(Strategies, SelSyncLssrMonotoneInDelta) {
  // Fig. 6: sliding δ from 0 to M moves the method from BSP to local SGD.
  double prev_lssr = -1.0;
  for (double delta : {0.0, 0.05, 0.15, 1e9}) {
    TrainJob job = small_class_job(StrategyKind::kSelSync, 80);
    job.selsync.delta = delta;
    const TrainResult r = run_training(job);
    EXPECT_GE(r.lssr(), prev_lssr) << "delta " << delta;
    prev_lssr = r.lssr();
  }
}

TEST(Strategies, SelSyncPaSyncCostsMoreSimTimeThanLocal) {
  TrainJob sel = small_class_job(StrategyKind::kSelSync, 60);
  sel.selsync.delta = 0.0;  // all sync
  TrainJob loc = small_class_job(StrategyKind::kSelSync, 60);
  loc.selsync.delta = 1e9;  // all local
  EXPECT_GT(run_training(sel).sim_time_s, run_training(loc).sim_time_s);
}

TEST(Strategies, FedAvgPartialParticipationChangesOutcome) {
  TrainJob full = small_class_job(StrategyKind::kFedAvg, 96);
  full.fedavg = {1.0, 0.25};
  TrainJob half = small_class_job(StrategyKind::kFedAvg, 96);
  half.fedavg = {0.5, 0.25};
  const TrainResult rf = run_training(full);
  const TrainResult rh = run_training(half);
  // Same sync cadence...
  EXPECT_EQ(rf.sync_steps, rh.sync_steps);
  // ...but different models: partial aggregation discards updates.
  EXPECT_NE(rf.final_eval.loss, rh.final_eval.loss);
}

TEST(Strategies, SspAsyncUpdatesAllReachServer) {
  TrainJob job = small_class_job(StrategyKind::kSsp, 40);
  job.ssp.staleness = 100;
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 40u);
  // SSP trains: the model must be better than chance after 40 async steps
  // of 4 workers.
  EXPECT_GT(r.final_eval.top1, 0.12);
}

TEST(Strategies, SspTighterStalenessStillConverges) {
  TrainJob job = small_class_job(StrategyKind::kSsp, 60);
  job.ssp.staleness = 2;
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 60u);
}

TEST(Strategies, RingTopologyProducesSameDynamicsCheaperAtScale) {
  // Topology only affects charged time, not training math. Ring allreduce
  // is bandwidth-optimal, so at 16 workers it must beat PS incast (at very
  // small clusters the PS's fat ingest can win; the paper's point is about
  // scale-out, §III closing remark).
  TrainJob ps_job = small_class_job(StrategyKind::kBsp, 30);
  ps_job.workers = 16;
  ps_job.topology = Topology::kParameterServer;
  TrainJob ring_job = ps_job;
  ring_job.topology = Topology::kRingAllreduce;
  const TrainResult ps = run_training(ps_job);
  const TrainResult ring = run_training(ring_job);
  EXPECT_DOUBLE_EQ(ps.final_eval.top1, ring.final_eval.top1);
  EXPECT_LT(ring.sim_time_s, ps.sim_time_s);
}

TEST(Strategies, RingBackendConvergesEquivalently) {
  // Moving payloads through the channel-based ring (different but
  // deterministic float summation order) must train to essentially the
  // same model as the shared-memory collectives.
  TrainJob shm = small_class_job(StrategyKind::kBsp, 60);
  TrainJob ring = shm;
  ring.backend = BackendKind::kRing;
  const TrainResult a = run_training(shm);
  const TrainResult b = run_training(ring);
  EXPECT_NEAR(a.final_eval.top1, b.final_eval.top1, 0.05);
  EXPECT_NEAR(a.final_eval.loss, b.final_eval.loss, 0.05);
}

TEST(Strategies, RingBackendIsDeterministic) {
  TrainJob job = small_class_job(StrategyKind::kSelSync, 50);
  job.selsync.delta = 0.02;
  job.backend = BackendKind::kRing;
  const TrainResult a = run_training(job);
  const TrainResult b = run_training(job);
  EXPECT_DOUBLE_EQ(a.final_eval.loss, b.final_eval.loss);
  EXPECT_EQ(a.sync_steps, b.sync_steps);
}

TEST(Strategies, GaAndPaDivergeInSemiSynchronousTraining) {
  // §III-C: with infrequent sync, gradient aggregation and parameter
  // aggregation produce different models.
  TrainJob ga = small_class_job(StrategyKind::kSelSync, 100);
  ga.selsync.delta = 0.01;  // low threshold so both syncs and local steps occur
  ga.selsync.aggregation = AggregationMode::kGradients;
  TrainJob pa = ga;
  pa.selsync.aggregation = AggregationMode::kParameters;
  const TrainResult rga = run_training(ga);
  const TrainResult rpa = run_training(pa);
  ASSERT_GT(rga.sync_steps, 0u);   // the regime §III-C talks about:
  ASSERT_GT(rga.local_steps, 0u);  // a mix of both step kinds
  EXPECT_NE(rga.final_eval.loss, rpa.final_eval.loss);
}

TEST(Strategies, CommBytesScaleWithSyncCount) {
  TrainJob frequent = small_class_job(StrategyKind::kFedAvg, 64);
  frequent.fedavg = {1.0, 0.125};  // sync every 2 steps
  TrainJob rare = small_class_job(StrategyKind::kFedAvg, 64);
  rare.fedavg = {1.0, 1.0};  // sync every 16 steps
  const TrainResult rf = run_training(frequent);
  const TrainResult rr = run_training(rare);
  EXPECT_GT(rf.sync_steps, rr.sync_steps);
  EXPECT_GT(rf.comm_bytes, rr.comm_bytes);
}

}  // namespace
}  // namespace selsync
