#include "core/workloads.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace selsync {
namespace {

TEST(Workloads, FourStandardWorkloads) {
  const auto all = all_workloads();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "ResNet101");
  EXPECT_EQ(all[1].name, "VGG11");
  EXPECT_EQ(all[2].name, "AlexNet");
  EXPECT_EQ(all[3].name, "Transformer");
}

TEST(Workloads, LookupByName) {
  EXPECT_EQ(workload_by_name("VGG11").name, "VGG11");
  EXPECT_TRUE(workload_by_name("Transformer").is_lm);
  EXPECT_TRUE(workload_by_name("AlexNet").top5_metric);
  EXPECT_THROW(workload_by_name("GPT-5"), std::invalid_argument);
}

TEST(Workloads, DatasetsAndFactoriesWiredUp) {
  for (const Workload& w : all_workloads()) {
    ASSERT_TRUE(w.train) << w.name;
    ASSERT_TRUE(w.test) << w.name;
    EXPECT_GT(w.train->size(), w.test->size()) << w.name;
    auto model = w.model_factory(1);
    ASSERT_TRUE(model) << w.name;
    EXPECT_GT(model->param_count(), 0u) << w.name;
    EXPECT_EQ(model->is_language_model(), w.is_lm) << w.name;
    auto optimizer = w.optimizer_factory();
    ASSERT_TRUE(optimizer) << w.name;
  }
}

TEST(Workloads, ProfilesMatchPaperModels) {
  EXPECT_EQ(workload_resnet().profile.name, "ResNet101");
  EXPECT_EQ(workload_vgg().profile.name, "VGG11");
  EXPECT_EQ(workload_alexnet().profile.name, "AlexNet");
  EXPECT_EQ(workload_transformer().profile.name, "Transformer");
}

TEST(Workloads, MakeJobIsValid) {
  for (const Workload& w : all_workloads()) {
    const TrainJob job = make_job(w, StrategyKind::kBsp, 4, 50);
    EXPECT_NO_THROW(job.validate()) << w.name;
    EXPECT_EQ(job.workers, 4u);
    EXPECT_EQ(job.max_iterations, 50u);
  }
}

TEST(Workloads, MetricHelpersDispatch) {
  const Workload lm = workload_transformer();
  const Workload cls = workload_resnet();
  EvalPoint pt;
  pt.top1 = 0.8;
  pt.perplexity = 12.0;
  EXPECT_DOUBLE_EQ(primary_metric(lm, pt), 12.0);
  EXPECT_DOUBLE_EQ(primary_metric(cls, pt), 0.8);
  EXPECT_TRUE(metric_improves(lm, 10.0, 12.0));   // lower ppl is better
  EXPECT_FALSE(metric_improves(lm, 14.0, 12.0));
  EXPECT_TRUE(metric_improves(cls, 0.9, 0.8));    // higher acc is better
  EXPECT_STREQ(metric_name(lm), "perplexity");
  EXPECT_STREQ(metric_name(cls), "top1-acc");
  EXPECT_STREQ(metric_name(workload_alexnet()), "top5-acc");
}

TEST(Workloads, EachTrainsOneStep) {
  for (const Workload& w : all_workloads()) {
    auto model = w.model_factory(1);
    std::vector<size_t> idx;
    for (size_t i = 0; i < w.batch_size; ++i) idx.push_back(i);
    const float loss = model->train_step(w.train->make_batch(idx));
    EXPECT_TRUE(std::isfinite(loss)) << w.name;
    EXPECT_GT(loss, 0.f) << w.name;
  }
}

}  // namespace
}  // namespace selsync
