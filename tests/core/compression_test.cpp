// Gradient compression codecs (paper §II-D baselines) and their trainer
// integration.
#include "comm/compression.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

std::vector<float> ramp(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i)
    v[i] = static_cast<float>(i % 2 == 0 ? i : -static_cast<double>(i)) /
           static_cast<float>(n);
  return v;
}

TEST(Compression, NoneIsIdentity) {
  GradientCompressor c({CompressionKind::kNone});
  std::vector<float> g = ramp(100);
  const auto original = g;
  const size_t bytes = c.compress(g);
  EXPECT_EQ(g, original);
  EXPECT_EQ(bytes, 400u);
  EXPECT_DOUBLE_EQ(c.last_wire_ratio(), 1.0);
}

TEST(Compression, TopKKeepsLargestMagnitudes) {
  GradientCompressor c({CompressionKind::kTopK, 0.1, false});
  std::vector<float> g = ramp(100);  // magnitudes grow with index
  c.compress(g);
  size_t nonzero = 0;
  for (size_t i = 0; i < g.size(); ++i) {
    if (g[i] != 0.f) {
      ++nonzero;
      EXPECT_GE(i, 90u) << "small-magnitude entry survived";
    }
  }
  EXPECT_EQ(nonzero, 10u);
}

TEST(Compression, TopKWireBytesScaleWithFraction) {
  CompressionConfig one_pct{CompressionKind::kTopK, 0.01};
  CompressionConfig ten_pct{CompressionKind::kTopK, 0.1};
  EXPECT_LT(GradientCompressor::wire_bytes(one_pct, 100000),
            GradientCompressor::wire_bytes(ten_pct, 100000));
  // 1% of values with value+index pairs: 1000 * 8 bytes.
  EXPECT_EQ(GradientCompressor::wire_bytes(one_pct, 100000), 8000u);
}

TEST(Compression, SignSgdPreservesSignsAndScale) {
  GradientCompressor c({CompressionKind::kSignSgd, 0.01, false});
  std::vector<float> g{1.f, -2.f, 3.f, -4.f};
  c.compress(g);
  const float scale = std::fabs(g[0]);
  EXPECT_FLOAT_EQ(scale, 2.5f);  // mean |g|
  EXPECT_GT(g[0], 0.f);
  EXPECT_LT(g[1], 0.f);
  EXPECT_FLOAT_EQ(std::fabs(g[3]), scale);
  // ~1 bit per value on the wire (measured on a realistically long vector;
  // the fixed scale float dominates tiny ones).
  GradientCompressor big({CompressionKind::kSignSgd, 0.01, false});
  std::vector<float> long_grad(100000, 1.f);
  big.compress(long_grad);
  EXPECT_LT(big.last_wire_ratio(), 0.05);
}

TEST(Compression, Quant8BoundedError) {
  GradientCompressor c({CompressionKind::kQuant8, 0.01, false});
  std::vector<float> g = ramp(1000);
  const auto original = g;
  c.compress(g);
  float max_abs = 0.f;
  for (float v : original) max_abs = std::max(max_abs, std::fabs(v));
  const float step = max_abs / 127.f;
  for (size_t i = 0; i < g.size(); ++i)
    EXPECT_NEAR(g[i], original[i], step / 2 + 1e-6);
  EXPECT_NEAR(c.last_wire_ratio(), 0.25, 0.01);
}

TEST(Compression, ErrorFeedbackAccumulatesDroppedMass) {
  // With error feedback, an entry too small to ever be in the top-k still
  // gets transmitted eventually because its residual accumulates.
  GradientCompressor c({CompressionKind::kTopK, 0.5, true});
  std::vector<float> g;
  bool small_entry_sent = false;
  for (int it = 0; it < 10; ++it) {
    g = {1.f, 0.3f};  // entry 1 loses the top-1 contest until its residual
                      // accumulates past entry 0's magnitude
    c.compress(g);
    if (g[1] != 0.f) small_entry_sent = true;
  }
  EXPECT_TRUE(small_entry_sent) << "residual never flushed";
}

TEST(Compression, WithoutErrorFeedbackSmallEntriesStarve) {
  GradientCompressor c({CompressionKind::kTopK, 0.5, false});
  std::vector<float> g;
  for (int it = 0; it < 10; ++it) {
    g = {10.f, 0.1f};
    c.compress(g);
    EXPECT_EQ(g[1], 0.f);
  }
}

TEST(Compression, AdaptiveSwitchesRatioOnCriticalDelta) {
  CompressionConfig cfg{CompressionKind::kTopK, 0.01, false};
  cfg.adaptive = true;
  cfg.critical_delta = 0.1;
  cfg.topk_fraction_critical = 0.5;
  GradientCompressor c(cfg);
  std::vector<float> g = ramp(1000);
  c.compress(g, /*delta=*/0.01);  // stable regime: aggressive 1%
  const double stable_ratio = c.last_wire_ratio();
  g = ramp(1000);
  c.compress(g, /*delta=*/0.5);  // critical regime: conservative 50%
  const double critical_ratio = c.last_wire_ratio();
  EXPECT_LT(stable_ratio, 0.05);
  EXPECT_GT(critical_ratio, 10.0 * stable_ratio);
}

TEST(Compression, AdaptiveIgnoredForNonTopK) {
  CompressionConfig cfg{CompressionKind::kQuant8, 0.01, false};
  cfg.adaptive = true;
  GradientCompressor c(cfg);
  std::vector<float> g = ramp(100);
  c.compress(g, 99.0);
  EXPECT_NEAR(c.last_wire_ratio(), 0.25, 0.05);
}

TEST(CompressionTraining, AdaptiveBeatsFixedAggressiveTopK) {
  // Accordion's claim: protecting the critical regime preserves accuracy at
  // nearly the aggressive scheme's byte budget.
  TrainJob fixed = small_class_job(StrategyKind::kBsp, 250);
  fixed.compression = {CompressionKind::kTopK, 0.002, true};
  TrainJob adaptive = fixed;
  adaptive.compression.adaptive = true;
  adaptive.compression.critical_delta = 0.02;
  adaptive.compression.topk_fraction_critical = 0.25;
  const TrainResult rf = run_training(fixed);
  const TrainResult ra = run_training(adaptive);
  EXPECT_GE(ra.best_top1, rf.best_top1 - 0.05);
  // The adaptive scheme ships more bytes than the fixed aggressive one but
  // far fewer than dense BSP.
  EXPECT_GE(ra.comm_bytes, rf.comm_bytes);
}

TEST(Compression, Validation) {
  EXPECT_THROW(GradientCompressor({CompressionKind::kTopK, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(GradientCompressor({CompressionKind::kTopK, 1.5}),
               std::invalid_argument);
}

TEST(Compression, KindNames) {
  EXPECT_STREQ(compression_kind_name(CompressionKind::kNone), "none");
  EXPECT_STREQ(compression_kind_name(CompressionKind::kTopK), "topk");
  EXPECT_STREQ(compression_kind_name(CompressionKind::kSignSgd), "signsgd");
  EXPECT_STREQ(compression_kind_name(CompressionKind::kQuant8), "quant8");
}

TEST(Compression, KindNamesRoundTripThroughParse) {
  for (CompressionKind kind :
       {CompressionKind::kNone, CompressionKind::kTopK,
        CompressionKind::kSignSgd, CompressionKind::kQuant8})
    EXPECT_EQ(compression_kind_from_name(compression_kind_name(kind)), kind);
  EXPECT_EQ(compression_kind_from_name("dgc"), std::nullopt);
  EXPECT_EQ(compression_kind_from_name(""), std::nullopt);
  EXPECT_EQ(compression_kind_names(), "none, topk, signsgd, quant8");
}

TEST(Compression, WireBytesEdgeCases) {
  // An empty gradient has nothing on the wire, whatever the codec.
  for (CompressionKind kind :
       {CompressionKind::kNone, CompressionKind::kTopK,
        CompressionKind::kSignSgd, CompressionKind::kQuant8})
    EXPECT_EQ(GradientCompressor::wire_bytes({kind, 0.01}, 0), 0u)
        << compression_kind_name(kind);

  // Top-k clamps k to at least one kept value: a gradient smaller than 1/k
  // values still transmits something instead of rounding to nothing.
  const CompressionConfig one_pct{CompressionKind::kTopK, 0.01};
  EXPECT_EQ(GradientCompressor::wire_bytes(one_pct, 3), 8u);
  EXPECT_EQ(GradientCompressor::wire_bytes(one_pct, 1), 8u);
  // ... and to at most every value.
  const CompressionConfig all{CompressionKind::kTopK, 1.0};
  EXPECT_EQ(GradientCompressor::wire_bytes(all, 5), 40u);

  // signSGD rounds the bit-vector *up* to whole bytes (7 values still need
  // one byte, plus the shared scale float).
  const CompressionConfig sign{CompressionKind::kSignSgd, 0.01};
  EXPECT_EQ(GradientCompressor::wire_bytes(sign, 7), 1u + sizeof(float));
  EXPECT_EQ(GradientCompressor::wire_bytes(sign, 8), 1u + sizeof(float));
  EXPECT_EQ(GradientCompressor::wire_bytes(sign, 9), 2u + sizeof(float));
}

TEST(Compression, LastWireRatioDefinedBeforeFirstCompress) {
  GradientCompressor c({CompressionKind::kTopK, 0.01, true});
  EXPECT_DOUBLE_EQ(c.last_wire_ratio(), 1.0);
}

TEST(Compression, EmptyGradientIsANoOp) {
  GradientCompressor c({CompressionKind::kTopK, 0.01, true});
  std::vector<float> empty;
  EXPECT_EQ(c.compress(empty), 0u);
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(c.last_wire_ratio(), 1.0);

  // A tiny gradient survives the k >= 1 clamp end to end.
  std::vector<float> tiny{0.5f, -0.25f};
  GradientCompressor t({CompressionKind::kTopK, 0.01, false});
  t.compress(tiny);
  EXPECT_EQ(tiny[0], 0.5f) << "the single kept value must be the largest";
  EXPECT_EQ(tiny[1], 0.0f);
}

TEST(CompressionTraining, BspWithTopKStillLearns) {
  TrainJob plain = small_class_job(StrategyKind::kBsp, 250);
  TrainJob topk = plain;
  topk.compression = {CompressionKind::kTopK, 0.05, true};
  const TrainResult rp = run_training(plain);
  const TrainResult rt = run_training(topk);
  EXPECT_GT(rt.best_top1, 0.3);  // chance is 0.1
  EXPECT_GT(rt.best_top1, rp.best_top1 - 0.15);
}

TEST(CompressionTraining, TopKShrinksCommBytes) {
  TrainJob plain = small_class_job(StrategyKind::kBsp, 60);
  TrainJob topk = plain;
  topk.compression = {CompressionKind::kTopK, 0.01, true};
  const TrainResult rp = run_training(plain);
  const TrainResult rt = run_training(topk);
  EXPECT_LT(rt.comm_bytes, 0.05 * rp.comm_bytes);
  EXPECT_LT(rt.sim_time_s, rp.sim_time_s);
}

TEST(CompressionTraining, SignSgdLearnsWithErrorFeedback) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 250);
  job.compression = {CompressionKind::kSignSgd, 0.01, true};
  const TrainResult r = run_training(job);
  EXPECT_GT(r.best_top1, 0.3);
}

TEST(CompressionTraining, CompressionOnPaPayloadsIsRejected) {
  // PA ships dense parameters, so a codec would be silently ignored;
  // validate() now rejects the combo outright (see config_test for the
  // full rejection matrix and message contract).
  TrainJob pa = small_class_job(StrategyKind::kSelSync, 60);
  pa.selsync.delta = 0.0;
  pa.selsync.aggregation = AggregationMode::kParameters;
  pa.compression = {CompressionKind::kTopK, 0.01, true};
  EXPECT_THROW(run_training(pa), std::invalid_argument);
}

TEST(QuorumRule, AnyWorkerDefaultSyncsMost) {
  // Higher quorum -> fewer synchronizations (monotone in the vote demand).
  uint64_t prev_syncs = std::numeric_limits<uint64_t>::max();
  for (double quorum : {0.0, 0.5, 1.0}) {
    TrainJob job = small_class_job(StrategyKind::kSelSync, 120);
    job.selsync.delta = 0.02;
    job.selsync.sync_quorum = quorum;
    const TrainResult r = run_training(job);
    EXPECT_LE(r.sync_steps, prev_syncs) << "quorum " << quorum;
    prev_syncs = r.sync_steps;
  }
}

TEST(QuorumRule, UnanimityIsStricterThanAny) {
  TrainJob any = small_class_job(StrategyKind::kSelSync, 120);
  any.selsync.delta = 0.02;
  TrainJob all = any;
  all.selsync.sync_quorum = 1.0;
  const TrainResult ra = run_training(any);
  const TrainResult rl = run_training(all);
  EXPECT_GE(rl.lssr(), ra.lssr());
}

}  // namespace
}  // namespace selsync
