#include "core/time_model.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

StepTimeModel model_for(const PaperModelProfile& m, Topology topo,
                        size_t workers) {
  return StepTimeModel(m, device_v100(), paper_network_5gbps(), topo, workers);
}

TEST(StepTimeModel, ComputeGrowsWithBatch) {
  const auto tm = model_for(paper_resnet101(), Topology::kParameterServer, 16);
  EXPECT_GT(tm.compute_time(128), tm.compute_time(32));
}

TEST(StepTimeModel, SyncDominatesComputeForBigModels) {
  // The premise of the whole paper: t_s >> t_c for communication-heavy
  // models on a 5 Gbps network.
  const auto tm = model_for(paper_vgg11(), Topology::kParameterServer, 16);
  EXPECT_GT(tm.sync_time(), 5.0 * tm.compute_time(32));
}

TEST(StepTimeModel, FlagExchangeIsCheap) {
  const auto tm = model_for(paper_resnet101(), Topology::kParameterServer, 16);
  EXPECT_LT(tm.flag_time(), 0.01);
  EXPECT_LT(tm.flag_time() * 10, tm.sync_time());
}

TEST(StepTimeModel, RingTopologyCheaperAtScale) {
  const auto ps = model_for(paper_vgg11(), Topology::kParameterServer, 16);
  const auto ring = model_for(paper_vgg11(), Topology::kRingAllreduce, 16);
  EXPECT_LT(ring.sync_time(), ps.sync_time());
}

TEST(StepTimeModel, PayloadBytesIsParamBytes) {
  const auto tm = model_for(paper_vgg11(), Topology::kParameterServer, 16);
  EXPECT_NEAR(static_cast<double>(tm.payload_bytes()),
              paper_vgg11().param_bytes(), 1.0);
}

TEST(StepTimeModel, SspCommIsPartiallyHidden) {
  // Visible SSP comm cost must be below the blocking PS round trip.
  const auto tm = model_for(paper_alexnet(), Topology::kParameterServer, 16);
  EXPECT_LT(tm.ssp_step_comm_time(128), tm.sync_time());
}

TEST(StepTimeModel, InjectionCostTiny) {
  const auto tm = model_for(paper_resnet101(), Topology::kParameterServer, 16);
  // 132 KB of CIFAR images (paper example) is sub-millisecond.
  EXPECT_LT(tm.injection_time(132 * 1024), 1e-3);
}

}  // namespace
}  // namespace selsync
