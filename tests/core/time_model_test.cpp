#include "core/time_model.hpp"

#include <gtest/gtest.h>

#include "comm/slice_schedule.hpp"

namespace selsync {
namespace {

constexpr size_t kWorkers = 16;

StepTimeModel model_for(const PaperModelProfile& m, Topology topo,
                        size_t workers) {
  return StepTimeModel(m, device_v100(), paper_network_5gbps(), topo, workers);
}

/// The step-end barrier's transfer time on `topo`'s schedule — what the
/// retired StepTimeModel::sync_time() returned for a dense payload.
double barrier_sync_time(const StepTimeModel& tm, Topology topo) {
  return topo == Topology::kParameterServer
             ? tm.cost_model().ps_sync_time(tm.payload_bytes(), kWorkers)
             : tm.cost_model().ring_allreduce_time(tm.payload_bytes(),
                                                   kWorkers);
}

std::unique_ptr<CommBackend> shared_backend(Topology topo) {
  CommBackendConfig config;
  config.kind = BackendKind::kSharedMemory;
  config.workers = kWorkers;
  config.topology = topo;
  return make_comm_backend(config);
}

TEST(StepTimeModel, ComputeGrowsWithBatch) {
  const auto tm = model_for(paper_resnet101(), Topology::kParameterServer, 16);
  EXPECT_GT(tm.compute_time(128), tm.compute_time(32));
}

TEST(StepTimeModel, BackwardIsTwoThirdsOfCompute) {
  // The profiles charge forward + backward as 3x the forward FLOPs, so the
  // overlap window is exactly 2/3 of the step.
  const auto tm = model_for(paper_resnet101(), Topology::kParameterServer, 16);
  EXPECT_DOUBLE_EQ(tm.backward_time(32), (2.0 / 3.0) * tm.compute_time(32));
}

TEST(StepTimeModel, SyncDominatesComputeForBigModels) {
  // The premise of the whole paper: t_s >> t_c for communication-heavy
  // models on a 5 Gbps network.
  const auto tm = model_for(paper_vgg11(), Topology::kParameterServer, 16);
  EXPECT_GT(barrier_sync_time(tm, Topology::kParameterServer),
            5.0 * tm.compute_time(32));
}

TEST(StepTimeModel, FlagExchangeIsCheap) {
  const auto tm = model_for(paper_resnet101(), Topology::kParameterServer, 16);
  EXPECT_LT(tm.flag_time(), 0.01);
  EXPECT_LT(tm.flag_time() * 10,
            barrier_sync_time(tm, Topology::kParameterServer));
}

TEST(StepTimeModel, RingTopologyCheaperAtScale) {
  const auto tm = model_for(paper_vgg11(), Topology::kParameterServer, 16);
  EXPECT_LT(barrier_sync_time(tm, Topology::kRingAllreduce),
            barrier_sync_time(tm, Topology::kParameterServer));
}

TEST(StepTimeModel, PayloadBytesIsParamBytes) {
  const auto tm = model_for(paper_vgg11(), Topology::kParameterServer, 16);
  EXPECT_NEAR(static_cast<double>(tm.payload_bytes()),
              paper_vgg11().param_bytes(), 1.0);
}

TEST(StepTimeModel, SspCommIsPartiallyHidden) {
  // Visible SSP comm cost must be below the blocking PS round trip.
  const auto tm = model_for(paper_alexnet(), Topology::kParameterServer, 16);
  EXPECT_LT(tm.ssp_step_comm_time(128),
            barrier_sync_time(tm, Topology::kParameterServer));
}

TEST(StepTimeModel, InjectionCostTiny) {
  const auto tm = model_for(paper_resnet101(), Topology::kParameterServer, 16);
  // 132 KB of CIFAR images (paper example) is sub-millisecond.
  EXPECT_LT(tm.injection_time(132 * 1024), 1e-3);
}

// ---------------------------------------------------------------------------
// Sliced / overlapped pricing (DESIGN.md §12)
// ---------------------------------------------------------------------------

TEST(StepTimeModel, SingleSliceNoOverlapDelegatesToLegacyPricing) {
  const auto tm = model_for(paper_resnet101(), Topology::kParameterServer,
                            kWorkers);
  const auto backend = shared_backend(Topology::kParameterServer);
  SyncCost legacy;
  legacy.fault_penalty_s = 0.25;
  tm.price_sync(legacy, *backend);

  SyncCost sliced;
  sliced.fault_penalty_s = 0.25;
  tm.price_sync(sliced, *backend, SliceSchedule::single(1000),
                /*overlap=*/false, tm.backward_time(32));
  EXPECT_EQ(legacy.transfer_s, sliced.transfer_s);
  EXPECT_EQ(legacy.wire_bytes, sliced.wire_bytes);
  EXPECT_EQ(legacy.fault_penalty_s, sliced.fault_penalty_s);
  EXPECT_EQ(sliced.slices, 0u);
  EXPECT_EQ(sliced.overlap_saved_s, 0.0);
  EXPECT_EQ(legacy.round_time(), sliced.round_time());
}

TEST(StepTimeModel, SlicingCostsPerRoundOverheadWithoutOverlap) {
  // Each slice pays the per-round latency/overhead terms, so a sliced but
  // non-overlapped round is strictly more expensive than the barrier.
  const auto tm = model_for(paper_resnet101(), Topology::kParameterServer,
                            kWorkers);
  const auto backend = shared_backend(Topology::kParameterServer);
  SyncCost barrier;
  tm.price_sync(barrier, *backend);
  const auto sched = SliceSchedule::build(std::vector<size_t>(8, 1000), 4,
                                          SliceScheduleKind::kOutputFirst);
  SyncCost sliced;
  tm.price_sync(sliced, *backend, sched, /*overlap=*/false,
                tm.backward_time(32));
  EXPECT_EQ(sliced.slices, 4u);
  EXPECT_GT(sliced.transfer_s, barrier.transfer_s);
  EXPECT_EQ(sliced.overlap_saved_s, 0.0);
  EXPECT_GT(sliced.max_slice_wire_bytes, 0u);
  EXPECT_LT(sliced.max_slice_wire_bytes, sliced.wire_bytes);
}

TEST(StepTimeModel, OverlapHidesTransferBehindBackward) {
  const auto tm = model_for(paper_resnet101(), Topology::kParameterServer,
                            kWorkers);
  const auto backend = shared_backend(Topology::kParameterServer);
  const auto sched = SliceSchedule::build(std::vector<size_t>(8, 1000), 4,
                                          SliceScheduleKind::kOutputFirst);
  const double backward = tm.backward_time(32);
  SyncCost plain, overlapped;
  tm.price_sync(plain, *backend, sched, /*overlap=*/false, backward);
  tm.price_sync(overlapped, *backend, sched, /*overlap=*/true, backward);
  // Output-first slices start flying before backward ends: something is
  // hidden, the saving never exceeds the transfer itself, and the visible
  // round time shrinks by exactly the saving.
  EXPECT_GT(overlapped.overlap_saved_s, 0.0);
  EXPECT_LE(overlapped.overlap_saved_s, overlapped.transfer_s);
  EXPECT_EQ(overlapped.transfer_s, plain.transfer_s);
  EXPECT_LT(overlapped.round_time(), plain.round_time());
}

TEST(StepTimeModel, InputFirstOrderSavesNothing) {
  // The anti-priority baseline: the first emitted slice is only ready when
  // backward finishes, so every later slice queues behind it and nothing
  // can be hidden.
  const auto tm = model_for(paper_resnet101(), Topology::kParameterServer,
                            kWorkers);
  const auto backend = shared_backend(Topology::kParameterServer);
  const auto out = SliceSchedule::build(std::vector<size_t>(8, 1000), 4,
                                        SliceScheduleKind::kOutputFirst);
  const auto in = SliceSchedule::build(std::vector<size_t>(8, 1000), 4,
                                       SliceScheduleKind::kInputFirst);
  const double backward = tm.backward_time(32);
  SyncCost priority, anti;
  tm.price_sync(priority, *backend, out, /*overlap=*/true, backward);
  tm.price_sync(anti, *backend, in, /*overlap=*/true, backward);
  EXPECT_NEAR(anti.overlap_saved_s, 0.0, 1e-12);
  EXPECT_GT(priority.overlap_saved_s, anti.overlap_saved_s);
}

}  // namespace
}  // namespace selsync
