#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "nn/models.hpp"

namespace selsync {
namespace {

TEST(Lssr, MatchesEqn4) {
  TrainResult r;
  r.local_steps = 75;
  r.sync_steps = 25;
  EXPECT_DOUBLE_EQ(r.lssr(), 0.75);
  EXPECT_DOUBLE_EQ(r.comm_reduction(), 4.0);
}

TEST(Lssr, EdgeCases) {
  TrainResult r;
  EXPECT_DOUBLE_EQ(r.lssr(), 0.0);  // no steps at all
  r.sync_steps = 10;
  EXPECT_DOUBLE_EQ(r.lssr(), 0.0);  // pure BSP
  r.sync_steps = 0;
  r.local_steps = 10;
  EXPECT_DOUBLE_EQ(r.lssr(), 1.0);  // pure local
  EXPECT_TRUE(std::isinf(r.comm_reduction()));
}

TEST(EvaluateDataset, CoversEverySampleExactlyOnce) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 64;
  cfg.test_samples = 50;  // not a multiple of the eval batch
  const auto data = make_synthetic_classification(cfg);
  ClassifierConfig mc;
  mc.input_dim = cfg.feature_dim;
  mc.classes = 10;
  mc.hidden = 8;
  mc.resnet_blocks = 1;
  auto model = make_resnet_mlp(mc, 1);
  const EvalStats stats = evaluate_dataset(*model, *data.test, 16);
  EXPECT_EQ(stats.examples, 50u);
  EXPECT_EQ(stats.batches, 4u);  // 16+16+16+2
  EXPECT_LE(stats.top1, stats.examples);
}

TEST(EvaluateDataset, DeterministicForSameModel) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 64;
  cfg.test_samples = 32;
  const auto data = make_synthetic_classification(cfg);
  ClassifierConfig mc;
  mc.input_dim = cfg.feature_dim;
  mc.classes = 10;
  mc.hidden = 8;
  mc.resnet_blocks = 1;
  auto model = make_resnet_mlp(mc, 1);
  const EvalStats a = evaluate_dataset(*model, *data.test, 8);
  const EvalStats b = evaluate_dataset(*model, *data.test, 8);
  EXPECT_DOUBLE_EQ(a.loss_sum, b.loss_sum);
  EXPECT_EQ(a.top1, b.top1);
}

TEST(EvaluateDataset, BatchSizeDoesNotChangeAccuracyCounts) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 64;
  cfg.test_samples = 40;
  const auto data = make_synthetic_classification(cfg);
  ClassifierConfig mc;
  mc.input_dim = cfg.feature_dim;
  mc.classes = 10;
  mc.hidden = 8;
  mc.resnet_blocks = 1;
  auto model = make_resnet_mlp(mc, 1);
  const EvalStats a = evaluate_dataset(*model, *data.test, 7);
  const EvalStats b = evaluate_dataset(*model, *data.test, 40);
  EXPECT_EQ(a.top1, b.top1);
  EXPECT_EQ(a.top5, b.top5);
}

}  // namespace
}  // namespace selsync
