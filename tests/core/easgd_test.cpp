// EASGD strategy (paper reference [37]): elastic averaging around a center
// variable.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

TEST(Easgd, RunsAndCountsElasticSteps) {
  TrainJob job = small_class_job(StrategyKind::kEasgd, 40);
  job.easgd = {0.5, 0.5, 4};
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 40u);
  EXPECT_EQ(r.sync_steps, 10u);  // every tau=4 steps
  EXPECT_EQ(r.local_steps, 30u);
  EXPECT_NEAR(r.lssr(), 0.75, 1e-9);
}

TEST(Easgd, LearnsAboveChance) {
  TrainJob job = small_class_job(StrategyKind::kEasgd, 400);
  job.easgd = {0.5, 0.5, 4};
  const TrainResult r = run_training(job);
  EXPECT_GT(r.best_top1, 0.3);  // chance is 0.1
}

TEST(Easgd, Deterministic) {
  TrainJob job = small_class_job(StrategyKind::kEasgd, 60);
  const TrainResult a = run_training(job);
  const TrainResult b = run_training(job);
  EXPECT_DOUBLE_EQ(a.final_eval.loss, b.final_eval.loss);
}

TEST(Easgd, TauControlsCommunicationFrequency) {
  TrainJob frequent = small_class_job(StrategyKind::kEasgd, 60);
  frequent.easgd.tau = 2;
  TrainJob rare = small_class_job(StrategyKind::kEasgd, 60);
  rare.easgd.tau = 10;
  const TrainResult rf = run_training(frequent);
  const TrainResult rr = run_training(rare);
  EXPECT_GT(rf.sync_steps, rr.sync_steps);
  EXPECT_GT(rf.comm_bytes, rr.comm_bytes);
  EXPECT_GT(rf.sim_time_s, rr.sim_time_s);
}

TEST(Easgd, ElasticPullKeepsReplicasNearCenter) {
  // Compared to pure local SGD, the elastic force must keep worker 0's
  // model from drifting as far from the common start (proxy: the final
  // evaluation differs between the two, and EASGD generalizes at least as
  // well on IID shards).
  TrainJob easgd = small_class_job(StrategyKind::kEasgd, 200);
  easgd.easgd = {0.5, 0.5, 4};
  TrainJob local = small_class_job(StrategyKind::kLocalSgd, 200);
  const TrainResult re = run_training(easgd);
  const TrainResult rl = run_training(local);
  EXPECT_NE(re.final_eval.loss, rl.final_eval.loss);
}

TEST(Easgd, ValidatesConfig) {
  TrainJob job = small_class_job(StrategyKind::kEasgd, 10);
  job.easgd.alpha = 0.0;
  EXPECT_THROW(run_training(job), std::invalid_argument);
  job = small_class_job(StrategyKind::kEasgd, 10);
  job.easgd.tau = 0;
  EXPECT_THROW(run_training(job), std::invalid_argument);
  job = small_class_job(StrategyKind::kEasgd, 10);
  job.easgd.beta = 1.5;
  EXPECT_THROW(run_training(job), std::invalid_argument);
}

}  // namespace
}  // namespace selsync
