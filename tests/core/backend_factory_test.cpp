// The backend factory is the single place a TrainJob becomes a CommBackend:
// validation and construction live together so TrainJob::validate() and the
// trainer cannot drift apart. These tests pin the validation surface, the
// construction rules, and the end-to-end contract that a sharded central
// store trains bit-identically to the monolithic one.
#include "core/backend_factory.hpp"

#include <gtest/gtest.h>

#include "comm/parameter_server.hpp"
#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

TEST(ValidateBackendChoice, RejectsZeroShards) {
  TrainJob job = small_class_job(StrategyKind::kBsp);
  job.ps_shards = 0;
  EXPECT_THROW(validate_backend_choice(job), std::invalid_argument);
  EXPECT_THROW(job.validate(), std::invalid_argument)
      << "TrainJob::validate must route through the same check";
}

TEST(ValidateBackendChoice, RejectsShardsWithoutACentralStore) {
  TrainJob job = small_class_job(StrategyKind::kBsp);
  job.ps_shards = 2;  // default backend is shared: no central store
  EXPECT_THROW(validate_backend_choice(job), std::invalid_argument);
  job.backend = BackendKind::kRing;
  EXPECT_THROW(validate_backend_choice(job), std::invalid_argument);
  job.backend = BackendKind::kParameterServer;
  EXPECT_NO_THROW(validate_backend_choice(job));
  // SSP always syncs through the PS tier, whatever the transport knob says.
  TrainJob ssp = small_class_job(StrategyKind::kSsp);
  ssp.ps_shards = 2;
  EXPECT_NO_THROW(validate_backend_choice(ssp));
}

TEST(ValidateBackendChoice, KeepsTheCodecPayloadRule) {
  TrainJob job = small_class_job(StrategyKind::kSelSync);
  job.selsync.aggregation = AggregationMode::kParameters;
  job.compression.kind = CompressionKind::kTopK;
  EXPECT_THROW(validate_backend_choice(job), std::invalid_argument)
      << "codec on a parameter payload must still be rejected";
  job.selsync.aggregation = AggregationMode::kGradients;
  EXPECT_NO_THROW(validate_backend_choice(job));
}

TEST(MakeBackend, BuildsTheJobsBackendAndSeedsTheStore) {
  TrainJob job = small_class_job(StrategyKind::kBsp);
  job.backend = BackendKind::kParameterServer;
  job.ps_shards = 2;
  auto backend = make_backend(job, nullptr);
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->kind(), BackendKind::kParameterServer);
  ASSERT_NE(backend->central_store(), nullptr);
  EXPECT_EQ(backend->central_store()->shards(), 2u);
  EXPECT_EQ(backend->central_store()->dim(),
            job.model_factory(job.seed)->get_flat_params().size())
      << "store must be seeded from the job's model";
  EXPECT_EQ(backend->central_store()->workers(), job.workers);

  job.ps_shards = 0;
  EXPECT_THROW(make_backend(job, nullptr), std::invalid_argument)
      << "construction revalidates; callers cannot skip the checks";
}

TEST(MakeBackend, SspAlwaysGetsTheCentralStoreTier) {
  // One entry point for every strategy: the SSP branch lives inside
  // make_backend, not a parallel factory callers could miss.
  TrainJob job = small_class_job(StrategyKind::kSsp);
  job.backend = BackendKind::kSharedMemory;  // backend knob ignored by SSP
  job.ps_shards = 3;
  auto backend = make_backend(job, nullptr);
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->kind(), BackendKind::kParameterServer);
  ASSERT_NE(backend->central_store(), nullptr);
  EXPECT_EQ(backend->central_store()->shards(), 3u);
}

TEST(ValidateBackendChoice, RejectsTcpTransportUnderTheDesEngine) {
  TrainJob job = small_class_job(StrategyKind::kBsp);
  job.transport = TransportKind::kTcp;
  job.engine = EngineKind::kDes;
  EXPECT_THROW(validate_backend_choice(job), std::invalid_argument)
      << "blocking sockets would stall cooperative fibers";
  job.engine = EngineKind::kThreads;
  EXPECT_NO_THROW(validate_backend_choice(job));
}

TEST(ShardedTraining, BspOnPsIsBitIdenticalAcrossShardCounts) {
  // End-to-end acceptance: the sharded tier must not change training by a
  // single bit. BSP on the ps backend, K=1 vs K=2, same seed.
  auto run_with_shards = [](size_t shards) {
    TrainJob job = small_class_job(StrategyKind::kBsp, 40);
    job.backend = BackendKind::kParameterServer;
    job.ps_shards = shards;
    job.eval_interval = 20;
    return run_training(job);
  };
  const TrainResult one = run_with_shards(1);
  const TrainResult two = run_with_shards(2);

  EXPECT_EQ(one.iterations, two.iterations);
  EXPECT_EQ(one.best_top1, two.best_top1);
  ASSERT_EQ(one.eval_history.size(), two.eval_history.size());
  for (size_t i = 0; i < one.eval_history.size(); ++i) {
    EXPECT_EQ(one.eval_history[i].loss, two.eval_history[i].loss)
        << "eval " << i;
    EXPECT_EQ(one.eval_history[i].top1, two.eval_history[i].top1)
        << "eval " << i;
  }
}

TEST(ShardedTraining, SspTrainsThroughShardedStore) {
  TrainJob job = small_class_job(StrategyKind::kSsp, 60);
  job.ps_shards = 2;
  job.ssp.staleness = 3;
  const TrainResult result = run_training(job);
  EXPECT_EQ(result.iterations, 60u);
  EXPECT_FALSE(result.diverged);
}

}  // namespace
}  // namespace selsync
