#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/models.hpp"
#include "optim/optimizer.hpp"

namespace selsync {
namespace {

std::unique_ptr<Model> tiny_model(uint64_t seed = 1) {
  ClassifierConfig cfg;
  cfg.input_dim = 8;
  cfg.classes = 3;
  cfg.hidden = 8;
  cfg.resnet_blocks = 1;
  return make_resnet_mlp(cfg, seed);
}

Batch tiny_batch() {
  Rng rng(9);
  Batch b;
  b.x = Tensor::randn({4, 8}, rng);
  b.targets = {0, 1, 2, 0};
  return b;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/selsync_ckpt_test.bin";
};

TEST_F(CheckpointTest, ParamsRoundTrip) {
  auto a = tiny_model(1);
  a->train_step(tiny_batch());
  a->apply_sgd(0.1f);
  save_checkpoint(path_, *a, nullptr, 42);

  auto b = tiny_model(2);  // different init
  ASSERT_NE(a->get_flat_params(), b->get_flat_params());
  const CheckpointInfo info = load_checkpoint(path_, *b, nullptr);
  EXPECT_EQ(info.iteration, 42u);
  EXPECT_EQ(info.param_count, a->param_count());
  EXPECT_EQ(a->get_flat_params(), b->get_flat_params());
}

TEST_F(CheckpointTest, OptimizerStateRoundTripKeepsTrajectory) {
  // Train 3 steps, checkpoint, train 2 more; a resumed replica must land on
  // bit-identical parameters (momentum restored exactly).
  const Batch batch = tiny_batch();
  auto reference = tiny_model(1);
  Sgd ref_opt(std::make_shared<ConstantLr>(0.1), {.momentum = 0.9});
  for (int i = 0; i < 3; ++i) {
    reference->train_step(batch);
    ref_opt.step(reference->params(), i, 0.0);
  }
  save_checkpoint(path_, *reference, &ref_opt, 3);
  for (int i = 3; i < 5; ++i) {
    reference->train_step(batch);
    ref_opt.step(reference->params(), i, 0.0);
  }

  auto resumed = tiny_model(7);
  Sgd res_opt(std::make_shared<ConstantLr>(0.1), {.momentum = 0.9});
  const CheckpointInfo info = load_checkpoint(path_, *resumed, &res_opt);
  for (uint64_t i = info.iteration; i < 5; ++i) {
    resumed->train_step(batch);
    res_opt.step(resumed->params(), i, 0.0);
  }
  EXPECT_EQ(reference->get_flat_params(), resumed->get_flat_params());
}

TEST_F(CheckpointTest, AdamStateRoundTrip) {
  const Batch batch = tiny_batch();
  auto reference = tiny_model(1);
  Adam ref_opt(std::make_shared<ConstantLr>(0.01));
  for (int i = 0; i < 4; ++i) {
    reference->train_step(batch);
    ref_opt.step(reference->params(), i, 0.0);
  }
  save_checkpoint(path_, *reference, &ref_opt, 4);
  reference->train_step(batch);
  ref_opt.step(reference->params(), 4, 0.0);

  auto resumed = tiny_model(3);
  Adam res_opt(std::make_shared<ConstantLr>(0.01));
  load_checkpoint(path_, *resumed, &res_opt);
  resumed->train_step(batch);
  res_opt.step(resumed->params(), 4, 0.0);
  EXPECT_EQ(reference->get_flat_params(), resumed->get_flat_params());
}

TEST_F(CheckpointTest, PeekReadsHeaderOnly) {
  auto m = tiny_model(1);
  save_checkpoint(path_, *m, nullptr, 7);
  const CheckpointInfo info = peek_checkpoint(path_);
  EXPECT_EQ(info.iteration, 7u);
  EXPECT_EQ(info.param_count, m->param_count());
}

TEST_F(CheckpointTest, RejectsParamCountMismatch) {
  auto small = tiny_model(1);
  save_checkpoint(path_, *small, nullptr, 0);
  ClassifierConfig big_cfg;
  big_cfg.input_dim = 16;
  big_cfg.classes = 3;
  big_cfg.hidden = 16;
  big_cfg.resnet_blocks = 2;
  auto big = make_resnet_mlp(big_cfg, 1);
  EXPECT_THROW(load_checkpoint(path_, *big, nullptr), std::runtime_error);
}

TEST_F(CheckpointTest, RejectsGarbageFile) {
  std::ofstream(path_) << "this is not a checkpoint";
  auto m = tiny_model(1);
  EXPECT_THROW(load_checkpoint(path_, *m, nullptr), std::runtime_error);
  EXPECT_THROW(peek_checkpoint(path_), std::runtime_error);
}

TEST_F(CheckpointTest, RejectsMissingFile) {
  auto m = tiny_model(1);
  EXPECT_THROW(load_checkpoint("/nonexistent/ckpt.bin", *m, nullptr),
               std::runtime_error);
}

TEST_F(CheckpointTest, RejectsTruncatedFile) {
  auto m = tiny_model(1);
  save_checkpoint(path_, *m, nullptr, 1);
  // Truncate mid-parameters.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  EXPECT_THROW(load_checkpoint(path_, *m, nullptr), std::runtime_error);
}

}  // namespace
}  // namespace selsync
