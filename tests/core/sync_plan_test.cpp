// SyncPlan surface tests (DESIGN.md §14): the --switch-to spec parser,
// phase-job derivation, parse-time plan validation (an invalid *later*
// phase must fail with its phase index in the message), and the run-record
// gate — a planless job serializes without any sync_plan key, byte for
// byte as before the feature existed.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/run_record.hpp"
#include "core/sync_plan.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

SyncPhase switch_at(uint64_t iteration) {
  SyncPhase phase;
  phase.trigger.kind = SwitchTriggerKind::kAtIteration;
  phase.trigger.at_iteration = iteration;
  return phase;
}

void expect_invalid(const TrainJob& job, const std::string& needle) {
  try {
    job.validate();
    FAIL() << "expected std::invalid_argument containing '" << needle << "'";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "actual message: " << error.what();
  }
}

template <typename Fn>
std::string invalid_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return {};
}

// ---- parse_sync_phase_spec ------------------------------------------------

TEST(SyncPhaseSpec, BareStrategyName) {
  const SyncPhase phase = parse_sync_phase_spec("selsync");
  ASSERT_TRUE(phase.strategy.has_value());
  EXPECT_TRUE(*phase.strategy == StrategyKind::kSelSync);
  EXPECT_FALSE(phase.backend.has_value());
  EXPECT_FALSE(phase.compression.has_value());
  EXPECT_FALSE(phase.slices.has_value());
  EXPECT_FALSE(phase.ps_shards.has_value());
}

TEST(SyncPhaseSpec, KeyValueOverrides) {
  const SyncPhase phase = parse_sync_phase_spec(
      "strategy=bsp,backend=ring,codec=topk,slices=4,ps-shards=2");
  ASSERT_TRUE(phase.strategy.has_value());
  EXPECT_TRUE(*phase.strategy == StrategyKind::kBsp);
  ASSERT_TRUE(phase.backend.has_value());
  EXPECT_TRUE(*phase.backend == BackendKind::kRing);
  ASSERT_TRUE(phase.compression.has_value());
  EXPECT_TRUE(phase.compression->kind == CompressionKind::kTopK);
  EXPECT_EQ(phase.slices.value_or(0), 4u);
  EXPECT_EQ(phase.ps_shards.value_or(0), 2u);
}

TEST(SyncPhaseSpec, PartialOverridesLeaveTheRestUnset) {
  const SyncPhase phase = parse_sync_phase_spec("backend=tree");
  EXPECT_FALSE(phase.strategy.has_value());
  ASSERT_TRUE(phase.backend.has_value());
  EXPECT_TRUE(*phase.backend == BackendKind::kTree);
}

TEST(SyncPhaseSpec, RejectsBadSpecsWithPointedMessages) {
  EXPECT_NE(invalid_message([] { parse_sync_phase_spec(""); })
                .find("empty phase spec"),
            std::string::npos);
  const std::string unknown =
      invalid_message([] { parse_sync_phase_spec("selsnyc"); });
  EXPECT_NE(unknown.find("unknown strategy 'selsnyc'"), std::string::npos);
  EXPECT_NE(unknown.find("selsync"), std::string::npos);  // the accepted set
  EXPECT_NE(invalid_message([] { parse_sync_phase_spec("topology=ring"); })
                .find("unknown override key 'topology'"),
            std::string::npos);
  EXPECT_NE(invalid_message([] { parse_sync_phase_spec("backend=ring,"); })
                .find("empty override"),
            std::string::npos);
  EXPECT_NE(invalid_message([] { parse_sync_phase_spec("slices=four"); })
                .find("not a number"),
            std::string::npos);
  EXPECT_NE(invalid_message([] { parse_sync_phase_spec("ring,tree"); })
                .find("not key=value"),
            std::string::npos);
}

// ---- derive_phase_job -----------------------------------------------------

TEST(DerivePhaseJob, PhaseZeroIsTheBaseJobWithoutThePlan) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  job.sync_plan.phases.push_back(switch_at(20));
  const TrainJob derived = derive_phase_job(job, 0);
  EXPECT_TRUE(derived.sync_plan.empty());
  EXPECT_TRUE(derived.strategy == StrategyKind::kBsp);
}

TEST(DerivePhaseJob, AppliesOverridesOnTopOfTheBase) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  SyncPhase phase = switch_at(20);
  phase.strategy = StrategyKind::kSelSync;
  phase.backend = BackendKind::kRing;
  phase.slices = 4;
  job.sync_plan.phases.push_back(phase);
  const TrainJob derived = derive_phase_job(job, 1);
  EXPECT_TRUE(derived.sync_plan.empty());
  EXPECT_TRUE(derived.strategy == StrategyKind::kSelSync);
  EXPECT_TRUE(derived.backend == BackendKind::kRing);
  EXPECT_EQ(derived.slices, 4u);
  // Untouched knobs keep the base values.
  EXPECT_EQ(derived.workers, job.workers);
  EXPECT_EQ(derived.max_iterations, job.max_iterations);
}

TEST(DerivePhaseJob, IndexPastThePlanThrows) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  job.sync_plan.phases.push_back(switch_at(20));
  EXPECT_THROW(derive_phase_job(job, 2), std::out_of_range);
}

// ---- validate_sync_plan (via TrainJob::validate) --------------------------

TEST(SyncPlanValidate, AcceptsAWellFormedTwoPointPlan) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  SyncPhase mid = switch_at(10);
  mid.strategy = StrategyKind::kSelSync;
  job.sync_plan.phases.push_back(mid);
  job.sync_plan.phases.push_back(switch_at(20));
  EXPECT_NO_THROW(job.validate());
}

TEST(SyncPlanValidate, BoundariesMustStrictlyIncrease) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  job.sync_plan.phases.push_back(switch_at(20));
  job.sync_plan.phases.push_back(switch_at(20));
  expect_invalid(job,
                 "sync_plan phase 2: at-iteration trigger must be strictly "
                 "after the previous boundary (iteration 20)");
}

TEST(SyncPlanValidate, BoundaryPastTheBudgetNeverRuns) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  job.sync_plan.phases.push_back(switch_at(40));
  expect_invalid(job,
                 "sync_plan phase 1: at-iteration trigger at or past "
                 "max_iterations (40)");
}

TEST(SyncPlanValidate, GradChangeMustBeFinalAndPositive) {
  TrainJob job = small_class_job(StrategyKind::kSelSync, 40);
  SyncPhase calm = switch_at(0);
  calm.trigger.kind = SwitchTriggerKind::kOnGradChange;
  calm.trigger.gradchange_below = 0.1;
  calm.trigger.min_iteration = 5;
  job.sync_plan.phases.push_back(calm);
  job.sync_plan.phases.push_back(switch_at(30));
  expect_invalid(job,
                 "sync_plan phase 2: an on-gradchange switch point must be "
                 "the final one");

  job.sync_plan.phases.clear();
  calm.trigger.gradchange_below = 0.0;
  job.sync_plan.phases.push_back(calm);
  expect_invalid(job, "sync_plan phase 1: on-gradchange threshold must be > 0");
}

TEST(SyncPlanValidate, GradChangeCannotEndAnSspPhase) {
  TrainJob job = small_class_job(StrategyKind::kSsp, 40);
  job.backend = BackendKind::kParameterServer;
  job.ssp.staleness = 3;
  SyncPhase calm;
  calm.trigger.kind = SwitchTriggerKind::kOnGradChange;
  calm.trigger.gradchange_below = 0.1;
  calm.strategy = StrategyKind::kBsp;
  job.sync_plan.phases.push_back(calm);
  expect_invalid(job, "use an at-iteration trigger to leave an SSP phase");
}

TEST(SyncPlanValidate, InvalidLaterPhaseFailsAtParseTimeWithItsIndex) {
  // Phase 2's override is illegal on its own (ps_shards on a non-PS
  // backend); the plan must reject it now, with the phase index prefixed,
  // not blow up mid-run after phase 1 trained.
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  SyncPhase fine = switch_at(10);
  SyncPhase broken = switch_at(20);
  broken.ps_shards = 4;
  job.sync_plan.phases.push_back(fine);
  job.sync_plan.phases.push_back(broken);
  expect_invalid(job, "sync_plan phase 2: ");
}

TEST(SyncPlanValidate, CrashPlansCannotCrossLoopFamilies) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  job.faults.crashes.push_back({2, 10, 5, true});
  SyncPhase to_ssp = switch_at(20);
  to_ssp.strategy = StrategyKind::kSsp;
  job.sync_plan.phases.push_back(to_ssp);
  expect_invalid(job,
                 "a crash plan cannot cross a switch between the synchronous "
                 "and SSP loop families");
}

// ---- run-record gate ------------------------------------------------------

TEST(SyncPlanRecord, PlanlessJobsSerializeNoSyncPlanKey) {
  const TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  EXPECT_EQ(job_to_json(job).dump().find("sync_plan"), std::string::npos);
}

TEST(SyncPlanRecord, PlanSerializesTriggersAndOverridesByName) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  SyncPhase mid = switch_at(10);
  mid.strategy = StrategyKind::kSelSync;
  mid.backend = BackendKind::kRing;
  SyncPhase calm;
  calm.trigger.kind = SwitchTriggerKind::kOnGradChange;
  calm.trigger.gradchange_below = 0.25;
  calm.trigger.min_iteration = 15;
  job.sync_plan.phases.push_back(mid);
  job.sync_plan.phases.push_back(calm);

  const std::string json = job_to_json(job).dump();
  EXPECT_NE(json.find("\"sync_plan\""), std::string::npos);
  // Pinned serialized spellings: records written today must parse forever.
  EXPECT_NE(json.find("\"AtIteration\""), std::string::npos);
  EXPECT_NE(json.find("\"OnGradChange\""), std::string::npos);
  EXPECT_NE(json.find("\"at_iteration\""), std::string::npos);
  EXPECT_NE(json.find("\"gradchange_below\""), std::string::npos);
  EXPECT_NE(json.find("\"min_iteration\""), std::string::npos);
  EXPECT_NE(json.find("\"SelSync\""), std::string::npos);
  EXPECT_NE(json.find("\"ring\""), std::string::npos);
}

}  // namespace
}  // namespace selsync
