// Shared builders for small, fast training jobs used across core and
// integration tests.
#pragma once

#include <memory>

#include "core/config.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "optim/optimizer.hpp"

namespace selsync::testing {

inline SyntheticClassData& shared_class_data() {
  static SyntheticClassData data = [] {
    SyntheticClassConfig cfg;
    cfg.train_samples = 1024;
    cfg.test_samples = 256;
    cfg.classes = 10;
    cfg.feature_dim = 32;
    return make_synthetic_classification(cfg);
  }();
  return data;
}

inline SyntheticTextData& shared_text_data() {
  static SyntheticTextData data = [] {
    SyntheticTextConfig cfg;
    cfg.train_tokens = 8000;
    cfg.test_tokens = 1600;
    cfg.vocab = 32;
    cfg.seq_len = 8;
    return make_synthetic_text(cfg);
  }();
  return data;
}

/// A 4-worker classification job that runs in well under a second.
inline TrainJob small_class_job(StrategyKind strategy,
                                uint64_t iterations = 120) {
  const auto& data = shared_class_data();
  TrainJob job;
  job.strategy = strategy;
  job.workers = 4;
  job.batch_size = 16;
  job.max_iterations = iterations;
  job.eval_interval = 60;
  job.train_data = data.train;
  job.test_data = data.test;
  job.partition = PartitionScheme::kSelSync;
  job.model_factory = [](uint64_t seed) {
    ClassifierConfig cfg;
    cfg.input_dim = 32;
    cfg.classes = 10;
    cfg.hidden = 24;
    cfg.resnet_blocks = 1;
    return make_resnet_mlp(cfg, seed);
  };
  job.optimizer_factory = [] {
    return std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.05),
                                 SgdOptions{.momentum = 0.9});
  };
  return job;
}

inline TrainJob small_lm_job(StrategyKind strategy, uint64_t iterations = 80) {
  const auto& data = shared_text_data();
  TrainJob job;
  job.strategy = strategy;
  job.workers = 4;
  job.batch_size = 4;  // sequences per step
  job.max_iterations = iterations;
  job.eval_interval = 40;
  job.train_data = data.train;
  job.test_data = data.test;
  job.partition = PartitionScheme::kSelSync;
  job.model_factory = [](uint64_t seed) {
    TransformerConfig cfg;
    cfg.vocab = 32;
    cfg.model_dim = 16;
    cfg.ff_dim = 32;
    cfg.num_heads = 2;
    cfg.num_layers = 1;
    cfg.seq_len = 8;
    cfg.dropout = 0.0f;
    return std::make_unique<TransformerLM>(cfg, seed);
  };
  job.optimizer_factory = [] {
    return std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.5));
  };
  job.paper_model = paper_transformer();
  return job;
}

}  // namespace selsync::testing
