// The sliced data plane's golden drift gate (ISSUE 7): --slices 1
// --overlap off IS the pre-slicing step-end barrier, so pinning it
// explicitly on every golden config must reproduce the seed records byte
// for byte, and none of the slice fields may leak into run-record JSON at
// the defaults — the gates mirror the ps_shards precedent exactly.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/run_record.hpp"
#include "core/trainer.hpp"
#include "tests/golden/golden_configs.hpp"

namespace selsync {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "cannot open golden record " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class SliceGoldenGate : public ::testing::TestWithParam<golden::GoldenConfig> {
};

TEST_P(SliceGoldenGate, ExplicitSingleSliceMatchesSeedRecordByteForByte) {
  golden::GoldenConfig cfg = GetParam();
  // Spell the defaults out the way the CLI flags would: this is the claim
  // that the sliced pipeline's off position is the legacy barrier.
  cfg.job.slices = 1;
  cfg.job.overlap = false;
  cfg.job.slice_order = SliceScheduleKind::kOutputFirst;
  const std::string expected = read_file(
      std::string(SELSYNC_SOURCE_DIR) + "/tests/golden/records/" + cfg.name +
      ".json");
  ASSERT_FALSE(expected.empty()) << cfg.name;
  const TrainResult result = run_training(cfg.job);
  EXPECT_EQ(golden::canonical_result_json(result), expected)
      << cfg.name << ": --slices 1 --overlap off drifted from the seed";
}

INSTANTIATE_TEST_SUITE_P(Grid, SliceGoldenGate,
                         ::testing::ValuesIn(golden::golden_grid()),
                         [](const auto& param_info) {
                           return param_info.param.name;
                         });

TEST(SliceGoldenGate, SliceFieldsAbsentFromJobJsonAtDefaults) {
  const TrainJob job = testing::small_class_job(StrategyKind::kBsp, 40);
  const JsonValue j = job_to_json(job);
  EXPECT_FALSE(j.contains("slices"));
  EXPECT_FALSE(j.contains("slice_order"));
  EXPECT_FALSE(j.contains("overlap"));
}

TEST(SliceGoldenGate, SliceFieldsPresentOnlyWhenSliced) {
  TrainJob job = testing::small_class_job(StrategyKind::kBsp, 40);
  job.slices = 4;
  JsonValue j = job_to_json(job);
  EXPECT_TRUE(j.contains("slices"));
  EXPECT_TRUE(j.contains("slice_order"));
  // overlap gets its own gate: absent until actually enabled.
  EXPECT_FALSE(j.contains("overlap"));
  job.overlap = true;
  j = job_to_json(job);
  EXPECT_TRUE(j.contains("overlap"));
}

TEST(SliceGoldenGate, SliceFieldsAbsentFromSyncCostJsonAtDefaults) {
  TrainJob job = testing::small_class_job(StrategyKind::kBsp, 30);
  job.record_sync_cost = true;
  const TrainResult result = run_training(job);
  const JsonValue j = result_to_json(result);
  ASSERT_TRUE(j.contains("sync_cost"));
  const JsonValue& sc = j.at("sync_cost");
  EXPECT_FALSE(sc.contains("slices"));
  EXPECT_FALSE(sc.contains("max_slice_wire_bytes"));
  EXPECT_FALSE(sc.contains("overlap_saved_s"));
}

TEST(SliceGoldenGate, SyncCostJsonCarriesSliceFieldsWhenSliced) {
  TrainJob job = testing::small_class_job(StrategyKind::kBsp, 30);
  job.record_sync_cost = true;
  job.slices = 4;
  job.overlap = true;
  const TrainResult result = run_training(job);
  const JsonValue j = result_to_json(result);
  ASSERT_TRUE(j.contains("sync_cost"));
  const JsonValue& sc = j.at("sync_cost");
  EXPECT_TRUE(sc.contains("slices"));
  EXPECT_TRUE(sc.contains("max_slice_wire_bytes"));
  EXPECT_TRUE(sc.contains("overlap_saved_s"));
}

}  // namespace
}  // namespace selsync
