// Trainer mechanics: bookkeeping, determinism, early stopping, traces.
#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;
using testing::small_lm_job;

TEST(Trainer, BspRunsRequestedIterations) {
  const TrainResult r = run_training(small_class_job(StrategyKind::kBsp, 50));
  EXPECT_EQ(r.iterations, 50u);
  EXPECT_EQ(r.sync_steps, 50u);
  EXPECT_EQ(r.local_steps, 0u);
  EXPECT_DOUBLE_EQ(r.lssr(), 0.0);
}

TEST(Trainer, LocalSgdNeverSyncs) {
  const TrainResult r =
      run_training(small_class_job(StrategyKind::kLocalSgd, 50));
  EXPECT_EQ(r.sync_steps, 0u);
  EXPECT_EQ(r.local_steps, 50u);
  EXPECT_DOUBLE_EQ(r.lssr(), 1.0);
}

TEST(Trainer, FedAvgSyncsAtConfiguredInterval) {
  TrainJob job = small_class_job(StrategyKind::kFedAvg, 64);
  job.fedavg = {1.0, 0.25};  // steps_per_epoch=16 -> sync every 4 steps
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.sync_steps, 16u);
  EXPECT_EQ(r.local_steps, 48u);
  EXPECT_NEAR(r.lssr(), 0.75, 1e-9);
}

TEST(Trainer, ResultsAreDeterministic) {
  TrainJob job = small_class_job(StrategyKind::kSelSync, 60);
  job.selsync.delta = 0.05;
  const TrainResult a = run_training(job);
  const TrainResult b = run_training(job);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.sync_steps, b.sync_steps);
  EXPECT_DOUBLE_EQ(a.final_eval.top1, b.final_eval.top1);
  EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s);
}

TEST(Trainer, EvalHistoryOnSchedule) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 120);
  job.eval_interval = 40;
  const TrainResult r = run_training(job);
  ASSERT_EQ(r.eval_history.size(), 3u);
  EXPECT_EQ(r.eval_history[0].iteration, 40u);
  EXPECT_EQ(r.eval_history[2].iteration, 120u);
  EXPECT_GT(r.eval_history[2].epoch, 0.0);
  EXPECT_DOUBLE_EQ(r.final_eval.top1, r.eval_history.back().top1);
}

TEST(Trainer, EarlyStopOnAccuracyTarget) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 2000);
  job.eval_interval = 20;
  job.target_top1 = 0.15;  // trivially reachable above 10% chance
  const TrainResult r = run_training(job);
  EXPECT_TRUE(r.reached_target);
  EXPECT_LT(r.iterations, 2000u);
}

TEST(Trainer, DeltaTraceRecordedWhenRequested) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  job.record_delta_trace = true;
  job.record_grad_sq_trace = true;
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.delta_trace.size(), 40u);
  EXPECT_EQ(r.grad_sq_trace.size(), 40u);
  EXPECT_DOUBLE_EQ(r.delta_trace[0], 0.0);  // first step has no history
  for (double d : r.delta_trace) EXPECT_GE(d, 0.0);
  for (double g : r.grad_sq_trace) EXPECT_GT(g, 0.0);
}

TEST(Trainer, TracesEmptyWhenDisabled) {
  const TrainResult r = run_training(small_class_job(StrategyKind::kBsp, 20));
  EXPECT_TRUE(r.delta_trace.empty());
  EXPECT_TRUE(r.grad_sq_trace.empty());
}

TEST(Trainer, WeightSnapshotsAtEpochBoundaries) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 48);  // 3 epochs
  job.snapshot_epochs = {1.0, 2.0};
  const TrainResult r = run_training(job);
  ASSERT_EQ(r.weight_snapshots.size(), 2u);
  EXPECT_TRUE(r.weight_snapshots.count(1.0));
  EXPECT_TRUE(r.weight_snapshots.count(2.0));
  EXPECT_FALSE(r.weight_snapshots.at(1.0).empty());
  // Training moved on between the snapshots.
  EXPECT_NE(r.weight_snapshots.at(1.0), r.weight_snapshots.at(2.0));
}

TEST(Trainer, SimTimeAccumulatesAndSyncCostsMore) {
  const TrainResult bsp = run_training(small_class_job(StrategyKind::kBsp, 40));
  const TrainResult local =
      run_training(small_class_job(StrategyKind::kLocalSgd, 40));
  EXPECT_GT(bsp.sim_time_s, 0.0);
  EXPECT_GT(local.sim_time_s, 0.0);
  EXPECT_GT(bsp.sim_time_s, 2.0 * local.sim_time_s);
  EXPECT_GT(bsp.comm_bytes, local.comm_bytes);
}

TEST(Trainer, WallTimeRecorded) {
  const TrainResult r = run_training(small_class_job(StrategyKind::kBsp, 20));
  EXPECT_GT(r.wall_time_s, 0.0);
}

TEST(Trainer, SspRunsAndReportsNoLssr) {
  TrainJob job = small_class_job(StrategyKind::kSsp, 60);
  job.ssp.staleness = 10;
  const TrainResult r = run_training(job);
  EXPECT_FALSE(r.lssr_applicable);
  EXPECT_EQ(r.iterations, 60u);
  EXPECT_FALSE(r.eval_history.empty());
  EXPECT_GT(r.sim_time_s, 0.0);
}

TEST(Trainer, SspEarlyStopPropagates) {
  TrainJob job = small_class_job(StrategyKind::kSsp, 5000);
  job.eval_interval = 20;
  job.ssp.staleness = 50;
  job.target_top1 = 0.15;
  const TrainResult r = run_training(job);
  EXPECT_TRUE(r.reached_target);
  EXPECT_LT(r.iterations, 5000u);
}

TEST(Trainer, LanguageModelJobTrainsAndReportsPerplexity) {
  const TrainResult r = run_training(small_lm_job(StrategyKind::kBsp, 40));
  EXPECT_GT(r.final_eval.perplexity, 1.0);
  EXPECT_LT(r.final_eval.perplexity, 40.0);  // below uniform 32-vocab ppl + slack
}

TEST(Trainer, PerplexityTargetStopsLmJob) {
  TrainJob job = small_lm_job(StrategyKind::kBsp, 4000);
  job.eval_interval = 25;
  job.target_perplexity = 31.0;
  const TrainResult r = run_training(job);
  EXPECT_TRUE(r.reached_target);
  EXPECT_LT(r.iterations, 4000u);
}

TEST(Trainer, DivergenceDetectedAndStopsEarly) {
  // An absurd learning rate blows the loss up to inf/NaN; the trainer must
  // flag it and stop instead of burning the whole budget.
  TrainJob job = small_class_job(StrategyKind::kBsp, 4000);
  job.eval_interval = 10;
  job.optimizer_factory = [] {
    return std::make_unique<Sgd>(std::make_shared<ConstantLr>(1e9));
  };
  const TrainResult r = run_training(job);
  EXPECT_TRUE(r.diverged);
  EXPECT_FALSE(r.reached_target);
  EXPECT_LT(r.iterations, 4000u);
}

TEST(Trainer, HealthyRunIsNotFlaggedDiverged) {
  const TrainResult r = run_training(small_class_job(StrategyKind::kBsp, 30));
  EXPECT_FALSE(r.diverged);
}

TEST(Trainer, SspDivergenceStopsCluster) {
  TrainJob job = small_class_job(StrategyKind::kSsp, 4000);
  job.eval_interval = 10;
  job.optimizer_factory = [] {
    return std::make_unique<Sgd>(std::make_shared<ConstantLr>(1e9));
  };
  const TrainResult r = run_training(job);
  EXPECT_TRUE(r.diverged);
  EXPECT_LT(r.iterations, 4000u);
}

TEST(Trainer, EmaEvaluationChangesEvalNotTraining) {
  TrainJob plain = small_class_job(StrategyKind::kBsp, 60);
  TrainJob ema = plain;
  ema.ema_decay = 0.95;
  const TrainResult rp = run_training(plain);
  const TrainResult re = run_training(ema);
  // Same training trajectory (EMA only affects what gets evaluated)...
  EXPECT_EQ(rp.iterations, re.iterations);
  // ...but a different evaluation path; both sane.
  EXPECT_TRUE(std::isfinite(re.final_eval.loss));
  EXPECT_GT(re.best_top1, 0.15);
}

TEST(Trainer, EmaDecayValidated) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 10);
  job.ema_decay = 1.0;
  EXPECT_THROW(run_training(job), std::invalid_argument);
}

TEST(Trainer, ValidatesJobBeforeRunning) {
  TrainJob job = small_class_job(StrategyKind::kBsp);
  job.batch_size = 0;
  EXPECT_THROW(run_training(job), std::invalid_argument);
}

TEST(TrainResult, CommReductionFromLssr) {
  TrainResult r;
  r.local_steps = 90;
  r.sync_steps = 10;
  EXPECT_NEAR(r.lssr(), 0.9, 1e-9);
  EXPECT_NEAR(r.comm_reduction(), 10.0, 1e-9);
}

}  // namespace
}  // namespace selsync
