#include "core/run_record.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

TEST(RunRecord, JobJsonCarriesStrategySpecificKnobs) {
  TrainJob sel = small_class_job(StrategyKind::kSelSync);
  sel.selsync.delta = 0.25;
  const std::string dump = job_to_json(sel).dump();
  EXPECT_NE(dump.find("\"strategy\":\"SelSync\""), std::string::npos);
  EXPECT_NE(dump.find("\"delta\":0.25"), std::string::npos);
  EXPECT_NE(dump.find("\"aggregation\":\"PA\""), std::string::npos);

  TrainJob fed = small_class_job(StrategyKind::kFedAvg);
  fed.fedavg = {0.5, 0.125};
  const std::string fed_dump = job_to_json(fed).dump();
  EXPECT_NE(fed_dump.find("\"participation\":0.5"), std::string::npos);
  EXPECT_EQ(fed_dump.find("delta"), std::string::npos);

  TrainJob ssp = small_class_job(StrategyKind::kSsp);
  ssp.ssp.staleness = 77;
  EXPECT_NE(job_to_json(ssp).dump().find("\"staleness\":77"),
            std::string::npos);
}

TEST(RunRecord, OptionalSectionsOnlyWhenEnabled) {
  TrainJob job = small_class_job(StrategyKind::kSelSync);
  EXPECT_EQ(job_to_json(job).dump().find("injection"), std::string::npos);
  EXPECT_EQ(job_to_json(job).dump().find("compression"), std::string::npos);
  job.injection = {true, 0.5, 0.5};
  job.compression = {CompressionKind::kTopK, 0.01, true};
  const std::string dump = job_to_json(job).dump();
  EXPECT_NE(dump.find("\"injection\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"topk\""), std::string::npos);
}

TEST(RunRecord, ResultJsonContainsHistory) {
  TrainJob job = small_class_job(StrategyKind::kBsp, 60);
  job.eval_interval = 30;
  const TrainResult r = run_training(job);
  const std::string dump = result_to_json(r).dump();
  EXPECT_NE(dump.find("\"eval_history\""), std::string::npos);
  EXPECT_NE(dump.find("\"iterations\":60"), std::string::npos);
  EXPECT_NE(dump.find("\"lssr\":0"), std::string::npos);
}

TEST(RunRecord, SyncCostSectionIsOptIn) {
  // Off by default: the golden parity records predate the SyncCost
  // breakdown, so an un-flagged run must serialize exactly as before.
  TrainJob job = small_class_job(StrategyKind::kBsp, 30);
  const TrainResult quiet = run_training(job);
  EXPECT_EQ(result_to_json(quiet).dump().find("sync_cost"),
            std::string::npos);

  job.record_sync_cost = true;
  const TrainResult recorded = run_training(job);
  const std::string dump = result_to_json(recorded).dump();
  EXPECT_NE(dump.find("\"sync_cost\""), std::string::npos);
  EXPECT_NE(dump.find("\"transfer_s\""), std::string::npos);
  EXPECT_NE(dump.find("\"wire_bytes\""), std::string::npos);
  EXPECT_GT(recorded.sync_cost.rounds, 0u);
  // Dense run: the wire carries exactly the dense payload.
  EXPECT_EQ(recorded.sync_cost.wire_bytes, recorded.sync_cost.dense_bytes);

  // With a codec the recorded wire traffic shrinks below dense.
  job.compression = {CompressionKind::kTopK, 0.05, true};
  const TrainResult compressed = run_training(job);
  EXPECT_TRUE(compressed.sync_cost_recorded);
  EXPECT_GT(compressed.sync_cost.dense_bytes, 0.0);
  EXPECT_LT(compressed.sync_cost.wire_bytes,
            compressed.sync_cost.dense_bytes);
  EXPECT_GT(compressed.sync_cost.encode_s + compressed.sync_cost.decode_s,
            0.0);
}

TEST(RunRecord, SspLssrIsNull) {
  TrainJob job = small_class_job(StrategyKind::kSsp, 30);
  const TrainResult r = run_training(job);
  EXPECT_NE(result_to_json(r).dump().find("\"lssr\":null"),
            std::string::npos);
}

TEST(RunRecord, WriteProducesValidFile) {
  const std::string path = ::testing::TempDir() + "/selsync_run_record.json";
  TrainJob job = small_class_job(StrategyKind::kBsp, 30);
  const TrainResult r = run_training(job);
  write_run_record(path, job, r);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string contents = buf.str();
  EXPECT_NE(contents.find("\"job\""), std::string::npos);
  EXPECT_NE(contents.find("\"result\""), std::string::npos);
  // Braces balance (cheap structural sanity).
  EXPECT_EQ(std::count(contents.begin(), contents.end(), '{'),
            std::count(contents.begin(), contents.end(), '}'));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace selsync
