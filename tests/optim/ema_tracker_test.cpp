#include "optim/ema_tracker.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"

namespace selsync {
namespace {

std::unique_ptr<Model> tiny_model(uint64_t seed = 1) {
  ClassifierConfig cfg;
  cfg.input_dim = 8;
  cfg.classes = 3;
  cfg.hidden = 8;
  cfg.resnet_blocks = 1;
  return make_resnet_mlp(cfg, seed);
}

TEST(EmaTracker, FirstUpdateCopies) {
  auto model = tiny_model();
  EmaTracker ema(0.9);
  EXPECT_FALSE(ema.initialized());
  ema.update(*model);
  EXPECT_TRUE(ema.initialized());
  EXPECT_EQ(ema.average(), model->get_flat_params());
}

TEST(EmaTracker, MovesTowardCurrentWeights) {
  auto model = tiny_model();
  EmaTracker ema(0.5);
  ema.update(*model);
  auto shifted = model->get_flat_params();
  for (auto& v : shifted) v += 1.f;
  model->set_flat_params(shifted);
  ema.update(*model);
  // Average moved halfway toward the shifted weights.
  const auto& avg = ema.average();
  for (size_t i = 0; i < avg.size(); ++i)
    EXPECT_NEAR(avg[i], shifted[i] - 0.5f, 1e-5);
}

TEST(EmaTracker, HighDecayMovesSlower) {
  auto a = tiny_model(1);
  auto b = tiny_model(1);
  EmaTracker slow(0.99), fast(0.5);
  slow.update(*a);
  fast.update(*b);
  auto shifted = a->get_flat_params();
  for (auto& v : shifted) v += 1.f;
  a->set_flat_params(shifted);
  b->set_flat_params(shifted);
  slow.update(*a);
  fast.update(*b);
  EXPECT_LT(std::abs(slow.average()[0] - (shifted[0] - 1.f)),
            std::abs(fast.average()[0] - (shifted[0] - 1.f)) + 1.f);
  EXPECT_GT(shifted[0] - slow.average()[0], shifted[0] - fast.average()[0]);
}

TEST(EmaTracker, SwapIsItsOwnInverse) {
  auto model = tiny_model();
  EmaTracker ema(0.9);
  ema.update(*model);
  auto shifted = model->get_flat_params();
  for (auto& v : shifted) v += 2.f;
  model->set_flat_params(shifted);
  ema.update(*model);

  const auto live = model->get_flat_params();
  {
    EmaEvalScope scope(ema, *model);
    EXPECT_NE(model->get_flat_params(), live);  // evaluating the average
  }
  EXPECT_EQ(model->get_flat_params(), live);  // restored
}

TEST(EmaTracker, Validation) {
  EXPECT_THROW(EmaTracker(1.0), std::invalid_argument);
  EXPECT_THROW(EmaTracker(-0.1), std::invalid_argument);
  EmaTracker ema(0.9);
  EXPECT_THROW(ema.average(), std::logic_error);
  auto model = tiny_model();
  EXPECT_THROW(ema.swap_into(*model), std::logic_error);
}

}  // namespace
}  // namespace selsync
