#include "optim/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace selsync {
namespace {

/// 1-D quadratic f(w) = 0.5*(w-3)^2; grad = w-3.
struct Quadratic {
  Param w{"w", Tensor({1})};
  std::vector<Param*> params{&w};

  void compute_grad() {
    w.grad[0] = w.value[0] - 3.f;
  }
  float loss() const {
    const float d = w.value[0] - 3.f;
    return 0.5f * d * d;
  }
};

TEST(Sgd, PlainStepMatchesFormula) {
  Quadratic q;
  q.w.value[0] = 0.f;
  Sgd opt(std::make_shared<ConstantLr>(0.1));
  q.compute_grad();
  opt.step(q.params, 0, 0.0);
  EXPECT_NEAR(q.w.value[0], 0.f - 0.1f * (0.f - 3.f), 1e-6);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Quadratic q;
  q.w.value[0] = -5.f;
  Sgd opt(std::make_shared<ConstantLr>(0.2));
  for (int i = 0; i < 100; ++i) {
    q.compute_grad();
    opt.step(q.params, i, 0.0);
  }
  EXPECT_NEAR(q.w.value[0], 3.f, 1e-3);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Quadratic plain_q, mom_q;
  plain_q.w.value[0] = mom_q.w.value[0] = -5.f;
  Sgd plain(std::make_shared<ConstantLr>(0.02));
  Sgd momentum(std::make_shared<ConstantLr>(0.02), {.momentum = 0.9});
  for (int i = 0; i < 20; ++i) {
    plain_q.compute_grad();
    plain.step(plain_q.params, i, 0.0);
    mom_q.compute_grad();
    momentum.step(mom_q.params, i, 0.0);
  }
  EXPECT_LT(mom_q.loss(), plain_q.loss());
}

TEST(Sgd, NesterovDiffersFromHeavyBall) {
  Quadratic a, b;
  a.w.value[0] = b.w.value[0] = -5.f;
  Sgd heavy(std::make_shared<ConstantLr>(0.05), {.momentum = 0.9});
  Sgd nesterov(std::make_shared<ConstantLr>(0.05),
               {.momentum = 0.9, .nesterov = true});
  for (int i = 0; i < 3; ++i) {
    a.compute_grad();
    heavy.step(a.params, i, 0.0);
    b.compute_grad();
    nesterov.step(b.params, i, 0.0);
  }
  EXPECT_NE(a.w.value[0], b.w.value[0]);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param w{"w", Tensor({1})};
  w.value[0] = 2.f;
  w.grad[0] = 0.f;  // pure decay
  std::vector<Param*> params{&w};
  Sgd opt(std::make_shared<ConstantLr>(0.1), {.weight_decay = 0.5});
  opt.step(params, 0, 0.0);
  EXPECT_NEAR(w.value[0], 2.f - 0.1f * 0.5f * 2.f, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
  Quadratic q;
  q.w.value[0] = -5.f;
  Adam opt(std::make_shared<ConstantLr>(0.3));
  for (int i = 0; i < 200; ++i) {
    q.compute_grad();
    opt.step(q.params, i, 0.0);
  }
  EXPECT_NEAR(q.w.value[0], 3.f, 0.05);
}

TEST(Adam, FirstStepSizeIsLrScaled) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Quadratic q;
  q.w.value[0] = 0.f;
  Adam opt(std::make_shared<ConstantLr>(0.1));
  q.compute_grad();  // grad = -3
  opt.step(q.params, 0, 0.0);
  EXPECT_NEAR(q.w.value[0], 0.1f, 1e-3);
}

TEST(Adam, HandlesSparseZeroGradsWithoutNan) {
  Param w{"w", Tensor({2})};
  w.grad[0] = 0.f;
  w.grad[1] = 1.f;
  std::vector<Param*> params{&w};
  Adam opt(std::make_shared<ConstantLr>(0.1));
  opt.step(params, 0, 0.0);
  EXPECT_TRUE(std::isfinite(w.value[0]));
  EXPECT_TRUE(std::isfinite(w.value[1]));
  EXPECT_EQ(w.value[0], 0.f);  // no update where grad was 0
}

TEST(ClipGradNorm, ScalesDownOnlyWhenExceeding) {
  Param w{"w", Tensor({2})};
  w.grad[0] = 3.f;
  w.grad[1] = 4.f;  // norm 5
  std::vector<Param*> params{&w};
  EXPECT_DOUBLE_EQ(clip_grad_norm(params, 10.0), 5.0);
  EXPECT_FLOAT_EQ(w.grad[0], 3.f);  // untouched below the cap
  EXPECT_DOUBLE_EQ(clip_grad_norm(params, 1.0), 5.0);
  EXPECT_NEAR(w.grad[0], 0.6f, 1e-6);  // rescaled to norm 1
  EXPECT_NEAR(w.grad[1], 0.8f, 1e-6);
}

TEST(ClipGradNorm, SpansMultipleParams) {
  Param a{"a", Tensor({1})}, b{"b", Tensor({1})};
  a.grad[0] = 3.f;
  b.grad[0] = 4.f;
  std::vector<Param*> params{&a, &b};
  clip_grad_norm(params, 2.5);  // global norm 5 -> halved
  EXPECT_NEAR(a.grad[0], 1.5f, 1e-6);
  EXPECT_NEAR(b.grad[0], 2.0f, 1e-6);
}

TEST(ClipGradNorm, RejectsNonPositiveCap) {
  Param w{"w", Tensor({1})};
  std::vector<Param*> params{&w};
  EXPECT_THROW(clip_grad_norm(params, 0.0), std::invalid_argument);
}

TEST(Optimizer, UsesScheduleEpoch) {
  Quadratic q;
  q.w.value[0] = 0.f;
  Sgd opt(std::make_shared<EpochStepDecay>(1.0, std::vector<double>{10.0}, 0.1));
  q.compute_grad();
  opt.step(q.params, 0, 20.0);  // past the decay epoch -> lr = 0.1
  EXPECT_NEAR(q.w.value[0], 0.f - 0.1f * (0.f - 3.f), 1e-5);
}

TEST(Optimizer, CurrentLrExposed) {
  Sgd opt(std::make_shared<ConstantLr>(0.25));
  EXPECT_DOUBLE_EQ(opt.current_lr(0, 0.0), 0.25);
}

}  // namespace
}  // namespace selsync
