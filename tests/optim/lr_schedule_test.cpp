#include "optim/lr_schedule.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

TEST(ConstantLr, AlwaysSame) {
  ConstantLr lr(0.01);
  EXPECT_DOUBLE_EQ(lr.lr_at(0, 0.0), 0.01);
  EXPECT_DOUBLE_EQ(lr.lr_at(100000, 500.0), 0.01);
}

TEST(EpochStepDecay, PaperResNetSchedule) {
  // ResNet101: lr 0.1, x0.1 after epochs 110 and 150 (paper §IV-A).
  EpochStepDecay lr(0.1, {110.0, 150.0}, 0.1);
  EXPECT_DOUBLE_EQ(lr.lr_at(0, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(lr.lr_at(0, 109.9), 0.1);
  EXPECT_NEAR(lr.lr_at(0, 110.0), 0.01, 1e-12);
  EXPECT_NEAR(lr.lr_at(0, 149.0), 0.01, 1e-12);
  EXPECT_NEAR(lr.lr_at(0, 151.0), 0.001, 1e-12);
}

TEST(EpochStepDecay, UnsortedEpochsStillApplyAll) {
  EpochStepDecay lr(1.0, {20.0, 10.0}, 0.5);
  EXPECT_DOUBLE_EQ(lr.lr_at(0, 15.0), 0.5);
  EXPECT_DOUBLE_EQ(lr.lr_at(0, 25.0), 0.25);
}

TEST(IterationExpDecay, PaperTransformerSchedule) {
  // Transformer: lr 2.0, x0.8 every 2000 iterations (paper §IV-A).
  IterationExpDecay lr(2.0, 2000, 0.8);
  EXPECT_DOUBLE_EQ(lr.lr_at(0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lr.lr_at(1999, 0.0), 2.0);
  EXPECT_NEAR(lr.lr_at(2000, 0.0), 1.6, 1e-12);
  EXPECT_NEAR(lr.lr_at(4000, 0.0), 1.28, 1e-12);
  EXPECT_NEAR(lr.lr_at(4500, 0.0), 1.28, 1e-12);
}

TEST(CosineAnnealing, EndpointsAndMidpoint) {
  CosineAnnealing lr(1.0, 100, 0.1);
  EXPECT_NEAR(lr.lr_at(0, 0.0), 1.0, 1e-9);
  EXPECT_NEAR(lr.lr_at(50, 0.0), 0.55, 1e-9);  // halfway: mid of 1.0 and 0.1
  EXPECT_NEAR(lr.lr_at(100, 0.0), 0.1, 1e-9);
  EXPECT_NEAR(lr.lr_at(5000, 0.0), 0.1, 1e-9);  // floor afterwards
}

TEST(CosineAnnealing, MonotoneNonIncreasing) {
  CosineAnnealing lr(0.5, 200);
  double prev = 1.0;
  for (size_t it = 0; it <= 220; it += 10) {
    const double v = lr.lr_at(it, 0.0);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

TEST(LinearWarmup, RampsToBaseRate) {
  LinearWarmup lr(std::make_shared<ConstantLr>(1.0), 10);
  EXPECT_DOUBLE_EQ(lr.lr_at(0, 0.0), 0.1);   // (0+1)/10
  EXPECT_DOUBLE_EQ(lr.lr_at(4, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(lr.lr_at(9, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(lr.lr_at(10, 0.0), 1.0);  // warmup over
  EXPECT_DOUBLE_EQ(lr.lr_at(1000, 0.0), 1.0);
}

TEST(LinearWarmup, ComposesWithStepDecay) {
  LinearWarmup lr(
      std::make_shared<EpochStepDecay>(1.0, std::vector<double>{5.0}, 0.1),
      4);
  EXPECT_DOUBLE_EQ(lr.lr_at(0, 0.0), 0.25);       // warming
  EXPECT_DOUBLE_EQ(lr.lr_at(100, 2.0), 1.0);      // warm, before decay
  EXPECT_NEAR(lr.lr_at(100, 6.0), 0.1, 1e-12);    // decayed
}

TEST(LinearWarmup, ZeroWarmupIsIdentity) {
  LinearWarmup lr(std::make_shared<ConstantLr>(0.3), 0);
  EXPECT_DOUBLE_EQ(lr.lr_at(0, 0.0), 0.3);
}

TEST(IterationExpDecay, MonotoneNonIncreasing) {
  IterationExpDecay lr(1.0, 100, 0.9);
  double prev = 10.0;
  for (size_t it = 0; it < 1000; it += 50) {
    const double v = lr.lr_at(it, 0.0);
    EXPECT_LE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace selsync
