#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace selsync {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.f);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({4, 5, 6});
  EXPECT_EQ(t.dim(0), 4u);
  EXPECT_EQ(t.dim(1), 5u);
  EXPECT_EQ(t.dim(2), 6u);
  EXPECT_EQ(t.shape_str(), "[4x5x6]");
}

TEST(Tensor, ConstructWithDataValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, FullFillsValue) {
  const Tensor t = Tensor::full({3}, 2.5f);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, At2D) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at(0, 0), 0.f);
  EXPECT_EQ(t.at(0, 2), 2.f);
  EXPECT_EQ(t.at(1, 0), 3.f);
  EXPECT_EQ(t.at(1, 2), 5.f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_EQ(r.at(2, 1), 5.f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseInPlaceOps) {
  Tensor a({3}, {1, 2, 3});
  const Tensor b({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_EQ(a[1], 22.f);
  a.sub_(b);
  EXPECT_EQ(a[1], 2.f);
  a.mul_(b);
  EXPECT_EQ(a[2], 90.f);
  a.scale_(0.5f);
  EXPECT_EQ(a[0], 5.f);
}

TEST(Tensor, Axpy) {
  Tensor a({2}, {1, 1});
  const Tensor b({2}, {2, 4});
  a.axpy_(-0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 0.f);
  EXPECT_FLOAT_EQ(a[1], -1.f);
}

TEST(Tensor, OutOfPlaceOps) {
  const Tensor a({2}, {1, 2});
  const Tensor b({2}, {3, 4});
  const Tensor sum = a + b;
  const Tensor diff = b - a;
  const Tensor scaled = a * 3.f;
  EXPECT_EQ(sum[1], 6.f);
  EXPECT_EQ(diff[0], 2.f);
  EXPECT_EQ(scaled[1], 6.f);
  EXPECT_EQ(a[0], 1.f);  // operands untouched
}

TEST(Tensor, Reductions) {
  const Tensor t({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.sum(), -2.f);
  EXPECT_FLOAT_EQ(t.mean(), -0.5f);
  EXPECT_FLOAT_EQ(t.min(), -4.f);
  EXPECT_FLOAT_EQ(t.max(), 3.f);
  EXPECT_DOUBLE_EQ(t.sq_norm(), 1 + 4 + 9 + 16);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(30.0), 1e-9);
}

TEST(Tensor, RandnMoments) {
  Rng rng(1);
  const Tensor t = Tensor::randn({10000}, rng, 1.f, 2.f);
  EXPECT_NEAR(t.mean(), 1.f, 0.1f);
  double var = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    const double d = t[i] - t.mean();
    var += d * d;
  }
  EXPECT_NEAR(var / t.size(), 4.0, 0.3);
}

TEST(Tensor, XavierBounded) {
  Rng rng(2);
  const Tensor t = Tensor::xavier({64, 32}, rng, 32, 64);
  const double limit = std::sqrt(6.0 / (32 + 64));
  EXPECT_LE(t.max(), limit + 1e-6);
  EXPECT_GE(t.min(), -limit - 1e-6);
}

TEST(Tensor, KaimingVarianceScalesWithFanIn) {
  Rng rng(3);
  const Tensor t = Tensor::kaiming({128, 50}, rng, 50);
  double sq = t.sq_norm() / t.size();
  EXPECT_NEAR(sq, 2.0 / 50, 0.01);
}

TEST(Tensor, DeterministicInitForSameSeed) {
  Rng a(9), b(9);
  const Tensor ta = Tensor::randn({16}, a);
  const Tensor tb = Tensor::randn({16}, b);
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(ta[i], tb[i]);
}

TEST(ShapeNumel, EmptyShapeIsZero) {
  EXPECT_EQ(shape_numel({}), 0u);
  EXPECT_EQ(shape_numel({5}), 5u);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
}

}  // namespace
}  // namespace selsync
