// Property sweeps over the matmul kernels: algebraic identities that must
// hold for every shape (TEST_P over a shape grid).
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/ops.hpp"

namespace selsync::ops {
namespace {

using Shape = std::tuple<size_t, size_t, size_t>;  // m, k, n

class MatmulShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(MatmulShapes, VariantsAgreeWithTransposedForms) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 100 + n);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);

  const Tensor direct = matmul(a, b);
  const Tensor via_nt = matmul_nt(a, transpose(b));
  const Tensor via_tn = matmul_tn(transpose(a), b);
  ASSERT_TRUE(direct.same_shape(via_nt));
  ASSERT_TRUE(direct.same_shape(via_tn));
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via_nt[i], 1e-3);
    EXPECT_NEAR(direct[i], via_tn[i], 1e-3);
  }
}

TEST_P(MatmulShapes, DistributesOverAddition) {
  // A(B + C) = AB + AC.
  const auto [m, k, n] = GetParam();
  Rng rng(42 + m + k + n);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  const Tensor c = Tensor::randn({k, n}, rng);
  const Tensor lhs = matmul(a, b + c);
  Tensor rhs = matmul(a, b);
  rhs.add_(matmul(a, c));
  for (size_t i = 0; i < lhs.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-3);
}

TEST_P(MatmulShapes, ScalarCommutes) {
  // (s A) B = s (A B).
  const auto [m, k, n] = GetParam();
  Rng rng(7 + m * k * n);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  const Tensor lhs = matmul(a * 2.5f, b);
  const Tensor rhs = matmul(a, b) * 2.5f;
  for (size_t i = 0; i < lhs.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-3);
}

TEST_P(MatmulShapes, TransposeReversesProduct) {
  // (A B)^T = B^T A^T.
  const auto [m, k, n] = GetParam();
  Rng rng(13 * m + k - n);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  const Tensor lhs = transpose(matmul(a, b));
  const Tensor rhs = matmul(transpose(b), transpose(a));
  ASSERT_TRUE(lhs.same_shape(rhs));
  for (size_t i = 0; i < lhs.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, MatmulShapes,
    ::testing::Values(Shape{1, 1, 1}, Shape{1, 7, 3}, Shape{5, 1, 4},
                      Shape{4, 4, 4}, Shape{3, 17, 5}, Shape{16, 8, 32},
                      Shape{31, 13, 7}),
    [](const auto& shapes) {
      return std::to_string(std::get<0>(shapes.param)) + "x" +
             std::to_string(std::get<1>(shapes.param)) + "x" +
             std::to_string(std::get<2>(shapes.param));
    });

}  // namespace
}  // namespace selsync::ops
