#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace selsync::ops {
namespace {

TEST(Matmul, SmallKnownProduct) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.f);
}

TEST(Matmul, IdentityIsNoop) {
  const Tensor a({2, 2}, {1, 2, 3, 4});
  const Tensor eye({2, 2}, {1, 0, 0, 1});
  const Tensor c = matmul(a, eye);
  for (size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], a[i]);
}

TEST(Matmul, DimMismatchThrows) {
  const Tensor a({2, 3});
  const Tensor b({2, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(MatmulVariants, NtMatchesExplicitTranspose) {
  Rng rng(1);
  const Tensor a = Tensor::randn({4, 6}, rng);
  const Tensor b = Tensor::randn({5, 6}, rng);
  const Tensor direct = matmul_nt(a, b);
  const Tensor via_t = matmul(a, transpose(b));
  ASSERT_TRUE(direct.same_shape(via_t));
  for (size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct[i], via_t[i], 1e-4);
}

TEST(MatmulVariants, TnMatchesExplicitTranspose) {
  Rng rng(2);
  const Tensor a = Tensor::randn({6, 4}, rng);
  const Tensor b = Tensor::randn({6, 5}, rng);
  const Tensor direct = matmul_tn(a, b);
  const Tensor via_t = matmul(transpose(a), b);
  ASSERT_TRUE(direct.same_shape(via_t));
  for (size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct[i], via_t[i], 1e-4);
}

TEST(Transpose, RoundTrip) {
  Rng rng(3);
  const Tensor a = Tensor::randn({3, 7}, rng);
  const Tensor tt = transpose(transpose(a));
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], tt[i]);
}

TEST(Bias, AddRowBiasBroadcasts) {
  Tensor a({2, 3}, {0, 0, 0, 1, 1, 1});
  const Tensor b({3}, {1, 2, 3});
  add_row_bias(a, b);
  EXPECT_FLOAT_EQ(a.at(0, 2), 3.f);
  EXPECT_FLOAT_EQ(a.at(1, 0), 2.f);
}

TEST(Bias, SumRowsIsBiasGradient) {
  const Tensor a({2, 3}, {1, 2, 3, 10, 20, 30});
  const Tensor s = sum_rows(a);
  EXPECT_FLOAT_EQ(s[0], 11.f);
  EXPECT_FLOAT_EQ(s[1], 22.f);
  EXPECT_FLOAT_EQ(s[2], 33.f);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(4);
  const Tensor logits = Tensor::randn({5, 9}, rng, 0.f, 3.f);
  const Tensor p = softmax_rows(logits);
  for (size_t r = 0; r < 5; ++r) {
    float sum = 0.f;
    for (size_t c = 0; c < 9; ++c) {
      EXPECT_GT(p.at(r, c), 0.f);
      sum += p.at(r, c);
    }
    EXPECT_NEAR(sum, 1.f, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  const Tensor logits({1, 3}, {1000.f, 1001.f, 999.f});
  const Tensor p = softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[0], p[2]);
}

TEST(Softmax, ShiftInvariance) {
  const Tensor a({1, 3}, {1.f, 2.f, 3.f});
  const Tensor b({1, 3}, {11.f, 12.f, 13.f});
  const Tensor pa = softmax_rows(a);
  const Tensor pb = softmax_rows(b);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(pa[i], pb[i], 1e-6);
}

TEST(Conv2d, IdentityKernelPreservesInput) {
  // 1x1 kernel with weight 1 and no padding is the identity map.
  Rng rng(5);
  const Tensor input = Tensor::randn({2, 1, 4, 4}, rng);
  const Tensor weight({1, 1, 1, 1}, {1.f});
  const Tensor bias({1});
  const Tensor out = conv2d(input, weight, bias, 0);
  ASSERT_TRUE(out.same_shape(input));
  for (size_t i = 0; i < out.size(); ++i) EXPECT_FLOAT_EQ(out[i], input[i]);
}

TEST(Conv2d, KnownSmallConvolution) {
  // 1x3x3 input, 2x2 kernel of ones, no padding -> 2x2 sums.
  const Tensor input({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor weight({1, 1, 2, 2}, {1, 1, 1, 1});
  const Tensor bias({1}, {0.5f});
  const Tensor out = conv2d(input, weight, bias, 0);
  EXPECT_EQ(out.dim(2), 2u);
  EXPECT_FLOAT_EQ(out[0], 1 + 2 + 4 + 5 + 0.5f);
  EXPECT_FLOAT_EQ(out[3], 5 + 6 + 8 + 9 + 0.5f);
}

TEST(Conv2d, PaddingPreservesSpatialDims) {
  Rng rng(6);
  const Tensor input = Tensor::randn({1, 2, 6, 6}, rng);
  const Tensor weight = Tensor::randn({3, 2, 3, 3}, rng);
  const Tensor bias({3});
  const Tensor out = conv2d(input, weight, bias, 1);
  EXPECT_EQ(out.dim(1), 3u);
  EXPECT_EQ(out.dim(2), 6u);
  EXPECT_EQ(out.dim(3), 6u);
}

TEST(Conv2dBackward, MatchesFiniteDifferences) {
  Rng rng(7);
  Tensor input = Tensor::randn({1, 2, 4, 4}, rng);
  Tensor weight = Tensor::randn({2, 2, 3, 3}, rng, 0.f, 0.5f);
  Tensor bias = Tensor::randn({2}, rng);
  const size_t pad = 1;

  // Scalar objective: sum of outputs.
  auto objective = [&](const Tensor& in, const Tensor& w, const Tensor& b) {
    return conv2d(in, w, b, pad).sum();
  };

  Tensor grad_out(conv2d(input, weight, bias, pad).shape());
  grad_out.fill(1.f);
  Tensor gi, gw, gb;
  conv2d_backward(input, weight, pad, grad_out, gi, gw, gb);

  const float eps = 1e-2f;
  // Spot-check several coordinates of each gradient.
  for (size_t idx : {0ul, 7ul, 15ul, 31ul}) {
    Tensor ip = input, im = input;
    ip[idx] += eps;
    im[idx] -= eps;
    const float fd =
        (objective(ip, weight, bias) - objective(im, weight, bias)) / (2 * eps);
    EXPECT_NEAR(gi[idx], fd, 2e-2) << "input grad at " << idx;
  }
  for (size_t idx : {0ul, 9ul, 17ul, 35ul}) {
    Tensor wp = weight, wm = weight;
    wp[idx] += eps;
    wm[idx] -= eps;
    const float fd =
        (objective(input, wp, bias) - objective(input, wm, bias)) / (2 * eps);
    EXPECT_NEAR(gw[idx], fd, 2e-2) << "weight grad at " << idx;
  }
  for (size_t idx : {0ul, 1ul}) {
    Tensor bp = bias, bm = bias;
    bp[idx] += eps;
    bm[idx] -= eps;
    const float fd =
        (objective(input, weight, bp) - objective(input, weight, bm)) /
        (2 * eps);
    EXPECT_NEAR(gb[idx], fd, 2e-2) << "bias grad at " << idx;
  }
}

TEST(MaxPool, SelectsMaxAndRecordsArgmax) {
  const Tensor input({1, 1, 2, 2}, {1, 5, 3, 2});
  std::vector<uint32_t> argmax;
  const Tensor out = maxpool2x2(input, argmax);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FLOAT_EQ(out[0], 5.f);
  EXPECT_EQ(argmax[0], 1u);
}

TEST(MaxPool, BackwardRoutesGradientToArgmax) {
  const Tensor input({1, 1, 2, 2}, {1, 5, 3, 2});
  std::vector<uint32_t> argmax;
  (void)maxpool2x2(input, argmax);
  const Tensor grad_out({1, 1, 1, 1}, {2.f});
  const Tensor grad_in = maxpool2x2_backward(grad_out, argmax, input.shape());
  EXPECT_FLOAT_EQ(grad_in[0], 0.f);
  EXPECT_FLOAT_EQ(grad_in[1], 2.f);
  EXPECT_FLOAT_EQ(grad_in[2], 0.f);
}

TEST(MaxPool, HalvesSpatialDims) {
  Rng rng(8);
  const Tensor input = Tensor::randn({2, 3, 8, 6}, rng);
  std::vector<uint32_t> argmax;
  const Tensor out = maxpool2x2(input, argmax);
  EXPECT_EQ(out.dim(2), 4u);
  EXPECT_EQ(out.dim(3), 3u);
}

}  // namespace
}  // namespace selsync::ops
