// The analytic paper-scale profiles must reproduce the published Fig. 2
// facts: compute time grows with batch, ResNet101 is the slowest, and the
// Transformer OOMs at batch 64 on the 12 GB K80.
#include "nn/paper_profiles.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

TEST(PaperProfiles, FourModelsExist) {
  const auto models = all_paper_models();
  ASSERT_EQ(models.size(), 4u);
  EXPECT_EQ(models[0].name, "ResNet101");
  EXPECT_EQ(models[3].name, "Transformer");
}

TEST(PaperProfiles, Vgg11Is507MB) {
  // The paper repeatedly cites VGG11's 507 MB parameter payload.
  const double mb = paper_vgg11().param_bytes() / (1024.0 * 1024.0);
  EXPECT_NEAR(mb, 507.0, 10.0);
}

TEST(PaperProfiles, ComputeTimeMonotoneInBatch) {
  const auto k80 = device_k80();
  for (const auto& model : all_paper_models()) {
    double prev = 0.0;
    for (double b : {16.0, 32.0, 64.0, 128.0, 256.0}) {
      const double t = compute_time_s(model, k80, b);
      EXPECT_GT(t, prev) << model.name << " at b=" << b;
      prev = t;
    }
  }
}

TEST(PaperProfiles, ResNet101IsSlowestPerIteration) {
  // Fig. 2a: ResNet101 (deepest) dominates compute time at every batch.
  const auto k80 = device_k80();
  const double rn = compute_time_s(paper_resnet101(), k80, 64);
  EXPECT_GT(rn, compute_time_s(paper_vgg11(), k80, 64));
  EXPECT_GT(rn, compute_time_s(paper_alexnet(), k80, 64));
  EXPECT_GT(rn, compute_time_s(paper_transformer(), k80, 64));
}

TEST(PaperProfiles, K80TimesInFig2aRange) {
  // Fig. 2a shows ResNet101 well under a second at b=32 and a few seconds
  // by b=512.
  const auto k80 = device_k80();
  const double t32 = compute_time_s(paper_resnet101(), k80, 32);
  const double t512 = compute_time_s(paper_resnet101(), k80, 512);
  EXPECT_GT(t32, 0.2);
  EXPECT_LT(t32, 1.5);
  EXPECT_GT(t512, 4.0 * t32);
}

TEST(PaperProfiles, V100FasterThanK80) {
  for (const auto& model : all_paper_models())
    EXPECT_LT(compute_time_s(model, device_v100(), 64),
              compute_time_s(model, device_k80(), 64))
        << model.name;
}

TEST(PaperProfiles, MemoryMonotoneInBatch) {
  const auto k80 = device_k80();
  for (const auto& model : all_paper_models())
    EXPECT_GT(training_memory_bytes(model, k80, 128),
              training_memory_bytes(model, k80, 16))
        << model.name;
}

TEST(PaperProfiles, TransformerOomAtBatch64OnK80) {
  // The paper: "Transformer ... failed to scale beyond b=64 due to OOM ...
  // as memory requirements exceeded the GPU's 12GB capacity."
  const auto k80 = device_k80();
  const auto tf = paper_transformer();
  EXPECT_FALSE(would_oom(tf, k80, 32));
  EXPECT_TRUE(would_oom(tf, k80, 64));
}

TEST(PaperProfiles, OtherModelsFitAt64OnK80) {
  const auto k80 = device_k80();
  EXPECT_FALSE(would_oom(paper_resnet101(), k80, 64));
  EXPECT_FALSE(would_oom(paper_vgg11(), k80, 64));
  EXPECT_FALSE(would_oom(paper_alexnet(), k80, 64));
}

TEST(PaperProfiles, AlexNetHostStagingDominatesAtLargeBatch) {
  // Fig. 2b calls out AlexNet's ImageFolder staging: at large batches its
  // memory grows faster than ResNet101's despite similar activations.
  const auto k80 = device_k80();
  const auto alex = paper_alexnet();
  const auto rn = paper_resnet101();
  const double alex_growth = training_memory_bytes(alex, k80, 512) -
                             training_memory_bytes(alex, k80, 16);
  const double rn_growth = training_memory_bytes(rn, k80, 512) -
                           training_memory_bytes(rn, k80, 16);
  EXPECT_GT(alex_growth, 0.2 * rn_growth);
}

TEST(PaperProfiles, UtilizationRampPenalizesSmallBatches) {
  // Per-sample time should fall as batch grows (better occupancy).
  const auto k80 = device_k80();
  const auto model = paper_resnet101();
  const double per16 = compute_time_s(model, k80, 16) / 16.0;
  const double per256 = compute_time_s(model, k80, 256) / 256.0;
  EXPECT_GT(per16, per256);
}

}  // namespace
}  // namespace selsync
