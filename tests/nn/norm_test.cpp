#include "nn/norm.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace selsync {
namespace {

TEST(LayerNorm, NormalizesRowsToZeroMeanUnitVar) {
  LayerNorm ln(8);
  Rng rng(1);
  const Tensor x = Tensor::randn({4, 8}, rng, 5.f, 3.f);
  const Tensor y = ln.forward(x);
  for (size_t r = 0; r < 4; ++r) {
    double mean = 0, var = 0;
    for (size_t c = 0; c < 8; ++c) mean += y.at(r, c);
    mean /= 8;
    for (size_t c = 0; c < 8; ++c) {
      const double d = y.at(r, c) - mean;
      var += d * d;
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNorm, GammaBetaAffineApplied) {
  LayerNorm ln(2);
  std::vector<Param*> params;
  ln.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  params[0]->value = Tensor({2}, {2.f, 2.f});   // gamma
  params[1]->value = Tensor({2}, {10.f, 10.f});  // beta
  const Tensor x({1, 2}, {-1.f, 1.f});
  const Tensor y = ln.forward(x);
  // normalized x = [-1, 1]; y = 2 * xhat + 10
  EXPECT_NEAR(y[0], 8.f, 1e-3);
  EXPECT_NEAR(y[1], 12.f, 1e-3);
}

TEST(LayerNorm, WorksOnFoldedSequenceRows) {
  // Rank-2 {B*T, D} treated as independent rows.
  LayerNorm ln(4);
  Rng rng(2);
  const Tensor x = Tensor::randn({6, 4}, rng);
  EXPECT_NO_THROW(ln.forward(x));
}

TEST(LayerNorm, RejectsIndivisibleInput) {
  LayerNorm ln(5);
  const Tensor x = Tensor::zeros({2, 4});
  EXPECT_THROW(ln.forward(x), std::invalid_argument);
}

TEST(LayerNorm, BackwardRowsSumToZeroWhenGammaUniform) {
  // With gamma=1, dL/dx of a layernorm row is orthogonal to the constant
  // vector: sum_j dx_j = 0.
  LayerNorm ln(6);
  Rng rng(3);
  const Tensor x = Tensor::randn({3, 6}, rng);
  (void)ln.forward(x);
  const Tensor g = Tensor::randn({3, 6}, rng);
  const Tensor gx = ln.backward(g);
  for (size_t r = 0; r < 3; ++r) {
    double sum = 0;
    for (size_t c = 0; c < 6; ++c) sum += gx.at(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-4);
  }
}

}  // namespace
}  // namespace selsync
