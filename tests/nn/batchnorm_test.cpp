#include "nn/batchnorm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/nn/gradcheck.hpp"

namespace selsync {
namespace {

TEST(BatchNorm, NormalizesColumnsInTraining) {
  BatchNorm1d bn(3);
  Rng rng(1);
  const Tensor x = Tensor::randn({16, 3}, rng, 4.f, 2.f);
  const Tensor y = bn.forward(x);
  for (size_t j = 0; j < 3; ++j) {
    double mean = 0, var = 0;
    for (size_t r = 0; r < 16; ++r) mean += y.at(r, j);
    mean /= 16;
    for (size_t r = 0; r < 16; ++r) {
      const double d = y.at(r, j) - mean;
      var += d * d;
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, GammaBetaApplied) {
  BatchNorm1d bn(1);
  std::vector<Param*> params;
  bn.collect_params(params);
  params[0]->value[0] = 3.f;   // gamma
  params[1]->value[0] = -1.f;  // beta
  const Tensor x({4, 1}, {0.f, 1.f, 2.f, 3.f});
  const Tensor y = bn.forward(x);
  // normalized column has mean 0, so scaled outputs average to beta.
  float mean = 0;
  for (size_t r = 0; r < 4; ++r) mean += y.at(r, 0);
  EXPECT_NEAR(mean / 4, -1.f, 1e-5);
}

TEST(BatchNorm, RunningStatsConvergeToDataMoments) {
  BatchNorm1d bn(2, "bn", 1e-5f, 0.2f);
  Rng rng(2);
  for (int i = 0; i < 200; ++i)
    (void)bn.forward(Tensor::randn({32, 2}, rng, 5.f, 3.f));
  EXPECT_NEAR(bn.running_mean()[0], 5.f, 0.5f);
  EXPECT_NEAR(bn.running_var()[1], 9.f, 1.5f);
}

TEST(BatchNorm, EvalModeUsesRunningStats) {
  BatchNorm1d bn(1, "bn", 1e-5f, 1.0f);  // momentum 1: adopt last batch
  const Tensor train_batch({4, 1}, {2.f, 4.f, 6.f, 8.f});  // mean 5, var 5
  (void)bn.forward(train_batch);
  bn.set_training(false);
  const Tensor x({1, 1}, {5.f});
  const Tensor y = bn.forward(x);
  EXPECT_NEAR(y[0], 0.f, 1e-3);  // (5 - 5)/sqrt(5) = 0
  // Eval output is deterministic regardless of batch composition.
  const Tensor x2({2, 1}, {5.f, 100.f});
  EXPECT_NEAR(bn.forward(x2)[0], y[0], 1e-6);
}

TEST(BatchNorm, RejectsBadShapes) {
  BatchNorm1d bn(4);
  EXPECT_THROW(bn.forward(Tensor::zeros({2, 3})), std::invalid_argument);
  EXPECT_THROW(bn.forward(Tensor::zeros({1, 4})), std::invalid_argument);
}

TEST(BatchNorm, GradCheck) {
  Rng rng(3);
  BatchNorm1d bn(5);
  testing::GradCheckOptions opt;
  opt.tolerance = 3e-2f;
  testing::check_module_gradients(bn, Tensor::randn({6, 5}, rng), opt);
}

TEST(BatchNorm, BuffersAreNotParameters) {
  // The DDP-relevant property: running stats must not appear in the flat
  // parameter payload (they are local state, like PyTorch buffers).
  BatchNorm1d bn(4);
  std::vector<Param*> params;
  bn.collect_params(params);
  size_t total = 0;
  for (const Param* p : params) total += p->value.size();
  EXPECT_EQ(total, 8u);  // gamma + beta only, not mean/var
}

}  // namespace
}  // namespace selsync
