// Shared finite-difference gradient checker for Module implementations.
//
// Objective: L = sum(forward(x) ⊙ R) for a fixed random projection R, so
// dL/dOutput = R. backward(R) must then match central differences both for
// the input gradient and every parameter gradient.
#pragma once

#include <gtest/gtest.h>

#include "nn/module.hpp"

namespace selsync::testing {

struct GradCheckOptions {
  float eps = 1e-2f;
  float tolerance = 2e-2f;
  size_t max_coords = 24;  // coordinates probed per tensor
  uint64_t seed = 99;
};

inline void check_module_gradients(Module& module, const Tensor& input,
                                   const GradCheckOptions& opt = {}) {
  Rng rng(opt.seed);

  Tensor out = module.forward(input);
  Tensor probe = Tensor::randn(out.shape(), rng);

  auto objective = [&](const Tensor& x) {
    const Tensor y = module.forward(x);
    double acc = 0.0;
    for (size_t i = 0; i < y.size(); ++i)
      acc += static_cast<double>(y[i]) * probe[i];
    return acc;
  };

  std::vector<Param*> params;
  module.collect_params(params);
  zero_grads(params);
  // Forward once more so module caches match the unperturbed input, then
  // backprop the probe.
  (void)module.forward(input);
  const Tensor grad_in = module.backward(probe);
  ASSERT_TRUE(grad_in.same_shape(input));

  // Input gradient.
  const size_t in_stride = std::max<size_t>(1, input.size() / opt.max_coords);
  for (size_t i = 0; i < input.size(); i += in_stride) {
    Tensor xp = input, xm = input;
    xp[i] += opt.eps;
    xm[i] -= opt.eps;
    const double fd = (objective(xp) - objective(xm)) / (2.0 * opt.eps);
    EXPECT_NEAR(grad_in[i], fd, opt.tolerance)
        << module.name() << " input grad at " << i;
  }

  // Parameter gradients.
  for (Param* p : params) {
    const size_t stride = std::max<size_t>(1, p->value.size() / opt.max_coords);
    for (size_t i = 0; i < p->value.size(); i += stride) {
      const float saved = p->value[i];
      p->value[i] = saved + opt.eps;
      const double up = objective(input);
      p->value[i] = saved - opt.eps;
      const double down = objective(input);
      p->value[i] = saved;
      const double fd = (up - down) / (2.0 * opt.eps);
      EXPECT_NEAR(p->grad[i], fd, opt.tolerance)
          << module.name() << " param " << p->name << " grad at " << i;
    }
  }
}

}  // namespace selsync::testing
