#include "nn/linear.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace selsync {
namespace {

TEST(Linear, ForwardShape) {
  Rng rng(1);
  Linear layer(8, 5, rng);
  const Tensor x = Tensor::randn({3, 8}, rng);
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y.dim(0), 3u);
  EXPECT_EQ(y.dim(1), 5u);
}

TEST(Linear, ForwardMatchesManualComputation) {
  Rng rng(2);
  Linear layer(2, 2, rng);
  layer.weight().value = Tensor({2, 2}, {1, 2, 3, 4});
  layer.bias().value = Tensor({2}, {0.5f, -0.5f});
  const Tensor x({1, 2}, {1, 1});
  const Tensor y = layer.forward(x);
  // y = x W^T + b = [1+2, 3+4] + [0.5, -0.5]
  EXPECT_FLOAT_EQ(y[0], 3.5f);
  EXPECT_FLOAT_EQ(y[1], 6.5f);
}

TEST(Linear, NoBiasVariant) {
  Rng rng(3);
  Linear layer(4, 3, rng, /*bias=*/false);
  std::vector<Param*> params;
  layer.collect_params(params);
  EXPECT_EQ(params.size(), 1u);
  const Tensor x = Tensor::zeros({2, 4});
  const Tensor y = layer.forward(x);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], 0.f);
}

TEST(Linear, CollectParamsExposesWeightAndBias) {
  Rng rng(4);
  Linear layer(4, 3, rng, true, "fc");
  std::vector<Param*> params;
  layer.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->name, "fc.weight");
  EXPECT_EQ(params[1]->name, "fc.bias");
  EXPECT_EQ(params[0]->value.size(), 12u);
  EXPECT_EQ(params[1]->value.size(), 3u);
}

TEST(Linear, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(5);
  Linear layer(3, 2, rng);
  const Tensor x = Tensor::randn({2, 3}, rng);
  const Tensor g = Tensor::full({2, 2}, 1.f);
  (void)layer.forward(x);
  (void)layer.backward(g);
  const Tensor once = layer.weight().grad;
  (void)layer.forward(x);
  (void)layer.backward(g);
  for (size_t i = 0; i < once.size(); ++i)
    EXPECT_NEAR(layer.weight().grad[i], 2.f * once[i], 1e-5);
}

TEST(Linear, BiasGradEqualsColumnSumsOfUpstream) {
  Rng rng(6);
  Linear layer(3, 2, rng);
  const Tensor x = Tensor::randn({4, 3}, rng);
  Tensor g({4, 2});
  for (size_t i = 0; i < g.size(); ++i) g[i] = static_cast<float>(i);
  (void)layer.forward(x);
  (void)layer.backward(g);
  EXPECT_FLOAT_EQ(layer.bias().grad[0], 0 + 2 + 4 + 6);
  EXPECT_FLOAT_EQ(layer.bias().grad[1], 1 + 3 + 5 + 7);
}

}  // namespace
}  // namespace selsync
