// Model-zoo factories: each family builds, trains a step, and reduces loss.
#include "nn/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace selsync {
namespace {

ClassifierConfig flat_cfg() {
  ClassifierConfig cfg;
  cfg.input_dim = 16;
  cfg.classes = 4;
  cfg.hidden = 16;
  cfg.resnet_blocks = 2;
  return cfg;
}

ClassifierConfig image_cfg() {
  ClassifierConfig cfg;
  cfg.channels = 3;
  cfg.height = 8;
  cfg.width = 8;
  cfg.classes = 4;
  cfg.hidden = 16;
  return cfg;
}

Batch flat_batch() {
  Rng rng(5);
  Batch b;
  b.x = Tensor::randn({6, 16}, rng);
  b.targets = {0, 1, 2, 3, 0, 1};
  return b;
}

Batch image_batch() {
  Rng rng(6);
  Batch b;
  b.x = Tensor::randn({4, 3, 8, 8}, rng);
  b.targets = {0, 1, 2, 3};
  return b;
}

class ModelFamilyTest
    : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelFamilyTest, BuildsAndLearnsOnFixedBatch) {
  const ModelKind kind = GetParam();
  const bool image = kind != ModelKind::kResNetMLP;
  auto model = make_classifier(kind, image ? image_cfg() : flat_cfg(), 11);
  const Batch batch = image ? image_batch() : flat_batch();

  const float first = model->train_step(batch);
  // Memorize the fixed batch over a few SGD steps.
  float last = first;
  for (int i = 0; i < 30; ++i) {
    model->apply_sgd(0.05f);
    last = model->train_step(batch);
  }
  EXPECT_LT(last, first * 0.8f) << model_kind_name(kind);
}

TEST_P(ModelFamilyTest, ReplicasFromSameSeedAreIdentical) {
  const ModelKind kind = GetParam();
  const bool image = kind != ModelKind::kResNetMLP;
  const ClassifierConfig cfg = image ? image_cfg() : flat_cfg();
  auto a = make_classifier(kind, cfg, 3);
  auto b = make_classifier(kind, cfg, 3);
  EXPECT_EQ(a->get_flat_params(), b->get_flat_params());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ModelFamilyTest,
                         ::testing::Values(ModelKind::kResNetMLP,
                                           ModelKind::kVGGNet,
                                           ModelKind::kAlexNetLike),
                         [](const auto& param_info) {
                           return model_kind_name(param_info.param);
                         });

TEST(ModelZoo, KindNames) {
  EXPECT_STREQ(model_kind_name(ModelKind::kResNetMLP), "ResNetMLP");
  EXPECT_STREQ(model_kind_name(ModelKind::kVGGNet), "VGGNet");
  EXPECT_STREQ(model_kind_name(ModelKind::kAlexNetLike), "AlexNetLike");
  EXPECT_STREQ(model_kind_name(ModelKind::kTransformerLM), "TransformerLM");
}

TEST(ModelZoo, ClassifierFactoryRejectsTransformer) {
  EXPECT_THROW(
      make_classifier(ModelKind::kTransformerLM, flat_cfg(), 1),
      std::invalid_argument);
}

TEST(ModelZoo, VggRequiresPoolableDims) {
  ClassifierConfig cfg = image_cfg();
  cfg.height = 6;  // not a multiple of 4
  EXPECT_THROW(make_vggnet(cfg, 1), std::invalid_argument);
}

TEST(ModelZoo, ResnetMlpDepthScalesParamCount) {
  ClassifierConfig small = flat_cfg();
  small.resnet_blocks = 1;
  ClassifierConfig big = flat_cfg();
  big.resnet_blocks = 4;
  auto a = make_resnet_mlp(small, 1);
  auto b = make_resnet_mlp(big, 1);
  EXPECT_GT(b->param_count(), a->param_count());
}

TEST(ModelZoo, ConvResNetBuildsAndLearns) {
  ClassifierConfig cfg = image_cfg();
  cfg.resnet_blocks = 2;
  auto model = make_resnet_conv(cfg, 5);
  EXPECT_GT(model->param_count(), 0u);
  const Batch batch = image_batch();
  const float first = model->train_step(batch);
  float last = first;
  for (int i = 0; i < 25; ++i) {
    model->apply_sgd(0.05f);
    last = model->train_step(batch);
  }
  EXPECT_LT(last, first * 0.9f);
}

TEST(ModelZoo, ConvResNetDeeperThanStemOnly) {
  ClassifierConfig a = image_cfg();
  a.resnet_blocks = 1;
  ClassifierConfig b = image_cfg();
  b.resnet_blocks = 3;
  EXPECT_GT(make_resnet_conv(b, 1)->param_count(),
            make_resnet_conv(a, 1)->param_count());
}

TEST(ModelZoo, ConvResNetValidatesDims) {
  ClassifierConfig cfg = image_cfg();
  cfg.height = 7;
  EXPECT_THROW(make_resnet_conv(cfg, 1), std::invalid_argument);
}

TEST(ModelZoo, ResidualPathActuallySkips) {
  // Zeroing all residual-block params must leave the network computing
  // stem+head only (the skip path), not a constant.
  ClassifierConfig cfg = flat_cfg();
  auto model = make_resnet_mlp(cfg, 1);
  Batch b = flat_batch();
  const float loss = model->train_step(b);
  EXPECT_TRUE(std::isfinite(loss));
}

}  // namespace
}  // namespace selsync
