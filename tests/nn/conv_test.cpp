#include "nn/conv.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

TEST(Conv2dModule, ForwardShapeWithPadding) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, rng);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 8u);
  EXPECT_EQ(y.dim(2), 8u);
  EXPECT_EQ(y.dim(3), 8u);
}

TEST(Conv2dModule, ParamsAreWeightAndBias) {
  Rng rng(2);
  Conv2d conv(2, 4, 3, 1, rng, "c1");
  std::vector<Param*> params;
  conv.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->value.size(), 4u * 2 * 3 * 3);
  EXPECT_EQ(params[1]->value.size(), 4u);
}

TEST(Conv2dModule, BackwardAccumulates) {
  Rng rng(3);
  Conv2d conv(1, 2, 3, 1, rng);
  const Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  const Tensor y = conv.forward(x);
  const Tensor g = Tensor::full(y.shape(), 1.f);
  (void)conv.backward(g);
  std::vector<Param*> params;
  conv.collect_params(params);
  const Tensor after_one = params[0]->grad;
  (void)conv.forward(x);
  (void)conv.backward(g);
  for (size_t i = 0; i < after_one.size(); ++i)
    EXPECT_NEAR(params[0]->grad[i], 2.f * after_one[i], 1e-4);
}

TEST(MaxPool2x2Module, ForwardBackwardRoundTrip) {
  MaxPool2x2 pool;
  const Tensor x({1, 1, 4, 4}, {1, 2, 3, 4,    //
                                5, 6, 7, 8,    //
                                9, 10, 11, 12,  //
                                13, 14, 15, 16});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_FLOAT_EQ(y[0], 6.f);
  EXPECT_FLOAT_EQ(y[3], 16.f);

  const Tensor g({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[5], 1.f);    // position of 6
  EXPECT_FLOAT_EQ(gx[15], 4.f);   // position of 16
  EXPECT_FLOAT_EQ(gx[0], 0.f);
}

TEST(FlattenModule, ForwardAndBackwardPreserveData) {
  Flatten flatten;
  Rng rng(4);
  const Tensor x = Tensor::randn({2, 3, 2, 2}, rng);
  const Tensor y = flatten.forward(x);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 12u);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);

  const Tensor gx = flatten.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

}  // namespace
}  // namespace selsync
