#include "nn/eval_report.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"

namespace selsync {
namespace {

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(ConfusionMatrix, PrecisionRecallF1) {
  // Class 0: predicted 3 times (2 correct), actually appears twice.
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 0);
  cm.add(1, 1);
  EXPECT_DOUBLE_EQ(cm.precision(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 1.0);
  const double p = 2.0 / 3.0, r = 1.0;
  EXPECT_DOUBLE_EQ(cm.f1(0), 2 * p * r / (p + r));
}

TEST(ConfusionMatrix, EmptyDenominatorsAreZero) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);  // never predicted
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);     // never appears
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
  EXPECT_EQ(cm.never_predicted_classes(), 2u);
}

TEST(ConfusionMatrix, Validation) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, -1), std::out_of_range);
}

TEST(ConfusionMatrix, ToStringContainsSummary) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 1);
  const std::string s = cm.to_string();
  EXPECT_NE(s.find("accuracy 1.000"), std::string::npos);
}

TEST(EvaluateConfusion, MatchesModelAccuracy) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 256;
  cfg.test_samples = 128;
  cfg.classes = 5;
  cfg.feature_dim = 16;
  const auto data = make_synthetic_classification(cfg);
  ClassifierConfig mc;
  mc.input_dim = 16;
  mc.classes = 5;
  mc.hidden = 16;
  mc.resnet_blocks = 1;
  auto model = make_resnet_mlp(mc, 1);

  const ConfusionMatrix cm = evaluate_confusion(*model, *data.test, 32);
  EXPECT_EQ(cm.total(), data.test->size());
  const EvalStats stats = evaluate_dataset(*model, *data.test, 32);
  EXPECT_NEAR(cm.accuracy(), stats.top1_accuracy(), 1e-9);
}

TEST(EvaluateConfusion, RejectsUnlabelledOrNonClassifier) {
  SequenceDataset lm({0, 1, 2, 3, 4, 5, 6, 7, 8}, 10, 4);
  ClassifierConfig mc;
  mc.input_dim = 16;
  mc.classes = 5;
  mc.hidden = 16;
  mc.resnet_blocks = 1;
  auto model = make_resnet_mlp(mc, 1);
  EXPECT_THROW(evaluate_confusion(*model, lm), std::invalid_argument);
}

}  // namespace
}  // namespace selsync
