#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace selsync {
namespace {

TEST(CrossEntropy, UniformLogitsGiveLogK) {
  const Tensor logits = Tensor::zeros({2, 4});
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.f), 1e-5);
}

TEST(CrossEntropy, ConfidentCorrectPredictionHasLowLoss) {
  Tensor logits({1, 3});
  logits[1] = 20.f;  // class 1 dominates
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_LT(r.loss, 1e-4);
}

TEST(CrossEntropy, ConfidentWrongPredictionHasHighLoss) {
  Tensor logits({1, 3});
  logits[1] = 20.f;
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_GT(r.loss, 10.f);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHotOverBatch) {
  const Tensor logits = Tensor::zeros({2, 2});
  const LossResult r = softmax_cross_entropy(logits, {0, 1});
  // softmax = 0.5 everywhere; grad = (0.5 - onehot)/B with B=2.
  EXPECT_NEAR(r.grad_logits.at(0, 0), (0.5f - 1.f) / 2, 1e-6);
  EXPECT_NEAR(r.grad_logits.at(0, 1), 0.5f / 2, 1e-6);
  EXPECT_NEAR(r.grad_logits.at(1, 1), (0.5f - 1.f) / 2, 1e-6);
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  Rng rng(1);
  const Tensor logits = Tensor::randn({4, 7}, rng, 0.f, 2.f);
  const LossResult r = softmax_cross_entropy(logits, {1, 3, 0, 6});
  for (size_t i = 0; i < 4; ++i) {
    float sum = 0;
    for (size_t j = 0; j < 7; ++j) sum += r.grad_logits.at(i, j);
    EXPECT_NEAR(sum, 0.f, 1e-5);
  }
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(2);
  const Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<int> targets{0, 2, 4};
  const LossResult r = softmax_cross_entropy(logits, targets);
  const float eps = 1e-3f;
  for (size_t i = 0; i < logits.size(); i += 2) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float fd = (softmax_cross_entropy(lp, targets).loss -
                      softmax_cross_entropy(lm, targets).loss) /
                     (2 * eps);
    EXPECT_NEAR(r.grad_logits[i], fd, 1e-3);
  }
}

TEST(CrossEntropy, RejectsBadTargets) {
  const Tensor logits = Tensor::zeros({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), std::out_of_range);
  EXPECT_THROW(softmax_cross_entropy(logits, {-1}), std::out_of_range);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(CrossEntropy, LabelSmoothingZeroMatchesPlain) {
  Rng rng(4);
  const Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<int> targets{0, 2, 4};
  const LossResult a = softmax_cross_entropy(logits, targets);
  const LossResult b = softmax_cross_entropy(logits, targets, 0.f);
  EXPECT_FLOAT_EQ(a.loss, b.loss);
}

TEST(CrossEntropy, LabelSmoothingRaisesLossOfPerfectPrediction) {
  Tensor logits({1, 4});
  logits[1] = 30.f;  // near-certain correct prediction
  const float plain = softmax_cross_entropy(logits, {1}).loss;
  const float smoothed = softmax_cross_entropy(logits, {1}, 0.1f).loss;
  EXPECT_LT(plain, 1e-4);
  EXPECT_GT(smoothed, plain + 0.1f);  // over-confidence now penalized
}

TEST(CrossEntropy, LabelSmoothingGradientMatchesFiniteDifference) {
  Rng rng(5);
  const Tensor logits = Tensor::randn({2, 4}, rng);
  const std::vector<int> targets{1, 3};
  const float s = 0.2f;
  const LossResult r = softmax_cross_entropy(logits, targets, s);
  const float eps = 1e-3f;
  for (size_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float fd = (softmax_cross_entropy(lp, targets, s).loss -
                      softmax_cross_entropy(lm, targets, s).loss) /
                     (2 * eps);
    EXPECT_NEAR(r.grad_logits[i], fd, 1e-3);
  }
}

TEST(CrossEntropy, RejectsBadSmoothing) {
  const Tensor logits = Tensor::zeros({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0}, 1.0f),
               std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0}, -0.1f),
               std::invalid_argument);
}

TEST(Accuracy, Top1CountsArgmaxHits) {
  const Tensor logits({2, 3}, {1, 5, 2,  //
                               4, 0, 1});
  EXPECT_EQ(count_top1(logits, {1, 0}), 2u);
  EXPECT_EQ(count_top1(logits, {0, 0}), 1u);
}

TEST(Accuracy, TopKIncludesLowerRanks) {
  const Tensor logits({1, 5}, {5, 4, 3, 2, 1});
  EXPECT_EQ(count_topk(logits, {2}, 1), 0u);
  EXPECT_EQ(count_topk(logits, {2}, 3), 1u);
  EXPECT_EQ(count_topk(logits, {4}, 5), 1u);
}

TEST(Accuracy, Top5OnWideLogits) {
  Rng rng(3);
  Tensor logits = Tensor::randn({1, 100}, rng);
  // Force target into exactly 5th place.
  for (int i = 0; i < 4; ++i) logits[i] = 50.f + i;
  logits[99] = 49.f;  // target: 4 strictly better scores exist
  EXPECT_EQ(count_topk(logits, {99}, 5), 1u);
  EXPECT_EQ(count_topk(logits, {99}, 4), 0u);
}

}  // namespace
}  // namespace selsync
