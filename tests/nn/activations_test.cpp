#include "nn/activations.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace selsync {
namespace {

TEST(ReLU, ClampsNegativesForwardAndBackward) {
  ReLU relu;
  const Tensor x({4}, {-2, -0.5f, 0.5f, 2});
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.f);
  EXPECT_FLOAT_EQ(y[1], 0.f);
  EXPECT_FLOAT_EQ(y[2], 0.5f);
  EXPECT_FLOAT_EQ(y[3], 2.f);

  const Tensor g = Tensor::full({4}, 1.f);
  const Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.f);
  EXPECT_FLOAT_EQ(gx[2], 1.f);
}

TEST(ReLU, ZeroInputHasZeroGradient) {
  ReLU relu;
  const Tensor x({1}, {0.f});
  (void)relu.forward(x);
  const Tensor gx = relu.backward(Tensor::full({1}, 1.f));
  EXPECT_FLOAT_EQ(gx[0], 0.f);
}

TEST(Tanh, MatchesStdTanh) {
  Tanh tanh_layer;
  const Tensor x({3}, {-1.f, 0.f, 1.f});
  const Tensor y = tanh_layer.forward(x);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], std::tanh(x[i]), 1e-6);
}

TEST(Tanh, DerivativeIsOneMinusSquare) {
  Tanh tanh_layer;
  const Tensor x({1}, {0.7f});
  const Tensor y = tanh_layer.forward(x);
  const Tensor gx = tanh_layer.backward(Tensor::full({1}, 1.f));
  EXPECT_NEAR(gx[0], 1.f - y[0] * y[0], 1e-6);
}

TEST(GELU, KnownValues) {
  GELU gelu;
  const Tensor x({3}, {-10.f, 0.f, 10.f});
  const Tensor y = gelu.forward(x);
  EXPECT_NEAR(y[0], 0.f, 1e-4);   // far negative saturates to 0
  EXPECT_NEAR(y[1], 0.f, 1e-6);   // gelu(0) = 0
  EXPECT_NEAR(y[2], 10.f, 1e-4);  // far positive is identity
}

TEST(GELU, GradientMatchesFiniteDifference) {
  GELU gelu;
  for (float v : {-1.5f, -0.3f, 0.2f, 1.1f}) {
    const Tensor x({1}, {v});
    (void)gelu.forward(x);
    const Tensor gx = gelu.backward(Tensor::full({1}, 1.f));
    const float eps = 1e-3f;
    GELU probe;
    const float up = probe.forward(Tensor({1}, {v + eps}))[0];
    const float down = probe.forward(Tensor({1}, {v - eps}))[0];
    EXPECT_NEAR(gx[0], (up - down) / (2 * eps), 1e-3) << "at x=" << v;
  }
}

TEST(Activations, UpstreamGradientScales) {
  ReLU relu;
  const Tensor x({2}, {1.f, 2.f});
  (void)relu.forward(x);
  const Tensor gx = relu.backward(Tensor({2}, {3.f, -4.f}));
  EXPECT_FLOAT_EQ(gx[0], 3.f);
  EXPECT_FLOAT_EQ(gx[1], -4.f);
}

}  // namespace
}  // namespace selsync
