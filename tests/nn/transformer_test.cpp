#include "nn/transformer_lm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/embedding.hpp"

namespace selsync {
namespace {

TransformerConfig tiny_config() {
  TransformerConfig cfg;
  cfg.vocab = 16;
  cfg.model_dim = 8;
  cfg.ff_dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.seq_len = 4;
  cfg.dropout = 0.0f;  // deterministic for tests
  return cfg;
}

Batch lm_batch(const TransformerConfig& cfg, uint64_t seed = 3) {
  Rng rng(seed);
  Batch b;
  const size_t n = 2 * cfg.seq_len;  // B=2
  for (size_t i = 0; i < n; ++i) {
    b.tokens.push_back(static_cast<int>(rng.next_below(cfg.vocab)));
    b.targets.push_back(static_cast<int>(rng.next_below(cfg.vocab)));
  }
  return b;
}

TEST(TransformerLM, InitialLossNearLogVocab) {
  // An untrained model should sit in the vicinity of the uniform-prediction
  // loss log(V): clearly above half of it and below twice it.
  TransformerLM model(tiny_config(), 1);
  const Batch b = lm_batch(tiny_config());
  const float loss = model.train_step(b);
  EXPECT_GT(loss, 0.5f * std::log(16.f));
  EXPECT_LT(loss, 2.0f * std::log(16.f));
}

TEST(TransformerLM, MemorizesFixedBatch) {
  TransformerLM model(tiny_config(), 2);
  const Batch b = lm_batch(tiny_config());
  const float first = model.train_step(b);
  float last = first;
  for (int i = 0; i < 60; ++i) {
    model.apply_sgd(0.1f);
    last = model.train_step(b);
  }
  EXPECT_LT(last, first * 0.7f);
}

TEST(TransformerLM, IsLanguageModel) {
  TransformerLM model(tiny_config(), 1);
  EXPECT_TRUE(model.is_language_model());
}

TEST(TransformerLM, ReplicasFromSameSeedIdentical) {
  TransformerLM a(tiny_config(), 9), b(tiny_config(), 9);
  EXPECT_EQ(a.get_flat_params(), b.get_flat_params());
}

TEST(TransformerLM, ParamCountMatchesArchitecture) {
  const TransformerConfig cfg = tiny_config();
  TransformerLM model(cfg, 1);
  // embedding(16x8) + 2 layers x (2 layernorms(2*8) + qkv(8x24+24) +
  // proj(8x8+8) + ff1(8x16+16) + ff2(16x8+8)) + decoder(8x16+16).
  const size_t expected =
      16 * 8 +
      2 * (2 * (8 + 8) + (8 * 24 + 24) + (8 * 8 + 8) + (8 * 16 + 16) +
           (16 * 8 + 8)) +
      (8 * 16 + 16);
  EXPECT_EQ(model.param_count(), expected);
}

TEST(TransformerLM, EvalPerplexityIsExpLoss) {
  TransformerLM model(tiny_config(), 1);
  const Batch b = lm_batch(tiny_config());
  const EvalStats stats = model.eval_batch(b);
  EXPECT_NEAR(stats.perplexity(), std::exp(stats.mean_loss()), 1e-6);
  EXPECT_EQ(stats.examples, b.targets.size());
}

TEST(TransformerLM, DropoutChangesTrainButNotEval) {
  TransformerConfig cfg = tiny_config();
  cfg.dropout = 0.5f;
  TransformerLM model(cfg, 4);
  const Batch b = lm_batch(cfg);
  // Two eval passes are deterministic.
  const EvalStats e1 = model.eval_batch(b);
  const EvalStats e2 = model.eval_batch(b);
  EXPECT_DOUBLE_EQ(e1.loss_sum, e2.loss_sum);
  // Two train passes differ (different dropout masks).
  const float t1 = model.train_step(b);
  const float t2 = model.train_step(b);
  EXPECT_NE(t1, t2);
}

TEST(Embedding, LookupReturnsTableRows) {
  Rng rng(1);
  Embedding emb(10, 4, rng);
  const Tensor out = emb.forward({3, 7});
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(out.at(0, d), emb.table().value.at(3, d));
    EXPECT_EQ(out.at(1, d), emb.table().value.at(7, d));
  }
}

TEST(Embedding, BackwardAccumulatesPerToken) {
  Rng rng(2);
  Embedding emb(6, 3, rng);
  (void)emb.forward({2, 2, 5});  // token 2 used twice
  Tensor g({3, 3});
  g.fill(1.f);
  emb.backward(g);
  EXPECT_FLOAT_EQ(emb.table().grad.at(2, 0), 2.f);
  EXPECT_FLOAT_EQ(emb.table().grad.at(5, 0), 1.f);
  EXPECT_FLOAT_EQ(emb.table().grad.at(0, 0), 0.f);
}

TEST(Embedding, RejectsOutOfRangeToken) {
  Rng rng(3);
  Embedding emb(4, 2, rng);
  EXPECT_THROW(emb.forward({4}), std::out_of_range);
  EXPECT_THROW(emb.forward({-1}), std::out_of_range);
}

TEST(PositionalEncoding, PeriodicInSeqLen) {
  Tensor a = Tensor::zeros({8, 4});  // two sequences of length 4
  add_positional_encoding(a, 4);
  for (size_t d = 0; d < 4; ++d)
    EXPECT_FLOAT_EQ(a.at(1, d), a.at(5, d));  // same position, same code
  bool differs = false;
  for (size_t d = 0; d < 4; ++d)
    if (a.at(0, d) != a.at(1, d)) differs = true;
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace selsync
