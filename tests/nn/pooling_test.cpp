#include <gtest/gtest.h>

#include "nn/conv.hpp"
#include "tests/nn/gradcheck.hpp"

namespace selsync {
namespace {

TEST(AvgPool, AveragesWindows) {
  AvgPool2x2 pool;
  const Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(AvgPool, BackwardSpreadsGradientEvenly) {
  AvgPool2x2 pool;
  const Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  (void)pool.forward(x);
  const Tensor gx = pool.backward(Tensor({1, 1, 1, 1}, {4.f}));
  for (size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gx[i], 1.f);
}

TEST(AvgPool, HalvesSpatialDims) {
  Rng rng(1);
  AvgPool2x2 pool;
  const Tensor y = pool.forward(Tensor::randn({2, 3, 8, 6}, rng));
  EXPECT_EQ(y.dim(2), 4u);
  EXPECT_EQ(y.dim(3), 3u);
}

TEST(AvgPool, GradCheck) {
  Rng rng(2);
  AvgPool2x2 pool;
  testing::check_module_gradients(pool, Tensor::randn({2, 2, 4, 4}, rng));
}

TEST(GlobalAvgPool, ReducesToPerChannelMeans) {
  GlobalAvgPool pool;
  const Tensor x({1, 2, 2, 2}, {1, 2, 3, 4,  //
                                10, 20, 30, 40});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.dim(0), 1u);
  ASSERT_EQ(y.dim(1), 2u);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 25.f);
}

TEST(GlobalAvgPool, GradCheck) {
  Rng rng(3);
  GlobalAvgPool pool;
  testing::check_module_gradients(pool, Tensor::randn({2, 3, 4, 4}, rng));
}

}  // namespace
}  // namespace selsync
