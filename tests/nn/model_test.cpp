// Model interface: flat param/grad packing, the payload every distributed
// strategy exchanges.
#include "nn/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/classifier.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"

namespace selsync {
namespace {

std::unique_ptr<Model> small_model(uint64_t seed = 1) {
  ClassifierConfig cfg;
  cfg.input_dim = 8;
  cfg.classes = 3;
  cfg.hidden = 8;
  cfg.resnet_blocks = 1;
  return make_resnet_mlp(cfg, seed);
}

Batch small_batch(uint64_t seed = 2) {
  Rng rng(seed);
  Batch b;
  b.x = Tensor::randn({4, 8}, rng);
  b.targets = {0, 1, 2, 0};
  return b;
}

TEST(Model, ParamCountStableAndPositive) {
  auto m = small_model();
  const size_t n = m->param_count();
  EXPECT_GT(n, 0u);
  EXPECT_EQ(m->param_count(), n);
  EXPECT_EQ(m->param_bytes(), n * sizeof(float));
}

TEST(Model, FlatParamsRoundTrip) {
  auto m = small_model();
  std::vector<float> flat = m->get_flat_params();
  for (auto& v : flat) v += 1.f;
  m->set_flat_params(flat);
  EXPECT_EQ(m->get_flat_params(), flat);
}

TEST(Model, SetFlatParamsRejectsWrongSize) {
  auto m = small_model();
  std::vector<float> tiny(3, 0.f);
  EXPECT_THROW(m->set_flat_params(tiny), std::invalid_argument);
}

TEST(Model, SameSeedGivesIdenticalReplicas) {
  auto a = small_model(7);
  auto b = small_model(7);
  EXPECT_EQ(a->get_flat_params(), b->get_flat_params());
}

TEST(Model, DifferentSeedsGiveDifferentReplicas) {
  auto a = small_model(7);
  auto b = small_model(8);
  EXPECT_NE(a->get_flat_params(), b->get_flat_params());
}

TEST(Model, TrainStepProducesNonZeroGrads) {
  auto m = small_model();
  const float loss = m->train_step(small_batch());
  EXPECT_GT(loss, 0.f);
  const auto grads = m->get_flat_grads();
  double sq = 0;
  for (float g : grads) sq += g * g;
  EXPECT_GT(sq, 0.0);
}

TEST(Model, TrainStepIsDeterministic) {
  auto a = small_model(3);
  auto b = small_model(3);
  const Batch batch = small_batch();
  EXPECT_EQ(a->train_step(batch), b->train_step(batch));
  EXPECT_EQ(a->get_flat_grads(), b->get_flat_grads());
}

TEST(Model, ZeroGradClears) {
  auto m = small_model();
  m->train_step(small_batch());
  m->zero_grad();
  for (float g : m->get_flat_grads()) EXPECT_EQ(g, 0.f);
}

TEST(Model, ApplySgdMovesAgainstGradient) {
  auto m = small_model();
  const float loss_before = m->train_step(small_batch());
  m->apply_sgd(0.05f);
  m->zero_grad();
  const float loss_after = m->train_step(small_batch());
  EXPECT_LT(loss_after, loss_before);
}

TEST(Model, EvalBatchCountsExamples) {
  auto m = small_model();
  const EvalStats stats = m->eval_batch(small_batch());
  EXPECT_EQ(stats.examples, 4u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_LE(stats.top1, stats.examples);
  EXPECT_LE(stats.top1, stats.top5);
}

TEST(EvalStats, MergeAccumulates) {
  EvalStats a, b;
  a.loss_sum = 1.0;
  a.batches = 1;
  a.top1 = 3;
  a.examples = 10;
  b.loss_sum = 3.0;
  b.batches = 1;
  b.top1 = 7;
  b.examples = 10;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean_loss(), 2.0);
  EXPECT_DOUBLE_EQ(a.top1_accuracy(), 0.5);
}

TEST(EvalStats, PerplexityIsExpOfMeanLoss) {
  EvalStats s;
  s.loss_sum = 2.0;
  s.batches = 2;
  EXPECT_NEAR(s.perplexity(), std::exp(1.0), 1e-9);
}

TEST(PackUnpack, OrderIsStable) {
  Rng rng(1);
  Linear l1(3, 2, rng, true, "a");
  Linear l2(2, 2, rng, true, "b");
  std::vector<Param*> params;
  l1.collect_params(params);
  l2.collect_params(params);
  const auto flat = pack_values(params);
  EXPECT_EQ(flat.size(), total_param_count(params));
  // First 6 entries are l1's weight row-major.
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(flat[i], l1.weight().value[i]);
}

}  // namespace
}  // namespace selsync
