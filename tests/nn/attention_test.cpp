#include "nn/attention.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

TEST(Attention, OutputShapeMatchesInput) {
  Rng rng(1);
  MultiHeadSelfAttention attn(16, 2, 4, rng);
  const Tensor x = Tensor::randn({8, 16}, rng);  // B=2, T=4
  const Tensor y = attn.forward(x);
  EXPECT_EQ(y.dim(0), 8u);
  EXPECT_EQ(y.dim(1), 16u);
}

TEST(Attention, RejectsBadRowCount) {
  Rng rng(2);
  MultiHeadSelfAttention attn(8, 2, 4, rng);
  const Tensor x = Tensor::zeros({6, 8});  // 6 not divisible by T=4
  EXPECT_THROW(attn.forward(x), std::invalid_argument);
}

TEST(Attention, RejectsIndivisibleHeads) {
  Rng rng(3);
  EXPECT_THROW(MultiHeadSelfAttention(10, 3, 4, rng), std::invalid_argument);
}

TEST(Attention, CausalMaskingFirstTokenSeesOnlyItself) {
  // With causal masking, output row 0 of each sequence depends only on
  // input row 0: changing later tokens must not change it.
  Rng rng(4);
  MultiHeadSelfAttention attn(8, 2, 3, rng);
  Tensor x = Tensor::randn({3, 8}, rng);  // B=1, T=3
  const Tensor y1 = attn.forward(x);
  for (size_t c = 0; c < 8; ++c) x.at(2, c) += 1.f;  // perturb last token
  const Tensor y2 = attn.forward(x);
  for (size_t c = 0; c < 8; ++c)
    EXPECT_FLOAT_EQ(y1.at(0, c), y2.at(0, c)) << "col " << c;
  // ...but the last token's output must change.
  bool changed = false;
  for (size_t c = 0; c < 8; ++c)
    if (y1.at(2, c) != y2.at(2, c)) changed = true;
  EXPECT_TRUE(changed);
}

TEST(Attention, BatchesAreIndependent) {
  Rng rng(5);
  MultiHeadSelfAttention attn(8, 2, 2, rng);
  Tensor x = Tensor::randn({4, 8}, rng);  // B=2, T=2
  const Tensor y1 = attn.forward(x);
  for (size_t c = 0; c < 8; ++c) x.at(3, c) += 2.f;  // perturb batch 1 only
  const Tensor y2 = attn.forward(x);
  for (size_t r = 0; r < 2; ++r)  // batch 0 rows unchanged
    for (size_t c = 0; c < 8; ++c) EXPECT_FLOAT_EQ(y1.at(r, c), y2.at(r, c));
}

TEST(Attention, CollectsQkvAndProjParams) {
  Rng rng(6);
  MultiHeadSelfAttention attn(8, 2, 2, rng, true, "a0");
  std::vector<Param*> params;
  attn.collect_params(params);
  // qkv weight+bias, proj weight+bias
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0]->value.size(), 3u * 8 * 8);
  EXPECT_EQ(params[2]->value.size(), 8u * 8);
}

TEST(Attention, GradientMatchesFiniteDifferenceOnInput) {
  Rng rng(7);
  MultiHeadSelfAttention attn(8, 2, 3, rng);
  const Tensor x = Tensor::randn({3, 8}, rng, 0.f, 0.5f);
  Tensor probe = Tensor::randn({3, 8}, rng);

  auto objective = [&](const Tensor& in) {
    const Tensor y = attn.forward(in);
    double acc = 0;
    for (size_t i = 0; i < y.size(); ++i)
      acc += static_cast<double>(y[i]) * probe[i];
    return acc;
  };

  (void)attn.forward(x);
  std::vector<Param*> params;
  attn.collect_params(params);
  zero_grads(params);
  const Tensor gx = attn.backward(probe);

  const float eps = 1e-2f;
  for (size_t i = 0; i < x.size(); i += 5) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double fd = (objective(xp) - objective(xm)) / (2.0 * eps);
    EXPECT_NEAR(gx[i], fd, 3e-2) << "input grad " << i;
  }
}

}  // namespace
}  // namespace selsync
