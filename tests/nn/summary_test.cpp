#include "nn/summary.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"

namespace selsync {
namespace {

std::unique_ptr<Model> tiny_model() {
  ClassifierConfig cfg;
  cfg.input_dim = 8;
  cfg.classes = 3;
  cfg.hidden = 8;
  cfg.resnet_blocks = 1;
  return make_resnet_mlp(cfg, 1);
}

TEST(Summary, RowsMatchParams) {
  auto model = tiny_model();
  const auto rows = summarize_params(*model);
  ASSERT_EQ(rows.size(), model->params().size());
  size_t total = 0;
  for (const auto& row : rows) total += row.count;
  EXPECT_EQ(total, model->param_count());
  EXPECT_EQ(rows.front().name, model->params().front()->name);
}

TEST(Summary, RmsReflectsValues) {
  auto model = tiny_model();
  const auto rows = summarize_params(*model);
  // Xavier-initialized weights have non-zero RMS; fresh grads are zero.
  EXPECT_GT(rows[0].value_rms, 0.0);
  EXPECT_DOUBLE_EQ(rows[0].grad_rms, 0.0);
}

TEST(Summary, GradRmsAfterTrainStep) {
  auto model = tiny_model();
  Rng rng(1);
  Batch batch;
  batch.x = Tensor::randn({4, 8}, rng);
  batch.targets = {0, 1, 2, 0};
  model->train_step(batch);
  bool any_grad = false;
  for (const auto& row : summarize_params(*model))
    if (row.grad_rms > 0) any_grad = true;
  EXPECT_TRUE(any_grad);
}

TEST(Summary, DescribeContainsAllNamesAndTotal) {
  auto model = tiny_model();
  const std::string table = describe_model(*model);
  for (const Param* p : model->params())
    EXPECT_NE(table.find(p->name), std::string::npos) << p->name;
  EXPECT_NE(table.find("total: " + std::to_string(model->param_count())),
            std::string::npos);
}

}  // namespace
}  // namespace selsync
