// Finite-difference gradient checks across every Module type: the single
// most load-bearing correctness property of the NN substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/sequential.hpp"
#include "tests/nn/gradcheck.hpp"

namespace selsync {
namespace {

using testing::check_module_gradients;
using testing::GradCheckOptions;

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear layer(6, 4, rng);
  check_module_gradients(layer, Tensor::randn({3, 6}, rng));
}

TEST(GradCheck, LinearNoBias) {
  Rng rng(2);
  Linear layer(5, 3, rng, false);
  check_module_gradients(layer, Tensor::randn({2, 5}, rng));
}

TEST(GradCheck, ReLU) {
  Rng rng(3);
  ReLU relu;
  // Keep inputs away from the kink at 0 where FD is invalid.
  Tensor x = Tensor::randn({4, 5}, rng);
  for (auto& v : x.flat())
    if (std::fabs(v) < 0.1f) v = 0.2f;
  check_module_gradients(relu, x);
}

TEST(GradCheck, TanhLayer) {
  Rng rng(4);
  Tanh layer;
  check_module_gradients(layer, Tensor::randn({3, 4}, rng));
}

TEST(GradCheck, GELULayer) {
  Rng rng(5);
  GELU layer;
  check_module_gradients(layer, Tensor::randn({3, 4}, rng));
}

TEST(GradCheck, LayerNormModule) {
  Rng rng(6);
  LayerNorm ln(6);
  GradCheckOptions opt;
  opt.tolerance = 3e-2f;
  check_module_gradients(ln, Tensor::randn({4, 6}, rng), opt);
}

TEST(GradCheck, Conv2dModule) {
  Rng rng(7);
  Conv2d conv(2, 3, 3, 1, rng);
  check_module_gradients(conv, Tensor::randn({2, 2, 4, 4}, rng));
}

TEST(GradCheck, AttentionModule) {
  Rng rng(8);
  MultiHeadSelfAttention attn(8, 2, 3, rng);
  GradCheckOptions opt;
  opt.tolerance = 3e-2f;
  check_module_gradients(attn, Tensor::randn({3, 8}, rng, 0.f, 0.5f), opt);
}

TEST(GradCheck, SequentialStack) {
  Rng rng(9);
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Linear>(6, 8, rng));
  net->add(std::make_unique<Tanh>());
  net->add(std::make_unique<Linear>(8, 4, rng));
  check_module_gradients(*net, Tensor::randn({3, 6}, rng));
}

TEST(GradCheck, ResidualBlock) {
  Rng rng(10);
  auto inner = std::make_unique<Sequential>();
  inner->add(std::make_unique<Linear>(5, 5, rng));
  inner->add(std::make_unique<Tanh>());
  Residual block(std::move(inner));
  check_module_gradients(block, Tensor::randn({3, 5}, rng));
}

TEST(GradCheck, ConvPoolStack) {
  Rng rng(11);
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2d>(1, 2, 3, 1, rng));
  net->add(std::make_unique<Tanh>());
  net->add(std::make_unique<MaxPool2x2>());
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>(2 * 2 * 2, 3, rng));
  GradCheckOptions opt;
  opt.tolerance = 3e-2f;
  check_module_gradients(*net, Tensor::randn({2, 1, 4, 4}, rng), opt);
}

}  // namespace
}  // namespace selsync
