#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(Logging, MacrosRespectThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Below-threshold macros must not evaluate their stream arguments.
  int evaluations = 0;
  auto touch = [&] {
    ++evaluations;
    return "msg";
  };
  LOG_DEBUG << touch();
  LOG_INFO << touch();
  EXPECT_EQ(evaluations, 0);
  testing::internal::CaptureStderr();
  LOG_ERROR << touch();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(err.find("[ERROR] msg"), std::string::npos);
}

TEST(Logging, FormatsLevelTags) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  LOG_WARN << "attention " << 42;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[WARN] attention 42"), std::string::npos);
}

TEST(Logging, LogLineDirect) {
  testing::internal::CaptureStderr();
  log_line(LogLevel::kInfo, "direct");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[INFO] direct"), std::string::npos);
}

}  // namespace
}  // namespace selsync
