#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace selsync {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent(7);
  Rng c1 = parent.fork(0);
  Rng c2 = parent.fork(1);
  Rng c1_again = Rng(7).fork(0);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, NextBelowIsInRangeAndRoughlyUniform) {
  Rng rng(8);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 14000; ++i) {
    const uint64_t v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 2000, 250);
}

TEST(Rng, RandintInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.randint(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RandintThrowsOnInvertedBounds) {
  Rng rng(10);
  EXPECT_THROW(rng.randint(3, 2), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  const auto picks = rng.sample_without_replacement(20, 8);
  EXPECT_EQ(picks.size(), 8u);
  std::set<size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 8u);
  for (size_t p : picks) EXPECT_LT(p, 20u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(14);
  const auto picks = rng.sample_without_replacement(5, 5);
  std::set<size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementThrowsWhenKTooBig) {
  Rng rng(15);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

}  // namespace
}  // namespace selsync
