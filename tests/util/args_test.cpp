#include "util/args.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

ArgParser standard_parser() {
  ArgParser p;
  p.add_option("delta", "threshold", "0.3");
  p.add_option("workers", "cluster size", "16");
  p.add_switch("quiet", "no output");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, DefaultsApplyWhenAbsent) {
  ArgParser p = standard_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get("delta"), "0.3");
  EXPECT_DOUBLE_EQ(p.get_double("delta"), 0.3);
  EXPECT_EQ(p.get_int("workers"), 16);
  EXPECT_FALSE(p.get_bool("quiet"));
}

TEST(Args, ParsesValuesAndSwitches) {
  ArgParser p = standard_parser();
  ASSERT_TRUE(parse(p, {"--delta", "0.5", "--quiet", "--workers", "8"}));
  EXPECT_DOUBLE_EQ(p.get_double("delta"), 0.5);
  EXPECT_EQ(p.get_int("workers"), 8);
  EXPECT_TRUE(p.get_bool("quiet"));
  EXPECT_TRUE(p.has("delta"));
}

TEST(Args, HelpReturnsFalse) {
  ArgParser p = standard_parser();
  EXPECT_FALSE(parse(p, {"--help"}));
}

TEST(Args, RejectsUnknownFlag) {
  ArgParser p = standard_parser();
  EXPECT_THROW(parse(p, {"--nope", "1"}), std::invalid_argument);
}

TEST(Args, RejectsMissingValue) {
  ArgParser p = standard_parser();
  EXPECT_THROW(parse(p, {"--delta"}), std::invalid_argument);
}

TEST(Args, RejectsPositional) {
  ArgParser p = standard_parser();
  EXPECT_THROW(parse(p, {"stray"}), std::invalid_argument);
}

TEST(Args, RejectsMalformedNumbers) {
  ArgParser p = standard_parser();
  ASSERT_TRUE(parse(p, {"--delta", "abc", "--workers", "3.5"}));
  EXPECT_THROW(p.get_double("delta"), std::invalid_argument);
  EXPECT_THROW(p.get_int("workers"), std::invalid_argument);
}

TEST(Args, InlineJsonValuesSurviveVerbatim) {
  // The CLI's --fault-plan accepts inline JSON; the parser must hand the
  // argument through untouched (braces, quotes, spaces and all) so the
  // fault-plan parser sees exactly what the shell passed.
  ArgParser p;
  p.add_option("fault-plan", "plan JSON or file", "");
  ASSERT_TRUE(parse(p, {"--fault-plan", R"({"seed": 7, "crashes": []})"}));
  EXPECT_EQ(p.get("fault-plan"), R"({"seed": 7, "crashes": []})");
}

TEST(Args, UsageListsAllFlags) {
  ArgParser p = standard_parser();
  const std::string usage = p.usage("prog");
  EXPECT_NE(usage.find("--delta"), std::string::npos);
  EXPECT_NE(usage.find("--quiet"), std::string::npos);
  EXPECT_NE(usage.find("default: 0.3"), std::string::npos);
}

}  // namespace
}  // namespace selsync
