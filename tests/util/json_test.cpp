#include "util/json.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(JsonValue(nullptr).dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
}

TEST(Json, ObjectDeterministicKeyOrder) {
  JsonValue o = JsonValue::object();
  o.set("zebra", 1).set("alpha", 2);
  EXPECT_EQ(o.dump(), "{\"alpha\":2,\"zebra\":1}");
}

TEST(Json, NestedStructures) {
  JsonValue arr = JsonValue::array();
  arr.push(1).push("two");
  JsonValue o = JsonValue::object();
  o.set("list", std::move(arr));
  EXPECT_EQ(o.dump(), "{\"list\":[1,\"two\"]}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(JsonValue::object().dump(), "{}");
  EXPECT_EQ(JsonValue::array().dump(), "[]");
  EXPECT_EQ(JsonValue::object().dump(2), "{}");
}

TEST(Json, PrettyPrintIndents) {
  JsonValue o = JsonValue::object();
  o.set("a", 1);
  EXPECT_EQ(o.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonValue(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, TypeMisuseThrows) {
  JsonValue num(1);
  EXPECT_THROW(num.set("k", 1), std::logic_error);
  EXPECT_THROW(num.push(1), std::logic_error);
  JsonValue arr = JsonValue::array();
  EXPECT_THROW(arr.set("k", 1), std::logic_error);
}

TEST(Json, SetOverwrites) {
  JsonValue o = JsonValue::object();
  o.set("k", 1);
  o.set("k", 2);
  EXPECT_EQ(o.dump(), "{\"k\":2}");
}

TEST(Json, LargeIntegersKeptExact) {
  EXPECT_EQ(JsonValue(123456789.0).dump(), "123456789");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, NestedStructures) {
  const JsonValue v =
      JsonValue::parse(R"({"list": [1, "two", {"k": false}], "n": 3})");
  EXPECT_TRUE(v.is_object());
  EXPECT_TRUE(v.contains("list"));
  EXPECT_EQ(v.at("list").size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("list").at(0).as_number(), 1.0);
  EXPECT_EQ(v.at("list").at(1).as_string(), "two");
  EXPECT_FALSE(v.at("list").at(2).at("k").as_bool());
  EXPECT_DOUBLE_EQ(v.at("n").as_number(), 3.0);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\nd")").as_string(), "a\"b\\c\nd");
  EXPECT_EQ(JsonValue::parse(R"("A")").as_string(), "A");
}

TEST(JsonParse, DumpRoundTrips) {
  JsonValue o = JsonValue::object();
  o.set("alpha", 2.5).set("flag", true).set("name", "x\ny");
  JsonValue arr = JsonValue::array();
  arr.push(1).push(nullptr);
  o.set("items", std::move(arr));
  const std::string text = o.dump();
  EXPECT_EQ(JsonValue::parse(text).dump(), text);
}

TEST(JsonParse, ErrorsCarryOffsets) {
  EXPECT_THROW(JsonValue::parse(""), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("nul"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{} trailing"), std::invalid_argument);
  try {
    JsonValue::parse("[1, oops]");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(JsonParse, AccessorMisuseThrows) {
  const JsonValue v = JsonValue::parse("{\"k\": 1}");
  EXPECT_THROW(v.as_number(), std::invalid_argument);
  EXPECT_THROW(v.at("missing"), std::invalid_argument);
  EXPECT_THROW(v.at("k").as_string(), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("[0]").at(1), std::invalid_argument);
}

}  // namespace
}  // namespace selsync
