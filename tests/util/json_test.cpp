#include "util/json.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(JsonValue(nullptr).dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
}

TEST(Json, ObjectDeterministicKeyOrder) {
  JsonValue o = JsonValue::object();
  o.set("zebra", 1).set("alpha", 2);
  EXPECT_EQ(o.dump(), "{\"alpha\":2,\"zebra\":1}");
}

TEST(Json, NestedStructures) {
  JsonValue arr = JsonValue::array();
  arr.push(1).push("two");
  JsonValue o = JsonValue::object();
  o.set("list", std::move(arr));
  EXPECT_EQ(o.dump(), "{\"list\":[1,\"two\"]}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(JsonValue::object().dump(), "{}");
  EXPECT_EQ(JsonValue::array().dump(), "[]");
  EXPECT_EQ(JsonValue::object().dump(2), "{}");
}

TEST(Json, PrettyPrintIndents) {
  JsonValue o = JsonValue::object();
  o.set("a", 1);
  EXPECT_EQ(o.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonValue(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, TypeMisuseThrows) {
  JsonValue num(1);
  EXPECT_THROW(num.set("k", 1), std::logic_error);
  EXPECT_THROW(num.push(1), std::logic_error);
  JsonValue arr = JsonValue::array();
  EXPECT_THROW(arr.set("k", 1), std::logic_error);
}

TEST(Json, SetOverwrites) {
  JsonValue o = JsonValue::object();
  o.set("k", 1);
  o.set("k", 2);
  EXPECT_EQ(o.dump(), "{\"k\":2}");
}

TEST(Json, LargeIntegersKeptExact) {
  EXPECT_EQ(JsonValue(123456789.0).dump(), "123456789");
}

}  // namespace
}  // namespace selsync
