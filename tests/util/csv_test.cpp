#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace selsync {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/selsync_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.row({"1", "x"});
    csv.row({2.5, 3.0});
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,x\n2.5,3\n");
}

TEST_F(CsvTest, RejectsArityMismatch) {
  CsvWriter csv(path_, {"a", "b", "c"});
  EXPECT_THROW(csv.row({"only", "two"}), std::invalid_argument);
}

TEST_F(CsvTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

TEST(CsvFormat, FormatsDoublesCompactly) {
  EXPECT_EQ(CsvWriter::format_double(1.0), "1");
  EXPECT_EQ(CsvWriter::format_double(0.5), "0.5");
  EXPECT_EQ(CsvWriter::format_double(1234567.0), "1.23457e+06");
}

}  // namespace
}  // namespace selsync
