#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

TEST(AsciiPlot, RendersSeriesWithLegend) {
  const std::string out =
      ascii_plot({{"acc", {0.1, 0.5, 0.9}}, {"loss", {0.9, 0.5, 0.1}}}, 40, 8);
  EXPECT_NE(out.find("acc"), std::string::npos);
  EXPECT_NE(out.find("loss"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiPlot, HandlesConstantSeries) {
  const std::string out = ascii_plot({{"flat", {1.0, 1.0, 1.0}}}, 20, 5);
  EXPECT_FALSE(out.empty());
}

TEST(AsciiPlot, HandlesEmptySeries) {
  const std::string out = ascii_plot({{"none", {}}}, 20, 5);
  EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(Sparkline, MonotoneRampUsesIncreasingLevels) {
  const std::string s = sparkline({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 10);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_LT(s.front(), s.back());  // denser glyph later in the ramp
}

TEST(Sparkline, EmptyInputGivesEmptyOutput) {
  EXPECT_TRUE(sparkline({}, 10).empty());
}

TEST(AsciiBars, ScalesToLargestValue) {
  const std::string out = ascii_bars({{"small", 1.0}, {"big", 10.0}}, 20);
  // The largest bar should reach the full width.
  EXPECT_NE(out.find(std::string(20, '#')), std::string::npos);
  EXPECT_NE(out.find("small"), std::string::npos);
}

TEST(AsciiBars, EmptyInputGivesEmptyOutput) {
  EXPECT_TRUE(ascii_bars({}, 10).empty());
}

}  // namespace
}  // namespace selsync
