// Unit tests for the selsync_lint lexer (tools/lint/lexer.*) — the edge
// cases the PR 4 line scanner got wrong: raw strings, multi-line block
// comments, line-continued preprocessor directives, and char literals
// holding a quote. The fixture tests prove the rules behave end to end;
// these pin the token stream itself.
#include "lint/lexer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace selsync_lint {
namespace {

std::vector<std::string> idents(const TokenStream& s) {
  std::vector<std::string> out;
  for (const Token& t : s.tokens)
    if (t.kind == TokKind::kIdent) out.push_back(t.text);
  return out;
}

bool has_ident(const TokenStream& s, const std::string& name) {
  const std::vector<std::string> all = idents(s);
  return std::find(all.begin(), all.end(), name) != all.end();
}

TEST(LintLexer, RawStringBodyIsOneTokenAndCodeResumesAfter) {
  const TokenStream s =
      lex("auto d = R\"doc(std::thread inside)doc\"; int after = 1;\n");
  ASSERT_FALSE(has_ident(s, "thread"));
  EXPECT_TRUE(has_ident(s, "after"));
  const auto it = std::find_if(
      s.tokens.begin(), s.tokens.end(),
      [](const Token& t) { return t.kind == TokKind::kString; });
  ASSERT_NE(it, s.tokens.end());
  EXPECT_EQ(it->text, "std::thread inside");
}

TEST(LintLexer, RawStringDelimiterWithParenDecoy) {
  // The body contains `)"` — only `)x"` may close this literal.
  const TokenStream s = lex("auto d = R\"x(a )\" b)x\"; int tail = 2;\n");
  ASSERT_EQ(idents(s).size(), 4u);  // auto d int tail
  EXPECT_TRUE(has_ident(s, "tail"));
  EXPECT_EQ(s.tokens[3].text, "a )\" b");
}

TEST(LintLexer, MultiLineRawStringTracksLines) {
  const TokenStream s = lex("auto d = R\"(one\ntwo\nthree)\";\nint x = 0;\n");
  const auto it = std::find_if(
      s.tokens.begin(), s.tokens.end(),
      [](const Token& t) { return t.kind == TokKind::kString; });
  ASSERT_NE(it, s.tokens.end());
  EXPECT_EQ(it->line, 1u);
  EXPECT_EQ(it->end_line, 3u);
  // `x` is declared on line 4, after the literal.
  const auto xs = std::find_if(
      s.tokens.begin(), s.tokens.end(),
      [](const Token& t) { return t.kind == TokKind::kIdent && t.text == "x"; });
  ASSERT_NE(xs, s.tokens.end());
  EXPECT_EQ(xs->line, 4u);
}

TEST(LintLexer, BlockCommentSpansLinesAndEmitsNoTokens) {
  const TokenStream s = lex("int a;\n/* std::mutex m;\n   still text */\nint b;\n");
  EXPECT_FALSE(has_ident(s, "mutex"));
  ASSERT_EQ(s.comments.size(), 1u);
  EXPECT_EQ(s.comments[0].line_begin, 2u);
  EXPECT_EQ(s.comments[0].line_end, 3u);
  const auto bs = std::find_if(
      s.tokens.begin(), s.tokens.end(),
      [](const Token& t) { return t.kind == TokKind::kIdent && t.text == "b"; });
  ASSERT_NE(bs, s.tokens.end());
  EXPECT_EQ(bs->line, 4u);
}

TEST(LintLexer, LineContinuationJoinsDirectiveAndLexesBody) {
  const TokenStream s = lex("#define GUARD(m) \\\n  std::mutex guard(m)\nint x;\n");
  ASSERT_EQ(s.directives.size(), 1u);
  const Directive& d = s.directives[0];
  EXPECT_FALSE(d.is_include);
  bool saw_mutex = false;
  for (const Token& t : d.body_tokens)
    if (t.kind == TokKind::kIdent && t.text == "mutex") saw_mutex = true;
  EXPECT_TRUE(saw_mutex);
  // The macro body's tokens stay out of the structural stream.
  EXPECT_FALSE(has_ident(s, "mutex"));
  EXPECT_TRUE(has_ident(s, "x"));
}

TEST(LintLexer, IncludeTargetsParsedBothForms) {
  const TokenStream s =
      lex("#include <mutex>\n#include \"comm/wait_slot.hpp\"\n");
  ASSERT_EQ(s.directives.size(), 2u);
  EXPECT_TRUE(s.directives[0].is_include);
  EXPECT_TRUE(s.directives[0].angled);
  EXPECT_EQ(s.directives[0].include_target, "mutex");
  EXPECT_TRUE(s.directives[1].is_include);
  EXPECT_FALSE(s.directives[1].angled);
  EXPECT_EQ(s.directives[1].include_target, "comm/wait_slot.hpp");
}

TEST(LintLexer, CharLiteralHoldingQuoteDoesNotOpenString) {
  const TokenStream s = lex("char q = '\"'; int real_code = 1;\n");
  EXPECT_TRUE(has_ident(s, "real_code"));
  const auto it = std::find_if(
      s.tokens.begin(), s.tokens.end(),
      [](const Token& t) { return t.kind == TokKind::kChar; });
  ASSERT_NE(it, s.tokens.end());
  EXPECT_EQ(it->text, "\"");
}

TEST(LintLexer, EscapedQuoteStaysInsideStringBody) {
  const TokenStream s = lex("auto s = \"a \\\" b\"; int out = 0;\n");
  EXPECT_TRUE(has_ident(s, "out"));
  const auto it = std::find_if(
      s.tokens.begin(), s.tokens.end(),
      [](const Token& t) { return t.kind == TokKind::kString; });
  ASSERT_NE(it, s.tokens.end());
  EXPECT_EQ(it->text, "a \\\" b");
}

TEST(LintLexer, TrailingCommentEndsDirective) {
  const TokenStream s = lex("#define N 3  // three, not four\nint y = N;\n");
  ASSERT_EQ(s.directives.size(), 1u);
  ASSERT_EQ(s.comments.size(), 1u);
  EXPECT_TRUE(has_ident(s, "y"));
}

TEST(LintLexer, MaximalMunchPunctuators) {
  const TokenStream s = lex("a->b; c::d; e <<= 1; f >>= 2;\n");
  std::vector<std::string> puncts;
  for (const Token& t : s.tokens)
    if (t.kind == TokKind::kPunct) puncts.push_back(t.text);
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "::"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "<<="), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), ">>="), puncts.end());
}

}  // namespace
}  // namespace selsync_lint
