// Round-trip coverage for every EnumEntry name table in the repo: each
// spelling must parse back to its enumerator, each enumerator must render
// back to its spelling, and the advertised `enum_names` list must mention
// every spelling. selsync_lint (rule `enum-table`) proves the tables are
// *complete*; this test proves the lookup machinery over them is *correct*.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "comm/comm_backend.hpp"
#include "comm/compression.hpp"
#include "comm/cost_model.hpp"
#include "comm/fault_injector.hpp"
#include "comm/parameter_server.hpp"
#include "comm/slice_schedule.hpp"
#include "core/config.hpp"
#include "core/sync_plan.hpp"
#include "data/partition.hpp"
#include "nn/models.hpp"
#include "util/enum_names.hpp"

namespace selsync {
namespace {

template <typename E, size_t N>
void ExpectTableRoundTrips(const EnumEntry<E> (&table)[N]) {
  const std::string advertised = enum_names(table);
  std::set<std::string> names;
  std::set<long long> values;
  for (const EnumEntry<E>& entry : table) {
    SCOPED_TRACE(entry.name);
    // name -> value -> name identity.
    const auto parsed = enum_from_name(table, entry.name);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == entry.value);
    EXPECT_STREQ(enum_name(table, entry.value), entry.name);
    // Spellings and values are unique within one table (otherwise the
    // round trip above could not hold for every row).
    EXPECT_TRUE(names.insert(entry.name).second);
    EXPECT_TRUE(values.insert(static_cast<long long>(entry.value)).second);
    EXPECT_NE(advertised.find(entry.name), std::string::npos);
  }
  // Lookup failure modes: bogus spellings are rejected, out-of-table values
  // render as the "?" sentinel instead of crashing a serializer.
  EXPECT_FALSE(enum_from_name(table, "no-such-spelling").has_value());
  EXPECT_STREQ(enum_name(table, static_cast<E>(9999)), "?");
}

TEST(EnumRoundTrip, BackendKind) { ExpectTableRoundTrips(kBackendKindNames); }

TEST(EnumRoundTrip, EngineKind) { ExpectTableRoundTrips(kEngineKindNames); }

TEST(EnumRoundTrip, CompressionKind) {
  ExpectTableRoundTrips(kCompressionKindNames);
}

TEST(EnumRoundTrip, StrategyKindDisplay) {
  ExpectTableRoundTrips(kStrategyKindNames);
}

TEST(EnumRoundTrip, StrategyKindCli) {
  ExpectTableRoundTrips(kStrategyKindCliNames);
}

TEST(EnumRoundTrip, ModelKind) { ExpectTableRoundTrips(kModelKindNames); }

TEST(EnumRoundTrip, PartitionScheme) {
  ExpectTableRoundTrips(kPartitionSchemeNames);
}

TEST(EnumRoundTrip, AggregationModeDisplay) {
  ExpectTableRoundTrips(kAggregationModeNames);
}

TEST(EnumRoundTrip, AggregationModeCli) {
  ExpectTableRoundTrips(kAggregationModeCliNames);
}

TEST(EnumRoundTrip, FaultKind) { ExpectTableRoundTrips(kFaultKindNames); }

TEST(EnumRoundTrip, Topology) { ExpectTableRoundTrips(kTopologyNames); }

TEST(EnumRoundTrip, SliceScheduleKind) {
  ExpectTableRoundTrips(kSliceScheduleKindNames);
}

TEST(EnumRoundTrip, TransportKind) {
  ExpectTableRoundTrips(kTransportKindNames);
}

TEST(EnumRoundTrip, SwitchTriggerKindDisplay) {
  ExpectTableRoundTrips(kSwitchTriggerKindNames);
}

TEST(EnumRoundTrip, SwitchTriggerKindCli) {
  ExpectTableRoundTrips(kSwitchTriggerKindCliNames);
}

// The golden run records pin these exact serialized spellings; a renamed
// table entry must fail here before it reaches the parity grid.
TEST(EnumRoundTrip, GoldenRecordSpellingsArePinned) {
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kSelSync), "SelSync");
  EXPECT_STREQ(strategy_kind_name(StrategyKind::kLocalSgd), "LocalSGD");
  EXPECT_STREQ(topology_name(Topology::kParameterServer), "parameter-server");
  EXPECT_STREQ(topology_name(Topology::kRingAllreduce), "ring-allreduce");
  EXPECT_STREQ(aggregation_mode_name(AggregationMode::kParameters), "PA");
  EXPECT_STREQ(aggregation_mode_name(AggregationMode::kGradients), "GA");
  // Sliced run records (slices > 1) serialize the emission order by name.
  EXPECT_STREQ(slice_schedule_kind_name(SliceScheduleKind::kOutputFirst),
               "output-first");
  EXPECT_STREQ(slice_schedule_kind_name(SliceScheduleKind::kInputFirst),
               "input-first");
  // Plan-bearing run records (sync_plan non-empty) serialize the trigger
  // kind by name; the CLI accepts the kebab-case twins.
  EXPECT_STREQ(switch_trigger_kind_name(SwitchTriggerKind::kAtIteration),
               "AtIteration");
  EXPECT_STREQ(switch_trigger_kind_name(SwitchTriggerKind::kOnGradChange),
               "OnGradChange");
  EXPECT_TRUE(switch_trigger_kind_from_name("at-iteration") ==
              SwitchTriggerKind::kAtIteration);
  EXPECT_TRUE(switch_trigger_kind_from_name("on-gradchange") ==
              SwitchTriggerKind::kOnGradChange);
}

// The CLI parse glue advertises the accepted set on a typo.
TEST(EnumRoundTrip, ParseEnumFlagReportsAcceptedSet) {
  const auto parse = [](const std::string& value) {
    return parse_enum_flag(
        "strategy", value,
        [](std::string_view name) { return strategy_kind_from_name(name); },
        strategy_kind_names());
  };
  EXPECT_TRUE(parse("selsync") == StrategyKind::kSelSync);
  try {
    parse("selsnyc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("--strategy"), std::string::npos);
    EXPECT_NE(message.find("selsnyc"), std::string::npos);
    EXPECT_NE(message.find("selsync"), std::string::npos);
    EXPECT_NE(message.find("bsp"), std::string::npos);
  }
}

}  // namespace
}  // namespace selsync
