// Fixture: half of a file-granularity include cycle across the rank-2
// sibling directories (nn <-> data). Sibling includes are legal; the
// round trip back to this header is not — `layer-dag` must flag it.
#pragma once

#include "data/layer_cycle_b.hpp"

namespace fixture {

inline int cycle_a() { return cycle_b() + 1; }

}  // namespace fixture
