// Fixture: a legal include chain — nn -> data is a same-rank sibling
// edge and data -> util points down the layering, with no cycle at file
// granularity. `layer-dag` must pass all three files.
#pragma once

#include "data/layer_chain_mid.hpp"

namespace fixture {

inline int chain_top() { return chain_mid() + 1; }

}  // namespace fixture
