// Fixture: kDropped was added to the enum but not to the name table — the
// exact parser/serializer drift the `enum-table` rule exists to catch.
#pragma once

#include "util/enum_names.hpp"

namespace fixture {

enum class Vegetable { kCarrot, kPotato, kDropped };

inline constexpr selsync::EnumEntry<Vegetable> kVegetableNames[] = {
    {Vegetable::kCarrot, "carrot"},
    {Vegetable::kPotato, "potato"},
};

}  // namespace fixture
