// Fixture: an enum whose EnumEntry name table covers every enumerator —
// the `enum-table` rule must pass.
#pragma once

#include "util/enum_names.hpp"

namespace fixture {

enum class Fruit { kApple, kBanana, kCherry };

inline constexpr selsync::EnumEntry<Fruit> kFruitNames[] = {
    {Fruit::kApple, "apple"},
    {Fruit::kBanana, "banana"},
    {Fruit::kCherry, "cherry"},
};

}  // namespace fixture
