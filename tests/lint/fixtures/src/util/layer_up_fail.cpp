// Fixture: a util-layer file reaching up into the core layer — the
// dependency arrow runs the other way, so `layer-dag` must flag the
// include as an upward edge.
#include "core/layer_target.hpp"

namespace fixture {

int util_peeking_at_core() { return core_constant(); }

}  // namespace fixture
