// Fixture: bottom of the legal chain — util depends on nothing above it.
#pragma once

namespace fixture {

inline int chain_base() { return 0; }

}  // namespace fixture
