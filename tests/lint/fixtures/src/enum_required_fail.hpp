// Fixture: BackendKind is on the required-table list (it feeds the CLI
// parser and the run-record serializer), so defining it without any
// EnumEntry table must trip `enum-table` even though no table drifted.
#pragma once

namespace fixture {

enum class BackendKind { kSharedMemory, kRing };

}  // namespace fixture
