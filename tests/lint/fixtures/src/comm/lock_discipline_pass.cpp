// Fixture: disciplined locking `lock-discipline` must accept — a
// consistent first_-before-second_ order (edges but no cycle), and a
// WaitSlot::wait placed under its live std::unique_lock guard with no
// second lock held across it.
#include <mutex>

#include "comm/wait_slot.hpp"

namespace fixture {

class Ordered {
 public:
  void produce() {
    std::lock_guard<std::mutex> a(first_);
    std::lock_guard<std::mutex> b(second_);
    ++ready_;
  }

  void drain() {
    std::lock_guard<std::mutex> a(first_);
    {
      std::lock_guard<std::mutex> b(second_);
      --ready_;
    }
  }

  void await() {
    std::unique_lock<std::mutex> lock(first_);
    slot_.wait(lock, [&] { return ready_ > 0; });
    --ready_;
  }

 private:
  std::mutex first_;
  std::mutex second_;
  selsync::WaitSlot slot_;
  int ready_ = 0;
};

}  // namespace fixture
