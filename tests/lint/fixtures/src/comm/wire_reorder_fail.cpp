// Fixture: FrameHeader's pinned fields swapped — bytes land in the wrong
// slots on every peer built before the change. `wire-schema` must flag
// the reorder.
#include <cstdint>

namespace fixture {

inline constexpr uint32_t kMagic = 0x1234;

struct FrameHeader {
  uint64_t payload_len = 0;  // pinned second, moved first: wire break
  uint16_t verb = 0;
};

enum class ReplicaVerb : uint16_t {
  kHello = 1,
  kPing,
  kShutdown,
};

void send(ReplicaVerb verb);

void hello() { send(ReplicaVerb::kHello); }
void ping() { send(ReplicaVerb::kPing); }
void shutdown() { send(ReplicaVerb::kShutdown); }

void serve(ReplicaVerb verb) {
  switch (verb) {
    case ReplicaVerb::kPing:
      send(ReplicaVerb::kPing);
      break;
    default:
      break;
  }
}

}  // namespace fixture
