// Fixture: identical syscalls are fine in src/comm/socket_transport.* —
// that is the one translation unit licensed to speak BSD sockets.
#include <sys/socket.h>

int open_raw_socket() { return ::socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0); }
