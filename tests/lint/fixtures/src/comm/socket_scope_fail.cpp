// Fixture: the socket-confine exemption is scoped to the
// src/comm/socket_transport.* pair, not all of src/comm/ — a stray syscall
// in any other comm file must still trip the rule.
#include <sys/socket.h>

int open_raw_socket() { return ::socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0); }
