// Fixture: a thread-free DES core passes des-thread-free — plain data
// structures, ucontext, and a thread_local dispatch pointer are all fine.
#include <cstddef>
#include <vector>

#include <ucontext.h>

namespace {
thread_local void* g_current_loop = nullptr;
}

struct ReadyEntry {
  double vtime = 0.0;
  size_t rank = 0;
};

std::vector<ReadyEntry> g_ready;

void* current_loop() { return g_current_loop; }
