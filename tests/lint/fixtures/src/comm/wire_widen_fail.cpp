// Fixture: the verb field widened from the pinned u16 to u32 — every
// offset after it shifts and old peers tear the frame. `wire-schema`
// must flag the width change.
#include <cstdint>

namespace fixture {

inline constexpr uint32_t kMagic = 0x1234;

struct FrameHeader {
  uint32_t verb = 0;  // pinned u16: widening is a wire break
  uint64_t payload_len = 0;
};

enum class ReplicaVerb : uint16_t {
  kHello = 1,
  kPing,
  kShutdown,
};

void send(ReplicaVerb verb);

void hello() { send(ReplicaVerb::kHello); }
void ping() { send(ReplicaVerb::kPing); }
void shutdown() { send(ReplicaVerb::kShutdown); }

void serve(ReplicaVerb verb) {
  switch (verb) {
    case ReplicaVerb::kPing:
      send(ReplicaVerb::kPing);
      break;
    default:
      break;
  }
}

}  // namespace fixture
