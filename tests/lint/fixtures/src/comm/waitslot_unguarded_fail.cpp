// Fixture: WaitSlot::wait outside its guard — one call passes the raw
// mutex instead of a std::unique_lock, the other passes a guard that was
// .unlock()ed and is no longer live. `lock-discipline` must flag both.
#include <mutex>

#include "comm/wait_slot.hpp"

namespace fixture {

class Unguarded {
 public:
  void wait_on_mutex() {
    slot_.wait(mutex_, [&] { return ready_; });
  }

  void wait_after_unlock() {
    std::unique_lock<std::mutex> lock(mutex_);
    lock.unlock();
    slot_.wait(lock, [&] { return ready_; });
  }

 private:
  std::mutex mutex_;
  selsync::WaitSlot slot_;
  bool ready_ = false;
};

}  // namespace fixture
