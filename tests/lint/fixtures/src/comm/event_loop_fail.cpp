// Fixture: the DES core must trip des-thread-free on any host
// synchronization — a lock here would reintroduce the host-schedule
// dependence the engine exists to remove.
#include <mutex>

std::mutex g_des_lock;

void park_badly() { std::lock_guard<std::mutex> lock(g_des_lock); }
