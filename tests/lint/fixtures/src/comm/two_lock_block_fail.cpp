// Fixture: blocking with a second lock held — the wait releases only its
// own guard (mutex_), so holding other_ across it deadlocks any peer that
// needs other_ to deliver the wake-up. `lock-discipline` must flag it.
#include <mutex>

#include "comm/wait_slot.hpp"

namespace fixture {

class TwoLock {
 public:
  void drain() {
    std::lock_guard<std::mutex> outer(other_);
    std::unique_lock<std::mutex> lock(mutex_);
    slot_.wait(lock, [&] { return ready_; });
    ready_ = false;
  }

 private:
  std::mutex other_;
  std::mutex mutex_;
  selsync::WaitSlot slot_;
  bool ready_ = false;
};

}  // namespace fixture
