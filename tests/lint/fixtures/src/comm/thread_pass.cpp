// Fixture: identical primitives are fine under src/comm/ — that is where
// the repo confines raw concurrency.
#include <condition_variable>
#include <mutex>
#include <thread>

std::mutex g_lock;
std::condition_variable g_cv;

void spawn() {
  std::thread worker([] { std::lock_guard<std::mutex> lock(g_lock); });
  worker.join();
}
