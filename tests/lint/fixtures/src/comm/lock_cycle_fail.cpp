// Fixture: two functions acquire the same pair of mutexes in opposite
// orders — the lock-order graph gains the edges first_ -> second_ and
// second_ -> first_, a cycle `lock-discipline` must flag as a potential
// deadlock.
#include <mutex>

namespace fixture {

class Pair {
 public:
  void forward() {
    std::lock_guard<std::mutex> a(first_);
    std::lock_guard<std::mutex> b(second_);
    ++hits_;
  }

  void reverse() {
    std::lock_guard<std::mutex> b(second_);
    std::lock_guard<std::mutex> a(first_);
    ++hits_;
  }

 private:
  std::mutex first_;
  std::mutex second_;
  int hits_ = 0;
};

}  // namespace fixture
