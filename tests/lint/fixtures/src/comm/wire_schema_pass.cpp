// Fixture: a protocol snapshot that matches the fixture manifest —
// constants, field order and widths, verb values, and every verb
// referenced the way its category demands (kPing has both a `case`
// receiver and a call-side sender). The appended field and the appended
// kStats verb are the allowed append-only evolution path and must not
// trip `wire-schema`.
#include <cstdint>

namespace fixture {

inline constexpr uint32_t kMagic = 0x1234;

struct FrameHeader {
  uint16_t verb = 0;
  uint64_t payload_len = 0;
  uint32_t crc = 0;  // appended after the pinned prefix: legal evolution
};

enum class ReplicaVerb : uint16_t {
  kHello = 1,
  kPing,
  kShutdown,
  kStats,  // appended with a fresh value: legal evolution
};

void send(ReplicaVerb verb);

void hello() { send(ReplicaVerb::kHello); }
void ping() { send(ReplicaVerb::kPing); }
void shutdown() { send(ReplicaVerb::kShutdown); }

void serve(ReplicaVerb verb) {
  switch (verb) {
    case ReplicaVerb::kPing:
      send(ReplicaVerb::kPing);
      break;
    default:
      break;
  }
}

}  // namespace fixture
