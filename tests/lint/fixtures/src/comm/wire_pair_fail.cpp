// Fixture: the rpc verb kPing has a sender but no `case` dispatch arm —
// half the serialize/parse pair is missing, so a kPing frame would arrive
// at a peer that cannot answer it. `wire-schema` must flag it.
#include <cstdint>

namespace fixture {

inline constexpr uint32_t kMagic = 0x1234;

struct FrameHeader {
  uint16_t verb = 0;
  uint64_t payload_len = 0;
};

enum class ReplicaVerb : uint16_t {
  kHello = 1,
  kPing,
  kShutdown,
};

void send(ReplicaVerb verb);

void hello() { send(ReplicaVerb::kHello); }
void ping() { send(ReplicaVerb::kPing); }
void shutdown() { send(ReplicaVerb::kShutdown); }

void serve(ReplicaVerb verb) {
  switch (verb) {
    default:  // no case ReplicaVerb kPing arm: rpc pair incomplete
      break;
  }
}

}  // namespace fixture
