// handoff-sync fail fixture: the snapshot grew a field (debt) no carry or
// pin line covers — either dead weight or a deleted manifest line; both
// must fail.
#include <cstdint>

struct DemoSnapshot {
  uint64_t cursor = 0;
  double total = 0.0;
  bool boundary_exit = false;
  double debt = 0.0;
};

class DemoLoop {
 public:
  void run();

 private:
  uint64_t cursor_ = 0;
  double total_ = 0.0;
  double scratch_ = 0.0;
};
