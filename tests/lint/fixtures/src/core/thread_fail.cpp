// Fixture: raw concurrency primitives outside src/comm/ must trip the
// `raw-thread` rule.
#include <mutex>
#include <thread>

std::mutex g_lock;

void spawn() {
  std::thread worker([] { std::lock_guard<std::mutex> lock(g_lock); });
  worker.join();
}
