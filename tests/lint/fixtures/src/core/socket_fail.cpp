// Fixture: raw BSD socket calls outside src/comm/socket_transport.* must
// trip the `socket-confine` rule — every other file speaks TcpConn frames.
#include <sys/socket.h>

int open_raw_socket() { return ::socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0); }
