// handoff-sync fail fixture: the loop grew a stateful member (momentum_)
// that is neither carried into DemoSnapshot nor skip-listed — the exact
// silently-dropped-at-a-switch drift the rule exists to catch.
#include <cstdint>

struct DemoSnapshot {
  uint64_t cursor = 0;
  double total = 0.0;
  bool boundary_exit = false;
};

class DemoLoop {
 public:
  void run();

 private:
  uint64_t cursor_ = 0;
  double total_ = 0.0;
  double scratch_ = 0.0;
  double momentum_ = 0.0;
};
