// Fixture: a documented waiver suppresses the `raw-thread` rule, including
// when the reason spans multiple comment lines above the statement.
#include <mutex>

// selsync-lint: allow(raw-thread) -- fixture exercising the waiver reach:
// the comment holding this reason is longer than one line, and the waiver
// must still cover the declaration below it.
std::mutex g_waived_lock;

void touch() {
  // selsync-lint: allow(raw-thread) -- single-line waiver form.
  std::lock_guard<std::mutex> lock(g_waived_lock);
}
