// Fixture: the approved pattern — a seeded stream forked from util/rng.
// Mentioning std::mt19937 in a comment or "std::rand" in a string is fine;
// the rule only fires on code.
#include "util/rng.hpp"

const char* kBanner = "never call std::rand here";

double draw(selsync::Rng& rng, unsigned long long rank) {
  selsync::Rng stream = rng.fork(rank);
  return stream.uniform();
}
