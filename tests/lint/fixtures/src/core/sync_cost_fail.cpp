// Fixture: emitting the sync-cost JSON key anywhere but
// src/core/run_record.cpp bypasses the TrainJob::record_sync_cost gate and
// would dirty the golden records — must trip `sync-cost-json`.
#include <string>
#include <utility>

struct Json {
  void set(const std::string& key, std::string value);
};

void emit(Json& j, std::string totals) {
  j.set("sync_cost", std::move(totals));
}
