// Fixture: forbidden names that exist only as TEXT — inside raw strings,
// ordinary strings, block comments, and char literals — are invisible to
// the token-level rules. The PR 4 line scanner tripped on several of
// these; `raw-thread` must pass this file clean.
#include <string>

/* A block comment spelling std::thread and std::mutex across
   two lines must not count as using them. */

// Neither does a line comment: std::condition_variable cv;

namespace fixture {

const char* kDoc = R"doc(
  Usage: spawn a std::thread per worker and guard state with std::mutex.
  This is documentation text, not code.
)doc";

const std::string kPlain = "std::thread is only mentioned, never named";

// A char literal holding a quote must not derail string tracking: if the
// lexer mistook '"' for a string opener, the std::mutex below would hide
// inside a phantom literal — and a real violation elsewhere would too.
const char kQuote = '"';
const char* kAfter = "text after the quote char, still just a string";

int measure() { return static_cast<int>(kPlain.size()); }

}  // namespace fixture
