// Fixture: the same key emission is allowed at this path —
// src/core/run_record.cpp is the one gate permitted to serialize it.
#include <string>
#include <utility>

struct Json {
  void set(const std::string& key, std::string value);
};

void emit_gated(Json& j, std::string totals) {
  j.set("sync_cost", std::move(totals));
}
