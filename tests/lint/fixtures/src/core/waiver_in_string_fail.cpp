// Fixture: a waiver marker inside a string literal is data, not a waiver.
// The PR 4 scanner parsed waivers from raw text and would have honoured
// the string below, silently exempting the next line; the token-level
// parser reads comment tokens only, so the std::mutex must still trip
// `raw-thread`.

namespace fixture {

const char* kDecoy = "// selsync-lint: allow(raw-thread) -- not a waiver";
extern int g_mutex_holder;

}  // namespace fixture

#include <mutex>

namespace fixture {

const char* kRawDecoy = R"(selsync-lint: allow-file(raw-thread) -- nope)";
std::mutex g_must_still_fail;

}  // namespace fixture
