// Fixture: the lexer must RESUME correctly after every literal form —
// real code following a raw string on the same line, and a forbidden name
// inside a line-continuation macro body, are genuine uses `raw-thread`
// must still flag.
#include <mutex>

// The macro body spans a continuation; the name inside it is real code.
#define FIXTURE_GUARD(m) \
  std::lock_guard<std::mutex> fixture_guard(m)

namespace fixture {

const char* kDoc = R"(decoy text)"; extern std::mutex g_after_raw_string;

}  // namespace fixture
