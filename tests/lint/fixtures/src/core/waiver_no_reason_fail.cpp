// Fixture: a waiver without a `-- reason` is itself a violation, and the
// un-waived primitive still trips `raw-thread`.
#include <mutex>

// selsync-lint: allow(raw-thread)
std::mutex g_lock;
