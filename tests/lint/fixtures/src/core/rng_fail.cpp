// Fixture: every line here must trip the `rng` rule — non-deterministic or
// time-seeded randomness outside src/util/rng breaks bit-reproducibility.
#include <cstdlib>
#include <ctime>
#include <random>

int entropy() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device device;
  std::mt19937 engine(device());
  std::uniform_int_distribution<int> dist(0, 9);
  return dist(engine) + std::rand();
}
