// handoff-sync fail fixture: the loop member total_ was deleted but the
// manifest still carries it — a stale pin must fail loudly so the contract
// and the source move in the same commit.
#include <cstdint>

struct DemoSnapshot {
  uint64_t cursor = 0;
  double total = 0.0;
  bool boundary_exit = false;
};

class DemoLoop {
 public:
  void run();

 private:
  uint64_t cursor_ = 0;
  double scratch_ = 0.0;
};
