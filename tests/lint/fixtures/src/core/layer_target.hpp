// Fixture helper: a core-layer header for the layer-dag fixtures to
// (illegally or legally) include. No violations of its own.
#pragma once

namespace fixture {

inline int core_constant() { return 4; }

}  // namespace fixture
