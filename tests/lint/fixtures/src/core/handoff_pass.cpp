// handoff-sync pass fixture: the snapshot and the loop agree with the
// fixture manifest — every loop member is carried or skip-listed, every
// snapshot field is covered by a carry/pin line.
#include <cstdint>

struct DemoSnapshot {
  uint64_t cursor = 0;
  double total = 0.0;
  bool boundary_exit = false;
};

class DemoLoop {
 public:
  void run();
  uint64_t cursor() const { return cursor_; }

 private:
  uint64_t cursor_ = 0;
  double total_ = 0.0;
  double scratch_ = 0.0;
};
