// Fixture: the other half of the nn <-> data include cycle.
#pragma once

#include "nn/layer_cycle_a.hpp"

namespace fixture {

inline int cycle_b() { return 1; }

}  // namespace fixture
