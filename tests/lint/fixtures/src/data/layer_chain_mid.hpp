// Fixture: middle of the legal chain — data reaching down into util.
#pragma once

#include "util/layer_chain_base.hpp"

namespace fixture {

inline int chain_mid() { return chain_base() + 1; }

}  // namespace fixture
