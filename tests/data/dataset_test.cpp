#include "data/dataset.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

ClassificationDataset tiny_flat() {
  // 4 samples, 2 features.
  return ClassificationDataset({0, 1, 2, 3, 4, 5, 6, 7}, 2, {0, 1, 0, 1}, 2);
}

TEST(ClassificationDataset, SizeAndLabels) {
  const auto ds = tiny_flat();
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.num_classes(), 2u);
  EXPECT_EQ(ds.label_of(0), 0);
  EXPECT_EQ(ds.label_of(3), 1);
  EXPECT_EQ(ds.sample_bytes(), 2 * sizeof(float));
}

TEST(ClassificationDataset, MakeBatchGathersRows) {
  const auto ds = tiny_flat();
  const Batch b = ds.make_batch({2, 0});
  EXPECT_EQ(b.x.dim(0), 2u);
  EXPECT_EQ(b.x.dim(1), 2u);
  EXPECT_FLOAT_EQ(b.x.at(0, 0), 4.f);
  EXPECT_FLOAT_EQ(b.x.at(1, 1), 1.f);
  EXPECT_EQ(b.targets, (std::vector<int>{0, 0}));
}

TEST(ClassificationDataset, MakeBatchRejectsBadIndex) {
  const auto ds = tiny_flat();
  EXPECT_THROW(ds.make_batch({4}), std::out_of_range);
}

TEST(ClassificationDataset, ImageShapeProducesRank4Batches) {
  std::vector<float> features(2 * 12, 1.f);
  ClassificationDataset ds(std::move(features), 12, {0, 1}, 2, {3, 2, 2});
  const Batch b = ds.make_batch({0, 1});
  ASSERT_EQ(b.x.rank(), 4u);
  EXPECT_EQ(b.x.dim(1), 3u);
  EXPECT_EQ(b.x.dim(2), 2u);
}

TEST(ClassificationDataset, ValidatesShapes) {
  EXPECT_THROW(ClassificationDataset({1, 2, 3}, 2, {0, 1}, 2),
               std::invalid_argument);
  EXPECT_THROW(
      ClassificationDataset(std::vector<float>(8, 0.f), 4, {0, 1}, 2, {2, 3}),
      std::invalid_argument);
  EXPECT_THROW(ClassificationDataset(std::vector<float>(8, 0.f), 4, {0, 1}, 2,
                                     {1, 2, 3}),
               std::invalid_argument);
}

TEST(SequenceDataset, WindowsAndTargetsShiftByOne) {
  SequenceDataset ds({0, 1, 2, 3, 4, 5, 6, 7, 8}, 10, 4);
  EXPECT_EQ(ds.size(), 2u);  // (9-1)/4
  const Batch b = ds.make_batch({0, 1});
  EXPECT_EQ(b.tokens.size(), 8u);
  EXPECT_EQ(b.tokens[0], 0);
  EXPECT_EQ(b.targets[0], 1);  // next token
  EXPECT_EQ(b.tokens[4], 4);
  EXPECT_EQ(b.targets[7], 8);
  EXPECT_TRUE(b.is_lm());
}

TEST(SequenceDataset, RejectsShortStream) {
  EXPECT_THROW(SequenceDataset({0, 1}, 10, 4), std::invalid_argument);
}

TEST(SequenceDataset, RejectsBadWindow) {
  SequenceDataset ds({0, 1, 2, 3, 4, 5, 6, 7, 8}, 10, 4);
  EXPECT_THROW(ds.make_batch({2}), std::out_of_range);
}

TEST(Batch, ExampleCountBothKinds) {
  Batch lm;
  lm.tokens = {1, 2, 3};
  lm.targets = {2, 3, 4};
  EXPECT_EQ(lm.example_count(), 3u);

  Batch cls;
  cls.x = Tensor({5, 2});
  cls.targets = {0, 0, 0, 0, 0};
  EXPECT_EQ(cls.example_count(), 5u);
  EXPECT_FALSE(cls.is_lm());
}

}  // namespace
}  // namespace selsync
