// Randomized data-injection (paper §III-E, Eqn. 3).
#include "data/injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace selsync {
namespace {

TEST(AdjustedBatch, MatchesEqn3PaperExample) {
  // Paper §IV-E: N=10 workers, b=32, (0.5, 0.5) -> b' = 32/(1+2.5) = 9.14,
  // the paper rounds to 11 for N such that alpha*beta*N ~ 1.875... it quotes
  // b'=11 for (0.5,0.5) at 10 workers: 32/(1+0.5*0.5*10) = 32/3.5 = 9.14.
  // We implement Eqn. 3 literally (round to nearest).
  EXPECT_EQ(injection_adjusted_batch(32, 0.5, 0.5, 10), 9u);
  // (0.75, 0.75) at 10 workers: 32/(1+5.625) = 4.8 -> 5 (paper rounds to 6).
  EXPECT_EQ(injection_adjusted_batch(32, 0.75, 0.75, 10), 5u);
}

TEST(AdjustedBatch, NoInjectionKeepsBatch) {
  EXPECT_EQ(injection_adjusted_batch(32, 0.0, 0.5, 16), 32u);
  EXPECT_EQ(injection_adjusted_batch(32, 0.5, 0.0, 16), 32u);
}

TEST(AdjustedBatch, NeverZero) {
  EXPECT_GE(injection_adjusted_batch(2, 1.0, 1.0, 64), 1u);
}

TEST(AdjustedBatch, EffectiveBatchApproximatelyRestored) {
  // b' * (1 + alpha*beta*N) ~ b: the constraint Eqn. 3 enforces.
  for (size_t n : {4u, 8u, 16u}) {
    const size_t bp = injection_adjusted_batch(32, 0.5, 0.5, n);
    const double restored = bp * (1.0 + 0.25 * n);
    EXPECT_NEAR(restored, 32.0, 8.0) << "N=" << n;
  }
}

class InjectorTest : public ::testing::Test {
 protected:
  static std::vector<std::vector<size_t>> proposals(size_t workers,
                                                    size_t batch) {
    std::vector<std::vector<size_t>> p(workers);
    for (size_t w = 0; w < workers; ++w)
      for (size_t i = 0; i < batch; ++i) p[w].push_back(w * 100 + i);
    return p;
  }
};

TEST_F(InjectorTest, DonorCountIsCeilAlphaN) {
  EXPECT_EQ(DataInjector({0.5, 0.5, 1}, 10).donor_count(), 5u);
  EXPECT_EQ(DataInjector({0.75, 0.5, 1}, 10).donor_count(), 8u);
  EXPECT_EQ(DataInjector({0.1, 0.5, 1}, 4).donor_count(), 1u);
}

TEST_F(InjectorTest, PoolSizeMatchesBetaShare) {
  DataInjector inj({0.5, 0.5, 7}, 8);
  const auto round = inj.run(0, proposals(8, 10), 100);
  EXPECT_EQ(round.donors.size(), 4u);
  EXPECT_EQ(round.pool.size(), 4u * 5u);  // beta * 10 per donor
  EXPECT_EQ(round.bytes_transferred, 20u * 100u);
}

TEST_F(InjectorTest, DeterministicPerIteration) {
  DataInjector inj({0.5, 0.5, 7}, 8);
  const auto a = inj.run(42, proposals(8, 10), 1);
  const auto b = inj.run(42, proposals(8, 10), 1);
  EXPECT_EQ(a.donors, b.donors);
  EXPECT_EQ(a.pool, b.pool);
}

TEST_F(InjectorTest, DonorsVaryAcrossIterations) {
  // "workers are chosen randomly at each iteration" (the K-anonymity
  // argument relies on this).
  DataInjector inj({0.5, 0.5, 7}, 8);
  std::set<std::vector<size_t>> distinct;
  for (uint64_t it = 0; it < 20; ++it) {
    auto donors = inj.run(it, proposals(8, 10), 1).donors;
    std::sort(donors.begin(), donors.end());
    distinct.insert(donors);
  }
  EXPECT_GT(distinct.size(), 3u);
}

TEST_F(InjectorTest, PoolComesFromDonorBatches) {
  DataInjector inj({0.5, 0.5, 7}, 4);
  const auto round = inj.run(3, proposals(4, 8), 1);
  for (size_t sample : round.pool) {
    const size_t owner = sample / 100;
    EXPECT_NE(std::find(round.donors.begin(), round.donors.end(), owner),
              round.donors.end())
        << "sample " << sample << " not from a donor";
  }
}

TEST_F(InjectorTest, ZeroBetaMeansNoTraffic) {
  DataInjector inj({0.5, 0.0, 7}, 8);
  const auto round = inj.run(0, proposals(8, 10), 100);
  EXPECT_TRUE(round.pool.empty());
  EXPECT_EQ(round.bytes_transferred, 0u);
}

TEST_F(InjectorTest, Validation) {
  EXPECT_THROW(DataInjector({1.5, 0.5, 1}, 4), std::invalid_argument);
  EXPECT_THROW(DataInjector({0.5, -0.1, 1}, 4), std::invalid_argument);
  EXPECT_THROW(DataInjector({0.5, 0.5, 1}, 0), std::invalid_argument);
  DataInjector inj({0.5, 0.5, 1}, 4);
  EXPECT_THROW(inj.run(0, proposals(3, 4), 1), std::invalid_argument);
}

TEST_F(InjectorTest, CommunicationCostIsSmallVsModelPayload) {
  // Paper: injection moves alpha*beta*N*b' sample payloads, negligible next
  // to hundreds of MB of model updates. Check the arithmetic at the paper's
  // own example: 16 workers, b=32, (0.5,0.5), 3 KB/sample (CIFAR).
  const size_t bp = injection_adjusted_batch(32, 0.5, 0.5, 16);
  DataInjector inj({0.5, 0.5, 7}, 16);
  const auto round = inj.run(0, proposals(16, bp), 3 * 1024);
  EXPECT_LT(round.bytes_transferred, 200u * 1024u);  // paper quotes 132 KB
}

}  // namespace
}  // namespace selsync
