// Properties of the three partitioning schemes (paper §III-D, Fig. 7).
#include "data/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "data/synthetic.hpp"

namespace selsync {
namespace {

TEST(DefDP, ChunksAreDisjointAndCoverAll) {
  const Partition p = partition_default(100, 4, 1);
  ASSERT_EQ(p.workers(), 4u);
  std::set<size_t> all;
  for (const auto& order : p.worker_order) {
    EXPECT_EQ(order.size(), 25u);
    all.insert(order.begin(), order.end());
  }
  EXPECT_EQ(all.size(), 100u);  // disjoint union == full dataset
}

TEST(DefDP, UnevenSplitSpreadsRemainder) {
  const Partition p = partition_default(10, 3, 1);
  std::vector<size_t> sizes;
  for (const auto& o : p.worker_order) sizes.push_back(o.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{3, 3, 4}));
}

TEST(DefDP, DeterministicBySeed) {
  EXPECT_EQ(partition_default(50, 4, 7).worker_order,
            partition_default(50, 4, 7).worker_order);
  EXPECT_NE(partition_default(50, 4, 7).worker_order,
            partition_default(50, 4, 8).worker_order);
}

TEST(SelDP, EveryWorkerSeesWholeDataset) {
  // The paper: "SelDP ensures all training samples are available to every
  // worker".
  const Partition p = partition_selsync(60, 4, 2);
  for (const auto& order : p.worker_order) {
    EXPECT_EQ(order.size(), 60u);
    std::set<size_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 60u);
  }
}

TEST(SelDP, HeadsAreRotatedChunks) {
  // Worker w's first chunk equals DefDP's chunk w (same seed): at any
  // synchronized iteration each worker contributes a distinct chunk.
  const size_t n = 64, workers = 4, seed = 3;
  const Partition def = partition_default(n, workers, seed);
  const Partition sel = partition_selsync(n, workers, seed);
  const size_t chunk = n / workers;
  for (size_t w = 0; w < workers; ++w)
    for (size_t i = 0; i < chunk; ++i)
      EXPECT_EQ(sel.worker_order[w][i], def.worker_order[w][i])
          << "worker " << w << " pos " << i;
}

TEST(SelDP, CircularRotationOrder) {
  // Worker w's stream is chunks (w, w+1, ..., w-1): worker 1's first chunk
  // is worker 0's second chunk.
  const Partition sel = partition_selsync(40, 4, 9);
  const size_t chunk = 10;
  for (size_t i = 0; i < chunk; ++i)
    EXPECT_EQ(sel.worker_order[1][i], sel.worker_order[0][chunk + i]);
  // ...and worker 3's last chunk is worker 0's third chunk.
  for (size_t i = 0; i < chunk; ++i)
    EXPECT_EQ(sel.worker_order[3][3 * chunk + i],
              sel.worker_order[0][2 * chunk + i]);
}

TEST(Partition, RejectsDegenerateInputs) {
  EXPECT_THROW(partition_default(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(partition_default(3, 4, 1), std::invalid_argument);
}

TEST(NonIid, OneLabelPerWorkerIsPure) {
  // The paper's CIFAR10 non-IID split: 10 workers, 1 label each.
  SyntheticClassConfig cfg;
  cfg.train_samples = 1000;
  cfg.classes = 10;
  const auto data = make_synthetic_classification(cfg);
  const Partition p = partition_noniid_by_label(*data.train, 10, 1, 4);
  std::set<int> labels_used;
  for (size_t w = 0; w < 10; ++w) {
    std::set<int> labels;
    for (size_t idx : p.worker_order[w])
      labels.insert(data.train->label_of(idx));
    EXPECT_EQ(labels.size(), 1u) << "worker " << w;
    labels_used.insert(*labels.begin());
  }
  EXPECT_EQ(labels_used.size(), 10u);  // each worker a distinct label
}

TEST(NonIid, MultipleLabelsPerWorker) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 2000;
  cfg.classes = 20;
  const auto data = make_synthetic_classification(cfg);
  const Partition p = partition_noniid_by_label(*data.train, 4, 5, 4);
  for (size_t w = 0; w < 4; ++w) {
    std::set<int> labels;
    for (size_t idx : p.worker_order[w])
      labels.insert(data.train->label_of(idx));
    EXPECT_EQ(labels.size(), 5u);
  }
}

TEST(NonIid, RejectsUnlabelledData) {
  SequenceDataset lm({0, 1, 2, 3, 4, 5, 6, 7, 8}, 10, 4);
  EXPECT_THROW(partition_noniid_by_label(lm, 2, 1, 1), std::invalid_argument);
}

TEST(MakePartition, DispatchesAllSchemes) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 100;
  cfg.classes = 10;
  const auto data = make_synthetic_classification(cfg);
  EXPECT_EQ(make_partition(PartitionScheme::kDefault, *data.train, 4, 1, 1)
                .worker_order[0]
                .size(),
            25u);
  EXPECT_EQ(make_partition(PartitionScheme::kSelSync, *data.train, 4, 1, 1)
                .worker_order[0]
                .size(),
            100u);
  EXPECT_EQ(
      make_partition(PartitionScheme::kNonIidLabel, *data.train, 10, 1, 1)
          .workers(),
      10u);
}

TEST(SchemeNames, AreStable) {
  EXPECT_STREQ(partition_scheme_name(PartitionScheme::kDefault), "DefDP");
  EXPECT_STREQ(partition_scheme_name(PartitionScheme::kSelSync), "SelDP");
  EXPECT_STREQ(partition_scheme_name(PartitionScheme::kNonIidLabel), "NonIID");
}

TEST(ShardLoader, WrapsAroundCyclically) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 10;
  const auto data = make_synthetic_classification(cfg);
  ShardLoader loader(data.train, {0, 1, 2}, 2);
  EXPECT_EQ(loader.next_indices(), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(loader.next_indices(), (std::vector<size_t>{2, 0}));
  EXPECT_EQ(loader.next_indices(), (std::vector<size_t>{1, 2}));
}

TEST(ShardLoader, EpochAccounting) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 10;
  const auto data = make_synthetic_classification(cfg);
  ShardLoader loader(data.train, {0, 1, 2, 3}, 2);
  EXPECT_DOUBLE_EQ(loader.epochs_consumed(), 0.0);
  loader.next_indices();
  loader.next_indices();
  EXPECT_DOUBLE_EQ(loader.epochs_consumed(), 1.0);
}

TEST(ShardLoader, NextBatchMaterializes) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 10;
  const auto data = make_synthetic_classification(cfg);
  ShardLoader loader(data.train, {5, 6}, 2);
  const Batch b = loader.next_batch();
  EXPECT_EQ(b.x.dim(0), 2u);
}

TEST(ShardLoader, Validation) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 10;
  const auto data = make_synthetic_classification(cfg);
  EXPECT_THROW(ShardLoader(nullptr, {0}, 1), std::invalid_argument);
  EXPECT_THROW(ShardLoader(data.train, {}, 1), std::invalid_argument);
  EXPECT_THROW(ShardLoader(data.train, {0}, 0), std::invalid_argument);
  ShardLoader ok(data.train, {0}, 1);
  EXPECT_THROW(ok.set_batch_size(0), std::invalid_argument);
}

}  // namespace
}  // namespace selsync
