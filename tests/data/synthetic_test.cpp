#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace selsync {
namespace {

TEST(SyntheticClassification, SizesAndLabelRange) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 200;
  cfg.test_samples = 50;
  cfg.classes = 5;
  const auto data = make_synthetic_classification(cfg);
  EXPECT_EQ(data.train->size(), 200u);
  EXPECT_EQ(data.test->size(), 50u);
  for (size_t i = 0; i < data.train->size(); ++i) {
    EXPECT_GE(data.train->label_of(i), 0);
    EXPECT_LT(data.train->label_of(i), 5);
  }
}

TEST(SyntheticClassification, AllClassesPresent) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 500;
  cfg.classes = 10;
  const auto data = make_synthetic_classification(cfg);
  std::set<int> seen;
  for (size_t i = 0; i < data.train->size(); ++i)
    seen.insert(data.train->label_of(i));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SyntheticClassification, DeterministicBySeed) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 50;
  const auto a = make_synthetic_classification(cfg);
  const auto b = make_synthetic_classification(cfg);
  const Batch ba = a.train->make_batch({0, 1, 2});
  const Batch bb = b.train->make_batch({0, 1, 2});
  for (size_t i = 0; i < ba.x.size(); ++i) EXPECT_EQ(ba.x[i], bb.x[i]);
  EXPECT_EQ(ba.targets, bb.targets);
}

TEST(SyntheticClassification, DifferentSeedsDiffer) {
  SyntheticClassConfig a_cfg, b_cfg;
  a_cfg.train_samples = b_cfg.train_samples = 50;
  b_cfg.seed = a_cfg.seed + 1;
  const auto a = make_synthetic_classification(a_cfg);
  const auto b = make_synthetic_classification(b_cfg);
  const Batch ba = a.train->make_batch({0});
  const Batch bb = b.train->make_batch({0});
  bool identical = ba.targets == bb.targets;
  for (size_t i = 0; identical && i < ba.x.size(); ++i)
    identical = ba.x[i] == bb.x[i];
  EXPECT_FALSE(identical);
}

TEST(SyntheticClassification, FeaturesBoundedByTanhWarp) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 100;
  const auto data = make_synthetic_classification(cfg);
  const Batch b = data.train->make_batch({0, 1, 2, 3, 4});
  for (size_t i = 0; i < b.x.size(); ++i) {
    EXPECT_GE(b.x[i], -1.f);
    EXPECT_LE(b.x[i], 1.f);
  }
}

TEST(SyntheticClassification, ImageModeShape) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 20;
  cfg.test_samples = 10;
  cfg.image_mode = true;
  cfg.channels = 3;
  cfg.height = 8;
  cfg.width = 8;
  const auto data = make_synthetic_classification(cfg);
  const Batch b = data.train->make_batch({0, 1});
  ASSERT_EQ(b.x.rank(), 4u);
  EXPECT_EQ(b.x.dim(1), 3u);
  EXPECT_EQ(b.x.dim(2), 8u);
  EXPECT_EQ(b.x.dim(3), 8u);
}

TEST(SyntheticClassification, TaskIsLearnableAboveChance) {
  // A nearest-class-mean classifier on the warped features must beat 1/K
  // chance, i.e. the generator preserves class structure through the warp.
  SyntheticClassConfig cfg;
  cfg.train_samples = 1500;
  cfg.test_samples = 300;
  cfg.classes = 5;
  cfg.feature_dim = 32;
  const auto data = make_synthetic_classification(cfg);

  const size_t d = 32;
  std::vector<std::vector<double>> means(5, std::vector<double>(d, 0.0));
  std::vector<size_t> counts(5, 0);
  for (size_t i = 0; i < data.train->size(); ++i) {
    const Batch b = data.train->make_batch({i});
    const int y = b.targets[0];
    for (size_t j = 0; j < d; ++j) means[y][j] += b.x[j];
    ++counts[y];
  }
  for (int k = 0; k < 5; ++k)
    for (size_t j = 0; j < d; ++j) means[k][j] /= counts[k];

  size_t hits = 0;
  for (size_t i = 0; i < data.test->size(); ++i) {
    const Batch b = data.test->make_batch({i});
    double best = 1e30;
    int arg = -1;
    for (int k = 0; k < 5; ++k) {
      double dist = 0;
      for (size_t j = 0; j < d; ++j) {
        const double diff = b.x[j] - means[k][j];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        arg = k;
      }
    }
    if (arg == b.targets[0]) ++hits;
  }
  const double acc = static_cast<double>(hits) / data.test->size();
  EXPECT_GT(acc, 0.4) << "chance is 0.2";
}

TEST(SyntheticText, StreamAndWindowSizes) {
  SyntheticTextConfig cfg;
  cfg.train_tokens = 1000;
  cfg.test_tokens = 200;
  cfg.vocab = 16;
  cfg.seq_len = 8;
  const auto data = make_synthetic_text(cfg);
  EXPECT_EQ(data.train->size(), (1000 - 1) / 8);
  EXPECT_EQ(data.train->vocab(), 16u);
  EXPECT_EQ(data.train->seq_len(), 8u);
}

TEST(SyntheticText, TokensInVocab) {
  SyntheticTextConfig cfg;
  cfg.train_tokens = 500;
  cfg.vocab = 12;
  const auto data = make_synthetic_text(cfg);
  const Batch b = data.train->make_batch({0, 1, 2});
  for (int t : b.tokens) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 12);
  }
}

TEST(SyntheticText, MarkovStructureIsPredictable) {
  // With low temperature, the empirical conditional entropy must be far
  // below log(vocab): the LM task has learnable structure.
  SyntheticTextConfig cfg;
  cfg.train_tokens = 20000;
  cfg.vocab = 16;
  cfg.branching = 3;
  cfg.temperature = 0.1;
  const auto data = make_synthetic_text(cfg);
  // Count distinct successors per token over the stream.
  std::vector<std::set<int>> succ(16);
  Batch all = data.train->make_batch([&] {
    std::vector<size_t> idx(data.train->size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    return idx;
  }());
  size_t dominant = 0;
  std::map<std::pair<int, int>, int> bigram;
  std::map<int, int> unigram;
  for (size_t i = 0; i < all.tokens.size(); ++i) {
    bigram[{all.tokens[i], all.targets[i]}]++;
    unigram[all.tokens[i]]++;
  }
  for (const auto& [pair, count] : bigram)
    if (count > unigram[pair.first] / 8) ++dominant;
  // Each token should have a handful of dominant successors, not all 16.
  EXPECT_LT(dominant, 16 * 8);
  EXPECT_GT(dominant, 0u);
}

TEST(SyntheticText, RejectsBadConfig) {
  SyntheticTextConfig cfg;
  cfg.branching = 0;
  EXPECT_THROW(make_synthetic_text(cfg), std::invalid_argument);
  cfg.branching = 100;
  cfg.vocab = 10;
  EXPECT_THROW(make_synthetic_text(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace selsync
