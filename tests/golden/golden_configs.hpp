// The golden-run grid: small, fast, fully deterministic training jobs
// covering strategy × backend × fault-plan combinations. The generator
// (tools/golden_gen) serializes each run's canonical result record into
// tests/golden/records/<name>.json; the parity test
// (tests/core/golden_parity_test.cpp) re-runs the grid and asserts the
// records are byte-identical. The checked-in records were produced by the
// pre-refactor seed trainer, so they pin the refactored WorkerLoop +
// CommBackend stack to the seed's exact training dynamics, simulated-time
// arithmetic and fault logs.
//
// SSP is deliberately absent: its asynchronous pushes interleave with real
// thread scheduling, so its model state is not bitwise reproducible (its
// parity is covered statistically by the strategy/integration tests).
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/run_record.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync::golden {

struct GoldenConfig {
  std::string name;
  TrainJob job;
};

/// A deterministic fault plan exercising crash/restart, recovery sync,
/// stragglers and message faults on the shared-memory transport.
inline FaultPlan golden_fault_plan() {
  FaultPlan plan;
  plan.seed = 7;
  plan.checkpoint_interval = 10;
  plan.restart_cost_s = 0.5;
  plan.crashes.push_back({/*rank=*/2, /*at_iteration=*/14,
                          /*downtime_iterations=*/6, /*restart=*/true});
  plan.stragglers.push_back({/*rank=*/1, /*from_iteration=*/5,
                             /*duration_iterations=*/10, /*slowdown=*/3.0});
  plan.messages.drop_prob = 0.05;
  plan.messages.delay_prob = 0.1;
  plan.messages.duplicate_prob = 0.05;
  return plan;
}

/// A message/PS-fault plan legal on every transport (no crashes).
inline FaultPlan golden_message_plan() {
  FaultPlan plan;
  plan.seed = 11;
  plan.messages.drop_prob = 0.08;
  plan.messages.delay_prob = 0.08;
  plan.ps.timeout_prob = 0.1;
  plan.ps.max_retries = 2;
  return plan;
}

inline std::vector<GoldenConfig> golden_grid() {
  using testing::small_class_job;
  std::vector<GoldenConfig> grid;
  auto add = [&](std::string name, TrainJob job) {
    grid.push_back({std::move(name), std::move(job)});
  };

  add("bsp_shared", small_class_job(StrategyKind::kBsp, 40));

  {
    TrainJob job = small_class_job(StrategyKind::kBsp, 40);
    job.backend = BackendKind::kRing;
    add("bsp_ring", job);
  }
  {
    TrainJob job = small_class_job(StrategyKind::kSelSync, 50);
    job.selsync.delta = 0.05;
    add("selsync_shared", job);
  }
  {
    TrainJob job = small_class_job(StrategyKind::kSelSync, 50);
    job.selsync.delta = 0.05;
    job.backend = BackendKind::kRing;
    add("selsync_ring", job);
  }
  {
    TrainJob job = small_class_job(StrategyKind::kSelSync, 50);
    job.selsync.delta = 0.05;
    job.selsync.aggregation = AggregationMode::kGradients;
    job.compression.kind = CompressionKind::kTopK;
    job.compression.topk_fraction = 0.25;
    add("selsync_ga_topk_shared", job);
  }
  {
    TrainJob job = small_class_job(StrategyKind::kFedAvg, 48);
    job.fedavg = {0.5, 0.25};
    add("fedavg_half_shared", job);
  }
  {
    TrainJob job = small_class_job(StrategyKind::kEasgd, 40);
    add("easgd_shared", job);
  }
  add("local_shared", small_class_job(StrategyKind::kLocalSgd, 40));
  {
    TrainJob job = small_class_job(StrategyKind::kBsp, 40);
    job.faults = golden_fault_plan();
    add("bsp_shared_chaos", job);
  }
  {
    TrainJob job = small_class_job(StrategyKind::kSelSync, 50);
    job.selsync.delta = 0.05;
    job.faults = golden_message_plan();
    add("selsync_shared_msgfaults", job);
  }
  {
    TrainJob job = small_class_job(StrategyKind::kBsp, 40);
    job.backend = BackendKind::kRing;
    job.faults = golden_message_plan();
    add("bsp_ring_msgfaults", job);
  }
  {
    TrainJob job = small_class_job(StrategyKind::kFedAvg, 48);
    job.fedavg = {0.5, 0.25};
    job.faults = golden_fault_plan();
    add("fedavg_half_shared_chaos", job);
  }
  return grid;
}

/// The run-record JSON with host-dependent wall time zeroed — everything
/// else (training dynamics, simulated time, fault log) is deterministic and
/// must be byte-stable across builds.
inline std::string canonical_result_json(const TrainResult& result) {
  TrainResult canonical = result;
  canonical.wall_time_s = 0.0;
  return result_to_json(canonical).dump(2) + "\n";
}

}  // namespace selsync::golden
