#include "stats/variance.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace selsync {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleObservation) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSmallSet) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(RunningStats, MatchesGaussianMoments) {
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.variance(), 9.0, 0.2);
}

TEST(RunningStats, NumericallyStableWithLargeOffset) {
  // Welford's point: huge common offsets must not destroy the variance.
  RunningStats s;
  for (double x : {1e9 + 1, 1e9 + 2, 1e9 + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

}  // namespace
}  // namespace selsync
