// Hessian top-eigenvalue probe (Fig. 4's second-order signal).
#include "stats/hessian.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/classifier.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"

namespace selsync {
namespace {

/// Model with a known Hessian: loss = 0.5 * sum_i a_i w_i^2 over a diagonal
/// quadratic. Top eigenvalue = max a_i, independent of w.
class DiagonalQuadratic : public Model {
 public:
  explicit DiagonalQuadratic(std::vector<float> curvatures)
      : curvatures_(std::move(curvatures)),
        w_("w", Tensor({curvatures_.size()})) {
    for (size_t i = 0; i < w_.value.size(); ++i)
      w_.value[i] = 1.f;  // start away from the optimum
  }

  float train_step(const Batch&) override {
    zero_grad();
    float loss = 0.f;
    for (size_t i = 0; i < w_.value.size(); ++i) {
      w_.grad[i] = curvatures_[i] * w_.value[i];
      loss += 0.5f * curvatures_[i] * w_.value[i] * w_.value[i];
    }
    return loss;
  }

  EvalStats eval_batch(const Batch&) override { return {}; }
  void set_training(bool) override {}

 protected:
  void collect_model_params(std::vector<Param*>& out) override {
    out.push_back(&w_);
  }

 private:
  std::vector<float> curvatures_;
  Param w_;
};

TEST(HessianProbe, RecoversTopEigenvalueOfDiagonalQuadratic) {
  DiagonalQuadratic model({1.f, 7.f, 3.f, 0.5f});
  HessianProbeOptions opt;
  opt.power_iterations = 30;
  const HessianProbeResult res = hessian_top_eigenvalue(model, Batch{}, opt);
  EXPECT_NEAR(res.top_eigenvalue, 7.0, 0.2);
}

TEST(HessianProbe, RestoresParameters) {
  DiagonalQuadratic model({2.f, 5.f});
  const auto before = model.get_flat_params();
  (void)hessian_top_eigenvalue(model, Batch{});
  EXPECT_EQ(model.get_flat_params(), before);
}

TEST(HessianProbe, ReportsGradNorm) {
  DiagonalQuadratic model({2.f, 5.f});  // w = [1,1] -> grad = [2,5]
  const HessianProbeResult res = hessian_top_eigenvalue(model, Batch{});
  EXPECT_NEAR(res.grad_sq_norm, 4.0 + 25.0, 1e-6);
}

TEST(HessianProbe, ZeroCurvatureGivesZeroEigenvalue) {
  DiagonalQuadratic model({0.f, 0.f, 0.f});
  const HessianProbeResult res = hessian_top_eigenvalue(model, Batch{});
  EXPECT_NEAR(res.top_eigenvalue, 0.0, 1e-3);
}

TEST(HessianProbe, WorksOnRealClassifier) {
  ClassifierConfig cfg;
  cfg.input_dim = 8;
  cfg.classes = 3;
  cfg.hidden = 8;
  cfg.resnet_blocks = 1;
  auto model = make_resnet_mlp(cfg, 1);
  Rng rng(2);
  Batch batch;
  batch.x = Tensor::randn({8, 8}, rng);
  batch.targets = {0, 1, 2, 0, 1, 2, 0, 1};
  HessianProbeOptions opt;
  opt.power_iterations = 10;
  const HessianProbeResult res = hessian_top_eigenvalue(*model, batch, opt);
  EXPECT_TRUE(std::isfinite(res.top_eigenvalue));
  EXPECT_GT(res.grad_sq_norm, 0.0);
  EXPECT_EQ(res.iterations_used, 10u);
}

TEST(HessianProbe, CrossEntropyHessianHasNonTrivialCurvature) {
  // Power iteration converges to the eigenvalue of largest magnitude; at a
  // random init the loss surface is sharply curved (possibly in a negative
  // direction), so the magnitude must be clearly non-zero.
  ClassifierConfig cfg;
  cfg.input_dim = 8;
  cfg.classes = 3;
  cfg.hidden = 8;
  cfg.resnet_blocks = 1;
  auto model = make_resnet_mlp(cfg, 3);
  Rng rng(4);
  Batch batch;
  batch.x = Tensor::randn({16, 8}, rng);
  batch.targets.resize(16);
  for (size_t i = 0; i < 16; ++i) batch.targets[i] = static_cast<int>(i % 3);
  const HessianProbeResult res = hessian_top_eigenvalue(*model, batch);
  EXPECT_GT(std::fabs(res.top_eigenvalue), 0.05);
}

}  // namespace
}  // namespace selsync
