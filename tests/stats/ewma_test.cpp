#include "stats/ewma.hpp"

#include <gtest/gtest.h>

namespace selsync {
namespace {

TEST(Ewma, FirstObservationSeedsValue) {
  Ewma e(0.2);
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.update(10.0), 10.0);
  EXPECT_TRUE(e.initialized());
}

TEST(Ewma, RecursiveFormula) {
  Ewma e(0.25);
  e.update(4.0);
  EXPECT_DOUBLE_EQ(e.update(8.0), 0.25 * 8.0 + 0.75 * 4.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.16);
  for (int i = 0; i < 200; ++i) e.update(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ewma, SmoothsNoise) {
  // The smoothed sequence must vary far less than the raw input.
  Ewma e(0.1);
  double prev = e.update(0.0);
  double max_jump = 0.0;
  for (int i = 1; i < 100; ++i) {
    const double raw = (i % 2 == 0) ? 0.0 : 10.0;  // oscillates by 10
    const double v = e.update(raw);
    max_jump = std::max(max_jump, std::abs(v - prev));
    prev = v;
  }
  EXPECT_LT(max_jump, 2.0);
}

TEST(Ewma, AlphaOneTracksInputExactly) {
  Ewma e(1.0);
  e.update(3.0);
  EXPECT_DOUBLE_EQ(e.update(5.0), 5.0);
}

TEST(Ewma, WindowBoundsRetainedHistory) {
  Ewma e(0.2, 25);
  for (int i = 0; i < 100; ++i) e.update(i);
  EXPECT_EQ(e.observations_retained(), 25u);
  EXPECT_DOUBLE_EQ(e.history().front(), 75.0);
  EXPECT_DOUBLE_EQ(e.history().back(), 99.0);
}

TEST(Ewma, HigherAlphaReactsFaster) {
  Ewma slow(0.05), fast(0.5);
  slow.update(0.0);
  fast.update(0.0);
  slow.update(10.0);
  fast.update(10.0);
  EXPECT_GT(fast.value(), slow.value());
}

TEST(Ewma, RejectsBadParameters) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
  EXPECT_THROW(Ewma(0.5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace selsync
