// Relative gradient change Δ(g_i), Eqn. 2 of the paper.
#include "stats/grad_change.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace selsync {
namespace {

TEST(RelativeGradChange, FirstObservationIsZero) {
  RelativeGradChange gc(0.16);
  EXPECT_DOUBLE_EQ(gc.update(5.0), 0.0);
}

TEST(RelativeGradChange, MatchesEqn2OnSecondStep) {
  RelativeGradChange gc(0.5);
  gc.update(4.0);  // smoothed = 4
  // new smoothed = 0.5*8 + 0.5*4 = 6; delta = |6-4|/4 = 0.5.
  EXPECT_NEAR(gc.update(8.0), 0.5, 1e-12);
}

TEST(RelativeGradChange, AbsoluteValueOfDecline) {
  RelativeGradChange gc(0.5);
  gc.update(8.0);
  // smoothed: 0.5*0 + 0.5*8 = 4; delta = |4-8|/8 = 0.5 (positive).
  EXPECT_NEAR(gc.update(0.0), 0.5, 1e-12);
}

TEST(RelativeGradChange, ConstantNormsGiveZeroDelta) {
  RelativeGradChange gc(0.16);
  gc.update(3.0);
  for (int i = 0; i < 50; ++i) EXPECT_NEAR(gc.update(3.0), 0.0, 1e-12);
}

TEST(RelativeGradChange, SaturatingGradientsDriveDeltaToZero) {
  // The paper's core observation: as gradients saturate, Δ(g_i) -> 0.
  RelativeGradChange gc(0.16);
  double last = 1.0;
  for (int i = 0; i < 300; ++i)
    last = gc.update(10.0 * std::exp(-i / 30.0) + 1.0);
  EXPECT_LT(last, 0.01);
}

TEST(RelativeGradChange, SpikeProducesLargeDelta) {
  // A sudden regime change (e.g. LR decay, Fig. 5) must register.
  RelativeGradChange gc(0.5);
  for (int i = 0; i < 20; ++i) gc.update(1.0);
  const double spike = gc.update(100.0);
  EXPECT_GT(spike, 10.0);
}

TEST(RelativeGradChange, SmoothingSuppressesSingleOutliers) {
  // With a small alpha, one noisy batch must not look like a regime change.
  RelativeGradChange smooth(0.05), reactive(0.9);
  for (int i = 0; i < 20; ++i) {
    smooth.update(1.0);
    reactive.update(1.0);
  }
  EXPECT_LT(smooth.update(5.0), reactive.update(5.0));
}

TEST(RelativeGradChange, UpdateFromGradComputesSquaredNorm) {
  RelativeGradChange gc(1.0);
  const std::vector<float> g1{3.f, 4.f};  // ||g||² = 25
  gc.update_from_grad(g1);
  EXPECT_DOUBLE_EQ(gc.smoothed_sq_norm(), 25.0);
  const std::vector<float> g2{6.f, 8.f};  // ||g||² = 100
  // alpha=1 -> smoothed jumps to 100; delta = 75/25 = 3.
  EXPECT_NEAR(gc.update_from_grad(g2), 3.0, 1e-9);
}

TEST(RelativeGradChange, IterationsCounted) {
  RelativeGradChange gc(0.2);
  for (int i = 0; i < 7; ++i) gc.update(1.0);
  EXPECT_EQ(gc.iterations(), 7u);
}

TEST(RelativeGradChange, DeltaThresholdSemantics) {
  // delta >= 0 always: a zero threshold means "synchronize every step"
  // (paper: δ=0 <=> BSP).
  RelativeGradChange gc(0.16);
  for (int i = 0; i < 10; ++i) {
    const double d = gc.update(1.0 + 0.01 * i);
    EXPECT_GE(d, 0.0);
  }
}

}  // namespace
}  // namespace selsync
