#include "stats/kde.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace selsync {
namespace {

std::vector<float> gaussian_samples(size_t n, float mean, float stddev,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<float> s(n);
  for (auto& v : s) v = static_cast<float>(rng.normal(mean, stddev));
  return s;
}

TEST(Silverman, ScalesWithSpreadAndCount) {
  const auto narrow = gaussian_samples(500, 0.f, 0.5f, 1);
  const auto wide = gaussian_samples(500, 0.f, 2.0f, 2);
  EXPECT_GT(silverman_bandwidth(wide), silverman_bandwidth(narrow));

  const auto few = gaussian_samples(50, 0.f, 1.f, 3);
  const auto many = gaussian_samples(5000, 0.f, 1.f, 4);
  EXPECT_GT(silverman_bandwidth(few), silverman_bandwidth(many));
}

TEST(Kde, DensityIntegratesToOne) {
  const auto s = gaussian_samples(400, 1.f, 1.5f, 5);
  const KdeResult kde = gaussian_kde(s, 256);
  double integral = 0.0;
  for (size_t i = 1; i < kde.grid.size(); ++i)
    integral += 0.5 * (kde.density[i] + kde.density[i - 1]) *
                (kde.grid[i] - kde.grid[i - 1]);
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde, PeaksNearTrueMean) {
  const auto s = gaussian_samples(2000, 3.f, 0.5f, 6);
  const KdeResult kde = gaussian_kde(s, 256);
  size_t arg = 0;
  for (size_t i = 1; i < kde.density.size(); ++i)
    if (kde.density[i] > kde.density[arg]) arg = i;
  EXPECT_NEAR(kde.grid[arg], 3.0, 0.15);
}

TEST(Kde, RecoversGaussianShape) {
  const auto s = gaussian_samples(5000, 0.f, 1.f, 7);
  const KdeResult kde = gaussian_kde(s, 128);
  // Compare against the true pdf at a few points.
  for (double x : {-1.0, 0.0, 1.0}) {
    // Find the nearest grid point.
    size_t best = 0;
    for (size_t i = 1; i < kde.grid.size(); ++i)
      if (std::fabs(kde.grid[i] - x) < std::fabs(kde.grid[best] - x)) best = i;
    const double truth =
        std::exp(-x * x / 2.0) / std::sqrt(2.0 * 3.14159265358979);
    EXPECT_NEAR(kde.density[best], truth, 0.05) << "at x=" << x;
  }
}

TEST(Kde, ExplicitBandwidthRespected) {
  const auto s = gaussian_samples(100, 0.f, 1.f, 8);
  const KdeResult kde = gaussian_kde(s, 64, 0.33);
  EXPECT_DOUBLE_EQ(kde.bandwidth, 0.33);
}

TEST(Kde, RejectsDegenerateInputs) {
  EXPECT_THROW(gaussian_kde({}, 64), std::invalid_argument);
  const std::vector<float> one{1.f};
  EXPECT_THROW(gaussian_kde(one, 1), std::invalid_argument);
}

TEST(KdeDistance, IdenticalDistributionsNearZero) {
  const auto a = gaussian_samples(1000, 0.f, 1.f, 9);
  const auto b = gaussian_samples(1000, 0.f, 1.f, 10);
  EXPECT_LT(kde_l1_distance(a, b), 0.25);
}

TEST(KdeDistance, SeparatedDistributionsNearTwo) {
  const auto a = gaussian_samples(500, 0.f, 0.3f, 11);
  const auto b = gaussian_samples(500, 10.f, 0.3f, 12);
  EXPECT_GT(kde_l1_distance(a, b), 1.7);
}

TEST(KdeDistance, MonotoneInSeparation) {
  // Fig. 11's usage: "distance from BSP's weight distribution" must grow as
  // distributions drift apart.
  const auto base = gaussian_samples(800, 0.f, 1.f, 13);
  const auto near = gaussian_samples(800, 0.5f, 1.f, 14);
  const auto far = gaussian_samples(800, 3.f, 1.f, 15);
  EXPECT_LT(kde_l1_distance(base, near), kde_l1_distance(base, far));
}

}  // namespace
}  // namespace selsync
