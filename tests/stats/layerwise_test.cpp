#include "stats/layerwise_grad_change.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/models.hpp"
#include "stats/hessian.hpp"

namespace selsync {
namespace {

std::unique_ptr<Model> tiny_model(uint64_t seed = 1) {
  ClassifierConfig cfg;
  cfg.input_dim = 8;
  cfg.classes = 3;
  cfg.hidden = 8;
  cfg.resnet_blocks = 1;
  return make_resnet_mlp(cfg, seed);
}

Batch tiny_batch(uint64_t seed = 2) {
  Rng rng(seed);
  Batch b;
  b.x = Tensor::randn({8, 8}, rng);
  b.targets = {0, 1, 2, 0, 1, 2, 0, 1};
  return b;
}

TEST(LayerwiseGradChange, OneTrackerPerParameterTensor) {
  auto model = tiny_model();
  LayerwiseGradChange lw(*model);
  EXPECT_EQ(lw.layers(), model->params().size());
  EXPECT_EQ(lw.layer_name(0), model->params()[0]->name);
}

TEST(LayerwiseGradChange, FirstUpdateIsZeroDeltas) {
  auto model = tiny_model();
  LayerwiseGradChange lw(*model);
  model->train_step(tiny_batch());
  const auto& deltas = lw.update();
  for (double d : deltas) EXPECT_DOUBLE_EQ(d, 0.0);
  EXPECT_DOUBLE_EQ(lw.fraction_above(0.01), 0.0);
}

TEST(LayerwiseGradChange, TracksPerLayerMovement) {
  auto model = tiny_model();
  LayerwiseGradChange lw(*model, 0.5);
  const Batch batch = tiny_batch();
  for (int i = 0; i < 5; ++i) {
    model->train_step(batch);
    model->apply_sgd(0.1f);
    lw.update();
  }
  // After several SGD steps on a fixed batch, at least one layer's gradient
  // norm is still changing.
  EXPECT_GT(lw.fraction_above(1e-4), 0.0);
  EXPECT_GE(lw.global_delta(), 0.0);
}

TEST(LayerwiseGradChange, FractionAboveMonotoneInThreshold) {
  auto model = tiny_model();
  LayerwiseGradChange lw(*model, 0.5);
  const Batch batch = tiny_batch();
  for (int i = 0; i < 4; ++i) {
    model->train_step(batch);
    model->apply_sgd(0.1f);
    lw.update();
  }
  EXPECT_GE(lw.fraction_above(0.001), lw.fraction_above(0.01));
  EXPECT_GE(lw.fraction_above(0.01), lw.fraction_above(1.0));
  EXPECT_DOUBLE_EQ(lw.fraction_above(1e12), 0.0);
}

TEST(LayerwiseGradChange, LayersSaturateAtDifferentRates) {
  // The motivation for per-layer tracking: after training a while, deltas
  // differ across layers (not all identical).
  auto model = tiny_model();
  LayerwiseGradChange lw(*model, 0.3);
  const Batch batch = tiny_batch();
  for (int i = 0; i < 12; ++i) {
    model->train_step(batch);
    model->apply_sgd(0.05f);
    lw.update();
  }
  const auto& d = lw.last_deltas();
  bool differs = false;
  for (size_t i = 1; i < d.size(); ++i)
    if (std::abs(d[i] - d[0]) > 1e-9) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Hutchinson, TraceOfKnownDiagonalQuadratic) {
  // Reuses the DiagonalQuadratic idea: loss = 0.5 sum a_i w_i^2 has
  // tr(H) = sum a_i exactly, and Rademacher probes are exact for diagonal
  // Hessians (z_i^2 = 1).
  class DiagQuad : public Model {
   public:
    explicit DiagQuad(std::vector<float> a) : a_(std::move(a)), w_("w", Tensor({a_.size()})) {
      w_.value.fill(1.f);
    }
    float train_step(const Batch&) override {
      zero_grad();
      float loss = 0.f;
      for (size_t i = 0; i < a_.size(); ++i) {
        w_.grad[i] = a_[i] * w_.value[i];
        loss += 0.5f * a_[i] * w_.value[i] * w_.value[i];
      }
      return loss;
    }
    EvalStats eval_batch(const Batch&) override { return {}; }
    void set_training(bool) override {}

   protected:
    void collect_model_params(std::vector<Param*>& out) override {
      out.push_back(&w_);
    }

   private:
    std::vector<float> a_;
    Param w_;
  };

  DiagQuad model({1.f, 2.f, 3.f, 4.f});
  HutchinsonOptions opt;
  opt.probes = 4;
  const HutchinsonResult res = hessian_trace_hutchinson(model, Batch{}, opt);
  EXPECT_NEAR(res.trace_estimate, 10.0, 0.5);
  EXPECT_EQ(res.probes_used, 4u);
  // Parameters restored.
  EXPECT_FLOAT_EQ(model.get_flat_params()[0], 1.f);
}

TEST(Hutchinson, WorksOnRealModel) {
  auto model = tiny_model();
  const HutchinsonResult res =
      hessian_trace_hutchinson(*model, tiny_batch(), {.probes = 4});
  EXPECT_TRUE(std::isfinite(res.trace_estimate));
  EXPECT_GE(res.stddev, 0.0);
}

}  // namespace
}  // namespace selsync
