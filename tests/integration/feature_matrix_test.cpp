// Feature-composition matrix: the orthogonal knobs (strategy, backend,
// compression, quorum, stragglers, injection) must compose without breaking
// the trainer's invariants. Each combination runs end to end and must keep
// accounting consistent, stay finite, and be deterministic.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

struct Combo {
  const char* name;
  StrategyKind strategy;
  BackendKind backend;
  CompressionKind compression;
  double quorum;
  bool straggler;
  bool injection;
};

class FeatureMatrix : public ::testing::TestWithParam<Combo> {};

TrainJob job_for(const Combo& combo) {
  TrainJob job = small_class_job(combo.strategy, 60);
  job.backend = combo.backend;
  if (combo.compression != CompressionKind::kNone) {
    job.compression = {combo.compression, 0.05, true};
    if (combo.strategy == StrategyKind::kSelSync)
      job.selsync.aggregation = AggregationMode::kGradients;
  }
  job.selsync.delta = 0.02;
  job.selsync.sync_quorum = combo.quorum;
  if (combo.straggler) {
    job.worker_speed.assign(job.workers, 1.0);
    job.worker_speed.back() = 3.0;
  }
  if (combo.injection) {
    job.partition = PartitionScheme::kNonIidLabel;
    job.labels_per_worker = 3;  // 4 workers x 3 labels over 10 classes
    job.injection = {true, 0.5, 0.5};
  }
  return job;
}

TEST_P(FeatureMatrix, RunsWithConsistentAccounting) {
  const TrainResult r = run_training(job_for(GetParam()));
  EXPECT_EQ(r.iterations, 60u);
  if (r.lssr_applicable) {
    EXPECT_EQ(r.sync_steps + r.local_steps, r.iterations);
  }
  EXPECT_TRUE(std::isfinite(r.final_eval.loss));
  EXPECT_FALSE(r.diverged);
  EXPECT_GE(r.comm_bytes, 0.0);
  EXPECT_GT(r.sim_time_s, 0.0);
}

TEST_P(FeatureMatrix, Deterministic) {
  if (GetParam().strategy == StrategyKind::kSsp)
    GTEST_SKIP() << "SSP is asynchronous by design: thread interleaving "
                    "legitimately changes the update order";
  const TrainJob job = job_for(GetParam());
  const TrainResult a = run_training(job);
  const TrainResult b = run_training(job);
  EXPECT_EQ(a.sync_steps, b.sync_steps);
  EXPECT_DOUBLE_EQ(a.final_eval.loss, b.final_eval.loss);
  EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, FeatureMatrix,
    ::testing::Values(
        Combo{"selsync_ring_topk", StrategyKind::kSelSync,
              BackendKind::kRing, CompressionKind::kTopK, 0.0, false, false},
        Combo{"selsync_quorum_straggler", StrategyKind::kSelSync,
              BackendKind::kSharedMemory, CompressionKind::kNone, 0.5, true,
              false},
        Combo{"selsync_injection_noniid", StrategyKind::kSelSync,
              BackendKind::kSharedMemory, CompressionKind::kNone, 0.0, false,
              true},
        Combo{"selsync_tree", StrategyKind::kSelSync, BackendKind::kTree,
              CompressionKind::kNone, 0.0, false, false},
        Combo{"selsync_ps_topk", StrategyKind::kSelSync,
              BackendKind::kParameterServer, CompressionKind::kTopK, 0.0,
              false, false},
        Combo{"bsp_ring_signsgd_straggler", StrategyKind::kBsp,
              BackendKind::kRing, CompressionKind::kSignSgd, 0.0, true,
              false},
        Combo{"bsp_quant8", StrategyKind::kBsp, BackendKind::kSharedMemory,
              CompressionKind::kQuant8, 0.0, false, false},
        Combo{"bsp_tree_straggler", StrategyKind::kBsp, BackendKind::kTree,
              CompressionKind::kNone, 0.0, true, false},
        Combo{"bsp_ps", StrategyKind::kBsp, BackendKind::kParameterServer,
              CompressionKind::kNone, 0.0, false, false},
        Combo{"fedavg_ring", StrategyKind::kFedAvg, BackendKind::kRing,
              CompressionKind::kNone, 0.0, false, false},
        Combo{"fedavg_tree", StrategyKind::kFedAvg, BackendKind::kTree,
              CompressionKind::kNone, 0.0, false, false},
        Combo{"fedavg_ps_injection", StrategyKind::kFedAvg,
              BackendKind::kParameterServer, CompressionKind::kNone, 0.0,
              false, true},
        Combo{"easgd_straggler", StrategyKind::kEasgd,
              BackendKind::kSharedMemory, CompressionKind::kNone, 0.0, true,
              false},
        Combo{"easgd_ring", StrategyKind::kEasgd, BackendKind::kRing,
              CompressionKind::kNone, 0.0, false, false},
        Combo{"local_injection", StrategyKind::kLocalSgd,
              BackendKind::kSharedMemory, CompressionKind::kNone, 0.0, false,
              true},
        Combo{"ssp_straggler", StrategyKind::kSsp, BackendKind::kSharedMemory,
              CompressionKind::kNone, 0.0, true, false}),
    [](const auto& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace selsync
