// Compressed transports under chaos: the ring and tree data planes with a
// Top-k codec fused in, running over lossy links (drop / delay / duplicate).
// The contract under test:
//  * every replica decodes the identical reduced payload each round, faults
//    or no faults (the encode-once / forward-verbatim protocol);
//  * DGC error feedback stays unbiased: what the codec drops in one round is
//    fed back into the next, so the *cumulative* reconstruction tracks the
//    cumulative true sum with bounded error — the residual does not grow
//    with the round count;
//  * the whole thing is deterministic, byte for byte, under a fixed fault
//    seed.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/compressed_chunk.hpp"
#include "comm/fault_injector.hpp"
#include "comm/tree_allreduce.hpp"

namespace selsync {
namespace {

constexpr size_t kN = 4, kDim = 32, kRounds = 60;

template <typename F>
void spawn(size_t n, F body) {
  std::vector<std::thread> threads;
  for (size_t r = 0; r < n; ++r) threads.emplace_back([&, r] { body(r); });
  for (auto& t : threads) t.join();
}

FaultPlan lossy_plan() {
  FaultPlan plan;
  plan.seed = 77;
  plan.messages.drop_prob = 0.15;
  plan.messages.delay_prob = 0.15;
  plan.messages.duplicate_prob = 0.1;
  return plan;
}

CompressionConfig topk_codec() {
  CompressionConfig cc;
  cc.kind = CompressionKind::kTopK;
  cc.topk_fraction = 0.25;
  cc.error_feedback = true;
  return cc;
}

/// Rank r's gradient at `round`: fixed magnitudes per element so small
/// entries are persistently starved by Top-k and only error feedback can
/// deliver their mass.
std::vector<float> input_of(size_t rank, size_t round) {
  std::vector<float> v(kDim);
  for (size_t i = 0; i < kDim; ++i)
    v[i] = (0.02f + 0.03f * static_cast<float>(i % 8)) *
           (i % 2 == 0 ? 1.f : -1.f) *
           (1.f + 0.1f * static_cast<float>(rank)) *
           (1.f + 0.01f * static_cast<float>(round % 5));
  return v;
}

/// One full experiment: `rounds` compressed allreduces through `run_round`,
/// accumulating each round's decoded output and the true (float rank-order)
/// sum. Returns {accumulated_output, accumulated_truth, final_outputs}.
struct ChaosRun {
  std::vector<double> accum_out;
  std::vector<double> accum_true;
  std::vector<std::vector<float>> last;  // per-rank final round outputs
};

template <typename RunRound>
ChaosRun drive(RunRound run_round) {
  ChaosRun result;
  result.accum_out.assign(kDim, 0.0);
  result.accum_true.assign(kDim, 0.0);
  for (size_t round = 0; round < kRounds; ++round) {
    std::vector<std::vector<float>> data(kN);
    for (size_t r = 0; r < kN; ++r) data[r] = input_of(r, round);
    for (size_t i = 0; i < kDim; ++i) {
      float acc = 0.f;
      for (size_t r = 0; r < kN; ++r) acc += data[r][i];
      result.accum_true[i] += static_cast<double>(acc);
    }
    run_round(data);
    // Replica consistency: every rank must hold the identical decode.
    for (size_t r = 1; r < kN; ++r)
      for (size_t i = 0; i < kDim; ++i)
        EXPECT_EQ(data[r][i], data[0][i])
            << "round " << round << " rank " << r << " elem " << i;
    for (size_t i = 0; i < kDim; ++i)
      result.accum_out[i] += static_cast<double>(data[0][i]);
    result.last = std::move(data);
  }
  return result;
}

/// The unbiasedness bound: per element, the cumulative reconstruction may
/// differ from the cumulative truth only by the standing residual, which is
/// bounded independent of the round count. Dividing by kRounds, the mean
/// per-round error must be a small fraction of the mean per-round magnitude.
void expect_error_feedback_unbiased(const ChaosRun& run) {
  double err = 0.0, mag = 0.0;
  for (size_t i = 0; i < kDim; ++i) {
    err += std::abs(run.accum_out[i] - run.accum_true[i]);
    mag += std::abs(run.accum_true[i]);
  }
  ASSERT_GT(mag, 0.0);
  EXPECT_LT(err / mag, 0.05)
      << "cumulative codec error grows with rounds: error feedback lost mass";
}

TEST(CompressedChaos, RingTopKOverLossyLinksKeepsErrorFeedbackUnbiased) {
  FaultInjector inj(lossy_plan(), kN);
  RingAllreduce ring(kN, &inj);
  ChunkCodec codec(topk_codec(), kN);

  const ChaosRun run = drive([&](std::vector<std::vector<float>>& data) {
    spawn(kN, [&](size_t r) {
      codec.begin_round(r, 0.0);
      ring.run(r, data[r], &codec);
      inj.take_pending_delay(r);
      EXPECT_LT(codec.round_ratio(r), 1.0) << "codec did not shrink wire";
    });
  });
  expect_error_feedback_unbiased(run);

  const FaultSummary summary = inj.summary();
  EXPECT_GT(summary.messages_dropped + summary.messages_delayed +
                summary.messages_duplicated,
            0u)
      << "fault plan injected nothing; probabilities too low for the test";
}

TEST(CompressedChaos, TreeTopKOverLossyLinksKeepsErrorFeedbackUnbiased) {
  FaultInjector inj(lossy_plan(), kN);
  TreeAllreduce tree(kN, &inj);
  ChunkCodec codec(topk_codec(), kN);

  const ChaosRun run = drive([&](std::vector<std::vector<float>>& data) {
    spawn(kN, [&](size_t r) {
      codec.begin_round(r, 0.0);
      tree.run(r, data[r], &codec);
      inj.take_pending_delay(r);
      EXPECT_LT(codec.round_ratio(r), 1.0) << "codec did not shrink wire";
    });
  });
  expect_error_feedback_unbiased(run);

  const FaultSummary summary = inj.summary();
  EXPECT_GT(summary.messages_dropped + summary.messages_delayed +
                summary.messages_duplicated,
            0u);
}

TEST(CompressedChaos, LossyCompressedRingIsDeterministic) {
  // Two independent executions with the same fault seed and codec config
  // must agree byte for byte — faults and codecs both draw from fixed
  // per-rank streams.
  auto once = [] {
    FaultInjector inj(lossy_plan(), kN);
    RingAllreduce ring(kN, &inj);
    ChunkCodec codec(topk_codec(), kN);
    return drive([&](std::vector<std::vector<float>>& data) {
      spawn(kN, [&](size_t r) {
        codec.begin_round(r, 0.0);
        ring.run(r, data[r], &codec);
        inj.take_pending_delay(r);
      });
    });
  };
  const ChaosRun a = once();
  const ChaosRun b = once();
  for (size_t r = 0; r < kN; ++r)
    for (size_t i = 0; i < kDim; ++i)
      EXPECT_EQ(a.last[r][i], b.last[r][i]) << "rank " << r << " elem " << i;
}

}  // namespace
}  // namespace selsync
