// End-to-end convergence: every strategy must actually learn, and the
// paper's qualitative orderings must hold on the synthetic workloads.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;
using testing::small_lm_job;

class StrategyConvergence : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(StrategyConvergence, BeatsChanceOnClassification) {
  TrainJob job = small_class_job(GetParam(), 400);
  job.eval_interval = 100;
  if (GetParam() == StrategyKind::kSelSync) job.selsync.delta = 0.1;
  if (GetParam() == StrategyKind::kFedAvg) job.fedavg = {1.0, 0.25};
  if (GetParam() == StrategyKind::kSsp) job.ssp.staleness = 20;
  const TrainResult r = run_training(job);
  EXPECT_GT(r.best_top1, 0.3) << strategy_kind_name(GetParam())
                              << " (chance = 0.1)";
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyConvergence,
                         ::testing::Values(StrategyKind::kBsp,
                                           StrategyKind::kLocalSgd,
                                           StrategyKind::kFedAvg,
                                           StrategyKind::kSsp,
                                           StrategyKind::kSelSync),
                         [](const auto& param_info) {
                           return strategy_kind_name(param_info.param);
                         });

TEST(Convergence, AccuracyImprovesOverTime) {
  // Evaluate early enough (step 10) that the first point predates
  // convergence on this small task.
  TrainJob job = small_class_job(StrategyKind::kBsp, 300);
  job.eval_interval = 10;
  const TrainResult r = run_training(job);
  ASSERT_GE(r.eval_history.size(), 3u);
  EXPECT_GT(r.best_top1, r.eval_history.front().top1);
}

TEST(Convergence, LossDecreasesOverTime) {
  // Test loss can drift up late (overfitting) while accuracy still climbs;
  // the requirement is that the minimum achieved loss beats the first
  // evaluation.
  TrainJob job = small_class_job(StrategyKind::kBsp, 300);
  job.eval_interval = 10;
  const TrainResult r = run_training(job);
  double min_loss = r.eval_history.front().loss;
  for (const EvalPoint& pt : r.eval_history)
    min_loss = std::min(min_loss, pt.loss);
  EXPECT_LT(min_loss, r.eval_history.front().loss);
}

TEST(Convergence, TransformerPerplexityDropsBelowUniform) {
  // Uniform guessing over 32 tokens gives perplexity 32; the Markov
  // structure must push it well below.
  TrainJob job = small_lm_job(StrategyKind::kBsp, 300);
  job.eval_interval = 100;
  const TrainResult r = run_training(job);
  EXPECT_LT(r.best_perplexity, 24.0);
}

TEST(Convergence, SelSyncMatchesBspAccuracyWithFarLessCommunication) {
  // The headline claim: same-or-better accuracy with most steps local.
  TrainJob bsp = small_class_job(StrategyKind::kBsp, 400);
  TrainJob sel = small_class_job(StrategyKind::kSelSync, 400);
  sel.selsync.delta = 0.15;
  const TrainResult rb = run_training(bsp);
  const TrainResult rs = run_training(sel);
  EXPECT_GT(rs.lssr(), 0.5);
  EXPECT_GE(rs.best_top1, rb.best_top1 - 0.05);
  EXPECT_LT(rs.sim_time_s, rb.sim_time_s);
}

TEST(Convergence, SelSyncSelDpBeatsDefDp) {
  // Fig. 9: with mostly-local training, DefDP starves workers of the other
  // shards and SelDP must generalize better.
  TrainJob seldp = small_class_job(StrategyKind::kSelSync, 400);
  seldp.selsync.delta = 0.2;  // mostly local updates
  seldp.partition = PartitionScheme::kSelSync;
  TrainJob defdp = seldp;
  defdp.partition = PartitionScheme::kDefault;
  const TrainResult rs = run_training(seldp);
  const TrainResult rd = run_training(defdp);
  EXPECT_GE(rs.best_top1, rd.best_top1 - 0.02)
      << "SelDP should not lose to DefDP under semi-synchrony";
}

TEST(Convergence, MoreWorkersSameBudgetAtLeastComparable) {
  // Sanity: scaling out with BSP must not destroy accuracy at the same
  // per-worker iteration budget.
  TrainJob small = small_class_job(StrategyKind::kBsp, 200);
  small.workers = 2;
  TrainJob big = small_class_job(StrategyKind::kBsp, 200);
  big.workers = 8;
  const TrainResult rs = run_training(small);
  const TrainResult rb = run_training(big);
  EXPECT_GT(rb.best_top1, rs.best_top1 - 0.1);
}

}  // namespace
}  // namespace selsync
