// Non-IID training and data injection (paper §III-E, Fig. 1b, Fig. 12).
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "optim/optimizer.hpp"

namespace selsync {
namespace {

SyntheticClassData& noniid_data() {
  static SyntheticClassData data = [] {
    SyntheticClassConfig cfg;
    cfg.train_samples = 2000;
    cfg.test_samples = 400;
    cfg.classes = 10;
    cfg.feature_dim = 32;
    // Harder task than the IID suites: with well-separated clusters,
    // averaging ten single-label experts works too well and the published
    // non-IID degradation (Fig. 1b) does not appear.
    cfg.class_separation = 1.8;
    cfg.noise_stddev = 1.2;
    return make_synthetic_classification(cfg);
  }();
  return data;
}

TrainJob noniid_job(StrategyKind strategy, uint64_t iterations) {
  TrainJob job;
  job.strategy = strategy;
  job.workers = 10;  // the paper's non-IID cluster: 10 workers, 1 label each
  job.batch_size = 16;
  job.max_iterations = iterations;
  job.eval_interval = 100;
  job.train_data = noniid_data().train;
  job.test_data = noniid_data().test;
  job.partition = PartitionScheme::kNonIidLabel;
  job.labels_per_worker = 1;
  job.model_factory = [](uint64_t seed) {
    ClassifierConfig cfg;
    cfg.input_dim = 32;
    cfg.classes = 10;
    cfg.hidden = 24;
    cfg.resnet_blocks = 1;
    return make_resnet_mlp(cfg, seed);
  };
  job.optimizer_factory = [] {
    return std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.05),
                                 SgdOptions{.momentum = 0.9});
  };
  return job;
}

TEST(NonIid, FedAvgDegradesVsIid) {
  // Fig. 1b: FedAvg on label-skewed shards trails the IID run. The gap
  // appears once aggregation is infrequent enough for local models to
  // drift onto their own labels (our tiny dataset needs E=0.5, i.e. 6 local
  // steps between syncs, to reach the paper's per-sync local-work ratio).
  TrainJob iid = noniid_job(StrategyKind::kFedAvg, 500);
  iid.partition = PartitionScheme::kSelSync;
  iid.fedavg = {1.0, 1.0};
  TrainJob skewed = noniid_job(StrategyKind::kFedAvg, 500);
  skewed.fedavg = {1.0, 1.0};
  const TrainResult r_iid = run_training(iid);
  const TrainResult r_skew = run_training(skewed);
  EXPECT_GT(r_iid.best_top1, r_skew.best_top1);
}

TEST(NonIid, InjectionShrinksLocalBatchPerEqn3) {
  TrainJob job = noniid_job(StrategyKind::kSelSync, 40);
  job.injection = {true, 0.5, 0.5};
  job.selsync.delta = 0.05;
  // b' = 16/(1+0.25*10) = 4.57 -> 5; effective batch restored to ~16.
  // The run must complete with the adjusted batch and consistent counts.
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 40u);
  EXPECT_EQ(r.sync_steps + r.local_steps, 40u);
}

TEST(NonIid, InjectionImprovesSelSyncAccuracy) {
  // Fig. 12: data injection rescues non-IID SelSync. δ=0.2 keeps nearly all
  // steps local, so without injection each worker only ever learns its own
  // label and test accuracy collapses to chance.
  TrainJob plain = noniid_job(StrategyKind::kSelSync, 500);
  plain.selsync.delta = 0.2;
  TrainJob injected = noniid_job(StrategyKind::kSelSync, 500);
  injected.selsync.delta = 0.2;
  injected.injection = {true, 0.5, 0.5};
  const TrainResult rp = run_training(plain);
  const TrainResult ri = run_training(injected);
  EXPECT_GT(ri.best_top1, rp.best_top1 + 0.1);
}

TEST(NonIid, LargerInjectionConfigIsAtLeastAsGood) {
  // Fig. 12 ordering: (0.75,0.75) >= (0.5,0.5) in accuracy.
  TrainJob small_cfg = noniid_job(StrategyKind::kSelSync, 500);
  small_cfg.selsync.delta = 0.2;
  small_cfg.injection = {true, 0.5, 0.5};
  TrainJob big_cfg = noniid_job(StrategyKind::kSelSync, 500);
  big_cfg.selsync.delta = 0.2;
  big_cfg.injection = {true, 0.75, 0.75};
  const TrainResult rs = run_training(small_cfg);
  const TrainResult rb = run_training(big_cfg);
  EXPECT_GE(rb.best_top1, rs.best_top1 - 0.05);
}

TEST(NonIid, InjectionChargesCommunication) {
  TrainJob job = noniid_job(StrategyKind::kSelSync, 40);
  job.selsync.delta = 1e9;  // no model syncs: isolate injection traffic
  job.injection = {true, 0.5, 0.5};
  TrainJob dry = noniid_job(StrategyKind::kSelSync, 40);
  dry.selsync.delta = 1e9;
  const TrainResult ri = run_training(job);
  const TrainResult rd = run_training(dry);
  EXPECT_GT(ri.comm_bytes, rd.comm_bytes);
}

TEST(NonIid, PureLocalTrainingOnOneLabelCollapses) {
  // A worker that only ever sees one label cannot classify 10: local SGD
  // on non-IID shards must do much worse than with SelDP IID shards.
  TrainJob skew = noniid_job(StrategyKind::kLocalSgd, 300);
  TrainJob iid = noniid_job(StrategyKind::kLocalSgd, 300);
  iid.partition = PartitionScheme::kSelSync;
  const TrainResult rskew = run_training(skew);
  const TrainResult riid = run_training(iid);
  EXPECT_GT(riid.best_top1, rskew.best_top1 + 0.1);
}

}  // namespace
}  // namespace selsync
