// Property sweeps over SelSync's configuration space (TEST_P), checking the
// invariants of Alg. 1 and §III across deltas, cluster sizes and
// aggregation modes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

// ---- invariants over delta -------------------------------------------------

class DeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeltaSweep, StepAccountingAlwaysConsistent) {
  TrainJob job = small_class_job(StrategyKind::kSelSync, 80);
  job.selsync.delta = GetParam();
  const TrainResult r = run_training(job);
  // Every executed step is exactly one of {sync, local}.
  EXPECT_EQ(r.sync_steps + r.local_steps, r.iterations);
  EXPECT_GE(r.lssr(), 0.0);
  EXPECT_LE(r.lssr(), 1.0);
}

TEST_P(DeltaSweep, CommBytesIncludeFlagExchangeEveryStep) {
  TrainJob job = small_class_job(StrategyKind::kSelSync, 80);
  job.selsync.delta = GetParam();
  const TrainResult r = run_training(job);
  // At minimum, the 1-bit flag allgather happens every iteration.
  EXPECT_GE(r.comm_bytes, 80.0 * job.workers / 8.0);
}

TEST_P(DeltaSweep, SimTimeBetweenLocalAndBspBounds) {
  TrainJob job = small_class_job(StrategyKind::kSelSync, 80);
  job.selsync.delta = GetParam();
  const TrainResult r = run_training(job);

  TrainJob bsp = small_class_job(StrategyKind::kSelSync, 80);
  bsp.selsync.delta = 0.0;
  TrainJob local = small_class_job(StrategyKind::kSelSync, 80);
  local.selsync.delta = 1e9;
  const double t_bsp = run_training(bsp).sim_time_s;
  const double t_local = run_training(local).sim_time_s;
  EXPECT_GE(r.sim_time_s, t_local - 1e-9);
  EXPECT_LE(r.sim_time_s, t_bsp + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSweep,
                         ::testing::Values(0.0, 0.02, 0.05, 0.1, 0.2, 1e9));

// ---- invariants over cluster size -------------------------------------------

class WorkerSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkerSweep, AnyWorkerTriggerRuleKeepsReplicasConsistentUnderPa) {
  // After a PA sync, all replicas hold the global model; we verify indirectly
  // through determinism of worker-0 evaluation across cluster sizes > 1
  // being finite and the accounting holding.
  TrainJob job = small_class_job(StrategyKind::kSelSync, 60);
  job.workers = GetParam();
  job.selsync.delta = 0.05;
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.sync_steps + r.local_steps, r.iterations);
  EXPECT_TRUE(std::isfinite(r.final_eval.loss));
}

TEST_P(WorkerSweep, SelDpGivesEveryWorkerFullData) {
  const auto& data = testing::shared_class_data();
  const Partition p =
      partition_selsync(data.train->size(), GetParam(), 1);
  for (const auto& order : p.worker_order)
    EXPECT_EQ(order.size(), data.train->size());
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep, ::testing::Values(2, 3, 4, 8));

// ---- aggregation-mode properties --------------------------------------------

TEST(AggregationProperty, PaReplicasIdenticalAfterFullSyncRun) {
  // δ=0 PA: replicas aggregate parameters every step, so worker 0's model
  // equals the average — re-running with 1 worker at N-times batch is not
  // identical, but a second identical run must be (determinism), and the
  // state must be finite and learn.
  TrainJob job = small_class_job(StrategyKind::kSelSync, 60);
  job.selsync.delta = 0.0;
  job.selsync.aggregation = AggregationMode::kParameters;
  const TrainResult a = run_training(job);
  const TrainResult b = run_training(job);
  EXPECT_DOUBLE_EQ(a.final_eval.loss, b.final_eval.loss);
}

TEST(AggregationProperty, GaDoesNotMakeReplicasConsistent) {
  // §III-C: in GA mode the averaged gradient is applied to *different*
  // local parameters once any local step happened, so models drift; verify
  // the drift is visible in the weight snapshots across two configurations
  // that only differ in aggregation mode.
  TrainJob ga = small_class_job(StrategyKind::kSelSync, 96);
  ga.selsync.delta = 0.01;  // low threshold: both syncs and local steps occur
  ga.selsync.aggregation = AggregationMode::kGradients;
  ga.snapshot_epochs = {5.0};
  TrainJob pa = ga;
  pa.selsync.aggregation = AggregationMode::kParameters;
  const TrainResult rga = run_training(ga);
  const TrainResult rpa = run_training(pa);
  ASSERT_GT(rga.sync_steps, 0u);
  ASSERT_GT(rga.local_steps, 0u);
  ASSERT_TRUE(rga.weight_snapshots.count(5.0));
  ASSERT_TRUE(rpa.weight_snapshots.count(5.0));
  EXPECT_NE(rga.weight_snapshots.at(5.0), rpa.weight_snapshots.at(5.0));
}

// ---- EWMA window ablation ----------------------------------------------------

class WindowSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(WindowSweep, TrainingRobustToEwmaWindow) {
  TrainJob job = small_class_job(StrategyKind::kSelSync, 80);
  job.selsync.delta = 0.05;
  job.selsync.ewma_window = GetParam();
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 80u);
  EXPECT_TRUE(std::isfinite(r.final_eval.loss));
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(25, 50, 100, 200));

// ---- alpha override -----------------------------------------------------------

TEST(EwmaAlpha, HigherAlphaTriggersMoreSyncs) {
  TrainJob smooth = small_class_job(StrategyKind::kSelSync, 120);
  smooth.selsync.delta = 0.08;
  smooth.selsync.ewma_alpha = 0.02;
  TrainJob reactive = smooth;
  reactive.selsync.ewma_alpha = 0.5;
  const TrainResult rs = run_training(smooth);
  const TrainResult rr = run_training(reactive);
  EXPECT_GE(rr.sync_steps, rs.sync_steps);
}

}  // namespace
}  // namespace selsync
