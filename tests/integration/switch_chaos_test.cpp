// Chaos at the switch boundary (DESIGN.md §14): the fault machinery and
// the SyncPlan drain interact at exactly one point — a worker can crash,
// park, or leave for good at the same iteration a phase boundary drains
// the cluster. Every combination must release all waiters in both the old
// and the new backend (no stranded collective, no deadlock under TSan),
// keep the fault log reading like one run, and finish with a usable model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/run_record.hpp"
#include "core/sync_plan.hpp"
#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

SyncPhase switch_at(uint64_t iteration) {
  SyncPhase phase;
  phase.trigger.kind = SwitchTriggerKind::kAtIteration;
  phase.trigger.at_iteration = iteration;
  return phase;
}

TrainJob switching_job(const FaultPlan& plan, uint64_t iterations = 120) {
  TrainJob job = small_class_job(StrategyKind::kBsp, iterations);
  job.workers = 8;
  job.selsync.delta = 0.02;
  job.faults = plan;
  return job;
}

void expect_trained(const TrainResult& r) {
  EXPECT_FALSE(r.diverged);
  EXPECT_TRUE(std::isfinite(r.final_eval.loss));
  EXPECT_LT(r.final_eval.loss, 2.2);
  EXPECT_GT(r.best_top1, 0.2);
}

// The crash lands exactly ON the boundary iteration. The pause check runs
// before the fault stage, so the crash must fire once — in the new phase —
// not once per phase, and the rejoin waiters parked in the old backend
// must all be released by the drain.
TEST(SwitchChaos, CrashExactlyAtBoundaryFiresOnce) {
  FaultPlan plan;
  plan.seed = 3;
  plan.checkpoint_interval = 20;
  plan.restart_cost_s = 0.5;
  plan.crashes.push_back({2, 50, 20, true});
  TrainJob job = switching_job(plan);
  SyncPhase to_selsync = switch_at(50);
  to_selsync.strategy = StrategyKind::kSelSync;
  job.sync_plan.phases.push_back(to_selsync);

  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 120u);
  expect_trained(r);
  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.restarts, 1u);
  EXPECT_EQ(r.faults.recovery_syncs, 1u);
}

// The crash downtime spans the boundary: the worker parks in phase 0, the
// boundary drains it, it re-parks in phase 1 without re-recording the
// crash, and the survivors' rejoin release finds it in the new backend.
TEST(SwitchChaos, ParkSpansBoundaryWithoutDuplicateEvents) {
  FaultPlan plan;
  plan.seed = 5;
  plan.checkpoint_interval = 20;
  plan.restart_cost_s = 0.5;
  plan.crashes.push_back({3, 45, 20, true});
  TrainJob job = switching_job(plan);
  job.sync_plan.phases.push_back(switch_at(55));

  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 120u);
  expect_trained(r);
  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.restarts, 1u);
  size_t crash_events = 0;
  for (const FaultEvent& e : r.faults.events)
    if (e.kind == FaultKind::kCrash) ++crash_events;
  EXPECT_EQ(crash_events, 1u);
}

// A permanent casualty before the boundary: the rank must sit out every
// later phase (its capture is frozen), while the survivors cross the
// switch and finish the full budget.
TEST(SwitchChaos, CasualtySitsOutLaterPhases) {
  FaultPlan plan;
  plan.seed = 4;
  plan.crashes.push_back({5, 40, 0, false});
  TrainJob job = switching_job(plan);
  SyncPhase to_selsync = switch_at(60);
  to_selsync.strategy = StrategyKind::kSelSync;
  job.sync_plan.phases.push_back(to_selsync);

  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 120u);
  expect_trained(r);
  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.restarts, 0u);
}

// The permanent crash lands exactly ON the boundary: the pause wins (the
// worker reaches the boundary *before* the fault stage runs), the rank
// crosses into phase 1, and the crash retires it there.
TEST(SwitchChaos, PermanentCrashOnBoundaryRetiresInNextPhase) {
  FaultPlan plan;
  plan.seed = 6;
  plan.crashes.push_back({4, 50, 0, false});
  TrainJob job = switching_job(plan);
  job.sync_plan.phases.push_back(switch_at(50));

  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 120u);
  expect_trained(r);
  EXPECT_EQ(r.faults.crashes, 1u);
}

// Two switch points with faults active throughout: stragglers and message
// chaos across three phases, a crash parked across the middle one. The
// run record must be byte-stable across invocations — the fault decision
// streams are continuous across phases, so a re-run replays the identical
// schedule.
TEST(SwitchChaos, ThreePhaseChaosIsReproducible) {
  FaultPlan plan;
  plan.seed = 7;
  plan.checkpoint_interval = 20;
  plan.restart_cost_s = 0.5;
  plan.crashes.push_back({2, 38, 14, true});
  plan.stragglers.push_back({1, 20, 30, 3.0});
  plan.messages.drop_prob = 0.05;
  plan.messages.delay_prob = 0.1;
  TrainJob job = switching_job(plan);
  SyncPhase mid = switch_at(40);
  mid.strategy = StrategyKind::kSelSync;
  SyncPhase tail = switch_at(80);
  tail.strategy = StrategyKind::kBsp;
  job.sync_plan.phases.push_back(mid);
  job.sync_plan.phases.push_back(tail);

  const auto record = [&] {
    TrainResult r = run_training(job);
    expect_trained(r);
    r.wall_time_s = 0.0;
    JsonValue rec = JsonValue::object();
    rec.set("job", job_to_json(job));
    rec.set("result", result_to_json(r));
    return rec.dump();
  };
  const std::string first = record();
  const std::string second = record();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace selsync
