// Chaos matrix: every training strategy must survive the fault classes the
// FaultPlan can inject — worker crashes (with and without restart), PS
// timeouts with retry, and stragglers — finishing the run with a usable
// model and a deterministic fault log. The acceptance scenario from the
// failure-model design (crash at iteration 50 plus 5% message drop on an
// 8-worker cluster) must reproduce byte for byte across invocations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/run_record.hpp"
#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

TrainJob chaos_job(StrategyKind strategy, const FaultPlan& plan,
                   size_t workers = 8) {
  TrainJob job = small_class_job(strategy, 120);
  job.workers = workers;
  // A low delta keeps SelSync synchronizing often enough that every fault
  // class actually exercises its synchronization path within 120 iterations.
  job.selsync.delta = 0.02;
  job.faults = plan;
  job.validate();
  return job;
}

/// The full run record with wall time (the one legitimately nondeterministic
/// field) zeroed out.
std::string record_string(const TrainJob& job, TrainResult result) {
  result.wall_time_s = 0.0;
  JsonValue record = JsonValue::object();
  record.set("job", job_to_json(job));
  record.set("result", result_to_json(result));
  return record.dump();
}

void expect_trained(const TrainResult& r) {
  EXPECT_FALSE(r.diverged);
  EXPECT_TRUE(std::isfinite(r.final_eval.loss));
  // Untrained 10-class loss is ln(10) ~ 2.30 and random accuracy 0.1; a run
  // that survived its faults must still have learned something.
  EXPECT_LT(r.final_eval.loss, 2.2);
  EXPECT_GT(r.best_top1, 0.2);
}

class ChaosMatrix : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(ChaosMatrix, SurvivesCrashWithRestart) {
  FaultPlan plan;
  plan.seed = 3;
  plan.checkpoint_interval = 20;
  plan.restart_cost_s = 0.5;
  plan.crashes.push_back({2, 50, 20, true});
  const TrainJob job = chaos_job(GetParam(), plan);
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 120u);
  expect_trained(r);
  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.restarts, 1u);
  if (GetParam() != StrategyKind::kSsp) {
    // Bulk-synchronous rejoin adopts the survivors' parameters; SSP simply
    // rewinds to its checkpoint and lets staleness absorb the gap.
    EXPECT_EQ(r.faults.recovery_syncs, 1u);
  }
  bool saw_checkpoint = false;
  for (const FaultEvent& e : r.faults.events)
    if (e.kind == FaultKind::kCheckpoint && e.rank == 2) saw_checkpoint = true;
  EXPECT_TRUE(saw_checkpoint);
}

TEST_P(ChaosMatrix, SurvivesPermanentCrash) {
  FaultPlan plan;
  plan.seed = 4;
  plan.crashes.push_back({5, 40, 0, false});
  const TrainJob job = chaos_job(GetParam(), plan);
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 120u);  // the root survives and finishes
  expect_trained(r);
  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.restarts, 0u);
  EXPECT_EQ(r.faults.recovery_syncs, 0u);
}

TEST_P(ChaosMatrix, AbsorbsPsTimeoutsWithBackoff) {
  FaultPlan plan;
  plan.seed = 5;
  plan.ps.timeout_prob = 0.15;
  plan.ps.max_retries = 3;
  plan.ps.base_backoff_s = 0.002;
  const TrainJob job = chaos_job(GetParam(), plan);
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 120u);
  expect_trained(r);
  EXPECT_GT(r.faults.ps_timeouts, 0u);
  // Only SSP may give a push/pull up entirely; synchronous rounds always
  // absorb the backoff and complete.
  if (GetParam() != StrategyKind::kSsp) {
    EXPECT_EQ(r.faults.ps_give_ups, 0u);
  }
}

TEST_P(ChaosMatrix, RecordsStragglerEpisodes) {
  FaultPlan plan;
  plan.seed = 6;
  plan.stragglers.push_back({3, 20, 60, 4.0});
  const TrainJob job = chaos_job(GetParam(), plan);
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 120u);
  expect_trained(r);
  EXPECT_EQ(r.faults.straggler_episodes, 1u);
  EXPECT_GT(r.sim_time_s, 0.0);
}

// The acceptance scenario: crash at iteration 50 + 5% message drop, 8
// workers. Two invocations must match bitwise — the full run record for the
// bulk-synchronous strategies, and the complete fault history for SSP
// (whose model trajectory is legitimately timing-dependent).
TEST_P(ChaosMatrix, AcceptanceRunIsReproducible) {
  FaultPlan plan;
  plan.seed = 11;
  plan.checkpoint_interval = 25;
  plan.restart_cost_s = 0.5;
  plan.crashes.push_back({2, 50, 20, true});
  plan.messages.drop_prob = 0.05;
  const TrainJob job = chaos_job(GetParam(), plan);
  const TrainResult a = run_training(job);
  const TrainResult b = run_training(job);
  EXPECT_EQ(a.iterations, 120u);
  expect_trained(a);
  EXPECT_TRUE(a.faults.any());
  if (GetParam() == StrategyKind::kSsp) {
    ASSERT_EQ(a.faults.events.size(), b.faults.events.size());
    for (size_t i = 0; i < a.faults.events.size(); ++i) {
      EXPECT_EQ(a.faults.events[i].kind, b.faults.events[i].kind);
      EXPECT_EQ(a.faults.events[i].rank, b.faults.events[i].rank);
      EXPECT_EQ(a.faults.events[i].iteration, b.faults.events[i].iteration);
      EXPECT_DOUBLE_EQ(a.faults.events[i].detail, b.faults.events[i].detail);
    }
    EXPECT_EQ(a.faults.messages_dropped, b.faults.messages_dropped);
    EXPECT_EQ(a.faults.ps_timeouts, b.faults.ps_timeouts);
  } else {
    EXPECT_EQ(record_string(job, a), record_string(job, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, ChaosMatrix,
                         ::testing::Values(StrategyKind::kBsp,
                                           StrategyKind::kSelSync,
                                           StrategyKind::kSsp,
                                           StrategyKind::kFedAvg),
                         [](const auto& param_info) {
                           return std::string(
                               strategy_kind_name(param_info.param));
                         });

// Message faults and stragglers are timing faults: the payload that lands is
// always correct, so the model trajectory must be bit-identical to the
// fault-free run — only the simulated clock moves.
TEST(Chaos, TimingFaultsLeaveTheTrajectoryUntouched) {
  const TrainJob clean = chaos_job(StrategyKind::kBsp, FaultPlan{});

  FaultPlan plan;
  plan.seed = 13;
  plan.stragglers.push_back({3, 10, 40, 3.0});
  plan.messages.drop_prob = 0.1;
  plan.messages.delay_prob = 0.1;
  plan.messages.duplicate_prob = 0.05;
  const TrainJob faulty = chaos_job(StrategyKind::kBsp, plan);

  const TrainResult base = run_training(clean);
  const TrainResult r = run_training(faulty);
  ASSERT_EQ(r.eval_history.size(), base.eval_history.size());
  for (size_t i = 0; i < r.eval_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.eval_history[i].loss, base.eval_history[i].loss);
    EXPECT_DOUBLE_EQ(r.eval_history[i].top1, base.eval_history[i].top1);
  }
  EXPECT_GT(r.faults.messages_dropped, 0u);
  EXPECT_GT(r.faults.messages_delayed, 0u);
  EXPECT_GT(r.sim_time_s, base.sim_time_s);  // faults only cost time
}

// A crash without restart removes a shard: the run completes degraded, and
// the flag allgather keeps working with the absent rank reading as "no
// vote".
TEST(Chaos, SelSyncQuorumToleratesAbsentRanks) {
  FaultPlan plan;
  plan.seed = 17;
  plan.crashes.push_back({1, 30, 0, false});
  plan.crashes.push_back({6, 60, 0, false});
  TrainJob job = chaos_job(StrategyKind::kSelSync, plan);
  job.selsync.sync_quorum = 0.5;  // majority of the *surviving* group
  job.validate();
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 120u);
  expect_trained(r);
  EXPECT_EQ(r.faults.crashes, 2u);
}

}  // namespace
}  // namespace selsync
