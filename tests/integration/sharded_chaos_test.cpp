// Chaos coverage for the sharded PS tier (K > 1): a worker dying mid-round
// must release waiters on *every* shard — a partial abort would strand a
// peer that already folded some shards and is parked on another — and SSP
// training through a sharded central store must survive the same crash
// plans the monolithic store does. Runs under the `chaos` CTest label, so
// tools/ci.sh --chaos / --analyze exercise K > 1 under TSan and ASan+UBSan.
#include <gtest/gtest.h>

#include <vector>

#include "comm/cluster.hpp"
#include "comm/comm_backend.hpp"
#include "comm/parameter_server.hpp"
#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

TEST(ShardedChaos, CrashMidRoundReleasesWaitersOnEveryShard) {
  constexpr size_t kN = 4, kShards = 4, kDim = 8;
  ShardedParameterServer sps(std::vector<float>(kDim, 0.f), kN, kShards);
  PsRoundConfig cfg;
  cfg.participants = kN;
  try {
    run_cluster(
        kN,
        [&](WorkerContext& ctx) {
          if (ctx.rank == 1) throw std::runtime_error("boom");
          // Survivors seed all K shards (begin + contribute are
          // non-blocking) and then park in await on shard 0 — the round
          // can never fold because rank 1 is gone.
          std::vector<uint64_t> tickets(kShards);
          for (size_t k = 0; k < kShards; ++k)
            tickets[k] = sps.shard(k).round().begin(cfg);
          for (size_t k = 0; k < kShards; ++k) {
            const auto range = sps.shard_range(k);
            std::vector<float> slice(range.length,
                                     static_cast<float>(ctx.rank));
            sps.shard(k).round().contribute(tickets[k], ctx.rank, slice);
          }
          for (size_t k = 0; k < kShards; ++k)
            sps.shard(k).round().await(tickets[k]);
        },
        [&] { sps.abort(); });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_TRUE(sps.aborted());
  for (size_t k = 0; k < kShards; ++k)
    EXPECT_TRUE(sps.shard(k).round().aborted()) << "shard " << k;
}

TEST(ShardedChaos, BackendAbortTearsDownTheWholeTier) {
  // Same scenario one layer up: peers blocked inside PsBackend::allreduce
  // (which spans all K shards) when the cluster aborts the backend.
  constexpr size_t kN = 4, kDim = 10;
  CommBackendConfig config;
  config.kind = BackendKind::kParameterServer;
  config.workers = kN;
  config.ps_shards = 4;
  config.initial_params.assign(kDim, 0.f);
  auto backend = make_comm_backend(config);
  const CommGroup full = CommGroup::full(kN);
  try {
    run_cluster(
        kN,
        [&](WorkerContext& ctx) {
          if (ctx.rank == 2) throw std::runtime_error("boom");
          std::vector<float> data(kDim, 1.f);
          double clock = 0.0;
          backend->allreduce(ctx, data, full, clock);
        },
        [&] { backend->abort(); });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  ASSERT_NE(backend->central_store(), nullptr);
  EXPECT_TRUE(backend->central_store()->aborted());
}

TEST(ShardedChaos, SspSurvivesCrashWithRestartOnShardedStore) {
  FaultPlan plan;
  plan.seed = 3;
  plan.checkpoint_interval = 20;
  plan.restart_cost_s = 0.5;
  plan.crashes.push_back({2, 50, 20, true});
  TrainJob job = small_class_job(StrategyKind::kSsp, 120);
  job.workers = 8;
  job.ps_shards = 2;
  job.ssp.staleness = 3;
  job.faults = plan;
  job.validate();
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 120u);
  EXPECT_FALSE(r.diverged);
  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.restarts, 1u);
}

TEST(ShardedChaos, SspSurvivesPermanentCrashOnShardedStore) {
  FaultPlan plan;
  plan.seed = 4;
  plan.crashes.push_back({5, 40, 0, false});
  TrainJob job = small_class_job(StrategyKind::kSsp, 120);
  job.workers = 8;
  job.ps_shards = 2;
  job.ssp.staleness = 3;
  job.faults = plan;
  job.validate();
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 120u);
  EXPECT_FALSE(r.diverged);
  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.restarts, 0u);
}

}  // namespace
}  // namespace selsync
