// Chaos coverage for the sliced data plane (--slices > 1): a worker dying
// mid-step must release waiters parked on *every* pending slice round — a
// partial abort would strand a peer that already reduced the early
// (output-end) slices and is parked on a later one — and full training
// runs with slices + overlap must survive the same crash/park/rejoin and
// message-fault plans the unsliced barrier does. Runs under the `chaos`
// CTest label, so tools/ci.sh --chaos / --analyze exercise the sliced
// configuration under TSan and ASan+UBSan.
#include <gtest/gtest.h>

#include <vector>

#include "comm/cluster.hpp"
#include "comm/comm_backend.hpp"
#include "comm/parameter_server.hpp"
#include "comm/slice_schedule.hpp"
#include "core/trainer.hpp"
#include "tests/core/test_jobs.hpp"
#include "tests/golden/golden_configs.hpp"

namespace selsync {
namespace {

using testing::small_class_job;

TEST(SlicedChaos, CrashMidSliceReleasesWaitersOnEveryPendingSlice) {
  // Survivors enter the sliced driver and park inside the first slice's
  // collective (rank 1 never arrives); the abort must unwind them out of
  // the whole multi-slice round, not just the slice they are parked on.
  constexpr size_t kN = 4, kDim = 16;
  CommBackendConfig config;
  config.kind = BackendKind::kSharedMemory;
  config.workers = kN;
  auto backend = make_comm_backend(config);
  const CommGroup full = CommGroup::full(kN);
  const auto sched = SliceSchedule::build(std::vector<size_t>(4, kDim / 4), 4,
                                          SliceScheduleKind::kOutputFirst);
  try {
    run_cluster(
        kN,
        [&](WorkerContext& ctx) {
          if (ctx.rank == 1) throw std::runtime_error("boom");
          std::vector<float> data(kDim, 1.f);
          double clock = 0.0;
          backend->allreduce_sliced(ctx, data, sched, full, clock,
                                    /*delta=*/0.0, /*weight=*/1.0f,
                                    /*encoded=*/false);
        },
        [&] { backend->abort(); });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(SlicedChaos, CrashMidSliceTearsDownEveryShardRoundOnPs) {
  // The PS transport splits each slice across the shard ranges it
  // intersects; a crash must abort the rounds of every shard with a slice
  // contribution pending, on every slice.
  constexpr size_t kN = 4, kDim = 16;
  CommBackendConfig config;
  config.kind = BackendKind::kParameterServer;
  config.workers = kN;
  config.ps_shards = 2;
  config.initial_params.assign(kDim, 0.f);
  auto backend = make_comm_backend(config);
  const CommGroup full = CommGroup::full(kN);
  // Two slices, each straddling the shard boundary at kDim / 2.
  const auto sched = SliceSchedule::build({3, 7, 2, 4}, 2,
                                          SliceScheduleKind::kOutputFirst);
  try {
    run_cluster(
        kN,
        [&](WorkerContext& ctx) {
          if (ctx.rank == 2) throw std::runtime_error("boom");
          std::vector<float> data(kDim, 1.f);
          double clock = 0.0;
          backend->allreduce_sliced(ctx, data, sched, full, clock,
                                    /*delta=*/0.0, /*weight=*/1.0f,
                                    /*encoded=*/false);
        },
        [&] { backend->abort(); });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  ASSERT_NE(backend->central_store(), nullptr);
  EXPECT_TRUE(backend->central_store()->aborted());
  for (size_t k = 0; k < 2; ++k)
    EXPECT_TRUE(backend->central_store()->shard(k).round().aborted())
        << "shard " << k;
}

TEST(SlicedChaos, SlicedOverlapSurvivesCrashParkRejoin) {
  // The full pipeline under the golden crash plan: crash, park, recovery
  // sync, rejoin — all with four overlapped slices in flight each round.
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  job.faults = golden::golden_fault_plan();
  job.slices = 4;
  job.overlap = true;
  job.validate();
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 40u);
  EXPECT_FALSE(r.diverged);
  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.restarts, 1u);
}

TEST(SlicedChaos, SlicedOverlapSurvivesMessageFaultsOnRing) {
  // Ring message faults (drops/delays) now land inside individual slice
  // rounds instead of one barrier round.
  TrainJob job = small_class_job(StrategyKind::kBsp, 40);
  job.backend = BackendKind::kRing;
  job.faults = golden::golden_message_plan();
  job.slices = 3;
  job.overlap = true;
  job.validate();
  const TrainResult r = run_training(job);
  EXPECT_EQ(r.iterations, 40u);
  EXPECT_FALSE(r.diverged);
}

}  // namespace
}  // namespace selsync
