// selsync_lint — token-level static analysis for the selsync tree
// (DESIGN.md §9).
//
// The driver: loads every source file under --root (default scan roots
// src/ and tools/, or an explicit file list), lexes each one once through
// lint/lexer.*, and runs the selected rule families from lint/rules.hpp
// over the shared token streams. Per-file rules see one file at a time;
// the whole-program rules (enum-table, lock-discipline, layer-dag,
// wire-schema, handoff-sync) see the full file set.
//
//   selsync_lint [--root DIR] [--rules r1,r2] [--expect-fail]
//                [--json] [--dot FILE] [files...]
//
//   --json       machine-readable report on stdout (CI artifact)
//   --dot FILE   write the derived lock-order graph as Graphviz DOT
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
// --expect-fail inverts 0/1 so fixture tests can assert both directions.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "lint/rules.hpp"

namespace fs = std::filesystem;
using namespace selsync_lint;

namespace {

const char* const kAllRules[] = {
    "rng",          "raw-thread",      "des-thread-free",
    "socket-confine", "sync-cost-json", "enum-table",
    "lock-discipline", "layer-dag",     "wire-schema",
    "handoff-sync",
};

bool has_prefix(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}

bool is_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<Violation>& violations,
                const std::set<std::string>& rules) {
  std::printf("{\n  \"tool\": \"selsync_lint\",\n  \"rules\": [");
  bool first = true;
  for (const std::string& r : rules) {
    std::printf("%s\"%s\"", first ? "" : ", ", r.c_str());
    first = false;
  }
  std::printf("],\n  \"clean\": %s,\n  \"violation_count\": %zu,\n",
              violations.empty() ? "true" : "false", violations.size());
  std::printf("  \"violations\": [");
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    std::printf(
        "%s\n    {\"file\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
        "\"message\": \"%s\"}",
        i == 0 ? "" : ",", json_escape(v.file).c_str(), v.line,
        json_escape(v.rule).c_str(), json_escape(v.message).c_str());
  }
  std::printf("%s]\n}\n", violations.empty() ? "" : "\n  ");
}

int usage() {
  std::fprintf(
      stderr,
      "usage: selsync_lint [--root DIR] [--rules r1,r2] [--expect-fail] "
      "[--json] [--dot FILE] [files...]\n"
      "rules: rng, raw-thread, des-thread-free, socket-confine, "
      "sync-cost-json,\n       enum-table, lock-discipline, layer-dag, "
      "wire-schema, handoff-sync\n       (default: all)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::set<std::string> rules(std::begin(kAllRules), std::end(kAllRules));
  bool expect_fail = false;
  bool json = false;
  std::string dot_path;
  std::vector<std::string> rel_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--rules" && i + 1 < argc) {
      rules.clear();
      std::istringstream list(argv[++i]);
      std::string rule;
      while (std::getline(list, rule, ',')) {
        if (std::find(std::begin(kAllRules), std::end(kAllRules), rule) ==
            std::end(kAllRules)) {
          std::fprintf(stderr, "selsync_lint: unknown rule '%s'\n",
                       rule.c_str());
          return usage();
        }
        rules.insert(rule);
      }
    } else if (arg == "--expect-fail") {
      expect_fail = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--help" || arg == "-h" || has_prefix(arg, "--")) {
      return usage();
    } else {
      rel_files.push_back(arg);
    }
  }

  std::error_code ec;
  if (rel_files.empty()) {
    for (const char* top : {"src", "tools"}) {
      for (fs::recursive_directory_iterator it(root / top, ec), end;
           !ec && it != end; it.increment(ec))
        if (it->is_regular_file() && is_source(it->path()))
          rel_files.push_back(fs::relative(it->path(), root).generic_string());
    }
    if (rel_files.empty()) {
      std::fprintf(stderr, "selsync_lint: nothing to scan under %s\n",
                   root.string().c_str());
      return 2;
    }
    std::sort(rel_files.begin(), rel_files.end());
  }

  std::vector<Violation> violations;
  std::vector<SourceFile> files(rel_files.size());
  for (size_t i = 0; i < rel_files.size(); ++i)
    if (!load_source(root, rel_files[i], files[i], violations)) return 2;

  for (const SourceFile& file : files) {
    if (rules.count("rng")) check_rng(file, violations);
    if (rules.count("raw-thread")) check_raw_thread(file, violations);
    if (rules.count("des-thread-free")) check_des_thread_free(file, violations);
    if (rules.count("socket-confine")) check_socket_confine(file, violations);
    if (rules.count("sync-cost-json")) check_sync_cost_json(file, violations);
  }
  if (rules.count("enum-table")) check_enum_tables(files, violations);
  if (rules.count("lock-discipline"))
    check_lock_discipline(files, dot_path, violations);
  if (rules.count("layer-dag")) check_layer_dag(files, violations);
  if (rules.count("wire-schema")) check_wire_schema(files, root, violations);
  if (rules.count("handoff-sync")) check_handoff_sync(files, root, violations);

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  violations.erase(std::unique(violations.begin(), violations.end(),
                               [](const Violation& a, const Violation& b) {
                                 return std::tie(a.file, a.line, a.rule,
                                                 a.message) ==
                                        std::tie(b.file, b.line, b.rule,
                                                 b.message);
                               }),
                   violations.end());

  if (json) {
    print_json(violations, rules);
  } else {
    for (const Violation& v : violations)
      std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                  v.message.c_str());
    if (!violations.empty())
      std::printf("selsync_lint: %zu violation(s)\n", violations.size());
  }

  const bool clean = violations.empty();
  if (expect_fail) return clean ? 1 : 0;
  return clean ? 0 : 1;
}
