// selsync_lint — repo-invariant linter (DESIGN.md §9).
//
// Generic analyzers (clang-tidy, sanitizers) can't know this repo's
// contracts, so this tool enforces the ones that keep runs reproducible and
// the golden records pure:
//
//   rng            Deterministic randomness only: std::rand / <random>
//                  engines / time-seeded generators are forbidden outside
//                  src/util/rng — every stream must derive from the
//                  experiment seed (util/rng.hpp) or runs stop being
//                  bit-reproducible.
//   raw-thread     Raw std::thread / std::mutex / std::condition_variable
//                  are confined to src/comm/: concurrency lives behind the
//                  cluster / channel / barrier primitives so TSan's chaos
//                  label actually covers every cross-thread edge.
//   des-thread-free  The inverse confinement for the DES core
//                  (src/comm/event_loop.*): no threads, locks, atomics or
//                  <thread>/<mutex>/<atomic> includes at all, so the
//                  virtual-time engine is deterministic by construction —
//                  blocking goes through WaitSlot park/wake, never host
//                  synchronization. (thread_local stays allowed: the
//                  current() dispatch pointer is what isolates a DES run
//                  from thread-engine runs elsewhere in the process.)
//   enum-table     Every enumerator of an enum with an EnumEntry<E> name
//                  table (util/enum_names.hpp) must appear in that table,
//                  and the core serialized enums must have one. Catches
//                  parser/serializer drift when an enumerator is added.
//   sync-cost-json The JSON key "sync_cost" may only be emitted by
//                  src/core/run_record.cpp, where it sits behind the
//                  TrainJob::record_sync_cost gate that keeps the 12 golden
//                  run records byte-identical.
//   socket-confine BSD socket headers and raw socket syscalls are confined
//                  to src/comm/socket_transport.*: connection lifecycle,
//                  partial reads/writes and fd hygiene have exactly one
//                  home; everything else speaks TcpConn + WireFormat
//                  frames.
//
// Waivers (must carry a reason after `--`):
//   // selsync-lint: allow(<rule>) -- <reason>        same or next line
//   // selsync-lint: allow-file(<rule>) -- <reason>   whole file
//
// Usage:
//   selsync_lint [--root DIR] [--rules r1,r2] [--expect-fail] [files...]
//
// With no file arguments the default roots src/ and tools/ under --root are
// scanned. Exit code: 0 clean, 1 violations found, 2 usage/IO error
// (--expect-fail inverts 0/1 for the fixture suite).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  size_t line;
  std::string rule;
  std::string message;
};

struct Waivers {
  std::set<std::string> file_rules;              // allow-file(rule)
  std::map<size_t, std::set<std::string>> line;  // line -> allowed rules
  bool allows(const std::string& rule, size_t line_no) const {
    if (file_rules.count(rule)) return true;
    auto it = line.find(line_no);
    return it != line.end() && it->second.count(rule) > 0;
  }
};

struct SourceFile {
  std::string rel_path;  // forward-slash path relative to --root
  std::string raw;
  std::string no_comments;          // comments blanked, strings kept
  std::string no_comments_strings;  // comments and string/char bodies blanked
  Waivers waivers;
};

const char* const kAllRules[] = {"rng",        "raw-thread",
                                 "des-thread-free", "enum-table",
                                 "sync-cost-json",  "socket-confine"};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

size_t line_of_offset(const std::string& text, size_t offset) {
  return 1 + static_cast<size_t>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

/// Blanks comments (and optionally string/char literal bodies) with spaces,
/// preserving newlines so offsets keep mapping to the same lines.
std::string strip(const std::string& text, bool strip_strings) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          state = State::kCode;
        else
          out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          if (strip_strings) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (strip_strings && c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          if (strip_strings) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (strip_strings && c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// Parses `selsync-lint: allow(rule) -- reason` waiver comments from the raw
/// text. A line-scoped waiver covers its own line plus everything up to and
/// including the first following code line (so a multi-line comment holding
/// the reason still reaches the statement below it). `stripped` is the
/// comment-blanked text used to tell code lines from comment-only lines.
Waivers parse_waivers(const std::string& raw, const std::string& stripped,
                      const std::string& rel_path,
                      std::vector<Violation>& violations) {
  std::vector<bool> line_has_code;
  {
    std::istringstream in(stripped);
    std::string line;
    while (std::getline(in, line))
      line_has_code.push_back(line.find_first_not_of(" \t\r") !=
                              std::string::npos);
  }
  Waivers w;
  // Assembled at runtime so the linter's own marker literals don't register
  // as waivers when it scans itself.
  const std::string prefix = std::string("selsync-lint") + ": ";
  const std::string markers[] = {prefix + "allow-file(", prefix + "allow("};
  std::istringstream in(raw);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    for (const std::string& marker : markers) {
      const size_t at = line.find(marker);
      if (at == std::string::npos) continue;
      const bool file_wide = marker.find("allow-file") != std::string::npos;
      const size_t open = at + marker.size();
      const size_t close = line.find(')', open);
      if (close == std::string::npos) continue;
      const std::string rule = line.substr(open, close - open);
      const size_t reason_at = line.find("--", close);
      const bool has_reason =
          reason_at != std::string::npos &&
          line.find_first_not_of(" \t", reason_at + 2) != std::string::npos;
      if (!has_reason) {
        violations.push_back({rel_path, line_no, "waiver",
                              "waiver for '" + rule +
                                  "' is missing a reason (expected "
                                  "`-- <why this is exempt>`)"});
        continue;
      }
      if (file_wide) {
        w.file_rules.insert(rule);
      } else {
        w.line[line_no].insert(rule);
        for (size_t l = line_no + 1; l <= line_has_code.size(); ++l) {
          w.line[l].insert(rule);
          if (line_has_code[l - 1]) break;
        }
      }
      break;
    }
  }
  return w;
}

bool has_prefix(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

/// Reports every identifier-boundary occurrence of `token` in `text`.
void match_token(const SourceFile& file, const std::string& text,
                 const std::string& token, const std::string& rule,
                 const std::string& message,
                 std::vector<Violation>& violations) {
  size_t at = 0;
  while ((at = text.find(token, at)) != std::string::npos) {
    const char before = at == 0 ? '\0' : text[at - 1];
    const size_t end = at + token.size();
    const char after = end < text.size() ? text[end] : '\0';
    const bool bounded = !is_ident_char(before) && before != ':' &&
                         (!is_ident_char(after) || !is_ident_char(token.back()));
    if (bounded) {
      const size_t line_no = line_of_offset(text, at);
      if (!file.waivers.allows(rule, line_no))
        violations.push_back({file.rel_path, line_no, rule, message});
    }
    at = end;
  }
}

// ---------------------------------------------------------------------------
// Rule: rng
// ---------------------------------------------------------------------------

void check_rng(const SourceFile& file, std::vector<Violation>& violations) {
  if (has_prefix(file.rel_path, "src/util/rng")) return;
  const char* const kForbidden[] = {
      "std::rand",
      "std::srand",
      "srand",
      "std::random_device",
      "std::mt19937",
      "std::mt19937_64",
      "std::default_random_engine",
      "std::minstd_rand",
      "std::uniform_int_distribution",
      "std::uniform_real_distribution",
      "std::normal_distribution",
      "std::bernoulli_distribution",
      "time(nullptr)",
      "time(NULL)",
      "time(0)",
  };
  for (const char* token : kForbidden)
    match_token(file, file.no_comments_strings, token, "rng",
                std::string("'") + token +
                    "' breaks run reproducibility; derive a seeded stream "
                    "from util/rng (Rng::fork) instead",
                violations);
}

// ---------------------------------------------------------------------------
// Rule: raw-thread
// ---------------------------------------------------------------------------

void check_raw_thread(const SourceFile& file,
                      std::vector<Violation>& violations) {
  if (has_prefix(file.rel_path, "src/comm/")) return;
  const char* const kForbidden[] = {
      "std::thread",
      "std::jthread",
      "std::mutex",
      "std::timed_mutex",
      "std::recursive_mutex",
      "std::shared_mutex",
      "std::condition_variable",
      "std::condition_variable_any",
  };
  for (const char* token : kForbidden)
    match_token(file, file.no_comments_strings, token, "raw-thread",
                std::string("'") + token +
                    "' outside src/comm/: use the cluster/channel/barrier "
                    "primitives so the TSan chaos label covers the edge",
                violations);
}

// ---------------------------------------------------------------------------
// Rule: des-thread-free
// ---------------------------------------------------------------------------

void check_des_thread_free(const SourceFile& file,
                           std::vector<Violation>& violations) {
  if (!has_prefix(file.rel_path, "src/comm/event_loop")) return;
  const char* const kForbidden[] = {
      "std::thread",
      "std::jthread",
      "std::mutex",
      "std::timed_mutex",
      "std::recursive_mutex",
      "std::shared_mutex",
      "std::condition_variable",
      "std::condition_variable_any",
      "std::atomic",
      "std::this_thread",
      "<thread>",
      "<mutex>",
      "<condition_variable>",
      "<atomic>",
  };
  for (const char* token : kForbidden)
    match_token(file, file.no_comments_strings, token, "des-thread-free",
                std::string("'") + token +
                    "' in the DES core: the event loop must stay "
                    "thread-free by construction — block via WaitSlot "
                    "park/wake, never host synchronization",
                violations);
}

// ---------------------------------------------------------------------------
// Rule: socket-confine
// ---------------------------------------------------------------------------

void check_socket_confine(const SourceFile& file,
                          std::vector<Violation>& violations) {
  if (has_prefix(file.rel_path, "src/comm/socket_transport")) return;
  const char* const kForbidden[] = {
      "<sys/socket.h>",
      "<netinet/in.h>",
      "<netinet/tcp.h>",
      "<arpa/inet.h>",
      "<netdb.h>",
      "::socket",
      "::connect",
      "::accept",
      "::bind",
      "::listen",
      "::setsockopt",
      "::getsockname",
  };
  for (const char* token : kForbidden)
    match_token(file, file.no_comments_strings, token, "socket-confine",
                std::string("'") + token +
                    "' outside src/comm/socket_transport.*: raw sockets have "
                    "exactly one home — speak TcpConn + WireFormat frames "
                    "instead",
                violations);
}

// ---------------------------------------------------------------------------
// Rule: enum-table
// ---------------------------------------------------------------------------

struct EnumDef {
  std::string file;
  size_t line = 0;
  std::vector<std::string> enumerators;
};

struct EnumTable {
  std::string file;
  size_t line = 0;
  std::vector<std::string> entries;  // enumerator names referenced
};

/// Enums whose name table feeds a serializer or CLI parser; deleting the
/// table entirely must fail the lint, not just drift within it.
const char* const kRequiredTables[] = {
    "BackendKind",   "CompressionKind", "StrategyKind",    "ModelKind",
    "PartitionScheme", "AggregationMode", "FaultKind",     "Topology",
    "EngineKind",    "SliceScheduleKind", "TransportKind",
};

std::string next_ident(const std::string& text, size_t& at) {
  while (at < text.size() && !is_ident_char(text[at])) ++at;
  const size_t start = at;
  while (at < text.size() && is_ident_char(text[at])) ++at;
  return text.substr(start, at - start);
}

void collect_enum_defs(const SourceFile& file,
                       std::map<std::string, EnumDef>& defs) {
  const std::string& text = file.no_comments_strings;
  size_t at = 0;
  while ((at = text.find("enum class", at)) != std::string::npos) {
    const size_t kw = at;
    if ((kw > 0 && is_ident_char(text[kw - 1])) ||
        is_ident_char(text[kw + 10])) {
      ++at;
      continue;
    }
    size_t cursor = kw + 10;
    const std::string name = next_ident(text, cursor);
    const size_t open = text.find('{', cursor);
    const size_t semi = text.find(';', cursor);
    // `enum class X;` forward declaration, or scan ran off the file.
    if (open == std::string::npos || (semi != std::string::npos && semi < open)) {
      at = kw + 10;
      continue;
    }
    const size_t close = text.find('}', open);
    if (close == std::string::npos) break;
    EnumDef def;
    def.file = file.rel_path;
    def.line = line_of_offset(text, kw);
    size_t scan = open + 1;
    while (scan < close) {
      std::string ident = next_ident(text, scan);
      if (scan > close || ident.empty()) break;
      def.enumerators.push_back(ident);
      // Skip any `= value` initializer up to the next comma.
      const size_t comma = text.find(',', scan);
      if (comma == std::string::npos || comma > close) break;
      scan = comma + 1;
    }
    if (!def.enumerators.empty() && !defs.count(name)) defs[name] = def;
    at = close;
  }
}

void collect_enum_tables(const SourceFile& file,
                         std::map<std::string, std::vector<EnumTable>>& tables) {
  const std::string& text = file.no_comments_strings;
  size_t at = 0;
  while ((at = text.find("EnumEntry<", at)) != std::string::npos) {
    const size_t open_angle = at + 10;
    const size_t close_angle = text.find('>', open_angle);
    if (close_angle == std::string::npos) break;
    const std::string name =
        text.substr(open_angle, close_angle - open_angle);
    // Only array declarations `EnumEntry<E> ident[] = { ... }` count as
    // tables; skip the helper templates' parameter lists.
    const size_t bracket = text.find('[', close_angle);
    const size_t line_end = text.find('\n', close_angle);
    if (bracket == std::string::npos ||
        (line_end != std::string::npos && bracket > line_end)) {
      at = close_angle;
      continue;
    }
    const size_t open_brace = text.find('{', bracket);
    if (open_brace == std::string::npos) break;
    EnumTable table;
    table.file = file.rel_path;
    table.line = line_of_offset(text, at);
    size_t depth = 1;
    size_t cursor = open_brace + 1;
    const std::string qualifier = name + "::";
    while (cursor < text.size() && depth > 0) {
      if (text[cursor] == '{') ++depth;
      if (text[cursor] == '}') --depth;
      ++cursor;
    }
    size_t scan = open_brace;
    while ((scan = text.find(qualifier, scan)) != std::string::npos &&
           scan < cursor) {
      size_t id_at = scan + qualifier.size();
      table.entries.push_back(next_ident(text, id_at));
      scan = id_at;
    }
    tables[name].push_back(table);
    at = cursor;
  }
}

void check_enum_tables(const std::vector<SourceFile>& files,
                       std::vector<Violation>& violations) {
  std::map<std::string, EnumDef> defs;
  std::map<std::string, std::vector<EnumTable>> tables;
  std::map<std::string, const SourceFile*> file_of;
  for (const SourceFile& file : files) {
    collect_enum_defs(file, defs);
    collect_enum_tables(file, tables);
    file_of[file.rel_path] = &file;
  }
  for (const auto& [name, def] : defs) {
    const bool waived = file_of.at(def.file)->waivers.allows("enum-table",
                                                             def.line);
    const auto table_it = tables.find(name);
    if (table_it == tables.end()) {
      const bool required =
          std::find_if(std::begin(kRequiredTables), std::end(kRequiredTables),
                       [&](const char* r) { return name == r; }) !=
          std::end(kRequiredTables);
      if (required && !waived)
        violations.push_back(
            {def.file, def.line, "enum-table",
             "enum " + name +
                 " is serialized/parsed but has no EnumEntry<" + name +
                 "> name table (util/enum_names.hpp)"});
      continue;
    }
    for (const EnumTable& table : table_it->second) {
      if (file_of.at(table.file)->waivers.allows("enum-table", table.line))
        continue;
      for (const std::string& enumerator : def.enumerators)
        if (std::find(table.entries.begin(), table.entries.end(),
                      enumerator) == table.entries.end())
          violations.push_back(
              {table.file, table.line, "enum-table",
               name + "::" + enumerator +
                   " is missing from this EnumEntry<" + name +
                   "> table — parser/serializer drift"});
      for (const std::string& entry : table.entries)
        if (std::find(def.enumerators.begin(), def.enumerators.end(),
                      entry) == def.enumerators.end())
          violations.push_back(
              {table.file, table.line, "enum-table",
               "table entry " + name + "::" + entry +
                   " does not name an enumerator of " + name});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: sync-cost-json
// ---------------------------------------------------------------------------

void check_sync_cost_json(const SourceFile& file,
                          std::vector<Violation>& violations) {
  if (file.rel_path == "src/core/run_record.cpp") return;
  // Assembled at runtime so the linter's own source stays clean.
  const std::string key = std::string("\"sync") + "_cost\"";
  size_t at = 0;
  while ((at = file.no_comments.find(key, at)) != std::string::npos) {
    const size_t line_no = line_of_offset(file.no_comments, at);
    if (!file.waivers.allows("sync-cost-json", line_no))
      violations.push_back(
          {file.rel_path, line_no, "sync-cost-json",
           "JSON key " + key +
               " may only be emitted by src/core/run_record.cpp behind the "
               "TrainJob::record_sync_cost gate (golden-record purity)"});
    at += key.size();
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool load_file(const fs::path& root, const std::string& rel,
               SourceFile& out, std::vector<Violation>& violations) {
  std::ifstream in(root / rel, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "selsync_lint: cannot read %s\n", rel.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  out.rel_path = rel;
  out.raw = text.str();
  out.no_comments = strip(out.raw, false);
  out.no_comments_strings = strip(out.raw, true);
  out.waivers = parse_waivers(out.raw, out.no_comments, rel, violations);
  return true;
}

bool is_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

int usage() {
  std::fprintf(
      stderr,
      "usage: selsync_lint [--root DIR] [--rules r1,r2] [--expect-fail] "
      "[files...]\n"
      "rules: rng, raw-thread, des-thread-free, enum-table, sync-cost-json, "
      "socket-confine (default: all)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::set<std::string> rules(std::begin(kAllRules), std::end(kAllRules));
  bool expect_fail = false;
  std::vector<std::string> rel_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--rules" && i + 1 < argc) {
      rules.clear();
      std::istringstream list(argv[++i]);
      std::string rule;
      while (std::getline(list, rule, ',')) {
        if (std::find(std::begin(kAllRules), std::end(kAllRules), rule) ==
            std::end(kAllRules)) {
          std::fprintf(stderr, "selsync_lint: unknown rule '%s'\n",
                       rule.c_str());
          return usage();
        }
        rules.insert(rule);
      }
    } else if (arg == "--expect-fail") {
      expect_fail = true;
    } else if (arg == "--help" || arg == "-h" || has_prefix(arg, "--")) {
      return usage();
    } else {
      rel_files.push_back(arg);
    }
  }

  std::error_code ec;
  if (rel_files.empty()) {
    for (const char* top : {"src", "tools"}) {
      for (fs::recursive_directory_iterator it(root / top, ec), end;
           !ec && it != end; it.increment(ec))
        if (it->is_regular_file() && is_source(it->path()))
          rel_files.push_back(
              fs::relative(it->path(), root).generic_string());
    }
    if (rel_files.empty()) {
      std::fprintf(stderr, "selsync_lint: nothing to scan under %s\n",
                   root.string().c_str());
      return 2;
    }
    std::sort(rel_files.begin(), rel_files.end());
  }

  std::vector<Violation> violations;
  std::vector<SourceFile> files(rel_files.size());
  for (size_t i = 0; i < rel_files.size(); ++i)
    if (!load_file(root, rel_files[i], files[i], violations)) return 2;

  for (const SourceFile& file : files) {
    if (rules.count("rng")) check_rng(file, violations);
    if (rules.count("raw-thread")) check_raw_thread(file, violations);
    if (rules.count("des-thread-free")) check_des_thread_free(file, violations);
    if (rules.count("sync-cost-json")) check_sync_cost_json(file, violations);
    if (rules.count("socket-confine")) check_socket_confine(file, violations);
  }
  if (rules.count("enum-table")) check_enum_tables(files, violations);

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  for (const Violation& v : violations)
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());

  const bool clean = violations.empty();
  if (!clean)
    std::printf("selsync_lint: %zu violation(s)\n", violations.size());
  if (expect_fail) return clean ? 1 : 0;
  return clean ? 0 : 1;
}
