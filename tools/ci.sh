#!/usr/bin/env bash
# ci.sh — the repo's tier-1 verification recipe, runnable locally or by CI.
#
#   tools/ci.sh              # tier-1: configure, build, full ctest
#   tools/ci.sh --parity     # additionally: the engine-parity + determinism tier
#   tools/ci.sh --socket     # additionally: the TCP transport tier
#   tools/ci.sh --chaos      # additionally: TSan build + the chaos suite
#   tools/ci.sh --analyze    # additionally: static analysis + UBSan leg
#
# The stages compose: `tools/ci.sh --parity --socket --chaos --analyze`
# runs all five.
#
# Tier 1 is the gate every change must pass (ROADMAP.md): a clean build and
# the full test suite, including the golden parity grid that pins the
# CommBackend + WorkerLoop stack to the seed trainer's exact dynamics. The
# tier-1 build configures with -DSELSYNC_WERROR=ON, so the curated warning
# set (-Wshadow, -Wold-style-cast, ... — see CMakeLists.txt) is enforced
# here while plain developer builds stay permissive.
#
# The optional parity stage re-runs the `parity` label on the tier-1 build:
# thread-vs-DES bit-identity across the backend/strategy/codec matrix, the
# DES determinism fuzz grid, the DES re-run of the 12 golden records
# (DESIGN.md §11), the sliced-data-plane matrix (--slices/--overlap on
# every transport, incl. crash/rejoin with slices in flight — DESIGN.md
# §12), and the SyncPlan switching matrix (DESIGN.md §14): degenerate
# switches byte-identical to plan-less runs on both engines, and real
# strategy/backend/codec/slices/shards switches replaying thread-vs-DES
# bit-for-bit. It runs on the plain build on purpose — the DES engine is
# fiber-based and refuses to start under ThreadSanitizer, so the sanitizer
# legs below stay pinned to the thread engine, where the real locks live.
#
# The optional socket stage runs the `socket` label on the tier-1 build:
# the TCP transport's bootstrap/chaos suite (worker processes killed
# mid-round, workers that never dial in, torn byte streams) and the golden
# grid re-run over loopback sockets (DESIGN.md §13). It stays out of the
# sanitizer legs on purpose — the tier fork()s real worker processes, and
# TSan/ASan runtimes do not survive fork-heavy tests.
#
# The optional chaos stage rebuilds under ThreadSanitizer and runs only the
# fault-injection tests (ctest -L chaos) — the tests that actually stress
# cross-thread teardown, channel aborts and PS waits. That label now also
# covers the compressed-transport chaos matrix (ring/tree allreduce with a
# Top-k codec fused into the data plane, over lossy links), so TSan sees the
# codec's per-(rank, slot) state being driven from worker threads, the
# sliced-overlap chaos cases (a crash mid-slice must release waiters on
# every pending slice round, mirroring the sharded-PS partial-abort cases),
# and the switch-boundary chaos cases (crashes landing exactly on a SyncPlan
# phase boundary, parks spanning the backend teardown/rebuild — §14).
# The stage finishes with the golden-drift gate: the `golden` label re-runs
# the 12-config parity grid under TSan — now also with --slices 1
# --overlap off pinned explicitly — and fails on any byte drift in the
# checked-in run records.
#
# The analyze stage (DESIGN.md §9) runs three legs:
#   1. clang-tidy over the exported compile_commands.json with the checked-in
#      .clang-tidy profile — skipped with a notice when clang-tidy is not on
#      PATH (the default container ships only GCC).
#   2. selsync_lint, the token-level repo analyzer — the five confinement
#      rules (rng / raw-thread / des-thread-free / socket-confine /
#      sync-cost-json) plus the structural passes (enum-table /
#      lock-discipline / layer-dag / wire-schema / handoff-sync) — repo-wide,
#      emitting
#      build/lint_report.json and the lock-order DOT artifact, plus its
#      fixture + lexer-unit suite (ctest -L lint).
#   3. An ASan+UBSan build (-DSELSYNC_SANITIZE=address,undefined) running
#      the chaos label and then the golden-drift gate, so undefined
#      behaviour and memory errors can't hide behind passing tests.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
RUN_PARITY=0
RUN_SOCKET=0
RUN_CHAOS=0
RUN_ANALYZE=0
for arg in "$@"; do
  case "$arg" in
    --parity) RUN_PARITY=1 ;;
    --socket) RUN_SOCKET=1 ;;
    --chaos) RUN_CHAOS=1 ;;
    --analyze) RUN_ANALYZE=1 ;;
    *) echo "usage: tools/ci.sh [--parity] [--socket] [--chaos] [--analyze]" >&2
       exit 2 ;;
  esac
done

echo "=== tier 1: build (warnings are errors) ==="
cmake -B build -DSELSYNC_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"

echo "=== tier 1: full test suite ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$RUN_PARITY" -eq 1 ]]; then
  echo "=== parity: thread-vs-DES bit-identity + DES determinism ==="
  ctest --test-dir build --output-on-failure -L parity -j "$JOBS"
fi

if [[ "$RUN_SOCKET" -eq 1 ]]; then
  echo "=== socket: TCP transport tier (fork + loopback sockets) ==="
  ctest --test-dir build --output-on-failure -L socket -j "$JOBS"
fi

if [[ "$RUN_CHAOS" -eq 1 ]]; then
  echo "=== chaos: ThreadSanitizer build ==="
  cmake -B build-tsan -DSELSYNC_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"

  echo "=== chaos: fault-injection suite under TSan ==="
  ctest --test-dir build-tsan --output-on-failure -L chaos

  echo "=== chaos: golden-record drift gate under TSan ==="
  ctest --test-dir build-tsan --output-on-failure -L golden
fi

if [[ "$RUN_ANALYZE" -eq 1 ]]; then
  echo "=== analyze: clang-tidy ==="
  if command -v clang-tidy >/dev/null 2>&1; then
    # The tier-1 configure above exported build/compile_commands.json
    # (CMAKE_EXPORT_COMPILE_COMMANDS is on unconditionally). src/ must be
    # warning-clean; .clang-tidy promotes every finding to an error.
    git ls-files 'src/*.cpp' 'src/*.hpp' \
      | xargs clang-tidy -p build --quiet
  else
    echo "clang-tidy not on PATH; skipping this leg (config: .clang-tidy," \
         "database: build/compile_commands.json)"
  fi

  echo "=== analyze: repo-invariant analyzer (selsync_lint, 10 rules) ==="
  # Human-readable pass first (failure output lands in the CI log), then a
  # second run emitting the machine-readable artifacts: the JSON report and
  # the lock-order graph the lock-discipline pass derived for
  # src/comm + src/core (DESIGN.md §9).
  ./build/tools/selsync_lint --root .
  ./build/tools/selsync_lint --root . --json --dot build/lock_order.dot \
    > build/lint_report.json
  echo "analyze artifacts: build/lint_report.json, build/lock_order.dot"

  echo "=== analyze: lint fixtures, lexer units + enum round-trips ==="
  ctest --test-dir build --output-on-failure -L lint

  echo "=== analyze: ASan+UBSan build ==="
  cmake -B build-ubsan -DSELSYNC_SANITIZE=address,undefined >/dev/null
  cmake --build build-ubsan -j "$JOBS"

  echo "=== analyze: chaos suite under ASan+UBSan ==="
  ctest --test-dir build-ubsan --output-on-failure -L chaos

  echo "=== analyze: golden-record drift gate under ASan+UBSan ==="
  ctest --test-dir build-ubsan --output-on-failure -L golden
fi

echo "ci.sh: all green"
