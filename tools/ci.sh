#!/usr/bin/env bash
# ci.sh — the repo's tier-1 verification recipe, runnable locally or by CI.
#
#   tools/ci.sh            # tier-1: configure, build, full ctest
#   tools/ci.sh --chaos    # additionally: TSan build + the chaos suite
#
# Tier 1 is the gate every change must pass (ROADMAP.md): a clean build and
# the full test suite, including the golden parity grid that pins the
# CommBackend + WorkerLoop stack to the seed trainer's exact dynamics.
# The optional chaos stage rebuilds under ThreadSanitizer and runs only the
# fault-injection tests (ctest -L chaos) — the tests that actually stress
# cross-thread teardown, channel aborts and PS waits. That label now also
# covers the compressed-transport chaos matrix (ring/tree allreduce with a
# Top-k codec fused into the data plane, over lossy links), so TSan sees the
# codec's per-(rank, slot) state being driven from worker threads. The stage
# finishes with the golden-drift gate: the `golden` label re-runs the
# 12-config parity grid under TSan and fails on any byte drift in the
# checked-in run records.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
RUN_CHAOS=0
for arg in "$@"; do
  case "$arg" in
    --chaos) RUN_CHAOS=1 ;;
    *) echo "usage: tools/ci.sh [--chaos]" >&2; exit 2 ;;
  esac
done

echo "=== tier 1: build ==="
cmake -B build >/dev/null
cmake --build build -j "$JOBS"

echo "=== tier 1: full test suite ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$RUN_CHAOS" -eq 1 ]]; then
  echo "=== chaos: ThreadSanitizer build ==="
  cmake -B build-tsan -DSELSYNC_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"

  echo "=== chaos: fault-injection suite under TSan ==="
  ctest --test-dir build-tsan --output-on-failure -L chaos

  echo "=== chaos: golden-record drift gate under TSan ==="
  ctest --test-dir build-tsan --output-on-failure -L golden
fi

echo "ci.sh: all green"
