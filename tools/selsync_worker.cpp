// selsync_worker — an external replica host for the TCP transport.
//
// The usual `selsync_cli --transport tcp` forks its own worker processes.
// With `--tcp-spawn off` the master instead waits for N of these to dial
// in, one per rank:
//
//   selsync_cli    --transport tcp --tcp-spawn off --tcp-port 7001
//                  --workload AlexNet --strategy bsp --workers 2 ...
//   selsync_worker --connect 127.0.0.1:7001 --rank 0
//                  --workload AlexNet --strategy bsp --workers 2 ...
//   selsync_worker --connect 127.0.0.1:7001 --rank 1
//                  --workload AlexNet --strategy bsp --workers 2 ...
//
// The workload flags MUST match the master's: both sides rebuild the job
// independently (datasets and models are deterministic from the flags), and
// the Hello handshake fingerprints it — a mismatch is rejected at connect
// time, not discovered as silent divergence mid-run.
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>

#include "core/replica.hpp"
#include "tools/job_flags.hpp"
#include "util/args.hpp"

using namespace selsync;

namespace {

int run(int argc, const char* const* argv) {
  ArgParser args;
  tools::add_job_options(args);
  args.add_option("connect",
                  "master address as host:port (selsync_cli --tcp-spawn off "
                  "prints it)",
                  "");
  args.add_option("rank", "this worker's rank, in [0, --workers)", "");

  if (!args.parse(argc, argv)) return 0;

  const std::string connect = args.get("connect");
  const size_t colon = connect.rfind(':');
  if (connect.empty() || colon == std::string::npos || colon == 0 ||
      colon + 1 == connect.size())
    throw std::invalid_argument(
        "--connect needs host:port (e.g. --connect 127.0.0.1:7001)");
  const std::string host = connect.substr(0, colon);
  const int port = std::stoi(connect.substr(colon + 1));
  if (port <= 0 || port > 65535)
    throw std::invalid_argument("--connect: port " + std::to_string(port) +
                                " is out of range");
  if (args.get("rank").empty())
    throw std::invalid_argument(
        "--rank is required (each worker process owns exactly one rank)");
  const size_t rank = static_cast<size_t>(args.get_int("rank"));

  const Workload w = tools::workload_from_args(args);
  TrainJob job = tools::job_from_args(args, w);
  job.transport = TransportKind::kTcp;
  job.tcp.spawn_workers = false;
  if (rank >= job.workers)
    throw std::invalid_argument(
        "--rank " + std::to_string(rank) + " is out of range for a " +
        std::to_string(job.workers) + "-worker job");

  std::printf("selsync_worker: rank %zu/%zu (%s on %s) dialing %s:%d...\n",
              rank, job.workers, strategy_kind_name(job.strategy),
              w.name.c_str(), host.c_str(), port);
  serve_tcp_worker(job, rank, host, static_cast<uint16_t>(port));
  std::printf("selsync_worker: rank %zu served to shutdown\n", rank);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selsync_worker: %s\n", e.what());
    return 1;
  }
}
