// The shared --workload/--strategy/... flag surface of the selsync tools.
//
// selsync_cli (the master) and selsync_worker (an external TCP replica
// host, --tcp-spawn off) must build bit-identical TrainJobs from identical
// flag spellings — the Hello handshake fingerprints the job and rejects a
// worker launched with different flags — so the option table and the
// flags -> TrainJob translation live here, once. Master-only knobs (the
// transport itself, fault plans, stop targets, output paths) stay in
// selsync_cli: they shape the run, not the replicas.
#pragma once

#include <stdexcept>
#include <string>

#include "core/config.hpp"
#include "core/workloads.hpp"
#include "util/args.hpp"
#include "util/enum_names.hpp"

namespace selsync::tools {

/// Registers every job-shaping option (everything the Hello fingerprint
/// covers, plus the knobs that only tune master-side behavior of the same
/// job object).
inline void add_job_options(ArgParser& args) {
  args.add_option("workload",
                  "ResNet101 | VGG11 | AlexNet | Transformer", "ResNet101");
  args.add_option("strategy", "bsp | local | fedavg | ssp | selsync | easgd",
                  "selsync");
  args.add_option("backend", "payload transport: shared | ring | tree | ps",
                  "shared");
  args.add_option("ps-shards",
                  "parameter-server shards (ps backend / SSP central store)",
                  "1");
  args.add_option("engine",
                  "cluster execution engine: threads | des (virtual-time "
                  "discrete-event, bit-identical, scales to N=1024)",
                  "threads");
  args.add_option("slices",
                  "per-layer priority slices per synchronization round "
                  "(1 = the unsliced step-end barrier)",
                  "1");
  args.add_option("overlap",
                  "overlap backward compute with slice communication "
                  "(P3-style; needs --slices > 1): on | off",
                  "off");
  args.add_option("slice-order",
                  "slice emission order: output-first (P3 priority) | "
                  "input-first (anti-priority baseline)",
                  "output-first");
  args.add_option("workers", "cluster size", "16");
  args.add_option("iterations", "per-worker step budget", "500");
  args.add_option("eval-interval", "steps between test evaluations", "50");
  args.add_option("seed", "experiment seed", "1");
  args.add_option("delta", "SelSync threshold on relative gradient change",
                  "0.15");
  args.add_option("aggregation", "SelSync sync payload: pa | ga", "pa");
  args.add_option("quorum", "fraction of votes required to sync (0 = any)",
                  "0");
  args.add_option("fedavg-c", "FedAvg participation fraction C", "1.0");
  args.add_option("fedavg-e", "FedAvg sync factor E (syncs 1/E per epoch)",
                  "0.25");
  args.add_option("staleness", "SSP staleness bound s", "100");
  args.add_option("easgd-alpha", "EASGD worker pull strength", "0.5");
  args.add_option("easgd-beta", "EASGD center pull strength", "0.5");
  args.add_option("easgd-tau", "EASGD steps between elastic updates", "4");
  args.add_option("partition", "seldp | defdp | noniid", "seldp");
  args.add_option("labels-per-worker", "labels per worker (noniid)", "1");
  args.add_option("inject-alpha", "data-injection worker fraction (0 = off)",
                  "0");
  args.add_option("inject-beta", "data-injection batch fraction", "0.5");
  args.add_option("codec",
                  "gradient codec fused into the backend: none | topk | "
                  "signsgd | quant8",
                  "none");
  args.add_option("topk", "Top-k kept fraction", "0.01");
  args.add_option("ema", "Polyak-average decay for evaluation (0 = off)",
                  "0");
}

/// The workload the parsed flags name.
inline Workload workload_from_args(const ArgParser& args) {
  return workload_by_name(args.get("workload"));
}

/// Translates the shared options into the TrainJob both processes must
/// agree on.
inline TrainJob job_from_args(const ArgParser& args, const Workload& w) {
  TrainJob job = make_job(
      w,
      parse_enum_flag("strategy", args.get("strategy"),
                      [](const std::string& v) {
                        return strategy_kind_from_name(v);
                      },
                      strategy_kind_names()),
      static_cast<size_t>(args.get_int("workers")),
      static_cast<uint64_t>(args.get_int("iterations")));
  job.backend = parse_enum_flag("backend", args.get("backend"),
                                [](const std::string& v) {
                                  return backend_kind_from_name(v);
                                },
                                backend_kind_names());
  job.ps_shards = static_cast<size_t>(args.get_int("ps-shards"));
  job.engine = parse_enum_flag("engine", args.get("engine"),
                               [](const std::string& v) {
                                 return engine_kind_from_name(v);
                               },
                               engine_kind_names());
  job.slices = static_cast<size_t>(args.get_int("slices"));
  const std::string overlap_flag = args.get("overlap");
  if (overlap_flag != "on" && overlap_flag != "off")
    throw std::invalid_argument("--overlap: unknown value '" + overlap_flag +
                                "' (expected on, off)");
  job.overlap = overlap_flag == "on";
  job.slice_order =
      parse_enum_flag("slice-order", args.get("slice-order"),
                      [](const std::string& v) {
                        return slice_schedule_kind_from_name(v);
                      },
                      slice_schedule_kind_names());
  job.eval_interval = static_cast<uint64_t>(args.get_int("eval-interval"));
  job.seed = static_cast<uint64_t>(args.get_int("seed"));
  job.selsync.delta = args.get_double("delta");
  job.selsync.aggregation =
      parse_enum_flag("aggregation", args.get("aggregation"),
                      [](const std::string& v) {
                        return aggregation_mode_from_name(v);
                      },
                      aggregation_mode_names());
  job.selsync.sync_quorum = args.get_double("quorum");
  job.fedavg = {args.get_double("fedavg-c"), args.get_double("fedavg-e")};
  job.ssp.staleness = static_cast<uint64_t>(args.get_int("staleness"));
  job.easgd = {args.get_double("easgd-alpha"), args.get_double("easgd-beta"),
               static_cast<uint64_t>(args.get_int("easgd-tau"))};

  const std::string partition = args.get("partition");
  if (partition == "defdp") {
    job.partition = PartitionScheme::kDefault;
  } else if (partition == "noniid") {
    job.partition = PartitionScheme::kNonIidLabel;
    job.labels_per_worker =
        static_cast<size_t>(args.get_int("labels-per-worker"));
  } else if (partition != "seldp") {
    throw std::invalid_argument("unknown partition '" + partition + "'");
  }

  if (args.get_double("inject-alpha") > 0) {
    job.injection = {true, args.get_double("inject-alpha"),
                     args.get_double("inject-beta")};
  }
  job.compression.kind =
      parse_enum_flag("codec", args.get("codec"),
                      [](const std::string& v) {
                        return compression_kind_from_name(v);
                      },
                      compression_kind_names());
  job.compression.topk_fraction = args.get_double("topk");
  job.ema_decay = args.get_double("ema");
  return job;
}

}  // namespace selsync::tools
