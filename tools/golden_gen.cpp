// golden_gen — regenerate the golden run records the parity tests compare
// against (tests/golden/records/*.json).
//
//   ./build/tools/golden_gen [output_dir]
//
// Only run this when a behavior change is *intentional*; the checked-in
// records pin the trainer's exact dynamics (see tests/golden/README.md).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/trainer.hpp"
#include "tests/golden/golden_configs.hpp"

int main(int argc, char** argv) {
  using namespace selsync;
  const std::string out_dir = argc > 1 ? argv[1] : "tests/golden/records";
  std::filesystem::create_directories(out_dir);
  for (const golden::GoldenConfig& cfg : golden::golden_grid()) {
    const TrainResult result = run_training(cfg.job);
    const std::string path = out_dir + "/" + cfg.name + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "golden_gen: cannot open %s\n", path.c_str());
      return 1;
    }
    out << golden::canonical_result_json(result);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
