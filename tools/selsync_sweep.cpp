// selsync_sweep — sweep one SelSync knob (δ, quorum, workers or the EWMA
// window) over a list of values and print a comparison table + CSV.
//
//   ./build/tools/selsync_sweep --workload ResNet101 --knob delta
//       --values 0,0.05,0.1,0.15,0.25 --iterations 400 --csv sweep.csv
#include <cstdio>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "core/workloads.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/enum_names.hpp"

using namespace selsync;

namespace {

std::vector<double> parse_values(const std::string& csv_list) {
  std::vector<double> values;
  std::stringstream ss(csv_list);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    values.push_back(std::stod(token));
  }
  if (values.empty())
    throw std::invalid_argument("--values: no values parsed from '" +
                                csv_list + "'");
  return values;
}

int run(int argc, const char* const* argv) {
  ArgParser args;
  args.add_option("workload", "ResNet101 | VGG11 | AlexNet | Transformer",
                  "ResNet101");
  args.add_option("knob", "delta | quorum | workers | window | ema",
                  "delta");
  args.add_option("values", "comma-separated values to sweep",
                  "0,0.05,0.1,0.15,0.2,0.3");
  args.add_option("workers", "cluster size (fixed unless swept)", "16");
  args.add_option("iterations", "per-worker step budget", "400");
  args.add_option("delta", "SelSync delta (fixed unless swept)", "0.15");
  args.add_option("backend", "payload transport: shared | ring | tree | ps",
                  "shared");
  args.add_option("codec",
                  "gradient codec: none | topk | signsgd | quant8 "
                  "(forces gradient aggregation)",
                  "none");
  args.add_option("csv", "write the sweep table to this CSV file", "");
  if (!args.parse(argc, argv)) return 0;

  const BackendKind backend =
      parse_enum_flag("backend", args.get("backend"),
                      [](const std::string& v) {
                        return backend_kind_from_name(v);
                      },
                      backend_kind_names());
  const CompressionKind codec =
      parse_enum_flag("codec", args.get("codec"),
                      [](const std::string& v) {
                        return compression_kind_from_name(v);
                      },
                      compression_kind_names());

  const Workload w = workload_by_name(args.get("workload"));
  const std::string knob = args.get("knob");
  const std::vector<double> values = parse_values(args.get("values"));

  std::unique_ptr<CsvWriter> csv;
  if (!args.get("csv").empty())
    csv = std::make_unique<CsvWriter>(
        args.get("csv"),
        std::vector<std::string>{"knob", "value", "lssr", "metric",
                                 "sim_time_s", "comm_gb"});

  std::printf("sweeping %s on %s (%s)\n\n", knob.c_str(), w.name.c_str(),
              metric_name(w));
  std::printf("%10s %8s %10s %12s %10s\n", knob.c_str(), "LSSR",
              metric_name(w), "sim time[s]", "comm [GB]");

  for (double value : values) {
    TrainJob job = make_job(w, StrategyKind::kSelSync,
                            static_cast<size_t>(args.get_int("workers")),
                            static_cast<uint64_t>(args.get_int("iterations")));
    job.selsync.delta = args.get_double("delta");
    job.backend = backend;
    if (codec != CompressionKind::kNone) {
      job.compression.kind = codec;
      // Codecs apply to gradient payloads only (TrainJob::validate), so a
      // compressed sweep runs SelSync in gradient-aggregation mode.
      job.selsync.aggregation = AggregationMode::kGradients;
    }
    if (knob == "delta") {
      job.selsync.delta = value;
    } else if (knob == "quorum") {
      job.selsync.sync_quorum = value;
    } else if (knob == "workers") {
      job.workers = static_cast<size_t>(value);
    } else if (knob == "window") {
      job.selsync.ewma_window = static_cast<size_t>(value);
    } else if (knob == "ema") {
      job.ema_decay = value;
    } else {
      throw std::invalid_argument("unknown knob '" + knob + "'");
    }
    const TrainResult r = run_training(job);
    const EvalPoint& final = r.final_eval;
    const double metric = primary_metric(w, final);
    const double comm_gb = r.comm_bytes / (1024.0 * 1024.0 * 1024.0);
    std::printf("%10.4g %8.3f %10.3f %12.1f %10.2f\n", value, r.lssr(),
                metric, r.sim_time_s, comm_gb);
    if (csv)
      csv->row({knob, CsvWriter::format_double(value),
                CsvWriter::format_double(r.lssr()),
                CsvWriter::format_double(metric),
                CsvWriter::format_double(r.sim_time_s),
                CsvWriter::format_double(comm_gb)});
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selsync_sweep: %s\n", e.what());
    return 1;
  }
}
