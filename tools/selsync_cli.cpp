// selsync_cli — run any distributed-training experiment from the command
// line, no C++ required.
//
//   selsync_cli --workload ResNet101 --strategy selsync --delta 0.15
//               --workers 16 --iterations 500 --json run.json
//
// Prints a human-readable summary and (optionally) writes the full run
// record (job + result + evaluation history) as JSON.
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "comm/fault_injector.hpp"
#include "core/checkpoint.hpp"
#include "core/run_record.hpp"
#include "core/trainer.hpp"
#include "core/workloads.hpp"
#include "nn/summary.hpp"
#include "tools/job_flags.hpp"
#include "util/args.hpp"
#include "util/enum_names.hpp"

using namespace selsync;

namespace {

/// --fault-plan accepts either inline JSON (first non-space char '{') or a
/// path to a JSON file (see examples/fault_plan.json).
FaultPlan load_fault_plan(const std::string& spec) {
  const size_t first = spec.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && spec[first] == '{')
    return parse_fault_plan(spec);
  std::ifstream in(spec);
  if (!in)
    throw std::invalid_argument("cannot open fault plan file '" + spec + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_fault_plan(text.str());
}

int run(int argc, const char* const* argv) {
  // The --compression alias was removed (--codec has been canonical since
  // the codec moved into the backend data plane); the parser would only say
  // "unknown option", so catch it first with a pointed message.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compression" || arg.rfind("--compression=", 0) == 0)
      throw std::invalid_argument(
          "--compression was removed; use --codec (none | topk | signsgd | "
          "quant8)");
  }

  ArgParser args;
  tools::add_job_options(args);
  args.add_option("transport",
                  "replica carrier: inproc (replicas in the master process, "
                  "the historical mode) | tcp (one forked worker process per "
                  "rank, framed verbs over loopback sockets)",
                  "inproc");
  args.add_option("tcp-port",
                  "TCP listener port (0 = ephemeral; print-free bind on "
                  "127.0.0.1)",
                  "0");
  args.add_option("tcp-spawn",
                  "fork the worker processes (on) or wait for external "
                  "selsync_worker processes to dial in (off): on | off",
                  "on");
  args.add_option("tcp-accept-timeout",
                  "seconds to wait for each worker's Hello before giving up",
                  "30");
  args.add_option("target-top1", "stop when top-1 accuracy reaches this", "");
  args.add_option("target-ppl", "stop when perplexity reaches this", "");
  args.add_option("fault-plan",
                  "fault-injection plan: JSON file path or inline {...}", "");
  // Mid-run switching (DESIGN.md §14). Master-only knobs: the plan never
  // crosses the wire — the master re-plans and the replicas are oblivious —
  // so these stay out of job_flags.hpp (which selsync_worker shares).
  args.add_option("switch-to",
                  "mid-run switch target: a strategy name (bsp | local | "
                  "fedavg | ssp | selsync | easgd) or comma-separated "
                  "key=value overrides (strategy=, backend=, codec=, "
                  "slices=, ps-shards=)",
                  "");
  args.add_option("switch-at",
                  "iteration to switch at; with --switch-on-gradchange it is "
                  "the trigger's warmup iteration instead",
                  "");
  args.add_option("switch-on-gradchange",
                  "switch when the cluster-max EWMA gradient change Δ(g) "
                  "falls to this threshold (Sync-Switch-style dynamic "
                  "boundary)",
                  "");
  args.add_option("json", "write the run record to this file", "");
  args.add_option("save-checkpoint", "write a model checkpoint here", "");
  args.add_switch("quiet", "suppress the evaluation trajectory");
  args.add_switch("describe", "print the model's parameter table and exit");

  if (!args.parse(argc, argv)) return 0;

  const Workload w = tools::workload_from_args(args);
  TrainJob job = tools::job_from_args(args, w);
  job.transport = parse_enum_flag("transport", args.get("transport"),
                                  [](const std::string& v) {
                                    return transport_kind_from_name(v);
                                  },
                                  transport_kind_names());
  job.tcp.port = static_cast<uint16_t>(args.get_int("tcp-port"));
  const std::string spawn_flag = args.get("tcp-spawn");
  if (spawn_flag != "on" && spawn_flag != "off")
    throw std::invalid_argument("--tcp-spawn: unknown value '" + spawn_flag +
                                "' (expected on, off)");
  job.tcp.spawn_workers = spawn_flag == "on";
  job.tcp.accept_timeout_s = args.get_double("tcp-accept-timeout");
  job.record_sync_cost = true;
  if (!args.get("target-top1").empty())
    job.target_top1 = args.get_double("target-top1");
  if (!args.get("target-ppl").empty())
    job.target_perplexity = args.get_double("target-ppl");
  if (!args.get("fault-plan").empty())
    job.faults = load_fault_plan(args.get("fault-plan"));
  const std::string switch_to = args.get("switch-to");
  const std::string switch_at = args.get("switch-at");
  const std::string switch_gc = args.get("switch-on-gradchange");
  if (!switch_to.empty()) {
    SyncPhase phase = parse_sync_phase_spec(switch_to);
    if (!switch_gc.empty()) {
      phase.trigger.kind = SwitchTriggerKind::kOnGradChange;
      phase.trigger.gradchange_below = args.get_double("switch-on-gradchange");
      if (!switch_at.empty())
        phase.trigger.min_iteration =
            static_cast<uint64_t>(args.get_int("switch-at"));
    } else if (!switch_at.empty()) {
      phase.trigger.kind = SwitchTriggerKind::kAtIteration;
      phase.trigger.at_iteration =
          static_cast<uint64_t>(args.get_int("switch-at"));
    } else {
      throw std::invalid_argument(
          "--switch-to needs a trigger: --switch-at N (iteration boundary) "
          "or --switch-on-gradchange T (Δ(g) threshold; --switch-at then "
          "sets the warmup iteration)");
    }
    job.sync_plan.phases.push_back(phase);
  } else if (!switch_at.empty() || !switch_gc.empty()) {
    throw std::invalid_argument(
        "--switch-at/--switch-on-gradchange set a switch trigger, but no "
        "--switch-to says what the next phase runs");
  }

  if (args.get_bool("describe")) {
    auto model = job.model_factory(job.seed);
    std::fputs(describe_model(*model).c_str(), stdout);
    return 0;
  }

  std::printf("running %s on %s: %zu workers, %llu iterations, %s backend, "
              "%s engine, %s transport...\n",
              strategy_kind_name(job.strategy), w.name.c_str(), job.workers,
              static_cast<unsigned long long>(job.max_iterations),
              backend_kind_name(job.backend), engine_kind_name(job.engine),
              transport_kind_name(job.transport));
  if (job.transport == TransportKind::kTcp && !job.tcp.spawn_workers) {
    if (job.tcp.port == 0)
      throw std::invalid_argument(
          "--tcp-spawn off needs a fixed --tcp-port: external selsync_worker "
          "processes cannot discover an ephemeral port");
    std::printf("waiting for %zu selsync_worker processes on 127.0.0.1:%u "
                "(same workload flags, plus --connect 127.0.0.1:%u "
                "--rank <r>)\n",
                job.workers, job.tcp.port, job.tcp.port);
  }
  const TrainResult result = run_training(job);

  std::printf("\n%-24s %llu\n", "iterations:",
              static_cast<unsigned long long>(result.iterations));
  if (result.lssr_applicable) {
    if (result.lssr() >= 1.0)
      std::printf("%-24s 1.000 (no synchronization at all)\n", "LSSR:");
    else
      std::printf("%-24s %.3f (comm reduced %.1fx vs BSP)\n",
                  "LSSR:", result.lssr(), result.comm_reduction());
  }
  std::printf("%-24s %.3f\n",
              w.is_lm ? "best perplexity:"
                      : (w.top5_metric ? "best top-5:" : "best top-1:"),
              w.is_lm ? result.best_perplexity
                      : (w.top5_metric ? result.best_top5 : result.best_top1));
  std::printf("%-24s %.1f s (simulated, paper scale)\n",
              "training time:", result.sim_time_s);
  std::printf("%-24s %.2f GB (paper scale, per worker)\n", "communication:",
              result.comm_bytes / (1024.0 * 1024.0 * 1024.0));
  if (result.sync_cost.rounds > 0) {
    const SyncCostTotals& s = result.sync_cost;
    const double gb = 1024.0 * 1024.0 * 1024.0;
    std::printf("%-24s %llu rounds: %.1f s transfer, %.1f s codec "
                "(%.1f encode + %.1f decode), %.1f s fault penalty\n",
                "sync cost:", static_cast<unsigned long long>(s.rounds),
                s.transfer_s, s.encode_s + s.decode_s, s.encode_s, s.decode_s,
                s.fault_penalty_s);
    std::printf("%-24s %.2f GB on the wire for %.2f GB dense (%.1fx "
                "reduction)\n",
                "", s.wire_bytes / gb, s.dense_bytes / gb,
                s.wire_bytes > 0.0 ? s.dense_bytes / s.wire_bytes : 1.0);
    if (s.measured_wire_bytes > 0.0)
      std::printf("%-24s %.3f s measured wall-clock, %.2f MB framed on the "
                  "loopback wire (CostModel calibration inputs)\n",
                  "", s.measured_sync_s,
                  s.measured_wire_bytes / (1024.0 * 1024.0));
    if (s.slices > 1)
      std::printf("%-24s %llu priority slices per round, %.1f s transfer "
                  "hidden behind backward (%.0f%%)\n",
                  "", static_cast<unsigned long long>(s.slices),
                  s.overlap_saved_s,
                  s.transfer_s > 0.0
                      ? 100.0 * s.overlap_saved_s / s.transfer_s
                      : 0.0);
  }
  std::printf("%-24s %.2f s\n", "wall time:", result.wall_time_s);
  if (result.reached_target) std::printf("stopped early: target reached\n");
  if (result.faults.any()) {
    const FaultSummary& f = result.faults;
    std::printf("\nfaults injected (%zu events):\n", f.events.size());
    std::printf("%-24s %llu crashed, %llu restarted, %llu re-synced\n",
                "workers:", static_cast<unsigned long long>(f.crashes),
                static_cast<unsigned long long>(f.restarts),
                static_cast<unsigned long long>(f.recovery_syncs));
    std::printf("%-24s %llu dropped, %llu delayed, %llu duplicated\n",
                "messages:",
                static_cast<unsigned long long>(f.messages_dropped),
                static_cast<unsigned long long>(f.messages_delayed),
                static_cast<unsigned long long>(f.messages_duplicated));
    std::printf("%-24s %llu timeouts, %llu give-ups\n", "PS RPCs:",
                static_cast<unsigned long long>(f.ps_timeouts),
                static_cast<unsigned long long>(f.ps_give_ups));
    if (f.straggler_episodes || f.quorum_lost_rounds)
      std::printf("%-24s %llu straggler episodes, %llu quorum-lost rounds\n",
                  "degradation:",
                  static_cast<unsigned long long>(f.straggler_episodes),
                  static_cast<unsigned long long>(f.quorum_lost_rounds));
  }

  if (!args.get_bool("quiet")) {
    std::printf("\n%-10s %-8s %-10s\n", "iteration", "epoch",
                metric_name(w));
    for (const EvalPoint& pt : result.eval_history)
      std::printf("%-10llu %-8.2f %-10.3f\n",
                  static_cast<unsigned long long>(pt.iteration), pt.epoch,
                  primary_metric(w, pt));
  }

  if (!args.get("json").empty()) {
    write_run_record(args.get("json"), job, result);
    std::printf("\nrun record written to %s\n", args.get("json").c_str());
  }
  if (!args.get("save-checkpoint").empty()) {
    auto model = job.model_factory(job.seed);
    // The trainer's replicas are gone; checkpoint a fresh replica of the
    // job's initial state so sweeps can branch from a common seed.
    save_checkpoint(args.get("save-checkpoint"), *model, nullptr, 0);
    std::printf("seed checkpoint written to %s\n",
                args.get("save-checkpoint").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "selsync_cli: %s\n", e.what());
    return 1;
  }
}
