// layer-dag: the include graph must respect the architecture layering
//
//     util → tensor → {nn, data, optim, stats} → comm → core → tools/tests
//
// declared once in kLayers below. Two checks:
//
//   1. No upward includes: a file may include only same-rank or lower-rank
//      headers (src/util must not see src/core, src/comm must not see
//      src/core, ...). Same-rank sibling includes are allowed — the rank-2
//      directories legitimately share headers (nn ↔ data via model/dataset).
//   2. No include cycles at FILE granularity. Directory-level cycles are
//      tolerated exactly when the file graph stays acyclic (nn/eval_report
//      → data/dataset → nn/model is a chain, not a loop); a genuine header
//      cycle fails regardless of which directories it spans.
//
// Include targets are resolved against the scanned file set (src/<T>,
// <T>, tools/<T>); system headers and unresolvable targets are ignored.
#include <functional>
#include <map>
#include <set>

#include "lint/rules.hpp"

namespace selsync_lint {

namespace {

struct LayerSpec {
  const char* prefix;  // rel-path directory prefix
  int rank;
};

/// The layering table — the single source of truth for this rule.
const LayerSpec kLayers[] = {
    {"src/util/", 0},   {"src/tensor/", 1}, {"src/nn/", 2},
    {"src/data/", 2},   {"src/optim/", 2},  {"src/stats/", 2},
    {"src/comm/", 3},   {"src/core/", 4},   {"tools/", 5},
    {"tests/", 5},      {"bench/", 5},      {"examples/", 5},
};

int rank_of(const std::string& rel_path) {
  for (const LayerSpec& layer : kLayers)
    if (rel_path.rfind(layer.prefix, 0) == 0) return layer.rank;
  return -1;
}

const char* layer_name(int rank) {
  switch (rank) {
    case 0: return "util";
    case 1: return "tensor";
    case 2: return "nn/data/optim/stats";
    case 3: return "comm";
    case 4: return "core";
    case 5: return "tools/tests";
    default: return "?";
  }
}

}  // namespace

void check_layer_dag(const std::vector<SourceFile>& files,
                     std::vector<Violation>& violations) {
  std::set<std::string> known;
  for (const SourceFile& file : files) known.insert(file.rel_path);

  auto resolve = [&](const std::string& target) -> std::string {
    for (const std::string& candidate :
         {"src/" + target, target, "tools/" + target})
      if (known.count(candidate)) return candidate;
    return "";
  };

  // file → (included file, include line) — built once, used by both checks.
  std::map<std::string, std::vector<std::pair<std::string, size_t>>> graph;
  std::map<std::string, const SourceFile*> file_of;

  for (const SourceFile& file : files) {
    file_of[file.rel_path] = &file;
    const int from_rank = rank_of(file.rel_path);
    for (const Directive& d : file.toks.directives) {
      if (!d.is_include) continue;
      const std::string target = resolve(d.include_target);
      if (target.empty()) continue;
      graph[file.rel_path].emplace_back(target, d.line);
      const int to_rank = rank_of(target);
      if (from_rank >= 0 && to_rank >= 0 && to_rank > from_rank)
        report(file, "layer-dag", d.line,
               "upward include: " + std::string(layer_name(from_rank)) +
                   "-layer file includes \"" + d.include_target + "\" (" +
                   layer_name(to_rank) +
                   " layer) — the dependency arrow runs util -> tensor -> "
                   "{nn,data,optim,stats} -> comm -> core -> tools/tests",
               violations);
    }
  }

  // File-granularity include cycle detection.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::pair<std::string, size_t>> path;  // (file, include line)
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& n) {
    color[n] = 1;
    for (const auto& [to, line] : graph[n]) {
      if (color[to] == 1) {
        std::string cycle;
        size_t site_line = line;
        std::string site_file = n;
        bool in_cycle = false;
        for (const auto& [pf, pl] : path) {
          if (pf == to) in_cycle = true;
          if (in_cycle) cycle += pf + " -> ";
        }
        cycle += n + " -> " + to;
        if (reported.insert(cycle).second) {
          const SourceFile* sf = file_of.at(site_file);
          if (!sf->waivers.allows("layer-dag", site_line))
            violations.push_back({site_file, site_line, "layer-dag",
                                  "include cycle: " + cycle});
        }
      } else if (color[to] == 0) {
        path.emplace_back(n, line);
        dfs(to);
        path.pop_back();
      }
    }
    color[n] = 2;
  };
  for (const auto& [file, _] : graph)
    if (color[file] == 0) dfs(file);
}

}  // namespace selsync_lint
