// The five per-file confinement rules, ported from the PR 4 line scanner
// onto the token stream. Identifier matching walks qualified-name chains
// (never comment or string text), so the old false-positive class — a
// forbidden name quoted in a doc comment or log string — is gone by
// construction.
#include <initializer_list>

#include "lint/rules.hpp"

namespace selsync_lint {

namespace {

bool has_prefix(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

/// Flags every qualified identifier whose chain (or chain prefix) is in
/// `forbidden`, in both the main stream and directive bodies.
void match_idents(const SourceFile& file,
                  std::initializer_list<const char*> forbidden,
                  const std::string& rule, const std::string& why,
                  std::vector<Violation>& violations) {
  auto scan = [&](const std::vector<Token>& toks) {
    for_each_qualified_ident(toks, [&](const std::string& name, size_t line,
                                       size_t) {
      for (const std::string& prefix : qualified_prefixes(name)) {
        bool hit = false;
        for (const char* f : forbidden)
          if (prefix == f) {
            hit = true;
            break;
          }
        if (hit) {
          report(file, rule, line, "'" + prefix + "' " + why, violations);
          break;
        }
      }
    });
  };
  scan(file.toks.tokens);
  for (const Directive& d : file.toks.directives) scan(d.body_tokens);
}

/// Flags `#include <target>` for every target in `forbidden`.
void match_includes(const SourceFile& file,
                    std::initializer_list<const char*> forbidden,
                    const std::string& rule, const std::string& why,
                    std::vector<Violation>& violations) {
  for (const Directive& d : file.toks.directives) {
    if (!d.is_include) continue;
    for (const char* f : forbidden)
      if (d.include_target == f) {
        report(file, rule, d.line,
               "include <" + d.include_target + "> " + why, violations);
        break;
      }
  }
}

/// Wall-clock seeding calls: time(nullptr) / time(NULL) / time(0).
void match_time_seed(const SourceFile& file, const std::string& rule,
                     std::vector<Violation>& violations) {
  const std::vector<Token>& toks = file.toks.tokens;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "time") continue;
    if (toks[i + 1].text != "(" || toks[i + 3].text != ")") continue;
    const std::string& arg = toks[i + 2].text;
    if (arg != "nullptr" && arg != "NULL" && arg != "0") continue;
    report(file, rule, toks[i].line,
           "'time(" + arg +
               ")' breaks run reproducibility; derive a seeded stream from "
               "util/rng (Rng::fork) instead",
           violations);
  }
}

}  // namespace

void check_rng(const SourceFile& file, std::vector<Violation>& violations) {
  if (has_prefix(file.rel_path, "src/util/rng")) return;
  match_idents(file,
               {"std::rand", "std::srand", "srand", "std::random_device",
                "std::mt19937", "std::mt19937_64",
                "std::default_random_engine", "std::minstd_rand",
                "std::uniform_int_distribution",
                "std::uniform_real_distribution", "std::normal_distribution",
                "std::bernoulli_distribution"},
               "rng",
               "breaks run reproducibility; derive a seeded stream from "
               "util/rng (Rng::fork) instead",
               violations);
  match_time_seed(file, "rng", violations);
}

void check_raw_thread(const SourceFile& file,
                      std::vector<Violation>& violations) {
  if (has_prefix(file.rel_path, "src/comm/")) return;
  match_idents(file,
               {"std::thread", "std::jthread", "std::mutex",
                "std::timed_mutex", "std::recursive_mutex",
                "std::shared_mutex", "std::condition_variable",
                "std::condition_variable_any"},
               "raw-thread",
               "outside src/comm/: use the cluster/channel/barrier "
               "primitives so the TSan chaos label covers the edge",
               violations);
}

void check_des_thread_free(const SourceFile& file,
                           std::vector<Violation>& violations) {
  if (!has_prefix(file.rel_path, "src/comm/event_loop")) return;
  const std::string why =
      "in the DES core: the event loop must stay thread-free by "
      "construction — block via WaitSlot park/wake, never host "
      "synchronization";
  match_idents(file,
               {"std::thread", "std::jthread", "std::mutex",
                "std::timed_mutex", "std::recursive_mutex",
                "std::shared_mutex", "std::condition_variable",
                "std::condition_variable_any", "std::atomic",
                "std::this_thread"},
               "des-thread-free", why, violations);
  match_includes(file, {"thread", "mutex", "condition_variable", "atomic"},
                 "des-thread-free", why, violations);
}

void check_socket_confine(const SourceFile& file,
                          std::vector<Violation>& violations) {
  if (has_prefix(file.rel_path, "src/comm/socket_transport")) return;
  const std::string why =
      "outside src/comm/socket_transport.*: raw sockets have exactly one "
      "home — speak TcpConn + WireFormat frames instead";
  match_idents(file,
               {"::socket", "::connect", "::accept", "::bind", "::listen",
                "::setsockopt", "::getsockname"},
               "socket-confine", why, violations);
  match_includes(file,
                 {"sys/socket.h", "netinet/in.h", "netinet/tcp.h",
                  "arpa/inet.h", "netdb.h"},
                 "socket-confine", why, violations);
}

void check_sync_cost_json(const SourceFile& file,
                          std::vector<Violation>& violations) {
  if (file.rel_path == "src/core/run_record.cpp") return;
  // Assembled at runtime so this rule's own source stays clean under it.
  const std::string key = std::string("sync") + "_cost";
  auto scan = [&](const std::vector<Token>& toks) {
    for (const Token& t : toks) {
      if (t.kind != TokKind::kString || t.text != key) continue;
      report(file, "sync-cost-json", t.line,
             "JSON key \"" + key +
                 "\" may only be emitted by src/core/run_record.cpp behind "
                 "the TrainJob::record_sync_cost gate (golden-record purity)",
             violations);
    }
  };
  scan(file.toks.tokens);
  for (const Directive& d : file.toks.directives) scan(d.body_tokens);
}

}  // namespace selsync_lint
