// SourceFile: one lexed file plus its waivers, shared by every pass.
//
// Waivers are parsed from comment tokens ONLY (the lexer never emits code
// tokens for comment text), which is what makes the marker spelled inside a
// string literal inert — the PR 4 scanner matched raw text and would have
// honoured it. Syntax, unchanged from PR 4:
//
//   // selsync-lint: allow(<rule>) -- <reason>        this + next code line
//   // selsync-lint: allow-file(<rule>) -- <reason>   whole file
//
// A reasonless waiver is itself a violation. A line waiver covers its own
// line(s) plus everything up to and including the first following line that
// holds code, so a multi-line comment carrying the reason still reaches the
// statement below it.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace selsync_lint {

struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct Waivers {
  std::set<std::string> file_rules;              // allow-file(rule)
  std::map<size_t, std::set<std::string>> line;  // line -> allowed rules
  bool allows(const std::string& rule, size_t line_no) const {
    if (file_rules.count(rule)) return true;
    auto it = line.find(line_no);
    return it != line.end() && it->second.count(rule) > 0;
  }
};

struct SourceFile {
  std::string rel_path;  // forward-slash path relative to --root
  std::string raw;
  TokenStream toks;
  Waivers waivers;
};

/// Reads and lexes root/rel; waiver syntax errors land in `violations`.
bool load_source(const std::filesystem::path& root, const std::string& rel,
                 SourceFile& out, std::vector<Violation>& violations);

/// Appends {file, line, rule, message} unless a waiver covers it.
void report(const SourceFile& file, const std::string& rule, size_t line,
            const std::string& message, std::vector<Violation>& violations);

/// Calls `fn(name, line)` once per maximal qualified identifier — the chain
/// `a::b::c` visited at its last component, plus the global-scope form
/// `::socket`. Covers the main token stream and every directive body.
/// Matchers test set membership against the chain and each of its
/// `::`-prefixes, longest first (so `std::this_thread::sleep_for` still
/// matches a ban on `std::this_thread`).
template <typename Fn>
void for_each_qualified_ident(const std::vector<Token>& toks, Fn&& fn) {
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    // Only fire at the end of a chain.
    if (i + 2 < toks.size() && toks[i + 1].kind == TokKind::kPunct &&
        toks[i + 1].text == "::" && toks[i + 2].kind == TokKind::kIdent)
      continue;
    std::string name = toks[i].text;
    size_t j = i;
    while (j >= 2 && toks[j - 1].kind == TokKind::kPunct &&
           toks[j - 1].text == "::" && toks[j - 2].kind == TokKind::kIdent) {
      name = toks[j - 2].text + "::" + name;
      j -= 2;
    }
    if (j >= 1 && toks[j - 1].kind == TokKind::kPunct &&
        toks[j - 1].text == "::")
      name = "::" + name;
    fn(name, toks[i].line, i);
  }
}

/// Every prefix of `a::b::c` at component boundaries, longest first
/// (including the full name). "::x" yields only "::x".
std::vector<std::string> qualified_prefixes(const std::string& name);

}  // namespace selsync_lint
