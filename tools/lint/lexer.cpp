#include "lint/lexer.hpp"

#include <cctype>

namespace selsync_lint {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

namespace {

/// Multi-character punctuators, longest first so maximal munch holds.
const char* const kPuncts[] = {
    "...", "->*", "<<=", ">>=", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++",  "--",
};

/// One cursor over the raw text; tracks the 1-based line.
struct Cursor {
  const std::string& text;
  size_t at = 0;
  size_t line = 1;

  bool done() const { return at >= text.size(); }
  char peek(size_t ahead = 0) const {
    return at + ahead < text.size() ? text[at + ahead] : '\0';
  }
  char take() {
    const char c = text[at++];
    if (c == '\n') ++line;
    return c;
  }
};

bool is_string_prefix(const std::string& s) {
  return s == "u8" || s == "u" || s == "U" || s == "L";
}

bool is_raw_prefix(const std::string& s) {
  return s == "R" || s == "u8R" || s == "uR" || s == "UR" || s == "LR";
}

/// Lexes the string body after the opening quote of a NON-raw literal;
/// cursor sits just past the `"` (or `'`). Returns the body.
std::string lex_quoted_body(Cursor& c, char quote) {
  std::string body;
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '\\' && c.peek(1) != '\0') {
      body += c.take();
      body += c.take();
      continue;
    }
    if (ch == quote) {
      c.take();
      break;
    }
    if (ch == '\n') break;  // unterminated: stop at the line end
    body += c.take();
  }
  return body;
}

/// Lexes R"delim( ... )delim" with the cursor just past the `"`.
std::string lex_raw_body(Cursor& c) {
  std::string delim;
  while (!c.done() && c.peek() != '(' && c.peek() != '\n' &&
         delim.size() < 16)
    delim += c.take();
  if (c.peek() == '(') c.take();
  const std::string closer = ")" + delim + "\"";
  std::string body;
  while (!c.done()) {
    if (c.text.compare(c.at, closer.size(), closer) == 0) {
      for (size_t i = 0; i < closer.size(); ++i) c.take();
      return body;
    }
    body += c.take();
  }
  return body;  // unterminated raw string: body runs to EOF
}

struct Lexer {
  Cursor c;
  TokenStream out;

  explicit Lexer(const std::string& text) : c{text} {}

  void push(TokKind kind, std::string text, size_t line, size_t end_line,
            std::vector<Token>* sink) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.end_line = end_line;
    (sink ? *sink : out.tokens).push_back(std::move(t));
  }

  /// Lexes one token (or comment) at the cursor into `sink` (the main
  /// stream when null). Returns false at end of input.
  bool lex_one(std::vector<Token>* sink, bool in_directive) {
    // Skip whitespace; a newline ends a directive body.
    while (!c.done()) {
      const char ch = c.peek();
      if (in_directive && ch == '\\' && c.peek(1) == '\n') {
        c.take();
        c.take();
        continue;
      }
      if (ch == '\n' && in_directive) return false;
      if (std::isspace(static_cast<unsigned char>(ch)) == 0) break;
      c.take();
    }
    if (c.done()) return false;

    const size_t line = c.line;
    const char ch = c.peek();

    if (ch == '/' && c.peek(1) == '/') {
      c.take();
      c.take();
      std::string body;
      while (!c.done() && c.peek() != '\n') body += c.take();
      out.comments.push_back({body, line, line});
      return !in_directive;  // a trailing comment ends a directive
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.take();
      c.take();
      std::string body;
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/'))
        body += c.take();
      if (!c.done()) {
        c.take();
        c.take();
      }
      out.comments.push_back({body, line, c.line});
      return true;
    }

    if (is_ident_start(ch)) {
      std::string word;
      while (!c.done() && is_ident_char(c.peek())) word += c.take();
      // String/char literal prefixes glued to the quote: L"...", u8"...",
      // and the raw forms R"( )", u8R"( )" ...
      if (c.peek() == '"' && is_raw_prefix(word)) {
        c.take();
        const size_t begin = c.line;
        std::string body = lex_raw_body(c);
        push(TokKind::kString, std::move(body), begin, c.line, sink);
        return true;
      }
      if (c.peek() == '"' && is_string_prefix(word)) {
        c.take();
        std::string body = lex_quoted_body(c, '"');
        push(TokKind::kString, std::move(body), line, c.line, sink);
        return true;
      }
      if (c.peek() == '\'' && is_string_prefix(word)) {
        c.take();
        std::string body = lex_quoted_body(c, '\'');
        push(TokKind::kChar, std::move(body), line, c.line, sink);
        return true;
      }
      push(TokKind::kIdent, std::move(word), line, line, sink);
      return true;
    }

    if (ch == '"') {
      c.take();
      std::string body = lex_quoted_body(c, '"');
      push(TokKind::kString, std::move(body), line, c.line, sink);
      return true;
    }
    if (ch == '\'') {
      c.take();
      std::string body = lex_quoted_body(c, '\'');
      push(TokKind::kChar, std::move(body), line, c.line, sink);
      return true;
    }

    if (std::isdigit(static_cast<unsigned char>(ch)) != 0 ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      // pp-number: digits, idents, dots, digit separators, and exponent
      // signs; wide enough for every C++ numeric literal form.
      std::string num;
      num += c.take();
      while (!c.done()) {
        const char n = c.peek();
        if (is_ident_char(n) || n == '.' || n == '\'') {
          num += c.take();
        } else if ((n == '+' || n == '-') && !num.empty() &&
                   (num.back() == 'e' || num.back() == 'E' ||
                    num.back() == 'p' || num.back() == 'P')) {
          num += c.take();
        } else {
          break;
        }
      }
      push(TokKind::kNumber, std::move(num), line, line, sink);
      return true;
    }

    for (const char* p : kPuncts) {
      const size_t n = std::char_traits<char>::length(p);
      if (c.text.compare(c.at, n, p) == 0) {
        for (size_t i = 0; i < n; ++i) c.take();
        push(TokKind::kPunct, p, line, line, sink);
        return true;
      }
    }
    push(TokKind::kPunct, std::string(1, c.take()), line, line, sink);
    return true;
  }

  /// The cursor sits on `#` at the start of a directive line.
  void lex_directive() {
    Directive d;
    d.line = c.line;
    c.take();  // '#'
    const size_t text_begin = c.at;
    while (lex_one(&d.body_tokens, /*in_directive=*/true)) {
    }
    // Reconstruct the joined text (for diagnostics) from the raw span.
    for (size_t i = text_begin; i < c.at; ++i) {
      const char raw = c.text[i];
      if (raw == '\\' && i + 1 < c.at && c.text[i + 1] == '\n') {
        ++i;
        continue;
      }
      d.text += raw == '\n' ? ' ' : raw;
    }
    if (!d.body_tokens.empty() && d.body_tokens[0].kind == TokKind::kIdent &&
        d.body_tokens[0].text == "include") {
      d.is_include = true;
      if (d.body_tokens.size() >= 2 &&
          d.body_tokens[1].kind == TokKind::kString) {
        d.angled = false;
        d.include_target = d.body_tokens[1].text;
      } else {
        // <...> re-lexed as punct/ident soup; recover the target from the
        // directive text instead.
        const size_t open = d.text.find('<');
        const size_t close = d.text.find('>', open);
        if (open != std::string::npos && close != std::string::npos) {
          d.angled = true;
          d.include_target = d.text.substr(open + 1, close - open - 1);
        }
      }
    }
    out.directives.push_back(std::move(d));
  }

  TokenStream run() {
    bool at_line_start = true;
    while (!c.done()) {
      const char ch = c.peek();
      if (ch == '\n') {
        c.take();
        at_line_start = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
        c.take();
        continue;
      }
      if (ch == '#' && at_line_start) {
        lex_directive();
        at_line_start = true;
        continue;
      }
      at_line_start = false;
      lex_one(nullptr, /*in_directive=*/false);
    }
    out.line_count = c.line;
    return std::move(out);
  }
};

}  // namespace

TokenStream lex(const std::string& text) { return Lexer(text).run(); }

}  // namespace selsync_lint
