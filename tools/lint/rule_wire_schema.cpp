// wire-schema: the checked-in manifest (tools/lint/wire_schema.manifest)
// is the pinned wire contract; this pass re-derives constants, frame-struct
// field layouts, and verb enums from the token streams and fails on any
// divergence. The direction matters: the manifest is authoritative, the
// source must still say what the manifest promised. Evolution is
// append-only — new fields after the pinned prefix and new verbs at fresh
// values pass; a reorder, a width change, a value change, or a deletion is
// a wire break and fails loudly.
//
// Verb categories add the serialize/parse-pair check: an `rpc` verb needs
// a receiver (`case ReplicaVerb::kX`) and a sender (any non-case
// `ReplicaVerb::kX` reference); `handshake`/`control` verbs travel as raw
// frames and need at least one reference of any kind.
//
// A tree with no manifest skips the pass — the tool stays usable on
// fixture trees that exercise other rules.
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>

#include "lint/rules.hpp"

namespace fs = std::filesystem;

namespace selsync_lint {

namespace {

bool is_punct(const Token& t, const char* p) {
  return t.kind == TokKind::kPunct && t.text == p;
}
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }
bool is_ident(const Token& t, const char* w) {
  return t.kind == TokKind::kIdent && t.text == w;
}

/// Integer-type token → manifest width ("-" = width not pinned).
std::string width_of(const std::string& type) {
  if (type == "uint8_t" || type == "char" || type == "bool") return "u8";
  if (type == "uint16_t") return "u16";
  if (type == "uint32_t") return "u32";
  if (type == "uint64_t") return "u64";
  if (type == "int8_t") return "i8";
  if (type == "int16_t") return "i16";
  if (type == "int32_t") return "i32";
  if (type == "int64_t") return "i64";
  if (type == "float") return "f32";
  if (type == "double") return "f64";
  return "-";
}

struct ManifestConst {
  std::string name, width;
  uint64_t value = 0;
  size_t line = 0;
};
struct ManifestField {
  std::string name, width;
  size_t line = 0;
};
struct ManifestStruct {
  std::string name;
  std::vector<ManifestField> fields;
  size_t line = 0;
};
struct ManifestVerb {
  std::string name, category;
  uint64_t value = 0;
  size_t line = 0;
};
struct ManifestEnum {
  std::string name, width;
  std::vector<ManifestVerb> verbs;
  size_t line = 0;
};

struct Manifest {
  std::string rel_path;
  std::vector<ManifestConst> consts;
  std::vector<ManifestStruct> structs;
  std::vector<ManifestEnum> enums;
};

bool parse_manifest(const fs::path& path, const std::string& rel,
                    Manifest& out, std::vector<Violation>& violations) {
  std::ifstream in(path);
  if (!in) return false;
  out.rel_path = rel;
  std::string line;
  size_t line_no = 0;
  auto bad = [&](const std::string& why) {
    violations.push_back({rel, line_no, "wire-schema",
                          "manifest syntax: " + why + " in '" + line + "'"});
  };
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream words(line);
    std::string kind;
    if (!(words >> kind) || kind[0] == '#') continue;
    if (kind == "const") {
      ManifestConst c;
      std::string value;
      if (!(words >> c.name >> c.width >> value)) {
        bad("expected `const <name> <width|-> <value>`");
        continue;
      }
      c.value = std::stoull(value, nullptr, 0);
      c.line = line_no;
      out.consts.push_back(std::move(c));
    } else if (kind == "struct") {
      ManifestStruct s;
      if (!(words >> s.name)) {
        bad("expected `struct <Name>`");
        continue;
      }
      s.line = line_no;
      out.structs.push_back(std::move(s));
    } else if (kind == "field") {
      ManifestField f;
      if (!(words >> f.name >> f.width) || out.structs.empty()) {
        bad("expected `field <name> <width>` after a `struct` line");
        continue;
      }
      f.line = line_no;
      out.structs.back().fields.push_back(std::move(f));
    } else if (kind == "enum") {
      ManifestEnum e;
      if (!(words >> e.name >> e.width)) {
        bad("expected `enum <Name> <width>`");
        continue;
      }
      e.line = line_no;
      out.enums.push_back(std::move(e));
    } else if (kind == "verb") {
      ManifestVerb v;
      std::string value;
      if (!(words >> v.name >> value >> v.category) || out.enums.empty()) {
        bad("expected `verb <name> <value> <category>` after an `enum` line");
        continue;
      }
      v.value = std::stoull(value, nullptr, 0);
      v.line = line_no;
      out.enums.back().verbs.push_back(std::move(v));
    } else {
      bad("unknown entity kind '" + kind + "'");
    }
  }
  return true;
}

size_t match_brace(const std::vector<Token>& toks, size_t open) {
  size_t depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    if (is_punct(toks[i], "}") && --depth == 0) return i;
  }
  return toks.size();
}

// ---- source-side facts, re-derived from the token streams -----------------

struct SourceConst {
  std::string width;
  uint64_t value = 0;
  std::string file;
  size_t line = 0;
};
struct SourceField {
  std::string name, width;
};
struct SourceStruct {
  std::vector<SourceField> fields;
  std::string file;
  size_t line = 0;
};
struct SourceEnum {
  std::string width;
  std::vector<std::pair<std::string, uint64_t>> enumerators;
  std::string file;
  size_t line = 0;
};
struct VerbRefs {
  size_t cases = 0;
  size_t other = 0;
};

struct SourceFacts {
  std::map<std::string, SourceConst> consts;
  std::map<std::string, SourceStruct> structs;
  std::map<std::string, SourceEnum> enums;
  // enum name → verb name → reference counts across the tree
  std::map<std::string, std::map<std::string, VerbRefs>> refs;
};

bool parse_u64(const std::string& text, uint64_t& out) {
  try {
    size_t used = 0;
    out = std::stoull(text, &used, 0);
    return used > 0;
  } catch (...) {
    return false;
  }
}

void scan_file(const SourceFile& file, const Manifest& manifest,
               SourceFacts& facts) {
  const std::vector<Token>& toks = file.toks.tokens;
  auto wanted_const = [&](const std::string& name) {
    for (const ManifestConst& c : manifest.consts)
      if (c.name == name) return true;
    return false;
  };
  auto wanted_struct = [&](const std::string& name) {
    for (const ManifestStruct& s : manifest.structs)
      if (s.name == name) return true;
    return false;
  };
  auto wanted_enum = [&](const std::string& name) {
    for (const ManifestEnum& e : manifest.enums)
      if (e.name == name) return true;
    return false;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!is_ident(t)) continue;

    // constexpr <type> kName = <number>;
    if (wanted_const(t.text) && !facts.consts.count(t.text) && i >= 1 &&
        is_ident(toks[i - 1]) && i + 2 < toks.size() &&
        is_punct(toks[i + 1], "=") && toks[i + 2].kind == TokKind::kNumber) {
      uint64_t value = 0;
      if (parse_u64(toks[i + 2].text, value))
        facts.consts[t.text] = {width_of(toks[i - 1].text), value,
                                file.rel_path, t.line};
      continue;
    }

    // struct <Name> { <type> <name> [= init]; ... };
    if ((t.text == "struct" || t.text == "class") && i + 1 < toks.size() &&
        is_ident(toks[i + 1]) && wanted_struct(toks[i + 1].text)) {
      const std::string name = toks[i + 1].text;
      size_t at = i + 2;
      while (at < toks.size() && !is_punct(toks[at], "{") &&
             !is_punct(toks[at], ";"))
        ++at;
      if (at >= toks.size() || is_punct(toks[at], ";")) continue;
      const size_t close = match_brace(toks, at);
      if (facts.structs.count(name)) continue;
      SourceStruct s;
      s.file = file.rel_path;
      s.line = t.line;
      // One field per `;` at depth 1: first ident is the type, the ident
      // right before `=`/`;`/`{` is the field name. Statements containing
      // `(` (methods, ctors) are skipped.
      size_t stmt = at + 1;
      size_t depth = 1;
      std::vector<const Token*> buf;
      for (size_t j = at + 1; j < close; ++j) {
        if (is_punct(toks[j], "{")) ++depth;
        if (is_punct(toks[j], "}")) --depth;
        if (depth == 1 && is_punct(toks[j], ";")) {
          bool has_paren = false;
          for (const Token* b : buf)
            if (is_punct(*b, "(") || is_punct(*b, ")")) has_paren = true;
          if (!has_paren && buf.size() >= 2 && is_ident(*buf.front())) {
            size_t name_at = buf.size();
            for (size_t k = 0; k < buf.size(); ++k)
              if (is_punct(*buf[k], "=") || is_punct(*buf[k], "{")) {
                name_at = k;
                break;
              }
            if (name_at >= 1 && is_ident(*buf[name_at - 1]) && name_at >= 2)
              s.fields.push_back(
                  {buf[name_at - 1]->text, width_of(buf.front()->text)});
          }
          buf.clear();
          stmt = j + 1;
          continue;
        }
        if (depth >= 1 && j >= stmt) buf.push_back(&toks[j]);
      }
      facts.structs[name] = std::move(s);
      i = close;
      continue;
    }

    // enum class <Name> : <type> { kA = 1, kB, ... };
    if (t.text == "enum") {
      size_t at = i + 1;
      if (at < toks.size() &&
          (is_ident(toks[at], "class") || is_ident(toks[at], "struct")))
        ++at;
      if (at >= toks.size() || !is_ident(toks[at])) continue;
      const std::string name = toks[at].text;
      if (!wanted_enum(name)) continue;
      ++at;
      std::string width = "-";
      if (at + 1 < toks.size() && is_punct(toks[at], ":") &&
          is_ident(toks[at + 1])) {
        width = width_of(toks[at + 1].text);
        at += 2;
      }
      while (at < toks.size() && !is_punct(toks[at], "{") &&
             !is_punct(toks[at], ";"))
        ++at;
      if (at >= toks.size() || is_punct(toks[at], ";")) continue;
      const size_t close = match_brace(toks, at);
      if (facts.enums.count(name)) {
        i = close;
        continue;
      }
      SourceEnum e;
      e.width = width;
      e.file = file.rel_path;
      e.line = t.line;
      uint64_t next = 0;
      for (size_t j = at + 1; j < close; ++j) {
        if (!is_ident(toks[j])) continue;
        uint64_t value = next;
        size_t k = j + 1;
        if (k + 1 < close && is_punct(toks[k], "=") &&
            toks[k + 1].kind == TokKind::kNumber &&
            parse_u64(toks[k + 1].text, value))
          k += 2;
        e.enumerators.emplace_back(toks[j].text, value);
        next = value + 1;
        // Skip to the separating comma.
        while (k < close && !is_punct(toks[k], ",")) ++k;
        j = k;
      }
      facts.enums[name] = std::move(e);
      i = close;
      continue;
    }

    // <EnumName> :: <verb> references, split case vs. other.
    if (wanted_enum(t.text) && i + 2 < toks.size() &&
        is_punct(toks[i + 1], "::") && is_ident(toks[i + 2])) {
      VerbRefs& r = facts.refs[t.text][toks[i + 2].text];
      if (i >= 1 && is_ident(toks[i - 1], "case"))
        ++r.cases;
      else
        ++r.other;
    }
  }
}

}  // namespace

void check_wire_schema(const std::vector<SourceFile>& files,
                       const std::filesystem::path& root,
                       std::vector<Violation>& violations) {
  const std::string rel = "tools/lint/wire_schema.manifest";
  Manifest manifest;
  if (!parse_manifest(root / rel, rel, manifest, violations)) return;

  SourceFacts facts;
  for (const SourceFile& file : files) scan_file(file, manifest, facts);

  auto fail = [&](const std::string& file, size_t line,
                  const std::string& message) {
    violations.push_back({file, line, "wire-schema", message});
  };

  for (const ManifestConst& c : manifest.consts) {
    auto it = facts.consts.find(c.name);
    if (it == facts.consts.end()) {
      fail(rel, c.line,
           "pinned constant " + c.name + " no longer exists in the source");
      continue;
    }
    if (it->second.value != c.value)
      fail(it->second.file, it->second.line,
           c.name + " = " + std::to_string(it->second.value) +
               " but the manifest pins " + std::to_string(c.value) +
               " — changing a pinned constant is a wire break");
    if (c.width != "-" && it->second.width != c.width)
      fail(it->second.file, it->second.line,
           c.name + " is " + it->second.width + " but the manifest pins " +
               c.width + " — width changes are a wire break");
  }

  for (const ManifestStruct& ms : manifest.structs) {
    auto it = facts.structs.find(ms.name);
    if (it == facts.structs.end()) {
      fail(rel, ms.line,
           "pinned frame struct " + ms.name + " no longer exists");
      continue;
    }
    const SourceStruct& ss = it->second;
    // The manifest fields must be an exact prefix of the source fields:
    // any reorder, width change, or deletion breaks the prefix; appended
    // fields after it are the allowed evolution path.
    for (size_t i = 0; i < ms.fields.size(); ++i) {
      const ManifestField& mf = ms.fields[i];
      if (i >= ss.fields.size()) {
        fail(ss.file, ss.line,
             ms.name + " lost pinned field '" + mf.name +
                 "' — fields are append-only");
        continue;
      }
      const SourceField& sf = ss.fields[i];
      if (sf.name != mf.name) {
        fail(ss.file, ss.line,
             ms.name + " field " + std::to_string(i + 1) + " is '" + sf.name +
                 "' but the manifest pins '" + mf.name +
                 "' in that slot — reordering or renaming frame fields is a "
                 "wire break; new fields append after the pinned prefix");
      } else if (mf.width != "-" && sf.width != mf.width) {
        fail(ss.file, ss.line,
             ms.name + "::" + sf.name + " is " + sf.width +
                 " but the manifest pins " + mf.width +
                 " — widening or narrowing a frame field is a wire break");
      }
    }
  }

  for (const ManifestEnum& me : manifest.enums) {
    auto it = facts.enums.find(me.name);
    if (it == facts.enums.end()) {
      fail(rel, me.line, "pinned verb enum " + me.name + " no longer exists");
      continue;
    }
    const SourceEnum& se = it->second;
    if (me.width != "-" && se.width != me.width)
      fail(se.file, se.line,
           me.name + " has underlying width " + se.width +
               " but the manifest pins " + me.width +
               " — the verb field's wire width may not change");
    for (const ManifestVerb& mv : me.verbs) {
      uint64_t value = 0;
      bool found = false;
      for (const auto& [name, v] : se.enumerators)
        if (name == mv.name) {
          found = true;
          value = v;
        }
      if (!found) {
        fail(se.file, se.line,
             me.name + "::" + mv.name +
                 " is pinned in the manifest but gone from the enum — verbs "
                 "are append-only, deprecate in place instead");
        continue;
      }
      if (value != mv.value) {
        fail(se.file, se.line,
             me.name + "::" + mv.name + " = " + std::to_string(value) +
                 " but the manifest pins " + std::to_string(mv.value) +
                 " — renumbering a verb is a wire break");
        continue;
      }
      const VerbRefs refs = facts.refs[me.name][mv.name];
      if (mv.category == "rpc") {
        if (refs.cases == 0)
          fail(se.file, se.line,
               "rpc verb " + me.name + "::" + mv.name +
                   " has no receiver: expected a `case " + me.name +
                   "::" + mv.name + "` dispatch arm");
        if (refs.other == 0)
          fail(se.file, se.line,
               "rpc verb " + me.name + "::" + mv.name +
                   " has no sender: expected a call-side reference besides "
                   "the dispatch `case`");
      } else if (refs.cases + refs.other == 0) {
        fail(se.file, se.line,
             mv.category + " verb " + me.name + "::" + mv.name +
                 " is never referenced in the source");
      }
    }
    // Source-side additions must use fresh values (append-only).
    for (const auto& [name, value] : se.enumerators) {
      bool pinned = false;
      for (const ManifestVerb& mv : me.verbs)
        if (mv.name == name) pinned = true;
      if (pinned) continue;
      for (const ManifestVerb& mv : me.verbs)
        if (mv.value == value)
          fail(se.file, se.line,
               "new verb " + me.name + "::" + name + " reuses value " +
                   std::to_string(value) + " already pinned to " + me.name +
                   "::" + mv.name + " — new verbs must take fresh values " +
                   "(and a manifest line)");
    }
  }
}

}  // namespace selsync_lint
