// The ten selsync_lint rule families (DESIGN.md §9).
//
// Per-file identifier/confinement rules (ported from the PR 4 scanner onto
// the token stream, which removes their comment/string false positives):
//   rng              deterministic randomness only (util/rng)
//   raw-thread       std::thread/mutex/cv confined to src/comm/
//   des-thread-free  the DES core is thread/lock/atomic-free
//   socket-confine   BSD sockets confined to src/comm/socket_transport.*
//   sync-cost-json   "sync_cost" emitted only by src/core/run_record.cpp
//
// Whole-program structural rules:
//   enum-table       EnumEntry<E> name tables complete, both directions
//   lock-discipline  per-function lock model over src/comm + src/core:
//                    lock-order graph acyclic, WaitSlot::wait under its
//                    unique_lock guard, no blocking with a second lock held
//   layer-dag        include layering util → tensor → {nn,data,optim,stats}
//                    → comm → core → tools/tests, plus file-level include
//                    cycle detection
//   wire-schema      the checked-in wire_schema.manifest matches the source
//                    frame structs / verbs byte for byte; append-only
//   handoff-sync     the SyncPlan handoff snapshots (WorkerHandoff,
//                    BackendHandoff, the stats captures) stay in sync with
//                    the state classes they mirror, per the checked-in
//                    handoff_state.manifest
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "lint/source.hpp"

namespace selsync_lint {

// ---- per-file rules -------------------------------------------------------
void check_rng(const SourceFile& file, std::vector<Violation>& violations);
void check_raw_thread(const SourceFile& file,
                      std::vector<Violation>& violations);
void check_des_thread_free(const SourceFile& file,
                           std::vector<Violation>& violations);
void check_socket_confine(const SourceFile& file,
                          std::vector<Violation>& violations);
void check_sync_cost_json(const SourceFile& file,
                          std::vector<Violation>& violations);

// ---- whole-program rules --------------------------------------------------
void check_enum_tables(const std::vector<SourceFile>& files,
                       std::vector<Violation>& violations);

/// Lock-discipline over src/comm + src/core. When `dot_path` is non-empty
/// the derived lock-order graph is written there in Graphviz DOT form
/// (nodes: lock identities; edges: observed acquisition orders, labelled by
/// the function that establishes them).
void check_lock_discipline(const std::vector<SourceFile>& files,
                           const std::string& dot_path,
                           std::vector<Violation>& violations);

void check_layer_dag(const std::vector<SourceFile>& files,
                     std::vector<Violation>& violations);

/// Wire-schema pass; `root` locates tools/lint/wire_schema.manifest.
void check_wire_schema(const std::vector<SourceFile>& files,
                       const std::filesystem::path& root,
                       std::vector<Violation>& violations);

/// Handoff-sync pass; `root` locates tools/lint/handoff_state.manifest.
void check_handoff_sync(const std::vector<SourceFile>& files,
                        const std::filesystem::path& root,
                        std::vector<Violation>& violations);

}  // namespace selsync_lint
