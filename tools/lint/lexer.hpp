// Token-level C++ lexer shared by every selsync_lint pass (DESIGN.md §9).
//
// The PR 4 linter scanned text line-by-line with a hand-rolled
// comment/string stripper; that machinery could not see raw strings,
// line-continued preprocessor directives or multi-line literals, so every
// rule carried a known false-positive class. This lexer replaces it with a
// real token stream:
//
//   * comments (line and block) become Comment records, never code tokens —
//     waivers are parsed from comments ONLY, so an `allow(...)` spelled
//     inside a string literal no longer registers;
//   * string/char literals (including raw strings R"delim(...)delim" and
//     encoding prefixes) become single kString/kChar tokens carrying their
//     body, so identifier matching can never fire inside one;
//   * preprocessor directives are captured whole (line continuations
//     joined) as Directive records with the include target pre-parsed; the
//     directive body is also re-lexed into Token form so macro bodies stay
//     visible to the identifier rules without confusing brace-structure
//     passes (structural passes read `tokens` only, matchers read both).
//
// The lexer is whitespace- and position-faithful: every token knows its
// 1-based line (and, for multi-line literals, its end line) so violations
// and waivers keep addressing real source lines.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace selsync_lint {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  /// Spelling for ident/number/punct; the literal body (quotes and raw
  /// delimiters stripped, escapes untouched) for string/char tokens.
  std::string text;
  size_t line = 0;
  /// Last line the token touches (> line only for multi-line literals).
  size_t end_line = 0;
};

struct Comment {
  std::string text;  // without the // or /* */ markers
  size_t line_begin = 0;
  size_t line_end = 0;
};

struct Directive {
  std::string text;  // full directive after `#`, continuations joined
  size_t line = 0;
  bool is_include = false;
  bool angled = false;          // #include <...> vs "..."
  std::string include_target;   // e.g. "comm/wait_slot.hpp" or "mutex"
  /// The directive body re-lexed (identifier rules scan macro bodies too);
  /// brace/paren tokens in here never reach the structural passes.
  std::vector<Token> body_tokens;
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Directive> directives;
  size_t line_count = 0;
};

TokenStream lex(const std::string& text);

bool is_ident_start(char c);
bool is_ident_char(char c);

}  // namespace selsync_lint
