#include "lint/source.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace selsync_lint {

namespace {

/// Lines that hold code (a token or directive), for the line-waiver reach.
std::vector<bool> code_lines(const TokenStream& toks) {
  std::vector<bool> has_code(toks.line_count + 2, false);
  auto mark = [&](size_t begin, size_t end) {
    for (size_t l = begin; l <= end && l < has_code.size(); ++l)
      has_code[l] = true;
  };
  for (const Token& t : toks.tokens) mark(t.line, t.end_line);
  for (const Directive& d : toks.directives) mark(d.line, d.line);
  return has_code;
}

void parse_waivers(const SourceFile& file, Waivers& w,
                   std::vector<Violation>& violations) {
  const std::vector<bool> has_code = code_lines(file.toks);
  const std::string prefix = "selsync-lint: ";
  const std::string markers[] = {prefix + "allow-file(", prefix + "allow("};
  for (const Comment& comment : file.toks.comments) {
    // Process the comment line by line so waiver lines stay addressable
    // inside multi-line block comments.
    std::istringstream in(comment.text);
    std::string line;
    size_t line_no = comment.line_begin;
    for (; std::getline(in, line); ++line_no) {
      for (const std::string& marker : markers) {
        const size_t at = line.find(marker);
        if (at == std::string::npos) continue;
        const bool file_wide = marker.find("allow-file") != std::string::npos;
        const size_t open = at + marker.size();
        const size_t close = line.find(')', open);
        if (close == std::string::npos) continue;
        const std::string rule = line.substr(open, close - open);
        const size_t reason_at = line.find("--", close);
        const bool has_reason =
            reason_at != std::string::npos &&
            line.find_first_not_of(" \t", reason_at + 2) != std::string::npos;
        if (!has_reason) {
          violations.push_back({file.rel_path, line_no, "waiver",
                                "waiver for '" + rule +
                                    "' is missing a reason (expected "
                                    "`-- <why this is exempt>`)"});
          continue;
        }
        if (file_wide) {
          w.file_rules.insert(rule);
        } else {
          w.line[line_no].insert(rule);
          for (size_t l = line_no + 1; l < has_code.size(); ++l) {
            w.line[l].insert(rule);
            if (has_code[l]) break;
          }
        }
        break;
      }
    }
  }
}

}  // namespace

bool load_source(const fs::path& root, const std::string& rel,
                 SourceFile& out, std::vector<Violation>& violations) {
  std::ifstream in(root / rel, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "selsync_lint: cannot read %s\n", rel.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  out.rel_path = rel;
  out.raw = text.str();
  out.toks = lex(out.raw);
  parse_waivers(out, out.waivers, violations);
  return true;
}

void report(const SourceFile& file, const std::string& rule, size_t line,
            const std::string& message, std::vector<Violation>& violations) {
  if (file.waivers.allows(rule, line)) return;
  violations.push_back({file.rel_path, line, rule, message});
}

std::vector<std::string> qualified_prefixes(const std::string& name) {
  std::vector<std::string> out;
  out.push_back(name);
  size_t at = name.rfind("::");
  while (at != std::string::npos && at > 0) {
    out.push_back(name.substr(0, at));
    at = name.rfind("::", at - 1);
  }
  return out;
}

}  // namespace selsync_lint
