// enum-table: every enumerator of an enum with an EnumEntry<E> name table
// appears in that table (both directions), and the serialized/parsed enums
// must have a table at all. Token port of the PR 4 rule: enum bodies and
// table initializers are read off the token stream with real brace/paren
// balancing, so enumerators mentioned in comments or strings are invisible.
#include <algorithm>
#include <map>

#include "lint/rules.hpp"

namespace selsync_lint {

namespace {

struct EnumDef {
  std::string file;
  size_t line = 0;
  std::vector<std::string> enumerators;
};

struct EnumTable {
  std::string file;
  size_t line = 0;
  std::vector<std::string> entries;
};

/// Enums whose name table feeds a serializer or CLI parser; deleting the
/// table entirely must fail the lint, not just drift within it.
const char* const kRequiredTables[] = {
    "BackendKind",     "CompressionKind",   "StrategyKind",  "ModelKind",
    "PartitionScheme", "AggregationMode",   "FaultKind",     "Topology",
    "EngineKind",      "SliceScheduleKind", "TransportKind",
    "SwitchTriggerKind",
};

bool is_kw(const Token& t, const char* word) {
  return t.kind == TokKind::kIdent && t.text == word;
}

bool is_punct(const Token& t, const char* p) {
  return t.kind == TokKind::kPunct && t.text == p;
}

/// Index of the matching close brace for the open brace at `open`.
size_t match_brace(const std::vector<Token>& toks, size_t open) {
  size_t depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    if (is_punct(toks[i], "}") && --depth == 0) return i;
  }
  return toks.size();
}

void collect_enum_defs(const SourceFile& file,
                       std::map<std::string, EnumDef>& defs) {
  const std::vector<Token>& toks = file.toks.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_kw(toks[i], "enum")) continue;
    size_t at = i + 1;
    if (is_kw(toks[at], "class") || is_kw(toks[at], "struct")) ++at;
    if (at >= toks.size() || toks[at].kind != TokKind::kIdent) continue;
    const std::string name = toks[at].text;
    ++at;
    // Skip an underlying-type clause up to `{`; bail on `;` (fwd decl).
    while (at < toks.size() && !is_punct(toks[at], "{") &&
           !is_punct(toks[at], ";"))
      ++at;
    if (at >= toks.size() || is_punct(toks[at], ";")) continue;
    const size_t close = match_brace(toks, at);
    EnumDef def;
    def.file = file.rel_path;
    def.line = toks[i].line;
    // Enumerators sit at depth 1, one per comma; initializer expressions
    // are skipped with paren/brace balancing.
    size_t cursor = at + 1;
    while (cursor < close) {
      if (toks[cursor].kind == TokKind::kIdent) {
        def.enumerators.push_back(toks[cursor].text);
        // Skip to the separating comma at depth 0.
        size_t depth = 0;
        while (cursor < close) {
          if (is_punct(toks[cursor], "(") || is_punct(toks[cursor], "{") ||
              is_punct(toks[cursor], "["))
            ++depth;
          if (is_punct(toks[cursor], ")") || is_punct(toks[cursor], "}") ||
              is_punct(toks[cursor], "]"))
            --depth;
          if (depth == 0 && is_punct(toks[cursor], ",")) break;
          ++cursor;
        }
      }
      ++cursor;
    }
    if (!def.enumerators.empty() && !defs.count(name)) defs[name] = def;
    i = close;
  }
}

void collect_enum_tables(const SourceFile& file,
                         std::map<std::string, std::vector<EnumTable>>& tables) {
  const std::vector<Token>& toks = file.toks.tokens;
  for (size_t i = 0; i + 4 < toks.size(); ++i) {
    // EnumEntry<Name> ident[] = { ... }
    if (!is_kw(toks[i], "EnumEntry") || !is_punct(toks[i + 1], "<")) continue;
    if (toks[i + 2].kind != TokKind::kIdent) continue;
    const std::string name = toks[i + 2].text;
    size_t at = i + 3;
    if (!is_punct(toks[at], ">")) continue;
    ++at;
    // Only array declarations count as tables; the helper templates'
    // parameter lists (`const EnumEntry<E> (&table)[N]`) have no bare
    // ident-then-bracket here.
    if (at >= toks.size() || toks[at].kind != TokKind::kIdent) continue;
    ++at;
    if (at >= toks.size() || !is_punct(toks[at], "[")) continue;
    while (at < toks.size() && !is_punct(toks[at], "{") &&
           !is_punct(toks[at], ";"))
      ++at;
    if (at >= toks.size() || is_punct(toks[at], ";")) continue;
    const size_t close = match_brace(toks, at);
    EnumTable table;
    table.file = file.rel_path;
    table.line = toks[i].line;
    for (size_t j = at + 1; j + 2 < close; ++j)
      if (toks[j].kind == TokKind::kIdent && toks[j].text == name &&
          is_punct(toks[j + 1], "::") && toks[j + 2].kind == TokKind::kIdent)
        table.entries.push_back(toks[j + 2].text);
    tables[name].push_back(table);
    i = close;
  }
}

}  // namespace

void check_enum_tables(const std::vector<SourceFile>& files,
                       std::vector<Violation>& violations) {
  std::map<std::string, EnumDef> defs;
  std::map<std::string, std::vector<EnumTable>> tables;
  std::map<std::string, const SourceFile*> file_of;
  for (const SourceFile& file : files) {
    collect_enum_defs(file, defs);
    collect_enum_tables(file, tables);
    file_of[file.rel_path] = &file;
  }
  for (const auto& [name, def] : defs) {
    const bool waived =
        file_of.at(def.file)->waivers.allows("enum-table", def.line);
    const auto table_it = tables.find(name);
    if (table_it == tables.end()) {
      const bool required =
          std::find_if(std::begin(kRequiredTables), std::end(kRequiredTables),
                       [&](const char* r) { return name == r; }) !=
          std::end(kRequiredTables);
      if (required && !waived)
        violations.push_back(
            {def.file, def.line, "enum-table",
             "enum " + name + " is serialized/parsed but has no EnumEntry<" +
                 name + "> name table (util/enum_names.hpp)"});
      continue;
    }
    for (const EnumTable& table : table_it->second) {
      if (file_of.at(table.file)->waivers.allows("enum-table", table.line))
        continue;
      for (const std::string& enumerator : def.enumerators)
        if (std::find(table.entries.begin(), table.entries.end(),
                      enumerator) == table.entries.end())
          violations.push_back(
              {table.file, table.line, "enum-table",
               name + "::" + enumerator + " is missing from this EnumEntry<" +
                   name + "> table — parser/serializer drift"});
      for (const std::string& entry : table.entries)
        if (std::find(def.enumerators.begin(), def.enumerators.end(),
                      entry) == def.enumerators.end())
          violations.push_back(
              {table.file, table.line, "enum-table",
               "table entry " + name + "::" + entry +
                   " does not name an enumerator of " + name});
    }
  }
}

}  // namespace selsync_lint
