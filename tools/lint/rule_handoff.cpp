// handoff-sync: the SyncPlan handoff structs (core/handoff.hpp,
// comm/comm_backend.hpp, the stats snapshots) must stay in sync with the
// live state they mirror. The checked-in manifest
// (tools/lint/handoff_state.manifest) pins each snapshot struct against the
// class whose members it carries across a phase boundary; this pass
// re-derives both field sets from the token streams and fails on drift in
// either direction:
//
//   * a state member that is neither carried into the snapshot nor
//     skip-listed — new loop/codec/PS state silently dropped at every
//     switch, the exact bug class the pass exists for;
//   * a snapshot field no carry/pin line covers — dead weight, or a carry
//     line someone deleted without deleting the field;
//   * a manifest line naming a field or member that no longer exists —
//     stale pins rot the contract.
//
// A tree with no manifest skips the pass — the tool stays usable on
// fixture trees that exercise other rules (same rule as wire-schema).
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lint/rules.hpp"

namespace fs = std::filesystem;

namespace selsync_lint {

namespace {

bool is_punct(const Token& t, const char* p) {
  return t.kind == TokKind::kPunct && t.text == p;
}
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }
bool is_ident(const Token& t, const char* w) {
  return t.kind == TokKind::kIdent && t.text == w;
}

struct ManifestCarry {
  std::string field, member;
  size_t line = 0;
};
struct ManifestName {
  std::string name;  // a pinned-without-mirror field, or a skipped member
  size_t line = 0;
};

/// One `pair <Snapshot> <State>` block: the carries that move state into
/// the snapshot, the snapshot fields pinned without a mirror (flags the
/// trainer itself writes), and the state members deliberately left behind.
struct ManifestPair {
  std::string snapshot, state;
  size_t line = 0;
  std::vector<ManifestCarry> carries;
  std::vector<ManifestName> pins;
  std::vector<ManifestName> skips;
};

struct Manifest {
  std::string rel_path;
  std::vector<ManifestPair> pairs;
};

bool parse_manifest(const fs::path& path, const std::string& rel,
                    Manifest& out, std::vector<Violation>& violations) {
  std::ifstream in(path);
  if (!in) return false;
  out.rel_path = rel;
  std::string line;
  size_t line_no = 0;
  auto bad = [&](const std::string& why) {
    violations.push_back({rel, line_no, "handoff-sync",
                          "manifest syntax: " + why + " in '" + line + "'"});
  };
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream words(line);
    std::string kind;
    if (!(words >> kind) || kind[0] == '#') continue;
    if (kind == "pair") {
      ManifestPair p;
      if (!(words >> p.snapshot >> p.state)) {
        bad("expected `pair <Snapshot> <StateClass>`");
        continue;
      }
      p.line = line_no;
      out.pairs.push_back(std::move(p));
      continue;
    }
    if (out.pairs.empty()) {
      bad("`" + kind + "` before the first `pair`");
      continue;
    }
    ManifestPair& p = out.pairs.back();
    if (kind == "carry") {
      ManifestCarry c;
      if (!(words >> c.field >> c.member)) {
        bad("expected `carry <snapshot_field> <state_member>`");
        continue;
      }
      c.line = line_no;
      p.carries.push_back(std::move(c));
    } else if (kind == "pin" || kind == "skip") {
      ManifestName n;
      std::string reason;
      if (!(words >> n.name) || !(words >> reason)) {
        bad("expected `" + kind + " <name> <reason...>` — the reason is "
            "mandatory, like a waiver's");
        continue;
      }
      n.line = line_no;
      (kind == "pin" ? p.pins : p.skips).push_back(std::move(n));
    } else {
      bad("unknown directive `" + kind + "`");
    }
  }
  return true;
}

struct Member {
  std::string name;
  size_t line = 0;
};

struct TypeDef {
  std::string file;
  size_t line = 0;
  std::vector<Member> members;
};

bool is_access_spec(const Token& t) {
  return is_ident(t, "public") || is_ident(t, "private") ||
         is_ident(t, "protected");
}

/// Statements that open a nested entity or a non-member declaration; their
/// trailing identifier is not a data member.
bool skips_statement(const Token& first) {
  return is_access_spec(first) || is_ident(first, "enum") ||
         is_ident(first, "struct") || is_ident(first, "class") ||
         is_ident(first, "using") || is_ident(first, "typedef") ||
         is_ident(first, "friend") || is_ident(first, "static") ||
         is_ident(first, "template") || is_ident(first, "operator");
}

/// Extracts the declarator names from one member statement: splits on
/// commas outside braces and template angles (the lexer folds `>>` into
/// one token, so a closed nested template costs two), then takes the
/// identifier before the initializer (`=` / `{`) or the statement end.
void emit_declarators(const std::vector<const Token*>& buf, TypeDef& def) {
  if (buf.empty() || skips_statement(*buf.front())) return;
  for (const Token* t : buf)
    if (is_punct(*t, "(") || is_punct(*t, ")")) return;  // a function
  size_t brace = 0;
  int angle = 0;
  size_t start = 0;
  auto emit = [&](size_t b, size_t e) {
    size_t name_at = e;
    for (size_t k = b; k < e; ++k)
      if (is_punct(*buf[k], "=") || is_punct(*buf[k], "{")) {
        name_at = k;
        break;
      }
    if (name_at > b && is_ident(*buf[name_at - 1]))
      def.members.push_back({buf[name_at - 1]->text, buf[name_at - 1]->line});
  };
  for (size_t k = 0; k < buf.size(); ++k) {
    const Token& t = *buf[k];
    if (is_punct(t, "{")) ++brace;
    else if (is_punct(t, "}")) --brace;
    else if (is_punct(t, "<")) ++angle;
    else if (is_punct(t, ">") && angle > 0) --angle;
    else if (is_punct(t, ">>") && angle > 0) angle -= angle >= 2 ? 2 : 1;
    else if (is_punct(t, ",") && brace == 0 && angle == 0) {
      emit(start, k);
      start = k + 1;
    }
  }
  emit(start, buf.size());
}

/// Collects the data members of the struct/class body in (open, close):
/// depth-1 statements split at `;`, access specifiers reset the statement,
/// nested entities and anything with parentheses (every function) skipped.
void collect_members(const std::vector<Token>& toks, size_t open,
                     size_t close, TypeDef& def) {
  size_t depth = 0;
  std::vector<const Token*> buf;
  for (size_t j = open + 1; j < close; ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "{")) ++depth;
    if (is_punct(t, "}")) {
      --depth;
      if (depth == 0) {
        // A brace group closing back at class level: an inline function
        // body ends its (semicolon-less) declaration right here, so the
        // statement resets; a member brace-init or a nested entity keeps
        // accumulating until its `;`.
        bool has_paren = false;
        for (const Token* b : buf)
          if (is_punct(*b, "(")) {
            has_paren = true;
            break;
          }
        if (has_paren) {
          buf.clear();
          continue;
        }
      }
      buf.push_back(&t);
      continue;
    }
    if (depth == 0) {
      if (is_punct(t, ";")) {
        emit_declarators(buf, def);
        buf.clear();
        continue;
      }
      if (is_punct(t, ":") && buf.size() == 1 && is_access_spec(*buf[0])) {
        buf.clear();
        continue;
      }
    }
    buf.push_back(&t);
  }
}

size_t match_brace(const std::vector<Token>& toks, size_t open) {
  size_t depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    if (is_punct(toks[i], "}") && --depth == 0) return i;
  }
  return toks.size();
}

void scan_types(const SourceFile& file, const std::set<std::string>& wanted,
                std::map<std::string, TypeDef>& defs) {
  const std::vector<Token>& toks = file.toks.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "struct") && !is_ident(toks[i], "class")) continue;
    if (!is_ident(toks[i + 1]) || !wanted.count(toks[i + 1].text)) continue;
    const std::string name = toks[i + 1].text;
    size_t at = i + 2;
    // Skip a final/base-clause up to `{`; bail on `;` (forward decl) and
    // on `(` (constructor-style mention, not a definition).
    while (at < toks.size() && !is_punct(toks[at], "{") &&
           !is_punct(toks[at], ";") && !is_punct(toks[at], "("))
      ++at;
    if (at >= toks.size() || !is_punct(toks[at], "{")) continue;
    if (defs.count(name)) continue;  // first definition wins
    const size_t close = match_brace(toks, at);
    TypeDef def;
    def.file = file.rel_path;
    def.line = toks[i].line;
    collect_members(toks, at, close, def);
    defs[name] = std::move(def);
    i = close;
  }
}

const Member* find_member(const TypeDef& def, const std::string& name) {
  for (const Member& m : def.members)
    if (m.name == name) return &m;
  return nullptr;
}

}  // namespace

void check_handoff_sync(const std::vector<SourceFile>& files,
                        const std::filesystem::path& root,
                        std::vector<Violation>& violations) {
  Manifest manifest;
  const std::string rel = "tools/lint/handoff_state.manifest";
  if (!parse_manifest(root / rel, rel, manifest, violations)) return;
  if (manifest.pairs.empty()) return;

  std::set<std::string> wanted;
  for (const ManifestPair& pair : manifest.pairs) {
    wanted.insert(pair.snapshot);
    wanted.insert(pair.state);
  }
  std::map<std::string, TypeDef> defs;
  std::map<std::string, const SourceFile*> file_of;
  for (const SourceFile& file : files) {
    scan_types(file, wanted, defs);
    file_of[file.rel_path] = &file;
  }

  // A snapshot may gather from several classes (WorkerHandoff carries all
  // three loop hierarchies) and a class may feed several snapshots
  // (ParameterServer feeds both the clock capture and the store), so the
  // coverage sets union over every pair before the drift checks run.
  std::map<std::string, std::set<std::string>> covered_fields;
  std::map<std::string, std::set<std::string>> mentioned_members;
  std::map<std::string, std::string> partner_of;  // state -> first snapshot

  for (const ManifestPair& pair : manifest.pairs) {
    const auto snap_it = defs.find(pair.snapshot);
    const auto state_it = defs.find(pair.state);
    if (snap_it == defs.end())
      violations.push_back(
          {rel, pair.line, "handoff-sync",
           "manifest pairs " + pair.snapshot + " with " + pair.state +
               ", but struct " + pair.snapshot +
               " was not found in the scanned sources"});
    if (state_it == defs.end())
      violations.push_back(
          {rel, pair.line, "handoff-sync",
           "manifest pairs " + pair.snapshot + " with " + pair.state +
               ", but class " + pair.state +
               " was not found in the scanned sources"});
    if (snap_it == defs.end() || state_it == defs.end()) continue;
    partner_of.try_emplace(pair.state, pair.snapshot);

    for (const ManifestCarry& carry : pair.carries) {
      covered_fields[pair.snapshot].insert(carry.field);
      mentioned_members[pair.state].insert(carry.member);
      if (!find_member(snap_it->second, carry.field))
        violations.push_back(
            {rel, carry.line, "handoff-sync",
             pair.snapshot + "::" + carry.field +
                 " is pinned by this carry line but no longer exists — "
                 "the snapshot dropped a field the manifest still promises"});
      if (!find_member(state_it->second, carry.member))
        violations.push_back(
            {rel, carry.line, "handoff-sync",
             "carry names " + pair.state + "::" + carry.member +
                 ", but the class has no such member — update the manifest "
                 "in the same commit as the state change"});
    }
    for (const ManifestName& pin : pair.pins) {
      covered_fields[pair.snapshot].insert(pin.name);
      if (!find_member(snap_it->second, pin.name))
        violations.push_back({rel, pin.line, "handoff-sync",
                              pair.snapshot + "::" + pin.name +
                                  " is pinned but no longer exists — delete "
                                  "the stale pin line"});
    }
    for (const ManifestName& skip : pair.skips) {
      mentioned_members[pair.state].insert(skip.name);
      if (!find_member(state_it->second, skip.name))
        violations.push_back({rel, skip.line, "handoff-sync",
                              pair.state + "::" + skip.name +
                                  " is skip-listed but no longer exists — "
                                  "delete the stale skip line"});
    }
  }

  std::set<std::string> checked;
  for (const ManifestPair& pair : manifest.pairs) {
    const auto snap_it = defs.find(pair.snapshot);
    const auto state_it = defs.find(pair.state);
    if (snap_it == defs.end() || state_it == defs.end()) continue;

    if (checked.insert(pair.snapshot).second) {
      const TypeDef& def = snap_it->second;
      const auto& covered = covered_fields[pair.snapshot];
      for (const Member& field : def.members) {
        if (covered.count(field.name)) continue;
        if (file_of.at(def.file)->waivers.allows("handoff-sync", field.line))
          continue;
        violations.push_back(
            {def.file, field.line, "handoff-sync",
             pair.snapshot + "::" + field.name +
                 " is not pinned by any carry/pin line in " + rel +
                 " — add the line naming the state it mirrors"});
      }
    }
    if (checked.insert(pair.state).second) {
      const TypeDef& def = state_it->second;
      const auto& mentioned = mentioned_members[pair.state];
      for (const Member& member : def.members) {
        if (mentioned.count(member.name)) continue;
        if (file_of.at(def.file)->waivers.allows("handoff-sync", member.line))
          continue;
        violations.push_back(
            {def.file, member.line, "handoff-sync",
             pair.state + "::" + member.name + " is neither carried into " +
                 partner_of.at(pair.state) + " nor skip-listed in " + rel +
                 " — state added here is silently dropped at every SyncPlan "
                 "phase switch"});
      }
    }
  }
}

}  // namespace selsync_lint
