// lock-discipline: a per-function model of every mutex acquisition across
// src/comm + src/core, and three checks on top of it (DESIGN.md §9):
//
//   1. The repo-wide lock-order graph must be acyclic. Nodes are lock
//      identities (Class::member or function::local); an edge A→B is
//      recorded whenever B is acquired — directly or through a call chain —
//      while A is held. A cycle (including a self-edge, i.e. re-acquiring a
//      held lock) is a potential deadlock. The graph is emitted as a DOT
//      artifact by `--dot`.
//   2. WaitSlot::wait (and the cv half inside WaitSlot itself) must be
//      called with a live std::unique_lock guard — either declared in the
//      same function or received as a unique_lock& parameter. Passing
//      anything else, or a guard that was .unlock()ed, is flagged.
//   3. No blocking while holding a second lock: a WaitSlot wait releases
//      only its own guard, so any other lock held across it — or a call
//      into a function that may block (Channel::recv, PsRound::await,
//      AbortableBarrier::wait, ...) made while holding any lock — is a
//      deadlock waiting for the right interleaving.
//
// The model is token-derived, not compiled: functions are found by brace
// structure, locks by the std::lock_guard / std::unique_lock /
// std::scoped_lock declaration forms, call edges by callee base name. That
// is deliberately conservative — a flagged site that is provably safe takes
// a reasoned `// selsync-lint: allow(lock-discipline) -- why` waiver.
#include <algorithm>
#include <fstream>
#include <functional>
#include <map>
#include <set>

#include "lint/rules.hpp"

namespace selsync_lint {

namespace {

bool is_punct(const Token& t, const char* p) {
  return t.kind == TokKind::kPunct && t.text == p;
}
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }
bool is_ident(const Token& t, const char* w) {
  return t.kind == TokKind::kIdent && t.text == w;
}

bool has_prefix(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}

enum class MemberKind { kMutex, kWaitSlot, kCondVar };

enum class ScopeKind { kNamespace, kClass, kEnum, kFn, kBlock, kOther };

struct Acquire {
  std::string lock_id;
  size_t line = 0;
  std::vector<std::string> held_before;
};

struct CallEv {
  std::string callee;
  size_t line = 0;
  std::vector<std::string> held;
};

struct BlockEv {
  size_t line = 0;
  std::string base;               // the WaitSlot/cv member waited on
  std::string arg;                // first argument as written
  bool arg_is_live_unique = false;
  std::vector<std::string> held_others;  // held locks minus the wait's own
};

struct FnBody {
  const SourceFile* file = nullptr;
  size_t open = 0, close = 0;  // token indices of { }
  size_t line = 0;
  std::string name;  // qualified: Class::method or free-function name
  std::string cls;   // enclosing (or declarator) class, "" for free fns
  std::vector<std::string> param_locks;  // unique_lock& parameter names
  std::vector<Acquire> acquires;
  std::vector<CallEv> calls;
  std::vector<BlockEv> blocks;
};

struct Walkout {
  std::map<std::string, std::map<std::string, MemberKind>> members;
  std::vector<FnBody> fns;
};

size_t match_brace(const std::vector<Token>& toks, size_t open) {
  size_t depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    if (is_punct(toks[i], "}") && --depth == 0) return i;
  }
  return toks.size();
}

/// Joins a member-access expression from tokens, `this->` stripped:
/// ["shared_", ".", "mutex"] → "shared_.mutex".
std::string join_expr(const std::vector<Token>& toks, size_t begin,
                      size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    if (is_ident(toks[i], "this")) continue;
    if (is_punct(toks[i], "->") && out.empty()) continue;
    out += toks[i].text;
  }
  return out;
}

/// Parses the qualified-type chain starting at `at` (e.g. std::mutex,
/// WaitSlot). Advances `at` past the chain; returns the joined name.
std::string read_chain(const std::vector<Token>& toks, size_t& at) {
  if (at >= toks.size() || !is_ident(toks[at])) return "";
  std::string name = toks[at].text;
  ++at;
  while (at + 1 < toks.size() && is_punct(toks[at], "::") &&
         is_ident(toks[at + 1])) {
    name += "::" + toks[at + 1].text;
    at += 2;
  }
  return name;
}

/// Skips a balanced template-argument list if `at` sits on `<`.
void skip_template_args(const std::vector<Token>& toks, size_t& at) {
  if (at >= toks.size() || !is_punct(toks[at], "<")) return;
  int depth = 0;
  while (at < toks.size()) {
    if (is_punct(toks[at], "<")) ++depth;
    if (is_punct(toks[at], ">")) --depth;
    if (is_punct(toks[at], ">>")) depth -= 2;
    ++at;
    if (depth <= 0) return;
  }
}

const char* const kGuardTypes[] = {"lock_guard", "unique_lock", "scoped_lock",
                                   "shared_lock"};

/// --------------------------------------------------------------------------
/// Pass 1: structural walk — classes, members, function body spans.
/// --------------------------------------------------------------------------

struct Scope {
  ScopeKind kind;
  std::string name;  // class/namespace name
  size_t fn_index = SIZE_MAX;
};

void structural_walk(const SourceFile& file, Walkout& out) {
  const std::vector<Token>& toks = file.toks.tokens;
  std::vector<Scope> stack;
  std::vector<Token> pending;
  int paren_depth = 0;

  auto enclosing_class = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it)
      if (it->kind == ScopeKind::kClass) return it->name;
    return "";
  };
  auto in_function = [&]() {
    return !stack.empty() && (stack.back().kind == ScopeKind::kFn ||
                              stack.back().kind == ScopeKind::kBlock);
  };

  auto pending_has = [&](const char* word) {
    int depth = 0;
    for (const Token& t : pending) {
      if (is_punct(t, "(")) ++depth;
      if (is_punct(t, ")")) --depth;
      if (depth == 0 && is_ident(t, word)) return true;
    }
    return false;
  };
  auto pending_has_punct = [&](const char* p, bool top_level_only) {
    int depth = 0;
    for (const Token& t : pending) {
      if (is_punct(t, "(") || is_punct(t, "[")) ++depth;
      if (is_punct(t, ")") || is_punct(t, "]")) --depth;
      if ((!top_level_only || depth == 0) && is_punct(t, p)) return true;
    }
    return false;
  };

  auto flush_member_decl = [&]() {
    // In class scope, `;` may close `mutable std::mutex mutex_;` etc.
    if (stack.empty() || stack.back().kind != ScopeKind::kClass) return;
    size_t at = 0;
    while (at < pending.size() &&
           (is_ident(pending[at], "mutable") || is_ident(pending[at], "static") ||
            is_ident(pending[at], "inline") || is_ident(pending[at], "const") ||
            is_ident(pending[at], "constexpr") ||
            is_ident(pending[at], "public") || is_ident(pending[at], "private") ||
            is_ident(pending[at], "protected") || is_punct(pending[at], ":")))
      ++at;
    std::string chain = read_chain(pending, at);
    MemberKind kind;
    if (chain == "std::mutex" || chain == "std::timed_mutex" ||
        chain == "std::recursive_mutex")
      kind = MemberKind::kMutex;
    else if (chain == "WaitSlot" || chain == "selsync::WaitSlot")
      kind = MemberKind::kWaitSlot;
    else if (chain == "std::condition_variable" ||
             chain == "std::condition_variable_any")
      kind = MemberKind::kCondVar;
    else
      return;
    if (at < pending.size() && is_ident(pending[at]))
      out.members[stack.back().name][pending[at].text] = kind;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "(")) ++paren_depth;
    if (is_punct(t, ")")) --paren_depth;

    if (is_punct(t, ";")) {
      if (paren_depth == 0) {
        flush_member_decl();
        pending.clear();
      }
      continue;
    }
    if (is_punct(t, "}")) {
      if (!stack.empty()) stack.pop_back();
      pending.clear();
      continue;
    }
    if (!is_punct(t, "{")) {
      pending.push_back(t);
      continue;
    }

    // Classify this `{`.
    Scope scope{ScopeKind::kOther, "", SIZE_MAX};
    if (in_function() || paren_depth > 0) {
      scope.kind = in_function() ? ScopeKind::kBlock : ScopeKind::kOther;
    } else if (pending_has("namespace") && !pending_has_punct("(", false)) {
      scope.kind = ScopeKind::kNamespace;
    } else if (pending_has("enum")) {
      scope.kind = ScopeKind::kEnum;
    } else if ((pending_has("class") || pending_has("struct") ||
                pending_has("union")) &&
               !pending_has_punct("(", false)) {
      scope.kind = ScopeKind::kClass;
      for (size_t j = 0; j < pending.size(); ++j)
        if ((is_ident(pending[j], "class") || is_ident(pending[j], "struct") ||
             is_ident(pending[j], "union")) &&
            j + 1 < pending.size() && is_ident(pending[j + 1]))
          scope.name = pending[j + 1].text;
    } else if (pending_has_punct("=", true)) {
      scope.kind = ScopeKind::kOther;
    } else if (pending_has_punct("(", false)) {
      scope.kind = ScopeKind::kFn;
      // Name: the ident chain just before the first `(`.
      size_t p = 0;
      while (p < pending.size() && !is_punct(pending[p], "(")) ++p;
      std::string name;
      for (size_t j = p; j > 0;) {
        --j;
        const Token& n = pending[j];
        if (is_ident(n) || is_punct(n, "::") || is_punct(n, "~")) {
          name = n.text + name;
          if (j >= 1 && !is_punct(pending[j - 1], "::") && is_ident(n) &&
              !(j >= 1 && is_punct(pending[j - 1], "~")))
            break;
        } else {
          break;
        }
      }
      FnBody fn;
      fn.file = &file;
      fn.open = i;
      fn.close = match_brace(toks, i);
      fn.line = t.line;
      fn.name = name.empty() ? "(anon)" : name;
      fn.cls = enclosing_class();
      const size_t sep = fn.name.rfind("::");
      if (sep != std::string::npos && fn.cls.empty())
        fn.cls = fn.name.substr(0, sep);
      if (fn.name.find("::") == std::string::npos && !fn.cls.empty())
        fn.name = fn.cls + "::" + fn.name;
      // unique_lock& parameters: in-flight guards owned by the caller.
      int depth = 0;
      for (size_t j = p; j < pending.size(); ++j) {
        if (is_punct(pending[j], "(")) ++depth;
        if (is_punct(pending[j], ")") && --depth == 0) break;
        if (is_ident(pending[j], "unique_lock")) {
          size_t a = j + 1;
          skip_template_args(pending, a);
          if (a < pending.size() && is_punct(pending[a], "&")) ++a;
          if (a < pending.size() && is_ident(pending[a]))
            fn.param_locks.push_back(pending[a].text);
        }
      }
      scope.fn_index = out.fns.size();
      out.fns.push_back(std::move(fn));
    }
    stack.push_back(scope);
    pending.clear();
  }
}

/// --------------------------------------------------------------------------
/// Pass 2: event extraction per function body.
/// --------------------------------------------------------------------------

struct Guard {
  std::string var;
  std::string lock_id;
  bool unique = false;
  bool active = true;
  size_t depth = 0;
  bool is_param = false;
};

const char* const kCallKeywords[] = {
    "if",     "for",      "while",    "switch",        "return",
    "throw",  "sizeof",   "alignof",  "decltype",      "noexcept",
    "catch",  "operator", "defined",  "static_assert",
};

/// Member-call linking is by callee base name — `x.f()` links to every
/// model named `f` — so ubiquitous container/iterator method names would
/// mislink (e.g. `span.begin()` is not `PsRound::begin`). Calls to these
/// names never join the call graph; a lock-relevant function must not
/// reuse them.
const char* const kCommonMethodNames[] = {
    "begin",   "end",     "size",   "empty",   "data",    "clear",
    "resize",  "reserve", "assign", "insert",  "erase",   "find",
    "count",   "at",      "front",  "back",    "push_back", "pop_back",
    "emplace", "emplace_back",      "get",     "reset",   "release",
    "str",     "c_str",   "swap",   "copy",    "move",    "min",
    "max",     "to_string",
};

void extract_events(const Walkout& walk, FnBody& fn) {
  const std::vector<Token>& toks = fn.file->toks.tokens;
  std::vector<Guard> guards;
  std::set<std::string> local_mutexes;
  for (const std::string& p : fn.param_locks)
    guards.push_back({p, "<caller:" + p + ">", true, true, 0, true});
  size_t depth = 1;

  auto held_ids = [&]() {
    std::vector<std::string> ids;
    for (const Guard& g : guards)
      if (g.active) ids.push_back(g.lock_id);
    return ids;
  };
  auto owner = [&]() {
    if (!fn.cls.empty()) return fn.cls;
    const size_t sep = fn.name.rfind("::");
    return sep == std::string::npos ? fn.name : fn.name.substr(sep + 2);
  };
  auto lock_id_for = [&](const std::string& expr) {
    if (local_mutexes.count(expr)) return fn.name + "::" + expr;
    return owner() + "::" + expr;
  };
  auto find_guard = [&](const std::string& var) -> Guard* {
    for (auto it = guards.rbegin(); it != guards.rend(); ++it)
      if (it->var == var) return &*it;
    return nullptr;
  };

  for (size_t i = fn.open + 1; i < fn.close; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      ++depth;
      continue;
    }
    if (is_punct(t, "}")) {
      --depth;
      for (Guard& g : guards)
        if (!g.is_param && g.depth > depth) g.active = false;
      continue;
    }
    if (!is_ident(t)) continue;

    // Local `std::mutex name;` declarations.
    if (t.text == "std" && i + 3 < fn.close && is_punct(toks[i + 1], "::") &&
        is_ident(toks[i + 2], "mutex") && is_ident(toks[i + 3]) &&
        i + 4 < fn.close && is_punct(toks[i + 4], ";")) {
      local_mutexes.insert(toks[i + 3].text);
      i += 4;
      continue;
    }

    // Guard declarations: std::lock_guard<...> var(expr[, ...]);
    bool is_guard_type = false;
    bool is_unique = false;
    for (const char* g : kGuardTypes)
      if (t.text == g) {
        is_guard_type = true;
        is_unique = t.text == "unique_lock";
      }
    if (is_guard_type && i >= 2 && is_punct(toks[i - 1], "::") &&
        is_ident(toks[i - 2], "std")) {
      size_t at = i + 1;
      skip_template_args(toks, at);
      if (at < fn.close && is_ident(toks[at]) && at + 1 < fn.close &&
          is_punct(toks[at + 1], "(")) {
        const std::string var = toks[at].text;
        const size_t args_open = at + 1;
        // Split constructor args at top-level commas.
        size_t j = args_open + 1;
        int adepth = 1;
        size_t arg_begin = j;
        std::vector<std::pair<size_t, size_t>> args;
        for (; j < fn.close && adepth > 0; ++j) {
          if (is_punct(toks[j], "(")) ++adepth;
          if (is_punct(toks[j], ")") && --adepth == 0) break;
          if (adepth == 1 && is_punct(toks[j], ",")) {
            args.emplace_back(arg_begin, j);
            arg_begin = j + 1;
          }
        }
        if (j > arg_begin) args.emplace_back(arg_begin, j);
        for (const auto& [b, e] : args) {
          const std::string expr = join_expr(toks, b, e);
          if (expr.find("defer_lock") != std::string::npos ||
              expr.find("try_to_lock") != std::string::npos)
            continue;
          if (expr.find("adopt_lock") != std::string::npos) continue;
          if (expr.empty()) continue;
          const std::string id = lock_id_for(expr);
          fn.acquires.push_back({id, t.line, held_ids()});
          guards.push_back({var, id, is_unique, true, depth, false});
        }
        i = j;
        continue;
      }
    }

    // Calls and waits: IDENT `(` with optional member/qualifier base.
    if (i + 1 < fn.close && is_punct(toks[i + 1], "(")) {
      bool keyword = false;
      for (const char* k : kCallKeywords)
        if (t.text == k) keyword = true;
      if (keyword) continue;

      const bool has_base =
          i >= 2 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
          is_ident(toks[i - 2]);
      const std::string base = has_base ? toks[i - 2].text : "";

      // guard.unlock() / guard.lock() toggles.
      if (has_base && (t.text == "unlock" || t.text == "lock")) {
        if (Guard* g = find_guard(base)) {
          g->active = t.text == "lock";
          continue;
        }
      }

      // WaitSlot / condition_variable member operations.
      if (has_base) {
        const std::string& cls = fn.cls;
        auto cls_it = walk.members.find(cls);
        if (cls_it != walk.members.end()) {
          auto mem_it = cls_it->second.find(base);
          if (mem_it != cls_it->second.end() &&
              mem_it->second != MemberKind::kMutex) {
            if (t.text == "notify_one" || t.text == "notify_all") continue;
            if (t.text == "wait") {
              BlockEv ev;
              ev.line = t.line;
              ev.base = base;
              // First argument up to a top-level `,` or `)`.
              size_t b = i + 2;
              size_t e = b;
              int adepth = 1;
              while (e < fn.close) {
                if (is_punct(toks[e], "(")) ++adepth;
                if (is_punct(toks[e], ")") && --adepth == 0) break;
                if (adepth == 1 && is_punct(toks[e], ",")) break;
                ++e;
              }
              ev.arg = join_expr(toks, b, e);
              const Guard* g = find_guard(ev.arg);
              ev.arg_is_live_unique = g != nullptr && g->active && g->unique;
              for (const std::string& id : held_ids())
                if (g == nullptr || id != g->lock_id)
                  ev.held_others.push_back(id);
              fn.blocks.push_back(std::move(ev));
              continue;
            }
          }
        }
      }

      bool common = false;
      for (const char* c : kCommonMethodNames)
        if (t.text == c) common = true;
      if (!common) fn.calls.push_back({t.text, t.line, held_ids()});
    }
  }
}

/// --------------------------------------------------------------------------
/// Pass 3: transitive lock sets, may-block, the order graph, violations.
/// --------------------------------------------------------------------------

struct Edge {
  std::string from, to;
  std::string fn;
  std::string file;
  size_t line = 0;
};

std::string last_name(const std::string& qualified) {
  const size_t sep = qualified.rfind("::");
  return sep == std::string::npos ? qualified : qualified.substr(sep + 2);
}

bool is_caller_pseudo(const std::string& id) {
  return has_prefix(id, "<caller:");
}

struct Analysis {
  std::vector<FnBody>* fns;
  std::map<std::string, std::vector<size_t>> by_name;  // last name → fns
  std::map<size_t, std::set<std::string>> locksets;
  std::map<size_t, int> may_block;  // -1 in progress, 0 no, 1 yes

  const std::set<std::string>& lockset(size_t f) {
    auto it = locksets.find(f);
    if (it != locksets.end()) return it->second;
    locksets[f] = {};  // cycle guard: partial result on recursion
    std::set<std::string> acc;
    for (const Acquire& a : (*fns)[f].acquires)
      if (!is_caller_pseudo(a.lock_id)) acc.insert(a.lock_id);
    for (const CallEv& c : (*fns)[f].calls) {
      auto cal = by_name.find(c.callee);
      if (cal == by_name.end()) continue;
      for (size_t callee : cal->second) {
        if (callee == f) continue;
        const std::set<std::string>& sub = lockset(callee);
        acc.insert(sub.begin(), sub.end());
      }
    }
    return locksets[f] = std::move(acc);
  }

  bool blocks(size_t f) {
    auto it = may_block.find(f);
    if (it != may_block.end()) return it->second == 1;
    may_block[f] = -1;
    bool result = !(*fns)[f].blocks.empty();
    if (!result) {
      for (const CallEv& c : (*fns)[f].calls) {
        auto cal = by_name.find(c.callee);
        if (cal == by_name.end()) continue;
        for (size_t callee : cal->second) {
          if (callee == f) continue;
          auto sub = may_block.find(callee);
          if (sub != may_block.end() && sub->second == -1) continue;
          if (blocks(callee)) {
            result = true;
            break;
          }
        }
        if (result) break;
      }
    }
    may_block[f] = result ? 1 : 0;
    return result;
  }
};

void write_dot(const std::string& path, const std::set<std::string>& nodes,
               const std::vector<Edge>& edges,
               const std::map<std::string, size_t>& acquire_counts) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "selsync_lint: cannot write DOT to %s\n",
                 path.c_str());
    return;
  }
  out << "// selsync_lint lock-order graph (src/comm + src/core).\n"
      << "// Nodes: lock identities. Edges: A -> B when B is acquired\n"
      << "// while A is held (directly or through a call chain).\n"
      << "digraph lock_order {\n  rankdir=LR;\n"
      << "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const std::string& n : nodes) {
    auto it = acquire_counts.find(n);
    out << "  \"" << n << "\" [label=\"" << n << "\\nacquired in "
        << (it == acquire_counts.end() ? 0 : it->second)
        << " function(s)\"];\n";
  }
  for (const Edge& e : edges)
    out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\"" << e.fn
        << "\\n" << e.file << ":" << e.line << "\"];\n";
  out << "}\n";
}

}  // namespace

void check_lock_discipline(const std::vector<SourceFile>& files,
                           const std::string& dot_path,
                           std::vector<Violation>& violations) {
  Walkout walk;
  std::map<std::string, const SourceFile*> file_of;
  for (const SourceFile& file : files) {
    if (!has_prefix(file.rel_path, "src/comm/") &&
        !has_prefix(file.rel_path, "src/core/"))
      continue;
    structural_walk(file, walk);
    file_of[file.rel_path] = &file;
  }
  for (FnBody& fn : walk.fns) extract_events(walk, fn);

  Analysis an;
  an.fns = &walk.fns;
  for (size_t f = 0; f < walk.fns.size(); ++f)
    an.by_name[last_name(walk.fns[f].name)].push_back(f);

  auto emit = [&](const FnBody& fn, size_t line, const std::string& message) {
    report(*fn.file, "lock-discipline", line, message, violations);
  };

  // --- WaitSlot guard + two-lock blocking, per function -------------------
  for (size_t f = 0; f < walk.fns.size(); ++f) {
    const FnBody& fn = walk.fns[f];
    for (const BlockEv& ev : fn.blocks) {
      if (!ev.arg_is_live_unique)
        emit(fn, ev.line,
             "WaitSlot::wait on '" + ev.base + "' in " + fn.name +
                 " outside its guard: the first argument must be a live "
                 "std::unique_lock (declared here or received as a "
                 "unique_lock& parameter), got '" + ev.arg + "'");
      if (!ev.held_others.empty()) {
        std::string held;
        for (const std::string& id : ev.held_others)
          held += (held.empty() ? "" : ", ") + id;
        emit(fn, ev.line,
             "blocking wait on '" + ev.base + "' in " + fn.name +
                 " while still holding " + held +
                 " — a wait releases only its own guard; holding a second "
                 "lock across it is a deadlock under the right interleaving");
      }
    }
    for (const CallEv& c : fn.calls) {
      if (c.held.empty()) continue;
      auto cal = an.by_name.find(c.callee);
      if (cal == an.by_name.end()) continue;
      bool callee_blocks = false;
      for (size_t callee : cal->second)
        if (callee != f && an.blocks(callee)) callee_blocks = true;
      if (!callee_blocks) continue;
      std::string held;
      for (const std::string& id : c.held)
        held += (held.empty() ? "" : ", ") + id;
      emit(fn, c.line,
           "call to potentially-blocking '" + c.callee + "' in " + fn.name +
               " while holding " + held +
               " — the callee parks on its own lock, so this holds two");
    }
  }

  // --- Lock-order graph ----------------------------------------------------
  std::set<std::string> nodes;
  std::map<std::string, size_t> acquire_counts;
  std::vector<Edge> edges;
  std::set<std::string> edge_seen;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const FnBody& fn, size_t line) {
    if (is_caller_pseudo(from) || is_caller_pseudo(to)) return;
    const std::string key = from + "\t" + to;
    if (!edge_seen.insert(key).second) return;
    edges.push_back({from, to, fn.name, fn.file->rel_path, line});
  };
  for (size_t f = 0; f < walk.fns.size(); ++f) {
    const FnBody& fn = walk.fns[f];
    std::set<std::string> own;
    for (const Acquire& a : fn.acquires) {
      if (!is_caller_pseudo(a.lock_id)) {
        nodes.insert(a.lock_id);
        own.insert(a.lock_id);
      }
      for (const std::string& h : a.held_before)
        add_edge(h, a.lock_id, fn, a.line);
    }
    for (const std::string& id : own) ++acquire_counts[id];
    for (const CallEv& c : fn.calls) {
      if (c.held.empty()) continue;
      auto cal = an.by_name.find(c.callee);
      if (cal == an.by_name.end()) continue;
      for (size_t callee : cal->second) {
        if (callee == f) continue;
        for (const std::string& to : an.lockset(callee))
          for (const std::string& from : c.held)
            add_edge(from, to, fn, c.line);
      }
    }
  }

  // Cycle detection (DFS, white/grey/black).
  std::map<std::string, std::vector<const Edge*>> adj;
  for (const Edge& e : edges) adj[e.from].push_back(&e);
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<const Edge*> path;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& n) {
    color[n] = 1;
    for (const Edge* e : adj[n]) {
      path.push_back(e);
      if (color[e->to] == 1) {
        // Found a cycle: the suffix of `path` from the first edge leaving
        // e->to closes the loop.
        std::string cycle = e->to;
        std::string sites;
        bool in_cycle = false;
        for (const Edge* pe : path) {
          if (pe->from == e->to) in_cycle = true;
          if (!in_cycle) continue;
          cycle += " -> " + pe->to;
          sites += (sites.empty() ? "" : "; ") + pe->from + "->" + pe->to +
                   " in " + pe->fn + " (" + pe->file + ":" +
                   std::to_string(pe->line) + ")";
        }
        if (reported.insert(cycle).second) {
          const Edge* site = e;
          const SourceFile* sf = file_of.count(site->file)
                                     ? file_of.at(site->file)
                                     : nullptr;
          Violation v{site->file, site->line, "lock-discipline",
                      "lock-order cycle: " + cycle +
                          " — potential deadlock (" + sites + ")"};
          if (sf == nullptr ||
              !sf->waivers.allows("lock-discipline", site->line))
            violations.push_back(std::move(v));
        }
      } else if (color[e->to] == 0) {
        dfs(e->to);
      }
      path.pop_back();
    }
    color[n] = 2;
  };
  for (const std::string& n : nodes)
    if (color[n] == 0) dfs(n);

  if (!dot_path.empty()) write_dot(dot_path, nodes, edges, acquire_counts);
}

}  // namespace selsync_lint
