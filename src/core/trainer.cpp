#include "core/trainer.hpp"

#include <algorithm>
#include <functional>
#include <memory>

#include "comm/cluster.hpp"
#include "comm/comm_backend.hpp"
#include "comm/fault_injector.hpp"
#include "core/backend_factory.hpp"
#include "core/replica.hpp"
#include "core/trainer_internal.hpp"
#include "core/worker_loop.hpp"
#include "data/injection.hpp"
#include "util/timer.hpp"

namespace selsync {

namespace {

using detail::SharedSspState;
using detail::SharedSyncState;
using detail::SspWorkerLoop;
using detail::SynchronousWorkerLoop;

/// Drives the cluster and guarantees the transport session is torn down —
/// shutdown verbs, closed connections, reaped worker processes — on the
/// error path too, before the first worker error propagates.
void run_cluster_over(TransportSession& session, const TrainJob& job,
                      const std::function<void(WorkerContext&)>& worker_body,
                      const std::function<void()>& on_abort) {
  try {
    run_cluster(job.engine, job.workers, worker_body, on_abort);
  } catch (...) {
    session.finish();
    throw;
  }
  session.finish();
}

TrainResult run_synchronous(const TrainJob& job) {
  std::unique_ptr<DataInjector> injector;
  if (job.injection.enabled)
    injector = std::make_unique<DataInjector>(
        InjectionConfig{job.injection.alpha, job.injection.beta,
                        job.seed ^ 0x12171217ULL},
        job.workers);
  std::unique_ptr<FaultInjector> faults;
  std::unique_ptr<RejoinCoordinator> rejoin;
  if (job.faults.enabled()) {
    faults = std::make_unique<FaultInjector>(job.faults, job.workers);
    rejoin = std::make_unique<RejoinCoordinator>(job.workers);
  }

  SharedSyncState shared;
  shared.injection_proposals.resize(job.workers);
  shared.worker_sim_time.assign(job.workers, 0.0);
  if (job.strategy == StrategyKind::kEasgd)
    shared.easgd_center = job.model_factory(job.seed)->get_flat_params();

  std::unique_ptr<CommBackend> backend = make_backend(job, faults.get());
  // The transport opens before any cluster thread exists: the tcp session
  // forks its worker processes here, from a single-threaded master.
  std::unique_ptr<TransportSession> session = open_transport(job);

  WallTimer wall;
  run_cluster_over(
      *session, job,
      [&](WorkerContext& ctx) {
        SynchronousWorkerLoop loop(job, ctx, session->make_replica(ctx.rank),
                                   injector.get(), *backend, faults.get(),
                                   rejoin.get(), shared);
        loop.run();
      },
      [&] {
        backend->abort();
        if (rejoin) rejoin->shutdown();
        session->abort();
      });
  shared.result.sim_time_s = *std::max_element(
      shared.worker_sim_time.begin(), shared.worker_sim_time.end());
  shared.result.wall_time_s = wall.elapsed_s();
  if (faults) shared.result.faults = faults->summary();
  return shared.result;
}

TrainResult run_ssp(const TrainJob& job) {
  std::unique_ptr<FaultInjector> faults;
  if (job.faults.enabled())
    faults = std::make_unique<FaultInjector>(job.faults, job.workers);

  std::unique_ptr<CommBackend> backend = make_backend(job, faults.get());
  std::unique_ptr<TransportSession> session = open_transport(job);

  SharedSspState shared;
  shared.worker_sim_time.assign(job.workers, 0.0);
  WallTimer wall;
  run_cluster_over(
      *session, job,
      [&](WorkerContext& ctx) {
        SspWorkerLoop loop(job, ctx, session->make_replica(ctx.rank),
                           *backend, faults.get(), shared);
        loop.run();
      },
      [&] {
        backend->abort();
        session->abort();
      });
  shared.result.sim_time_s = *std::max_element(shared.worker_sim_time.begin(),
                                               shared.worker_sim_time.end());
  shared.result.wall_time_s = wall.elapsed_s();
  if (faults) shared.result.faults = faults->summary();
  return shared.result;
}

}  // namespace

TrainResult run_training(const TrainJob& job) {
  job.validate();
  return job.strategy == StrategyKind::kSsp ? run_ssp(job)
                                            : run_synchronous(job);
}

}  // namespace selsync
