#include "core/trainer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <sstream>

#include "comm/cluster.hpp"
#include "comm/fault_injector.hpp"
#include "core/sync_policy.hpp"
#include "core/time_model.hpp"
#include "data/injection.hpp"
#include "optim/ema_tracker.hpp"
#include "stats/grad_change.hpp"
#include "util/timer.hpp"

namespace selsync {

namespace {

constexpr size_t kEvalBatch = 256;

double ewma_alpha_for(const TrainJob& job) {
  if (job.selsync.ewma_alpha > 0.0) return std::min(job.selsync.ewma_alpha, 1.0);
  // Paper: smoothing factor N/100 (0.16 for a 16-node cluster).
  return std::clamp(static_cast<double>(job.workers) / 100.0, 0.02, 1.0);
}

double sq_norm(const std::vector<float>& v) {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * x;
  return s;
}

EvalPoint make_eval_point(Model& model, const Dataset& test, uint64_t iteration,
                          double epoch, double sim_time) {
  const EvalStats stats =
      evaluate_dataset(model, test, std::min<size_t>(kEvalBatch, test.size()));
  EvalPoint pt;
  pt.iteration = iteration;
  pt.epoch = epoch;
  pt.sim_time_s = sim_time;
  pt.loss = stats.mean_loss();
  pt.top1 = stats.top1_accuracy();
  pt.top5 = stats.top5_accuracy();
  pt.perplexity = stats.perplexity();
  return pt;
}

bool target_reached(const TrainJob& job, const EvalPoint& pt) {
  if (job.target_top1 && pt.top1 >= *job.target_top1) return true;
  if (job.target_perplexity && pt.perplexity <= *job.target_perplexity)
    return true;
  return false;
}

void update_bests(TrainResult& result, const EvalPoint& pt) {
  result.best_top1 = std::max(result.best_top1, pt.top1);
  result.best_top5 = std::max(result.best_top5, pt.top5);
  result.best_perplexity = std::min(result.best_perplexity, pt.perplexity);
}

/// Which payload the aggregation rounds move for a given job (§III-C).
AggregationMode aggregation_for(const TrainJob& job) {
  switch (job.strategy) {
    case StrategyKind::kBsp:
      return AggregationMode::kGradients;  // classic BSP allreduce
    case StrategyKind::kSelSync:
      return job.selsync.aggregation;
    default:
      return AggregationMode::kParameters;  // FedAvg averages models
  }
}

/// In-memory checkpoint a worker restores after a restartable crash
/// (DESIGN.md "Failure model"): the local replica's state — parameters,
/// optimizer moments and the shard-stream position. The global view is
/// refreshed separately by the recovery sync.
struct WorkerCheckpoint {
  uint64_t iteration = 0;
  std::vector<float> params;
  std::string optimizer_state;
  size_t cursor = 0;
  size_t consumed = 0;
};

void save_checkpoint(WorkerCheckpoint& ckpt, uint64_t iteration, Model& model,
                     const Optimizer& optimizer, const ShardLoader& loader) {
  ckpt.iteration = iteration;
  ckpt.params = model.get_flat_params();
  std::ostringstream out;
  optimizer.save_state(out);
  ckpt.optimizer_state = out.str();
  ckpt.cursor = loader.cursor();
  ckpt.consumed = loader.consumed();
}

void restore_checkpoint(const WorkerCheckpoint& ckpt, Model& model,
                        Optimizer& optimizer, ShardLoader& loader) {
  model.set_flat_params(ckpt.params);
  std::istringstream in(ckpt.optimizer_state);
  optimizer.load_state(in);
  loader.restore_position(ckpt.cursor, ckpt.consumed);
}

/// Simulated-time penalty for the two message legs (push + pull) of one PS
/// interaction on the shared-memory transport; the ring transport injects
/// its faults per chunk inside RingAllreduce instead. Drops cost the sender
/// the retransmit timeout, delays the configured lateness; duplicates are
/// deduplicated for free and only logged.
double message_leg_penalty(FaultInjector& faults, size_t rank, uint64_t it) {
  const MessageFaultConfig& m = faults.plan().messages;
  if (!m.any()) return 0.0;
  double penalty = 0.0;
  for (int leg = 0; leg < 2; ++leg) {
    switch (faults.draw_message_fate(rank)) {
      case MessageFate::kDrop:
        faults.record(rank, FaultKind::kMessageDrop, it,
                      m.retransmit_timeout_s);
        penalty += m.retransmit_timeout_s;
        break;
      case MessageFate::kDelay:
        faults.record(rank, FaultKind::kMessageDelay, it, m.delay_s);
        penalty += m.delay_s;
        break;
      case MessageFate::kDuplicate:
        faults.record(rank, FaultKind::kMessageDuplicate, it, 0.0);
        break;
      case MessageFate::kDeliver:
        break;
    }
  }
  return penalty;
}

/// PS-RPC timeout retries with exponential backoff. Synchronous rounds
/// cannot be skipped by one worker, so they absorb every backoff and
/// complete (`allow_give_up` false); SSP steps give up past max_retries and
/// proceed degraded (`*gave_up` set).
double ps_retry_penalty(FaultInjector& faults, size_t rank, uint64_t it,
                        bool allow_give_up, bool* gave_up) {
  if (gave_up) *gave_up = false;
  const PsFaultConfig& cfg = faults.plan().ps;
  if (!cfg.any()) return 0.0;
  const size_t timeouts = faults.draw_ps_timeouts(rank);
  double penalty = 0.0;
  for (size_t attempt = 0; attempt < timeouts; ++attempt) {
    penalty += faults.ps_backoff_s(attempt);
    faults.record(rank, FaultKind::kPsTimeout, it,
                  static_cast<double>(attempt));
  }
  if (allow_give_up && timeouts > cfg.max_retries) {
    faults.record(rank, FaultKind::kPsGiveUp, it,
                  static_cast<double>(timeouts));
    if (gave_up) *gave_up = true;
  }
  return penalty;
}

/// Aggregation rounds seen by the cluster before `iteration` for policies
/// whose votes are pure functions of the iteration number. A rejoiner
/// recomputes its round counter with this so FedAvg's per-round participant
/// sampling stays aligned with the survivors across the downtime gap.
uint64_t sync_rounds_before(const SyncPolicy& policy, uint64_t iteration) {
  uint64_t rounds = 0;
  for (uint64_t j = 0; j < iteration; ++j)
    if (policy.local_vote(j, 0.0)) ++rounds;
  return rounds;
}

struct SharedSyncState {
  std::mutex mutex;
  TrainResult result;
  std::vector<std::vector<size_t>> injection_proposals;
  /// EASGD center variable (initialized to the common seed model before the
  /// cluster starts; only touched between barriers during elastic updates).
  std::vector<float> easgd_center;
  /// Final per-worker simulated clocks, written as each worker exits. The
  /// cluster time is their max — computed after the join instead of with a
  /// final collective, because under fault injection workers leave the loop
  /// at different points (permanent crashes) and a trailing collective would
  /// have no agreed participant set.
  std::vector<double> worker_sim_time;
};

void run_synchronous_worker(const TrainJob& job, WorkerContext& ctx,
                            const Partition& partition, size_t local_batch,
                            const DataInjector* injector, RingAllreduce* ring,
                            FaultInjector* faults, RejoinCoordinator* rejoin,
                            SharedSyncState& shared) {
  auto model = job.model_factory(job.seed);
  auto optimizer = job.optimizer_factory();
  auto policy = make_sync_policy(job);
  GradientCompressor compressor(job.compression);
  RelativeGradChange grad_change(ewma_alpha_for(job), job.selsync.ewma_window);
  ShardLoader loader(job.train_data, partition.worker_order[ctx.rank],
                     local_batch);
  StepTimeModel time(job.paper_model, job.device, job.network, job.topology,
                     job.workers);
  const AggregationMode agg = aggregation_for(job);
  const uint64_t steps_per_epoch = job.steps_per_epoch();
  SharedCollectives& coll = *ctx.collectives;
  const CommGroup full_group = CommGroup::full(job.workers);
  // Payload transport: shared-memory collectives or the channel-based ring.
  // The ring accrues its own injected-fault delays into the injector's
  // pending-delay account; they are drained onto this worker's clock here.
  auto allreduce = [&](std::vector<float>& data, const CommGroup& group,
                       double& clock) {
    if (ring) {
      ring->run(ctx.rank, data);
      if (faults) clock += faults->take_pending_delay(ctx.rank);
    } else {
      coll.allreduce_sum(ctx.rank, data, group);
    }
  };
  // Systems heterogeneity (§II-A): this worker's compute-speed multiplier.
  const double speed =
      job.worker_speed.empty() ? 1.0 : job.worker_speed[ctx.rank];

  double sim_time = 0.0;
  double comm_bytes = 0.0;
  uint64_t sync_steps = 0, local_steps = 0, sync_rounds = 0;
  uint64_t executed = 0;
  bool reached = false;
  bool diverged = false;
  // Fault-injection state: the standing checkpoint (only maintained for
  // ranks the plan can crash-and-restart) and whether this worker left the
  // run as a casualty (permanent crash, or cluster stopped while parked).
  WorkerCheckpoint checkpoint;
  const bool take_checkpoints = faults && faults->needs_checkpoints(ctx.rank);
  bool casualty = false;

  // Worker-0 instrumentation, moved into `shared` at the end.
  std::unique_ptr<EmaTracker> ema;
  if (ctx.is_root() && job.ema_decay > 0.0)
    ema = std::make_unique<EmaTracker>(job.ema_decay);
  std::vector<double> delta_trace, grad_sq_trace;
  std::vector<EvalPoint> eval_history;
  std::map<double, std::vector<float>> snapshots;
  TrainResult local_bests;
  size_t next_snapshot = 0;

  for (uint64_t it = 0; it < job.max_iterations; ++it) {
    // ---- fault schedule: checkpoint, crash, park, restart ---------------
    if (faults) {
      faults->set_current_iteration(ctx.rank, it);
      if (take_checkpoints &&
          it % faults->plan().checkpoint_interval == 0) {
        save_checkpoint(checkpoint, it, *model, *optimizer, loader);
        faults->record(ctx.rank, FaultKind::kCheckpoint, it);
      }
      if (const CrashEvent* crash =
              faults->crash_starting_at(ctx.rank, it)) {
        faults->record(ctx.rank, FaultKind::kCrash, it,
                       crash->restart
                           ? static_cast<double>(crash->downtime_iterations)
                           : -1.0);
        // A non-restarting crash — or a cluster that stops while this
        // worker is parked — removes the rank for good; the survivors
        // carry the run. The rendezvous keeps the restart out of barrier
        // generations it is not part of: the worker sleeps until the
        // lowest surviving rank reaches the top of the rejoin iteration.
        if (!crash->restart || !rejoin->wait_for_rejoin(ctx.rank)) {
          casualty = true;
          break;
        }
        it = crash->at_iteration + crash->downtime_iterations;
        faults->set_current_iteration(ctx.rank, it);
        restore_checkpoint(checkpoint, *model, *optimizer, loader);
        // The Δ(g) statistic restarts cold: its EWMA window described a
        // training trajectory the restored replica is no longer on.
        grad_change =
            RelativeGradChange(ewma_alpha_for(job), job.selsync.ewma_window);
        if (!policy->needs_flag_exchange())
          sync_rounds = sync_rounds_before(*policy, it);
        sim_time += faults->plan().restart_cost_s;
        faults->record(ctx.rank, FaultKind::kRestart, it,
                       faults->plan().restart_cost_s);
      }
    }
    const CommGroup group =
        faults ? CommGroup::from_mask(faults->active_mask(it)) : full_group;

    // ---- recovery sync: survivors release and re-seed rejoiners ---------
    if (faults) {
      const std::vector<size_t> rejoiners = faults->rejoining_at(it);
      if (!rejoiners.empty()) {
        const bool i_rejoin =
            std::find(rejoiners.begin(), rejoiners.end(), ctx.rank) !=
            rejoiners.end();
        // Lowest surviving rank (validate guarantees one exists).
        size_t sync_root = job.workers;
        for (size_t r = 0; r < job.workers; ++r)
          if (group.mask[r] && std::find(rejoiners.begin(), rejoiners.end(),
                                         r) == rejoiners.end()) {
            sync_root = r;
            break;
          }
        if (ctx.rank == sync_root)
          for (size_t r : rejoiners) rejoin->release(r);
        // Every member relays the survivor's parameters, but only rejoiners
        // adopt them — surviving replicas keep their legitimate drift.
        std::vector<float> params = model->get_flat_params();
        coll.broadcast(ctx.rank, sync_root, params, group);
        if (i_rejoin) {
          model->set_flat_params(params);
          faults->record(ctx.rank, FaultKind::kRecoverySync, it);
        }
        sim_time = coll.allreduce_max(ctx.rank, sim_time, group) +
                   time.sync_time_for_bytes(time.payload_bytes());
        comm_bytes += static_cast<double>(time.payload_bytes());
      }
    }

    const double epoch =
        static_cast<double>(it) / static_cast<double>(steps_per_epoch);

    // ---- data (with optional injection) ---------------------------------
    Batch batch;
    if (injector) {
      const std::vector<size_t> mine = loader.next_indices();
      {
        std::lock_guard<std::mutex> lock(shared.mutex);
        shared.injection_proposals[ctx.rank] = mine;
        // The group leader clears absent ranks' slots so pooling cannot
        // resurrect a proposal a worker wrote before crashing.
        if (ctx.rank == group.leader)
          for (size_t r = 0; r < job.workers; ++r)
            if (!group.mask[r]) shared.injection_proposals[r].clear();
      }
      coll.barrier(group);
      const InjectionRound round = injector->run(
          it, shared.injection_proposals, job.train_data->sample_bytes());
      coll.barrier(group);  // proposals no longer read after this point
      std::vector<size_t> combined = mine;
      combined.insert(combined.end(), round.pool.begin(), round.pool.end());
      batch = job.train_data->make_batch(combined);
      sim_time += time.injection_time(round.bytes_transferred);
      comm_bytes += static_cast<double>(round.bytes_transferred);
    } else {
      batch = loader.next_batch();
    }

    // ---- local gradients + Δ(g_i) ---------------------------------------
    model->train_step(batch);
    double compute_factor = speed;
    if (faults) {
      if (const StragglerEvent* s =
              faults->straggler_starting_at(ctx.rank, it))
        faults->record(ctx.rank, FaultKind::kStragglerStart, it, s->slowdown);
      compute_factor *= faults->straggler_factor(ctx.rank, it);
    }
    sim_time += compute_factor * time.compute_time(job.batch_size);
    std::vector<float> grads = model->get_flat_grads();
    const double delta = grad_change.update(sq_norm(grads));
    if (ctx.is_root()) {
      if (job.record_delta_trace) delta_trace.push_back(delta);
      if (job.record_grad_sq_trace)
        grad_sq_trace.push_back(grad_change.smoothed_sq_norm());
    }

    // ---- combine votes ---------------------------------------------------
    const bool vote = policy->local_vote(it, delta);
    bool any_sync = vote;
    if (policy->needs_flag_exchange()) {
      const std::vector<uint8_t> flags =
          coll.allgather_byte(ctx.rank, vote ? 1 : 0, group);
      const size_t votes = static_cast<size_t>(
          std::count_if(flags.begin(), flags.end(),
                        [](uint8_t f) { return f != 0; }));
      // Alg. 1 synchronizes when ANY worker votes; sync_quorum generalizes
      // the rule for the §5.1 ablation (majority, unanimity, ...). Under
      // degradation the quorum is taken over the surviving group.
      const size_t needed = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(job.selsync.sync_quorum *
                                           static_cast<double>(group.size))));
      any_sync = votes >= needed;
      sim_time += time.flag_time();
      comm_bytes += static_cast<double>(group.size) / 8.0;  // 1 bit each
    }

    // ---- apply update ----------------------------------------------------
    // Contributors = group members sampled into this round. Under FedAvg's
    // C-fraction sampling a degraded group can leave the round with no
    // contributor at all; the round is then lost (logged as quorum_lost)
    // but still counts so the sampling sequence stays aligned.
    size_t contributors = 0;
    if (any_sync)
      for (size_t r = 0; r < job.workers; ++r)
        if (group.mask[r] && policy->participates(sync_rounds, r))
          ++contributors;
    if (any_sync && contributors == 0) {
      if (faults && ctx.rank == group.leader)
        faults->record(ctx.rank, FaultKind::kQuorumLost, it);
      optimizer->step(model->params(), it, epoch);
      ++local_steps;
      ++sync_rounds;
    } else if (any_sync) {
      // Injected comm faults land on this worker's clock before alignment,
      // so one slow or retrying worker drags the whole round — the paper's
      // §II-A straggler argument, reproduced at the fault layer.
      if (faults) {
        if (!ring) sim_time += message_leg_penalty(*faults, ctx.rank, it);
        if (job.topology == Topology::kParameterServer)
          sim_time += ps_retry_penalty(*faults, ctx.rank, it,
                                       /*allow_give_up=*/false, nullptr);
      }
      const bool participant = policy->participates(sync_rounds, ctx.rank);
      const float weight =
          participant ? 1.f / static_cast<float>(contributors) : 0.f;
      if (job.strategy == StrategyKind::kEasgd) {
        // Elastic update (reference [37]): local models are pulled toward
        // the center, the center toward the worker mean. The center sits in
        // shared state; barriers order the read-update-read sequence, and
        // the group leader (not rank 0, which may be down) applies it.
        optimizer->step(model->params(), it, epoch);
        std::vector<float> params = model->get_flat_params();
        std::vector<float> diff(params.size());
        for (size_t i = 0; i < params.size(); ++i)
          diff[i] = params[i] - shared.easgd_center[i];
        // Workers move first (using the pre-update center)...
        const float a = static_cast<float>(job.easgd.alpha);
        for (size_t i = 0; i < params.size(); ++i)
          params[i] -= a * diff[i];
        model->set_flat_params(params);
        // ...then the center absorbs the mean displacement.
        coll.allreduce_mean(ctx.rank, diff, group);
        coll.barrier(group);
        if (ctx.rank == group.leader) {
          const float b = static_cast<float>(job.easgd.beta);
          for (size_t i = 0; i < diff.size(); ++i)
            shared.easgd_center[i] += b * diff[i];
        }
        coll.barrier(group);
      } else if (agg == AggregationMode::kGradients) {
        // Gradient payloads may be compressed (§II-D baselines); the codec
        // runs compress->decompress in place and reports the wire ratio.
        compressor.compress(grads, delta);
        // Aggregate gradients, everyone applies the same averaged update
        // (local models may still drift through optimizer state, §III-C).
        for (auto& g : grads) g *= weight;
        allreduce(grads, group, sim_time);
        model->set_flat_grads(grads);
        optimizer->step(model->params(), it, epoch);
      } else {
        // Alg. 1: local update first (line 9), then parameter averaging
        // (lines 14-15) makes all replicas consistent.
        optimizer->step(model->params(), it, epoch);
        std::vector<float> params = model->get_flat_params();
        for (auto& p : params) p *= weight;
        allreduce(params, group, sim_time);
        model->set_flat_params(params);
      }
      const size_t wire_bytes =
          agg == AggregationMode::kGradients
              ? static_cast<size_t>(static_cast<double>(time.payload_bytes()) *
                                    compressor.last_wire_ratio())
              : time.payload_bytes();
      sim_time = coll.allreduce_max(ctx.rank, sim_time, group) +
                 time.sync_time_for_bytes(wire_bytes);
      comm_bytes += 2.0 * static_cast<double>(wire_bytes);
      ++sync_steps;
      ++sync_rounds;
    } else {
      optimizer->step(model->params(), it, epoch);
      ++local_steps;
    }
    executed = it + 1;
    if (ema) ema->update(*model);

    // ---- worker-0 snapshots (Fig. 11) ------------------------------------
    if (ctx.is_root() && next_snapshot < job.snapshot_epochs.size()) {
      const double boundary = job.snapshot_epochs[next_snapshot];
      if (static_cast<double>(it + 1) / steps_per_epoch >= boundary) {
        snapshots[boundary] = model->get_flat_params();
        ++next_snapshot;
      }
    }

    // ---- evaluation + early stop -----------------------------------------
    if ((it + 1) % job.eval_interval == 0 || it + 1 == job.max_iterations) {
      double stop_vote = 0.0;
      if (ctx.is_root()) {
        EvalPoint pt;
        if (ema) {
          EmaEvalScope scope(*ema, *model);  // evaluate the averaged weights
          pt = make_eval_point(*model, *job.test_data, it + 1,
                               static_cast<double>(it + 1) / steps_per_epoch,
                               sim_time);
        } else {
          pt = make_eval_point(*model, *job.test_data, it + 1,
                               static_cast<double>(it + 1) / steps_per_epoch,
                               sim_time);
        }
        eval_history.push_back(pt);
        update_bests(local_bests, pt);
        if (target_reached(job, pt)) stop_vote = 1.0;
        if (!std::isfinite(pt.loss)) {
          diverged = true;  // non-finite loss: stop instead of burning budget
          stop_vote = 1.0;
        }
      }
      // With worker 0 down the evaluation is simply missed for those
      // boundaries (degraded observability); the survivors still agree on
      // "no stop" through the group reduction.
      if (coll.allreduce_max(ctx.rank, stop_vote, group) > 0.5) {
        double diverged_vote = diverged ? 1.0 : 0.0;
        diverged = coll.allreduce_max(ctx.rank, diverged_vote, group) > 0.5;
        reached = !diverged;
        break;
      }
    }
  }

  // Normal exits tear the rendezvous down so a parked worker cannot outlive
  // the cluster; a casualty leaves it armed for peers still due to rejoin.
  if (rejoin && !casualty) rejoin->shutdown();

  // ---- publish results ----------------------------------------------------
  std::lock_guard<std::mutex> lock(shared.mutex);
  shared.worker_sim_time[ctx.rank] = sim_time;
  if (ctx.is_root()) {
    TrainResult& r = shared.result;
    r.iterations = executed;
    r.sync_steps = sync_steps;
    r.local_steps = local_steps;
    r.comm_bytes = comm_bytes;
    r.eval_history = std::move(eval_history);
    if (!r.eval_history.empty()) r.final_eval = r.eval_history.back();
    r.best_top1 = local_bests.best_top1;
    r.best_top5 = local_bests.best_top5;
    r.best_perplexity = local_bests.best_perplexity;
    r.reached_target = reached;
    r.diverged = diverged;
    r.delta_trace = std::move(delta_trace);
    r.grad_sq_trace = std::move(grad_sq_trace);
    r.weight_snapshots = std::move(snapshots);
  }
}

TrainResult run_synchronous(const TrainJob& job) {
  const Partition partition =
      make_partition(job.partition, *job.train_data, job.workers,
                     job.labels_per_worker, job.seed ^ 0xDA7AULL);

  size_t local_batch = job.batch_size;
  std::unique_ptr<DataInjector> injector;
  if (job.injection.enabled) {
    local_batch = injection_adjusted_batch(job.batch_size, job.injection.alpha,
                                           job.injection.beta, job.workers);
    injector = std::make_unique<DataInjector>(
        InjectionConfig{job.injection.alpha, job.injection.beta,
                        job.seed ^ 0x12171217ULL},
        job.workers);
  }
  std::unique_ptr<FaultInjector> faults;
  std::unique_ptr<RejoinCoordinator> rejoin;
  if (job.faults.enabled()) {
    faults = std::make_unique<FaultInjector>(job.faults, job.workers);
    rejoin = std::make_unique<RejoinCoordinator>(job.workers);
  }

  SharedSyncState shared;
  shared.injection_proposals.resize(job.workers);
  shared.worker_sim_time.assign(job.workers, 0.0);
  if (job.strategy == StrategyKind::kEasgd)
    shared.easgd_center = job.model_factory(job.seed)->get_flat_params();
  std::unique_ptr<RingAllreduce> ring;
  if (job.transport == Transport::kMessagePassingRing)
    ring = std::make_unique<RingAllreduce>(job.workers, faults.get());
  WallTimer wall;
  run_cluster(
      job.workers,
      [&](WorkerContext& ctx) {
        run_synchronous_worker(job, ctx, partition, local_batch,
                               injector.get(), ring.get(), faults.get(),
                               rejoin.get(), shared);
      },
      [&] {
        if (ring) ring->close_all();
        if (rejoin) rejoin->shutdown();
      });
  shared.result.sim_time_s = *std::max_element(
      shared.worker_sim_time.begin(), shared.worker_sim_time.end());
  shared.result.wall_time_s = wall.elapsed_s();
  if (faults) shared.result.faults = faults->summary();
  return shared.result;
}

struct SharedSspState {
  std::mutex mutex;
  TrainResult result;
  std::atomic<bool> stop{false};
  std::vector<double> worker_sim_time;
};

void run_ssp_worker(const TrainJob& job, WorkerContext& ctx,
                    const Partition& partition, ParameterServer& ps,
                    FaultInjector* faults, SharedSspState& shared) {
  auto model = job.model_factory(job.seed);
  auto optimizer = job.optimizer_factory();  // provides the LR schedule
  ShardLoader loader(job.train_data, partition.worker_order[ctx.rank],
                     job.batch_size);
  StepTimeModel time(job.paper_model, job.device, job.network, job.topology,
                     job.workers);
  const uint64_t steps_per_epoch = job.steps_per_epoch();
  const double speed =
      job.worker_speed.empty() ? 1.0 : job.worker_speed[ctx.rank];

  double sim_time = 0.0;
  double comm_bytes = 0.0;
  uint64_t executed = 0;
  bool reached = false;
  bool diverged = false;
  std::vector<EvalPoint> eval_history;
  TrainResult local_bests;
  WorkerCheckpoint checkpoint;
  const bool take_checkpoints = faults && faults->needs_checkpoints(ctx.rank);
  // Iterations up to (exclusive) this mark already had their crash fired;
  // a rewound loop must not re-fire the same crash on replay.
  uint64_t crash_fired_until = 0;

  uint64_t it = 0;
  while (it < job.max_iterations) {
    if (shared.stop.load()) break;
    double compute_factor = speed;
    bool skip_ps = false;
    if (faults) {
      faults->set_current_iteration(ctx.rank, it);
      if (take_checkpoints &&
          it % faults->plan().checkpoint_interval == 0) {
        save_checkpoint(checkpoint, it, *model, *optimizer, loader);
        faults->record(ctx.rank, FaultKind::kCheckpoint, it);
      }
      const CrashEvent* crash = faults->crash_starting_at(ctx.rank, it);
      if (crash && crash->at_iteration >= crash_fired_until) {
        crash_fired_until = crash->at_iteration + 1;
        faults->record(ctx.rank, FaultKind::kCrash, it,
                       crash->restart
                           ? static_cast<double>(crash->downtime_iterations)
                           : -1.0);
        if (!crash->restart) break;  // permanent: survivors carry the run
        // SSP has no collective coupling, so a restart is a plain rewind to
        // the last checkpoint: the replayed iterations are the lost work,
        // and the staleness bound then holds fast workers to the rewound
        // clock — exactly the straggler effect a real crash has.
        restore_checkpoint(checkpoint, *model, *optimizer, loader);
        it = checkpoint.iteration;
        faults->set_current_iteration(ctx.rank, it);
        sim_time += faults->plan().restart_cost_s;
        faults->record(ctx.rank, FaultKind::kRestart, it,
                       faults->plan().restart_cost_s);
        continue;
      }
      if (const StragglerEvent* s =
              faults->straggler_starting_at(ctx.rank, it))
        faults->record(ctx.rank, FaultKind::kStragglerStart, it, s->slowdown);
      compute_factor *= faults->straggler_factor(ctx.rank, it);
      sim_time += message_leg_penalty(*faults, ctx.rank, it);
      bool gave_up = false;
      sim_time += ps_retry_penalty(*faults, ctx.rank, it,
                                   /*allow_give_up=*/true, &gave_up);
      skip_ps = gave_up;
    }
    const double epoch =
        static_cast<double>(it) / static_cast<double>(steps_per_epoch);

    if (skip_ps) {
      // Degraded step: the PS is unreachable past the retry budget, so the
      // worker trains on its stale local replica and drops this push.
      const Batch batch = loader.next_batch();
      model->train_step(batch);
      optimizer->step(model->params(), it, epoch);
      sim_time += compute_factor * time.compute_time(job.batch_size);
    } else {
      // Pull the (possibly stale) global parameters, take one step with the
      // local optimizer (its momentum/Adam state stays worker-local), and
      // push the resulting parameter delta asynchronously (paper §II-C:
      // workers "independently update the global parameters on the central
      // PS in a non-blocking manner").
      const std::vector<float> pulled = ps.pull();
      model->set_flat_params(pulled);
      const Batch batch = loader.next_batch();
      model->train_step(batch);
      optimizer->step(model->params(), it, epoch);
      std::vector<float> delta = model->get_flat_params();
      for (size_t i = 0; i < delta.size(); ++i) delta[i] -= pulled[i];
      ps.apply_delta_async(delta);

      sim_time += compute_factor * time.compute_time(job.batch_size) +
                  time.ssp_step_comm_time(job.batch_size);
      comm_bytes += 2.0 * static_cast<double>(time.payload_bytes());
    }
    executed = it + 1;

    ps.enforce_staleness(ctx.rank, it + 1, job.ssp.staleness);

    if (ctx.is_root() &&
        ((it + 1) % job.eval_interval == 0 || it + 1 == job.max_iterations)) {
      model->set_flat_params(ps.pull());
      const EvalPoint pt = make_eval_point(
          *model, *job.test_data, it + 1,
          static_cast<double>(it + 1) / steps_per_epoch, sim_time);
      eval_history.push_back(pt);
      update_bests(local_bests, pt);
      if (target_reached(job, pt)) {
        reached = true;
        shared.stop.store(true);
      }
      if (!std::isfinite(pt.loss)) {
        diverged = true;  // stop the cluster; the run is unrecoverable
        shared.stop.store(true);
      }
    }
    ++it;
  }
  ps.finish(ctx.rank);

  std::lock_guard<std::mutex> lock(shared.mutex);
  shared.worker_sim_time[ctx.rank] = sim_time;
  if (ctx.is_root()) {
    TrainResult& r = shared.result;
    r.iterations = executed;
    r.lssr_applicable = false;
    r.comm_bytes = comm_bytes;
    r.eval_history = std::move(eval_history);
    if (!r.eval_history.empty()) r.final_eval = r.eval_history.back();
    r.best_top1 = local_bests.best_top1;
    r.best_top5 = local_bests.best_top5;
    r.best_perplexity = local_bests.best_perplexity;
    r.reached_target = reached;
    r.diverged = diverged;
  }
}

TrainResult run_ssp(const TrainJob& job) {
  auto reference = job.model_factory(job.seed);
  ParameterServer ps(reference->get_flat_params(), job.workers);
  const Partition partition =
      make_partition(job.partition, *job.train_data, job.workers,
                     job.labels_per_worker, job.seed ^ 0xDA7AULL);
  std::unique_ptr<FaultInjector> faults;
  if (job.faults.enabled())
    faults = std::make_unique<FaultInjector>(job.faults, job.workers);

  SharedSspState shared;
  shared.worker_sim_time.assign(job.workers, 0.0);
  WallTimer wall;
  run_cluster(
      job.workers,
      [&](WorkerContext& ctx) {
        run_ssp_worker(job, ctx, partition, ps, faults.get(), shared);
      },
      [&] { ps.abort(); });
  shared.result.sim_time_s = *std::max_element(shared.worker_sim_time.begin(),
                                               shared.worker_sim_time.end());
  shared.result.wall_time_s = wall.elapsed_s();
  if (faults) shared.result.faults = faults->summary();
  return shared.result;
}

}  // namespace

TrainResult run_training(const TrainJob& job) {
  job.validate();
  return job.strategy == StrategyKind::kSsp ? run_ssp(job)
                                            : run_synchronous(job);
}

}  // namespace selsync
