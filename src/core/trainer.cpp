#include "core/trainer.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/comm_backend.hpp"
#include "comm/fault_injector.hpp"
#include "core/backend_factory.hpp"
#include "core/handoff.hpp"
#include "core/replica.hpp"
#include "core/sync_plan.hpp"
#include "core/trainer_internal.hpp"
#include "core/worker_loop.hpp"
#include "data/injection.hpp"
#include "util/timer.hpp"

namespace selsync {

namespace {

using detail::SharedSspState;
using detail::SharedSyncState;
using detail::SspWorkerLoop;
using detail::SynchronousWorkerLoop;
using detail::WorkerPhase;

/// Everything that outlives a single phase (DESIGN.md §14): built once per
/// run, shared by every per-phase run_cluster invocation. A legacy
/// single-phase job is simply a RunContext that runs one phase.
struct RunContext {
  explicit RunContext(const TrainJob& run_job) : job(run_job) {
    if (job.injection.enabled)
      injector = std::make_unique<DataInjector>(
          InjectionConfig{job.injection.alpha, job.injection.beta,
                          job.seed ^ 0x12171217ULL},
          job.workers);
    if (job.faults.enabled()) {
      // One injector for the whole run keeps the per-rank decision streams
      // and the event log continuous across phases — the fault schedule of
      // a switched run reads like one run, and a degenerate switch draws
      // the exact same stream a no-plan run does.
      faults = std::make_unique<FaultInjector>(job.faults, job.workers);
      rejoin = std::make_unique<RejoinCoordinator>(job.workers);
    }
    sync_shared.injection_proposals.resize(job.workers);
    sync_shared.worker_sim_time.assign(job.workers, 0.0);
    ssp_shared.worker_sim_time.assign(job.workers, 0.0);

    // The transport opens before any cluster thread exists: the tcp session
    // forks its worker processes here, from a single-threaded master. The
    // replicas are created once per rank and persist across every phase —
    // that persistence is what carries optimizer moments, EMA trackers and
    // data cursors through a switch, and why the wire protocol needs no new
    // verbs (remote replicas never learn a switch happened).
    session = open_transport(job);
    replicas.reserve(job.workers);
    for (size_t r = 0; r < job.workers; ++r)
      replicas.push_back(session->make_replica(r));
    captures.resize(job.workers);
  }

  /// Lowest rank still in the run — the model representative for
  /// boundary-time seeding (casualties cannot occur where seeding is
  /// needed, but the lowest survivor is the same rank recovery syncs use).
  size_t root_rank() const {
    for (size_t r = 0; r < job.workers; ++r)
      if (!captures[r].casualty) return r;
    return 0;
  }

  const TrainJob& job;
  std::unique_ptr<DataInjector> injector;
  std::unique_ptr<FaultInjector> faults;
  std::unique_ptr<RejoinCoordinator> rejoin;
  SharedSyncState sync_shared;
  SharedSspState ssp_shared;
  std::unique_ptr<TransportSession> session;
  std::vector<std::unique_ptr<Replica>> replicas;
  /// Per-rank captures from the most recent phase exit; the next phase
  /// resumes from them.
  std::vector<WorkerHandoff> captures;
};

/// Runs one phase of the plan on the already-created backend and leaves the
/// per-rank captures in ctx.captures. `phased` gates every capture/resume
/// path: a legacy run passes false and takes the pre-SyncPlan code paths
/// exactly (null handoff pointers, no capture work, bit-identical records).
void run_phase(RunContext& ctx, const TrainJob& phase_job, size_t index,
               bool phased, CommBackend& backend) {
  uint64_t end_iteration = std::numeric_limits<uint64_t>::max();
  double gradchange_below = 0.0;
  uint64_t gradchange_min = 0;
  if (index < ctx.job.sync_plan.phases.size()) {
    const SwitchTrigger& trigger = ctx.job.sync_plan.phases[index].trigger;
    if (trigger.kind == SwitchTriggerKind::kAtIteration)
      end_iteration = trigger.at_iteration;
    else {
      gradchange_below = trigger.gradchange_below;
      gradchange_min = trigger.min_iteration;
    }
  }

  // Exits at a boundary write into `fresh`; ranks that no longer run (prior
  // casualties) keep their old capture via the copy.
  std::vector<WorkerHandoff> fresh = ctx.captures;
  if (ctx.rejoin) ctx.rejoin->resume();

  const auto make_phase = [&](size_t rank) {
    WorkerPhase phase;
    phase.end_iteration = end_iteration;
    phase.gradchange_below = gradchange_below;
    phase.gradchange_min_iteration = gradchange_min;
    if (phased) {
      if (index > 0) phase.resume = &ctx.captures[rank];
      phase.handoff = &fresh[rank];
    }
    return phase;
  };

  const auto body = [&](WorkerContext& wctx) {
    if (phased && ctx.captures[wctx.rank].casualty) return;
    const WorkerPhase phase = make_phase(wctx.rank);
    if (phase_job.strategy == StrategyKind::kSsp) {
      SspWorkerLoop loop(phase_job, wctx, ctx.replicas[wctx.rank].get(),
                         backend, ctx.faults.get(), ctx.ssp_shared, phase);
      loop.run();
    } else {
      SynchronousWorkerLoop loop(phase_job, wctx,
                                 ctx.replicas[wctx.rank].get(),
                                 ctx.injector.get(), backend,
                                 ctx.faults.get(), ctx.rejoin.get(),
                                 ctx.sync_shared, phase);
      loop.run();
    }
  };

  run_cluster(phase_job.engine, ctx.job.workers, body, [&] {
    backend.abort();
    if (ctx.rejoin) ctx.rejoin->shutdown();
    ctx.session->abort();
  });
  ctx.captures = std::move(fresh);
}

}  // namespace

TrainResult run_training(const TrainJob& job) {
  job.validate();

  const bool phased = !job.sync_plan.empty();
  const size_t phase_count = job.sync_plan.phase_count();

  RunContext ctx(job);
  BackendLifecycle lifecycle;
  BackendHandoff carried;
  bool have_carried = false;
  StrategyKind prev_strategy = job.strategy;
  StrategyKind final_family = job.strategy;
  uint64_t boundary = 0;  // iteration of the most recent switch point

  WallTimer wall;
  try {
    for (size_t index = 0; index < phase_count; ++index) {
      const TrainJob phase_job = derive_phase_job(job, index);
      final_family = phase_job.strategy;
      const bool has_store =
          phase_job.strategy == StrategyKind::kSsp ||
          phase_job.backend == BackendKind::kParameterServer;

      if (index > 0) {
        // A phase that needs a central store the predecessor did not have
        // seeds it from the boundary model — the run must resume from where
        // training got to, not from the iteration-0 model make_backend
        // would install.
        if (has_store && !carried.has_store) {
          carried.store_params =
              ctx.replicas[ctx.root_rank()]->flat_params();
          carried.has_store = true;
        }
        // Same for a switch INTO EASGD: its elastic center starts at the
        // boundary model. EASGD -> EASGD keeps the live center untouched.
        if (phase_job.strategy == StrategyKind::kEasgd &&
            prev_strategy != StrategyKind::kEasgd)
          ctx.sync_shared.easgd_center =
              ctx.replicas[ctx.root_rank()]->flat_params();
      } else if (phase_job.strategy == StrategyKind::kEasgd) {
        ctx.sync_shared.easgd_center =
            job.model_factory(job.seed)->get_flat_params();
      }

      CommBackend& backend = lifecycle.create(
          phase_job, ctx.faults.get(), have_carried ? &carried : nullptr);
      if (index > 0 && phase_job.strategy == StrategyKind::kSsp &&
          prev_strategy != StrategyKind::kSsp)
        // Entering SSP from a synchronous phase: every worker resumes at
        // the boundary iteration, so the staleness clocks start there (the
        // carried clocks, if any, describe a store no SSP loop ran
        // against).
        backend.central_store()->seed_worker_clocks(boundary);

      run_phase(ctx, phase_job, index, phased, backend);

      // Quiesce and decide: switch to the next phase, or the run is over
      // (budget spent / stop agreed / SSP stop flag) and later phases never
      // execute.
      lifecycle.drain();
      bool switch_pending = false;
      if (phased && index + 1 < phase_count) {
        for (const WorkerHandoff& capture : ctx.captures)
          if (!capture.casualty && capture.paused_at_boundary &&
              !capture.parked) {
            switch_pending = true;
            boundary = std::max(boundary, capture.iteration);
          }
        if (phase_job.strategy == StrategyKind::kSsp &&
            ctx.ssp_shared.stop.load())
          switch_pending = false;
      }
      if (!switch_pending) {
        lifecycle.teardown();
        break;
      }
      carried = lifecycle.handoff();
      have_carried = true;
      lifecycle.teardown();
      prev_strategy = phase_job.strategy;
    }
  } catch (...) {
    // The transport session must be torn down — shutdown verbs, closed
    // connections, reaped worker processes — before the first worker error
    // propagates.
    ctx.session->finish();
    throw;
  }
  ctx.session->finish();

  const bool ssp_final = final_family == StrategyKind::kSsp;
  TrainResult result = ssp_final ? std::move(ctx.ssp_shared.result)
                                 : std::move(ctx.sync_shared.result);
  // Every rank's final clock lives in the shared state of the family it
  // exited in; a run cannot mix families per rank (crash plans may not
  // cross a family switch, and without casualties every rank finishes in
  // the last phase), so the final family's vector is complete.
  const std::vector<double>& sim_time = ssp_final
                                            ? ctx.ssp_shared.worker_sim_time
                                            : ctx.sync_shared.worker_sim_time;
  result.sim_time_s =
      *std::max_element(sim_time.begin(), sim_time.end());
  result.wall_time_s = wall.elapsed_s();
  if (ctx.faults) result.faults = ctx.faults->summary();
  return result;
}

}  // namespace selsync
