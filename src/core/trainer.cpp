#include "core/trainer.hpp"

#include <algorithm>
#include <memory>

#include "comm/cluster.hpp"
#include "comm/comm_backend.hpp"
#include "comm/fault_injector.hpp"
#include "core/backend_factory.hpp"
#include "core/trainer_internal.hpp"
#include "core/worker_loop.hpp"
#include "data/injection.hpp"
#include "util/timer.hpp"

namespace selsync {

namespace {

using detail::SharedSspState;
using detail::SharedSyncState;
using detail::SspWorkerLoop;
using detail::SynchronousWorkerLoop;

TrainResult run_synchronous(const TrainJob& job) {
  const Partition partition =
      make_partition(job.partition, *job.train_data, job.workers,
                     job.labels_per_worker, job.seed ^ 0xDA7AULL);

  size_t local_batch = job.batch_size;
  std::unique_ptr<DataInjector> injector;
  if (job.injection.enabled) {
    local_batch = injection_adjusted_batch(job.batch_size, job.injection.alpha,
                                           job.injection.beta, job.workers);
    injector = std::make_unique<DataInjector>(
        InjectionConfig{job.injection.alpha, job.injection.beta,
                        job.seed ^ 0x12171217ULL},
        job.workers);
  }
  std::unique_ptr<FaultInjector> faults;
  std::unique_ptr<RejoinCoordinator> rejoin;
  if (job.faults.enabled()) {
    faults = std::make_unique<FaultInjector>(job.faults, job.workers);
    rejoin = std::make_unique<RejoinCoordinator>(job.workers);
  }

  SharedSyncState shared;
  shared.injection_proposals.resize(job.workers);
  shared.worker_sim_time.assign(job.workers, 0.0);
  if (job.strategy == StrategyKind::kEasgd)
    shared.easgd_center = job.model_factory(job.seed)->get_flat_params();

  std::unique_ptr<CommBackend> backend = make_backend(job, faults.get());

  WallTimer wall;
  run_cluster(
      job.engine, job.workers,
      [&](WorkerContext& ctx) {
        SynchronousWorkerLoop loop(job, ctx, partition, local_batch,
                                   injector.get(), *backend, faults.get(),
                                   rejoin.get(), shared);
        loop.run();
      },
      [&] {
        backend->abort();
        if (rejoin) rejoin->shutdown();
      });
  shared.result.sim_time_s = *std::max_element(
      shared.worker_sim_time.begin(), shared.worker_sim_time.end());
  shared.result.wall_time_s = wall.elapsed_s();
  if (faults) shared.result.faults = faults->summary();
  return shared.result;
}

TrainResult run_ssp(const TrainJob& job) {
  const Partition partition =
      make_partition(job.partition, *job.train_data, job.workers,
                     job.labels_per_worker, job.seed ^ 0xDA7AULL);
  std::unique_ptr<FaultInjector> faults;
  if (job.faults.enabled())
    faults = std::make_unique<FaultInjector>(job.faults, job.workers);

  std::unique_ptr<CommBackend> backend = make_ssp_backend(job, faults.get());

  SharedSspState shared;
  shared.worker_sim_time.assign(job.workers, 0.0);
  WallTimer wall;
  run_cluster(
      job.engine, job.workers,
      [&](WorkerContext& ctx) {
        SspWorkerLoop loop(job, ctx, partition, *backend, faults.get(),
                           shared);
        loop.run();
      },
      [&] { backend->abort(); });
  shared.result.sim_time_s = *std::max_element(shared.worker_sim_time.begin(),
                                               shared.worker_sim_time.end());
  shared.result.wall_time_s = wall.elapsed_s();
  if (faults) shared.result.faults = faults->summary();
  return shared.result;
}

}  // namespace

TrainResult run_training(const TrainJob& job) {
  job.validate();
  return job.strategy == StrategyKind::kSsp ? run_ssp(job)
                                            : run_synchronous(job);
}

}  // namespace selsync
