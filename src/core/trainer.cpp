#include "core/trainer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "comm/cluster.hpp"
#include "core/sync_policy.hpp"
#include "core/time_model.hpp"
#include "data/injection.hpp"
#include "optim/ema_tracker.hpp"
#include "stats/grad_change.hpp"
#include "util/timer.hpp"

namespace selsync {

namespace {

constexpr size_t kEvalBatch = 256;

double ewma_alpha_for(const TrainJob& job) {
  if (job.selsync.ewma_alpha > 0.0) return std::min(job.selsync.ewma_alpha, 1.0);
  // Paper: smoothing factor N/100 (0.16 for a 16-node cluster).
  return std::clamp(static_cast<double>(job.workers) / 100.0, 0.02, 1.0);
}

double sq_norm(const std::vector<float>& v) {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * x;
  return s;
}

EvalPoint make_eval_point(Model& model, const Dataset& test, uint64_t iteration,
                          double epoch, double sim_time) {
  const EvalStats stats =
      evaluate_dataset(model, test, std::min<size_t>(kEvalBatch, test.size()));
  EvalPoint pt;
  pt.iteration = iteration;
  pt.epoch = epoch;
  pt.sim_time_s = sim_time;
  pt.loss = stats.mean_loss();
  pt.top1 = stats.top1_accuracy();
  pt.top5 = stats.top5_accuracy();
  pt.perplexity = stats.perplexity();
  return pt;
}

bool target_reached(const TrainJob& job, const EvalPoint& pt) {
  if (job.target_top1 && pt.top1 >= *job.target_top1) return true;
  if (job.target_perplexity && pt.perplexity <= *job.target_perplexity)
    return true;
  return false;
}

void update_bests(TrainResult& result, const EvalPoint& pt) {
  result.best_top1 = std::max(result.best_top1, pt.top1);
  result.best_top5 = std::max(result.best_top5, pt.top5);
  result.best_perplexity = std::min(result.best_perplexity, pt.perplexity);
}

/// Which payload the aggregation rounds move for a given job (§III-C).
AggregationMode aggregation_for(const TrainJob& job) {
  switch (job.strategy) {
    case StrategyKind::kBsp:
      return AggregationMode::kGradients;  // classic BSP allreduce
    case StrategyKind::kSelSync:
      return job.selsync.aggregation;
    default:
      return AggregationMode::kParameters;  // FedAvg averages models
  }
}

struct SharedSyncState {
  std::mutex mutex;
  TrainResult result;
  std::vector<std::vector<size_t>> injection_proposals;
  /// EASGD center variable (initialized to the common seed model before the
  /// cluster starts; only touched between barriers during elastic updates).
  std::vector<float> easgd_center;
};

void run_synchronous_worker(const TrainJob& job, WorkerContext& ctx,
                            const Partition& partition, size_t local_batch,
                            const DataInjector* injector, RingAllreduce* ring,
                            SharedSyncState& shared) {
  auto model = job.model_factory(job.seed);
  auto optimizer = job.optimizer_factory();
  auto policy = make_sync_policy(job);
  GradientCompressor compressor(job.compression);
  RelativeGradChange grad_change(ewma_alpha_for(job), job.selsync.ewma_window);
  ShardLoader loader(job.train_data, partition.worker_order[ctx.rank],
                     local_batch);
  StepTimeModel time(job.paper_model, job.device, job.network, job.topology,
                     job.workers);
  const AggregationMode agg = aggregation_for(job);
  const uint64_t steps_per_epoch = job.steps_per_epoch();
  SharedCollectives& coll = *ctx.collectives;
  // Payload transport: shared-memory collectives or the channel-based ring.
  auto allreduce = [&](std::vector<float>& data) {
    if (ring)
      ring->run(ctx.rank, data);
    else
      coll.allreduce_sum(ctx.rank, data);
  };
  // Systems heterogeneity (§II-A): this worker's compute-speed multiplier.
  const double speed =
      job.worker_speed.empty() ? 1.0 : job.worker_speed[ctx.rank];

  double sim_time = 0.0;
  double comm_bytes = 0.0;
  uint64_t sync_steps = 0, local_steps = 0, sync_rounds = 0;
  uint64_t executed = 0;
  bool reached = false;
  bool diverged = false;

  // Worker-0 instrumentation, moved into `shared` at the end.
  std::unique_ptr<EmaTracker> ema;
  if (ctx.is_root() && job.ema_decay > 0.0)
    ema = std::make_unique<EmaTracker>(job.ema_decay);
  std::vector<double> delta_trace, grad_sq_trace;
  std::vector<EvalPoint> eval_history;
  std::map<double, std::vector<float>> snapshots;
  TrainResult local_bests;
  size_t next_snapshot = 0;

  for (uint64_t it = 0; it < job.max_iterations; ++it) {
    const double epoch =
        static_cast<double>(it) / static_cast<double>(steps_per_epoch);

    // ---- data (with optional injection) ---------------------------------
    Batch batch;
    if (injector) {
      const std::vector<size_t> mine = loader.next_indices();
      {
        std::lock_guard<std::mutex> lock(shared.mutex);
        shared.injection_proposals[ctx.rank] = mine;
      }
      coll.barrier();
      const InjectionRound round = injector->run(
          it, shared.injection_proposals, job.train_data->sample_bytes());
      coll.barrier();  // proposals no longer read after this point
      std::vector<size_t> combined = mine;
      combined.insert(combined.end(), round.pool.begin(), round.pool.end());
      batch = job.train_data->make_batch(combined);
      sim_time += time.injection_time(round.bytes_transferred);
      comm_bytes += static_cast<double>(round.bytes_transferred);
    } else {
      batch = loader.next_batch();
    }

    // ---- local gradients + Δ(g_i) ---------------------------------------
    model->train_step(batch);
    sim_time += speed * time.compute_time(job.batch_size);
    std::vector<float> grads = model->get_flat_grads();
    const double delta = grad_change.update(sq_norm(grads));
    if (ctx.is_root()) {
      if (job.record_delta_trace) delta_trace.push_back(delta);
      if (job.record_grad_sq_trace)
        grad_sq_trace.push_back(grad_change.smoothed_sq_norm());
    }

    // ---- combine votes ---------------------------------------------------
    const bool vote = policy->local_vote(it, delta);
    bool any_sync = vote;
    if (policy->needs_flag_exchange()) {
      const std::vector<uint8_t> flags =
          coll.allgather_byte(ctx.rank, vote ? 1 : 0);
      const size_t votes = static_cast<size_t>(
          std::count_if(flags.begin(), flags.end(),
                        [](uint8_t f) { return f != 0; }));
      // Alg. 1 synchronizes when ANY worker votes; sync_quorum generalizes
      // the rule for the §5.1 ablation (majority, unanimity, ...).
      const size_t needed = std::max<size_t>(
          1, static_cast<size_t>(
                 std::ceil(job.selsync.sync_quorum * job.workers)));
      any_sync = votes >= needed;
      sim_time += time.flag_time();
      comm_bytes += static_cast<double>(job.workers) / 8.0;  // 1 bit each
    }

    // ---- apply update ----------------------------------------------------
    if (any_sync) {
      const bool participant = policy->participates(sync_rounds, ctx.rank);
      const float weight =
          participant
              ? 1.f / static_cast<float>(policy->participant_count())
              : 0.f;
      if (job.strategy == StrategyKind::kEasgd) {
        // Elastic update (reference [37]): local models are pulled toward
        // the center, the center toward the worker mean. The center sits in
        // shared state; barriers order the read-update-read sequence.
        optimizer->step(model->params(), it, epoch);
        std::vector<float> params = model->get_flat_params();
        std::vector<float> diff(params.size());
        for (size_t i = 0; i < params.size(); ++i)
          diff[i] = params[i] - shared.easgd_center[i];
        // Workers move first (using the pre-update center)...
        const float a = static_cast<float>(job.easgd.alpha);
        for (size_t i = 0; i < params.size(); ++i)
          params[i] -= a * diff[i];
        model->set_flat_params(params);
        // ...then the center absorbs the mean displacement.
        coll.allreduce_mean(ctx.rank, diff);
        coll.barrier();
        if (ctx.is_root()) {
          const float b = static_cast<float>(job.easgd.beta);
          for (size_t i = 0; i < diff.size(); ++i)
            shared.easgd_center[i] += b * diff[i];
        }
        coll.barrier();
      } else if (agg == AggregationMode::kGradients) {
        // Gradient payloads may be compressed (§II-D baselines); the codec
        // runs compress->decompress in place and reports the wire ratio.
        compressor.compress(grads, delta);
        // Aggregate gradients, everyone applies the same averaged update
        // (local models may still drift through optimizer state, §III-C).
        for (auto& g : grads) g *= weight;
        allreduce(grads);
        model->set_flat_grads(grads);
        optimizer->step(model->params(), it, epoch);
      } else {
        // Alg. 1: local update first (line 9), then parameter averaging
        // (lines 14-15) makes all replicas consistent.
        optimizer->step(model->params(), it, epoch);
        std::vector<float> params = model->get_flat_params();
        for (auto& p : params) p *= weight;
        allreduce(params);
        model->set_flat_params(params);
      }
      const size_t wire_bytes =
          agg == AggregationMode::kGradients
              ? static_cast<size_t>(static_cast<double>(time.payload_bytes()) *
                                    compressor.last_wire_ratio())
              : time.payload_bytes();
      sim_time = coll.allreduce_max(ctx.rank, sim_time) +
                 time.sync_time_for_bytes(wire_bytes);
      comm_bytes += 2.0 * static_cast<double>(wire_bytes);
      ++sync_steps;
      ++sync_rounds;
    } else {
      optimizer->step(model->params(), it, epoch);
      ++local_steps;
    }
    executed = it + 1;
    if (ema) ema->update(*model);

    // ---- worker-0 snapshots (Fig. 11) ------------------------------------
    if (ctx.is_root() && next_snapshot < job.snapshot_epochs.size()) {
      const double boundary = job.snapshot_epochs[next_snapshot];
      if (static_cast<double>(it + 1) / steps_per_epoch >= boundary) {
        snapshots[boundary] = model->get_flat_params();
        ++next_snapshot;
      }
    }

    // ---- evaluation + early stop -----------------------------------------
    if ((it + 1) % job.eval_interval == 0 || it + 1 == job.max_iterations) {
      double stop_vote = 0.0;
      if (ctx.is_root()) {
        EvalPoint pt;
        if (ema) {
          EmaEvalScope scope(*ema, *model);  // evaluate the averaged weights
          pt = make_eval_point(*model, *job.test_data, it + 1,
                               static_cast<double>(it + 1) / steps_per_epoch,
                               sim_time);
        } else {
          pt = make_eval_point(*model, *job.test_data, it + 1,
                               static_cast<double>(it + 1) / steps_per_epoch,
                               sim_time);
        }
        eval_history.push_back(pt);
        update_bests(local_bests, pt);
        if (target_reached(job, pt)) stop_vote = 1.0;
        if (!std::isfinite(pt.loss)) {
          diverged = true;  // non-finite loss: stop instead of burning budget
          stop_vote = 1.0;
        }
      }
      if (coll.allreduce_max(ctx.rank, stop_vote) > 0.5) {
        double diverged_vote = diverged ? 1.0 : 0.0;
        diverged = coll.allreduce_max(ctx.rank, diverged_vote) > 0.5;
        reached = !diverged;
        break;
      }
    }
  }

  // ---- publish results ----------------------------------------------------
  const double cluster_time = coll.allreduce_max(ctx.rank, sim_time);
  if (ctx.is_root()) {
    std::lock_guard<std::mutex> lock(shared.mutex);
    TrainResult& r = shared.result;
    r.iterations = executed;
    r.sync_steps = sync_steps;
    r.local_steps = local_steps;
    r.sim_time_s = cluster_time;
    r.comm_bytes = comm_bytes;
    r.eval_history = std::move(eval_history);
    if (!r.eval_history.empty()) r.final_eval = r.eval_history.back();
    r.best_top1 = local_bests.best_top1;
    r.best_top5 = local_bests.best_top5;
    r.best_perplexity = local_bests.best_perplexity;
    r.reached_target = reached;
    r.diverged = diverged;
    r.delta_trace = std::move(delta_trace);
    r.grad_sq_trace = std::move(grad_sq_trace);
    r.weight_snapshots = std::move(snapshots);
  }
}

TrainResult run_synchronous(const TrainJob& job) {
  const Partition partition =
      make_partition(job.partition, *job.train_data, job.workers,
                     job.labels_per_worker, job.seed ^ 0xDA7AULL);

  size_t local_batch = job.batch_size;
  std::unique_ptr<DataInjector> injector;
  if (job.injection.enabled) {
    local_batch = injection_adjusted_batch(job.batch_size, job.injection.alpha,
                                           job.injection.beta, job.workers);
    injector = std::make_unique<DataInjector>(
        InjectionConfig{job.injection.alpha, job.injection.beta,
                        job.seed ^ 0x12171217ULL},
        job.workers);
  }

  SharedSyncState shared;
  shared.injection_proposals.resize(job.workers);
  if (job.strategy == StrategyKind::kEasgd)
    shared.easgd_center = job.model_factory(job.seed)->get_flat_params();
  std::unique_ptr<RingAllreduce> ring;
  if (job.transport == Transport::kMessagePassingRing)
    ring = std::make_unique<RingAllreduce>(job.workers);
  WallTimer wall;
  run_cluster(job.workers, [&](WorkerContext& ctx) {
    run_synchronous_worker(job, ctx, partition, local_batch, injector.get(),
                           ring.get(), shared);
  });
  shared.result.wall_time_s = wall.elapsed_s();
  return shared.result;
}

struct SharedSspState {
  std::mutex mutex;
  TrainResult result;
  std::atomic<bool> stop{false};
  std::vector<double> worker_sim_time;
};

void run_ssp_worker(const TrainJob& job, WorkerContext& ctx,
                    const Partition& partition, ParameterServer& ps,
                    SharedSspState& shared) {
  auto model = job.model_factory(job.seed);
  auto optimizer = job.optimizer_factory();  // provides the LR schedule
  ShardLoader loader(job.train_data, partition.worker_order[ctx.rank],
                     job.batch_size);
  StepTimeModel time(job.paper_model, job.device, job.network, job.topology,
                     job.workers);
  const uint64_t steps_per_epoch = job.steps_per_epoch();
  const double speed =
      job.worker_speed.empty() ? 1.0 : job.worker_speed[ctx.rank];

  double sim_time = 0.0;
  double comm_bytes = 0.0;
  uint64_t executed = 0;
  bool reached = false;
  bool diverged = false;
  std::vector<EvalPoint> eval_history;
  TrainResult local_bests;

  for (uint64_t it = 0; it < job.max_iterations; ++it) {
    if (shared.stop.load()) break;
    const double epoch =
        static_cast<double>(it) / static_cast<double>(steps_per_epoch);

    // Pull the (possibly stale) global parameters, take one step with the
    // local optimizer (its momentum/Adam state stays worker-local), and push
    // the resulting parameter delta asynchronously (paper §II-C: workers
    // "independently update the global parameters on the central PS in a
    // non-blocking manner").
    const std::vector<float> pulled = ps.pull();
    model->set_flat_params(pulled);
    const Batch batch = loader.next_batch();
    model->train_step(batch);
    optimizer->step(model->params(), it, epoch);
    std::vector<float> delta = model->get_flat_params();
    for (size_t i = 0; i < delta.size(); ++i) delta[i] -= pulled[i];
    ps.apply_delta_async(delta);

    sim_time += speed * time.compute_time(job.batch_size) +
                time.ssp_step_comm_time(job.batch_size);
    comm_bytes += 2.0 * static_cast<double>(time.payload_bytes());
    executed = it + 1;

    ps.enforce_staleness(ctx.rank, it + 1, job.ssp.staleness);

    if (ctx.is_root() &&
        ((it + 1) % job.eval_interval == 0 || it + 1 == job.max_iterations)) {
      model->set_flat_params(ps.pull());
      const EvalPoint pt = make_eval_point(
          *model, *job.test_data, it + 1,
          static_cast<double>(it + 1) / steps_per_epoch, sim_time);
      eval_history.push_back(pt);
      update_bests(local_bests, pt);
      if (target_reached(job, pt)) {
        reached = true;
        shared.stop.store(true);
      }
      if (!std::isfinite(pt.loss)) {
        diverged = true;  // stop the cluster; the run is unrecoverable
        shared.stop.store(true);
      }
    }
  }
  ps.finish(ctx.rank);

  std::lock_guard<std::mutex> lock(shared.mutex);
  shared.worker_sim_time[ctx.rank] = sim_time;
  if (ctx.is_root()) {
    TrainResult& r = shared.result;
    r.iterations = executed;
    r.lssr_applicable = false;
    r.comm_bytes = comm_bytes;
    r.eval_history = std::move(eval_history);
    if (!r.eval_history.empty()) r.final_eval = r.eval_history.back();
    r.best_top1 = local_bests.best_top1;
    r.best_top5 = local_bests.best_top5;
    r.best_perplexity = local_bests.best_perplexity;
    r.reached_target = reached;
    r.diverged = diverged;
  }
}

TrainResult run_ssp(const TrainJob& job) {
  auto reference = job.model_factory(job.seed);
  ParameterServer ps(reference->get_flat_params(), job.workers);
  const Partition partition =
      make_partition(job.partition, *job.train_data, job.workers,
                     job.labels_per_worker, job.seed ^ 0xDA7AULL);

  SharedSspState shared;
  shared.worker_sim_time.assign(job.workers, 0.0);
  WallTimer wall;
  run_cluster(job.workers, [&](WorkerContext& ctx) {
    run_ssp_worker(job, ctx, partition, ps, shared);
  });
  shared.result.sim_time_s = *std::max_element(shared.worker_sim_time.begin(),
                                               shared.worker_sim_time.end());
  shared.result.wall_time_s = wall.elapsed_s();
  return shared.result;
}

}  // namespace

TrainResult run_training(const TrainJob& job) {
  job.validate();
  return job.strategy == StrategyKind::kSsp ? run_ssp(job)
                                            : run_synchronous(job);
}

}  // namespace selsync
