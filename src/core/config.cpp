#include "core/config.hpp"

#include <stdexcept>

#include "core/backend_factory.hpp"

namespace selsync {

const char* strategy_kind_name(StrategyKind kind) {
  return enum_name(kStrategyKindNames, kind);
}

std::optional<StrategyKind> strategy_kind_from_name(std::string_view name) {
  return enum_from_name(kStrategyKindCliNames, name);
}

std::string strategy_kind_names() { return enum_names(kStrategyKindCliNames); }

uint64_t TrainJob::steps_per_epoch() const {
  if (!train_data) throw std::logic_error("steps_per_epoch: no dataset");
  const uint64_t global_batch =
      static_cast<uint64_t>(workers) * static_cast<uint64_t>(batch_size);
  const uint64_t steps = train_data->size() / global_batch;
  return steps == 0 ? 1 : steps;
}

void TrainJob::validate() const {
  if (workers == 0) throw std::invalid_argument("TrainJob: zero workers");
  if (batch_size == 0) throw std::invalid_argument("TrainJob: zero batch");
  if (max_iterations == 0)
    throw std::invalid_argument("TrainJob: zero iterations");
  if (!train_data || !test_data)
    throw std::invalid_argument("TrainJob: datasets required");
  if (!model_factory) throw std::invalid_argument("TrainJob: model factory");
  if (!optimizer_factory)
    throw std::invalid_argument("TrainJob: optimizer factory");
  if (strategy == StrategyKind::kFedAvg) {
    if (fedavg.participation <= 0.0 || fedavg.participation > 1.0)
      throw std::invalid_argument("TrainJob: FedAvg C in (0,1]");
    if (fedavg.sync_factor <= 0.0 || fedavg.sync_factor > 1.0)
      throw std::invalid_argument("TrainJob: FedAvg E in (0,1]");
  }
  if (strategy == StrategyKind::kSelSync && selsync.delta < 0.0)
    throw std::invalid_argument("TrainJob: SelSync delta >= 0");
  if (strategy == StrategyKind::kEasgd) {
    if (easgd.alpha <= 0.0 || easgd.alpha > 1.0 || easgd.beta <= 0.0 ||
        easgd.beta > 1.0)
      throw std::invalid_argument("TrainJob: EASGD alpha/beta in (0,1]");
    if (easgd.tau == 0)
      throw std::invalid_argument("TrainJob: EASGD tau must be > 0");
  }
  if (injection.enabled &&
      (injection.alpha < 0.0 || injection.alpha > 1.0 ||
       injection.beta < 0.0 || injection.beta > 1.0))
    throw std::invalid_argument("TrainJob: injection alpha/beta in [0,1]");
  if (ema_decay < 0.0 || ema_decay >= 1.0)
    throw std::invalid_argument("TrainJob: ema_decay in [0, 1)");
  if (!worker_speed.empty()) {
    if (worker_speed.size() != workers)
      throw std::invalid_argument("TrainJob: worker_speed size != workers");
    for (double s : worker_speed)
      if (s <= 0.0)
        throw std::invalid_argument("TrainJob: worker_speed must be > 0");
  }
  // Backend-compatibility rules (codec vs payload kind, crash plans vs
  // backend, ps_shards vs the PS tier) live with backend construction so
  // the two cannot drift (DESIGN.md §10).
  validate_backend_choice(*this);
  // Per-phase validation of the switch schedule: trigger ordering plus a
  // full re-validate of every derived phase job, so an invalid later phase
  // fails here — at parse time, with the phase index in the message — not
  // mid-run (DESIGN.md §14).
  validate_sync_plan(*this);
}

}  // namespace selsync
