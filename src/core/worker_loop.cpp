#include "core/worker_loop.hpp"

#include <algorithm>
#include <cmath>

#include "comm/event_loop.hpp"

namespace selsync::detail {

WorkerLoop::WorkerLoop(const TrainJob& job, WorkerContext& ctx,
                       Replica* replica, CommBackend& backend,
                       FaultInjector* faults, const WorkerPhase& phase)
    : job_(job),
      ctx_(ctx),
      backend_(backend),
      faults_(faults),
      replica_(replica),
      time_(job.paper_model, job.device, job.network, job.topology,
            job.workers),
      steps_per_epoch_(job.steps_per_epoch()),
      speed_(job.worker_speed.empty() ? 1.0 : job.worker_speed[ctx.rank]),
      end_iteration_(phase.end_iteration),
      gradchange_below_(phase.gradchange_below),
      gradchange_min_iteration_(phase.gradchange_min_iteration),
      handoff_out_(phase.handoff),
      take_checkpoints_(faults && faults->needs_checkpoints(ctx.rank)) {
  // Resume the loop-generic counters from the previous phase's capture; the
  // concrete loops restore their own state on top (DESIGN.md §14).
  if (const WorkerHandoff* r = phase.resume) {
    it_ = r->iteration;
    executed_ = r->executed;
    sim_time_ = r->sim_time;
    comm_bytes_ = r->comm_bytes;
    reached_ = r->reached;
    diverged_ = r->diverged;
    eval_history_ = r->eval_history;
    local_bests_ = r->local_bests;
  }
}

void WorkerLoop::capture_handoff(WorkerHandoff& out) const {
  out.iteration = it_;
  out.executed = executed_;
  out.sim_time = sim_time_;
  out.comm_bytes = comm_bytes_;
  out.reached = reached_;
  out.diverged = diverged_;
  out.casualty = casualty_;
  // Overwritten by pause_worker() / the concrete loop where applicable; set
  // here so a finish capture cannot inherit a stale pause from the capture
  // slot's previous phase.
  out.paused_at_boundary = false;
  out.parked = false;
  out.eval_history = eval_history_;
  out.local_bests = local_bests_;
}

void WorkerLoop::pause_worker() {
  if (!handoff_out_) return;
  capture_handoff(*handoff_out_);
  handoff_out_->paused_at_boundary = true;
}

void WorkerLoop::run() {
  while (step()) {
  }
}

bool WorkerLoop::step() {
  switch (stage_) {
    case Stage::kFault:
      // Iteration boundary: under the DES engine, publish this worker's
      // simulated clock and let the globally earliest fiber run next (a
      // no-op on real threads), so interleaving follows virtual time.
      des_yield(sim_time_);
      if (it_ >= job_.max_iterations || stop_requested()) {
        stage_ = Stage::kFinish;
        return true;
      }
      // Phase boundary (DESIGN.md §14): checked before fault_stage so a
      // crash or checkpoint scheduled exactly at the boundary iteration
      // fires once, in the next phase — never in both.
      if (it_ >= end_iteration_) {
        stage_ = Stage::kPause;
        return true;
      }
      switch (fault_stage()) {
        case FaultAction::kExit:
          stage_ = Stage::kFinish;
          return true;
        case FaultAction::kRetry:
          // Re-enter kFault without advancing (checkpoint rewind), exactly
          // the old loop's `continue` — budget/stop are re-checked first.
          return true;
        case FaultAction::kPause:
          // Parked worker drained at the boundary: exit without teardown so
          // the next phase can re-park it at its crash point.
          stage_ = Stage::kPause;
          return true;
        case FaultAction::kProceed:
          stage_ = Stage::kData;
          return true;
      }
      return true;  // unreachable; keeps -Werror=return-type quiet
    case Stage::kData:
      data_stage();
      stage_ = Stage::kCompute;
      return true;
    case Stage::kCompute:
      compute_stage();
      des_tick(sim_time_);
      stage_ = Stage::kAggregate;
      return true;
    case Stage::kAggregate:
      aggregation_stage(sync_decision_stage());
      executed_ = it_ + 1;
      des_tick(sim_time_);
      stage_ = Stage::kInstrument;
      return true;
    case Stage::kInstrument:
      if (instrumentation_stage()) {
        stage_ = Stage::kFinish;
      } else {
        ++it_;
        stage_ = Stage::kFault;
      }
      return true;
    case Stage::kPause:
      // Exit at the phase boundary: capture the handoff, skip the finish
      // teardown (the rendezvous and PS carry into the next phase), and
      // leave the shared result untouched — only a finishing phase writes
      // it.
      pause_worker();
      des_tick(sim_time_);
      stage_ = Stage::kDone;
      return false;
    case Stage::kFinish:
      finish_worker();
      // Capture BEFORE publish(): publish moves eval_history_/traces into
      // the shared result, and the trainer still reads the capture to learn
      // the run is over (paused_at_boundary stays false).
      if (handoff_out_) capture_handoff(*handoff_out_);
      publish();
      des_tick(sim_time_);
      stage_ = Stage::kDone;
      return false;
    case Stage::kDone:
      return false;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Bulk-synchronous loop
// ---------------------------------------------------------------------------

SynchronousWorkerLoop::SynchronousWorkerLoop(
    const TrainJob& job, WorkerContext& ctx, Replica* replica,
    const DataInjector* injector, CommBackend& backend, FaultInjector* faults,
    RejoinCoordinator* rejoin, SharedSyncState& shared,
    const WorkerPhase& phase)
    : WorkerLoop(job, ctx, replica, backend, faults, phase),
      injector_(injector),
      rejoin_(rejoin),
      shared_(shared),
      policy_(make_sync_policy(job)),
      grad_change_(ewma_alpha_for(job), job.selsync.ewma_window),
      agg_(aggregation_for(job)),
      full_group_(CommGroup::full(job.workers)),
      group_(full_group_) {
  if (const WorkerHandoff* r = phase.resume) {
    // Resume the bulk-synchronous state the previous phase captured. The
    // replica's EMA tracker (if any) lives inside the persistent replica,
    // so it is never re-initialized — only the armed flag carries over.
    sync_steps_ = r->sync_steps;
    local_steps_ = r->local_steps;
    sync_rounds_ = r->sync_rounds;
    sync_cost_totals_ = r->sync_cost;
    grad_change_.restore(r->grad_change);
    ema_enabled_ = r->ema_enabled;
    delta_trace_ = r->delta_trace;
    grad_sq_trace_ = r->grad_sq_trace;
    snapshots_ = r->snapshots;
    next_snapshot_ = r->next_snapshot;
    resume_parked_ = r->parked;
    // A policy without flag exchange schedules rounds by iteration count;
    // realign its round counter when the previous phase ran a different
    // policy (e.g. BSP every-step rounds -> LocalSGD interval rounds).
    if (!policy_->needs_flag_exchange())
      sync_rounds_ = policy_->rounds_before(it_);
  } else if (is_root() && job.ema_decay > 0.0) {
    replica_->ema_init(job.ema_decay);
    ema_enabled_ = true;
  }
  if (job.slices <= 1) {
    slices_ = SliceSchedule::single(replica_->param_count());
  } else {
    // Slice the replica's actual layer shapes (flat-vector packing order,
    // input layer first); every rank builds the identical schedule.
    slices_ = SliceSchedule::build(replica_->layer_sizes(), job.slices,
                                   job.slice_order);
  }
}

WorkerLoop::FaultAction SynchronousWorkerLoop::fault_stage() {
  // ---- checkpoint, crash, park, restart -----------------------------------
  // A worker the previous phase drained while parked re-enters the wait at
  // its crash iteration without re-recording the crash (or the checkpoint
  // it already took there) — the fault log must read like one run.
  const bool replay_park = resume_parked_;
  resume_parked_ = false;
  if (faults_) {
    faults_->set_current_iteration(ctx_.rank, it_);
    if (!replay_park && take_checkpoints_ &&
        it_ % faults_->plan().checkpoint_interval == 0) {
      replica_->save_checkpoint(it_);
      faults_->record(ctx_.rank, FaultKind::kCheckpoint, it_);
    }
    if (const CrashEvent* crash =
            faults_->crash_starting_at(ctx_.rank, it_)) {
      if (!replay_park)
        faults_->record(ctx_.rank, FaultKind::kCrash, it_,
                        crash->restart
                            ? static_cast<double>(crash->downtime_iterations)
                            : -1.0);
      // A non-restarting crash removes the rank for good; the survivors
      // carry the run. A restarting one parks: the rendezvous keeps the
      // restart out of barrier generations it is not part of — the worker
      // sleeps until the lowest surviving rank reaches the top of the
      // rejoin iteration, the cluster stops, or a phase boundary drains it.
      if (!crash->restart) {
        casualty_ = true;
        return FaultAction::kExit;
      }
      switch (rejoin_->wait_for_rejoin(ctx_.rank)) {
        case RejoinWait::kStopped:
          casualty_ = true;
          return FaultAction::kExit;
        case RejoinWait::kPaused:
          parked_ = true;
          return FaultAction::kPause;
        case RejoinWait::kReleased:
          parked_ = false;
          break;
      }
      it_ = crash->at_iteration + crash->downtime_iterations;
      faults_->set_current_iteration(ctx_.rank, it_);
      replica_->restore_checkpoint();
      // The Δ(g) statistic restarts cold: its EWMA window described a
      // training trajectory the restored replica is no longer on.
      grad_change_ =
          RelativeGradChange(ewma_alpha_for(job_), job_.selsync.ewma_window);
      if (!policy_->needs_flag_exchange())
        sync_rounds_ = policy_->rounds_before(it_);
      sim_time_ += faults_->plan().restart_cost_s;
      faults_->record(ctx_.rank, FaultKind::kRestart, it_,
                      faults_->plan().restart_cost_s);
    }
  }
  group_ =
      faults_ ? CommGroup::from_mask(faults_->active_mask(it_)) : full_group_;

  // ---- recovery sync: survivors release and re-seed rejoiners -------------
  if (faults_) {
    const std::vector<size_t> rejoiners = faults_->rejoining_at(it_);
    if (!rejoiners.empty()) {
      const bool i_rejoin =
          std::find(rejoiners.begin(), rejoiners.end(), ctx_.rank) !=
          rejoiners.end();
      // Lowest surviving rank (validate guarantees one exists).
      size_t sync_root = job_.workers;
      for (size_t r = 0; r < job_.workers; ++r)
        if (group_.mask[r] && std::find(rejoiners.begin(), rejoiners.end(),
                                        r) == rejoiners.end()) {
          sync_root = r;
          break;
        }
      if (ctx_.rank == sync_root)
        for (size_t r : rejoiners) rejoin_->release(r);
      // Every member relays the survivor's parameters, but only rejoiners
      // adopt them — surviving replicas keep their legitimate drift.
      replica_->take_measured();  // open this round's measured account
      std::vector<float> params = replica_->flat_params();
      backend_.broadcast(ctx_, sync_root, params, group_);
      if (i_rejoin) {
        replica_->set_flat_params(params);
        faults_->record(ctx_.rank, FaultKind::kRecoverySync, it_);
      }
      // A recovery sync always moves the dense model (re-seeding a rejoiner
      // with a lossy payload would poison its replica), so it is priced at
      // wire ratio 1.0 regardless of the backend's codec.
      SyncCost recovery;
      time_.price_sync(recovery, backend_);
      const ReplicaMeasure measured = replica_->take_measured();
      recovery.measured_sync_s = measured.seconds;
      recovery.measured_wire_bytes = static_cast<size_t>(measured.bytes);
      sim_time_ = backend_.allreduce_max(ctx_, sim_time_, group_) +
                  recovery.round_time();
      comm_bytes_ += static_cast<double>(time_.payload_bytes());
      sync_cost_totals_.add(recovery);
    }
  }
  return FaultAction::kProceed;
}

void SynchronousWorkerLoop::data_stage() {
  epoch_ = static_cast<double>(it_) / static_cast<double>(steps_per_epoch_);
  if (injector_) {
    const std::vector<size_t> mine = replica_->next_indices();
    {
      // selsync-lint: allow(raw-thread) -- leaf lock on SharedSyncState:
      // held for a few map writes, never across a collective or a wait.
      std::lock_guard<std::mutex> lock(shared_.mutex);
      shared_.injection_proposals[ctx_.rank] = mine;
      // The group leader clears absent ranks' slots so pooling cannot
      // resurrect a proposal a worker wrote before crashing.
      if (ctx_.rank == group_.leader)
        for (size_t r = 0; r < job_.workers; ++r)
          if (!group_.mask[r]) shared_.injection_proposals[r].clear();
    }
    backend_.barrier(ctx_, group_);
    const InjectionRound round = injector_->run(
        it_, shared_.injection_proposals, job_.train_data->sample_bytes());
    backend_.barrier(ctx_, group_);  // proposals no longer read after this
    std::vector<size_t> combined = mine;
    combined.insert(combined.end(), round.pool.begin(), round.pool.end());
    replica_->load_batch(combined);
    sim_time_ += time_.injection_time(round.bytes_transferred);
    comm_bytes_ += static_cast<double>(round.bytes_transferred);
  } else {
    replica_->load_next_batch();
  }
}

void SynchronousWorkerLoop::compute_stage() {
  grads_ = replica_->train_step_grads();
  compute_factor_ = speed_;
  if (faults_) {
    if (const StragglerEvent* s =
            faults_->straggler_starting_at(ctx_.rank, it_))
      faults_->record(ctx_.rank, FaultKind::kStragglerStart, it_,
                      s->slowdown);
    compute_factor_ *= faults_->straggler_factor(ctx_.rank, it_);
  }
  sim_time_ += compute_factor_ * time_.compute_time(job_.batch_size);
  delta_ = grad_change_.update(sq_norm(grads_));
  if (is_root()) {
    if (job_.record_delta_trace) delta_trace_.push_back(delta_);
    if (job_.record_grad_sq_trace)
      grad_sq_trace_.push_back(grad_change_.smoothed_sq_norm());
  }
}

bool SynchronousWorkerLoop::sync_decision_stage() {
  const bool vote = policy_->local_vote(it_, delta_);
  bool any_sync = vote;
  if (policy_->needs_flag_exchange()) {
    const std::vector<uint8_t> flags =
        backend_.allgather_flags(ctx_, vote ? 1 : 0, group_);
    const size_t votes = static_cast<size_t>(
        std::count_if(flags.begin(), flags.end(),
                      [](uint8_t f) { return f != 0; }));
    // Alg. 1 synchronizes when ANY worker votes; sync_quorum generalizes
    // the rule for the §5.1 ablation (majority, unanimity, ...). Under
    // degradation the quorum is taken over the surviving group.
    const size_t needed = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(job_.selsync.sync_quorum *
                                         static_cast<double>(group_.size))));
    any_sync = votes >= needed;
    sim_time_ += time_.flag_time();
    comm_bytes_ += static_cast<double>(group_.size) / 8.0;  // 1 bit each
  }
  return any_sync;
}

void SynchronousWorkerLoop::aggregation_stage(bool any_sync) {
  // Contributors = group members sampled into this round. Under FedAvg's
  // C-fraction sampling a degraded group can leave the round with no
  // contributor at all; the round is then lost (logged as quorum_lost)
  // but still counts so the sampling sequence stays aligned.
  size_t contributors = 0;
  if (any_sync)
    for (size_t r = 0; r < job_.workers; ++r)
      if (group_.mask[r] && policy_->participates(sync_rounds_, r))
        ++contributors;
  if (any_sync && contributors == 0) {
    if (faults_ && ctx_.rank == group_.leader)
      faults_->record(ctx_.rank, FaultKind::kQuorumLost, it_);
    replica_->optimizer_step(it_, epoch_);
    ++local_steps_;
    ++sync_rounds_;
  } else if (any_sync) {
    // Injected comm faults land on this worker's clock before alignment,
    // so one slow or retrying worker drags the whole round — the paper's
    // §II-A straggler argument, reproduced at the fault layer. The round's
    // SyncCost account opens with the fault penalty; transfer/codec terms
    // are filled in once the payload has moved and its wire ratio is known.
    SyncCost cost;
    if (faults_) {
      backend_.charge_sync_faults(cost, *faults_, ctx_.rank, it_);
      sim_time_ += cost.fault_penalty_s;
    }
    double wire_ratio = 1.0;
    const bool participant = policy_->participates(sync_rounds_, ctx_.rank);
    const float weight =
        participant ? 1.f / static_cast<float>(contributors) : 0.f;
    // Open this round's measured account: the drain below then carries
    // exactly the data-plane verbs of this aggregation round (real seconds
    // and frame bytes on the tcp carrier; zero in-proc).
    replica_->take_measured();
    if (job_.strategy == StrategyKind::kEasgd) {
      // Elastic update (reference [37]): local models are pulled toward
      // the center, the center toward the worker mean. The center sits in
      // shared state; barriers order the read-update-read sequence, and
      // the group leader (not rank 0, which may be down) applies it. The
      // elastic exchange stays on the shared bus on every backend — the
      // center variable is shared memory, not a payload in flight.
      SharedCollectives& coll = *ctx_.collectives;
      replica_->optimizer_step(it_, epoch_);
      std::vector<float> params = replica_->flat_params();
      std::vector<float> diff(params.size());
      for (size_t i = 0; i < params.size(); ++i)
        diff[i] = params[i] - shared_.easgd_center[i];
      // Workers move first (using the pre-update center)...
      const float a = static_cast<float>(job_.easgd.alpha);
      for (size_t i = 0; i < params.size(); ++i)
        params[i] -= a * diff[i];
      replica_->set_flat_params(params);
      // ...then the center absorbs the mean displacement.
      coll.allreduce_mean(ctx_.rank, diff, group_);
      coll.barrier(group_);
      if (ctx_.rank == group_.leader) {
        const float b = static_cast<float>(job_.easgd.beta);
        for (size_t i = 0; i < diff.size(); ++i)
          shared_.easgd_center[i] += b * diff[i];
      }
      coll.barrier(group_);
    } else if (agg_ == AggregationMode::kGradients) {
      // Gradient payloads ride the backend's (possibly sliced) encoded data
      // plane: the backend applies its fused codec (per chunk-hop on
      // ring/tree, full vector on shared/ps — §II-D baselines), aggregates
      // slice by slice in priority order, and reports the achieved wire
      // ratio. Everyone applies the same averaged update (local models may
      // still drift through optimizer state, §III-C).
      wire_ratio = backend_.allreduce_sliced(ctx_, grads_, slices_, group_,
                                             sim_time_, delta_, weight,
                                             /*encoded=*/true);
      replica_->set_flat_grads(grads_);
      replica_->optimizer_step(it_, epoch_);
    } else {
      // Alg. 1: local update first (line 9), then parameter averaging
      // (lines 14-15) makes all replicas consistent; the slice driver
      // applies the contribution weight.
      replica_->optimizer_step(it_, epoch_);
      std::vector<float> params = replica_->flat_params();
      backend_.allreduce_sliced(ctx_, params, slices_, group_, sim_time_,
                                delta_, weight, /*encoded=*/false);
      replica_->set_flat_params(params);
    }
    time_.price_sync(cost, backend_, slices_, job_.overlap,
                     compute_factor_ * time_.backward_time(job_.batch_size),
                     wire_ratio);
    const ReplicaMeasure measured = replica_->take_measured();
    cost.measured_sync_s = measured.seconds;
    cost.measured_wire_bytes = static_cast<size_t>(measured.bytes);
    sim_time_ = backend_.allreduce_max(ctx_, sim_time_, group_) +
                cost.round_time();
    comm_bytes_ += 2.0 * static_cast<double>(cost.wire_bytes);
    sync_cost_totals_.add(cost);
    ++sync_steps_;
    ++sync_rounds_;
  } else {
    replica_->optimizer_step(it_, epoch_);
    ++local_steps_;
  }
}

bool SynchronousWorkerLoop::instrumentation_stage() {
  if (ema_enabled_) replica_->ema_update();

  // ---- worker-0 snapshots (Fig. 11) ---------------------------------------
  // A single iteration can cross several boundaries when they sit closer
  // together than one epoch step, so drain every boundary reached.
  while (is_root() && next_snapshot_ < job_.snapshot_epochs.size() &&
         static_cast<double>(it_ + 1) / steps_per_epoch_ >=
             job_.snapshot_epochs[next_snapshot_]) {
    snapshots_[job_.snapshot_epochs[next_snapshot_]] =
        replica_->flat_params();
    ++next_snapshot_;
  }

  // ---- evaluation + early stop --------------------------------------------
  if ((it_ + 1) % job_.eval_interval == 0 || it_ + 1 == job_.max_iterations) {
    double stop_vote = 0.0;
    if (is_root()) {
      // The replica evaluates under its EMA weights when one was armed.
      const EvalPoint pt = replica_->evaluate(
          it_ + 1, static_cast<double>(it_ + 1) / steps_per_epoch_,
          sim_time_);
      eval_history_.push_back(pt);
      update_bests(local_bests_, pt);
      if (target_reached(job_, pt)) stop_vote = 1.0;
      if (!std::isfinite(pt.loss)) {
        diverged_ = true;  // non-finite loss: stop instead of burning budget
        stop_vote = 1.0;
      }
    }
    // With worker 0 down the evaluation is simply missed for those
    // boundaries (degraded observability); the survivors still agree on
    // "no stop" through the group reduction.
    if (backend_.allreduce_max(ctx_, stop_vote, group_) > 0.5) {
      double diverged_vote = diverged_ ? 1.0 : 0.0;
      diverged_ = backend_.allreduce_max(ctx_, diverged_vote, group_) > 0.5;
      reached_ = !diverged_;
      return true;
    }
  }

  // ---- Δ(g) switch trigger (DESIGN.md §14) --------------------------------
  // An armed on-gradchange trigger ends the phase at the first iteration
  // past its warmup whose cluster-max Δ(g) falls to the threshold. Every
  // group member reduces the same value, so all agree on the boundary
  // bit-for-bit; the exchange is priced like a flag round.
  if (gradchange_below_ > 0.0 && it_ + 1 >= gradchange_min_iteration_) {
    const double cluster_delta = backend_.allreduce_max(ctx_, delta_, group_);
    sim_time_ += time_.flag_time();
    comm_bytes_ += static_cast<double>(group_.size) / 8.0;
    if (cluster_delta <= gradchange_below_) end_iteration_ = it_ + 1;
  }
  return false;
}

void SynchronousWorkerLoop::capture_handoff(WorkerHandoff& out) const {
  WorkerLoop::capture_handoff(out);
  out.parked = parked_;
  out.sync_steps = sync_steps_;
  out.local_steps = local_steps_;
  out.sync_rounds = sync_rounds_;
  out.sync_cost = sync_cost_totals_;
  out.grad_change = grad_change_.snapshot();
  out.ema_enabled = ema_enabled_;
  out.delta_trace = delta_trace_;
  out.grad_sq_trace = grad_sq_trace_;
  out.snapshots = snapshots_;
  out.next_snapshot = next_snapshot_;
}

void SynchronousWorkerLoop::pause_worker() {
  // The first survivor to reach the boundary drains the rejoin rendezvous
  // so workers parked for rejoin exit this phase too (idempotent for the
  // rest). A release racing the boundary still wins inside the rendezvous:
  // a released worker rejoins in whichever phase its release landed in.
  if (rejoin_) rejoin_->pause();
  WorkerLoop::pause_worker();
}

void SynchronousWorkerLoop::finish_worker() {
  // Normal exits tear the rendezvous down so a parked worker cannot outlive
  // the cluster; a casualty leaves it armed for peers still due to rejoin.
  if (rejoin_ && !casualty_) rejoin_->shutdown();
}

void SynchronousWorkerLoop::publish() {
  // selsync-lint: allow(raw-thread) -- leaf lock on SharedSyncState: held
  // for a few field writes, never across a collective or a wait.
  std::lock_guard<std::mutex> lock(shared_.mutex);
  shared_.worker_sim_time[ctx_.rank] = sim_time_;
  if (is_root()) {
    TrainResult& r = shared_.result;
    r.iterations = executed_;
    r.sync_steps = sync_steps_;
    r.local_steps = local_steps_;
    r.comm_bytes = comm_bytes_;
    r.sync_cost = sync_cost_totals_;
    r.sync_cost_recorded = job_.record_sync_cost;
    r.eval_history = std::move(eval_history_);
    if (!r.eval_history.empty()) r.final_eval = r.eval_history.back();
    r.best_top1 = local_bests_.best_top1;
    r.best_top5 = local_bests_.best_top5;
    r.best_perplexity = local_bests_.best_perplexity;
    r.reached_target = reached_;
    r.diverged = diverged_;
    r.delta_trace = std::move(delta_trace_);
    r.grad_sq_trace = std::move(grad_sq_trace_);
    r.weight_snapshots = std::move(snapshots_);
  }
}

// ---------------------------------------------------------------------------
// SSP loop
// ---------------------------------------------------------------------------

SspWorkerLoop::SspWorkerLoop(const TrainJob& job, WorkerContext& ctx,
                             Replica* replica, CommBackend& backend,
                             FaultInjector* faults, SharedSspState& shared,
                             const WorkerPhase& phase)
    : WorkerLoop(job, ctx, replica, backend, faults, phase),
      shared_(shared),
      ps_(*backend.central_store()) {
  if (const WorkerHandoff* r = phase.resume)
    crash_fired_until_ = r->crash_fired_until;
}

WorkerLoop::FaultAction SspWorkerLoop::fault_stage() {
  compute_factor_ = speed_;
  skip_ps_ = false;
  if (faults_) {
    faults_->set_current_iteration(ctx_.rank, it_);
    if (take_checkpoints_ &&
        it_ % faults_->plan().checkpoint_interval == 0) {
      replica_->save_checkpoint(it_);
      faults_->record(ctx_.rank, FaultKind::kCheckpoint, it_);
    }
    const CrashEvent* crash = faults_->crash_starting_at(ctx_.rank, it_);
    if (crash && crash->at_iteration >= crash_fired_until_) {
      crash_fired_until_ = crash->at_iteration + 1;
      faults_->record(ctx_.rank, FaultKind::kCrash, it_,
                      crash->restart
                          ? static_cast<double>(crash->downtime_iterations)
                          : -1.0);
      if (!crash->restart) {
        casualty_ = true;  // permanent: survivors carry the run
        return FaultAction::kExit;
      }
      // SSP has no collective coupling, so a restart is a plain rewind to
      // the last checkpoint: the replayed iterations are the lost work,
      // and the staleness bound then holds fast workers to the rewound
      // clock — exactly the straggler effect a real crash has.
      it_ = replica_->restore_checkpoint();
      faults_->set_current_iteration(ctx_.rank, it_);
      sim_time_ += faults_->plan().restart_cost_s;
      faults_->record(ctx_.rank, FaultKind::kRestart, it_,
                      faults_->plan().restart_cost_s);
      return FaultAction::kRetry;
    }
    if (const StragglerEvent* s =
            faults_->straggler_starting_at(ctx_.rank, it_))
      faults_->record(ctx_.rank, FaultKind::kStragglerStart, it_,
                      s->slowdown);
    compute_factor_ *= faults_->straggler_factor(ctx_.rank, it_);
    sim_time_ += message_leg_penalty(*faults_, ctx_.rank, it_);
    bool gave_up = false;
    sim_time_ += ps_retry_penalty(*faults_, ctx_.rank, it_,
                                  /*allow_give_up=*/true, &gave_up);
    skip_ps_ = gave_up;
  }
  return FaultAction::kProceed;
}

void SspWorkerLoop::data_stage() {
  epoch_ = static_cast<double>(it_) / static_cast<double>(steps_per_epoch_);
  if (!skip_ps_) {
    // Pull the (possibly stale) global parameters before loading data
    // (paper §II-C: workers "independently update the global parameters on
    // the central PS in a non-blocking manner").
    pulled_ = ps_.pull();
    replica_->set_flat_params(pulled_);
  }
  replica_->load_next_batch();
}

void SspWorkerLoop::compute_stage() {
  replica_->train_step();
  replica_->optimizer_step(it_, epoch_);
  if (skip_ps_) {
    // Degraded step: train on the stale local replica, drop this push.
    sim_time_ += compute_factor_ * time_.compute_time(job_.batch_size);
  } else {
    // One local step (momentum/Adam state stays worker-local), then push
    // the resulting parameter delta asynchronously.
    std::vector<float> delta = replica_->flat_params();
    for (size_t i = 0; i < delta.size(); ++i) delta[i] -= pulled_[i];
    ps_.apply_delta_async(delta);
    sim_time_ += compute_factor_ * time_.compute_time(job_.batch_size) +
                 time_.ssp_step_comm_time(job_.batch_size);
    comm_bytes_ += 2.0 * static_cast<double>(time_.payload_bytes());
  }
}

void SspWorkerLoop::aggregation_stage(bool) {
  executed_ = it_ + 1;
  ps_.enforce_staleness(ctx_.rank, it_ + 1, job_.ssp.staleness);
}

bool SspWorkerLoop::instrumentation_stage() {
  if (is_root() &&
      ((it_ + 1) % job_.eval_interval == 0 ||
       it_ + 1 == job_.max_iterations)) {
    replica_->set_flat_params(ps_.pull());
    const EvalPoint pt = replica_->evaluate(
        it_ + 1, static_cast<double>(it_ + 1) / steps_per_epoch_, sim_time_);
    eval_history_.push_back(pt);
    update_bests(local_bests_, pt);
    if (target_reached(job_, pt)) {
      reached_ = true;
      shared_.stop.store(true);
    }
    if (!std::isfinite(pt.loss)) {
      diverged_ = true;  // stop the cluster; the run is unrecoverable
      shared_.stop.store(true);
    }
  }
  return false;  // stop propagates through stop_requested()
}

void SspWorkerLoop::capture_handoff(WorkerHandoff& out) const {
  WorkerLoop::capture_handoff(out);
  out.crash_fired_until = crash_fired_until_;
}

void SspWorkerLoop::finish_worker() { ps_.finish(ctx_.rank); }

void SspWorkerLoop::publish() {
  // selsync-lint: allow(raw-thread) -- leaf lock on SharedSspState: held
  // for a few field writes, never across a collective or a wait.
  std::lock_guard<std::mutex> lock(shared_.mutex);
  shared_.worker_sim_time[ctx_.rank] = sim_time_;
  if (is_root()) {
    TrainResult& r = shared_.result;
    r.iterations = executed_;
    r.lssr_applicable = false;
    r.comm_bytes = comm_bytes_;
    r.eval_history = std::move(eval_history_);
    if (!r.eval_history.empty()) r.final_eval = r.eval_history.back();
    r.best_top1 = local_bests_.best_top1;
    r.best_top5 = local_bests_.best_top5;
    r.best_perplexity = local_bests_.best_perplexity;
    r.reached_target = reached_;
    r.diverged = diverged_;
  }
}

}  // namespace selsync::detail
