#include "core/replica.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "comm/socket_transport.hpp"
#include "comm/wire_format.hpp"
#include "core/trainer_internal.hpp"
#include "data/injection.hpp"
#include "optim/ema_tracker.hpp"
#include "util/timer.hpp"

namespace selsync {

namespace {

/// Transported vectors ride the ChunkCodec dense carrier (kNone layout:
/// count little-endian f32s), prefixed with their own count so frames are
/// self-describing. The job's gradient codec is NOT applied here — lossy
/// compression belongs to the backend's aggregation data plane; the
/// transport must move the exact floats or the replicas drift.
const CompressionConfig kDenseCarrier{};

void put_dense(std::vector<uint8_t>& out, const std::vector<float>& v) {
  wire::put_u32(out, static_cast<uint32_t>(v.size()));
  const std::vector<uint8_t> chunk = wire::encode_chunk(kDenseCarrier, v);
  out.insert(out.end(), chunk.begin(), chunk.end());
}

std::vector<float> get_dense(wire::Reader& in) {
  const size_t count = in.u32();
  const size_t size = count * sizeof(float);
  const uint8_t* data = in.bytes(size);
  return wire::decode_chunk(kDenseCarrier, data, size, count);
}

void put_indices(std::vector<uint8_t>& out, const std::vector<size_t>& v) {
  wire::put_u32(out, static_cast<uint32_t>(v.size()));
  for (size_t i : v) wire::put_u64(out, i);
}

std::vector<size_t> get_indices(wire::Reader& in) {
  const size_t count = in.u32();
  std::vector<size_t> v(count);
  for (size_t i = 0; i < count; ++i) v[i] = in.u64();
  return v;
}

uint16_t raw(ReplicaVerb verb) { return static_cast<uint16_t>(verb); }

// ---------------------------------------------------------------------------
// LocalReplica
// ---------------------------------------------------------------------------

class LocalReplica final : public Replica {
 public:
  LocalReplica(const TrainJob& job, std::vector<size_t> order,
               size_t local_batch)
      : job_(job),
        model_(job.model_factory(job.seed)),
        optimizer_(job.optimizer_factory()),
        loader_(job.train_data, std::move(order), local_batch) {}

  size_t param_count() override { return model_->param_count(); }

  std::vector<size_t> layer_sizes() override {
    std::vector<size_t> sizes;
    sizes.reserve(model_->params().size());
    for (const Param* p : model_->params()) sizes.push_back(p->value.size());
    return sizes;
  }

  std::vector<size_t> next_indices() override {
    return loader_.next_indices();
  }

  void load_batch(const std::vector<size_t>& indices) override {
    batch_ = job_.train_data->make_batch(indices);
  }

  void load_next_batch() override { batch_ = loader_.next_batch(); }

  void train_step() override { model_->train_step(batch_); }

  std::vector<float> train_step_grads() override {
    model_->train_step(batch_);
    return model_->get_flat_grads();
  }

  void set_flat_grads(const std::vector<float>& grads) override {
    model_->set_flat_grads(grads);
  }

  void optimizer_step(uint64_t iteration, double epoch) override {
    optimizer_->step(model_->params(), iteration, epoch);
  }

  std::vector<float> flat_params() override {
    return model_->get_flat_params();
  }

  void set_flat_params(const std::vector<float>& params) override {
    model_->set_flat_params(params);
  }

  void save_checkpoint(uint64_t iteration) override {
    detail::save_checkpoint(checkpoint_, iteration, *model_, *optimizer_,
                            loader_);
  }

  uint64_t restore_checkpoint() override {
    detail::restore_checkpoint(checkpoint_, *model_, *optimizer_, loader_);
    return checkpoint_.iteration;
  }

  void ema_init(double decay) override {
    ema_ = std::make_unique<EmaTracker>(decay);
  }

  void ema_update() override { ema_->update(*model_); }

  EvalPoint evaluate(uint64_t iteration, double epoch,
                     double sim_time) override {
    if (ema_) {
      EmaEvalScope scope(*ema_, *model_);  // evaluate the averaged weights
      return detail::make_eval_point(*model_, *job_.test_data, iteration,
                                     epoch, sim_time);
    }
    return detail::make_eval_point(*model_, *job_.test_data, iteration, epoch,
                                   sim_time);
  }

 private:
  const TrainJob& job_;
  std::unique_ptr<Model> model_;
  std::unique_ptr<Optimizer> optimizer_;
  ShardLoader loader_;
  Batch batch_;
  detail::WorkerCheckpoint checkpoint_;
  std::unique_ptr<EmaTracker> ema_;
};

// ---------------------------------------------------------------------------
// RemoteReplica — master-side proxy, one frame pair per verb
// ---------------------------------------------------------------------------

class RemoteReplica final : public Replica {
 public:
  explicit RemoteReplica(TcpConn& conn) : conn_(conn) {}

  size_t param_count() override {
    fetch_layers();
    return param_count_;
  }

  std::vector<size_t> layer_sizes() override {
    fetch_layers();
    return layer_sizes_;
  }

  std::vector<size_t> next_indices() override {
    wire::Reader in = call(ReplicaVerb::kNextIndices, {});
    std::vector<size_t> indices = get_indices(in);
    in.expect_end();
    return indices;
  }

  void load_batch(const std::vector<size_t>& indices) override {
    std::vector<uint8_t> req;
    put_indices(req, indices);
    call(ReplicaVerb::kLoadBatch, req).expect_end();
  }

  void load_next_batch() override {
    call(ReplicaVerb::kLoadNextBatch, {}).expect_end();
  }

  void train_step() override {
    call(ReplicaVerb::kTrainStep, {}).expect_end();
  }

  std::vector<float> train_step_grads() override {
    wire::Reader in = call(ReplicaVerb::kTrainStepGrads, {});
    std::vector<float> grads = get_dense(in);
    in.expect_end();
    return grads;
  }

  void set_flat_grads(const std::vector<float>& grads) override {
    std::vector<uint8_t> req;
    put_dense(req, grads);
    call(ReplicaVerb::kSetFlatGrads, req).expect_end();
  }

  void optimizer_step(uint64_t iteration, double epoch) override {
    std::vector<uint8_t> req;
    wire::put_u64(req, iteration);
    wire::put_f64(req, epoch);
    call(ReplicaVerb::kOptimizerStep, req).expect_end();
  }

  std::vector<float> flat_params() override {
    wire::Reader in = call(ReplicaVerb::kFlatParams, {});
    std::vector<float> params = get_dense(in);
    in.expect_end();
    return params;
  }

  void set_flat_params(const std::vector<float>& params) override {
    std::vector<uint8_t> req;
    put_dense(req, params);
    call(ReplicaVerb::kSetFlatParams, req).expect_end();
  }

  void save_checkpoint(uint64_t iteration) override {
    std::vector<uint8_t> req;
    wire::put_u64(req, iteration);
    call(ReplicaVerb::kSaveCheckpoint, req).expect_end();
  }

  uint64_t restore_checkpoint() override {
    wire::Reader in = call(ReplicaVerb::kRestoreCheckpoint, {});
    const uint64_t iteration = in.u64();
    in.expect_end();
    return iteration;
  }

  void ema_init(double decay) override {
    std::vector<uint8_t> req;
    wire::put_f64(req, decay);
    call(ReplicaVerb::kEmaInit, req).expect_end();
  }

  void ema_update() override {
    call(ReplicaVerb::kEmaUpdate, {}).expect_end();
  }

  EvalPoint evaluate(uint64_t iteration, double epoch,
                     double sim_time) override {
    std::vector<uint8_t> req;
    wire::put_u64(req, iteration);
    wire::put_f64(req, epoch);
    wire::put_f64(req, sim_time);
    wire::Reader in = call(ReplicaVerb::kEvaluate, req);
    EvalPoint pt;
    pt.iteration = in.u64();
    pt.epoch = in.f64();
    pt.sim_time_s = in.f64();
    pt.loss = in.f64();
    pt.top1 = in.f64();
    pt.top5 = in.f64();
    pt.perplexity = in.f64();
    in.expect_end();
    return pt;
  }

  ReplicaMeasure take_measured() override {
    const ReplicaMeasure m = measured_;
    measured_ = {};
    return m;
  }

 private:
  /// One round trip: send the verb frame, await the echo frame. A kError
  /// answer rethrows the worker's message; any other verb is a protocol
  /// desync. The Reader holds the response alive via resp_.
  wire::Reader call(ReplicaVerb verb, const std::vector<uint8_t>& req) {
    WallTimer timer;
    send_frame(conn_, raw(verb), req);
    uint16_t got = 0;
    resp_ = recv_frame(conn_, &got);
    measured_.seconds += timer.elapsed_s();
    measured_.bytes +=
        2 * wire::kHeaderBytes + req.size() + resp_.size();
    if (got == raw(ReplicaVerb::kError)) {
      wire::Reader in(resp_);
      const size_t len = in.u32();
      const uint8_t* text = in.bytes(len);
      throw std::runtime_error(
          "replica worker failed: " +
          std::string(reinterpret_cast<const char*>(text), len));
    }
    if (got != raw(verb))
      throw wire::WireFormatError(
          "protocol desync: sent verb " + std::to_string(raw(verb)) +
          ", peer answered verb " + std::to_string(got));
    return wire::Reader(resp_);
  }

  void fetch_layers() {
    if (!layer_sizes_.empty()) return;
    wire::Reader in = call(ReplicaVerb::kLayerSizes, {});
    layer_sizes_ = get_indices(in);
    in.expect_end();
    param_count_ = 0;
    for (size_t s : layer_sizes_) param_count_ += s;
  }

  TcpConn& conn_;
  std::vector<uint8_t> resp_;
  ReplicaMeasure measured_;
  std::vector<size_t> layer_sizes_;
  size_t param_count_ = 0;
};

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

class InprocSession final : public TransportSession {
 public:
  explicit InprocSession(const TrainJob& job)
      : job_(job),
        partition_(make_partition(job.partition, *job.train_data, job.workers,
                                  job.labels_per_worker, job.seed ^ 0xDA7AULL)),
        local_batch_(replica_local_batch(job)) {}

  std::unique_ptr<Replica> make_replica(size_t rank) override {
    return make_local_replica(job_, partition_.worker_order[rank],
                              local_batch_);
  }

 private:
  const TrainJob& job_;
  const Partition partition_;
  const size_t local_batch_;
};

class TcpSession final : public TransportSession {
 public:
  explicit TcpSession(const TrainJob& job)
      : job_(job), listener_(job.tcp.port) {
    conns_.resize(job.workers);
    pids_.assign(job.workers, -1);
    try {
      bootstrap();
    } catch (...) {
      // The ctor failing (a worker never dialed in, a bad Hello) must not
      // leak children: kill and reap before rethrowing.
      for (TcpConn& conn : conns_) {
        conn.shutdown();
        conn.close();
      }
      reap(/*patience_s=*/0.5);
      throw;
    }
  }

  ~TcpSession() override { finish(); }

  std::unique_ptr<Replica> make_replica(size_t rank) override {
    return std::make_unique<RemoteReplica>(conns_[rank]);
  }

  void abort() override {
    // shutdown() (not close()) so fds stay valid under worker threads still
    // blocked in recv — they wake with SocketError and unwind.
    for (TcpConn& conn : conns_) conn.shutdown();
  }

  void finish() override {
    for (TcpConn& conn : conns_) {
      if (!conn.open()) continue;
      try {
        send_frame(conn, raw(ReplicaVerb::kShutdown), {});
        uint16_t verb = 0;
        recv_frame(conn, &verb);  // the ack; content irrelevant
      } catch (...) {
        // Peer already gone (aborted run, chaos kill): reaped below.
      }
      conn.close();
    }
    reap(/*patience_s=*/5.0);
  }

 private:
  void bootstrap() {
    const uint16_t port = listener_.port();
    if (job_.tcp.spawn_workers) {
      for (size_t rank = 0; rank < job_.workers; ++rank) {
        const pid_t pid = ::fork();
        if (pid < 0)
          throw SocketError(std::string("fork: ") + std::strerror(errno));
        if (pid == 0) {
          // Child = worker process. The whole job closure — datasets, model
          // factories, lambdas — arrived through fork, so even jobs that
          // could never be serialized (the golden grid's in-code factories)
          // run over a real wire. _Exit skips atexit/static teardown that
          // belongs to the parent.
          listener_.close();
          try {
            if (job_.tcp.child_main)
              job_.tcp.child_main(job_, rank, port);
            else
              serve_tcp_worker(job_, rank, "127.0.0.1", port);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "selsync worker %zu: %s\n", rank, e.what());
            std::_Exit(1);
          } catch (...) {
            std::_Exit(1);
          }
          std::_Exit(0);
        }
        pids_[rank] = pid;
      }
    }
    const uint64_t expected = job_fingerprint(job_);
    for (size_t i = 0; i < job_.workers; ++i) {
      TcpConn conn = listener_.accept(job_.tcp.accept_timeout_s);
      uint16_t verb = 0;
      const std::vector<uint8_t> hello = recv_frame(conn, &verb);
      if (verb != raw(ReplicaVerb::kHello))
        throw wire::WireFormatError(
            "bootstrap: expected a Hello frame, got verb " +
            std::to_string(verb));
      wire::Reader in(hello);
      const size_t rank = in.u32();
      const uint64_t fingerprint = in.u64();
      in.expect_end();
      if (rank >= job_.workers)
        throw std::invalid_argument(
            "bootstrap: worker dialed in as rank " + std::to_string(rank) +
            " but the job has " + std::to_string(job_.workers) + " workers");
      if (conns_[rank].open())
        throw std::invalid_argument("bootstrap: rank " + std::to_string(rank) +
                                    " dialed in twice");
      if (fingerprint != expected)
        throw std::invalid_argument(
            "bootstrap: rank " + std::to_string(rank) +
            " was launched with a different job configuration (fingerprint "
            "mismatch) — selsync_worker must get the same workload flags as "
            "the master");
      std::vector<uint8_t> ack;
      wire::put_u32(ack, static_cast<uint32_t>(rank));
      send_frame(conn, raw(ReplicaVerb::kHelloAck), ack);
      conns_[rank] = std::move(conn);
    }
    listener_.close();
  }

  /// Reaps every forked child, waiting up to `patience_s` each before
  /// escalating to SIGKILL — a wedged worker must not hang the master.
  void reap(double patience_s) {
    for (pid_t& pid : pids_) {
      if (pid <= 0) continue;
      const int spins = static_cast<int>(patience_s * 100.0);
      bool reaped = false;
      for (int spin = 0; spin <= spins; ++spin) {
        int status = 0;
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r != 0) {
          reaped = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      if (!reaped) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
      }
      pid = -1;
    }
  }

  const TrainJob& job_;
  TcpListener listener_;
  std::vector<TcpConn> conns_;
  std::vector<pid_t> pids_;
};

// ---------------------------------------------------------------------------
// serve_replica dispatch (worker-process side)
// ---------------------------------------------------------------------------

std::vector<uint8_t> dispatch(Replica& replica, ReplicaVerb verb,
                              const std::vector<uint8_t>& req) {
  wire::Reader in(req);
  std::vector<uint8_t> resp;
  switch (verb) {
    case ReplicaVerb::kLayerSizes:
      in.expect_end();
      put_indices(resp, replica.layer_sizes());
      return resp;
    case ReplicaVerb::kNextIndices:
      in.expect_end();
      put_indices(resp, replica.next_indices());
      return resp;
    case ReplicaVerb::kLoadBatch: {
      const std::vector<size_t> indices = get_indices(in);
      in.expect_end();
      replica.load_batch(indices);
      return resp;
    }
    case ReplicaVerb::kLoadNextBatch:
      in.expect_end();
      replica.load_next_batch();
      return resp;
    case ReplicaVerb::kTrainStep:
      in.expect_end();
      replica.train_step();
      return resp;
    case ReplicaVerb::kTrainStepGrads:
      in.expect_end();
      put_dense(resp, replica.train_step_grads());
      return resp;
    case ReplicaVerb::kSetFlatGrads: {
      const std::vector<float> grads = get_dense(in);
      in.expect_end();
      replica.set_flat_grads(grads);
      return resp;
    }
    case ReplicaVerb::kOptimizerStep: {
      const uint64_t iteration = in.u64();
      const double epoch = in.f64();
      in.expect_end();
      replica.optimizer_step(iteration, epoch);
      return resp;
    }
    case ReplicaVerb::kFlatParams:
      in.expect_end();
      put_dense(resp, replica.flat_params());
      return resp;
    case ReplicaVerb::kSetFlatParams: {
      const std::vector<float> params = get_dense(in);
      in.expect_end();
      replica.set_flat_params(params);
      return resp;
    }
    case ReplicaVerb::kSaveCheckpoint: {
      const uint64_t iteration = in.u64();
      in.expect_end();
      replica.save_checkpoint(iteration);
      return resp;
    }
    case ReplicaVerb::kRestoreCheckpoint:
      in.expect_end();
      wire::put_u64(resp, replica.restore_checkpoint());
      return resp;
    case ReplicaVerb::kEmaInit: {
      const double decay = in.f64();
      in.expect_end();
      replica.ema_init(decay);
      return resp;
    }
    case ReplicaVerb::kEmaUpdate:
      in.expect_end();
      replica.ema_update();
      return resp;
    case ReplicaVerb::kEvaluate: {
      const uint64_t iteration = in.u64();
      const double epoch = in.f64();
      const double sim_time = in.f64();
      in.expect_end();
      const EvalPoint pt = replica.evaluate(iteration, epoch, sim_time);
      wire::put_u64(resp, pt.iteration);
      wire::put_f64(resp, pt.epoch);
      wire::put_f64(resp, pt.sim_time_s);
      wire::put_f64(resp, pt.loss);
      wire::put_f64(resp, pt.top1);
      wire::put_f64(resp, pt.top5);
      wire::put_f64(resp, pt.perplexity);
      return resp;
    }
    case ReplicaVerb::kHello:
    case ReplicaVerb::kHelloAck:
    case ReplicaVerb::kShutdown:
    case ReplicaVerb::kError:
      break;  // handshake/teardown verbs never reach the dispatcher
  }
  throw wire::WireFormatError("unknown replica verb " +
                              std::to_string(raw(verb)));
}

}  // namespace

std::unique_ptr<Replica> make_local_replica(const TrainJob& job,
                                            std::vector<size_t> order,
                                            size_t local_batch) {
  return std::make_unique<LocalReplica>(job, std::move(order), local_batch);
}

size_t replica_local_batch(const TrainJob& job) {
  if (job.strategy != StrategyKind::kSsp && job.injection.enabled)
    return injection_adjusted_batch(job.batch_size, job.injection.alpha,
                                    job.injection.beta, job.workers);
  return job.batch_size;
}

uint64_t job_fingerprint(const TrainJob& job) {
  std::vector<uint8_t> buf;
  wire::put_u64(buf, job.workers);
  wire::put_u64(buf, job.batch_size);
  wire::put_u64(buf, job.max_iterations);
  wire::put_u64(buf, job.eval_interval);
  wire::put_u64(buf, job.seed);
  wire::put_u64(buf, job.labels_per_worker);
  wire::put_u64(buf, job.ps_shards);
  wire::put_u64(buf, job.slices);
  wire::put_u16(buf, static_cast<uint16_t>(job.strategy));
  wire::put_u16(buf, static_cast<uint16_t>(job.partition));
  wire::put_u16(buf, static_cast<uint16_t>(job.backend));
  wire::put_u16(buf, static_cast<uint16_t>(job.compression.kind));
  wire::put_f64(buf, job.selsync.delta);
  wire::put_f64(buf, job.ema_decay);
  // FNV-1a 64.
  uint64_t h = 1469598103934665603ULL;
  for (uint8_t b : buf) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

void serve_replica(TcpConn& conn, Replica& replica, size_t max_verbs) {
  for (size_t served = 0; served < max_verbs; ++served) {
    uint16_t verb_raw = 0;
    const std::vector<uint8_t> req = recv_frame(conn, &verb_raw);
    const ReplicaVerb verb = static_cast<ReplicaVerb>(verb_raw);
    if (verb == ReplicaVerb::kShutdown) {
      send_frame(conn, verb_raw, {});
      return;
    }
    std::vector<uint8_t> resp;
    try {
      resp = dispatch(replica, verb, req);
    } catch (const std::exception& e) {
      // Ship the reason before dying: the master turns it into
      // "replica worker failed: ..." on the issuing thread.
      std::vector<uint8_t> err;
      const std::string what = e.what();
      wire::put_u32(err, static_cast<uint32_t>(what.size()));
      err.insert(err.end(), what.begin(), what.end());
      send_frame(conn, raw(ReplicaVerb::kError), err);
      throw;
    }
    send_frame(conn, verb_raw, resp);
  }
}

void serve_tcp_worker(const TrainJob& job, size_t rank,
                      const std::string& host, uint16_t port) {
  const Partition partition =
      make_partition(job.partition, *job.train_data, job.workers,
                     job.labels_per_worker, job.seed ^ 0xDA7AULL);
  std::unique_ptr<Replica> replica = make_local_replica(
      job, partition.worker_order[rank], replica_local_batch(job));
  TcpConn conn = tcp_connect(host, port, job.tcp.connect_timeout_s);
  std::vector<uint8_t> hello;
  wire::put_u32(hello, static_cast<uint32_t>(rank));
  wire::put_u64(hello, job_fingerprint(job));
  send_frame(conn, raw(ReplicaVerb::kHello), hello);
  uint16_t verb = 0;
  const std::vector<uint8_t> ack = recv_frame(conn, &verb);
  if (verb != raw(ReplicaVerb::kHelloAck))
    throw wire::WireFormatError("handshake: expected HelloAck, got verb " +
                                std::to_string(verb));
  wire::Reader in(ack);
  const size_t echoed = in.u32();
  in.expect_end();
  if (echoed != rank)
    throw wire::WireFormatError(
        "handshake: master acked rank " + std::to_string(echoed) +
        " instead of " + std::to_string(rank));
  serve_replica(conn, *replica);
}

std::unique_ptr<TransportSession> open_transport(const TrainJob& job) {
  if (job.transport == TransportKind::kTcp)
    return std::make_unique<TcpSession>(job);
  return std::make_unique<InprocSession>(job);
}

}  // namespace selsync
