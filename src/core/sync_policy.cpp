#include "core/sync_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace selsync {

FedAvgPolicy::FedAvgPolicy(const FedAvgConfig& config, size_t workers,
                           uint64_t steps_per_epoch, uint64_t seed)
    : workers_(workers), seed_(seed) {
  interval_ = static_cast<uint64_t>(std::llround(
      config.sync_factor * static_cast<double>(steps_per_epoch)));
  interval_ = std::max<uint64_t>(interval_, 1);
  participants_ = static_cast<size_t>(std::llround(
      config.participation * static_cast<double>(workers)));
  participants_ = std::clamp<size_t>(participants_, 1, workers);
}

bool FedAvgPolicy::participates(uint64_t sync_round, size_t rank) const {
  if (participants_ == workers_) return true;
  // Same seed on every worker -> identical sample without coordination.
  Rng rng(seed_ ^ (sync_round * 0xA24BAED4963EE407ULL + 5));
  const auto picks = rng.sample_without_replacement(workers_, participants_);
  return std::find(picks.begin(), picks.end(), rank) != picks.end();
}

std::unique_ptr<SyncPolicy> make_sync_policy(const TrainJob& job) {
  switch (job.strategy) {
    case StrategyKind::kBsp:
      return std::make_unique<BspPolicy>(job.workers);
    case StrategyKind::kLocalSgd:
      return std::make_unique<LocalSgdPolicy>(job.workers);
    case StrategyKind::kFedAvg:
      return std::make_unique<FedAvgPolicy>(job.fedavg, job.workers,
                                            job.steps_per_epoch(), job.seed);
    case StrategyKind::kSelSync:
      return std::make_unique<SelSyncPolicy>(job.selsync.delta, job.workers);
    case StrategyKind::kEasgd:
      return std::make_unique<EasgdPolicy>(job.easgd.tau, job.workers);
    case StrategyKind::kSsp:
      throw std::invalid_argument(
          "make_sync_policy: SSP is asynchronous and has no sync policy");
  }
  throw std::invalid_argument("make_sync_policy: unknown strategy");
}

}  // namespace selsync
