#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace selsync {

namespace {

constexpr char kMagic[8] = {'S', 'S', 'C', 'K', 'P', 'T', '0', '1'};

void write_u64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t read_u64(std::istream& in) {
  uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return v;
}

void check_magic(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("checkpoint: bad magic (not a checkpoint file?)");
}

}  // namespace

void save_checkpoint(const std::string& path, Model& model,
                     const Optimizer* optimizer, uint64_t iteration) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);

  out.write(kMagic, sizeof(kMagic));
  write_u64(out, iteration);

  const std::vector<float> params = model.get_flat_params();
  write_u64(out, params.size());
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));

  std::ostringstream opt_state;
  if (optimizer) optimizer->save_state(opt_state);
  const std::string blob = opt_state.str();
  write_u64(out, blob.size());
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));

  if (!out) throw std::runtime_error("checkpoint: write failed for " + path);
}

CheckpointInfo load_checkpoint(const std::string& path, Model& model,
                               Optimizer* optimizer) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  check_magic(in);

  CheckpointInfo info;
  info.iteration = read_u64(in);
  info.param_count = read_u64(in);
  if (info.param_count != model.param_count())
    throw std::runtime_error(
        "checkpoint: parameter count mismatch (file " +
        std::to_string(info.param_count) + ", model " +
        std::to_string(model.param_count()) + ")");

  std::vector<float> params(info.param_count);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!in) throw std::runtime_error("checkpoint: truncated parameters");
  model.set_flat_params(params);

  const uint64_t blob_size = read_u64(in);
  std::string blob(blob_size, '\0');
  in.read(blob.data(), static_cast<std::streamsize>(blob_size));
  if (!in) throw std::runtime_error("checkpoint: truncated optimizer state");
  if (optimizer && blob_size > 0) {
    std::istringstream opt_state(blob);
    optimizer->load_state(opt_state);
  }
  return info;
}

CheckpointInfo peek_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  check_magic(in);
  CheckpointInfo info;
  info.iteration = read_u64(in);
  info.param_count = read_u64(in);
  return info;
}

}  // namespace selsync
