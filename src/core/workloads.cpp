#include "core/workloads.hpp"

#include <stdexcept>

#include "core/metrics.hpp"

namespace selsync {

namespace {

SyntheticClassData& resnet_data() {
  static SyntheticClassData data = [] {
    SyntheticClassConfig cfg;
    cfg.train_samples = 4096;
    cfg.test_samples = 768;
    cfg.classes = 10;
    cfg.feature_dim = 48;
    cfg.class_separation = 2.0;  // hard enough that every update matters
    cfg.noise_stddev = 1.0;
    cfg.seed = 21;
    return make_synthetic_classification(cfg);
  }();
  return data;
}

SyntheticClassData& vgg_data() {
  static SyntheticClassData data = [] {
    SyntheticClassConfig cfg;
    cfg.train_samples = 4096;
    cfg.test_samples = 768;
    cfg.classes = 20;  // CIFAR100's "many labels" role at tractable size
    cfg.image_mode = true;
    cfg.channels = 3;
    cfg.height = 8;
    cfg.width = 8;
    cfg.class_separation = 0.8;  // keep the task non-trivial for the convnet
    cfg.noise_stddev = 1.2;
    cfg.seed = 22;
    return make_synthetic_classification(cfg);
  }();
  return data;
}

SyntheticClassData& alexnet_data() {
  static SyntheticClassData data = [] {
    SyntheticClassConfig cfg;
    cfg.train_samples = 4096;
    cfg.test_samples = 768;
    cfg.classes = 32;  // many labels, so top-5 does not saturate
    cfg.image_mode = true;
    cfg.channels = 3;
    cfg.height = 8;
    cfg.width = 8;
    cfg.class_separation = 0.55;
    cfg.noise_stddev = 1.4;
    cfg.seed = 23;
    return make_synthetic_classification(cfg);
  }();
  return data;
}

SyntheticTextData& transformer_data() {
  static SyntheticTextData data = [] {
    SyntheticTextConfig cfg;
    cfg.train_tokens = 40000;
    cfg.test_tokens = 6000;
    cfg.vocab = 48;
    cfg.seq_len = 12;
    cfg.seed = 24;
    return make_synthetic_text(cfg);
  }();
  return data;
}

}  // namespace

Workload workload_resnet() {
  Workload w;
  w.name = "ResNet101";
  w.train = resnet_data().train;
  w.test = resnet_data().test;
  w.model_factory = [](uint64_t seed) {
    ClassifierConfig cfg;
    cfg.input_dim = 48;
    cfg.classes = 10;
    cfg.hidden = 48;
    cfg.resnet_blocks = 3;
    return make_resnet_mlp(cfg, seed);
  };
  // Paper: SGD lr 0.1, momentum 0.9, wd 4e-4, x0.1 after epochs 110/150;
  // our runs span ~40 epochs, so the decay points scale to 12/24.
  w.optimizer_factory = [] {
    return std::make_unique<Sgd>(
        std::make_shared<EpochStepDecay>(0.1, std::vector<double>{12.0, 24.0},
                                         0.1),
        SgdOptions{.momentum = 0.9, .weight_decay = 4e-4});
  };
  w.profile = paper_resnet101();
  return w;
}

Workload workload_vgg() {
  Workload w;
  w.name = "VGG11";
  w.train = vgg_data().train;
  w.test = vgg_data().test;
  w.model_factory = [](uint64_t seed) {
    ClassifierConfig cfg;
    cfg.channels = 3;
    cfg.height = 8;
    cfg.width = 8;
    cfg.classes = 20;
    cfg.hidden = 48;
    return make_vggnet(cfg, seed);
  };
  // Paper: SGD lr 0.01, momentum 0.9, wd 5e-4, x0.1 after epochs 50/75
  // (scaled to 10/20). The conv net needs a slightly hotter start at our
  // scale, so we keep the paper's relative decay schedule on lr 0.05.
  w.optimizer_factory = [] {
    return std::make_unique<Sgd>(
        std::make_shared<EpochStepDecay>(0.05, std::vector<double>{10.0, 20.0},
                                         0.1),
        SgdOptions{.momentum = 0.9, .weight_decay = 5e-4});
  };
  w.profile = paper_vgg11();
  return w;
}

Workload workload_alexnet() {
  Workload w;
  w.name = "AlexNet";
  w.top5_metric = true;
  w.train = alexnet_data().train;
  w.test = alexnet_data().test;
  w.model_factory = [](uint64_t seed) {
    ClassifierConfig cfg;
    cfg.channels = 3;
    cfg.height = 8;
    cfg.width = 8;
    cfg.classes = 32;
    cfg.hidden = 48;
    return make_alexnet_like(cfg, seed);
  };
  // Paper: Adam with fixed lr 1e-4 (scaled up for the small model).
  w.optimizer_factory = [] {
    return std::make_unique<Adam>(std::make_shared<ConstantLr>(1e-3));
  };
  w.profile = paper_alexnet();
  w.batch_size = 32;  // the paper uses the largest batch here (128)
  return w;
}

Workload workload_transformer() {
  Workload w;
  w.name = "Transformer";
  w.is_lm = true;
  w.train = transformer_data().train;
  w.test = transformer_data().test;
  w.model_factory = [](uint64_t seed) {
    TransformerConfig cfg;
    cfg.vocab = 48;
    cfg.model_dim = 24;
    cfg.ff_dim = 48;
    cfg.num_heads = 2;
    cfg.num_layers = 2;
    cfg.seq_len = 12;
    cfg.dropout = 0.1f;
    return std::make_unique<TransformerLM>(cfg, seed);
  };
  // Paper: SGD lr 2.0, x0.8 every 2000 iterations (scaled to every 200).
  // lr 0.25: hot enough for fast convergence, cool enough that long local
  // phases (FedAvg/SelSync) remain stable.
  w.optimizer_factory = [] {
    return std::make_unique<Sgd>(
        std::make_shared<IterationExpDecay>(0.25, 200, 0.8));
  };
  w.profile = paper_transformer();
  w.batch_size = 4;
  return w;
}

std::vector<Workload> all_workloads() {
  return {workload_resnet(), workload_vgg(), workload_alexnet(),
          workload_transformer()};
}

TrainJob make_job(const Workload& w, StrategyKind strategy, size_t workers,
                  uint64_t max_iterations) {
  TrainJob job;
  job.strategy = strategy;
  job.workers = workers;
  job.batch_size = w.batch_size;
  job.max_iterations = max_iterations;
  job.eval_interval = 50;
  job.train_data = w.train;
  job.test_data = w.test;
  job.partition = PartitionScheme::kSelSync;
  job.model_factory = w.model_factory;
  job.optimizer_factory = w.optimizer_factory;
  job.paper_model = w.profile;
  job.device = device_v100();
  job.network = paper_network_5gbps();
  return job;
}

double primary_metric(const Workload& w, const EvalPoint& pt) {
  if (w.is_lm) return pt.perplexity;
  return w.top5_metric ? pt.top5 : pt.top1;
}

bool metric_improves(const Workload& w, double candidate, double incumbent) {
  return w.is_lm ? candidate < incumbent : candidate > incumbent;
}

const char* metric_name(const Workload& w) {
  if (w.is_lm) return "perplexity";
  return w.top5_metric ? "top5-acc" : "top1-acc";
}

Workload workload_by_name(const std::string& name) {
  for (Workload& w : all_workloads())
    if (w.name == name) return w;
  throw std::invalid_argument("unknown workload: " + name +
                              " (expected ResNet101, VGG11, AlexNet or "
                              "Transformer)");
}

}  // namespace selsync
