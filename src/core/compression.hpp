// Gradient compression baselines (paper §II-D): Top-k sparsification
// (DGC/Top-k), sign quantization (signSGD) and 8-bit linear quantization
// (Terngrad-family). SelSync is positioned against these: they shrink each
// synchronization, SelSync skips synchronizations outright.
//
// All codecs run compress->decompress in place (the simulated cluster moves
// data through shared memory; only the *wire* payload differs) and support
// DGC-style error feedback: the residual each codec drops is fed back into
// the next iteration's gradient so the update is unbiased over time.
#pragma once

#include <cstddef>
#include <vector>

namespace selsync {

enum class CompressionKind { kNone, kTopK, kSignSgd, kQuant8 };

const char* compression_kind_name(CompressionKind kind);

struct CompressionConfig {
  CompressionKind kind = CompressionKind::kNone;
  /// Fraction of entries kept by Top-k (DGC uses 0.1%-1%).
  double topk_fraction = 0.01;
  /// Enable error-feedback residual accumulation.
  bool error_feedback = true;

  /// Accordion/GraVAC-style adaptation (paper references [27]/[29]): in
  /// critical regimes — when the caller's Δ(g_i) is at or above
  /// `critical_delta` — Top-k switches to the conservative
  /// `topk_fraction_critical` so important updates ship nearly intact,
  /// reverting to the aggressive `topk_fraction` once gradients stabilize.
  bool adaptive = false;
  double critical_delta = 0.1;
  double topk_fraction_critical = 0.25;
};

class GradientCompressor {
 public:
  explicit GradientCompressor(CompressionConfig config);

  /// Applies compress->decompress to `grad` in place (adding and updating
  /// the error-feedback residual) and returns the wire payload in bytes for
  /// a gradient of this length. `delta` is the caller's current relative
  /// gradient change, consumed only by the adaptive mode.
  size_t compress(std::vector<float>& grad, double delta = 0.0);

  /// Wire bytes / uncompressed bytes for the last compress() call (1.0 for
  /// kNone). Drives the paper-scale communication cost.
  double last_wire_ratio() const { return last_ratio_; }

  const CompressionConfig& config() const { return config_; }

  /// Wire payload for a `values`-element gradient under this codec:
  ///   TopK:   k * (4 value bytes + 4 index bytes)
  ///   Sign:   1 bit per value + one scale float
  ///   Quant8: 1 byte per value + two scale floats
  static size_t wire_bytes(const CompressionConfig& config, size_t values);

 private:
  CompressionConfig config_;
  std::vector<float> residual_;
  double last_ratio_ = 1.0;
};

}  // namespace selsync
