// Per-iteration synchronization policies.
//
// Each worker holds one policy instance and casts a vote per step; the
// cluster synchronizes when the combined votes say so. SelSync is the only
// policy whose votes depend on local state (Δ(g_i)) and therefore the only
// one that needs the 1-bit flag allgather of Alg. 1; the others are
// deterministic functions of the iteration number, so every worker derives
// the cluster decision locally — exactly why BSP/FedAvg pay no flag
// exchange in the paper's overhead accounting.
#pragma once

#include <memory>

#include "core/config.hpp"

namespace selsync {

class SyncPolicy {
 public:
  virtual ~SyncPolicy() = default;

  /// This worker's vote for synchronizing at `iteration`, given its Δ(g_i).
  virtual bool local_vote(uint64_t iteration, double delta_g) const = 0;

  /// True if votes differ across workers and must be allgathered.
  virtual bool needs_flag_exchange() const = 0;

  /// Whether `rank` contributes to aggregation round `sync_round`
  /// (FedAvg's fraction C; everyone else always participates).
  virtual bool participates(uint64_t sync_round, size_t rank) const {
    (void)sync_round;
    (void)rank;
    return true;
  }

  /// Number of contributors per aggregation round.
  virtual size_t participant_count() const = 0;

  /// Aggregation rounds the cluster has seen before `iteration` when votes
  /// are pure functions of the iteration number. A crash-restarted worker
  /// realigns its round counter with this so FedAvg's per-round participant
  /// sampling stays in step with the survivors across the downtime gap.
  /// Meaningless for policies with needs_flag_exchange() (their round count
  /// depends on runtime Δ(g) votes); the default brute-force count is only a
  /// fallback — concrete policies provide O(1) closed forms.
  virtual uint64_t rounds_before(uint64_t iteration) const {
    uint64_t rounds = 0;
    for (uint64_t j = 0; j < iteration; ++j)
      if (local_vote(j, 0.0)) ++rounds;
    return rounds;
  }
};

class BspPolicy : public SyncPolicy {
 public:
  explicit BspPolicy(size_t workers) : workers_(workers) {}
  bool local_vote(uint64_t, double) const override { return true; }
  bool needs_flag_exchange() const override { return false; }
  size_t participant_count() const override { return workers_; }
  uint64_t rounds_before(uint64_t iteration) const override {
    return iteration;  // every step synchronizes
  }

 private:
  size_t workers_;
};

class LocalSgdPolicy : public SyncPolicy {
 public:
  explicit LocalSgdPolicy(size_t workers) : workers_(workers) {}
  bool local_vote(uint64_t, double) const override { return false; }
  bool needs_flag_exchange() const override { return false; }
  size_t participant_count() const override { return workers_; }
  uint64_t rounds_before(uint64_t) const override {
    return 0;  // never synchronizes
  }

 private:
  size_t workers_;
};

/// FedAvg(C, E): synchronize every round(E * steps_per_epoch) steps; a
/// deterministic pseudo-random C-fraction of workers contributes each round
/// (consistent across workers without coordination, like the paper's
/// server-driven client sampling).
class FedAvgPolicy : public SyncPolicy {
 public:
  FedAvgPolicy(const FedAvgConfig& config, size_t workers,
               uint64_t steps_per_epoch, uint64_t seed);

  bool local_vote(uint64_t iteration, double) const override {
    return (iteration + 1) % interval_ == 0;
  }
  bool needs_flag_exchange() const override { return false; }
  bool participates(uint64_t sync_round, size_t rank) const override;
  size_t participant_count() const override { return participants_; }
  uint64_t rounds_before(uint64_t iteration) const override {
    // Votes fire at iterations interval-1, 2*interval-1, ...: one round per
    // full interval completed strictly before `iteration`.
    return iteration / interval_;
  }

  uint64_t sync_interval() const { return interval_; }

 private:
  size_t workers_;
  uint64_t interval_;
  size_t participants_;
  uint64_t seed_;
};

/// EASGD(τ): elastic update every tau steps (deterministic interval; the
/// elastic math itself lives in the trainer's aggregation branch).
class EasgdPolicy : public SyncPolicy {
 public:
  EasgdPolicy(uint64_t tau, size_t workers) : tau_(tau), workers_(workers) {}

  bool local_vote(uint64_t iteration, double) const override {
    return (iteration + 1) % tau_ == 0;
  }
  bool needs_flag_exchange() const override { return false; }
  size_t participant_count() const override { return workers_; }
  uint64_t rounds_before(uint64_t iteration) const override {
    return iteration / tau_;
  }

 private:
  uint64_t tau_;
  size_t workers_;
};

/// SelSync(δ): vote when Δ(g_i) >= δ (Alg. 1 lines 10-11).
class SelSyncPolicy : public SyncPolicy {
 public:
  SelSyncPolicy(double delta, size_t workers)
      : delta_(delta), workers_(workers) {}

  bool local_vote(uint64_t, double delta_g) const override {
    return delta_g >= delta_;
  }
  bool needs_flag_exchange() const override { return true; }
  size_t participant_count() const override { return workers_; }

  double delta() const { return delta_; }

 private:
  double delta_;
  size_t workers_;
};

/// Builds the policy for `job` (SSP has no policy; it never takes the
/// bulk-synchronous path).
std::unique_ptr<SyncPolicy> make_sync_policy(const TrainJob& job);

}  // namespace selsync
