// Checkpointing: binary save/restore of a model replica (flat parameters),
// its optimizer state and the training position, so long runs can resume
// after interruption — and so experiments can branch from a common warm
// state (e.g. the Fig. 11 weight-distribution runs).
//
// Format (little-endian, versioned):
//   magic "SSCKPT01"
//   u64 iteration
//   u64 param_count,  float[param_count] parameters
//   u64 optimizer_state_size, bytes (opaque, produced by Optimizer)
#pragma once

#include <cstdint>
#include <string>

#include "nn/model.hpp"
#include "optim/optimizer.hpp"

namespace selsync {

struct CheckpointInfo {
  uint64_t iteration = 0;
  size_t param_count = 0;
};

/// Writes model parameters, optimizer state (if any) and the iteration
/// counter to `path`. Throws on I/O failure.
void save_checkpoint(const std::string& path, Model& model,
                     const Optimizer* optimizer, uint64_t iteration);

/// Restores a checkpoint into `model` (and `optimizer` when provided; pass
/// the same optimizer type that wrote the file). Returns the stored
/// metadata. Throws on corrupt/missing files or a parameter-count mismatch.
CheckpointInfo load_checkpoint(const std::string& path, Model& model,
                               Optimizer* optimizer);

/// Reads only the header (cheap existence/compatibility probe).
CheckpointInfo peek_checkpoint(const std::string& path);

}  // namespace selsync
