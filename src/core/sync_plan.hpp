// SyncPlan: mid-run strategy/backend switching (DESIGN.md §14).
//
// The paper's core claim is that the best synchronization choice is
// workload-dependent; Sync-Switch (PAPERS.md) shows it is also
// *time*-dependent — hybrid BSP→asynchronous schedules beat either pure
// policy — and ACE-Sync argues the knobs (codec, shards, strategy) should
// adapt as the run evolves. A SyncPlan encodes such a schedule: an ordered
// list of switch points, each carrying the config overrides the next phase
// applies on top of the base TrainJob and a trigger that says when the
// switch happens — a fixed iteration count, or the cluster's Δ(g) statistic
// dropping below a threshold (closing the adaptive loop the paper only
// gestures at).
//
// Execution is phased: the trainer runs the base job until the first
// trigger fires, drains the backend at that iteration boundary, hands its
// state (codec residuals, central store, SSP clocks — comm/comm_backend.hpp
// BackendHandoff) plus each worker's loop state (core/handoff.hpp) to the
// next phase's backend, and resumes. An empty plan is exactly the legacy
// single-phase run; the run-record serializer emits nothing for it, so the
// golden records stay byte-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "comm/comm_backend.hpp"
#include "comm/compression.hpp"
#include "util/enum_names.hpp"

namespace selsync {

enum class StrategyKind;
struct TrainJob;

/// What fires a switch point.
enum class SwitchTriggerKind { kAtIteration, kOnGradChange };

/// Display names, used by the run-record serializer (pinned spellings);
/// selsync_lint (enum-table) keeps both tables in lockstep with the
/// enumerator list above.
inline constexpr EnumEntry<SwitchTriggerKind> kSwitchTriggerKindNames[] = {
    {SwitchTriggerKind::kAtIteration, "AtIteration"},
    {SwitchTriggerKind::kOnGradChange, "OnGradChange"},
};

/// The trigger spellings accepted by the CLI tools.
inline constexpr EnumEntry<SwitchTriggerKind> kSwitchTriggerKindCliNames[] = {
    {SwitchTriggerKind::kAtIteration, "at-iteration"},
    {SwitchTriggerKind::kOnGradChange, "on-gradchange"},
};

const char* switch_trigger_kind_name(SwitchTriggerKind kind);

/// "at-iteration" | "on-gradchange" -> kind; nullopt for anything else.
std::optional<SwitchTriggerKind> switch_trigger_kind_from_name(
    std::string_view name);

/// The accepted trigger spellings, for CLI help and error messages.
std::string switch_trigger_kind_names();

/// When a phase starts. kAtIteration fires when every worker reaches
/// `at_iteration` (the phase boundary is a plain iteration count, so DES
/// and thread runs replay the identical schedule). kOnGradChange fires at
/// the first iteration >= `min_iteration` whose cluster-max Δ(g) is at or
/// below `gradchange_below` — evaluated on the control plane, so every
/// worker agrees on the boundary bit-for-bit.
struct SwitchTrigger {
  SwitchTriggerKind kind = SwitchTriggerKind::kAtIteration;
  uint64_t at_iteration = 0;
  double gradchange_below = 0.0;
  /// Warmup floor for kOnGradChange: the EWMA needs observations before
  /// Δ(g) means anything, so the trigger stays cold before this iteration.
  uint64_t min_iteration = 0;
};

/// One switch point: the trigger that starts the phase plus the config
/// overrides it applies on top of the base TrainJob. Unset fields keep the
/// base job's value, so a phase with no overrides is the degenerate switch
/// (same config, fresh backend) the parity tier pins bit-exact.
struct SyncPhase {
  SwitchTrigger trigger;
  std::optional<StrategyKind> strategy;
  std::optional<BackendKind> backend;
  std::optional<CompressionConfig> compression;
  std::optional<size_t> slices;
  std::optional<size_t> ps_shards;
};

/// An ordered switch schedule. `phases` holds the switch points only — the
/// base TrainJob is phase 0 — so empty() means the legacy single-phase run.
struct SyncPlan {
  std::vector<SyncPhase> phases;

  bool empty() const { return phases.empty(); }
  /// Total execution phases: the base phase plus one per switch point.
  size_t phase_count() const { return phases.size() + 1; }
};

/// Parses a `--switch-to` phase spec: either a bare strategy name
/// ("selsync") or comma-separated `key=value` overrides with keys
/// `strategy`, `backend`, `codec`, `slices`, `ps-shards`
/// ("strategy=selsync,backend=ring,codec=topk,slices=4,ps-shards=2").
/// Throws std::invalid_argument with a pointed message on anything else.
/// The returned phase has a default trigger — the caller sets it.
SyncPhase parse_sync_phase_spec(std::string_view spec);

/// The TrainJob executed for phase `index` (0 = the base job): the base
/// config with every override of plan phase index-1 applied and the
/// sync_plan itself cleared, so the derived job validates and runs as a
/// plain single-phase job.
TrainJob derive_phase_job(const TrainJob& base, size_t index);

/// Per-phase validation (the TrainJob::validate() slice for plans): checks
/// trigger ordering/ranges, rejects schedules the runtime cannot execute
/// (a Δ(g) trigger ending an SSP phase, crash plans mixing the synchronous
/// and SSP loop families), and re-validates every derived phase job so an
/// invalid *later* phase fails at parse time with the phase index in the
/// message, not mid-run.
void validate_sync_plan(const TrainJob& job);

}  // namespace selsync
