#include "core/trainer_internal.hpp"

#include <algorithm>
#include <sstream>

namespace selsync::detail {

double ewma_alpha_for(const TrainJob& job) {
  if (job.selsync.ewma_alpha > 0.0) return std::min(job.selsync.ewma_alpha, 1.0);
  // Paper: smoothing factor N/100 (0.16 for a 16-node cluster).
  return std::clamp(static_cast<double>(job.workers) / 100.0, 0.02, 1.0);
}

double sq_norm(const std::vector<float>& v) {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * x;
  return s;
}

EvalPoint make_eval_point(Model& model, const Dataset& test, uint64_t iteration,
                          double epoch, double sim_time) {
  const EvalStats stats =
      evaluate_dataset(model, test, std::min<size_t>(kEvalBatch, test.size()));
  EvalPoint pt;
  pt.iteration = iteration;
  pt.epoch = epoch;
  pt.sim_time_s = sim_time;
  pt.loss = stats.mean_loss();
  pt.top1 = stats.top1_accuracy();
  pt.top5 = stats.top5_accuracy();
  pt.perplexity = stats.perplexity();
  return pt;
}

bool target_reached(const TrainJob& job, const EvalPoint& pt) {
  if (job.target_top1 && pt.top1 >= *job.target_top1) return true;
  if (job.target_perplexity && pt.perplexity <= *job.target_perplexity)
    return true;
  return false;
}

void update_bests(TrainResult& result, const EvalPoint& pt) {
  result.best_top1 = std::max(result.best_top1, pt.top1);
  result.best_top5 = std::max(result.best_top5, pt.top5);
  result.best_perplexity = std::min(result.best_perplexity, pt.perplexity);
}

AggregationMode aggregation_for(const TrainJob& job) {
  switch (job.strategy) {
    case StrategyKind::kBsp:
      return AggregationMode::kGradients;  // classic BSP allreduce
    case StrategyKind::kSelSync:
      return job.selsync.aggregation;
    default:
      return AggregationMode::kParameters;  // FedAvg averages models
  }
}

void save_checkpoint(WorkerCheckpoint& ckpt, uint64_t iteration, Model& model,
                     const Optimizer& optimizer, const ShardLoader& loader) {
  ckpt.iteration = iteration;
  ckpt.params = model.get_flat_params();
  std::ostringstream out;
  optimizer.save_state(out);
  ckpt.optimizer_state = out.str();
  ckpt.cursor = loader.cursor();
  ckpt.consumed = loader.consumed();
}

void restore_checkpoint(const WorkerCheckpoint& ckpt, Model& model,
                        Optimizer& optimizer, ShardLoader& loader) {
  model.set_flat_params(ckpt.params);
  std::istringstream in(ckpt.optimizer_state);
  optimizer.load_state(in);
  loader.restore_position(ckpt.cursor, ckpt.consumed);
}

}  // namespace selsync::detail
