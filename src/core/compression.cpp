#include "core/compression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace selsync {

const char* compression_kind_name(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kTopK:
      return "topk";
    case CompressionKind::kSignSgd:
      return "signsgd";
    case CompressionKind::kQuant8:
      return "quant8";
  }
  return "?";
}

GradientCompressor::GradientCompressor(CompressionConfig config)
    : config_(config) {
  if (config.kind == CompressionKind::kTopK &&
      (config.topk_fraction <= 0.0 || config.topk_fraction > 1.0))
    throw std::invalid_argument("GradientCompressor: topk fraction in (0,1]");
}

size_t GradientCompressor::wire_bytes(const CompressionConfig& config,
                                      size_t values) {
  switch (config.kind) {
    case CompressionKind::kNone:
      return values * sizeof(float);
    case CompressionKind::kTopK: {
      const auto k = static_cast<size_t>(
          std::ceil(config.topk_fraction * static_cast<double>(values)));
      return std::max<size_t>(k, 1) * (sizeof(float) + sizeof(uint32_t));
    }
    case CompressionKind::kSignSgd:
      return values / 8 + sizeof(float);
    case CompressionKind::kQuant8:
      return values + 2 * sizeof(float);
  }
  return values * sizeof(float);
}

size_t GradientCompressor::compress(std::vector<float>& grad, double delta) {
  if (config_.kind == CompressionKind::kNone) {
    last_ratio_ = 1.0;
    return grad.size() * sizeof(float);
  }

  CompressionConfig effective = config_;
  if (config_.adaptive && config_.kind == CompressionKind::kTopK &&
      delta >= config_.critical_delta)
    effective.topk_fraction = config_.topk_fraction_critical;

  if (config_.error_feedback) {
    if (residual_.size() != grad.size()) residual_.assign(grad.size(), 0.f);
    for (size_t i = 0; i < grad.size(); ++i) grad[i] += residual_[i];
  }

  switch (config_.kind) {
    case CompressionKind::kTopK: {
      const auto k = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(effective.topk_fraction *
                                           static_cast<double>(grad.size()))));
      // Threshold = k-th largest magnitude (nth_element on a copy).
      std::vector<float> magnitudes(grad.size());
      for (size_t i = 0; i < grad.size(); ++i)
        magnitudes[i] = std::fabs(grad[i]);
      std::nth_element(magnitudes.begin(),
                       magnitudes.begin() + static_cast<long>(k - 1),
                       magnitudes.end(), std::greater<float>());
      const float threshold = magnitudes[k - 1];
      for (size_t i = 0; i < grad.size(); ++i) {
        const float kept = std::fabs(grad[i]) >= threshold ? grad[i] : 0.f;
        if (config_.error_feedback) residual_[i] = grad[i] - kept;
        grad[i] = kept;
      }
      break;
    }
    case CompressionKind::kSignSgd: {
      // g -> sign(g) * mean(|g|), the scale-preserving signSGD variant.
      double mean_abs = 0.0;
      for (float g : grad) mean_abs += std::fabs(g);
      mean_abs /= std::max<size_t>(grad.size(), 1);
      for (size_t i = 0; i < grad.size(); ++i) {
        const float kept = grad[i] > 0   ? static_cast<float>(mean_abs)
                           : grad[i] < 0 ? static_cast<float>(-mean_abs)
                                         : 0.f;
        if (config_.error_feedback) residual_[i] = grad[i] - kept;
        grad[i] = kept;
      }
      break;
    }
    case CompressionKind::kQuant8: {
      float max_abs = 0.f;
      for (float g : grad) max_abs = std::max(max_abs, std::fabs(g));
      const float scale = max_abs > 0 ? max_abs / 127.f : 1.f;
      for (size_t i = 0; i < grad.size(); ++i) {
        const float q =
            std::round(grad[i] / scale) * scale;  // 8-bit linear levels
        if (config_.error_feedback) residual_[i] = grad[i] - q;
        grad[i] = q;
      }
      break;
    }
    case CompressionKind::kNone:
      break;
  }

  const size_t bytes = wire_bytes(effective, grad.size());
  last_ratio_ = static_cast<double>(bytes) /
                static_cast<double>(grad.size() * sizeof(float));
  return bytes;
}

}  // namespace selsync
