#include "core/time_model.hpp"

#include <algorithm>

namespace selsync {

StepTimeModel::StepTimeModel(const PaperModelProfile& model,
                             const DeviceProfile& device,
                             const NetworkProfile& network, Topology topology,
                             size_t workers)
    : model_(model),
      device_(device),
      cost_(network),
      topology_(topology),
      workers_(workers) {}

double StepTimeModel::compute_time(size_t batch) const {
  return compute_time_s(model_, device_, static_cast<double>(batch));
}

double StepTimeModel::sync_time() const {
  return sync_time_for_bytes(payload_bytes());
}

double StepTimeModel::sync_time_for_bytes(size_t wire_bytes) const {
  const double transfer =
      topology_ == Topology::kParameterServer
          ? cost_.ps_sync_time(wire_bytes, workers_)
          : cost_.ring_allreduce_time(wire_bytes, workers_);
  // Codec cost when the payload was shrunk: compress + decompress over the
  // full dense gradient at ~4 GB/s effective (GraVAC-range overhead).
  const double codec =
      wire_bytes < payload_bytes()
          ? static_cast<double>(payload_bytes()) / 4e9
          : 0.0;
  return transfer + codec;
}

void StepTimeModel::price_sync(SyncCost& cost, const CommBackend& backend,
                               double wire_ratio) const {
  const double fault_penalty = cost.fault_penalty_s;
  cost = backend.sync_cost(cost_, payload_bytes(), workers_, wire_ratio);
  cost.fault_penalty_s = fault_penalty;
}

double StepTimeModel::flag_time() const {
  return cost_.flag_allgather_time(workers_);
}

double StepTimeModel::ssp_step_comm_time(size_t batch) const {
  // Push gradients + pull parameters, both one-way and layer-by-layer,
  // overlapped with the next step's compute; only the excess over the
  // compute time is visible. Contention: on average half the cluster is
  // mid-transfer.
  const double oneway =
      2.0 * cost_.ps_oneway_time(payload_bytes(), std::max<size_t>(workers_ / 2, 1));
  const double hidden = compute_time(batch);
  return std::max(0.0, oneway - hidden);
}

double StepTimeModel::injection_time(size_t bytes) const {
  return cost_.p2p_time(bytes);
}

size_t StepTimeModel::payload_bytes() const {
  return static_cast<size_t>(model_.param_bytes());
}

}  // namespace selsync
