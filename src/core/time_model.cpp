#include "core/time_model.hpp"

#include <algorithm>

namespace selsync {

StepTimeModel::StepTimeModel(const PaperModelProfile& model,
                             const DeviceProfile& device,
                             const NetworkProfile& network, Topology topology,
                             size_t workers)
    : model_(model),
      device_(device),
      cost_(network),
      topology_(topology),
      workers_(workers) {}

double StepTimeModel::compute_time(size_t batch) const {
  return compute_time_s(model_, device_, static_cast<double>(batch));
}

double StepTimeModel::backward_time(size_t batch) const {
  return (2.0 / 3.0) * compute_time(batch);
}

void StepTimeModel::price_sync(SyncCost& cost, const CommBackend& backend,
                               double wire_ratio) const {
  const double fault_penalty = cost.fault_penalty_s;
  cost = backend.sync_cost(cost_, payload_bytes(), workers_, wire_ratio);
  cost.fault_penalty_s = fault_penalty;
}

void StepTimeModel::price_sync(SyncCost& cost, const CommBackend& backend,
                               const SliceSchedule& sched, bool overlap,
                               double backward_s, double wire_ratio) const {
  if (sched.single_slice() && !overlap) {
    // The step-end barrier, priced on the legacy path bit-exactly.
    price_sync(cost, backend, wire_ratio);
    return;
  }
  const double fault_penalty = cost.fault_penalty_s;
  // Codec compute and whole-round byte totals price exactly as the barrier
  // round: slicing changes the transfer schedule, not the codec work or
  // the bytes moved.
  cost = backend.sync_cost(cost_, payload_bytes(), workers_, wire_ratio);
  cost.fault_penalty_s = fault_penalty;
  cost.slices = sched.size();

  // Walk the slices in emission order. `finish` tracks the comm timeline
  // relative to backward start: slice i cannot fly before its gradient
  // segment is ready (ready_fraction of backward_s — or all of it with
  // overlap off) nor before the previous slice's transfer finished.
  const double total = static_cast<double>(sched.total_params());
  double transfer_sum = 0.0;
  double finish = 0.0;
  size_t max_slice_wire = 0;
  for (const SyncSlice& s : sched.slices()) {
    const double frac = static_cast<double>(s.length) / total;
    const size_t dense =
        static_cast<size_t>(static_cast<double>(payload_bytes()) * frac);
    const SyncCost sc = backend.sync_cost(cost_, dense, workers_, wire_ratio);
    transfer_sum += sc.transfer_s;
    max_slice_wire = std::max(max_slice_wire, sc.wire_bytes);
    const double ready = overlap ? s.ready_fraction * backward_s : backward_s;
    finish = std::max(finish, ready) + sc.transfer_s;
  }
  cost.transfer_s = transfer_sum;
  cost.max_slice_wire_bytes = max_slice_wire;
  // What overlap hid: the visible post-backward comm is finish - backward_s;
  // the non-overlapped timeline would expose the whole transfer_sum. Since
  // every ready time is <= backward_s, finish <= backward_s + transfer_sum,
  // so the saving is never negative.
  if (overlap) cost.overlap_saved_s = transfer_sum - (finish - backward_s);
}

double StepTimeModel::flag_time() const {
  return cost_.flag_allgather_time(workers_);
}

double StepTimeModel::ssp_step_comm_time(size_t batch) const {
  // Push gradients + pull parameters, both one-way and layer-by-layer,
  // overlapped with the next step's compute; only the excess over the
  // compute time is visible. Contention: on average half the cluster is
  // mid-transfer.
  const double oneway =
      2.0 * cost_.ps_oneway_time(payload_bytes(), std::max<size_t>(workers_ / 2, 1));
  const double hidden = compute_time(batch);
  return std::max(0.0, oneway - hidden);
}

double StepTimeModel::injection_time(size_t bytes) const {
  return cost_.p2p_time(bytes);
}

size_t StepTimeModel::payload_bytes() const {
  return static_cast<size_t>(model_.param_bytes());
}

}  // namespace selsync
