// Standard experiment workloads: scaled-down analogues of the four DNN
// families the paper evaluates (ResNet101/CIFAR10, VGG11/CIFAR100,
// AlexNet/ImageNet-1K, Transformer/WikiText-103), each with the matching
// training recipe (optimizer, LR schedule, batch size) and the paper-scale
// profile that drives simulated-time accounting (DESIGN.md SS2).
//
// Used by the benchmark harness, the CLI runner and the examples.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "optim/optimizer.hpp"

namespace selsync {

struct Workload {
  std::string name;        // paper name, e.g. "ResNet101"
  bool is_lm = false;
  bool top5_metric = false;  // AlexNet reports top-5 in the paper
  DatasetPtr train;
  DatasetPtr test;
  std::function<std::unique_ptr<Model>(uint64_t)> model_factory;
  std::function<std::unique_ptr<Optimizer>()> optimizer_factory;
  PaperModelProfile profile;
  size_t batch_size = 16;
};

/// ResNet101-on-CIFAR10 analogue: residual MLP, 10-class synthetic task,
/// SGD + momentum with the paper's two-stage LR decay (scaled epochs).
Workload workload_resnet();

/// VGG11-on-CIFAR100 analogue: plain conv net, 20-class synthetic images.
Workload workload_vgg();

/// AlexNet-on-ImageNet analogue: wide shallow conv net, Adam, fixed LR,
/// top-5 metric.
Workload workload_alexnet();

/// Transformer-on-WikiText analogue: 2-layer causal encoder LM on a Markov
/// stream; SGD with per-iteration exponential decay; perplexity metric.
Workload workload_transformer();

std::vector<Workload> all_workloads();

/// Looks a workload up by its paper name ("ResNet101", "VGG11", "AlexNet",
/// "Transformer"); throws std::invalid_argument on unknown names.
Workload workload_by_name(const std::string& name);

/// Builds a TrainJob for `w` under `strategy` with the repo's standard
/// 16-worker cluster and the paper's network/device profiles.
TrainJob make_job(const Workload& w, StrategyKind strategy, size_t workers = 16,
                  uint64_t max_iterations = 600);

/// Primary metric of an eval point: top-1/top-5 accuracy (classifiers, in
/// [0,1], higher better) or perplexity (LM, lower better).
double primary_metric(const Workload& w, const EvalPoint& pt);
bool metric_improves(const Workload& w, double candidate, double incumbent);
const char* metric_name(const Workload& w);

}  // namespace selsync
