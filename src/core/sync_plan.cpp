#include "core/sync_plan.hpp"

#include <stdexcept>
#include <string>

#include "core/config.hpp"

namespace selsync {

const char* switch_trigger_kind_name(SwitchTriggerKind kind) {
  return enum_name(kSwitchTriggerKindNames, kind);
}

std::optional<SwitchTriggerKind> switch_trigger_kind_from_name(
    std::string_view name) {
  return enum_from_name(kSwitchTriggerKindCliNames, name);
}

std::string switch_trigger_kind_names() {
  return enum_names(kSwitchTriggerKindCliNames);
}

namespace {

size_t parse_count(std::string_view key, std::string_view value) {
  size_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9')
      throw std::invalid_argument(std::string("--switch-to: ") +
                                  std::string(key) + "='" + std::string(value) +
                                  "' is not a number");
    parsed = parsed * 10 + static_cast<size_t>(c - '0');
  }
  if (value.empty())
    throw std::invalid_argument(std::string("--switch-to: ") +
                                std::string(key) + " needs a value");
  return parsed;
}

}  // namespace

SyncPhase parse_sync_phase_spec(std::string_view spec) {
  if (spec.empty())
    throw std::invalid_argument(
        "--switch-to: empty phase spec (expected a strategy name or "
        "comma-separated key=value overrides)");
  SyncPhase phase;
  // A bare strategy name is the common Sync-Switch case: switch strategy,
  // keep everything else.
  if (spec.find('=') == std::string_view::npos &&
      spec.find(',') == std::string_view::npos) {
    const auto strategy = strategy_kind_from_name(spec);
    if (!strategy)
      throw std::invalid_argument(
          std::string("--switch-to: unknown strategy '") + std::string(spec) +
          "' (expected one of " + strategy_kind_names() +
          ", or key=value overrides: strategy=, backend=, codec=, slices=, "
          "ps-shards=)");
    phase.strategy = *strategy;
    return phase;
  }
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty())
      throw std::invalid_argument(
          "--switch-to: empty override in phase spec '" + std::string(spec) +
          "'");
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      throw std::invalid_argument(
          std::string("--switch-to: override '") + std::string(item) +
          "' is not key=value (keys: strategy, backend, codec, slices, "
          "ps-shards)");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "strategy") {
      const auto strategy = strategy_kind_from_name(value);
      if (!strategy)
        throw std::invalid_argument(
            std::string("--switch-to: unknown strategy '") +
            std::string(value) + "' (expected one of " +
            strategy_kind_names() + ")");
      phase.strategy = *strategy;
    } else if (key == "backend") {
      const auto backend = backend_kind_from_name(value);
      if (!backend)
        throw std::invalid_argument(
            std::string("--switch-to: unknown backend '") +
            std::string(value) + "' (expected one of " + backend_kind_names() +
            ")");
      phase.backend = *backend;
    } else if (key == "codec") {
      const auto codec = compression_kind_from_name(value);
      if (!codec)
        throw std::invalid_argument(
            std::string("--switch-to: unknown codec '") + std::string(value) +
            "' (expected one of " + compression_kind_names() + ")");
      CompressionConfig compression;
      compression.kind = *codec;
      phase.compression = compression;
    } else if (key == "slices") {
      phase.slices = parse_count(key, value);
    } else if (key == "ps-shards") {
      phase.ps_shards = parse_count(key, value);
    } else {
      throw std::invalid_argument(
          std::string("--switch-to: unknown override key '") +
          std::string(key) +
          "' (keys: strategy, backend, codec, slices, ps-shards)");
    }
    if (comma == spec.size()) break;
  }
  return phase;
}

TrainJob derive_phase_job(const TrainJob& base, size_t index) {
  if (index >= base.sync_plan.phase_count())
    throw std::out_of_range("derive_phase_job: phase index out of range");
  TrainJob job = base;
  job.sync_plan = SyncPlan{};  // derived jobs run as plain single-phase jobs
  if (index == 0) return job;
  const SyncPhase& phase = base.sync_plan.phases[index - 1];
  if (phase.strategy) job.strategy = *phase.strategy;
  if (phase.backend) job.backend = *phase.backend;
  if (phase.compression) job.compression = *phase.compression;
  if (phase.slices) job.slices = *phase.slices;
  if (phase.ps_shards) job.ps_shards = *phase.ps_shards;
  return job;
}

void validate_sync_plan(const TrainJob& job) {
  const SyncPlan& plan = job.sync_plan;
  if (plan.empty()) return;
  const bool has_crashes = !job.faults.crashes.empty();
  uint64_t floor = 0;
  StrategyKind prev_strategy = job.strategy;
  bool saw_gradchange = false;
  for (size_t i = 0; i < plan.phases.size(); ++i) {
    const std::string where =
        "TrainJob: sync_plan phase " + std::to_string(i + 1) + ": ";
    if (saw_gradchange)
      throw std::invalid_argument(
          where +
          "an on-gradchange switch point must be the final one — its "
          "boundary iteration is dynamic, so a later switch point cannot be "
          "ordered against it");
    const SwitchTrigger& trigger = plan.phases[i].trigger;
    switch (trigger.kind) {
      case SwitchTriggerKind::kAtIteration:
        if (trigger.at_iteration <= floor)
          throw std::invalid_argument(
              where +
              "at-iteration trigger must be strictly after the previous "
              "boundary (iteration " +
              std::to_string(floor) + ")");
        if (trigger.at_iteration >= job.max_iterations)
          throw std::invalid_argument(
              where +
              "at-iteration trigger at or past max_iterations (" +
              std::to_string(job.max_iterations) +
              ") — the phase would never run");
        floor = trigger.at_iteration;
        break;
      case SwitchTriggerKind::kOnGradChange:
        if (trigger.gradchange_below <= 0.0)
          throw std::invalid_argument(
              where + "on-gradchange threshold must be > 0");
        if (trigger.min_iteration >= job.max_iterations)
          throw std::invalid_argument(
              where +
              "on-gradchange min_iteration at or past max_iterations (" +
              std::to_string(job.max_iterations) +
              ") — the trigger could never fire");
        if (prev_strategy == StrategyKind::kSsp)
          throw std::invalid_argument(
              where +
              "an on-gradchange trigger ends a phase by evaluating the "
              "cluster-max Δ(g) on the control plane, which the asynchronous "
              "SSP loop never runs — use an at-iteration trigger to leave an "
              "SSP phase");
        saw_gradchange = true;
        break;
    }
    // Re-validate the derived phase job so an invalid later phase fails at
    // parse time, with the phase index prefixed to the underlying message.
    const TrainJob derived = derive_phase_job(job, i + 1);
    try {
      derived.validate();
    } catch (const std::invalid_argument& e) {
      std::string what = e.what();
      constexpr std::string_view kPrefix = "TrainJob: ";
      if (what.rfind(kPrefix, 0) == 0) what.erase(0, kPrefix.size());
      throw std::invalid_argument(where + what);
    }
    if (has_crashes &&
        (prev_strategy == StrategyKind::kSsp) !=
            (derived.strategy == StrategyKind::kSsp))
      throw std::invalid_argument(
          where +
          "a crash plan cannot cross a switch between the synchronous and "
          "SSP loop families — a worker parked for rejoin in one family "
          "cannot resume in the other; drop the crash plan or keep every "
          "phase in one family");
    prev_strategy = derived.strategy;
  }
}

}  // namespace selsync
