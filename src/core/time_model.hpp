// Bridges real algorithm execution and paper-scale simulated time.
//
// Training dynamics (loss curves, sync decisions, LSSR) come from actually
// running the scaled-down models; *time* is charged per event as if the
// paper-scale model were training on the paper's testbed. This is the
// substitution that lets Table I's speedup structure be reproduced without
// 16 V100s (DESIGN.md §2).
#pragma once

#include "comm/comm_backend.hpp"
#include "comm/cost_model.hpp"
#include "core/config.hpp"
#include "nn/paper_profiles.hpp"

namespace selsync {

class StepTimeModel {
 public:
  StepTimeModel(const PaperModelProfile& model, const DeviceProfile& device,
                const NetworkProfile& network, Topology topology,
                size_t workers);

  /// Forward + backward on `batch` samples.
  double compute_time(size_t batch) const;

  /// One full synchronization round (PS push+pull or an allreduce,
  /// depending on the topology).
  double sync_time() const;

  /// Synchronization round with an explicit wire payload (compressed
  /// gradients), plus the codec's own compute cost (compression is not
  /// zero-cost, §II-D).
  double sync_time_for_bytes(size_t wire_bytes) const;

  /// Prices one synchronization round on the CommBackend carrying the
  /// payload: fills `cost`'s transfer / codec / byte fields from
  /// backend.sync_cost() for this model's dense payload moved at
  /// `wire_ratio`, preserving whatever fault penalty the caller already
  /// accrued into it.
  void price_sync(SyncCost& cost, const CommBackend& backend,
                  double wire_ratio = 1.0) const;

  /// SelSync's per-step 1-bit flag allgather.
  double flag_time() const;

  /// SSP's per-step asynchronous push+pull, overlapped with compute: the
  /// visible cost is the part of the transfer compute cannot hide.
  double ssp_step_comm_time(size_t batch) const;

  /// Data-injection transfer of `bytes` of raw samples.
  double injection_time(size_t bytes) const;

  /// Paper-scale payload of one model/gradient exchange.
  size_t payload_bytes() const;

  const CostModel& cost_model() const { return cost_; }

 private:
  PaperModelProfile model_;
  DeviceProfile device_;
  CostModel cost_;
  Topology topology_;
  size_t workers_;
};

}  // namespace selsync
