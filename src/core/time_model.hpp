// Bridges real algorithm execution and paper-scale simulated time.
//
// Training dynamics (loss curves, sync decisions, LSSR) come from actually
// running the scaled-down models; *time* is charged per event as if the
// paper-scale model were training on the paper's testbed. This is the
// substitution that lets Table I's speedup structure be reproduced without
// 16 V100s (DESIGN.md §2).
#pragma once

#include "comm/comm_backend.hpp"
#include "comm/cost_model.hpp"
#include "core/config.hpp"
#include "nn/paper_profiles.hpp"

namespace selsync {

class StepTimeModel {
 public:
  StepTimeModel(const PaperModelProfile& model, const DeviceProfile& device,
                const NetworkProfile& network, Topology topology,
                size_t workers);

  /// Forward + backward on `batch` samples.
  double compute_time(size_t batch) const;

  /// The backward-pass share of compute_time: the profiles charge
  /// forward + backward as 3x the forward FLOPs (nn/paper_profiles.hpp),
  /// so backward is 2/3 of the step. This is the window the sliced data
  /// plane can hide communication inside.
  double backward_time(size_t batch) const;

  /// Prices one synchronization round on the CommBackend carrying the
  /// payload: fills `cost`'s transfer / codec / byte fields from
  /// backend.sync_cost() for this model's dense payload moved at
  /// `wire_ratio`, preserving whatever fault penalty the caller already
  /// accrued into it.
  void price_sync(SyncCost& cost, const CommBackend& backend,
                  double wire_ratio = 1.0) const;

  /// Prices one *sliced* synchronization round (DESIGN.md §12). Each slice
  /// is its own round on the backend's schedule — per-round latency and
  /// op-overhead terms are paid per slice, which is the real cost of
  /// slicing — and with `overlap` the timeline composes per slice as
  /// max(backward-ready time, previous comm finish) + slice transfer
  /// instead of summing comm after compute. The hidden seconds land in
  /// cost.overlap_saved_s (0 with overlap off), the per-slice transfer sum
  /// in cost.transfer_s, and the largest slice's wire bytes in
  /// cost.max_slice_wire_bytes. `backward_s` is the caller's backward-pass
  /// duration (its straggler-scaled backward_time()). A single-slice
  /// non-overlapped schedule delegates to the legacy overload, bit-exactly.
  void price_sync(SyncCost& cost, const CommBackend& backend,
                  const SliceSchedule& sched, bool overlap, double backward_s,
                  double wire_ratio = 1.0) const;

  /// SelSync's per-step 1-bit flag allgather.
  double flag_time() const;

  /// SSP's per-step asynchronous push+pull, overlapped with compute: the
  /// visible cost is the part of the transfer compute cannot hide.
  double ssp_step_comm_time(size_t batch) const;

  /// Data-injection transfer of `bytes` of raw samples.
  double injection_time(size_t bytes) const;

  /// Paper-scale payload of one model/gradient exchange.
  size_t payload_bytes() const;

  const CostModel& cost_model() const { return cost_; }

 private:
  PaperModelProfile model_;
  DeviceProfile device_;
  CostModel cost_;
  Topology topology_;
  size_t workers_;
};

}  // namespace selsync
