#include "core/metrics.hpp"

#include <algorithm>

namespace selsync {

EvalStats evaluate_dataset(Model& model, const Dataset& data,
                           size_t batch_size) {
  EvalStats total;
  std::vector<size_t> indices;
  indices.reserve(batch_size);
  for (size_t start = 0; start < data.size(); start += batch_size) {
    indices.clear();
    const size_t end = std::min(start + batch_size, data.size());
    for (size_t i = start; i < end; ++i) indices.push_back(i);
    total.merge(model.eval_batch(data.make_batch(indices)));
  }
  return total;
}

}  // namespace selsync
