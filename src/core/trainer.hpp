// Distributed training driver.
//
// run_training() launches one simulated worker thread per cluster member and
// executes the requested strategy end to end:
//
//   BSP / LocalSGD / FedAvg / SelSync  -> bulk-synchronous loop (Alg. 1):
//     compute grads -> Δ(g_i) -> policy votes (flag allgather for SelSync)
//     -> aggregate parameters/gradients or apply the local update.
//   SSP                                -> asynchronous loop against the
//     parameter server with a staleness bound.
//
// Training dynamics are real (the scaled-down models actually train);
// wall-clock is charged through StepTimeModel at paper scale (DESIGN.md §2).
#pragma once

#include "core/config.hpp"
#include "core/metrics.hpp"

namespace selsync {

TrainResult run_training(const TrainJob& job);

}  // namespace selsync
