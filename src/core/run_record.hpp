// Run recording: serializes a training configuration + result to JSON so
// experiment sweeps are machine-readable (consumed by the CLI and by any
// external plotting pipeline).
#pragma once

#include <string>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "util/json.hpp"

namespace selsync {

/// Structured description of the job (strategy, cluster, knobs).
JsonValue job_to_json(const TrainJob& job);

/// Structured result: step accounting, LSSR, final/best metrics, the full
/// evaluation history, and simulated/real time.
JsonValue result_to_json(const TrainResult& result);

/// {"job": ..., "result": ...} written to `path` (pretty-printed).
void write_run_record(const std::string& path, const TrainJob& job,
                      const TrainResult& result);

}  // namespace selsync
