// The staged per-worker training loop (DESIGN.md §8).
//
// The pre-refactor trainer ran each strategy as one monolithic function.
// WorkerLoop decomposes an iteration into explicit stages with one fixed
// driver:
//
//   fault schedule -> data -> compute -> sync decision -> aggregation
//                  -> instrumentation
//
// run() executes the stages in that order until the step budget is spent, a
// stop is agreed, or the fault schedule retires the worker. The
// bulk-synchronous strategies (BSP / LocalSGD / FedAvg / SelSync / EASGD)
// and SSP are the two concrete loops; both speak to the payload transport
// only through the CommBackend seam, never a concrete protocol — and to
// their model/optimizer/data only through the Replica seam, never a concrete
// carrier (in-proc or a worker process over TCP).
//
// Stage contracts:
//  * fault_stage() may rewrite the iteration counter (crash fast-forward /
//    checkpoint rewind) and decides whether the iteration proceeds, restarts
//    (kRetry re-enters the loop without advancing), or the worker leaves the
//    run for good (kExit).
//  * sync_decision_stage() returns whether this iteration aggregates;
//    aggregation_stage() applies the local or collective update.
//  * instrumentation_stage() owns EMA/snapshots/evaluation and returns true
//    when the cluster agreed to stop.
#pragma once

#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/comm_backend.hpp"
#include "comm/fault_injector.hpp"
#include "core/config.hpp"
#include "core/handoff.hpp"
#include "core/metrics.hpp"
#include "core/replica.hpp"
#include "core/sync_policy.hpp"
#include "core/time_model.hpp"
#include "core/trainer_internal.hpp"
#include "data/injection.hpp"
#include "stats/grad_change.hpp"

namespace selsync::detail {

/// The SyncPlan execution window one loop instance runs inside
/// (DESIGN.md §14). The phased trainer builds one per (phase, rank); the
/// defaults describe the legacy single-phase run: no boundary, no trigger,
/// nothing to resume, nothing to capture.
struct WorkerPhase {
  /// Pause boundary: the loop exits via Stage::kPause once it_ reaches
  /// this iteration (the next phase resumes there). max() = run to the end.
  uint64_t end_iteration = std::numeric_limits<uint64_t>::max();
  /// kOnGradChange trigger, armed when > 0: the phase ends at the first
  /// iteration >= gradchange_min_iteration whose cluster-max Δ(g) falls to
  /// this threshold — evaluated on the control plane, so every worker
  /// agrees on the boundary bit-for-bit.
  double gradchange_below = 0.0;
  uint64_t gradchange_min_iteration = 0;
  /// The previous phase's capture for this rank (null on the first phase).
  const WorkerHandoff* resume = nullptr;
  /// Where this phase's exit — pause or finish — writes the rank's carried
  /// state (null on legacy single-phase runs: nothing is captured).
  WorkerHandoff* handoff = nullptr;
};

/// State shared by the bulk-synchronous workers of one run.
struct SharedSyncState {
  // selsync-lint: allow(raw-thread) -- result aggregation is a leaf lock
  // taken only in publish()/instrumentation, never across a collective; the
  // chaos label still covers it because every worker publishes under TSan.
  std::mutex mutex;
  TrainResult result;
  std::vector<std::vector<size_t>> injection_proposals;
  /// EASGD center variable (initialized to the common seed model before the
  /// cluster starts; only touched between barriers during elastic updates).
  std::vector<float> easgd_center;
  /// Final per-worker simulated clocks, written as each worker exits. The
  /// cluster time is their max — computed after the join instead of with a
  /// final collective, because under fault injection workers leave the loop
  /// at different points (permanent crashes) and a trailing collective would
  /// have no agreed participant set.
  std::vector<double> worker_sim_time;
};

/// State shared by the SSP workers of one run.
struct SharedSspState {
  // selsync-lint: allow(raw-thread) -- same leaf result-aggregation lock as
  // SharedSyncState above.
  std::mutex mutex;
  TrainResult result;
  std::atomic<bool> stop{false};
  std::vector<double> worker_sim_time;
};

class WorkerLoop {
 public:
  virtual ~WorkerLoop() = default;

  /// The explicit state machine run()/step() walk. One iteration is
  /// kFault -> kData -> kCompute -> kAggregate -> kInstrument -> kFault;
  /// any stage may divert to kFinish (budget spent, stop agreed, worker
  /// retired), which runs the teardown and lands in kDone. Reaching the
  /// phase's end_iteration diverts to kPause instead: the worker captures
  /// its handoff and exits withOUT the finish teardown, so the next phase
  /// can resume it (DESIGN.md §14).
  enum class Stage {
    kFault,
    kData,
    kCompute,
    kAggregate,
    kInstrument,
    kPause,
    kFinish,
    kDone,
  };

  /// Drives the stages until the budget is spent, a stop is agreed, or the
  /// fault schedule retires the worker; then publishes this worker's share
  /// of the result. Equivalent to stepping the state machine to kDone.
  void run();

  /// Advances the state machine by exactly one stage. Returns false once
  /// the machine has reached kDone (after teardown + publish). Under the
  /// DES engine each iteration boundary yields to the scheduler and each
  /// stage publishes the worker's simulated clock, so fibers interleave in
  /// virtual-time order.
  bool step();

  Stage stage() const { return stage_; }

 protected:
  enum class FaultAction {
    kProceed,  // run this iteration
    kRetry,    // re-enter the loop without advancing (checkpoint rewind)
    kExit,     // worker leaves the run (permanent crash / cluster stopped)
    kPause     // a phase boundary drained the cluster while parked; the
               // worker exits via kPause and re-parks in the next phase
  };

  WorkerLoop(const TrainJob& job, WorkerContext& ctx, Replica* replica,
             CommBackend& backend, FaultInjector* faults,
             const WorkerPhase& phase);

  /// Checked before every iteration (SSP's cross-worker stop flag).
  virtual bool stop_requested() const { return false; }
  virtual FaultAction fault_stage() = 0;
  virtual void data_stage() = 0;
  virtual void compute_stage() = 0;
  virtual bool sync_decision_stage() = 0;
  virtual void aggregation_stage(bool any_sync) = 0;
  virtual bool instrumentation_stage() = 0;
  /// Teardown that must run on every exit path (rendezvous shutdown, PS
  /// detach), before publish().
  virtual void finish_worker() {}
  virtual void publish() = 0;
  /// Fills the rank's phase-boundary capture; subclasses extend with their
  /// own state (the handoff-sync lint pins the field set).
  virtual void capture_handoff(WorkerHandoff& out) const;
  /// Stage::kPause body: captures the handoff (paused_at_boundary set).
  /// The synchronous loop overrides it to also drain the rejoin rendezvous
  /// so workers parked for rejoin exit this phase too.
  virtual void pause_worker();

  bool is_root() const { return ctx_.is_root(); }

  const TrainJob& job_;
  WorkerContext& ctx_;
  CommBackend& backend_;
  FaultInjector* faults_;

  /// This rank's model/optimizer/data plane behind the transport seam
  /// (DESIGN.md §13): a LocalReplica in-proc, a RemoteReplica proxying a
  /// worker process over framed TCP. The loop's protocol logic is
  /// carrier-blind — it issues the same verbs either way. Owned by the
  /// trainer, not the loop: replicas are created once per rank and persist
  /// across SyncPlan phases (optimizer moments, EMA state and data cursors
  /// carry over for free — DESIGN.md §14).
  Replica* replica_;
  StepTimeModel time_;
  const uint64_t steps_per_epoch_;
  /// Systems heterogeneity (§II-A): this worker's compute-speed multiplier.
  const double speed_;

  Stage stage_ = Stage::kFault;
  uint64_t it_ = 0;
  uint64_t executed_ = 0;
  double epoch_ = 0.0;
  double sim_time_ = 0.0;
  double comm_bytes_ = 0.0;
  bool reached_ = false;
  bool diverged_ = false;
  /// The worker left the run for good (permanent crash, or the cluster
  /// stopped while it was parked); it does not run in later phases.
  bool casualty_ = false;

  // SyncPlan phase window (DESIGN.md §14): the pause boundary — which the
  // armed Δ(g) trigger may pull in at run time — and where the exit writes
  // this rank's carried state.
  uint64_t end_iteration_;
  const double gradchange_below_;
  const uint64_t gradchange_min_iteration_;
  WorkerHandoff* handoff_out_;

  // Fault-injection state: whether this rank maintains the replica's
  // standing checkpoint (only ranks the plan can crash-and-restart do).
  const bool take_checkpoints_;

  // Root-worker observability.
  std::vector<EvalPoint> eval_history_;
  TrainResult local_bests_;
};

/// Bulk-synchronous loop (Alg. 1): BSP / LocalSGD / FedAvg / SelSync /
/// EASGD, with crash-park-rejoin degradation and recovery syncs.
class SynchronousWorkerLoop final : public WorkerLoop {
 public:
  SynchronousWorkerLoop(const TrainJob& job, WorkerContext& ctx,
                        Replica* replica, const DataInjector* injector,
                        CommBackend& backend, FaultInjector* faults,
                        RejoinCoordinator* rejoin, SharedSyncState& shared,
                        const WorkerPhase& phase);

 protected:
  FaultAction fault_stage() override;
  void data_stage() override;
  void compute_stage() override;
  bool sync_decision_stage() override;
  void aggregation_stage(bool any_sync) override;
  bool instrumentation_stage() override;
  void finish_worker() override;
  void publish() override;
  void capture_handoff(WorkerHandoff& out) const override;
  void pause_worker() override;

 private:
  const DataInjector* injector_;
  RejoinCoordinator* rejoin_;
  SharedSyncState& shared_;
  std::unique_ptr<SyncPolicy> policy_;
  RelativeGradChange grad_change_;
  const AggregationMode agg_;
  const CommGroup full_group_;
  CommGroup group_;

  uint64_t sync_steps_ = 0, local_steps_ = 0, sync_rounds_ = 0;
  /// This worker's accumulated SyncCost account over every priced
  /// synchronization round (aggregation rounds and recovery syncs); the
  /// root's copy lands in TrainResult::sync_cost.
  SyncCostTotals sync_cost_totals_;
  /// Whether this worker is parked awaiting rejoin (crash fired, restart
  /// pending). A phase boundary drains parked workers too — they re-park in
  /// the next phase without re-recording the crash (resume_parked_).
  bool parked_ = false;
  bool resume_parked_ = false;
  double compute_factor_ = 1.0;
  std::vector<float> grads_;
  double delta_ = 0.0;
  /// The per-layer priority slice partition of this worker's aggregation
  /// payload (DESIGN.md §12), built once from the replica's layer shapes;
  /// the single-slice schedule at --slices 1 is the legacy step-end
  /// barrier, bit-exactly.
  SliceSchedule slices_;

  // Worker-0 instrumentation, moved into `shared_` at the end. The EMA
  // tracker itself lives inside the replica (next to the weights it
  // averages); the loop only remembers whether it armed one.
  bool ema_enabled_ = false;
  std::vector<double> delta_trace_, grad_sq_trace_;
  std::map<double, std::vector<float>> snapshots_;
  size_t next_snapshot_ = 0;
};

/// Asynchronous SSP loop against the backend's central store, with a
/// staleness bound (paper §II-C).
class SspWorkerLoop final : public WorkerLoop {
 public:
  SspWorkerLoop(const TrainJob& job, WorkerContext& ctx, Replica* replica,
                CommBackend& backend, FaultInjector* faults,
                SharedSspState& shared, const WorkerPhase& phase);

 protected:
  bool stop_requested() const override { return shared_.stop.load(); }
  FaultAction fault_stage() override;
  void data_stage() override;
  void compute_stage() override;
  bool sync_decision_stage() override { return false; }
  void aggregation_stage(bool any_sync) override;
  bool instrumentation_stage() override;
  void finish_worker() override;
  void publish() override;
  void capture_handoff(WorkerHandoff& out) const override;

 private:
  SharedSspState& shared_;
  ShardedParameterServer& ps_;

  double compute_factor_ = 1.0;
  /// The PS is unreachable past the retry budget this step: train on the
  /// stale local replica and drop the push.
  bool skip_ps_ = false;
  std::vector<float> pulled_;
  /// Iterations up to (exclusive) this mark already had their crash fired;
  /// a rewound loop must not re-fire the same crash on replay.
  uint64_t crash_fired_until_ = 0;
};

}  // namespace selsync::detail
