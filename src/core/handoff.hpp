// Phase-boundary handoff state for SyncPlan switching (DESIGN.md §14).
//
// A switch point drains the cluster at an iteration boundary: every worker
// exits its loop at the same iteration k, the outgoing backend's state is
// extracted (comm/comm_backend.hpp: BackendHandoff), and the next phase's
// loops resume from the per-worker captures below. Replicas themselves are
// NOT part of the handoff — they are created once per rank and persist
// across phases (which is what carries optimizer moments, EMA trackers and
// data cursors for free, and why the TCP wire needs no new verbs: remote
// replicas never learn a switch happened).
//
// The handoff-sync pass of selsync_lint pins WorkerHandoff's fields against
// the WorkerLoop members they mirror (tools/lint/handoff_state.manifest),
// so loop state added without a matching handoff field — which would be
// silently dropped at every switch — fails the lint.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "comm/comm_backend.hpp"
#include "core/metrics.hpp"
#include "stats/grad_change.hpp"

namespace selsync {

/// One worker's loop state captured at a phase boundary (or at its final
/// exit — the trainer reads `casualty`/`paused_at_boundary` to decide
/// whether the rank runs in the next phase and whether the run is over).
struct WorkerHandoff {
  /// Where the loop stopped: the boundary iteration on a pause, the last
  /// iteration on a finish. The resumed loop starts here.
  uint64_t iteration = 0;
  uint64_t executed = 0;
  double sim_time = 0.0;
  double comm_bytes = 0.0;
  bool reached = false;
  bool diverged = false;
  /// true when the worker exited at the phase boundary (Stage::kPause);
  /// false when it finished the run (budget spent / stop agreed / retired).
  bool paused_at_boundary = false;
  /// The worker left the run for good (permanent crash, or the cluster
  /// stopped while it was parked); it does not run in later phases.
  bool casualty = false;
  /// The worker was parked awaiting rejoin when the boundary drained the
  /// cluster; it re-parks in the next phase (iteration holds its crash
  /// point) and its rejoin schedule continues there.
  bool parked = false;

  // ---- bulk-synchronous loop state ----------------------------------------
  uint64_t sync_steps = 0;
  uint64_t local_steps = 0;
  uint64_t sync_rounds = 0;
  SyncCostTotals sync_cost;
  GradChangeSnapshot grad_change;
  bool ema_enabled = false;
  std::vector<double> delta_trace;
  std::vector<double> grad_sq_trace;
  std::map<double, std::vector<float>> snapshots;
  size_t next_snapshot = 0;

  // ---- SSP loop state -----------------------------------------------------
  uint64_t crash_fired_until = 0;

  // ---- root observability -------------------------------------------------
  std::vector<EvalPoint> eval_history;
  TrainResult local_bests;
};

/// Everything that crosses one phase boundary: the outgoing backend's
/// capture plus one WorkerHandoff per rank. `model_params` is the root
/// replica's parameters at the boundary, fetched only when the next phase
/// needs a seed the handoff cannot provide (a central store where the
/// predecessor had none, or a switch into EASGD whose elastic center must
/// start at the boundary model, not the iteration-0 one).
struct HandoffState {
  BackendHandoff backend;
  std::vector<WorkerHandoff> workers;
  std::vector<float> model_params;
};

}  // namespace selsync
