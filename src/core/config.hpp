// Training-job configuration: everything needed to launch one distributed
// training run under any of the five strategies the paper compares.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "comm/comm_backend.hpp"
#include "comm/cost_model.hpp"
#include "comm/fault_injector.hpp"
#include "comm/parameter_server.hpp"
#include "comm/compression.hpp"
#include "core/sync_plan.hpp"
#include "data/partition.hpp"
#include "nn/models.hpp"
#include "nn/paper_profiles.hpp"
#include "optim/optimizer.hpp"
#include "util/enum_names.hpp"

namespace selsync {

enum class StrategyKind { kBsp, kLocalSgd, kFedAvg, kSsp, kSelSync, kEasgd };

/// Display names, used by the run-record serializer (golden records pin the
/// exact spellings); selsync_lint (enum-table) keeps both tables in lockstep
/// with the enumerator list above.
inline constexpr EnumEntry<StrategyKind> kStrategyKindNames[] = {
    {StrategyKind::kBsp, "BSP"},
    {StrategyKind::kLocalSgd, "LocalSGD"},
    {StrategyKind::kFedAvg, "FedAvg"},
    {StrategyKind::kSsp, "SSP"},
    {StrategyKind::kSelSync, "SelSync"},
    {StrategyKind::kEasgd, "EASGD"},
};

/// The --strategy spellings accepted by the CLI tools.
inline constexpr EnumEntry<StrategyKind> kStrategyKindCliNames[] = {
    {StrategyKind::kBsp, "bsp"},
    {StrategyKind::kLocalSgd, "local"},
    {StrategyKind::kFedAvg, "fedavg"},
    {StrategyKind::kSsp, "ssp"},
    {StrategyKind::kSelSync, "selsync"},
    {StrategyKind::kEasgd, "easgd"},
};

const char* strategy_kind_name(StrategyKind kind);

/// "bsp" | "local" | "fedavg" | "ssp" | "selsync" | "easgd" -> kind;
/// nullopt for anything else.
std::optional<StrategyKind> strategy_kind_from_name(std::string_view name);

/// The accepted --strategy spellings, for CLI help and error messages.
std::string strategy_kind_names();

/// FedAvg (C, E) (paper §II-B): updates from fraction C of workers are
/// aggregated x = 1/E times per epoch, i.e. every E * steps_per_epoch steps.
struct FedAvgConfig {
  double participation = 1.0;  // C
  double sync_factor = 0.25;   // E
};

/// SSP (paper §II-C): workers run asynchronously but may not lead the
/// slowest worker by more than `staleness` iterations.
struct SspConfig {
  uint64_t staleness = 100;
};

/// SelSync (paper §III): synchronize when any worker's Δ(g_i) >= delta.
struct SelSyncConfig {
  double delta = 0.3;
  AggregationMode aggregation = AggregationMode::kParameters;
  size_t ewma_window = 25;
  /// EWMA smoothing factor; the paper uses N/100 (<= 1). <= 0 selects
  /// N/100 automatically from the cluster size.
  double ewma_alpha = -1.0;
  /// Fraction of workers that must vote before the cluster synchronizes.
  /// The paper's Alg. 1 rule is "any worker" (quorum <= 1/N, the default 0);
  /// 0.5 is a majority rule, 1.0 requires unanimity. Exposed as the
  /// DESIGN.md §5.1 ablation.
  double sync_quorum = 0.0;
};

/// Elastic Averaging SGD (the paper's reference [37], the method it cites
/// for the local-exploration benefit SelSync inherits): workers train
/// locally and, every `tau` steps, are pulled elastically toward a center
/// variable that in turn moves toward the worker average.
struct EasgdConfig {
  double alpha = 0.5;  // worker pull strength toward the center
  double beta = 0.5;   // center pull strength toward the worker mean
  uint64_t tau = 4;    // steps between elastic updates
};

/// Randomized data-injection for non-IID training (paper §III-E).
struct InjectionJobConfig {
  bool enabled = false;
  double alpha = 0.5;
  double beta = 0.5;
};

struct TrainJob;

/// The tcp transport's bootstrap knobs (DESIGN.md §13); consulted only when
/// TrainJob::transport == TransportKind::kTcp.
struct TcpTransportConfig {
  /// Master listen port on 127.0.0.1; 0 binds an ephemeral port (the
  /// default — right for forked workers, which learn the bound port from
  /// the parent). External workers (spawn_workers = false) need a fixed
  /// port to dial.
  uint16_t port = 0;
  /// fork() one worker process per rank (the default). Off: the master
  /// only listens, and each rank is an externally launched selsync_worker
  /// process dialing in with --rank.
  bool spawn_workers = true;
  /// How long the master waits for each worker to dial in before declaring
  /// the bootstrap failed.
  double accept_timeout_s = 30.0;
  /// Per-attempt connect budget on the worker side (retries with backoff
  /// ride on top; see tcp_connect).
  double connect_timeout_s = 10.0;
  /// Test seam: replaces a forked child's body (default: serve_tcp_worker).
  /// The socket-chaos suite uses it to spawn workers that die mid-round,
  /// never dial in, or write garbage frames. Never serialized.
  std::function<void(const TrainJob& job, size_t rank, uint16_t port)>
      child_main;
};

struct TrainJob {
  StrategyKind strategy = StrategyKind::kBsp;
  size_t workers = 4;
  size_t batch_size = 32;
  uint64_t max_iterations = 1000;  // per-worker step budget
  uint64_t eval_interval = 100;    // steps between test-set evaluations
  uint64_t seed = 1;

  DatasetPtr train_data;
  DatasetPtr test_data;
  PartitionScheme partition = PartitionScheme::kSelSync;
  size_t labels_per_worker = 1;  // used by PartitionScheme::kNonIidLabel

  /// Every worker replica is built by this factory from the same seed, so
  /// all replicas start identical (the paper's initial pullFromPS).
  std::function<std::unique_ptr<Model>(uint64_t seed)> model_factory;
  std::function<std::unique_ptr<Optimizer>()> optimizer_factory;

  FedAvgConfig fedavg;
  SspConfig ssp;
  SelSyncConfig selsync;
  EasgdConfig easgd;
  InjectionJobConfig injection;
  /// Gradient compression (paper §II-D baselines). Applies to
  /// gradient-aggregation payloads only (BSP, SelSync-GA): the paper notes
  /// parameters compress poorly via pruning, so PA payloads ship dense.
  CompressionConfig compression;

  /// Declarative fault injection (DESIGN.md "Failure model"): worker
  /// crashes with checkpoint restarts, message drop/delay/duplication, PS
  /// timeouts with retry, and stragglers — all scheduled deterministically
  /// from faults.seed. An empty plan (the default) injects nothing.
  /// Crash events require BackendKind::kSharedMemory for the
  /// bulk-synchronous strategies (degraded channel topologies — ring with a
  /// hole, tree with a dead subtree — are not modeled).
  FaultPlan faults;

  /// Per-worker compute-speed multipliers for systems heterogeneity
  /// (paper §II-A: BSP is "limited by the slowest worker or straggler").
  /// Empty = homogeneous; element r scales worker r's compute time
  /// (2.0 = twice as slow). Affects simulated time only.
  std::vector<double> worker_speed;

  /// Simulated-time accounting (DESIGN.md §2): which paper-scale model /
  /// device / network this run stands in for.
  PaperModelProfile paper_model = paper_resnet101();
  DeviceProfile device = device_v100();
  NetworkProfile network = paper_network_5gbps();
  /// Which paper-scale topology the cost model prices for the shared-memory
  /// backend (the ring/tree/ps backends carry their own schedule).
  Topology topology = Topology::kParameterServer;
  /// Which CommBackend carries aggregation payloads (DESIGN.md §8).
  BackendKind backend = BackendKind::kSharedMemory;
  /// Which carrier moves the replica data plane (DESIGN.md §13): kInproc
  /// keeps every rank's model in the master process (the historical mode);
  /// kTcp moves each rank's model/optimizer/loader into its own worker
  /// process and carries every payload over length-prefixed WireFormat
  /// frames on real loopback TCP. Bit-identical dynamics either way — the
  /// socket golden tier proves it — plus measured wall-clock SyncCost
  /// fields for calibrating the analytic CostModel.
  TransportKind transport = TransportKind::kInproc;
  /// TCP bootstrap knobs; consulted only when transport == kTcp.
  TcpTransportConfig tcp;
  /// Which execution engine drives the worker cluster (DESIGN.md §11):
  /// kThreads is one OS thread per rank (the sanitizer-facing engine);
  /// kDes runs the same worker bodies as fibers under the virtual-time
  /// EventLoop — bit-identical results (the parity tier proves it), but
  /// deterministic and cheap enough to sweep N=128–1024.
  EngineKind engine = EngineKind::kThreads;
  /// How many contiguous-range shards the parameter-server tier splits its
  /// central store into (DESIGN.md §10). 1 — the default — is the
  /// single-store PS, bit-identical to the pre-sharding tier; K > 1 gives
  /// each shard its own lock/round state and its own ingest link in the
  /// cost model. Meaningful only with the ps backend or SSP (which always
  /// runs against the PS tier); validate() rejects K > 1 elsewhere.
  size_t ps_shards = 1;
  /// Sliced data plane (DESIGN.md §12): how many per-layer priority slices
  /// a synchronization round splits the payload into. 1 — the default —
  /// is the pre-slicing step-end barrier, byte-identical to the golden
  /// records; > 1 moves and prices the payload slice by slice in
  /// slice_order.
  size_t slices = 1;
  /// Overlap backward compute with slice communication (P3): each slice
  /// flies as soon as its gradient segment is ready, and the time model
  /// prices the hidden transfer into SyncCost::overlap_saved_s. Needs
  /// slices > 1 and a gradient-payload aggregation; validate() rejects the
  /// rest with pointed messages.
  bool overlap = false;
  /// Slice emission order: output-first is P3's priority order (slices fly
  /// in gradient-readiness order, which is what overlap can hide); input-
  /// first is the anti-priority baseline the benches contrast against.
  SliceScheduleKind slice_order = SliceScheduleKind::kOutputFirst;
  /// Mid-run switch schedule (DESIGN.md §14): ordered switch points, each
  /// a trigger plus the {strategy, backend, codec, slices, ps_shards}
  /// overrides the next phase applies. Empty — the default — is the legacy
  /// single-phase run, and the run-record serializer emits nothing for it
  /// (golden records stay byte-identical). validate() re-validates every
  /// derived phase job with the phase index in the message.
  SyncPlan sync_plan;

  /// Early stopping: stop once worker 0's evaluation reaches the target
  /// (accuracy >= target_top1, or perplexity <= target_perplexity).
  std::optional<double> target_top1;
  std::optional<double> target_perplexity;

  /// Polyak averaging: when > 0, worker 0 maintains an exponential moving
  /// average of its parameters with this decay and all evaluations use the
  /// averaged weights (the live weights keep training). Composes with every
  /// strategy; 0 disables.
  double ema_decay = 0.0;

  /// Instrumentation.
  bool record_delta_trace = false;     // worker 0's Δ(g_i) per step (Fig. 5)
  bool record_grad_sq_trace = false;   // worker 0's ||g||² per step
  /// Serialize the per-run SyncCost breakdown (TrainResult::sync_cost)
  /// into the run record. Off by default: golden records predate the
  /// breakdown and must stay byte-identical.
  bool record_sync_cost = false;
  std::vector<double> snapshot_epochs;  // worker-0 weight snapshots (Fig. 11)

  /// Per-worker steps that make up one epoch of global progress: the
  /// cluster jointly consumes the dataset once every
  /// |D| / (N * b) iterations, matching BSP epoch accounting.
  uint64_t steps_per_epoch() const;

  void validate() const;
};

}  // namespace selsync
