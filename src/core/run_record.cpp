#include "core/run_record.hpp"

#include <fstream>
#include <stdexcept>

namespace selsync {

JsonValue job_to_json(const TrainJob& job) {
  JsonValue j = JsonValue::object();
  j.set("strategy", strategy_kind_name(job.strategy));
  j.set("workers", static_cast<double>(job.workers));
  j.set("batch_size", static_cast<double>(job.batch_size));
  j.set("max_iterations", static_cast<double>(job.max_iterations));
  j.set("eval_interval", static_cast<double>(job.eval_interval));
  j.set("seed", static_cast<double>(job.seed));
  j.set("partition", partition_scheme_name(job.partition));
  j.set("topology", topology_name(job.topology));
  j.set("backend", backend_kind_name(job.backend));
  // Only a sharded PS tier is recorded: the default K=1 predates the knob
  // and the golden records must stay byte-identical.
  if (job.ps_shards > 1)
    j.set("ps_shards", static_cast<double>(job.ps_shards));
  // Same rule for the engine: kThreads predates the knob, and result
  // records must stay engine-agnostic for the parity tier's byte compare —
  // only the job half of a record says when the DES engine produced it.
  if (job.engine != EngineKind::kThreads)
    j.set("engine", engine_kind_name(job.engine));
  // Same rule for the transport: inproc predates the knob, and the result
  // half must stay carrier-agnostic for the socket golden tier's byte
  // compare — only the job half says when real TCP carried the run.
  if (job.transport != TransportKind::kInproc)
    j.set("transport", transport_kind_name(job.transport));
  // Sliced data plane: the single-slice default predates the knobs and the
  // golden records must stay byte-identical, so emit only when sliced.
  if (job.slices > 1) {
    j.set("slices", static_cast<double>(job.slices));
    j.set("slice_order", slice_schedule_kind_name(job.slice_order));
    if (job.overlap) j.set("overlap", true);
  }
  j.set("paper_model", job.paper_model.name);
  j.set("network", job.network.name);

  switch (job.strategy) {
    case StrategyKind::kFedAvg: {
      JsonValue f = JsonValue::object();
      f.set("participation", job.fedavg.participation);
      f.set("sync_factor", job.fedavg.sync_factor);
      j.set("fedavg", std::move(f));
      break;
    }
    case StrategyKind::kSsp:
      j.set("staleness", static_cast<double>(job.ssp.staleness));
      break;
    case StrategyKind::kEasgd: {
      JsonValue e = JsonValue::object();
      e.set("alpha", job.easgd.alpha);
      e.set("beta", job.easgd.beta);
      e.set("tau", static_cast<double>(job.easgd.tau));
      j.set("easgd", std::move(e));
      break;
    }
    case StrategyKind::kSelSync: {
      JsonValue s = JsonValue::object();
      s.set("delta", job.selsync.delta);
      s.set("aggregation", aggregation_mode_name(job.selsync.aggregation));
      s.set("ewma_window", static_cast<double>(job.selsync.ewma_window));
      s.set("sync_quorum", job.selsync.sync_quorum);
      j.set("selsync", std::move(s));
      break;
    }
    default:
      break;
  }
  if (job.injection.enabled) {
    JsonValue inj = JsonValue::object();
    inj.set("alpha", job.injection.alpha);
    inj.set("beta", job.injection.beta);
    j.set("injection", std::move(inj));
  }
  if (job.compression.kind != CompressionKind::kNone) {
    JsonValue c = JsonValue::object();
    c.set("kind", compression_kind_name(job.compression.kind));
    c.set("topk_fraction", job.compression.topk_fraction);
    c.set("error_feedback", job.compression.error_feedback);
    j.set("compression", std::move(c));
  }
  if (job.faults.enabled()) j.set("faults", fault_plan_to_json(job.faults));
  // Mid-run switch schedule (DESIGN.md §14). Same gate rule as ps_shards:
  // the empty plan predates the knob, emits nothing, and the golden records
  // stay byte-identical — a planless job takes this exact legacy path.
  if (!job.sync_plan.empty()) {
    JsonValue phases = JsonValue::array();
    for (const SyncPhase& phase : job.sync_plan.phases) {
      JsonValue p = JsonValue::object();
      p.set("trigger", switch_trigger_kind_name(phase.trigger.kind));
      switch (phase.trigger.kind) {
        case SwitchTriggerKind::kAtIteration:
          p.set("at_iteration",
                static_cast<double>(phase.trigger.at_iteration));
          break;
        case SwitchTriggerKind::kOnGradChange:
          p.set("gradchange_below", phase.trigger.gradchange_below);
          p.set("min_iteration",
                static_cast<double>(phase.trigger.min_iteration));
          break;
      }
      if (phase.strategy) p.set("strategy", strategy_kind_name(*phase.strategy));
      if (phase.backend) p.set("backend", backend_kind_name(*phase.backend));
      if (phase.compression)
        p.set("codec", compression_kind_name(phase.compression->kind));
      if (phase.slices) p.set("slices", static_cast<double>(*phase.slices));
      if (phase.ps_shards)
        p.set("ps_shards", static_cast<double>(*phase.ps_shards));
      phases.push(std::move(p));
    }
    j.set("sync_plan", std::move(phases));
  }
  return j;
}

JsonValue result_to_json(const TrainResult& result) {
  JsonValue j = JsonValue::object();
  j.set("iterations", static_cast<double>(result.iterations));
  j.set("sync_steps", static_cast<double>(result.sync_steps));
  j.set("local_steps", static_cast<double>(result.local_steps));
  if (result.lssr_applicable) {
    j.set("lssr", result.lssr());
  } else {
    j.set("lssr", nullptr);
  }
  j.set("sim_time_s", result.sim_time_s);
  j.set("wall_time_s", result.wall_time_s);
  j.set("comm_bytes", result.comm_bytes);
  j.set("reached_target", result.reached_target);
  j.set("diverged", result.diverged);
  j.set("best_top1", result.best_top1);
  j.set("best_top5", result.best_top5);
  j.set("best_perplexity", result.best_perplexity);

  JsonValue history = JsonValue::array();
  for (const EvalPoint& pt : result.eval_history) {
    JsonValue p = JsonValue::object();
    p.set("iteration", static_cast<double>(pt.iteration));
    p.set("epoch", pt.epoch);
    p.set("sim_time_s", pt.sim_time_s);
    p.set("loss", pt.loss);
    p.set("top1", pt.top1);
    p.set("top5", pt.top5);
    p.set("perplexity", pt.perplexity);
    history.push(std::move(p));
  }
  j.set("eval_history", std::move(history));

  // Emitted only on opt-in (TrainJob::record_sync_cost): the golden parity
  // records predate the SyncCost breakdown and must stay byte-identical.
  if (result.sync_cost_recorded) {
    const SyncCostTotals& s = result.sync_cost;
    JsonValue sc = JsonValue::object();
    sc.set("rounds", static_cast<double>(s.rounds));
    sc.set("transfer_s", s.transfer_s);
    sc.set("encode_s", s.encode_s);
    sc.set("decode_s", s.decode_s);
    sc.set("fault_penalty_s", s.fault_penalty_s);
    sc.set("wire_bytes", s.wire_bytes);
    sc.set("dense_bytes", s.dense_bytes);
    if (s.ps_shards > 0) {
      // Central ingest tier (PS backend rounds only): shard count and the
      // busiest shard's accumulated wire bytes / ingest time.
      sc.set("ps_shards", static_cast<double>(s.ps_shards));
      sc.set("max_shard_wire_bytes", s.max_shard_wire_bytes);
      sc.set("max_ingest_s", s.max_ingest_s);
    }
    if (s.slices > 1) {
      // Sliced data plane (same gate rule as ps_shards: single-slice runs
      // predate the knob and must serialize identically).
      sc.set("slices", static_cast<double>(s.slices));
      sc.set("max_slice_wire_bytes", s.max_slice_wire_bytes);
      sc.set("overlap_saved_s", s.overlap_saved_s);
    }
    if (s.measured_wire_bytes > 0) {
      // Measured wall-clock transfer cost (tcp transport only — the in-proc
      // carrier has no wire, so these stay zero and are omitted): the
      // calibration inputs for the analytic CostModel.
      sc.set("measured_sync_s", s.measured_sync_s);
      sc.set("measured_wire_bytes", s.measured_wire_bytes);
    }
    j.set("sync_cost", std::move(sc));
  }

  if (result.faults.any()) {
    const FaultSummary& f = result.faults;
    JsonValue fj = JsonValue::object();
    fj.set("crashes", static_cast<double>(f.crashes));
    fj.set("restarts", static_cast<double>(f.restarts));
    fj.set("recovery_syncs", static_cast<double>(f.recovery_syncs));
    fj.set("messages_dropped", static_cast<double>(f.messages_dropped));
    fj.set("messages_delayed", static_cast<double>(f.messages_delayed));
    fj.set("messages_duplicated",
           static_cast<double>(f.messages_duplicated));
    fj.set("ps_timeouts", static_cast<double>(f.ps_timeouts));
    fj.set("ps_give_ups", static_cast<double>(f.ps_give_ups));
    fj.set("straggler_episodes", static_cast<double>(f.straggler_episodes));
    fj.set("quorum_lost_rounds", static_cast<double>(f.quorum_lost_rounds));
    JsonValue events = JsonValue::array();
    for (const FaultEvent& e : f.events) {
      JsonValue ev = JsonValue::object();
      ev.set("kind", fault_kind_name(e.kind));
      ev.set("rank", static_cast<double>(e.rank));
      ev.set("iteration", static_cast<double>(e.iteration));
      ev.set("detail", e.detail);
      events.push(std::move(ev));
    }
    fj.set("events", std::move(events));
    j.set("faults", std::move(fj));
  }
  return j;
}

void write_run_record(const std::string& path, const TrainJob& job,
                      const TrainResult& result) {
  JsonValue record = JsonValue::object();
  record.set("job", job_to_json(job));
  record.set("result", result_to_json(result));
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_run_record: cannot open " + path);
  out << record.dump(2) << "\n";
  if (!out) throw std::runtime_error("write_run_record: write failed");
}

}  // namespace selsync
