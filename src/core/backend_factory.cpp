#include "core/backend_factory.hpp"

#include <stdexcept>
#include <string>

namespace selsync {

void validate_backend_choice(const TrainJob& job) {
  if (job.ps_shards == 0)
    throw std::invalid_argument("TrainJob: ps_shards must be >= 1");
  if (job.ps_shards > 1 && job.backend != BackendKind::kParameterServer &&
      job.strategy != StrategyKind::kSsp)
    throw std::invalid_argument(
        std::string("TrainJob: ps_shards > 1 shards the parameter-server "
                    "tier, but the '") +
        backend_kind_name(job.backend) +
        "' backend has no central store and the strategy is not SSP — use "
        "--backend ps (or --strategy ssp), or drop --ps-shards");
  const bool gradient_payload =
      job.strategy == StrategyKind::kBsp ||
      (job.strategy == StrategyKind::kSelSync &&
       job.selsync.aggregation == AggregationMode::kGradients);
  if (job.slices == 0)
    throw std::invalid_argument(
        "TrainJob: slices must be >= 1 (1 is the unsliced step-end barrier)");
  if (job.slices > 1 && job.strategy == StrategyKind::kEasgd)
    throw std::invalid_argument(
        "TrainJob: slices > 1 slices the aggregation payload, but EASGD's "
        "elastic center exchange is not a payload allreduce — drop --slices "
        "or pick another strategy");
  if (job.slices > 1 && job.strategy == StrategyKind::kSsp)
    throw std::invalid_argument(
        "TrainJob: slices > 1 slices synchronous aggregation rounds, but SSP "
        "has none (asynchronous push/pull only) — drop --slices or pick a "
        "synchronous strategy");
  if (job.overlap) {
    if (job.slices <= 1)
      throw std::invalid_argument(
          "TrainJob: overlap hides slice communication behind backward "
          "compute, but a single-slice payload is only ready when backward "
          "finishes — raise --slices above 1 or drop --overlap");
    if (!gradient_payload)
      throw std::invalid_argument(
          std::string("TrainJob: overlap needs gradient payloads — ") +
          strategy_kind_name(job.strategy) +
          (job.strategy == StrategyKind::kSelSync
               ? " is configured for parameter aggregation, and parameters "
                 "only exist after the optimizer step, when backward compute "
                 "is already over — set --aggregation ga or drop --overlap"
               : " moves parameter/elastic payloads, which only exist after "
                 "the optimizer step, when backward compute is already over "
                 "— use BSP or SelSync with --aggregation ga, or drop "
                 "--overlap"));
  }
  if (job.compression.kind != CompressionKind::kNone) {
    // The codec is fused into the backend's *gradient* data plane
    // (allreduce_encoded); strategies whose payloads are parameters or
    // elastic differences would silently ship dense, so reject the combo
    // instead of ignoring the flag (paper §II-D: parameters compress
    // poorly via pruning).
    if (!gradient_payload)
      throw std::invalid_argument(
          std::string("TrainJob: compression applies to gradient-aggregation "
                      "payloads only, but ") +
          strategy_kind_name(job.strategy) +
          (job.strategy == StrategyKind::kSelSync
               ? " is configured for parameter aggregation — set "
                 "selsync.aggregation = kGradients (--aggregation ga) or "
                 "drop the codec"
               : " moves parameter/elastic payloads — use BSP or SelSync "
                 "with gradient aggregation, or drop the codec"));
  }
  if (job.transport == TransportKind::kTcp &&
      job.engine == EngineKind::kDes)
    throw std::invalid_argument(
        "TrainJob: the tcp transport parks worker threads in blocking socket "
        "reads, which would stall the DES engine's cooperative fibers — use "
        "--engine threads with --transport tcp, or --transport inproc with "
        "--engine des");
  if (job.faults.enabled()) {
    job.faults.validate(job.workers, job.max_iterations);
    if (!job.faults.crashes.empty() && job.strategy != StrategyKind::kSsp &&
        job.backend != BackendKind::kSharedMemory)
      throw std::invalid_argument(
          std::string("TrainJob: crash injection for bulk-synchronous "
                      "strategies requires the shared backend, not '") +
          backend_kind_name(job.backend) +
          "' (degraded channel/PS topologies — a ring with a hole, a tree "
          "with a dead subtree, a store with detached clients — are not "
          "modeled); use --backend shared or drop the crash plan");
  }
}

std::unique_ptr<CommBackend> make_backend(const TrainJob& job,
                                          FaultInjector* faults) {
  validate_backend_choice(job);
  const bool ssp = job.strategy == StrategyKind::kSsp;
  CommBackendConfig config;
  // SSP is defined against a central store: it always gets the PS tier,
  // whatever the backend knob says (the knob selects how synchronous
  // payloads move).
  config.kind = ssp ? BackendKind::kParameterServer : job.backend;
  config.workers = job.workers;
  config.topology = job.topology;
  config.transport = job.transport;
  config.faults = faults;
  // The job's gradient codec rides inside the backend's data plane
  // (validate_backend_choice guarantees it only appears with gradient
  // payloads); SSP's push/pull plane never encodes.
  if (!ssp) config.compression = job.compression;
  config.ps_shards = job.ps_shards;
  if (config.kind == BackendKind::kParameterServer)
    config.initial_params = job.model_factory(job.seed)->get_flat_params();
  return make_comm_backend(config);
}

CommBackend& BackendLifecycle::create(const TrainJob& phase_job,
                                      FaultInjector* faults,
                                      const BackendHandoff* carried) {
  if (backend_)
    throw std::logic_error(
        "BackendLifecycle: create() with a live backend — teardown() the "
        "previous phase first");
  backend_ = make_backend(phase_job, faults);
  // Note the order: a carried central store overwrites the iteration-0 seed
  // make_backend gave a fresh PS tier — a later phase must resume from the
  // boundary model, not the initial one.
  if (carried) backend_->adopt_handoff(*carried);
  return *backend_;
}

void BackendLifecycle::drain() {
  if (!backend_)
    throw std::logic_error("BackendLifecycle: drain() — no live backend");
  backend_->drain();
}

BackendHandoff BackendLifecycle::handoff() const {
  if (!backend_)
    throw std::logic_error("BackendLifecycle: handoff() — no live backend");
  return backend_->extract_handoff();
}

void BackendLifecycle::teardown() { backend_.reset(); }

}  // namespace selsync
