// Helpers shared by the trainer's setup code and the WorkerLoop stages
// (split out of the pre-refactor trainer monolith). Internal to src/core —
// nothing here is part of the public training API.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"

namespace selsync::detail {

inline constexpr size_t kEvalBatch = 256;

/// EWMA smoothing factor for Δ(g): explicit job value, else the paper's
/// N/100 rule clamped to [0.02, 1].
double ewma_alpha_for(const TrainJob& job);

double sq_norm(const std::vector<float>& v);

EvalPoint make_eval_point(Model& model, const Dataset& test, uint64_t iteration,
                          double epoch, double sim_time);

bool target_reached(const TrainJob& job, const EvalPoint& pt);

void update_bests(TrainResult& result, const EvalPoint& pt);

/// Which payload the aggregation rounds move for a given job (§III-C).
AggregationMode aggregation_for(const TrainJob& job);

/// In-memory checkpoint a worker restores after a restartable crash
/// (DESIGN.md "Failure model"): the local replica's state — parameters,
/// optimizer moments and the shard-stream position. The global view is
/// refreshed separately by the recovery sync.
struct WorkerCheckpoint {
  uint64_t iteration = 0;
  std::vector<float> params;
  std::string optimizer_state;
  size_t cursor = 0;
  size_t consumed = 0;
};

void save_checkpoint(WorkerCheckpoint& ckpt, uint64_t iteration, Model& model,
                     const Optimizer& optimizer, const ShardLoader& loader);

void restore_checkpoint(const WorkerCheckpoint& ckpt, Model& model,
                        Optimizer& optimizer, ShardLoader& loader);

}  // namespace selsync::detail
