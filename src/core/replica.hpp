// The replica data plane behind the transport seam (DESIGN.md §13).
//
// A WorkerLoop used to own its model/optimizer/loader directly, which pinned
// every replica into the master process. Replica abstracts exactly the verbs
// the loops actually issue — load data, take a training step, move flat
// parameter/gradient vectors, checkpoint, evaluate — so the same loop can
// drive either carrier:
//
//  * LocalReplica (transport inproc): the historical mode. Model, optimizer,
//    shard loader, checkpoint and EMA tracker live in the master process;
//    every verb is a direct call.
//  * RemoteReplica (transport tcp): the replica state lives in a separate
//    worker *process*. Every verb becomes one WireFormat frame pair on a
//    real loopback TCP connection (master-relay topology: the master keeps
//    all protocol machinery — CommBackend collectives, sync policy, fault
//    schedule, simulated time — and relays payloads to the process that owns
//    the floats). Each verb's wall time and frame bytes are measured; the
//    loops drain them into SyncCost::measured_* for CostModel calibration.
//
// Determinism: both carriers run the identical float computation in the same
// order — a LocalReplica in the master and a LocalReplica behind
// serve_replica in a forked child are the same code on the same inherited
// job state — which is why the golden records stay byte-identical over TCP
// (the socket golden tier proves it).
//
// Bootstrap (transport tcp): open_transport() binds a loopback listener,
// fork()s one child per rank *before* any cluster thread exists (the job's
// closures — datasets, model factories, lambdas — are inherited through
// fork, which is what lets non-serializable jobs cross the process
// boundary), then accepts N Hello handshakes carrying {rank, job
// fingerprint}. External workers (tcp.spawn_workers = false) are
// selsync_worker processes dialing the same port with the same flags; the
// fingerprint check rejects a worker launched with a different job.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/metrics.hpp"

namespace selsync {

/// Wall-clock cost of the replica verbs issued since the last drain: real
/// elapsed seconds and real frame bytes (headers + payloads, both
/// directions). Always zero for a LocalReplica — there is no wire.
struct ReplicaMeasure {
  double seconds = 0.0;
  uint64_t bytes = 0;
};

/// The verb surface a WorkerLoop needs from its replica. Calls are issued
/// from that worker's thread only; implementations need no locking.
class Replica {
 public:
  virtual ~Replica() = default;

  virtual size_t param_count() = 0;
  /// Flat-vector packing order (input layer first) — the slice schedule's
  /// input.
  virtual std::vector<size_t> layer_sizes() = 0;

  /// Advances the shard stream and returns the indices it passed over
  /// (the injection protocol pools these master-side).
  virtual std::vector<size_t> next_indices() = 0;
  /// Stages the batch for these explicit indices (own shard + injected
  /// pool).
  virtual void load_batch(const std::vector<size_t>& indices) = 0;
  /// Advances the shard stream and stages its next batch.
  virtual void load_next_batch() = 0;

  /// Forward/backward on the staged batch.
  virtual void train_step() = 0;
  /// train_step() plus the resulting flat gradient (one round trip on the
  /// wire; the synchronous loops always need the gradient for Δ(g)).
  virtual std::vector<float> train_step_grads() = 0;
  virtual void set_flat_grads(const std::vector<float>& grads) = 0;
  virtual void optimizer_step(uint64_t iteration, double epoch) = 0;

  virtual std::vector<float> flat_params() = 0;
  virtual void set_flat_params(const std::vector<float>& params) = 0;

  /// Snapshots {params, optimizer state, shard-stream position} as the
  /// standing crash checkpoint.
  virtual void save_checkpoint(uint64_t iteration) = 0;
  /// Restores the standing checkpoint; returns the iteration it was taken
  /// at.
  virtual uint64_t restore_checkpoint() = 0;

  virtual void ema_init(double decay) = 0;
  virtual void ema_update() = 0;
  /// Evaluates on the job's test set (under the EMA weights when ema_init
  /// was called) and returns the point.
  virtual EvalPoint evaluate(uint64_t iteration, double epoch,
                             double sim_time) = 0;

  /// Returns the measured cost accumulated since the last call and resets
  /// it. The loops call this around each priced synchronization round so
  /// SyncCost::measured_* carries exactly that round's data-plane cost.
  virtual ReplicaMeasure take_measured() { return {}; }
};

/// The in-proc replica (also the worker-process side of the TCP carrier:
/// serve_replica drives one of these).
std::unique_ptr<Replica> make_local_replica(const TrainJob& job,
                                            std::vector<size_t> order,
                                            size_t local_batch);

/// The local batch size every replica of this job loads: the
/// injection-adjusted b' when data injection is on (synchronous strategies
/// only), else the job's batch size. One function, used by the master's
/// bootstrap and the worker process alike, so the two sides cannot disagree.
size_t replica_local_batch(const TrainJob& job);

/// ---- the TCP carrier -----------------------------------------------------

/// RPC verbs of the replica wire protocol, carried in the WireFormat frame
/// header. Values are pinned: they are the cross-process contract between
/// selsync_cli and selsync_worker builds.
enum class ReplicaVerb : uint16_t {
  kHello = 1,  // worker -> master: u32 rank, u64 job fingerprint
  kHelloAck,   // master -> worker: u32 rank (echo)
  kLayerSizes,
  kNextIndices,
  kLoadBatch,
  kLoadNextBatch,
  kTrainStep,
  kTrainStepGrads,
  kSetFlatGrads,
  kOptimizerStep,
  kFlatParams,
  kSetFlatParams,
  kSaveCheckpoint,
  kRestoreCheckpoint,
  kEmaInit,
  kEmaUpdate,
  kEvaluate,
  kShutdown,  // master -> worker: serve loop acks and returns
  kError,     // worker -> master: u32 length + what() of the thrown error
};

class TcpConn;

/// Hash of the job fields both sides must agree on (cluster shape, budget,
/// seed, strategy/partition/backend/codec, Δ threshold, EMA decay). The
/// Hello handshake rejects a worker whose fingerprint differs — the pointed
/// failure mode for "master and worker launched with different flags".
uint64_t job_fingerprint(const TrainJob& job);

/// Worker-process serve loop: answers replica verbs on `conn` until
/// kShutdown (clean return) or the connection dies (SocketError /
/// WireFormatError propagates). A verb whose handler throws answers kError
/// with the message, then rethrows. `max_verbs` bounds the loop for the
/// chaos tests (a worker that dies mid-round).
void serve_replica(TcpConn& conn, Replica& replica,
                   size_t max_verbs = SIZE_MAX);

/// Everything a worker process does: rebuild rank's shard order from the
/// job (deterministic), build the LocalReplica, dial the master, handshake,
/// serve until shutdown. The default body of a forked child, and the whole
/// body of the selsync_worker tool.
void serve_tcp_worker(const TrainJob& job, size_t rank,
                      const std::string& host, uint16_t port);

/// One run's transport: hands each worker thread its rank's Replica.
/// Outlives the cluster; the trainer owns it.
class TransportSession {
 public:
  virtual ~TransportSession() = default;
  virtual std::unique_ptr<Replica> make_replica(size_t rank) = 0;
  /// Unblocks every worker thread parked in a replica verb (the cluster
  /// abort path). Safe from any thread; no-op for inproc.
  virtual void abort() {}
  /// Orderly teardown after the cluster joined: shutdown verbs to live
  /// workers, close connections, reap child processes. Never throws (it
  /// runs on the exception path too); no-op for inproc.
  virtual void finish() {}
};

/// Builds the session for job.transport: inproc hands out LocalReplicas;
/// tcp binds the listener, spawns/accepts the workers and hands out
/// RemoteReplicas. Throws SocketError when a worker never dials in within
/// tcp.accept_timeout_s, std::invalid_argument on a Hello whose rank or
/// fingerprint is wrong.
std::unique_ptr<TransportSession> open_transport(const TrainJob& job);

}  // namespace selsync
