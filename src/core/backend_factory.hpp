// The one place a TrainJob turns into a CommBackend.
//
// Before this factory existed, every call site (trainer run_synchronous,
// trainer run_ssp, benches) poked CommBackendConfig fields by hand, and the
// compatibility rules — which codec/strategy pairs are legal, which fault
// plans each backend can carry, when ps_shards means anything — lived only
// in TrainJob::validate(), free to drift from what construction actually
// did. validate_backend_choice() now owns those rules; TrainJob::validate()
// and both factories call it, so validation and construction cannot
// disagree.
#pragma once

#include <memory>

#include "comm/comm_backend.hpp"
#include "core/config.hpp"

namespace selsync {

/// The backend-compatibility slice of TrainJob validation: codec vs payload
/// kind, crash plans vs backend, ps_shards vs the presence of a PS tier.
/// Throws std::invalid_argument with an actionable message on any illegal
/// combination; called by TrainJob::validate() and by both factories below.
void validate_backend_choice(const TrainJob& job);

/// Builds the backend run_synchronous drives: the job's declared kind with
/// the job's topology/codec/shards threaded through, seeded from the job's
/// model when a central store is needed.
std::unique_ptr<CommBackend> make_backend(const TrainJob& job,
                                          FaultInjector* faults);

/// Builds the backend run_ssp drives: always the parameter-server tier
/// (SSP is defined against a central store, whatever the job's backend
/// knob says — the knob selects how *synchronous* payloads move), sharded
/// per the job's ps_shards.
std::unique_ptr<CommBackend> make_ssp_backend(const TrainJob& job,
                                              FaultInjector* faults);

}  // namespace selsync
