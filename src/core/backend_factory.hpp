// The one place a TrainJob turns into a CommBackend.
//
// Before this factory existed, every call site (trainer run_synchronous,
// trainer run_ssp, benches) poked CommBackendConfig fields by hand, and the
// compatibility rules — which codec/strategy pairs are legal, which fault
// plans each backend can carry, when ps_shards means anything, which
// transport/engine pairs work — lived only in TrainJob::validate(), free to
// drift from what construction actually did. validate_backend_choice() now
// owns those rules; TrainJob::validate() and make_backend() call it, so
// validation and construction cannot disagree.
#pragma once

#include <memory>

#include "comm/comm_backend.hpp"
#include "core/config.hpp"

namespace selsync {

/// The backend/transport-compatibility slice of TrainJob validation: codec
/// vs payload kind, crash plans vs backend, ps_shards vs the presence of a
/// PS tier, transport vs engine. Throws std::invalid_argument with an
/// actionable message on any illegal combination; called by
/// TrainJob::validate() and by make_backend() below.
void validate_backend_choice(const TrainJob& job);

/// Builds the backend the trainer drives, for every strategy. Synchronous
/// strategies get the job's declared kind with the job's
/// topology/codec/shards threaded through; SSP always gets the
/// parameter-server tier (SSP is defined against a central store, whatever
/// the job's backend knob says — the knob selects how *synchronous*
/// payloads move). Central stores are seeded from the job's model.
std::unique_ptr<CommBackend> make_backend(const TrainJob& job,
                                          FaultInjector* faults = nullptr);

}  // namespace selsync
