// The one place a TrainJob turns into a CommBackend.
//
// Before this factory existed, every call site (trainer run_synchronous,
// trainer run_ssp, benches) poked CommBackendConfig fields by hand, and the
// compatibility rules — which codec/strategy pairs are legal, which fault
// plans each backend can carry, when ps_shards means anything, which
// transport/engine pairs work — lived only in TrainJob::validate(), free to
// drift from what construction actually did. validate_backend_choice() now
// owns those rules; TrainJob::validate() and make_backend() call it, so
// validation and construction cannot disagree.
#pragma once

#include <memory>

#include "comm/comm_backend.hpp"
#include "core/config.hpp"

namespace selsync {

/// The backend/transport-compatibility slice of TrainJob validation: codec
/// vs payload kind, crash plans vs backend, ps_shards vs the presence of a
/// PS tier, transport vs engine. Throws std::invalid_argument with an
/// actionable message on any illegal combination; called by
/// TrainJob::validate() and by make_backend() below.
void validate_backend_choice(const TrainJob& job);

/// Builds the backend the trainer drives, for every strategy. Synchronous
/// strategies get the job's declared kind with the job's
/// topology/codec/shards threaded through; SSP always gets the
/// parameter-server tier (SSP is defined against a central store, whatever
/// the job's backend knob says — the knob selects how *synchronous*
/// payloads move). Central stores are seeded from the job's model.
/// Equivalent to BackendLifecycle::create for phase 0 of a one-phase plan;
/// kept as the direct entry for benches and tests that drive a backend
/// without a trainer.
std::unique_ptr<CommBackend> make_backend(const TrainJob& job,
                                          FaultInjector* faults = nullptr);

/// The phased backend lifecycle the trainer drives (DESIGN.md §14):
///
///   create(phase 0) -> [cluster runs] -> drain -> handoff
///     -> create(phase 1, carried handoff) -> ... -> teardown
///
/// The lifecycle owns the live backend between calls, so backend
/// destruction is an explicit lifecycle step instead of ad-hoc scope exit
/// in the trainer. A legacy single-phase run is the degenerate lifecycle:
/// one create, no handoff, teardown at the end.
class BackendLifecycle {
 public:
  /// Phase-0 create is exactly make_backend(); later phases additionally
  /// adopt `carried` (the previous phase's handoff — codec residuals,
  /// central-store contents, SSP clocks) into the fresh backend. Throws
  /// std::logic_error if a backend is still live (teardown first).
  CommBackend& create(const TrainJob& phase_job, FaultInjector* faults,
                      const BackendHandoff* carried = nullptr);

  /// Quiesces in-flight rounds after the phase's workers joined at the
  /// boundary; must precede handoff().
  void drain();

  /// Extracts the live backend's carry-over state for the next create().
  BackendHandoff handoff() const;

  /// Destroys the live backend — the explicit end of its lifecycle.
  void teardown();

  /// The live backend (null between teardown and the next create).
  CommBackend* live() { return backend_.get(); }

 private:
  std::unique_ptr<CommBackend> backend_;
};

}  // namespace selsync
