// Run metrics: the quantities Table I and the convergence figures report.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "comm/comm_backend.hpp"
#include "comm/fault_injector.hpp"
#include "data/dataset.hpp"
#include "nn/model.hpp"

namespace selsync {

struct EvalPoint {
  uint64_t iteration = 0;
  double epoch = 0.0;
  double sim_time_s = 0.0;
  double loss = 0.0;
  double top1 = 0.0;
  double top5 = 0.0;
  double perplexity = 0.0;
};

struct TrainResult {
  uint64_t iterations = 0;   // per-worker steps executed
  uint64_t sync_steps = 0;   // cluster-wide synchronization rounds
  uint64_t local_steps = 0;  // steps applied with local updates only

  /// False for SSP: workers never aggregate, so the LSSR has no meaning
  /// (Table I prints "-" there).
  bool lssr_applicable = true;

  /// Local-to-synchronous step ratio, Eqn. 4 of the paper.
  double lssr() const {
    const uint64_t total = sync_steps + local_steps;
    return total == 0 ? 0.0
                      : static_cast<double>(local_steps) /
                            static_cast<double>(total);
  }
  /// Communication reduction w.r.t. BSP implied by the LSSR: 1/(1-LSSR).
  double comm_reduction() const {
    const double l = lssr();
    return l >= 1.0 ? std::numeric_limits<double>::infinity()
                    : 1.0 / (1.0 - l);
  }

  double sim_time_s = 0.0;        // simulated cluster time at completion
  double comm_bytes = 0.0;        // per-worker paper-scale bytes moved
  double wall_time_s = 0.0;       // actual host time the run took

  /// The root worker's accumulated per-round SyncCost account (transfer /
  /// codec / fault seconds, wire-vs-dense bytes) over every priced
  /// synchronization round. Serialized into the run record only when the
  /// job sets record_sync_cost (sync_cost_recorded mirrors that flag), so
  /// pre-existing golden records stay byte-identical.
  SyncCostTotals sync_cost;
  bool sync_cost_recorded = false;

  std::vector<EvalPoint> eval_history;
  EvalPoint final_eval;
  double best_top1 = 0.0;
  double best_top5 = 0.0;
  double best_perplexity = std::numeric_limits<double>::infinity();
  bool reached_target = false;
  /// True when training was cut short because the loss became non-finite
  /// (e.g. a learning rate too hot for long local phases).
  bool diverged = false;

  /// Every fault injected and every recovery action taken, in one
  /// deterministic order (empty when the job carries no FaultPlan). Runs
  /// with the same job + plan produce identical summaries byte for byte.
  FaultSummary faults;

  /// Worker-0 traces (enabled via TrainJob flags).
  std::vector<double> delta_trace;
  std::vector<double> grad_sq_trace;

  /// Worker-0 parameter snapshots keyed by the epoch they were taken at
  /// (Fig. 11's weight-distribution comparison).
  std::map<double, std::vector<float>> weight_snapshots;
};

/// Evaluates `model` over the whole dataset in `batch_size` chunks.
EvalStats evaluate_dataset(Model& model, const Dataset& data,
                           size_t batch_size);

}  // namespace selsync
