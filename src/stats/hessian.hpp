// Largest Hessian eigenvalue via power iteration on finite-difference
// Hessian-vector products (Fig. 4: the expensive second-order signal that
// first-order gradient variance approximates).
//
//   H v ≈ (∇F(w + εv) − ∇F(w)) / ε
//
// Each power-iteration step costs one extra forward+backward pass, which is
// exactly why the paper tracks Δ(g_i) instead during real training.
#pragma once

#include <cstdint>

#include "nn/model.hpp"

namespace selsync {

struct HessianProbeOptions {
  size_t power_iterations = 8;
  double epsilon = 1e-3;
  uint64_t seed = 42;
};

struct HessianProbeResult {
  double top_eigenvalue = 0.0;
  size_t iterations_used = 0;
  double grad_sq_norm = 0.0;  // ||∇F(w)||² at the probe point, for free
};

/// Estimates the top Hessian eigenvalue of `model`'s loss on `batch`.
/// Parameters are restored to their original values before returning.
HessianProbeResult hessian_top_eigenvalue(Model& model, const Batch& batch,
                                          const HessianProbeOptions& options = {});

struct HutchinsonOptions {
  size_t probes = 8;       // Rademacher probe vectors
  double epsilon = 1e-3;   // finite-difference step
  uint64_t seed = 43;
};

struct HutchinsonResult {
  double trace_estimate = 0.0;
  double stddev = 0.0;  // across probes; the estimator's own noise
  size_t probes_used = 0;
};

/// Hutchinson estimator for the Hessian trace: tr(H) = E_z[z^T H z] with
/// Rademacher z, each H z by finite differences (two grad evaluations per
/// probe). Complements the top-eigenvalue probe of Fig. 4: the trace tracks
/// overall curvature mass, not just the sharpest direction.
HutchinsonResult hessian_trace_hutchinson(Model& model, const Batch& batch,
                                          const HutchinsonOptions& options = {});

}  // namespace selsync
