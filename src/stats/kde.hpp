// Gaussian kernel density estimation, used to reproduce the gradient
// distribution plots (Fig. 3) and the weight distribution comparison of
// BSP vs SelSync-PA vs SelSync-GA (Fig. 11).
#pragma once

#include <span>
#include <vector>

namespace selsync {

struct KdeResult {
  std::vector<double> grid;     // evaluation points
  std::vector<double> density;  // estimated density at each grid point
  double bandwidth = 0.0;
};

/// Silverman's rule-of-thumb bandwidth: 1.06 * sigma * n^(-1/5).
double silverman_bandwidth(std::span<const float> samples);

/// Evaluates the Gaussian KDE of `samples` on `grid_points` evenly spaced
/// points spanning [min - 3h, max + 3h]. `bandwidth` <= 0 selects Silverman.
KdeResult gaussian_kde(std::span<const float> samples, size_t grid_points = 128,
                       double bandwidth = 0.0);

/// Total-variation style distance between two KDEs evaluated on a common
/// grid: 0 = identical distributions, 2 = disjoint. Used by tests and the
/// Fig. 11 bench to quantify "PA stays close to BSP, GA drifts".
double kde_l1_distance(std::span<const float> a, std::span<const float> b,
                       size_t grid_points = 256);

}  // namespace selsync
