#include "stats/ewma.hpp"

namespace selsync {

Ewma::Ewma(double alpha, size_t window) : alpha_(alpha), window_(window) {
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument("Ewma: alpha in (0, 1]");
  if (window == 0) throw std::invalid_argument("Ewma: window must be > 0");
}

double Ewma::windowed_variance() const {
  if (history_.size() < 2) return 0.0;
  double mean = 0.0;
  for (double v : history_) mean += v;
  mean /= static_cast<double>(history_.size());
  double var = 0.0;
  for (double v : history_) {
    const double d = v - mean;
    var += d * d;
  }
  return var / static_cast<double>(history_.size());
}

double Ewma::update(double observation) {
  if (!initialized_) {
    value_ = observation;
    initialized_ = true;
  } else {
    value_ = alpha_ * observation + (1.0 - alpha_) * value_;
  }
  history_.push_back(observation);
  if (history_.size() > window_) history_.pop_front();
  return value_;
}

}  // namespace selsync
