// Numerically stable running statistics (Welford), used for the gradient
// variance traces of Figs. 4/5.
#pragma once

#include <cmath>
#include <cstddef>

namespace selsync {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  void reset() { *this = RunningStats(); }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance (0 with fewer than 2 observations).
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace selsync
