// Per-layer relative gradient change (extension beyond the paper).
//
// The paper computes one Δ(g_i) over the whole flattened gradient; layers
// saturate at very different times (Fig. 3 shows the KDE of a single layer),
// so tracking Δ per parameter tensor exposes which layers still carry
// significant updates — the information a future layer-selective SelSync
// (communicating only the still-moving layers, GradientFlow-style) would
// act on.
#pragma once

#include <string>
#include <vector>

#include "nn/model.hpp"
#include "stats/grad_change.hpp"

namespace selsync {

class LayerwiseGradChange {
 public:
  /// Binds to `model`'s parameter list (one tracker per parameter tensor).
  LayerwiseGradChange(Model& model, double alpha = 0.16, size_t window = 25);

  /// Feeds the current per-layer gradients (after a train_step); returns
  /// the per-layer Δ(g_i) values in parameter order.
  const std::vector<double>& update();

  size_t layers() const { return trackers_.size(); }
  const std::string& layer_name(size_t i) const { return names_[i]; }
  const std::vector<double>& last_deltas() const { return last_deltas_; }

  /// Fraction of layers whose Δ exceeds `delta` at the last update — how
  /// much of the model a layer-selective policy would still synchronize.
  double fraction_above(double delta) const;

  /// The whole-model Δ(g_i) computed over the same step, for comparison
  /// against the paper's single-threshold rule.
  double global_delta() const { return global_.last_delta(); }

 private:
  Model* model_;
  std::vector<RelativeGradChange> trackers_;
  std::vector<std::string> names_;
  std::vector<double> last_deltas_;
  RelativeGradChange global_;
};

}  // namespace selsync
