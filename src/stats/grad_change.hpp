// Relative gradient change Δ(g_i), the paper's core signal (Eqn. 2):
//
//   Δ(g_i) = | (E[||∇F_i||²] − E[||∇F_{i−1}||²]) / E[||∇F_{i−1}||²] |
//
// where E[·] is the EWMA-smoothed squared L2 norm of the mini-batch
// gradient. SelSync synchronizes whenever any worker's Δ(g_i) ≥ δ.
#pragma once

#include <span>

#include "stats/ewma.hpp"

namespace selsync {

/// A copyable capture of a RelativeGradChange's full mutable state,
/// carried across SyncPlan phase boundaries so a successor backend sees
/// the same Δ(g) trajectory the predecessor did (DESIGN.md §14). The
/// handoff-sync lint pass pins these fields against the class members.
struct GradChangeSnapshot {
  EwmaSnapshot ewma;
  double prev_smoothed = 0.0;
  double last_delta = 0.0;
  size_t iterations = 0;
};

class RelativeGradChange {
 public:
  /// `alpha`/`window` parameterize the EWMA (paper: window 25, alpha N/100).
  explicit RelativeGradChange(double alpha = 0.16, size_t window = 25);

  /// Feeds this iteration's squared gradient norm; returns Δ(g_i).
  /// The first observation returns 0 (no previous smoothed value).
  double update(double sq_grad_norm);

  /// Convenience: computes ||g||² from a flat gradient and updates.
  double update_from_grad(std::span<const float> grad);

  double last_delta() const { return last_delta_; }
  double smoothed_sq_norm() const { return ewma_.value(); }
  size_t iterations() const { return iterations_; }

  /// Variance of the retained norm window; part of the per-iteration
  /// statistic whose cost Fig. 8a measures.
  double windowed_variance() const { return ewma_.windowed_variance(); }

  /// Captures the mutable state for a SyncPlan phase handoff.
  GradChangeSnapshot snapshot() const {
    return {ewma_.snapshot(), prev_smoothed_, last_delta_, iterations_};
  }

  /// Restores a capture taken by snapshot(); alpha/window stay as
  /// constructed (they are phase config, not handoff state).
  void restore(const GradChangeSnapshot& snap) {
    ewma_.restore(snap.ewma);
    prev_smoothed_ = snap.prev_smoothed;
    last_delta_ = snap.last_delta;
    iterations_ = snap.iterations;
  }

 private:
  Ewma ewma_;
  double prev_smoothed_ = 0.0;
  double last_delta_ = 0.0;
  size_t iterations_ = 0;
};

}  // namespace selsync
