#include "stats/layerwise_grad_change.hpp"

namespace selsync {

LayerwiseGradChange::LayerwiseGradChange(Model& model, double alpha,
                                         size_t window)
    : model_(&model), global_(alpha, window) {
  for (const Param* p : model.params()) {
    trackers_.emplace_back(alpha, window);
    names_.push_back(p->name);
  }
  last_deltas_.assign(trackers_.size(), 0.0);
}

const std::vector<double>& LayerwiseGradChange::update() {
  double total_sq = 0.0;
  const auto& params = model_->params();
  for (size_t i = 0; i < params.size(); ++i) {
    const double sq = params[i]->grad.sq_norm();
    total_sq += sq;
    last_deltas_[i] = trackers_[i].update(sq);
  }
  global_.update(total_sq);
  return last_deltas_;
}

double LayerwiseGradChange::fraction_above(double delta) const {
  if (last_deltas_.empty()) return 0.0;
  size_t count = 0;
  for (double d : last_deltas_)
    if (d >= delta) ++count;
  return static_cast<double>(count) / static_cast<double>(last_deltas_.size());
}

}  // namespace selsync
