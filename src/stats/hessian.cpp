#include "stats/hessian.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace selsync {

HessianProbeResult hessian_top_eigenvalue(Model& model, const Batch& batch,
                                          const HessianProbeOptions& options) {
  const std::vector<float> w0 = model.get_flat_params();
  const size_t n = w0.size();

  model.train_step(batch);
  const std::vector<float> g0 = model.get_flat_grads();

  HessianProbeResult res;
  for (float g : g0) res.grad_sq_norm += static_cast<double>(g) * g;

  Rng rng(options.seed);
  std::vector<float> v(n);
  double norm = 0.0;
  for (auto& x : v) {
    x = static_cast<float>(rng.normal());
    norm += static_cast<double>(x) * x;
  }
  norm = std::sqrt(norm);
  for (auto& x : v) x = static_cast<float>(x / norm);

  std::vector<float> w_pert(n), hv(n);
  double eigen = 0.0;
  for (size_t it = 0; it < options.power_iterations; ++it) {
    for (size_t i = 0; i < n; ++i)
      w_pert[i] = w0[i] + static_cast<float>(options.epsilon) * v[i];
    model.set_flat_params(w_pert);
    model.train_step(batch);
    const std::vector<float> g1 = model.get_flat_grads();

    double rayleigh = 0.0, hv_norm = 0.0;
    for (size_t i = 0; i < n; ++i) {
      hv[i] = static_cast<float>((g1[i] - g0[i]) / options.epsilon);
      rayleigh += static_cast<double>(v[i]) * hv[i];
      hv_norm += static_cast<double>(hv[i]) * hv[i];
    }
    eigen = rayleigh;
    res.iterations_used = it + 1;
    hv_norm = std::sqrt(hv_norm);
    if (hv_norm < 1e-12) break;  // flat direction; eigenvalue ~ 0
    for (size_t i = 0; i < n; ++i)
      v[i] = static_cast<float>(hv[i] / hv_norm);
  }

  model.set_flat_params(w0);
  res.top_eigenvalue = eigen;
  return res;
}

HutchinsonResult hessian_trace_hutchinson(Model& model, const Batch& batch,
                                          const HutchinsonOptions& options) {
  const std::vector<float> w0 = model.get_flat_params();
  const size_t n = w0.size();

  model.train_step(batch);
  const std::vector<float> g0 = model.get_flat_grads();

  Rng rng(options.seed);
  std::vector<float> z(n), w_pert(n);
  double sum = 0.0, sum_sq = 0.0;
  for (size_t p = 0; p < options.probes; ++p) {
    for (auto& v : z) v = rng.bernoulli(0.5) ? 1.f : -1.f;
    for (size_t i = 0; i < n; ++i)
      w_pert[i] = w0[i] + static_cast<float>(options.epsilon) * z[i];
    model.set_flat_params(w_pert);
    model.train_step(batch);
    const std::vector<float> g1 = model.get_flat_grads();
    // z^T H z ~ z . (g1 - g0) / eps.
    double quad = 0.0;
    for (size_t i = 0; i < n; ++i)
      quad += static_cast<double>(z[i]) * (g1[i] - g0[i]) / options.epsilon;
    sum += quad;
    sum_sq += quad * quad;
  }
  model.set_flat_params(w0);

  HutchinsonResult res;
  res.probes_used = options.probes;
  res.trace_estimate = sum / options.probes;
  const double var =
      sum_sq / options.probes - res.trace_estimate * res.trace_estimate;
  res.stddev = var > 0 ? std::sqrt(var) : 0.0;
  return res;
}

}  // namespace selsync
