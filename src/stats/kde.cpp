#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace selsync {

double silverman_bandwidth(std::span<const float> samples) {
  const size_t n = samples.size();
  if (n < 2) return 1.0;
  double mean = 0.0;
  for (float v : samples) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (float v : samples) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(n - 1);
  const double sigma = std::sqrt(var);
  const double h =
      1.06 * sigma * std::pow(static_cast<double>(n), -0.2);
  return h > 0.0 ? h : 1e-6;
}

KdeResult gaussian_kde(std::span<const float> samples, size_t grid_points,
                       double bandwidth) {
  if (samples.empty()) throw std::invalid_argument("gaussian_kde: no samples");
  if (grid_points < 2) throw std::invalid_argument("gaussian_kde: small grid");

  KdeResult res;
  res.bandwidth = bandwidth > 0.0 ? bandwidth : silverman_bandwidth(samples);
  const auto [mn_it, mx_it] = std::minmax_element(samples.begin(), samples.end());
  const double lo = *mn_it - 3.0 * res.bandwidth;
  const double hi = *mx_it + 3.0 * res.bandwidth;
  const double step = (hi - lo) / static_cast<double>(grid_points - 1);

  res.grid.resize(grid_points);
  res.density.assign(grid_points, 0.0);
  const double norm =
      1.0 / (static_cast<double>(samples.size()) * res.bandwidth *
             std::sqrt(2.0 * std::numbers::pi));
  const double inv_2h2 = 1.0 / (2.0 * res.bandwidth * res.bandwidth);
  for (size_t g = 0; g < grid_points; ++g) {
    const double x = lo + step * static_cast<double>(g);
    res.grid[g] = x;
    double acc = 0.0;
    for (float s : samples) {
      const double d = x - s;
      acc += std::exp(-d * d * inv_2h2);
    }
    res.density[g] = acc * norm;
  }
  return res;
}

double kde_l1_distance(std::span<const float> a, std::span<const float> b,
                       size_t grid_points) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("kde_l1_distance: empty samples");
  // Build a common grid spanning both sample sets.
  const double ha = silverman_bandwidth(a), hb = silverman_bandwidth(b);
  const auto [amin, amax] = std::minmax_element(a.begin(), a.end());
  const auto [bmin, bmax] = std::minmax_element(b.begin(), b.end());
  const double lo = std::min<double>(*amin - 3 * ha, *bmin - 3 * hb);
  const double hi = std::max<double>(*amax + 3 * ha, *bmax + 3 * hb);
  const double step = (hi - lo) / static_cast<double>(grid_points - 1);

  auto density_at = [&](std::span<const float> s, double h, double x) {
    const double inv_2h2 = 1.0 / (2.0 * h * h);
    double acc = 0.0;
    for (float v : s) {
      const double d = x - v;
      acc += std::exp(-d * d * inv_2h2);
    }
    return acc / (static_cast<double>(s.size()) * h *
                  std::sqrt(2.0 * std::numbers::pi));
  };

  double l1 = 0.0;
  for (size_t g = 0; g < grid_points; ++g) {
    const double x = lo + step * static_cast<double>(g);
    l1 += std::fabs(density_at(a, ha, x) - density_at(b, hb, x)) * step;
  }
  return l1;
}

}  // namespace selsync
