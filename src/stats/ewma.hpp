// Exponentially weighted moving average (paper [43]) used to smooth the
// noisy per-iteration squared gradient norms before computing Δ(g_i).
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>

namespace selsync {

class Ewma {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation. The paper uses
  /// alpha = N/100 (0.16 on a 16-node cluster) and, in addition, keeps a
  /// bounded window of recent observations (window-size 25) whose cost is
  /// what Fig. 8a measures — `window` only bounds the retained history, the
  /// smoothed value itself is the classic recursive EWMA.
  explicit Ewma(double alpha, size_t window = 25);

  /// Feeds an observation, returns the updated smoothed value.
  double update(double observation);

  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  size_t observations_retained() const { return history_.size(); }
  const std::deque<double>& history() const { return history_; }

  /// Variance of the retained window (the per-iteration statistic the
  /// paper's RelativeGradChange maintains; O(window) — this is exactly the
  /// cost Fig. 8a measures growing with the window size).
  double windowed_variance() const;

 private:
  double alpha_;
  size_t window_;
  double value_ = 0.0;
  bool initialized_ = false;
  std::deque<double> history_;
};

}  // namespace selsync
