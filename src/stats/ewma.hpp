// Exponentially weighted moving average (paper [43]) used to smooth the
// noisy per-iteration squared gradient norms before computing Δ(g_i).
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>

namespace selsync {

/// A copyable capture of an Ewma's full mutable state. Carried across phase
/// boundaries by the SyncPlan handoff (DESIGN.md §14); the handoff-sync
/// lint pass pins these fields against Ewma's members, so adding state to
/// one without the other fails `selsync_lint --rules handoff-sync`.
struct EwmaSnapshot {
  double value = 0.0;
  bool initialized = false;
  std::deque<double> history;
};

class Ewma {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation. The paper uses
  /// alpha = N/100 (0.16 on a 16-node cluster) and, in addition, keeps a
  /// bounded window of recent observations (window-size 25) whose cost is
  /// what Fig. 8a measures — `window` only bounds the retained history, the
  /// smoothed value itself is the classic recursive EWMA.
  explicit Ewma(double alpha, size_t window = 25);

  /// Feeds an observation, returns the updated smoothed value.
  double update(double observation);

  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  size_t observations_retained() const { return history_.size(); }
  const std::deque<double>& history() const { return history_; }

  /// Variance of the retained window (the per-iteration statistic the
  /// paper's RelativeGradChange maintains; O(window) — this is exactly the
  /// cost Fig. 8a measures growing with the window size).
  double windowed_variance() const;

  /// Captures the mutable state (not alpha/window — those are config and
  /// travel with the phase's TrainJob, not the handoff).
  EwmaSnapshot snapshot() const { return {value_, initialized_, history_}; }

  /// Restores a capture taken by snapshot(); alpha/window keep the values
  /// this Ewma was constructed with.
  void restore(const EwmaSnapshot& snap) {
    value_ = snap.value;
    initialized_ = snap.initialized;
    history_ = snap.history;
    while (history_.size() > window_) history_.pop_front();
  }

 private:
  double alpha_;
  size_t window_;
  double value_ = 0.0;
  bool initialized_ = false;
  std::deque<double> history_;
};

}  // namespace selsync
