#include "stats/grad_change.hpp"

#include <cmath>

namespace selsync {

RelativeGradChange::RelativeGradChange(double alpha, size_t window)
    : ewma_(alpha, window) {}

double RelativeGradChange::update(double sq_grad_norm) {
  ++iterations_;
  const bool had_prev = ewma_.initialized();
  const double prev = ewma_.value();
  const double smoothed = ewma_.update(sq_grad_norm);
  if (!had_prev || prev == 0.0) {
    prev_smoothed_ = smoothed;
    last_delta_ = 0.0;
    return 0.0;
  }
  last_delta_ = std::fabs((smoothed - prev) / prev);
  prev_smoothed_ = smoothed;
  return last_delta_;
}

double RelativeGradChange::update_from_grad(std::span<const float> grad) {
  double sq = 0.0;
  for (float g : grad) sq += static_cast<double>(g) * g;
  return update(sq);
}

}  // namespace selsync
