// CSV writer used by the benchmark harness to dump figure/table series so
// they can be re-plotted outside the repo.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace selsync {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one data row; must match the header arity.
  void row(const std::vector<std::string>& cells);

  /// Convenience overload for numeric rows.
  void row(std::initializer_list<double> cells);

  const std::string& path() const { return path_; }

  static std::string format_double(double v);

 private:
  std::string path_;
  size_t arity_;
  std::ofstream out_;
};

}  // namespace selsync
