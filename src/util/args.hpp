// Tiny command-line flag parser for the CLI tools: --key value and
// --flag forms, with typed accessors, defaults and an auto-generated help
// listing.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace selsync {

class ArgParser {
 public:
  /// Registers a flag with its help text (all flags must be registered
  /// before parse() so that unknown arguments can be rejected and --help
  /// output is complete).
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value = "");
  void add_switch(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing usage) when --help was
  /// requested. Throws std::invalid_argument on unknown or malformed flags.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  double get_double(const std::string& name) const;
  int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;  // switch presence

  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    std::string default_value;
    bool is_switch = false;
  };
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> switches_;
};

}  // namespace selsync
