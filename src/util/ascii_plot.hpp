// Terminal plotting helpers so every figure-reproduction bench can render
// its series inline (in addition to the CSV it writes).
#pragma once

#include <string>
#include <vector>

namespace selsync {

struct AsciiSeries {
  std::string name;
  std::vector<double> y;
};

/// Renders one or more series as a fixed-size character plot. All series
/// share the y-range; x is the sample index (assumed uniform spacing).
std::string ascii_plot(const std::vector<AsciiSeries>& series, int width = 72,
                       int height = 16);

/// One-line sparkline for quick inspection of a single series.
std::string sparkline(const std::vector<double>& y, int width = 60);

/// Renders a horizontal bar chart: one labelled bar per (label, value) pair.
std::string ascii_bars(const std::vector<std::pair<std::string, double>>& bars,
                       int width = 50);

}  // namespace selsync
