// Wall-clock timing for the real-overhead experiments (Fig. 8a/8b of the
// paper). Simulated time lives in comm/cost_model.hpp, not here.
#pragma once

#include <chrono>

namespace selsync {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace selsync
