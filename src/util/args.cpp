#include "util/args.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace selsync {

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  specs_[name] = Spec{help, default_value, false};
  order_.push_back(name);
}

void ArgParser::add_switch(const std::string& name, const std::string& help) {
  specs_[name] = Spec{help, "", true};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected positional argument: " + arg);
    const std::string name = arg.substr(2);
    const auto it = specs_.find(name);
    if (it == specs_.end())
      throw std::invalid_argument("unknown flag: " + arg);
    if (it->second.is_switch) {
      switches_[name] = true;
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("flag " + arg + " needs a value");
      values_[name] = argv[++i];
    }
  }
  return true;
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) > 0 || switches_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  const auto spec = specs_.find(name);
  if (spec == specs_.end())
    throw std::invalid_argument("get of unregistered flag: " + name);
  return spec->second.default_value;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  size_t consumed = 0;
  const double d = std::stod(v, &consumed);
  if (consumed != v.size())
    throw std::invalid_argument("flag --" + name + ": not a number: " + v);
  return d;
}

int64_t ArgParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  size_t consumed = 0;
  const long long i = std::stoll(v, &consumed);
  if (consumed != v.size())
    throw std::invalid_argument("flag --" + name + ": not an integer: " + v);
  return i;
}

bool ArgParser::get_bool(const std::string& name) const {
  return switches_.count(name) > 0 && switches_.at(name);
}

std::string ArgParser::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n\nflags:\n";
  for (const std::string& name : order_) {
    const Spec& spec = specs_.at(name);
    out << "  --" << name;
    if (!spec.is_switch) out << " <value>";
    out << "\n      " << spec.help;
    if (!spec.default_value.empty())
      out << " (default: " << spec.default_value << ")";
    out << "\n";
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

}  // namespace selsync
