#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace selsync {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), arity_(header.size()), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != arity_)
    throw std::invalid_argument("CsvWriter: row arity mismatch in " + path_);
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  out_.flush();
}

void CsvWriter::row(std::initializer_list<double> cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(format_double(v));
  row(s);
}

std::string CsvWriter::format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace selsync
