#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace selsync {

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

Rng Rng::fork(uint64_t stream_id) const {
  // Mix the current state with the stream id through SplitMix64 so forked
  // streams are decorrelated from the parent and from each other.
  SplitMix64 sm(s_[0] ^ rotl(s_[2], 17) ^ (stream_id * 0x9E3779B97F4A7C15ULL +
                                           0xD1B54A32D192ED03ULL));
  Rng child(sm.next());
  return child;
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 must be > 0.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

uint64_t Rng::next_below(uint64_t n) {
  assert(n > 0 && "next_below requires n > 0");
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::randint(int64_t lo, int64_t hi) {
  if (lo > hi) throw std::invalid_argument("randint: lo > hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(next_below(span));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<size_t> Rng::sample_without_replacement(size_t n, size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates on an index vector; O(n) setup, fine at our scales.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + static_cast<size_t>(next_below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace selsync
