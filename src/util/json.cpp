#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace selsync {

JsonValue JsonValue::object() {
  JsonValue v;
  v.value_ = Object{};
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.value_ = Array{};
  return v;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (!is_object()) throw std::logic_error("JsonValue::set on non-object");
  std::get<Object>(value_)[key] = std::move(value);
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (!is_array()) throw std::logic_error("JsonValue::push on non-array");
  std::get<Array>(value_).push_back(std::move(value));
  return *this;
}

bool JsonValue::is_object() const {
  return std::holds_alternative<Object>(value_);
}

bool JsonValue::is_array() const {
  return std::holds_alternative<Array>(value_);
}

std::string JsonValue::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * depth, ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (std::holds_alternative<bool>(value_)) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (std::holds_alternative<double>(value_)) {
    const double d = std::get<double>(value_);
    if (!std::isfinite(d)) {
      out += "null";  // JSON has no inf/nan
    } else if (d == std::floor(d) && std::fabs(d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", d);
      out += buf;
    } else {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.10g", d);
      out += buf;
    }
  } else if (std::holds_alternative<std::string>(value_)) {
    out += '"' + escape(std::get<std::string>(value_)) + '"';
  } else if (is_object()) {
    const auto& obj = std::get<Object>(value_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, val] : obj) {
      if (!first) out += ',';
      first = false;
      out += nl + pad + '"' + escape(key) + "\":";
      if (indent > 0) out += ' ';
      val.dump_to(out, indent, depth + 1);
    }
    out += nl + close_pad + '}';
  } else {
    const auto& arr = std::get<Array>(value_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& val : arr) {
      if (!first) out += ',';
      first = false;
      out += nl + pad;
      val.dump_to(out, indent, depth + 1);
    }
    out += nl + close_pad + ']';
  }
}

}  // namespace selsync
