#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace selsync {

namespace {

/// Recursive-descent reader over the document text. Errors carry the byte
/// offset so fault-plan typos are easy to locate.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // Escapes are ASCII-range in every document we write/read;
            // encode the BMP code point as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape character");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') {
      ++pos_;
      JsonValue obj = JsonValue::object();
      if (peek() == '}') {
        ++pos_;
        return obj;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string_body();
        expect(':');
        obj.set(key, parse_value());
        const char next = peek();
        ++pos_;
        if (next == '}') return obj;
        if (next != ',') fail("expected ',' or '}' in object");
      }
    }
    if (c == '[') {
      ++pos_;
      JsonValue arr = JsonValue::array();
      if (peek() == ']') {
        ++pos_;
        return arr;
      }
      while (true) {
        arr.push(parse_value());
        const char next = peek();
        ++pos_;
        if (next == ']') return arr;
        if (next != ',') fail("expected ',' or ']' in array");
      }
    }
    if (c == '"') return JsonValue(parse_string_body());
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    if (consume_literal("null")) return JsonValue(nullptr);
    // Number.
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) fail("unexpected token");
    pos_ += static_cast<size_t>(end - start);
    return JsonValue(d);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::object() {
  JsonValue v;
  v.value_ = Object{};
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.value_ = Array{};
  return v;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (!is_object()) throw std::logic_error("JsonValue::set on non-object");
  std::get<Object>(value_)[key] = std::move(value);
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (!is_array()) throw std::logic_error("JsonValue::push on non-array");
  std::get<Array>(value_).push_back(std::move(value));
  return *this;
}

JsonValue JsonValue::parse(const std::string& text) {
  return JsonReader(text).parse_document();
}

bool JsonValue::is_object() const {
  return std::holds_alternative<Object>(value_);
}

bool JsonValue::is_array() const {
  return std::holds_alternative<Array>(value_);
}

bool JsonValue::is_null() const {
  return std::holds_alternative<std::nullptr_t>(value_);
}

bool JsonValue::is_bool() const { return std::holds_alternative<bool>(value_); }

bool JsonValue::is_number() const {
  return std::holds_alternative<double>(value_);
}

bool JsonValue::is_string() const {
  return std::holds_alternative<std::string>(value_);
}

bool JsonValue::as_bool() const {
  if (!is_bool()) throw std::invalid_argument("json: expected a boolean");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  if (!is_number()) throw std::invalid_argument("json: expected a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw std::invalid_argument("json: expected a string");
  return std::get<std::string>(value_);
}

bool JsonValue::contains(const std::string& key) const {
  return is_object() && std::get<Object>(value_).count(key) > 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (!is_object()) throw std::invalid_argument("json: expected an object");
  const auto& obj = std::get<Object>(value_);
  const auto it = obj.find(key);
  if (it == obj.end())
    throw std::invalid_argument("json: missing key '" + key + "'");
  return it->second;
}

const JsonValue& JsonValue::at(size_t index) const {
  if (!is_array()) throw std::invalid_argument("json: expected an array");
  const auto& arr = std::get<Array>(value_);
  if (index >= arr.size())
    throw std::invalid_argument("json: array index out of range");
  return arr[index];
}

std::vector<std::string> JsonValue::keys() const {
  std::vector<std::string> out;
  if (is_object())
    for (const auto& [key, value] : std::get<Object>(value_)) {
      (void)value;
      out.push_back(key);
    }
  return out;
}

size_t JsonValue::size() const {
  if (is_object()) return std::get<Object>(value_).size();
  if (is_array()) return std::get<Array>(value_).size();
  return 0;
}

std::string JsonValue::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * depth, ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (std::holds_alternative<bool>(value_)) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (std::holds_alternative<double>(value_)) {
    const double d = std::get<double>(value_);
    if (!std::isfinite(d)) {
      out += "null";  // JSON has no inf/nan
    } else if (d == std::floor(d) && std::fabs(d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", d);
      out += buf;
    } else {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.10g", d);
      out += buf;
    }
  } else if (std::holds_alternative<std::string>(value_)) {
    out += '"' + escape(std::get<std::string>(value_)) + '"';
  } else if (is_object()) {
    const auto& obj = std::get<Object>(value_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, val] : obj) {
      if (!first) out += ',';
      first = false;
      out += nl + pad + '"' + escape(key) + "\":";
      if (indent > 0) out += ' ';
      val.dump_to(out, indent, depth + 1);
    }
    out += nl + close_pad + '}';
  } else {
    const auto& arr = std::get<Array>(value_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& val : arr) {
      if (!first) out += ',';
      first = false;
      out += nl + pad;
      val.dump_to(out, indent, depth + 1);
    }
    out += nl + close_pad + ']';
  }
}

}  // namespace selsync
