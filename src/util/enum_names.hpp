// Shared enum↔string parsing for the CLI tools.
//
// Every parseable enum exposes a `*_from_name()` returning std::optional
// (comm/comm_backend.hpp, comm/compression.hpp, ...) plus a `*_names()`
// listing the accepted spellings. parse_enum_flag() is the one piece of
// glue the tools share: it turns a failed lookup into an invalid_argument
// that names the flag and prints the accepted set — the tool mains catch
// std::exception and print the message, so a typo'd flag reads as
//
//   selsync_cli: --backend: unknown value 'rign' (expected shared, ring,
//   tree, ps)
//
// instead of an unexplained failure.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>

namespace selsync {

/// Parses `value` for `--flag` via `from_name` (any callable returning
/// std::optional<E>); `accepted` is the advertised value list shown on
/// failure.
template <typename FromName>
auto parse_enum_flag(const std::string& flag, const std::string& value,
                     FromName&& from_name, const std::string& accepted) {
  if (auto parsed = from_name(value)) return *parsed;
  throw std::invalid_argument("--" + flag + ": unknown value '" + value +
                              "' (expected " + accepted + ")");
}

}  // namespace selsync
