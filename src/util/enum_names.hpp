// Shared enum↔string machinery: declarative name tables + CLI parsing glue.
//
// Every parseable or serialized enum declares one (or more) name tables as
// an `inline constexpr EnumEntry<E> kXxxNames[]` array next to its
// definition (comm/comm_backend.hpp, comm/compression.hpp, core/config.hpp,
// ...). The `enum_name` / `enum_from_name` / `enum_names` helpers below turn
// a table into the lookup functions, so adding an enumerator is a one-line
// table edit — and `tools/selsync_lint` (rule `enum-table`) fails the build
// if an enumerator is missing from its table, which is how parser/serializer
// drift is caught statically instead of by a chaos seed.
//
// parse_enum_flag() is the one piece of glue the CLI tools share: it turns a
// failed lookup into an invalid_argument that names the flag and prints the
// accepted set — the tool mains catch std::exception and print the message,
// so a typo'd flag reads as
//
//   selsync_cli: --backend: unknown value 'rign' (expected shared, ring,
//   tree, ps)
//
// instead of an unexplained failure.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace selsync {

/// One row of an enum's name table: the enumerator and its canonical
/// spelling (wire format, CLI flag value, or display name).
template <typename E>
struct EnumEntry {
  E value;
  const char* name;
};

/// Table → display name. Returns "?" for a value outside the table, so the
/// serializers never crash on a (bug-injected) out-of-range enum.
template <typename E, size_t N>
constexpr const char* enum_name(const EnumEntry<E> (&table)[N], E value) {
  for (const EnumEntry<E>& entry : table)
    if (entry.value == value) return entry.name;
  return "?";
}

/// Table → parser. Exact (case-sensitive) match against the table spellings.
template <typename E, size_t N>
constexpr std::optional<E> enum_from_name(const EnumEntry<E> (&table)[N],
                                          std::string_view name) {
  for (const EnumEntry<E>& entry : table)
    if (name == entry.name) return entry.value;
  return std::nullopt;
}

/// Table → the advertised "a, b, c" list shown when parsing fails.
template <typename E, size_t N>
std::string enum_names(const EnumEntry<E> (&table)[N]) {
  std::string joined;
  for (const EnumEntry<E>& entry : table) {
    if (!joined.empty()) joined += ", ";
    joined += entry.name;
  }
  return joined;
}

/// Parses `value` for `--flag` via `from_name` (any callable returning
/// std::optional<E>); `accepted` is the advertised value list shown on
/// failure.
template <typename FromName>
auto parse_enum_flag(const std::string& flag, const std::string& value,
                     FromName&& from_name, const std::string& accepted) {
  if (auto parsed = from_name(value)) return *parsed;
  throw std::invalid_argument("--" + flag + ": unknown value '" + value +
                              "' (expected " + accepted + ")");
}

}  // namespace selsync
