// Minimal leveled logger. Thread-safe; each line is written atomically so
// interleaved worker-thread output stays readable.
#pragma once

#include <sstream>
#include <string>

namespace selsync {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line to stderr ("[LEVEL] message").
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define SELSYNC_LOG(level)                               \
  if (static_cast<int>(level) <                          \
      static_cast<int>(::selsync::log_level())) {        \
  } else                                                 \
    ::selsync::detail::LogStream(level)

#define LOG_DEBUG SELSYNC_LOG(::selsync::LogLevel::kDebug)
#define LOG_INFO SELSYNC_LOG(::selsync::LogLevel::kInfo)
#define LOG_WARN SELSYNC_LOG(::selsync::LogLevel::kWarn)
#define LOG_ERROR SELSYNC_LOG(::selsync::LogLevel::kError)

}  // namespace selsync
