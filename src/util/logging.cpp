#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

// selsync-lint: allow-file(raw-thread) -- the log serializer guards one
// fprintf with a leaf mutex; it sits below comm/ in the layering, so it
// cannot use the cluster primitives, and it never holds the lock across a
// call out.

namespace selsync {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace selsync
