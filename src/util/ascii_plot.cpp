#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace selsync {

namespace {
constexpr const char* kMarkers = "*o+x#@%&";

void min_max(const std::vector<AsciiSeries>& series, double& lo, double& hi) {
  lo = std::numeric_limits<double>::infinity();
  hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series)
    for (double v : s.y)
      if (std::isfinite(v)) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
  if (!std::isfinite(lo)) {
    lo = 0.0;
    hi = 1.0;
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;
}
}  // namespace

std::string ascii_plot(const std::vector<AsciiSeries>& series, int width,
                       int height) {
  double lo, hi;
  min_max(series, lo, hi);
  std::vector<std::string> grid(height, std::string(width, ' '));

  size_t max_n = 0;
  for (const auto& s : series) max_n = std::max(max_n, s.y.size());
  if (max_n == 0) return "(empty plot)\n";

  for (size_t si = 0; si < series.size(); ++si) {
    const auto& y = series[si].y;
    const char mark = kMarkers[si % 8];
    for (size_t i = 0; i < y.size(); ++i) {
      if (!std::isfinite(y[i])) continue;
      const int col = max_n == 1
                          ? 0
                          : static_cast<int>(static_cast<double>(i) *
                                             (width - 1) / (max_n - 1));
      const int row =
          height - 1 -
          static_cast<int>(std::lround((y[i] - lo) / (hi - lo) * (height - 1)));
      grid[std::clamp(row, 0, height - 1)][std::clamp(col, 0, width - 1)] =
          mark;
    }
  }

  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%11.4g |", hi);
  out << buf << grid[0] << "\n";
  for (int r = 1; r < height - 1; ++r) out << "            |" << grid[r] << "\n";
  std::snprintf(buf, sizeof(buf), "%11.4g |", lo);
  out << buf << grid[height - 1] << "\n";
  out << "            +" << std::string(width, '-') << "\n";
  out << "  legend:";
  for (size_t si = 0; si < series.size(); ++si)
    out << "  [" << kMarkers[si % 8] << "] " << series[si].name;
  out << "\n";
  return out.str();
}

std::string sparkline(const std::vector<double>& y, int width) {
  static const char* kLevels = " .:-=+*#%@";
  if (y.empty()) return "";
  double lo = *std::min_element(y.begin(), y.end());
  double hi = *std::max_element(y.begin(), y.end());
  if (hi - lo < 1e-12) hi = lo + 1.0;
  std::string out;
  const int n = std::min<int>(width, static_cast<int>(y.size()));
  for (int i = 0; i < n; ++i) {
    const size_t src = static_cast<size_t>(
        static_cast<double>(i) * (y.size() - 1) / std::max(1, n - 1));
    const int level =
        static_cast<int>(std::lround((y[src] - lo) / (hi - lo) * 9));
    out += kLevels[std::clamp(level, 0, 9)];
  }
  return out;
}

std::string ascii_bars(const std::vector<std::pair<std::string, double>>& bars,
                       int width) {
  if (bars.empty()) return "";
  size_t label_w = 0;
  double hi = 0.0;
  for (const auto& [label, v] : bars) {
    label_w = std::max(label_w, label.size());
    hi = std::max(hi, v);
  }
  if (hi <= 0.0) hi = 1.0;
  std::ostringstream out;
  for (const auto& [label, v] : bars) {
    const int n = static_cast<int>(std::lround(v / hi * width));
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %10.4g", v);
    out << "  " << label << std::string(label_w - label.size(), ' ') << " |"
        << std::string(std::clamp(n, 0, width), '#') << buf << "\n";
  }
  return out.str();
}

}  // namespace selsync
