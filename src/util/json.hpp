// Minimal JSON value builder, writer and reader. Used by the run recorder
// and the CLI to emit machine-readable experiment results, and by the
// fault-plan loader to read declarative chaos configurations, without
// external dependencies.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace selsync {

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(unsigned long long u) : value_(static_cast<double>(u)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}

  /// Builds an empty object / array.
  static JsonValue object();
  static JsonValue array();

  /// Parses a JSON document (objects, arrays, strings, numbers, booleans,
  /// null). Throws std::invalid_argument with a byte offset on malformed
  /// input or trailing garbage.
  static JsonValue parse(const std::string& text);

  /// Object access: inserts or overwrites a key. Throws if not an object.
  JsonValue& set(const std::string& key, JsonValue value);
  /// Array access: appends an element. Throws if not an array.
  JsonValue& push(JsonValue value);

  bool is_object() const;
  bool is_array() const;
  bool is_null() const;
  bool is_bool() const;
  bool is_number() const;
  bool is_string() const;

  /// Typed readers; each throws std::invalid_argument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Object lookup. `contains` is false for non-objects; `at` throws when
  /// the key is missing or this is not an object.
  bool contains(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;
  /// Array element access; throws on out-of-range or non-array.
  const JsonValue& at(size_t index) const;
  /// Object key list (sorted) / array length; 0 for scalars.
  std::vector<std::string> keys() const;
  size_t size() const;

  /// Serializes with deterministic key order (std::map) and `indent`-space
  /// pretty printing (0 = compact).
  std::string dump(int indent = 0) const;

  /// Escapes a string for embedding in JSON output.
  static std::string escape(const std::string& s);

 private:
  using Object = std::map<std::string, JsonValue>;
  using Array = std::vector<JsonValue>;
  std::variant<std::nullptr_t, bool, double, std::string, Object, Array>
      value_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace selsync
