// Deterministic random number generation for reproducible experiments.
//
// Every worker in the simulated cluster owns an independent Rng stream
// derived from (experiment seed, worker rank) so that runs are bit-for-bit
// reproducible regardless of thread scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace selsync {

/// SplitMix64: used to seed the main generator from a single 64-bit value.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** generator (Blackman & Vigna). Fast, high-quality, and small
/// enough to keep one instance per simulated worker.
class Rng {
 public:
  static constexpr uint64_t kDefaultSeed = 0x5E15C0DEULL;

  explicit Rng(uint64_t seed = kDefaultSeed);

  /// Derives an independent stream, e.g. `Rng(seed).fork(rank)` per worker.
  Rng fork(uint64_t stream_id) const;

  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t next_below(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t randint(int64_t lo, int64_t hi);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement.
  std::vector<size_t> sample_without_replacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace selsync
