// Analytic profiles of the *paper-scale* models and devices.
//
// The paper measures wall-clock properties (compute time and memory vs batch
// size on a K80, Fig. 2; throughput scaling over a 5 Gbps NIC, Fig. 1a;
// end-to-end speedups, Table I) on hardware we do not have. These profiles
// reproduce those experiments analytically: each paper model is described by
// its parameter count, per-sample forward FLOPs and per-sample activation
// footprint, and each device by peak throughput and memory capacity. The
// numbers are calibrated so the published *shape* holds (e.g. Transformer
// OOM at batch 64 on the 12 GB K80; VGG11's 507 MB parameter payload makes
// its 2-worker relative throughput < 1.0).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace selsync {

struct PaperModelProfile {
  std::string name;
  double param_count;             // trainable parameters
  double flops_per_sample;        // forward FLOPs; backward costs 2x forward
  double activation_bytes_per_sample;
  double host_bytes_per_sample;   // input pipeline staging (ImageFolder etc.)

  double param_bytes() const { return param_count * 4.0; }
};

struct DeviceProfile {
  std::string name;
  double peak_flops;          // sustained peak, FP32
  double memory_bytes;        // device memory capacity
  double batch_half_sat;      // batch size at which utilization reaches 50%
  double fixed_overhead_bytes;  // context + framework buffers
};

/// The four models of the paper's evaluation (§IV-A).
PaperModelProfile paper_resnet101();
PaperModelProfile paper_vgg11();
PaperModelProfile paper_alexnet();
PaperModelProfile paper_transformer();
std::vector<PaperModelProfile> all_paper_models();

/// NVIDIA Tesla K80 (Fig. 2) and V100 (Figs. 1/5, Table I).
DeviceProfile device_k80();
DeviceProfile device_v100();

/// Per-iteration compute time for one worker processing `batch` samples
/// (forward + backward = 3x forward FLOPs), with a utilization ramp
/// b/(b + half_sat) modelling poor GPU occupancy at small batches.
double compute_time_s(const PaperModelProfile& model,
                      const DeviceProfile& device, double batch);

/// Device memory needed to train at the given batch size: 3 copies of the
/// parameters (weights, gradients, optimizer state) + activations + input
/// staging + fixed overhead.
double training_memory_bytes(const PaperModelProfile& model,
                             const DeviceProfile& device, double batch);

/// True when the batch does not fit on the device (the paper's Transformer
/// OOM at b=64 on the K80).
bool would_oom(const PaperModelProfile& model, const DeviceProfile& device,
               double batch);

}  // namespace selsync
