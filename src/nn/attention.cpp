#include "nn/attention.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace selsync {

MultiHeadSelfAttention::MultiHeadSelfAttention(size_t model_dim,
                                               size_t num_heads,
                                               size_t seq_len, Rng& rng,
                                               bool causal,
                                               const std::string& name)
    : dim_(model_dim),
      heads_(num_heads),
      head_dim_(model_dim / num_heads),
      seq_len_(seq_len),
      causal_(causal),
      name_(name),
      qkv_(model_dim, 3 * model_dim, rng, true, name + ".qkv"),
      proj_(model_dim, model_dim, rng, true, name + ".proj") {
  if (model_dim % num_heads != 0)
    throw std::invalid_argument("MHSA: model_dim % num_heads != 0");
}

Tensor MultiHeadSelfAttention::forward(const Tensor& input) {
  const size_t rows = input.dim(0);
  if (rows % seq_len_ != 0)
    throw std::invalid_argument("MHSA: rows not a multiple of seq_len");
  const size_t B = rows / seq_len_, T = seq_len_, H = heads_, Dh = head_dim_;

  cached_qkv_ = qkv_.forward(input);  // {B*T, 3D}
  cached_batch_ = B;
  cached_attn_.assign(B * H * T * T, 0.f);

  Tensor context({rows, dim_});
  const float scale = 1.f / std::sqrt(static_cast<float>(Dh));
  const float neg_inf = -std::numeric_limits<float>::infinity();

  // QKV row layout: [Q(D) | K(D) | V(D)]; head h occupies columns
  // [h*Dh, (h+1)*Dh) within each of the three blocks.
  for (size_t b = 0; b < B; ++b) {
    const float* qkv_rows = cached_qkv_.data() + b * T * 3 * dim_;
    float* ctx_rows = context.data() + b * T * dim_;
    for (size_t h = 0; h < H; ++h) {
      float* attn = cached_attn_.data() + ((b * H + h) * T) * T;
      const size_t qo = h * Dh, ko = dim_ + h * Dh, vo = 2 * dim_ + h * Dh;
      // scores + row softmax
      for (size_t i = 0; i < T; ++i) {
        const float* qi = qkv_rows + i * 3 * dim_ + qo;
        float* arow = attn + i * T;
        float mx = neg_inf;
        for (size_t j = 0; j < T; ++j) {
          if (causal_ && j > i) {
            arow[j] = neg_inf;
            continue;
          }
          const float* kj = qkv_rows + j * 3 * dim_ + ko;
          float s = 0.f;
          for (size_t d = 0; d < Dh; ++d) s += qi[d] * kj[d];
          arow[j] = s * scale;
          if (arow[j] > mx) mx = arow[j];
        }
        float denom = 0.f;
        for (size_t j = 0; j < T; ++j) {
          arow[j] = (arow[j] == neg_inf) ? 0.f : std::exp(arow[j] - mx);
          denom += arow[j];
        }
        const float inv = 1.f / denom;
        for (size_t j = 0; j < T; ++j) arow[j] *= inv;
        // context_i = sum_j a_ij * v_j
        float* ci = ctx_rows + i * dim_ + h * Dh;
        for (size_t d = 0; d < Dh; ++d) ci[d] = 0.f;
        for (size_t j = 0; j < T; ++j) {
          const float a = arow[j];
          if (a == 0.f) continue;
          const float* vj = qkv_rows + j * 3 * dim_ + vo;
          for (size_t d = 0; d < Dh; ++d) ci[d] += a * vj[d];
        }
      }
    }
  }
  return proj_.forward(context);
}

Tensor MultiHeadSelfAttention::backward(const Tensor& grad_out) {
  const Tensor grad_ctx = proj_.backward(grad_out);  // {B*T, D}
  const size_t B = cached_batch_, T = seq_len_, H = heads_, Dh = head_dim_;
  const float scale = 1.f / std::sqrt(static_cast<float>(Dh));

  Tensor grad_qkv({B * T, 3 * dim_});
  std::vector<float> grad_attn(T * T);

  for (size_t b = 0; b < B; ++b) {
    const float* qkv_rows = cached_qkv_.data() + b * T * 3 * dim_;
    float* gqkv_rows = grad_qkv.data() + b * T * 3 * dim_;
    const float* gctx_rows = grad_ctx.data() + b * T * dim_;
    for (size_t h = 0; h < H; ++h) {
      const float* attn = cached_attn_.data() + ((b * H + h) * T) * T;
      const size_t qo = h * Dh, ko = dim_ + h * Dh, vo = 2 * dim_ + h * Dh;
      // dV and dA from context = A V.
      for (size_t i = 0; i < T; ++i) {
        const float* gci = gctx_rows + i * dim_ + h * Dh;
        const float* arow = attn + i * T;
        float* garow = grad_attn.data() + i * T;
        for (size_t j = 0; j < T; ++j) {
          const float a = arow[j];
          float* gvj = gqkv_rows + j * 3 * dim_ + vo;
          const float* vj = qkv_rows + j * 3 * dim_ + vo;
          float ga = 0.f;
          for (size_t d = 0; d < Dh; ++d) {
            gvj[d] += a * gci[d];
            ga += gci[d] * vj[d];
          }
          garow[j] = ga;
        }
      }
      // Softmax backward per row: dS_j = A_j * (dA_j - sum_k A_k dA_k),
      // then dQ_i += dS_j * K_j * scale, dK_j += dS_j * Q_i * scale.
      for (size_t i = 0; i < T; ++i) {
        const float* arow = attn + i * T;
        float* garow = grad_attn.data() + i * T;
        float dot = 0.f;
        for (size_t j = 0; j < T; ++j) dot += arow[j] * garow[j];
        const float* qi = qkv_rows + i * 3 * dim_ + qo;
        float* gqi = gqkv_rows + i * 3 * dim_ + qo;
        for (size_t j = 0; j < T; ++j) {
          const float ds = arow[j] * (garow[j] - dot) * scale;
          if (ds == 0.f) continue;
          const float* kj = qkv_rows + j * 3 * dim_ + ko;
          float* gkj = gqkv_rows + j * 3 * dim_ + ko;
          for (size_t d = 0; d < Dh; ++d) {
            gqi[d] += ds * kj[d];
            gkj[d] += ds * qi[d];
          }
        }
      }
    }
  }
  return qkv_.backward(grad_qkv);
}

void MultiHeadSelfAttention::collect_params(std::vector<Param*>& out) {
  qkv_.collect_params(out);
  proj_.collect_params(out);
}

}  // namespace selsync
