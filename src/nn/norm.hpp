// Layer normalization over the last dimension (per row of a {B, D} input).
#pragma once

#include "nn/module.hpp"

namespace selsync {

class LayerNorm : public Module {
 public:
  explicit LayerNorm(size_t dim, const std::string& name = "layernorm",
                     float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }

 private:
  size_t dim_;
  float eps_;
  std::string name_;
  Param gamma_;
  Param beta_;
  Tensor cached_norm_;       // normalized input x_hat
  std::vector<float> inv_std_;
};

}  // namespace selsync
