// Model: the unit the distributed strategies train.
//
// A Model owns its parameters and exposes them as one flat float vector in a
// canonical order — exactly the payload the paper's pushToPS/pullFromPS (or
// an allreduce) would move. Workers construct identical replicas from the
// same seed, mirroring the paper's "pull initial model state from the PS".
#pragma once

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace selsync {

/// One training/eval batch. Classification fills `x` + `targets`; language
/// modelling fills `tokens` + `targets` (next-token ids, length B*T).
struct Batch {
  Tensor x;
  std::vector<int> tokens;
  std::vector<int> targets;

  bool is_lm() const { return !tokens.empty(); }
  /// Number of examples: rows of x, or token count for LM batches.
  size_t example_count() const {
    return is_lm() ? tokens.size() : (x.rank() ? x.dim(0) : 0);
  }
};

/// Accumulated evaluation statistics; merge() combines shards.
struct EvalStats {
  double loss_sum = 0.0;
  size_t batches = 0;
  size_t top1 = 0;
  size_t top5 = 0;
  size_t examples = 0;

  void merge(const EvalStats& o);
  double mean_loss() const { return batches ? loss_sum / batches : 0.0; }
  double top1_accuracy() const;
  double top5_accuracy() const;
  /// exp(mean loss); the paper's perplexity metric for the Transformer.
  double perplexity() const;
};

class Model {
 public:
  virtual ~Model() = default;

  /// Zeroes gradients, runs forward + backward on `batch`, leaves mean
  /// gradients in the parameters, and returns the mean loss.
  virtual float train_step(const Batch& batch) = 0;

  /// Forward-only evaluation.
  virtual EvalStats eval_batch(const Batch& batch) = 0;

  virtual void set_training(bool training) = 0;
  virtual bool is_language_model() const { return false; }

  /// Stable list of parameters (built lazily on first use).
  const std::vector<Param*>& params();
  size_t param_count();
  /// Payload size of one full parameter (or gradient) exchange.
  size_t param_bytes() { return param_count() * sizeof(float); }

  std::vector<float> get_flat_params();
  void set_flat_params(const std::vector<float>& flat);
  std::vector<float> get_flat_grads();
  void set_flat_grads(const std::vector<float>& flat);
  void zero_grad();

  /// Applies a plain SGD step w -= lr * grad directly to the parameters
  /// (used by the Hessian probe and a few tests; real training goes through
  /// src/optim).
  void apply_sgd(float lr);

 protected:
  /// Subclasses append their parameter pointers here exactly once.
  virtual void collect_model_params(std::vector<Param*>& out) = 0;

 private:
  std::vector<Param*> params_cache_;
  bool params_built_ = false;
};

}  // namespace selsync
