#include "nn/transformer_lm.hpp"

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/norm.hpp"

namespace selsync {

TransformerLM::TransformerLM(const TransformerConfig& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      embedding_(config.vocab, config.model_dim, rng_) {
  encoder_ = std::make_unique<Sequential>();
  for (size_t l = 0; l < config_.num_layers; ++l) {
    const std::string base = "layer" + std::to_string(l);
    auto attn_block = std::make_unique<Sequential>();
    attn_block->add(std::make_unique<LayerNorm>(config_.model_dim, base + ".norm1"));
    attn_block->add(std::make_unique<MultiHeadSelfAttention>(
        config_.model_dim, config_.num_heads, config_.seq_len, rng_,
        /*causal=*/true, base + ".attn"));
    attn_block->add(std::make_unique<Dropout>(config_.dropout, rng_));
    encoder_->add(std::make_unique<Residual>(std::move(attn_block)));

    auto ff_block = std::make_unique<Sequential>();
    ff_block->add(std::make_unique<LayerNorm>(config_.model_dim, base + ".norm2"));
    ff_block->add(std::make_unique<Linear>(config_.model_dim, config_.ff_dim,
                                           rng_, true, base + ".ff1"));
    ff_block->add(std::make_unique<GELU>());
    ff_block->add(std::make_unique<Linear>(config_.ff_dim, config_.model_dim,
                                           rng_, true, base + ".ff2"));
    ff_block->add(std::make_unique<Dropout>(config_.dropout, rng_));
    encoder_->add(std::make_unique<Residual>(std::move(ff_block)));
  }
  decoder_ = std::make_unique<Linear>(config_.model_dim, config_.vocab, rng_,
                                      true, "decoder");
}

Tensor TransformerLM::forward_logits(const std::vector<int>& tokens) {
  Tensor x = embedding_.forward(tokens);
  add_positional_encoding(x, config_.seq_len);
  x = encoder_->forward(x);
  return decoder_->forward(x);
}

float TransformerLM::train_step(const Batch& batch) {
  zero_grad();
  const Tensor logits = forward_logits(batch.tokens);
  LossResult loss = softmax_cross_entropy(logits, batch.targets);
  Tensor g = decoder_->backward(loss.grad_logits);
  g = encoder_->backward(g);
  embedding_.backward(g);
  return loss.loss;
}

EvalStats TransformerLM::eval_batch(const Batch& batch) {
  set_training(false);
  const Tensor logits = forward_logits(batch.tokens);
  set_training(true);
  const LossResult loss = softmax_cross_entropy(logits, batch.targets);
  EvalStats stats;
  stats.loss_sum = loss.loss;
  stats.batches = 1;
  stats.examples = batch.targets.size();
  stats.top1 = count_top1(logits, batch.targets);
  stats.top5 = count_topk(logits, batch.targets, 5);
  return stats;
}

void TransformerLM::set_training(bool training) {
  encoder_->set_training(training);
  decoder_->set_training(training);
}

void TransformerLM::collect_model_params(std::vector<Param*>& out) {
  embedding_.collect_params(out);
  encoder_->collect_params(out);
  decoder_->collect_params(out);
}

}  // namespace selsync
