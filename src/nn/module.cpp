#include "nn/module.hpp"

#include <cstring>
#include <stdexcept>

namespace selsync {

size_t total_param_count(const std::vector<Param*>& params) {
  size_t n = 0;
  for (const Param* p : params) n += p->value.size();
  return n;
}

std::vector<float> pack_values(const std::vector<Param*>& params) {
  std::vector<float> flat(total_param_count(params));
  size_t off = 0;
  for (const Param* p : params) {
    std::memcpy(flat.data() + off, p->value.data(),
                p->value.size() * sizeof(float));
    off += p->value.size();
  }
  return flat;
}

std::vector<float> pack_grads(const std::vector<Param*>& params) {
  std::vector<float> flat(total_param_count(params));
  size_t off = 0;
  for (const Param* p : params) {
    std::memcpy(flat.data() + off, p->grad.data(),
                p->grad.size() * sizeof(float));
    off += p->grad.size();
  }
  return flat;
}

void unpack_values(const std::vector<float>& flat,
                   const std::vector<Param*>& params) {
  if (flat.size() != total_param_count(params))
    throw std::invalid_argument("unpack_values: size mismatch");
  size_t off = 0;
  for (Param* p : params) {
    std::memcpy(p->value.data(), flat.data() + off,
                p->value.size() * sizeof(float));
    off += p->value.size();
  }
}

void unpack_grads(const std::vector<float>& flat,
                  const std::vector<Param*>& params) {
  if (flat.size() != total_param_count(params))
    throw std::invalid_argument("unpack_grads: size mismatch");
  size_t off = 0;
  for (Param* p : params) {
    std::memcpy(p->grad.data(), flat.data() + off,
                p->grad.size() * sizeof(float));
    off += p->grad.size();
  }
}

void zero_grads(const std::vector<Param*>& params) {
  for (Param* p : params) p->grad.zero();
}

}  // namespace selsync
