// Per-class evaluation: confusion matrix, precision/recall/F1 — the
// diagnostics that reveal *how* non-IID training fails (each worker's label
// collapses, §III-E) rather than just the aggregate accuracy.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/model.hpp"

namespace selsync {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(size_t classes);

  void add(int truth, int predicted);

  size_t classes() const { return classes_; }
  size_t count(int truth, int predicted) const;
  size_t total() const { return total_; }

  double accuracy() const;
  /// Precision/recall/F1 for one class (0 when the denominator is empty).
  double precision(int cls) const;
  double recall(int cls) const;
  double f1(int cls) const;
  /// Unweighted mean F1 over classes (macro average).
  double macro_f1() const;
  /// Number of classes the model never predicts — the collapse signature of
  /// label-skewed local training.
  size_t never_predicted_classes() const;

  /// Printable table (rows = truth, columns = prediction).
  std::string to_string(size_t max_classes = 16) const;

 private:
  size_t classes_;
  size_t total_ = 0;
  std::vector<size_t> cells_;  // classes_ x classes_
};

/// Evaluates `model` over `data` and fills a confusion matrix from the
/// arg-max predictions (classification datasets only).
ConfusionMatrix evaluate_confusion(Model& model, const Dataset& data,
                                   size_t batch_size = 256);

}  // namespace selsync
