// Layer abstraction: explicit forward/backward modules (no tape autograd).
//
// Each module caches whatever it needs from forward() so that backward()
// can produce input gradients and accumulate parameter gradients. This
// mirrors how static-graph DDP frameworks drive backpropagation and keeps
// the per-iteration allocation profile predictable, which matters for the
// wall-clock overhead experiments (Fig. 8a).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace selsync {

/// A trainable tensor together with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

class Module {
 public:
  virtual ~Module() = default;

  /// Computes the layer output; must be called before backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Appends pointers to this module's parameters (stable across calls).
  virtual void collect_params(std::vector<Param*>& out) { (void)out; }

  /// Train/eval mode switch (dropout etc.). Default: no-op.
  virtual void set_training(bool training) { (void)training; }

  virtual std::string name() const = 0;
};

using ModulePtr = std::unique_ptr<Module>;

/// ---- Flat parameter/gradient packing -------------------------------------
/// Distributed strategies ship parameters and gradients as one contiguous
/// float vector (what the paper's pushToPS/pullFromPS exchange). These
/// helpers define the canonical packing order: params in collection order,
/// each row-major.

size_t total_param_count(const std::vector<Param*>& params);
std::vector<float> pack_values(const std::vector<Param*>& params);
std::vector<float> pack_grads(const std::vector<Param*>& params);
void unpack_values(const std::vector<float>& flat,
                   const std::vector<Param*>& params);
void unpack_grads(const std::vector<float>& flat,
                  const std::vector<Param*>& params);
void zero_grads(const std::vector<Param*>& params);

}  // namespace selsync
