#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace selsync {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& targets,
                                 float label_smoothing) {
  if (logits.rank() != 2)
    throw std::invalid_argument("softmax_cross_entropy: logits rank != 2");
  if (label_smoothing < 0.f || label_smoothing >= 1.f)
    throw std::invalid_argument("softmax_cross_entropy: smoothing in [0,1)");
  const size_t b = logits.dim(0), k = logits.dim(1);
  if (targets.size() != b)
    throw std::invalid_argument("softmax_cross_entropy: target count");

  // Smoothed target distribution: 1 - s on the true class, s/K elsewhere
  // (s/K added to the true class too, the usual convention).
  const float off = label_smoothing / static_cast<float>(k);
  const float on = 1.f - label_smoothing + off;

  LossResult res;
  res.grad_logits = ops::softmax_rows(logits);
  double loss = 0.0;
  const float inv_b = 1.f / static_cast<float>(b);
  for (size_t i = 0; i < b; ++i) {
    const int t = targets[i];
    if (t < 0 || static_cast<size_t>(t) >= k)
      throw std::out_of_range("softmax_cross_entropy: bad target id");
    float* row = res.grad_logits.data() + i * k;
    if (label_smoothing == 0.f) {
      loss -= std::log(std::max(row[t], 1e-12f));
      row[t] -= 1.f;
    } else {
      for (size_t j = 0; j < k; ++j) {
        const float target_p = (static_cast<int>(j) == t) ? on : off;
        loss -= target_p * std::log(std::max(row[j], 1e-12f));
        row[j] -= target_p;
      }
    }
    for (size_t j = 0; j < k; ++j) row[j] *= inv_b;
  }
  res.loss = static_cast<float>(loss / b);
  return res;
}

size_t count_top1(const Tensor& logits, const std::vector<int>& targets) {
  const size_t b = logits.dim(0), k = logits.dim(1);
  size_t hits = 0;
  for (size_t i = 0; i < b; ++i) {
    const float* row = logits.data() + i * k;
    const size_t arg =
        std::max_element(row, row + k) - row;
    if (static_cast<int>(arg) == targets[i]) ++hits;
  }
  return hits;
}

size_t count_topk(const Tensor& logits, const std::vector<int>& targets,
                  size_t topk) {
  const size_t b = logits.dim(0), k = logits.dim(1);
  size_t hits = 0;
  for (size_t i = 0; i < b; ++i) {
    const float* row = logits.data() + i * k;
    const float target_score = row[targets[i]];
    size_t better = 0;
    for (size_t j = 0; j < k; ++j)
      if (row[j] > target_score) ++better;
    if (better < topk) ++hits;
  }
  return hits;
}

}  // namespace selsync
