// Token embedding table plus fixed sinusoidal positional encoding.
//
// Token ids are integral, so Embedding does not implement the Tensor->Tensor
// Module interface; the TransformerLM model drives it directly.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace selsync {

class Embedding {
 public:
  Embedding(size_t vocab, size_t dim, Rng& rng,
            const std::string& name = "embedding");

  /// Looks up `tokens` (length B*T) -> {B*T, dim} rows.
  Tensor forward(const std::vector<int>& tokens);

  /// Accumulates gradients for the rows used in the last forward().
  void backward(const Tensor& grad_out);

  void collect_params(std::vector<Param*>& out);

  size_t vocab() const { return vocab_; }
  size_t dim() const { return dim_; }
  Param& table() { return table_; }

 private:
  size_t vocab_, dim_;
  Param table_;  // {vocab, dim}
  std::vector<int> cached_tokens_;
};

/// Adds sin/cos positional encodings in-place to `x` (rows = B*T, sequence
/// position = row index modulo seq_len).
void add_positional_encoding(Tensor& x, size_t seq_len);

}  // namespace selsync
