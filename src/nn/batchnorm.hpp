// 1-D batch normalization (per-feature over the batch dimension).
//
// Relevant to the distributed setting: the running mean/variance buffers
// are *local state*, not parameters — they are not shipped by PA/GA
// synchronization (exactly like PyTorch DDP, which broadcasts buffers only
// at startup). Under semi-synchronous training each replica's BN statistics
// therefore drift with its local data, one of the effects that makes plain
// conv stacks harder to average than norm-free or LayerNorm models.
#pragma once

#include "nn/module.hpp"

namespace selsync {

class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(size_t features, const std::string& name = "batchnorm",
                       float eps = 1e-5f, float momentum = 0.1f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override { training_ = training; }
  std::string name() const override { return name_; }

  const std::vector<float>& running_mean() const { return running_mean_; }
  const std::vector<float>& running_var() const { return running_var_; }

 private:
  size_t features_;
  float eps_, momentum_;
  bool training_ = true;
  std::string name_;
  Param gamma_;
  Param beta_;
  // Buffers (local state, never synchronized).
  std::vector<float> running_mean_;
  std::vector<float> running_var_;
  // Forward caches for backward.
  Tensor cached_norm_;
  std::vector<float> inv_std_;
  size_t cached_rows_ = 0;
};

}  // namespace selsync
