#include "nn/paper_profiles.hpp"

namespace selsync {

namespace {
constexpr double kMB = 1024.0 * 1024.0;
constexpr double kGB = 1024.0 * kMB;
constexpr double kGFLOP = 1e9;
}  // namespace

PaperModelProfile paper_resnet101() {
  // 44.5M params (~170 MB); deepest network of the four -> largest
  // per-sample compute (Fig. 2a shows ~0.7 s/iteration at b=32 on a K80,
  // which calibrates the effective per-sample cost to ~12 GFLOP including
  // framework overhead). CIFAR10 inputs, so activations are moderate.
  return {"ResNet101", 44.5e6, 12.0 * kGFLOP, 45.0 * kMB, 0.05 * kMB};
}

PaperModelProfile paper_vgg11() {
  // 507 MB of parameters (the paper's headline communication-heavy model),
  // but a shallow conv pyramid on CIFAR100 -> cheap per-sample compute.
  return {"VGG11", 133.0e6, 5.0 * kGFLOP, 8.0 * kMB, 0.05 * kMB};
}

PaperModelProfile paper_alexnet() {
  // 61M params; ImageNet-1K inputs staged through
  // torchvision.datasets.ImageFolder, which the paper calls out as a large
  // host-side memory consumer at big batch sizes (Fig. 2b).
  return {"AlexNet", 61.0e6, 2.0 * kGFLOP, 10.0 * kMB, 2.0 * kMB};
}

PaperModelProfile paper_transformer() {
  // 2-layer/2-head encoder but a 267K-token WikiText-103 vocabulary: the
  // embedding + output projection dominate (~53M params) and the per-token
  // logits make activations enormous -> OOM at batch 64 on the 12 GB K80.
  return {"Transformer", 53.0e6, 1.5 * kGFLOP, 180.0 * kMB, 0.02 * kMB};
}

std::vector<PaperModelProfile> all_paper_models() {
  return {paper_resnet101(), paper_vgg11(), paper_alexnet(),
          paper_transformer()};
}

DeviceProfile device_k80() {
  return {"Tesla K80", 2.8e12, 12.0 * kGB, 24.0, 0.6 * kGB};
}

DeviceProfile device_v100() {
  return {"Tesla V100", 14.0e12, 16.0 * kGB, 12.0, 0.6 * kGB};
}

double compute_time_s(const PaperModelProfile& model,
                      const DeviceProfile& device, double batch) {
  // forward + backward ~= 3x forward FLOPs; utilization ramps as
  // b / (b + half_sat), so t = 3 * flops * (b + half_sat) / peak.
  const double total_flops = 3.0 * model.flops_per_sample * batch;
  const double utilization = batch / (batch + device.batch_half_sat);
  return total_flops / (device.peak_flops * utilization);
}

double training_memory_bytes(const PaperModelProfile& model,
                             const DeviceProfile& device, double batch) {
  const double param_state = 3.0 * model.param_bytes();  // w + grad + optim
  const double activations = model.activation_bytes_per_sample * batch;
  const double host_staging = model.host_bytes_per_sample * batch;
  return device.fixed_overhead_bytes + param_state + activations +
         host_staging;
}

bool would_oom(const PaperModelProfile& model, const DeviceProfile& device,
               double batch) {
  return training_memory_bytes(model, device, batch) > device.memory_bytes;
}

}  // namespace selsync
