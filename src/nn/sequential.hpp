// Composition modules: Sequential chains and Residual (skip-connection)
// blocks, the structural difference the paper leans on when contrasting
// ResNet-style vs plain architectures (§IV-C).
#pragma once

#include "nn/module.hpp"

namespace selsync {

class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> layers)
      : layers_(std::move(layers)) {}

  /// Appends a layer; returns *this for chaining.
  Sequential& add(ModulePtr layer);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override;
  std::string name() const override { return "sequential"; }

  size_t layer_count() const { return layers_.size(); }
  Module& layer(size_t i) { return *layers_.at(i); }

 private:
  std::vector<ModulePtr> layers_;
};

/// y = x + inner(x). Input and output shapes of `inner` must match.
class Residual : public Module {
 public:
  explicit Residual(ModulePtr inner) : inner_(std::move(inner)) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  void set_training(bool training) override { inner_->set_training(training); }
  std::string name() const override { return "residual"; }

 private:
  ModulePtr inner_;
};

}  // namespace selsync
