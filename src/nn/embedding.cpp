#include "nn/embedding.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace selsync {

Embedding::Embedding(size_t vocab, size_t dim, Rng& rng,
                     const std::string& name)
    : vocab_(vocab),
      dim_(dim),
      table_(name + ".table",
             Tensor::randn({vocab, dim}, rng, 0.f,
                           1.f / std::sqrt(static_cast<float>(dim)))) {}

Tensor Embedding::forward(const std::vector<int>& tokens) {
  cached_tokens_ = tokens;
  Tensor out({tokens.size(), dim_});
  for (size_t i = 0; i < tokens.size(); ++i) {
    const int t = tokens[i];
    if (t < 0 || static_cast<size_t>(t) >= vocab_)
      throw std::out_of_range("Embedding: token id out of range");
    std::memcpy(out.data() + i * dim_, table_.value.data() + t * dim_,
                dim_ * sizeof(float));
  }
  return out;
}

void Embedding::backward(const Tensor& grad_out) {
  if (grad_out.dim(0) != cached_tokens_.size())
    throw std::invalid_argument("Embedding::backward: row mismatch");
  for (size_t i = 0; i < cached_tokens_.size(); ++i) {
    float* g = table_.grad.data() + cached_tokens_[i] * dim_;
    const float* go = grad_out.data() + i * dim_;
    for (size_t d = 0; d < dim_; ++d) g[d] += go[d];
  }
}

void Embedding::collect_params(std::vector<Param*>& out) {
  out.push_back(&table_);
}

void add_positional_encoding(Tensor& x, size_t seq_len) {
  const size_t rows = x.dim(0), dim = x.dim(1);
  for (size_t r = 0; r < rows; ++r) {
    const size_t pos = r % seq_len;
    float* row = x.data() + r * dim;
    for (size_t d = 0; d < dim; d += 2) {
      const double freq =
          std::pow(10000.0, -static_cast<double>(d) / static_cast<double>(dim));
      row[d] += static_cast<float>(std::sin(pos * freq));
      if (d + 1 < dim) row[d + 1] += static_cast<float>(std::cos(pos * freq));
    }
  }
}

}  // namespace selsync
