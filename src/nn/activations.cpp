#include "nn/activations.hpp"

#include <cmath>

namespace selsync {

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& v : out.flat())
    if (v < 0.f) v = 0.f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  for (size_t i = 0; i < grad_in.size(); ++i)
    if (cached_input_[i] <= 0.f) grad_in[i] = 0.f;
  return grad_in;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (auto& v : out.flat()) v = std::tanh(v);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  for (size_t i = 0; i < grad_in.size(); ++i) {
    const float t = cached_output_[i];
    grad_in[i] *= (1.f - t * t);
  }
  return grad_in;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

inline float gelu_fwd(float x) {
  return 0.5f * x * (1.f + std::tanh(kGeluC * (x + 0.044715f * x * x * x)));
}

inline float gelu_bwd(float x) {
  const float x3 = x * x * x;
  const float t = std::tanh(kGeluC * (x + 0.044715f * x3));
  const float dt = (1.f - t * t) * kGeluC * (1.f + 3.f * 0.044715f * x * x);
  return 0.5f * (1.f + t) + 0.5f * x * dt;
}
}  // namespace

Tensor GELU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& v : out.flat()) v = gelu_fwd(v);
  return out;
}

Tensor GELU::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  for (size_t i = 0; i < grad_in.size(); ++i)
    grad_in[i] *= gelu_bwd(cached_input_[i]);
  return grad_in;
}

}  // namespace selsync
