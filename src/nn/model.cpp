#include "nn/model.hpp"

#include <cmath>

namespace selsync {

void EvalStats::merge(const EvalStats& o) {
  loss_sum += o.loss_sum;
  batches += o.batches;
  top1 += o.top1;
  top5 += o.top5;
  examples += o.examples;
}

double EvalStats::top1_accuracy() const {
  return examples ? static_cast<double>(top1) / examples : 0.0;
}

double EvalStats::top5_accuracy() const {
  return examples ? static_cast<double>(top5) / examples : 0.0;
}

double EvalStats::perplexity() const { return std::exp(mean_loss()); }

const std::vector<Param*>& Model::params() {
  if (!params_built_) {
    collect_model_params(params_cache_);
    params_built_ = true;
  }
  return params_cache_;
}

size_t Model::param_count() { return total_param_count(params()); }

std::vector<float> Model::get_flat_params() { return pack_values(params()); }

void Model::set_flat_params(const std::vector<float>& flat) {
  unpack_values(flat, params());
}

std::vector<float> Model::get_flat_grads() { return pack_grads(params()); }

void Model::set_flat_grads(const std::vector<float>& flat) {
  unpack_grads(flat, params());
}

void Model::zero_grad() { zero_grads(params()); }

void Model::apply_sgd(float lr) {
  for (Param* p : params()) p->value.axpy_(-lr, p->grad);
}

}  // namespace selsync
