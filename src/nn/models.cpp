#include "nn/models.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/classifier.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/sequential.hpp"

namespace selsync {

const char* model_kind_name(ModelKind kind) {
  return enum_name(kModelKindNames, kind);
}

std::unique_ptr<Model> make_resnet_mlp(const ClassifierConfig& config,
                                       uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Linear>(config.input_dim, config.hidden, rng, true,
                                    "stem"));
  net->add(std::make_unique<ReLU>());
  for (size_t b = 0; b < config.resnet_blocks; ++b) {
    const std::string base = "block" + std::to_string(b);
    auto inner = std::make_unique<Sequential>();
    inner->add(std::make_unique<LayerNorm>(config.hidden, base + ".norm"));
    inner->add(std::make_unique<Linear>(config.hidden, config.hidden, rng,
                                        true, base + ".fc1"));
    inner->add(std::make_unique<ReLU>());
    inner->add(std::make_unique<Linear>(config.hidden, config.hidden, rng,
                                        true, base + ".fc2"));
    net->add(std::make_unique<Residual>(std::move(inner)));
  }
  net->add(std::make_unique<LayerNorm>(config.hidden, "final_norm"));
  net->add(std::make_unique<Linear>(config.hidden, config.classes, rng, true,
                                    "head"));
  return std::make_unique<ClassifierModel>(std::move(net), config.classes);
}

std::unique_ptr<Model> make_vggnet(const ClassifierConfig& config,
                                   uint64_t seed) {
  Rng rng(seed);
  if (config.height % 4 != 0 || config.width % 4 != 0)
    throw std::invalid_argument("make_vggnet: H and W must be multiples of 4");
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2d>(config.channels, 8, 3, 1, rng, "conv1"));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2x2>());
  net->add(std::make_unique<Conv2d>(8, 16, 3, 1, rng, "conv2"));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2x2>());
  net->add(std::make_unique<Flatten>());
  const size_t flat = 16 * (config.height / 4) * (config.width / 4);
  net->add(std::make_unique<Linear>(flat, config.hidden, rng, true, "fc1"));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(config.hidden, config.classes, rng, true,
                                    "fc2"));
  return std::make_unique<ClassifierModel>(std::move(net), config.classes);
}

std::unique_ptr<Model> make_alexnet_like(const ClassifierConfig& config,
                                         uint64_t seed) {
  Rng rng(seed);
  if (config.height % 2 != 0 || config.width % 2 != 0)
    throw std::invalid_argument(
        "make_alexnet_like: H and W must be multiples of 2");
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2d>(config.channels, 12, 5, 2, rng, "conv1"));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2x2>());
  net->add(std::make_unique<Flatten>());
  const size_t flat = 12 * (config.height / 2) * (config.width / 2);
  net->add(std::make_unique<Linear>(flat, 2 * config.hidden, rng, true, "fc1"));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(2 * config.hidden, config.classes, rng,
                                    true, "fc2"));
  return std::make_unique<ClassifierModel>(std::move(net), config.classes);
}

std::unique_ptr<Model> make_resnet_conv(const ClassifierConfig& config,
                                        uint64_t seed) {
  Rng rng(seed);
  if (config.height % 2 != 0 || config.width % 2 != 0)
    throw std::invalid_argument(
        "make_resnet_conv: H and W must be multiples of 2");
  constexpr size_t kChannels = 12;
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2d>(config.channels, kChannels, 3, 1, rng,
                                    "stem"));
  net->add(std::make_unique<ReLU>());
  for (size_t b = 0; b < config.resnet_blocks; ++b) {
    const std::string base = "block" + std::to_string(b);
    auto inner = std::make_unique<Sequential>();
    inner->add(std::make_unique<Conv2d>(kChannels, kChannels, 3, 1, rng,
                                        base + ".conv1"));
    inner->add(std::make_unique<ReLU>());
    inner->add(std::make_unique<Conv2d>(kChannels, kChannels, 3, 1, rng,
                                        base + ".conv2"));
    net->add(std::make_unique<Residual>(std::move(inner)));
    net->add(std::make_unique<ReLU>());
  }
  net->add(std::make_unique<MaxPool2x2>());
  net->add(std::make_unique<Flatten>());
  const size_t flat = kChannels * (config.height / 2) * (config.width / 2);
  net->add(std::make_unique<Linear>(flat, config.classes, rng, true, "head"));
  return std::make_unique<ClassifierModel>(std::move(net), config.classes);
}

std::unique_ptr<Model> make_classifier(ModelKind kind,
                                       const ClassifierConfig& config,
                                       uint64_t seed) {
  switch (kind) {
    case ModelKind::kResNetMLP:
      return make_resnet_mlp(config, seed);
    case ModelKind::kVGGNet:
      return make_vggnet(config, seed);
    case ModelKind::kAlexNetLike:
      return make_alexnet_like(config, seed);
    case ModelKind::kTransformerLM:
      throw std::invalid_argument(
          "make_classifier: TransformerLM is not a classifier; construct "
          "TransformerLM directly");
  }
  throw std::invalid_argument("make_classifier: unknown kind");
}

}  // namespace selsync
