// Softmax cross-entropy over class logits; shared by the classifiers and,
// per-token, by the language model (perplexity = exp(mean token loss)).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace selsync {

struct LossResult {
  float loss = 0.f;      // mean over the batch
  Tensor grad_logits;    // dLoss/dLogits, already divided by batch size
};

/// logits: {B, K}; targets: B class ids in [0, K). `label_smoothing` in
/// [0, 1) spreads that much probability mass uniformly over the classes
/// (the standard regularizer for over-confident heads).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& targets,
                                 float label_smoothing = 0.f);

/// Count of rows whose arg-max matches the target (top-1 hits).
size_t count_top1(const Tensor& logits, const std::vector<int>& targets);

/// Count of rows whose target is among the k largest logits.
size_t count_topk(const Tensor& logits, const std::vector<int>& targets,
                  size_t k);

}  // namespace selsync
