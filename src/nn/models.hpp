// Model zoo: scaled-down analogues of the four DNN families the paper
// evaluates (ResNet101, VGG11, AlexNet, Transformer). The families keep the
// architectural property the paper contrasts — skip connections vs plain
// convolution vs wide-shallow vs attention — at sizes that converge in
// seconds on one CPU core.
#pragma once

#include <memory>
#include <string>

#include "nn/model.hpp"
#include "nn/transformer_lm.hpp"
#include "util/enum_names.hpp"

namespace selsync {

enum class ModelKind { kResNetMLP, kVGGNet, kAlexNetLike, kTransformerLM };

/// Display names; selsync_lint (enum-table) keeps this table in lockstep
/// with the enumerator list above.
inline constexpr EnumEntry<ModelKind> kModelKindNames[] = {
    {ModelKind::kResNetMLP, "ResNetMLP"},
    {ModelKind::kVGGNet, "VGGNet"},
    {ModelKind::kAlexNetLike, "AlexNetLike"},
    {ModelKind::kTransformerLM, "TransformerLM"},
};

const char* model_kind_name(ModelKind kind);

/// Dimensions for the classification models. Image models read
/// channels/height/width; the residual MLP reads input_dim.
struct ClassifierConfig {
  size_t input_dim = 64;  // flat features (ResNetMLP)
  size_t channels = 3;    // image models
  size_t height = 8;
  size_t width = 8;
  size_t classes = 10;
  size_t hidden = 64;         // hidden width
  size_t resnet_blocks = 3;   // residual blocks in ResNetMLP
};

/// Residual MLP: Linear stem, `resnet_blocks` pre-norm residual blocks, head.
std::unique_ptr<Model> make_resnet_mlp(const ClassifierConfig& config,
                                       uint64_t seed);

/// Plain deep conv stack (VGG-style: conv/pool pyramid, no skips).
std::unique_ptr<Model> make_vggnet(const ClassifierConfig& config,
                                   uint64_t seed);

/// Wide shallow conv net (AlexNet-style; the paper trains it with Adam).
std::unique_ptr<Model> make_alexnet_like(const ClassifierConfig& config,
                                         uint64_t seed);

/// Convolutional residual network (the paper's ResNet101 is conv-based;
/// this is its direct small-scale form: conv stem, residual conv blocks
/// with identity skips, pool, linear head). The default ResNet analogue in
/// the workloads is the residual MLP, which trains faster on 1 CPU core;
/// this factory exists for experiments that need convolutional skips.
std::unique_ptr<Model> make_resnet_conv(const ClassifierConfig& config,
                                        uint64_t seed);

/// Dispatch over the three classification families.
std::unique_ptr<Model> make_classifier(ModelKind kind,
                                       const ClassifierConfig& config,
                                       uint64_t seed);

}  // namespace selsync
