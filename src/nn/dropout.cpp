#include "nn/dropout.hpp"

#include <stdexcept>

namespace selsync {

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(&rng) {
  if (p < 0.f || p >= 1.f) throw std::invalid_argument("Dropout: p in [0,1)");
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || p_ == 0.f) {
    mask_.clear();
    return input;
  }
  const float keep_scale = 1.f / (1.f - p_);
  mask_.resize(input.size());
  Tensor out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    mask_[i] = rng_->bernoulli(p_) ? 0.f : keep_scale;
    out[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  Tensor grad_in = grad_out;
  for (size_t i = 0; i < grad_in.size(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

}  // namespace selsync
