// Model introspection helpers: per-parameter summary table and parameter
// statistics, for debugging and for the CLI's --describe mode.
#pragma once

#include <string>

#include "nn/model.hpp"

namespace selsync {

struct ParamSummary {
  std::string name;
  std::string shape;
  size_t count = 0;
  double value_rms = 0.0;
  double grad_rms = 0.0;
};

/// One row per parameter tensor, in the canonical packing order.
std::vector<ParamSummary> summarize_params(Model& model);

/// Human-readable table: name, shape, #params, RMS values, total footprint.
std::string describe_model(Model& model);

}  // namespace selsync
