#include "nn/eval_report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "nn/classifier.hpp"

namespace selsync {

ConfusionMatrix::ConfusionMatrix(size_t classes)
    : classes_(classes), cells_(classes * classes, 0) {
  if (classes == 0) throw std::invalid_argument("ConfusionMatrix: 0 classes");
}

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth < 0 || static_cast<size_t>(truth) >= classes_ || predicted < 0 ||
      static_cast<size_t>(predicted) >= classes_)
    throw std::out_of_range("ConfusionMatrix: class id out of range");
  ++cells_[static_cast<size_t>(truth) * classes_ +
           static_cast<size_t>(predicted)];
  ++total_;
}

size_t ConfusionMatrix::count(int truth, int predicted) const {
  return cells_.at(static_cast<size_t>(truth) * classes_ +
                   static_cast<size_t>(predicted));
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  size_t hits = 0;
  for (size_t c = 0; c < classes_; ++c) hits += cells_[c * classes_ + c];
  return static_cast<double>(hits) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int cls) const {
  size_t predicted = 0;
  for (size_t t = 0; t < classes_; ++t)
    predicted += cells_[t * classes_ + static_cast<size_t>(cls)];
  if (predicted == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(int cls) const {
  size_t actual = 0;
  for (size_t p = 0; p < classes_; ++p)
    actual += cells_[static_cast<size_t>(cls) * classes_ + p];
  if (actual == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls), r = recall(cls);
  return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (size_t c = 0; c < classes_; ++c) sum += f1(static_cast<int>(c));
  return sum / static_cast<double>(classes_);
}

size_t ConfusionMatrix::never_predicted_classes() const {
  size_t missing = 0;
  for (size_t p = 0; p < classes_; ++p) {
    size_t predicted = 0;
    for (size_t t = 0; t < classes_; ++t) predicted += cells_[t * classes_ + p];
    if (predicted == 0) ++missing;
  }
  return missing;
}

std::string ConfusionMatrix::to_string(size_t max_classes) const {
  const size_t shown = std::min(classes_, max_classes);
  std::ostringstream out;
  char buf[64];
  out << "truth\\pred";
  for (size_t p = 0; p < shown; ++p) {
    std::snprintf(buf, sizeof(buf), "%6zu", p);
    out << buf;
  }
  out << (shown < classes_ ? "  ..." : "") << "\n";
  for (size_t t = 0; t < shown; ++t) {
    std::snprintf(buf, sizeof(buf), "%9zu ", t);
    out << buf;
    for (size_t p = 0; p < shown; ++p) {
      std::snprintf(buf, sizeof(buf), "%6zu", count(static_cast<int>(t),
                                                    static_cast<int>(p)));
      out << buf;
    }
    std::snprintf(buf, sizeof(buf), "   recall %.2f",
                  recall(static_cast<int>(t)));
    out << buf << "\n";
  }
  std::snprintf(buf, sizeof(buf), "accuracy %.3f, macro-F1 %.3f\n",
                accuracy(), macro_f1());
  out << buf;
  return out.str();
}

ConfusionMatrix evaluate_confusion(Model& model, const Dataset& data,
                                   size_t batch_size) {
  const size_t classes = data.num_classes();
  if (classes == 0)
    throw std::invalid_argument("evaluate_confusion: unlabelled dataset");
  auto* classifier = dynamic_cast<ClassifierModel*>(&model);
  if (!classifier)
    throw std::invalid_argument("evaluate_confusion: not a classifier model");

  ConfusionMatrix cm(classes);
  model.set_training(false);
  std::vector<size_t> indices;
  for (size_t start = 0; start < data.size(); start += batch_size) {
    indices.clear();
    const size_t end = std::min(start + batch_size, data.size());
    for (size_t i = start; i < end; ++i) indices.push_back(i);
    const Batch batch = data.make_batch(indices);
    const Tensor logits = classifier->net().forward(batch.x);
    const size_t k = logits.dim(1);
    for (size_t row = 0; row < logits.dim(0); ++row) {
      const float* r = logits.data() + row * k;
      const int pred = static_cast<int>(std::max_element(r, r + k) - r);
      cm.add(batch.targets[row], pred);
    }
  }
  model.set_training(true);
  return cm;
}

}  // namespace selsync
