// Multi-head self-attention over a flattened sequence batch.
//
// The transformer stack keeps activations as rank-2 tensors {B*T, D} so the
// generic Linear/LayerNorm/Dropout modules compose directly; the attention
// layer is told the sequence length T at construction and re-folds rows into
// (batch, time) internally. Causal masking matches the paper's LM setup
// (Transformer encoder trained with bptt windows on WikiText-103).
#pragma once

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace selsync {

class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(size_t model_dim, size_t num_heads, size_t seq_len,
                         Rng& rng, bool causal = true,
                         const std::string& name = "mhsa");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }

  size_t num_heads() const { return heads_; }

 private:
  size_t dim_, heads_, head_dim_, seq_len_;
  bool causal_;
  std::string name_;
  Linear qkv_;    // D -> 3D
  Linear proj_;   // D -> D
  // Forward caches (per call): packed QKV and attention weights.
  Tensor cached_qkv_;               // {B*T, 3D}
  std::vector<float> cached_attn_;  // B * heads * T * T softmax weights
  size_t cached_batch_ = 0;
};

}  // namespace selsync
