#include "nn/norm.hpp"

#include <cmath>
#include <stdexcept>

namespace selsync {

LayerNorm::LayerNorm(size_t dim, const std::string& name, float eps)
    : dim_(dim),
      eps_(eps),
      name_(name),
      gamma_(name + ".gamma", Tensor::full({dim}, 1.f)),
      beta_(name + ".beta", Tensor({dim})) {}

Tensor LayerNorm::forward(const Tensor& input) {
  // Treat the input as {rows, dim_} regardless of leading shape.
  if (input.size() % dim_ != 0)
    throw std::invalid_argument("LayerNorm: input not divisible by dim");
  const size_t rows = input.size() / dim_;
  Tensor out(input.shape());
  cached_norm_ = Tensor(input.shape());
  inv_std_.assign(rows, 0.f);
  for (size_t r = 0; r < rows; ++r) {
    const float* x = input.data() + r * dim_;
    float* o = out.data() + r * dim_;
    float* xh = cached_norm_.data() + r * dim_;
    float mean = 0.f;
    for (size_t j = 0; j < dim_; ++j) mean += x[j];
    mean /= static_cast<float>(dim_);
    float var = 0.f;
    for (size_t j = 0; j < dim_; ++j) {
      const float d = x[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(dim_);
    const float inv = 1.f / std::sqrt(var + eps_);
    inv_std_[r] = inv;
    for (size_t j = 0; j < dim_; ++j) {
      xh[j] = (x[j] - mean) * inv;
      o[j] = gamma_.value[j] * xh[j] + beta_.value[j];
    }
  }
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  const size_t rows = grad_out.size() / dim_;
  Tensor grad_in(grad_out.shape());
  for (size_t r = 0; r < rows; ++r) {
    const float* go = grad_out.data() + r * dim_;
    const float* xh = cached_norm_.data() + r * dim_;
    float* gi = grad_in.data() + r * dim_;
    // Accumulate param grads and the two row sums needed for dX.
    float sum_g = 0.f, sum_gx = 0.f;
    for (size_t j = 0; j < dim_; ++j) {
      const float g = go[j] * gamma_.value[j];
      sum_g += g;
      sum_gx += g * xh[j];
      gamma_.grad[j] += go[j] * xh[j];
      beta_.grad[j] += go[j];
    }
    const float inv_n = 1.f / static_cast<float>(dim_);
    for (size_t j = 0; j < dim_; ++j) {
      const float g = go[j] * gamma_.value[j];
      gi[j] = inv_std_[r] * (g - inv_n * sum_g - xh[j] * inv_n * sum_gx);
    }
  }
  return grad_in;
}

void LayerNorm::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace selsync
