// Inverted dropout: scales kept activations by 1/(1-p) at train time so no
// rescale is needed at eval time.
#pragma once

#include "nn/module.hpp"

namespace selsync {

class Dropout : public Module {
 public:
  /// `rng` must outlive the module (the owning model holds the stream).
  Dropout(float p, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  void set_training(bool training) override { training_ = training; }
  std::string name() const override { return "dropout"; }

 private:
  float p_;
  Rng* rng_;
  bool training_ = true;
  std::vector<float> mask_;
};

}  // namespace selsync
